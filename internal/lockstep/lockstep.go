// Package lockstep implements the Derecho-like baseline of the paper's §6.5
// comparison: a leaderless, round-based, totally ordered broadcast with
// lock-step delivery (virtually synchronous Paxos in the style of Jha et
// al. '19). Every node contributes one (possibly empty) batch of updates
// per round; a round delivers at a node only once batches from *all*
// members have arrived, and delivered updates apply in (round, node) order.
//
// This captures precisely the two properties the paper credits for
// Derecho's loss to Hermes (Fig. 8): lock-step delivery — the round barrier
// paces everyone to the slowest member plus a full round-trip — and total
// order — no inter-key concurrency, every write to any key serializes
// through the round structure.
package lockstep

import (
	"sort"
	"time"

	"repro/internal/proto"
)

// Batch is node's contribution to one round. Empty Ops is the "null
// message" that keeps the lock-step advancing.
type Batch struct {
	Epoch uint32
	Round uint64
	Ops   []Update
}

// Update is one totally ordered write.
type Update struct {
	Key    proto.Key
	Value  proto.Value
	OpID   uint64
	Kind   proto.OpKind
	RMWOld proto.Value
}

// RoundOK confirms the sender holds every member's batch for the round.
// Delivery waits for RoundOK from all members: the stability barrier that
// makes lock-step delivery safe (a round is applied only once globally
// complete) — and the second network phase Derecho pays per commit.
type RoundOK struct {
	Epoch uint32
	Round uint64
}

// PullReq asks a member to re-send its batch (and RoundOK) for a round the
// requester is stuck on (the member may have delivered it and moved on).
type PullReq struct {
	Epoch uint32
	Round uint64
}

// Config parameterizes a replica.
type Config struct {
	ID   proto.NodeID
	View proto.View
	Env  proto.Env
	// MLT triggers batch retransmission for lossy links.
	MLT time.Duration
	// MaxBatch caps the updates a node contributes per round. Derecho's
	// lock-step commit advances at per-message granularity, so the §6.5
	// comparison models it with MaxBatch=1; 0 means unlimited.
	MaxBatch int
}

// Metrics counts protocol events.
type Metrics struct {
	Reads, Writes   uint64
	Rounds          uint64 // rounds delivered
	NullBatches     uint64 // empty contributions (lock-step overhead)
	Retransmits     uint64
	StaleEpochDrops uint64
}

// Replica is one lock-step node.
type Replica struct {
	cfg     Config
	id      proto.NodeID
	env     proto.Env
	view    proto.View
	oper    bool
	metrics Metrics

	data map[proto.Key]proto.Value

	// round is the next round this node will deliver; it has sent its own
	// batches for every round < sendRound.
	round     uint64
	sendRound uint64
	// queued ops not yet assigned to a round batch.
	queue []Update
	// received batches: round -> node -> batch.
	inbox map[uint64]map[proto.NodeID]Batch
	// stability confirmations: round -> nodes whose RoundOK arrived.
	oks map[uint64]map[proto.NodeID]bool
	// okSent marks rounds whose own RoundOK went out.
	okSent map[uint64]bool
	// myBatches retains sent batches for retransmission and pull-based gap
	// repair; trimmed historyKeep rounds behind delivery.
	myBatches map[uint64]Batch
	sentAt    map[uint64]time.Duration
	lastPull  time.Duration
}

// historyKeep bounds how many delivered rounds of own batches are retained
// for peers that missed them.
const historyKeep = 256

// New builds a replica.
func New(cfg Config) *Replica {
	if cfg.Env == nil {
		panic("lockstep: Config.Env is required")
	}
	if cfg.MLT <= 0 {
		cfg.MLT = 10 * time.Millisecond
	}
	return &Replica{
		cfg:       cfg,
		id:        cfg.ID,
		env:       cfg.Env,
		view:      cfg.View.Clone(),
		oper:      true,
		data:      make(map[proto.Key]proto.Value),
		inbox:     make(map[uint64]map[proto.NodeID]Batch),
		oks:       make(map[uint64]map[proto.NodeID]bool),
		okSent:    make(map[uint64]bool),
		myBatches: make(map[uint64]Batch),
		sentAt:    make(map[uint64]time.Duration),
	}
}

// ID implements proto.Replica.
func (r *Replica) ID() proto.NodeID { return r.id }

// Metrics returns counters.
func (r *Replica) Metrics() Metrics { return r.metrics }

// SetOperational installs lease state.
func (r *Replica) SetOperational(ok bool) { r.oper = ok }

// Value returns a key's applied value (tests).
func (r *Replica) Value(k proto.Key) proto.Value { return r.data[k] }

// Round returns the next round to deliver (tests).
func (r *Replica) Round() uint64 { return r.round }

// Submit implements proto.Replica.
func (r *Replica) Submit(op proto.ClientOp) {
	if !r.oper || !r.view.Contains(r.id) {
		r.env.Complete(proto.Completion{OpID: op.ID, Kind: op.Kind, Key: op.Key, Status: proto.NotOperational})
		return
	}
	if op.Kind == proto.OpRead {
		// Local SC read, as in the paper's Derecho configuration.
		r.metrics.Reads++
		r.env.Complete(proto.Completion{OpID: op.ID, Kind: proto.OpRead, Key: op.Key, Status: proto.OK, Value: r.data[op.Key]})
		return
	}
	r.metrics.Writes++
	r.queue = append(r.queue, Update{Key: op.Key, Value: op.Value.Clone(), OpID: op.ID, Kind: op.Kind})
	r.pump()
}

// pump sends this node's batch for the next unsent round. One batch per
// round; the round barrier (tryDeliver) paces everything. A node
// contributes proactively when it has queued updates, and reactively (a
// null batch) when another member has opened the round — so an idle group
// generates no traffic, but no round ever starves.
func (r *Replica) pump() {
	// Allow a bounded pipeline of one outstanding round beyond delivery.
	if r.sendRound > r.round {
		return
	}
	if len(r.queue) == 0 && len(r.inbox[r.sendRound]) == 0 {
		return
	}
	take := len(r.queue)
	if r.cfg.MaxBatch > 0 && take > r.cfg.MaxBatch {
		take = r.cfg.MaxBatch
	}
	b := Batch{Epoch: r.view.Epoch, Round: r.sendRound, Ops: r.queue[:take:take]}
	r.queue = r.queue[take:]
	if len(b.Ops) == 0 {
		r.metrics.NullBatches++
	}
	r.myBatches[b.Round] = b
	r.sentAt[b.Round] = r.env.Now()
	for _, n := range r.view.Others(r.id) {
		r.env.Send(n, b)
	}
	r.acceptBatch(r.id, b)
	r.sendRound++
}

// Deliver implements proto.Replica.
func (r *Replica) Deliver(from proto.NodeID, msg any) {
	switch t := msg.(type) {
	case Batch:
		if t.Epoch != r.view.Epoch {
			r.metrics.StaleEpochDrops++
			return
		}
		r.acceptBatch(from, t)
	case RoundOK:
		if t.Epoch != r.view.Epoch {
			r.metrics.StaleEpochDrops++
			return
		}
		r.recordOK(from, t.Round)
	case PullReq:
		if t.Epoch != r.view.Epoch {
			r.metrics.StaleEpochDrops++
			return
		}
		if b, ok := r.myBatches[t.Round]; ok {
			r.metrics.Retransmits++
			r.env.Send(from, b)
			if r.okSent[t.Round] || t.Round < r.round {
				r.env.Send(from, RoundOK{Epoch: r.view.Epoch, Round: t.Round})
			}
			return
		}
		// We have not contributed to that round yet; a pull counts as
		// activity and triggers our (null) contribution.
		if t.Round == r.sendRound && r.sendRound <= r.round {
			r.pump()
			if b, ok := r.myBatches[t.Round]; ok {
				r.env.Send(from, b)
			}
		}
	default:
		panic("lockstep: unknown message type")
	}
}

func (r *Replica) acceptBatch(from proto.NodeID, b Batch) {
	if b.Round < r.round {
		return // already delivered
	}
	m := r.inbox[b.Round]
	if m == nil {
		m = make(map[proto.NodeID]Batch)
		r.inbox[b.Round] = m
	}
	m[from] = b
	if from != r.id {
		r.pump() // owe our (possibly null) contribution to this round
	}
	r.tryDeliver()
}

func (r *Replica) recordOK(from proto.NodeID, round uint64) {
	if round < r.round {
		return
	}
	m := r.oks[round]
	if m == nil {
		m = make(map[proto.NodeID]bool)
		r.oks[round] = m
	}
	m[from] = true
	r.tryDeliver()
}

// recordOKSelf records this node's own confirmation without re-entering
// tryDeliver (it is called from inside the delivery loop).
func (r *Replica) recordOKSelf(round uint64) {
	if round < r.round {
		return
	}
	m := r.oks[round]
	if m == nil {
		m = make(map[proto.NodeID]bool)
		r.oks[round] = m
	}
	m[r.id] = true
}

// batchesComplete reports whether every member's batch for round r arrived.
func (r *Replica) batchesComplete(round uint64) bool {
	m := r.inbox[round]
	if m == nil {
		return false
	}
	for _, n := range r.view.Members {
		if _, ok := m[n]; !ok {
			return false
		}
	}
	return true
}

// tryDeliver applies rounds that are complete AND stable (all RoundOKs),
// in (round, node) order — the total order.
func (r *Replica) tryDeliver() {
	for {
		if !r.batchesComplete(r.round) {
			return // lock-step barrier: wait for the slowest member
		}
		// Phase 2: announce completeness once, then wait for everyone's.
		if !r.okSent[r.round] {
			r.okSent[r.round] = true
			for _, n := range r.view.Others(r.id) {
				r.env.Send(n, RoundOK{Epoch: r.view.Epoch, Round: r.round})
			}
			r.recordOKSelf(r.round)
		}
		okm := r.oks[r.round]
		for _, n := range r.view.Members {
			if !okm[n] {
				return // stability barrier
			}
		}
		m := r.inbox[r.round]
		nodes := make([]proto.NodeID, 0, len(m))
		for n := range m {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			for _, u := range m[n].Ops {
				r.apply(n, u)
			}
		}
		delete(r.inbox, r.round)
		delete(r.oks, r.round)
		delete(r.okSent, r.round)
		delete(r.sentAt, r.round)
		if r.round >= historyKeep {
			delete(r.myBatches, r.round-historyKeep)
		}
		r.metrics.Rounds++
		r.round++
		// Contribute to the next round immediately (with whatever queued).
		r.pump()
	}
}

func (r *Replica) apply(origin proto.NodeID, u Update) {
	cur := r.data[u.Key]
	var newVal proto.Value
	status := proto.OK
	var retVal proto.Value
	switch u.Kind {
	case proto.OpWrite:
		newVal = u.Value
	case proto.OpCAS:
		// Total order means the CAS evaluates against the globally agreed
		// state; Expected travels in Value[?]. For simplicity lockstep
		// supports write and FAA only; CAS maps to write.
		newVal = u.Value
	case proto.OpFAA:
		retVal = cur
		newVal = proto.EncodeInt64(proto.DecodeInt64(cur) + proto.DecodeInt64(u.Value))
	default:
		// Reads never enter the total order; an OpRead here is a bug.
		panic("lockstep: non-update op kind in apply")
	}
	r.data[u.Key] = newVal
	if origin == r.id {
		r.env.Complete(proto.Completion{OpID: u.OpID, Kind: u.Kind, Key: u.Key, Status: status, Value: retVal})
	}
}

// Tick retransmits this node's undelivered batches.
func (r *Replica) Tick() {
	now := r.env.Now()
	for round, at := range r.sentAt {
		if now-at >= r.cfg.MLT {
			r.sentAt[round] = now
			r.metrics.Retransmits++
			b := r.myBatches[round]
			for _, n := range r.view.Others(r.id) {
				r.env.Send(n, b)
			}
		}
	}
	// Keep the lock-step advancing even when idle so queued writes on other
	// nodes are not starved by our silence.
	if len(r.queue) > 0 || r.anyInboxActivity() {
		r.pump()
	}
	// Pull-based gap repair: the current round is partially filled (or we
	// have contributed) but missing members' batches or RoundOKs have not
	// arrived; ask directly — they may have delivered and moved on.
	if now-r.lastPull >= r.cfg.MLT {
		m := r.inbox[r.round]
		if len(m) > 0 || r.sendRound > r.round {
			r.lastPull = now
			okm := r.oks[r.round]
			for _, n := range r.view.Members {
				if n == r.id {
					continue
				}
				if _, ok := m[n]; !ok {
					r.env.Send(n, PullReq{Epoch: r.view.Epoch, Round: r.round})
				} else if r.okSent[r.round] && !okm[n] {
					// Our OK may have been lost; resend and re-request.
					r.env.Send(n, RoundOK{Epoch: r.view.Epoch, Round: r.round})
					r.env.Send(n, PullReq{Epoch: r.view.Epoch, Round: r.round})
				}
			}
		}
	}
}

// anyInboxActivity reports whether peers have contributed to a round we have
// not; our null batch is then owed.
func (r *Replica) anyInboxActivity() bool {
	m := r.inbox[r.round]
	return len(m) > 0 && r.sendRound <= r.round
}

// OnViewChange resets the round structure for the new membership
// (simplified virtual synchrony: in-flight rounds are abandoned; client
// retransmission at a higher layer re-enters lost updates).
func (r *Replica) OnViewChange(v proto.View) {
	if v.Epoch <= r.view.Epoch {
		return
	}
	r.view = v.Clone()
	if !v.Contains(r.id) {
		r.oper = false
		return
	}
	r.round = 0
	r.sendRound = 0
	r.inbox = make(map[uint64]map[proto.NodeID]Batch)
	r.oks = make(map[uint64]map[proto.NodeID]bool)
	r.okSent = make(map[uint64]bool)
	r.myBatches = make(map[uint64]Batch)
	r.sentAt = make(map[uint64]time.Duration)
	r.pump()
}
