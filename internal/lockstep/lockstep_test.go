package lockstep

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/prototest"
)

func build(t *testing.T, n int) *prototest.Harness {
	return prototest.Build(t, n, func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return New(Config{ID: id, View: view, Env: env, MLT: 10 * time.Millisecond})
	})
}

func rep(h *prototest.Harness, id proto.NodeID) *Replica {
	return h.Nodes[id].(*Replica)
}

func TestSingleWriteDeliversEverywhere(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v")
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
	for id := proto.NodeID(0); id < 3; id++ {
		if string(rep(h, id).Value(1)) != "v" {
			t.Fatalf("node %d missing value", id)
		}
		if rep(h, id).Round() != 1 {
			t.Fatalf("node %d round=%d", id, rep(h, id).Round())
		}
	}
	// The two idle members contributed null batches — the lock-step tax.
	nulls := rep(h, 1).Metrics().NullBatches + rep(h, 2).Metrics().NullBatches
	if nulls != 2 {
		t.Fatalf("null batches=%d want 2", nulls)
	}
}

func TestIdleGroupIsSilent(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "v")
	h.Run()
	if len(h.Msgs) != 0 {
		t.Fatal("messages in flight after quiescence")
	}
	h.Advance(15 * time.Millisecond)
	// No queued updates anywhere: ticks must not spin new rounds.
	if len(h.Msgs) != 0 {
		t.Fatalf("idle group generated %d messages", len(h.Msgs))
	}
}

func TestTotalOrderAgreesEverywhere(t *testing.T) {
	// Concurrent writes to the same key from all nodes: every replica must
	// apply them in the same (round, node) order, hence identical results.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := build(t, 3)
		for i := 0; i < 9; i++ {
			h.Write(proto.NodeID(i%3), 1, string(rune('a'+i)))
			if rng.Intn(2) == 0 {
				h.RunShuffled(rng)
			}
		}
		for round := 0; round < 30; round++ {
			h.RunShuffled(rng)
			h.Advance(11 * time.Millisecond)
		}
		h.Run()
		ref := rep(h, 0).Value(1)
		for id := proto.NodeID(1); id < 3; id++ {
			if string(rep(h, id).Value(1)) != string(ref) {
				t.Fatalf("seed %d: divergence at node %d", seed, id)
			}
		}
	}
}

func TestReadsLocal(t *testing.T) {
	h := build(t, 3)
	h.Write(1, 1, "v")
	h.Run()
	before := len(h.Msgs)
	op := h.Read(2, 1)
	if len(h.Msgs) != before {
		t.Fatal("read generated traffic")
	}
	if c := h.Completion(2, op); string(c.Value) != "v" {
		t.Fatalf("%q", c.Value)
	}
}

func TestLockStepBlocksOnSlowMember(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "v")
	// Drop node 2's null batch: the round cannot deliver anywhere.
	h.DropWhere(func(e prototest.Envelope) bool { return false }) // no-op placeholder
	// Deliver only node 0's batches; hold node 2's contributions.
	for {
		n := h.DropWhere(func(e prototest.Envelope) bool { return e.From == 2 })
		_ = n
		if len(h.Msgs) == 0 {
			break
		}
		h.Step()
	}
	if rep(h, 0).Round() != 0 {
		t.Fatal("round delivered without all members' batches")
	}
	// Retransmission from node 2 after mlt recovers the round.
	h.Advance(15 * time.Millisecond)
	h.Run()
	if rep(h, 0).Round() != 1 {
		t.Fatal("round never recovered")
	}
}

func TestFAADelivered(t *testing.T) {
	h := build(t, 3)
	a := h.FAA(0, 1, 2)
	b := h.FAA(1, 1, 3)
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if !h.HasCompletion(0, a) || !h.HasCompletion(1, b) {
		t.Fatal("FAAs not delivered")
	}
	if v := proto.DecodeInt64(rep(h, 2).Value(1)); v != 5 {
		t.Fatalf("counter=%d", v)
	}
}

func TestBatchingAmortizesRounds(t *testing.T) {
	h := build(t, 3)
	// Queue many writes at node 0 before any delivery: they ride in few
	// batches rather than one round each.
	for i := 0; i < 10; i++ {
		h.Write(0, proto.Key(i), "v")
	}
	h.Run()
	if r := rep(h, 0).Round(); r > 3 {
		t.Fatalf("10 writes took %d rounds; batching broken", r)
	}
	for k := proto.Key(0); k < 10; k++ {
		if string(rep(h, 1).Value(k)) != "v" {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestViewChangeResetsRounds(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "v")
	h.Run()
	h.Crash(2)
	h.RemoveFromView(2)
	op := h.Write(0, 2, "after")
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("write after reconfiguration: %+v", c)
	}
	if string(rep(h, 1).Value(2)) != "after" {
		t.Fatal("surviving follower missed post-reconfiguration write")
	}
}

func TestStaleEpochBatchDropped(t *testing.T) {
	h := build(t, 3)
	rep(h, 1).Deliver(0, Batch{Epoch: 9, Round: 0})
	if rep(h, 1).Metrics().StaleEpochDrops != 1 {
		t.Fatal("stale batch not dropped")
	}
}

func TestNonOperationalRejects(t *testing.T) {
	h := build(t, 3)
	rep(h, 0).SetOperational(false)
	op := h.Write(0, 1, "x")
	if c := h.Completion(0, op); c.Status != proto.NotOperational {
		t.Fatalf("%+v", c)
	}
}
