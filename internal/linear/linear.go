// Package linear checks recorded operation histories for linearizability
// (Herlihy & Wing '90) against a single-register specification. Because
// linearizability is compositional (paper §2.2), checking each key's
// history independently suffices for whole-store linearizability — which is
// how the integration tests validate Hermes and rCRAQ under message loss,
// duplication, reordering and crashes.
//
// The checker is the classic Wing–Gong tree search with Lowe-style
// memoization: at each step, any operation whose invocation precedes the
// earliest un-linearized response may be linearized next; (state,
// remaining-set) pairs already proven unsatisfiable are pruned. Operations
// that never returned (their client crashed or the run ended) may linearize
// anywhere after invocation or not at all.
package linear

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/proto"
)

// Kind is the specification-level operation type.
type Kind uint8

const (
	// KRead returns the register's value in Out.
	KRead Kind = iota
	// KWrite sets the register to Arg.
	KWrite
	// KFAA adds Arg (8-byte LE delta) and returns the prior value in Out.
	KFAA
	// KCASOk is a CAS that succeeded: register must equal Exp, becomes Arg.
	KCASOk
	// KCASFail is a CAS that failed: register must equal Out (≠ Exp) and is
	// unchanged.
	KCASFail
)

func (k Kind) String() string {
	switch k {
	case KRead:
		return "read"
	case KWrite:
		return "write"
	case KFAA:
		return "faa"
	case KCASOk:
		return "cas-ok"
	case KCASFail:
		return "cas-fail"
	default:
		return "kind(?)"
	}
}

// Pending marks an operation that never returned.
const Pending = time.Duration(-1)

// Op is one operation in a key's history.
type Op struct {
	ID     uint64
	Kind   Kind
	Arg    proto.Value // write value / FAA delta / CAS new value
	Exp    proto.Value // CAS comparand
	Out    proto.Value // read result / FAA prior / failed-CAS observed
	Invoke time.Duration
	Return time.Duration // Pending if the op never returned
}

func (o Op) pending() bool { return o.Return == Pending }

// Result reports a check outcome; when not linearizable, Reason explains
// the first violation found at the search's end state.
type Result struct {
	OK   bool
	Ops  int
	Info string
}

// CheckRegister decides whether the history is linearizable with respect to
// a register holding an initially-empty value. It is exponential in the
// worst case but fast for the bounded-concurrency histories the tests
// produce; MaxOps guards against pathological inputs.
func CheckRegister(ops []Op) Result {
	const maxOps = 2000
	if len(ops) > maxOps {
		return Result{OK: false, Ops: len(ops), Info: "history too large to check"}
	}
	h := append([]Op(nil), ops...)
	sort.SliceStable(h, func(i, j int) bool { return h[i].Invoke < h[j].Invoke })

	n := len(h)
	if n == 0 {
		return Result{OK: true}
	}
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	memo := make(map[string]bool) // visited (state, remaining) combos
	ok := search(h, remaining, n, nil, memo)
	if ok {
		return Result{OK: true, Ops: n}
	}
	return Result{OK: false, Ops: n, Info: describeFailure(h)}
}

// search tries to linearize all non-pending remaining ops.
func search(h []Op, remaining []bool, left int, state proto.Value, memo map[string]bool) bool {
	if allPendingDone(h, remaining) {
		return true
	}
	key := memoKey(remaining, state)
	if memo[key] {
		return false
	}
	memo[key] = true

	// The frontier: ops that may linearize next are those invoked before
	// the earliest response among remaining non-pending ops.
	minReturn := time.Duration(1<<63 - 1)
	for i, rem := range remaining {
		if rem && !h[i].pending() && h[i].Return < minReturn {
			minReturn = h[i].Return
		}
	}
	for i, rem := range remaining {
		if !rem || h[i].Invoke > minReturn {
			continue
		}
		ok, next := step(state, h[i])
		if !ok {
			continue
		}
		remaining[i] = false
		if search(h, remaining, left-1, next, memo) {
			remaining[i] = true // restore for caller's benefit
			return true
		}
		remaining[i] = true
	}
	// Pending ops may also be skipped entirely; that case is handled by
	// allPendingDone above once every returned op is linearized.
	return false
}

// allPendingDone reports whether every remaining op is pending (and may
// thus be dropped: a crashed client's op need not have taken effect).
func allPendingDone(h []Op, remaining []bool) bool {
	for i, rem := range remaining {
		if rem && !h[i].pending() {
			return false
		}
	}
	return true
}

// step applies op to the register state, checking outputs.
func step(state proto.Value, op Op) (bool, proto.Value) {
	switch op.Kind {
	case KRead:
		if op.pending() {
			return true, state // a pending read has no visible output
		}
		return equal(state, op.Out), state
	case KWrite:
		return true, op.Arg
	case KFAA:
		// FAA reads the state through DecodeInt64, exactly as the protocol
		// does (missing/short values decode as 0), so the prior-value check
		// must compare decoded integers, not bytes: an FAA executing against
		// the implicit initial state reports EncodeInt64(0), which is
		// byte-unequal to the empty register — demanding byte equality made
		// such (perfectly linearizable) histories uncheckable and flaked the
		// live fast-path suite whenever an FAA linearized before the first
		// write of a key.
		if !op.pending() && proto.DecodeInt64(state) != proto.DecodeInt64(op.Out) {
			return false, nil
		}
		return true, proto.EncodeInt64(proto.DecodeInt64(state) + proto.DecodeInt64(op.Arg))
	case KCASOk:
		if !equal(state, op.Exp) {
			return false, nil
		}
		return true, op.Arg
	case KCASFail:
		if equal(state, op.Exp) {
			return false, nil // it should have succeeded
		}
		if !op.pending() && !equal(state, op.Out) {
			return false, nil
		}
		return true, state
	default:
		return false, nil
	}
}

func equal(a, b proto.Value) bool { return string(a) == string(b) }

func memoKey(remaining []bool, state proto.Value) string {
	buf := make([]byte, 0, len(remaining)/8+len(state)+1)
	var cur byte
	for i, r := range remaining {
		if r {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	buf = append(buf, cur, 0xFF)
	buf = append(buf, state...)
	return string(buf)
}

func describeFailure(h []Op) string {
	s := fmt.Sprintf("no linearization for %d ops; first ops:", len(h))
	for i, op := range h {
		if i >= 6 {
			s += " ..."
			break
		}
		s += fmt.Sprintf(" [%s arg=%q out=%q %v-%v]", op.Kind, op.Arg, op.Out, op.Invoke, op.Return)
	}
	return s
}

// History accumulates per-key operation records during a run. It is not
// safe for concurrent use; the simulator is single-threaded and the live
// runtime's tests wrap it in a mutex.
type History struct {
	byKey   map[proto.Key][]Op
	invokes map[uint64]pendingInv
}

type pendingInv struct {
	key proto.Key
	op  Op
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{byKey: make(map[proto.Key][]Op), invokes: make(map[uint64]pendingInv)}
}

// Invoke records an operation's start. ID must be unique across the run.
func (h *History) Invoke(id uint64, key proto.Key, kind Kind, arg, exp proto.Value, at time.Duration) {
	h.invokes[id] = pendingInv{key: key, op: Op{ID: id, Kind: kind, Arg: arg, Exp: exp, Invoke: at, Return: Pending}}
}

// Return records an operation's completion; out is its observed output.
// kindOverride lets a CAS resolve to KCASOk/KCASFail at completion time
// (pass the invoked kind otherwise).
func (h *History) Return(id uint64, kindOverride Kind, out proto.Value, at time.Duration) {
	inv, ok := h.invokes[id]
	if !ok {
		return
	}
	delete(h.invokes, id)
	inv.op.Kind = kindOverride
	inv.op.Out = out
	inv.op.Return = at
	h.byKey[inv.key] = append(h.byKey[inv.key], inv.op)
}

// Discard removes an invocation that is known to have had no effect (e.g.
// an RMW that reported Aborted: Hermes guarantees aborted RMWs never
// applied).
func (h *History) Discard(id uint64) {
	delete(h.invokes, id)
}

// Close moves still-pending invocations into their key histories as
// Pending ops (they may or may not have taken effect).
func (h *History) Close() {
	for id, inv := range h.invokes {
		h.byKey[inv.key] = append(h.byKey[inv.key], inv.op)
		delete(h.invokes, id)
	}
}

// Keys returns the recorded keys.
func (h *History) Keys() []proto.Key {
	ks := make([]proto.Key, 0, len(h.byKey))
	for k := range h.byKey {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Ops returns a key's recorded operations.
func (h *History) Ops(k proto.Key) []Op { return h.byKey[k] }

// CheckAll verifies every key's history; it returns the first failing key
// and its result, or ok.
func (h *History) CheckAll() (proto.Key, Result, bool) {
	for _, k := range h.Keys() {
		if res := CheckRegister(h.byKey[k]); !res.OK {
			return k, res, false
		}
	}
	return 0, Result{OK: true}, true
}
