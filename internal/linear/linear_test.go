package linear

import (
	"testing"
	"time"

	"repro/internal/proto"
)

func v(s string) proto.Value { return proto.Value(s) }

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestEmptyHistoryIsLinearizable(t *testing.T) {
	if res := CheckRegister(nil); !res.OK {
		t.Fatal("empty history rejected")
	}
}

func TestSequentialHistoryOK(t *testing.T) {
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("a"), Invoke: ms(0), Return: ms(1)},
		{ID: 2, Kind: KRead, Out: v("a"), Invoke: ms(2), Return: ms(3)},
		{ID: 3, Kind: KWrite, Arg: v("b"), Invoke: ms(4), Return: ms(5)},
		{ID: 4, Kind: KRead, Out: v("b"), Invoke: ms(6), Return: ms(7)},
	}
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("sequential history rejected: %s", res.Info)
	}
}

func TestStaleReadRejected(t *testing.T) {
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("a"), Invoke: ms(0), Return: ms(1)},
		{ID: 2, Kind: KWrite, Arg: v("b"), Invoke: ms(2), Return: ms(3)},
		// Read strictly after both writes returns the old value: not lin.
		{ID: 3, Kind: KRead, Out: v("a"), Invoke: ms(4), Return: ms(5)},
	}
	if res := CheckRegister(ops); res.OK {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentWriteReadEitherValueOK(t *testing.T) {
	// A read overlapping a write may return old or new.
	for _, out := range []string{"", "n"} {
		ops := []Op{
			{ID: 1, Kind: KWrite, Arg: v("n"), Invoke: ms(0), Return: ms(10)},
			{ID: 2, Kind: KRead, Out: v(out), Invoke: ms(2), Return: ms(8)},
		}
		if res := CheckRegister(ops); !res.OK {
			t.Fatalf("overlapping read of %q rejected: %s", out, res.Info)
		}
	}
}

func TestReadMustNotTravelBackwards(t *testing.T) {
	// Two sequential reads during one long write: once the second read sees
	// the new value, a LATER read may not see the old one.
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("n"), Invoke: ms(0), Return: ms(100)},
		{ID: 2, Kind: KRead, Out: v("n"), Invoke: ms(10), Return: ms(20)},
		{ID: 3, Kind: KRead, Out: v(""), Invoke: ms(30), Return: ms(40)},
	}
	if res := CheckRegister(ops); res.OK {
		t.Fatal("non-monotone reads accepted")
	}
}

func TestPendingWriteMayOrMayNotApply(t *testing.T) {
	// A write whose client crashed may be observed...
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("x"), Invoke: ms(0), Return: Pending},
		{ID: 2, Kind: KRead, Out: v("x"), Invoke: ms(5), Return: ms(6)},
	}
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("pending write observed rejected: %s", res.Info)
	}
	// ...or never take effect.
	ops[1].Out = v("")
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("pending write unobserved rejected: %s", res.Info)
	}
}

func TestPendingWriteCannotFlipFlop(t *testing.T) {
	// Observed then unobserved: violation even though the write is pending.
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("x"), Invoke: ms(0), Return: Pending},
		{ID: 2, Kind: KRead, Out: v("x"), Invoke: ms(5), Return: ms(6)},
		{ID: 3, Kind: KRead, Out: v(""), Invoke: ms(7), Return: ms(8)},
	}
	if res := CheckRegister(ops); res.OK {
		t.Fatal("flip-flopping pending write accepted")
	}
}

func TestFAASemantics(t *testing.T) {
	d := proto.EncodeInt64
	ops := []Op{
		{ID: 1, Kind: KFAA, Arg: d(5), Out: v(""), Invoke: ms(0), Return: ms(1)},
		{ID: 2, Kind: KFAA, Arg: d(3), Out: d(5), Invoke: ms(2), Return: ms(3)},
		{ID: 3, Kind: KRead, Out: d(8), Invoke: ms(4), Return: ms(5)},
	}
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("FAA chain rejected: %s", res.Info)
	}
	// Wrong old value.
	ops[1].Out = d(4)
	if res := CheckRegister(ops); res.OK {
		t.Fatal("FAA with wrong prior accepted")
	}
}

func TestConcurrentFAAsMustSerialize(t *testing.T) {
	d := proto.EncodeInt64
	// Two concurrent FAA(1) both reporting prior 0: lost update.
	ops := []Op{
		{ID: 1, Kind: KFAA, Arg: d(1), Out: v(""), Invoke: ms(0), Return: ms(10)},
		{ID: 2, Kind: KFAA, Arg: d(1), Out: v(""), Invoke: ms(1), Return: ms(9)},
	}
	if res := CheckRegister(ops); res.OK {
		t.Fatal("lost update accepted")
	}
	// Correct serialization: one sees 0, the other 1.
	ops[1].Out = d(1)
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("serialized FAAs rejected: %s", res.Info)
	}
}

func TestCASSemantics(t *testing.T) {
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("a"), Invoke: ms(0), Return: ms(1)},
		{ID: 2, Kind: KCASOk, Exp: v("a"), Arg: v("b"), Invoke: ms(2), Return: ms(3)},
		{ID: 3, Kind: KCASFail, Exp: v("a"), Out: v("b"), Invoke: ms(4), Return: ms(5)},
		{ID: 4, Kind: KRead, Out: v("b"), Invoke: ms(6), Return: ms(7)},
	}
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("CAS chain rejected: %s", res.Info)
	}
	// A CAS-ok that could not have matched.
	bad := []Op{
		{ID: 1, Kind: KWrite, Arg: v("a"), Invoke: ms(0), Return: ms(1)},
		{ID: 2, Kind: KCASOk, Exp: v("z"), Arg: v("b"), Invoke: ms(2), Return: ms(3)},
	}
	if res := CheckRegister(bad); res.OK {
		t.Fatal("impossible CAS-ok accepted")
	}
	// A CAS-fail that should have succeeded.
	bad2 := []Op{
		{ID: 1, Kind: KWrite, Arg: v("a"), Invoke: ms(0), Return: ms(1)},
		{ID: 2, Kind: KCASFail, Exp: v("a"), Out: v("a"), Invoke: ms(2), Return: ms(3)},
	}
	if res := CheckRegister(bad2); res.OK {
		t.Fatal("impossible CAS-fail accepted")
	}
}

func TestDeepConcurrencySearch(t *testing.T) {
	// Many overlapping writes with a read that matches only one specific
	// linearization: the search must find it.
	ops := []Op{
		{ID: 1, Kind: KWrite, Arg: v("a"), Invoke: ms(0), Return: ms(100)},
		{ID: 2, Kind: KWrite, Arg: v("b"), Invoke: ms(0), Return: ms(100)},
		{ID: 3, Kind: KWrite, Arg: v("c"), Invoke: ms(0), Return: ms(100)},
		{ID: 4, Kind: KWrite, Arg: v("d"), Invoke: ms(0), Return: ms(100)},
		{ID: 5, Kind: KRead, Out: v("c"), Invoke: ms(50), Return: ms(60)},
		{ID: 6, Kind: KRead, Out: v("a"), Invoke: ms(70), Return: ms(80)},
	}
	if res := CheckRegister(ops); !res.OK {
		t.Fatalf("valid deep interleaving rejected: %s", res.Info)
	}
	// Now force a contradiction: after reading "c" then "a", a third read
	// in sequence sees "c" again while no more writes overlap it.
	ops = append(ops, Op{ID: 7, Kind: KRead, Out: v("e"), Invoke: ms(200), Return: ms(201)})
	if res := CheckRegister(ops); res.OK {
		t.Fatal("read of never-written value accepted")
	}
}

func TestHistoryRecorder(t *testing.T) {
	h := NewHistory()
	h.Invoke(1, 5, KWrite, v("x"), nil, ms(0))
	h.Return(1, KWrite, nil, ms(1))
	h.Invoke(2, 5, KRead, nil, nil, ms(2))
	h.Return(2, KRead, v("x"), ms(3))
	h.Invoke(3, 5, KWrite, v("crashed"), nil, ms(4))
	h.Invoke(4, 9, KFAA, proto.EncodeInt64(1), nil, ms(0))
	h.Discard(4) // aborted: provably never applied
	h.Close()

	keys := h.Keys()
	if len(keys) != 1 || keys[0] != 5 {
		t.Fatalf("keys=%v", keys)
	}
	ops := h.Ops(5)
	if len(ops) != 3 {
		t.Fatalf("%d ops", len(ops))
	}
	if _, _, ok := h.CheckAll(); !ok {
		t.Fatal("recorded history rejected")
	}
}

func TestCheckAllFindsViolatingKey(t *testing.T) {
	h := NewHistory()
	h.Invoke(1, 1, KWrite, v("a"), nil, ms(0))
	h.Return(1, KWrite, nil, ms(1))
	h.Invoke(2, 1, KRead, nil, nil, ms(2))
	h.Return(2, KRead, v("WRONG"), ms(3))
	h.Close()
	k, res, ok := h.CheckAll()
	if ok || k != 1 || res.OK {
		t.Fatalf("violation not found: key=%d res=%+v ok=%v", k, res, ok)
	}
}

func TestReturnWithoutInvokeIgnored(t *testing.T) {
	h := NewHistory()
	h.Return(99, KRead, v("x"), ms(1)) // no such invocation
	h.Close()
	if len(h.Keys()) != 0 {
		t.Fatal("phantom op recorded")
	}
}
