package server

import (
	"encoding/binary"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/wings"
)

// serveGroup stands up a 3-replica sharded group, fronts node 0 with a wire
// server, and returns the listen address plus a teardown.
func serveGroup(t *testing.T, shards int, cfg Config) (addr string, srv *Server, teardown func()) {
	t.Helper()
	l := cluster.NewShardedLocal(cluster.LocalConfig{N: 3}, shards)
	cfg.Backend = l.Nodes[0]
	srv = New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, func() {
		srv.Close()
		l.Close()
	}
}

func TestWireRoundTrip(t *testing.T) {
	addr, srv, down := serveGroup(t, 2, Config{})
	defer down()
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if w := c.Window(); w != DefaultWindow {
		t.Fatalf("granted window %d, want %d", w, DefaultWindow)
	}

	const k = proto.Key(7)
	if err := c.Write(k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read(k); err != nil || string(v) != "v1" {
		t.Fatalf("read=%q err=%v", v, err)
	}
	if ok, _, err := c.CAS(k, []byte("v1"), []byte("v2")); err != nil || !ok {
		t.Fatalf("cas swapped=%v err=%v", ok, err)
	}
	if ok, obs, err := c.CAS(k, []byte("v1"), []byte("v3")); err != nil || ok || string(obs) != "v2" {
		t.Fatalf("cas2 swapped=%v obs=%q err=%v", ok, obs, err)
	}
	const ctr = proto.Key(8)
	if err := c.Write(ctr, proto.EncodeInt64(10)); err != nil {
		t.Fatal(err)
	}
	if prior, err := c.FAA(ctr, 5); err != nil || prior != 10 {
		t.Fatalf("faa prior=%d err=%v", prior, err)
	}
	if v, err := c.Read(ctr); err != nil || proto.DecodeInt64(v) != 15 {
		t.Fatalf("counter=%v err=%v", v, err)
	}
	if st := srv.Stats(); st.Reqs == 0 || st.Accepted != 1 || st.Active != 1 {
		t.Fatalf("stats=%+v", st)
	}
	// A second read of a Valid key must take the lock-free path.
	before := srv.Stats().FastReads
	if _, err := c.Read(k); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().FastReads <= before {
		t.Fatal("valid-key read did not take the fast path")
	}
}

// TestPipelinedDo keeps the whole window in flight from one goroutine.
func TestPipelinedDo(t *testing.T) {
	addr, _, down := serveGroup(t, 2, Config{})
	defer down()
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 2000
	if err := c.Write(proto.Key(1), []byte("seed")); err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	errs := make(chan error, 1)
	for i := 0; i < n; i++ {
		op, key := proto.OpRead, proto.Key(1)
		var val proto.Value
		if i%4 == 0 {
			op, key, val = proto.OpWrite, proto.Key(i%16), []byte("x")
		}
		err := c.Do(op, key, val, nil, func(r proto.ClientResp, err error) {
			if err == nil && r.Status != proto.OK {
				err = client.ErrNotOperational
			}
			if err != nil {
				select {
				case errs <- err:
				default:
				}
			}
			done.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for done.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d responses", done.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestBadHandshakeRejected(t *testing.T) {
	addr, srv, down := serveGroup(t, 1, Config{})
	defer down()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("junk"))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err != io.EOF {
		t.Fatalf("want EOF after bad magic, got %v", err)
	}
	if st := srv.Stats(); st.Reqs != 0 {
		t.Fatalf("rejected session served requests: %+v", st)
	}
}

// rawSession handshakes by hand and returns the conn plus granted window.
func rawSession(t *testing.T, addr string) (net.Conn, int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wings.ClientMagic[:]); err != nil {
		t.Fatal(err)
	}
	var reply [8]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		t.Fatal(err)
	}
	return conn, int(binary.LittleEndian.Uint32(reply[4:]))
}

// TestNonClientMessageKillsSession: mesh protocol messages on a client
// session are a protocol violation, not traffic to route.
func TestNonClientMessageKillsSession(t *testing.T) {
	addr, _, down := serveGroup(t, 1, Config{})
	defer down()
	conn, _ := rawSession(t, addr)
	defer conn.Close()
	frame, err := wings.Encode(proto.MUpdate{View: proto.View{Epoch: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var b [1]byte
	if _, err := conn.Read(b[:]); err == nil {
		t.Fatal("session survived a mesh message")
	}
}

// TestBlasterKilled: a session that pipelines past MaxInflight without
// reading responses is killed at the bound; a concurrent compliant session
// is unaffected. This is the admission-control regression test: a
// credit-exhausted, unread session must not stall other sessions or the
// shard event loops.
func TestBlasterKilled(t *testing.T) {
	addr, srv, down := serveGroup(t, 2, Config{Window: 8, MaxInflight: 64})
	defer down()

	blaster, _ := rawSession(t, addr)
	defer blaster.Close()
	// Blast far past MaxInflight without ever reading. Writes (not reads) so
	// every one crosses a shard event loop. The server must cut the
	// connection; the write eventually fails once TCP buffers the kill.
	var buf []byte
	for i := 0; i < 200; i++ {
		var err error
		buf, err = wings.AppendFrame(buf[:0], proto.ClientReq{
			Seq: uint64(i + 1), Op: proto.OpWrite, Key: proto.Key(i), Value: []byte("x"),
		})
		if err != nil {
			t.Fatal(err)
		}
		blaster.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := blaster.Write(buf); err != nil {
			break // killed mid-blast: exactly what we want
		}
	}
	blaster.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := blaster.Read(make([]byte, 1<<16)); err == nil {
		// Drain until the kill surfaces.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := blaster.Read(make([]byte, 1<<16)); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("blaster session not killed")
			}
		}
	}

	// The compliant session proceeds at full function while (and after) the
	// blaster is being shot.
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(proto.Key(1000), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read(proto.Key(1000)); err != nil || string(v) != "ok" {
		t.Fatalf("read=%q err=%v", v, err)
	}
	if st := srv.Stats(); st.Killed == 0 {
		t.Fatalf("blaster not recorded as killed: %+v", st)
	}
}

// TestStalledReaderDoesNotBlockOthers: a session that stops reading (but
// stays under MaxInflight, so it is never killed) wedges only its own
// flusher. Other sessions and the shard event loops keep serving.
func TestStalledReaderDoesNotBlockOthers(t *testing.T) {
	addr, _, down := serveGroup(t, 2, Config{Window: 8, MaxInflight: 64})
	defer down()

	stalled, _ := rawSession(t, addr)
	defer stalled.Close()
	// Submit under the bound, never read a byte: responses queue server-side
	// behind a flusher wedged on this socket.
	var buf []byte
	for i := 0; i < 32; i++ {
		var err error
		buf, err = wings.AppendFrame(buf[:0], proto.ClientReq{
			Seq: uint64(i + 1), Op: proto.OpWrite, Key: proto.Key(i), Value: []byte("stall"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stalled.Write(buf); err != nil {
			t.Fatalf("stalled session killed prematurely: %v", err)
		}
	}

	// Every shard still serves a healthy session promptly, touching the same
	// keys the stalled session wrote (same shards, same event loops).
	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < 32; i++ {
		if err := c.Write(proto.Key(i), []byte("live")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Read(proto.Key(i)); err != nil || string(v) != "live" {
			t.Fatalf("read=%q err=%v", v, err)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("healthy session crawled (%v) behind a stalled one", d)
	}
}

// TestClientReconnect: after the server restarts, the next op on an existing
// client lazily redials instead of failing forever.
func TestClientReconnect(t *testing.T) {
	l := cluster.NewShardedLocal(cluster.LocalConfig{N: 3}, 2)
	defer l.Close()
	srv := New(Config{Backend: l.Nodes[0]})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(proto.Key(1), []byte("pre")); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// The in-flight-free client notices on its next op; it may fail once
	// while the pump races the close.
	srv2 := New(Config{Backend: l.Nodes[0]})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := c.Read(proto.Key(1))
		if err == nil {
			if string(v) != "pre" {
				t.Fatalf("read=%q after reconnect", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
