package server

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/transport"
)

// liveMeshGroup stands up n sharded replicas over loopback TCP — real wings
// frames, real pooled frame buffers, so INVs arrive at every follower
// owner-backed and the stores adopt wire memory.
func liveMeshGroup(t *testing.T, n, shards int) ([]*cluster.ShardedNode, func()) {
	t.Helper()
	// Reserve loopback ports first: NewMesh needs every peer's address up
	// front, and outside package transport the address map cannot be patched
	// after construction.
	addrs := make(map[proto.NodeID]string)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[proto.NodeID(i)] = ln.Addr().String()
	}
	members := make([]proto.NodeID, n)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	meshes := make([]*transport.Mesh, n)
	nodes := make([]*cluster.ShardedNode, n)
	for i := 0; i < n; i++ {
		lns[i].Close() // release the reserved port just before rebinding it
		m, err := transport.NewMesh(proto.NodeID(i), addrs)
		if err != nil {
			t.Fatalf("mesh %d: %v", i, err)
		}
		meshes[i] = m
		nodes[i] = cluster.NewShardedNode(cluster.ShardedConfig{
			ID: proto.NodeID(i), View: proto.View{Epoch: 1, Members: members},
			MLT: 50 * time.Millisecond, Shards: shards,
		}, m)
	}
	return nodes, func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, m := range meshes {
			m.Close()
		}
	}
}

// TestHotKeyRetainedReadsUnderWriteStorm is the server response-escape
// regression, end to end and under -race: node 1 storms writes to one hot
// key, so node 0's store continuously adopts and releases wire frame buffers,
// while 64 pipelined readers drain that key through node 0's wire server —
// whose fast path pins the store buffer (ReadLocalRetained) across the
// session flusher's batch encode. Every write fills the value with one
// repeated byte: a response encoded from a buffer that was released early
// (recycled mid-encode) comes back torn, and the race detector sees the
// unsynchronized reuse.
func TestHotKeyRetainedReadsUnderWriteStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP storm")
	}
	nodes, down := liveMeshGroup(t, 3, 2)
	defer down()
	srv := New(Config{Backend: nodes[0]})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const hot = proto.Key(99)
	const valLen = 96
	seed := make(proto.Value, valLen)
	for i := range seed {
		seed[i] = 1
	}
	if err := nodes[1].Write(ctx, hot, seed); err != nil {
		t.Fatal(err)
	}

	var storming atomic.Bool
	storming.Store(true)
	writerErr := make(chan error, 1)
	go func() {
		defer storming.Store(false)
		val := make(proto.Value, valLen)
		for i := 0; i < 400; i++ {
			fill := byte(i%250 + 1)
			for j := range val {
				val[j] = fill
			}
			if err := nodes[1].Write(ctx, hot, val); err != nil {
				writerErr <- err
				return
			}
		}
		writerErr <- nil
	}()

	const readers = 64
	var wg sync.WaitGroup
	var reads, torn atomic.Int64
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(ln.Addr().String(), client.Config{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for storming.Load() {
				v, err := c.Read(hot)
				if err != nil {
					errs <- err
					return
				}
				if len(v) != valLen {
					torn.Add(1)
					continue
				}
				first := v[0]
				for _, b := range v {
					if b != first {
						torn.Add(1)
						break
					}
				}
				reads.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-writerErr; err != nil {
		t.Fatal(err)
	}
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn responses of %d reads: a response escaped its buffer's lifetime", n, reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("storm finished before any read completed")
	}

	// Post-storm the key settles Valid with its last value adopted from a
	// wire INV — owner-backed store memory. Reads now take the retained fast
	// path: pin, coalesce, encode, release. During the storm the key is
	// Invalid at the follower almost continuously, so this is where the
	// retained path is provably exercised.
	c, err := client.Dial(ln.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	settle := time.After(10 * time.Second)
	for srv.Stats().FastReads == 0 {
		v, err := c.Read(hot)
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != valLen {
			t.Fatalf("settled read length %d, want %d", len(v), valLen)
		}
		for _, b := range v {
			if b != v[0] {
				t.Fatalf("settled read torn: %x", v[:8])
			}
		}
		select {
		case <-settle:
			t.Fatal("no fast reads: the retained-read path was never exercised")
		default:
		}
	}
}
