// Package server is the wire-native client serving layer: it multiplexes
// thousands of pipelined client sessions onto a node's W shard engines
// without reintroducing the per-node serialization point the sharded engine
// removed (paper §4.1; the partitioned client-session front ends of FaRM and
// ScaleStore follow the same shape).
//
// Each accepted connection becomes one session with one read-pump goroutine.
// Requests route straight to the owning shard via proto.ShardOf: reads are
// served lock-free ON THE SESSION GOROUTINE through the backend's ReadLocal
// fast path — a wire read that hits a Valid key never touches any event
// loop — and writes/RMWs (plus reads that miss the fast path) are submitted
// asynchronously to the shard engine, whose completion callback enqueues the
// response. Responses fan back per session through an opportunistic
// coalescer: whatever completions accumulate while a flush is in flight ship
// as one frame (the per-peer egress batching of the sharded engine, applied
// per session).
//
// Admission control bounds server memory per session without any shared
// lock: a session's outstanding count — requests received minus responses
// flushed to the socket — may never exceed MaxInflight. A compliant client
// respects the window granted at handshake (Window < MaxInflight) and is
// never touched; a client that blasts past the window, or stops reading
// responses while continuing to send (so TCP backpressure wedges the
// session's flusher and the response queue grows), is killed at the bound.
// Either way the damage stays on that session: its pump and flusher block or
// die, while other sessions and every shard event loop proceed — completion
// callbacks into a dead or wedged session enqueue-and-return (or drop),
// never block.
package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/proto"
	"repro/internal/refbuf"
	"repro/internal/wings"
)

// Backend is the op-serving surface a session needs from the node: the
// lock-free local-read fast path and asynchronous submission to the owning
// shard. Both cluster.Node and cluster.ShardedNode satisfy it.
type Backend interface {
	// ReadLocal attempts the §4.1 lock-free read on the caller's goroutine;
	// ok=false means fall back to SubmitAsync.
	ReadLocal(key proto.Key) (proto.Value, bool)
	// SubmitAsync hands op to the owning shard's event loop; fn runs on that
	// loop with the completion and must not block.
	SubmitAsync(op proto.ClientOp, fn func(proto.Completion)) error
}

// RetainedReader is the zero-copy upgrade of Backend.ReadLocal, detected by
// type assertion at New: a fast read returns the store's value pinned (a
// non-nil owner holds one reference on the pooled frame buffer the value
// aliases) instead of ReadLocal's defensive copy. The serving layer keeps
// the pin across the response coalescer and releases it once the flusher has
// encoded the bytes into the outgoing frame — the fix for the response-value
// escape, where a queued response's value could be recycled (and its bytes
// rewritten by an unrelated inbound frame) between enqueue and encode.
// cluster.Node and cluster.ShardedNode both implement it.
type RetainedReader interface {
	ReadLocalRetained(key proto.Key) (proto.Value, *refbuf.Buf, bool)
}

// DefaultWindow is the pipelining window granted to clients at handshake.
const DefaultWindow = 256

// DefaultMaxInflight is the per-session outstanding-request bound that kills
// a session exceeding it. It must be comfortably above the granted window so
// a compliant client can never trip it, yet small enough that a hostile
// blaster's response queue stays bounded.
const DefaultMaxInflight = 1024

// Config parameterizes a Server.
type Config struct {
	Backend Backend
	// Window is the pipelining window granted to clients (default
	// DefaultWindow). Must be < MaxInflight.
	Window int
	// MaxInflight kills any session whose outstanding count (requests
	// received − responses flushed) exceeds it (default DefaultMaxInflight).
	MaxInflight int
}

// Server accepts and serves client sessions. One Server fronts one node
// (plain or sharded); construct with New, drive with Serve, stop with Close.
type Server struct {
	cfg Config
	// rr is cfg.Backend's RetainedReader upgrade, nil when the backend only
	// offers the copying ReadLocal (test fakes, third-party backends).
	rr RetainedReader

	mu       sync.Mutex
	lns      []net.Listener
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup

	accepted  atomic.Uint64
	killed    atomic.Uint64
	reqs      atomic.Uint64
	fastReads atomic.Uint64
}

// New builds a Server over cfg.Backend.
func New(cfg Config) *Server {
	if cfg.Backend == nil {
		panic("server: nil backend")
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxInflight <= cfg.Window {
		cfg.MaxInflight = cfg.Window * 4
	}
	rr, _ := cfg.Backend.(RetainedReader)
	return &Server{cfg: cfg, rr: rr, sessions: make(map[*session]struct{})}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts sessions on ln until Close (or a listener error) and blocks
// while doing so; run it on its own goroutine. Multiple concurrent Serve
// calls on different listeners are allowed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.accepted.Add(1)
		sess := &session{srv: s, conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go sess.run()
	}
}

// Close stops accepting, closes every live session's connection, and waits
// for their pumps to exit. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	lns := s.lns
	var sess []*session
	for se := range s.sessions {
		sess = append(sess, se)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, se := range sess {
		se.kill()
	}
	s.wg.Wait()
	return nil
}

// Stats is a snapshot of the server's session counters.
type Stats struct {
	Accepted, Active, Killed uint64
	// Reqs counts requests admitted; FastReads the subset answered by the
	// lock-free ReadLocal path on the session goroutine.
	Reqs, FastReads uint64
}

// Stats reports live counters; safe mid-traffic.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := uint64(len(s.sessions))
	s.mu.Unlock()
	return Stats{
		Accepted:  s.accepted.Load(),
		Active:    active,
		Killed:    s.killed.Load(),
		Reqs:      s.reqs.Load(),
		FastReads: s.fastReads.Load(),
	}
}

// session is one client connection: a read pump (run), an outstanding
// counter for admission, and a response coalescer (enqueue/flushLoop).
type session struct {
	srv  *Server
	conn net.Conn

	// outstanding = requests received − responses flushed to the socket; the
	// pump kills the session when it exceeds MaxInflight. Also bounds the
	// response queue: every queued response is an outstanding request.
	outstanding atomic.Int64

	mu       sync.Mutex
	queue    []queuedResp
	flushing bool
	dead     bool
}

// queuedResp is one response awaiting flush. A non-nil owner pins the pooled
// frame buffer resp.Value aliases (the zero-copy fast-read path); the
// session releases it after the flusher encodes the bytes — or on any drop
// path (dead enqueue, kill) that means the bytes will never be encoded.
type queuedResp struct {
	resp  proto.ClientResp
	owner *refbuf.Buf
}

// errTooManyInflight kills a session that exceeded its outstanding bound.
var errTooManyInflight = errors.New("server: session exceeded inflight bound")

// errNotClientMsg kills a session that sent a non-client-protocol message.
var errNotClientMsg = errors.New("server: unexpected message type on client session")

func (se *session) run() {
	defer se.srv.wg.Done()
	defer se.finish()
	if !se.handshake() {
		return
	}
	err := wings.ServeFrames(se.conn, se.handle)
	if err != nil && err != io.EOF {
		// Protocol violations (bad frames, unknown types, inflight bound) are
		// already terminal here; nothing to report per session.
		if errors.Is(err, errTooManyInflight) {
			se.srv.killed.Add(1)
		}
	}
}

// handshake validates the client magic and grants the pipelining window.
func (se *session) handshake() bool {
	var magic [4]byte
	if _, err := io.ReadFull(se.conn, magic[:]); err != nil || magic != wings.ClientMagic {
		return false
	}
	var reply [8]byte
	copy(reply[:], wings.ClientMagic[:])
	w := se.srv.cfg.Window
	reply[4] = byte(w)
	reply[5] = byte(w >> 8)
	reply[6] = byte(w >> 16)
	reply[7] = byte(w >> 24)
	_, err := se.conn.Write(reply[:])
	return err == nil
}

// handle processes one decoded request on the session goroutine. Returning
// an error aborts the stream (ServeFrames stops; finish closes the conn).
func (se *session) handle(msg any) error {
	req, ok := msg.(proto.ClientReq)
	if !ok {
		return errNotClientMsg
	}
	if se.outstanding.Add(1) > int64(se.srv.cfg.MaxInflight) {
		return errTooManyInflight
	}
	se.srv.reqs.Add(1)
	if req.Op == proto.OpRead {
		if rr := se.srv.rr; rr != nil {
			if v, owner, ok := rr.ReadLocalRetained(req.Key); ok {
				se.srv.fastReads.Add(1)
				se.enqueue(queuedResp{resp: proto.ClientResp{Seq: req.Seq, Status: proto.OK, Value: v}, owner: owner})
				return nil
			}
		} else if v, ok := se.srv.cfg.Backend.ReadLocal(req.Key); ok {
			se.srv.fastReads.Add(1)
			se.enqueue(queuedResp{resp: proto.ClientResp{Seq: req.Seq, Status: proto.OK, Value: v}})
			return nil
		}
	}
	seq := req.Seq
	err := se.srv.cfg.Backend.SubmitAsync(proto.ClientOp{
		Kind: req.Op, Key: req.Key, Value: req.Value, Expected: req.Expected,
	}, func(c proto.Completion) {
		// Shard event-loop context: enqueue-and-return, never block.
		// Completion values are safeVal'd by the engine — no owner to carry.
		se.enqueue(queuedResp{resp: proto.ClientResp{Seq: seq, Status: c.Status, Value: c.Value}})
	})
	if err != nil {
		// Node shutting down: tell the client to retry elsewhere rather than
		// cutting the stream mid-pipeline.
		se.enqueue(queuedResp{resp: proto.ClientResp{Seq: seq, Status: proto.NotOperational}})
	}
	return nil
}

// enqueue queues one response and kicks the flusher. Called from the session
// goroutine (inline reads) and from shard event loops (completions); never
// blocks beyond the queue mutex.
func (se *session) enqueue(qr queuedResp) {
	se.mu.Lock()
	if se.dead {
		se.mu.Unlock()
		// The response will never be encoded: spend its pin here.
		if qr.owner != nil {
			qr.owner.Release()
		}
		return
	}
	se.queue = append(se.queue, qr)
	if !se.flushing {
		se.flushing = true
		go se.flushLoop()
	}
	se.mu.Unlock()
}

// flushLoop drains the response queue into coalesced frames. Opportunistic
// batching exactly like the wings link flusher: while a socket write is in
// flight, completions pile into queue and ship together. A stalled reader
// blocks only this goroutine — the pump keeps counting outstanding and kills
// the session at the bound.
func (se *session) flushLoop() {
	var buf []byte
	var resps []proto.ClientResp
	for {
		se.mu.Lock()
		if len(se.queue) == 0 || se.dead {
			se.flushing = false
			se.mu.Unlock()
			return
		}
		batch := se.queue
		if len(batch) > wings.MaxFrameMsgs {
			batch = batch[:wings.MaxFrameMsgs]
			se.queue = se.queue[wings.MaxFrameMsgs:]
		} else {
			se.queue = nil
		}
		se.mu.Unlock()

		resps = resps[:0]
		for _, qr := range batch {
			resps = append(resps, qr.resp)
		}
		// Monomorphic encode: no per-response interface boxing, so a flush
		// with warm scratch buffers allocates nothing.
		frame, err := wings.AppendClientResps(buf[:0], resps)
		// The frame holds private copies of every value now; the pinned
		// buffers' last use is behind us either way (on the error path the
		// bytes will never be encoded at all).
		releaseBatch(batch)
		if err != nil {
			se.kill()
			return
		}
		buf = frame
		if _, err := se.conn.Write(frame); err != nil {
			se.kill()
			return
		}
		se.outstanding.Add(-int64(len(batch)))
	}
}

// releaseBatch spends the frame-buffer pins of a drained queue segment.
func releaseBatch(batch []queuedResp) {
	for i := range batch {
		if batch[i].owner != nil {
			batch[i].owner.Release()
		}
	}
}

// kill marks the session dead and closes its connection, unblocking both the
// pump (read error) and the flusher (write error). Idempotent.
func (se *session) kill() {
	se.mu.Lock()
	already := se.dead
	se.dead = true
	q := se.queue
	se.queue = nil
	se.mu.Unlock()
	// Queued responses die with the session; their pins must not.
	releaseBatch(q)
	if !already {
		se.conn.Close()
	}
}

// finish tears the session down after the pump exits.
func (se *session) finish() {
	se.kill()
	se.srv.mu.Lock()
	delete(se.srv.sessions, se)
	se.srv.mu.Unlock()
}
