// Package refbuf provides pooled, reference-counted byte buffers — the
// ownership substrate of the zero-copy wire-to-store value path. A receive
// loop gets a frame buffer from a Pool (refcount 1), decoders retain it once
// per value that aliases the frame, and every holder releases when done; the
// buffer returns to the pool only when the last reference drops. RCU-style
// asymmetric sharing (cf. sRSP): writers hand ownership forward exactly once
// per hop, readers pay one atomic on retain/release and zero copies.
//
// Discipline, enforced by panics on misuse:
//
//   - Retain requires the caller to already hold a reference (refs > 0);
//     retaining a released buffer is a use-after-free in the making.
//   - TryRetain is the reader-side entry point: it fails (rather than
//     panics) when the count has hit zero, letting lock-free readers race
//     a concurrent release and retry against fresher state.
//   - Release below zero panics: a double release is a latent corruption
//     that must not be absorbed silently.
//
// A Buf's bytes must be treated as immutable while any reference other than
// the filler's initial one exists.
package refbuf

import (
	"sync"
	"sync/atomic"
)

// maxPooledCap bounds the byte capacity a pooled buffer may retain between
// uses. Jumbo frames (up to the codec's 16 MB bound) would otherwise pin
// their worst-case allocation in the pool forever; past the bound the bytes
// are dropped and only the Buf header is recycled.
const maxPooledCap = 1 << 20

// Buf is one refcounted buffer. The zero value is invalid; obtain Bufs from
// a Pool.
type Buf struct {
	refs atomic.Int32
	b    []byte
	pool *Pool
}

// Bytes returns the buffer's payload. Valid only while the caller holds a
// reference; the slice (and any sub-slice of it) must not be read after the
// matching Release.
func (b *Buf) Bytes() []byte { return b.b }

// Refs reports the current reference count (diagnostics and tests).
func (b *Buf) Refs() int32 { return b.refs.Load() }

// Retain adds a reference on behalf of a caller that already holds one —
// the decode path retaining the frame once per value that aliases it.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("refbuf: Retain of released buffer")
	}
}

// TryRetain adds a reference only if the count is still positive. Lock-free
// readers use it to pin a buffer they discovered through a shared pointer:
// failure means the owner released concurrently, and the reader must reload
// fresher state rather than touch the bytes.
func (b *Buf) TryRetain() bool {
	for {
		r := b.refs.Load()
		if r <= 0 {
			return false
		}
		if b.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference; the last release returns the buffer to its
// pool. Releasing more times than retained panics — a double release would
// let the pool hand the same bytes to two owners.
func (b *Buf) Release() {
	switch r := b.refs.Add(-1); {
	case r == 0:
		if b.pool != nil {
			b.pool.put(b)
		}
	case r < 0:
		panic("refbuf: Release of released buffer")
	}
}

// Pool recycles Bufs. The zero value is ready to use.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a buffer with len(Bytes()) == n and refcount 1. The bytes are
// not zeroed — callers overwrite them (a frame read fills the whole buffer).
func (p *Pool) Get(n int) *Buf {
	b, _ := p.p.Get().(*Buf)
	if b == nil {
		b = &Buf{pool: p}
	}
	if cap(b.b) < n {
		b.b = make([]byte, n)
	} else {
		b.b = b.b[:n]
	}
	b.refs.Store(1)
	return b
}

func (p *Pool) put(b *Buf) {
	if cap(b.b) > maxPooledCap {
		b.b = nil
	}
	p.p.Put(b)
}
