package refbuf

import (
	"sync"
	"testing"
)

// FuzzRefcountLifecycle drives random legal acquire/release interleavings —
// the refcount lifecycle target of the hermes-vet fuzz registry. The script
// bytes choose operations for a main holder and two concurrent pinners that
// only ever use TryRetain (the lock-free reader discipline); the property is
// balance: after every holder drops its references, the count is exactly
// zero and the buffer is reusable.
func FuzzRefcountLifecycle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 1})
	f.Add([]byte{2, 2, 2, 1, 1, 1, 1})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, script []byte) {
		p := NewPool()
		b := p.Get(16)
		held := 1 // references owned by the main goroutine

		// Concurrent pinners: retain-if-alive, touch, release. They can only
		// interleave with the main script's releases, which is exactly the
		// race GetRetained-style readers run.
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < len(script); i++ {
					if !b.TryRetain() {
						return
					}
					_ = b.Bytes()[0]
					b.Release()
				}
			}()
		}

		for _, op := range script {
			switch op % 3 {
			case 0: // retain, legal only while holding a reference
				if held > 0 {
					b.Retain()
					held++
				}
			case 1: // release one held reference
				if held > 0 {
					b.Release()
					held--
				}
			case 2: // reader-style pin/unpin
				if b.TryRetain() {
					b.Release()
				}
			}
		}
		for ; held > 0; held-- {
			b.Release()
		}
		wg.Wait()
		if r := b.Refs(); r != 0 {
			t.Fatalf("unbalanced lifecycle: final refs=%d", r)
		}
		if b.TryRetain() {
			t.Fatal("TryRetain succeeded after final release")
		}
		// The pool must hand the slot back out cleanly.
		nb := p.Get(8)
		if nb.Refs() != 1 || len(nb.Bytes()) != 8 {
			t.Fatalf("recycled buffer bad state: refs=%d len=%d", nb.Refs(), len(nb.Bytes()))
		}
		nb.Release()
	})
}
