package refbuf

import (
	"sync"
	"testing"
)

func TestGetRetainRelease(t *testing.T) {
	p := NewPool()
	b := p.Get(8)
	if got := len(b.Bytes()); got != 8 {
		t.Fatalf("len=%d want 8", got)
	}
	if b.Refs() != 1 {
		t.Fatalf("fresh refs=%d want 1", b.Refs())
	}
	b.Retain()
	if b.Refs() != 2 {
		t.Fatalf("refs=%d want 2", b.Refs())
	}
	b.Release()
	b.Release()
	if b.Refs() != 0 {
		t.Fatalf("refs=%d want 0", b.Refs())
	}
}

func TestPoolRecyclesOnlyAtZero(t *testing.T) {
	p := NewPool()
	b := p.Get(16)
	b.Retain() // refs=2: the buffer must NOT be reusable after one release
	b.Release()
	b2 := p.Get(16)
	if b2 == b {
		t.Fatal("pool handed out a buffer that still has a reference")
	}
	b.Release()
	b2.Release()
}

func TestTryRetainFailsAtZero(t *testing.T) {
	p := NewPool()
	b := p.Get(4)
	if !b.TryRetain() {
		t.Fatal("TryRetain failed with refs=1")
	}
	b.Release()
	b.Release()
	if b.TryRetain() {
		t.Fatal("TryRetain succeeded on a released buffer")
	}
}

func TestRetainAfterReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get(4)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain of released buffer did not panic")
		}
	}()
	b.Retain()
}

func TestDoubleReleasePanics(t *testing.T) {
	// No pool: a pooled buffer's release-to-zero resets the count via Get,
	// so the double release must be caught on a still-dead buffer.
	b := &Buf{}
	b.refs.Store(1)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestOversizedBufNotPooled(t *testing.T) {
	p := NewPool()
	b := p.Get(maxPooledCap + 1)
	b.Release()
	if b.b != nil {
		t.Fatal("jumbo byte slice retained in pool")
	}
}

// TestConcurrentTryRetainRelease races readers pinning a buffer against the
// owner releasing it; run under -race. The invariant: every successful
// TryRetain is matched by a Release, and the count ends at zero exactly once.
func TestConcurrentTryRetainRelease(t *testing.T) {
	p := NewPool()
	for iter := 0; iter < 200; iter++ {
		b := p.Get(32)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					if b.TryRetain() {
						_ = b.Bytes()[0]
						b.Release()
					} else {
						return // owner released; bytes are off limits
					}
				}
			}()
		}
		b.Release()
		wg.Wait()
		if r := b.Refs(); r != 0 {
			t.Fatalf("iter %d: final refs=%d", iter, r)
		}
	}
}
