package proto

import "testing"

func TestShardOfSingleShard(t *testing.T) {
	for _, k := range []Key{0, 1, 42, ^Key(0)} {
		if ShardOf(k, 1) != 0 {
			t.Fatalf("w=1 must map every key to shard 0, got %d for key %d", ShardOf(k, 1), k)
		}
		if ShardOf(k, 0) != 0 {
			t.Fatalf("w=0 must map every key to shard 0")
		}
	}
}

func TestShardOfStableAndInRange(t *testing.T) {
	for w := 2; w <= 16; w++ {
		for k := Key(0); k < 1000; k++ {
			s := ShardOf(k, w)
			if int(s) >= w {
				t.Fatalf("ShardOf(%d,%d)=%d out of range", k, w, s)
			}
			if s != ShardOf(k, w) {
				t.Fatalf("ShardOf not deterministic")
			}
		}
	}
}

func TestShardOfSpreadsUniformKeys(t *testing.T) {
	const w, n = 4, 100000
	var counts [w]int
	for k := Key(0); k < n; k++ {
		counts[ShardOf(k, w)]++
	}
	for s, c := range counts {
		// Dense and random keys alike should land within a few percent of
		// n/w; a 20% band catches gross skew without being flaky.
		if c < n/w*8/10 || c > n/w*12/10 {
			t.Fatalf("shard %d holds %d of %d keys (want ~%d)", s, c, n, n/w)
		}
	}
}
