// Package proto defines the types shared by every replication protocol in
// this repository: node and key identifiers, per-key logical timestamps,
// membership views, client operations and completions, and the two
// interfaces — Replica and Env — that decouple protocol state machines from
// the harness (discrete-event simulator or live goroutine runtime) that
// hosts them.
//
// Protocol implementations (internal/core, internal/craq, internal/zab,
// internal/lockstep) are single-threaded, deterministic state machines: all
// inputs arrive through Replica method calls, all outputs leave through the
// Env. This is what makes the same protocol code runnable under both
// simulated virtual time and a real cluster.
package proto

import (
	"fmt"
	"time"
)

// NodeID identifies a replica within a shard's replica group. Replication
// degree in the target deployments is 3-7 (paper §2.2), so a small integer
// domain is ample; virtual node IDs (optimization O2, paper §3.3) extend the
// coordinator-ID space and use a wider type, see TS.
type NodeID uint8

// NilNode is a sentinel for "no node".
const NilNode NodeID = 0xFF

// Key identifies an object in the store. The paper's evaluation uses 8-byte
// keys (§5.2); a uint64 matches that exactly.
type Key uint64

// Value is an object payload. The evaluation uses 32-byte values by default
// and up to 1 KB for the Derecho comparison (Fig. 8).
type Value []byte

// Clone returns a copy of v. Protocol code clones values at trust
// boundaries so callers may reuse buffers.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// TS is Hermes' per-key logical timestamp: a lexicographically ordered
// [version, cid] tuple implemented as a Lamport clock (paper §3.1). Version
// is incremented on every update (by 2 for writes and 1 for RMWs, §3.6);
// cid is the coordinator's node ID — or one of its virtual IDs under the
// fairness optimization O2, hence the wider uint16.
type TS struct {
	Version uint32
	CID     uint16
}

// After reports whether t orders strictly after o: higher version wins, and
// equal versions (concurrent writes) are broken by coordinator ID
// (footnote 5 of the paper).
func (t TS) After(o TS) bool {
	return t.Version > o.Version || (t.Version == o.Version && t.CID > o.CID)
}

// AtLeast reports t >= o in timestamp order.
func (t TS) AtLeast(o TS) bool { return t == o || t.After(o) }

// Before reports whether t orders strictly before o.
func (t TS) Before(o TS) bool { return o.After(t) }

// IsZero reports whether t is the initial (never written) timestamp.
func (t TS) IsZero() bool { return t.Version == 0 && t.CID == 0 }

func (t TS) String() string { return fmt.Sprintf("%d.%d", t.Version, t.CID) }

// Compare returns -1, 0 or +1 as t orders before, equal to or after o.
func (t TS) Compare(o TS) int {
	switch {
	case t == o:
		return 0
	case t.After(o):
		return 1
	default:
		return -1
	}
}

// View is a reliable-membership epoch: the set of live, serving members plus
// any learners (shadow replicas, paper §3.4 "Recovery") that participate as
// followers for writes but serve no client requests. Members and Learners
// are sorted and disjoint. Views are immutable once published.
type View struct {
	Epoch    uint32
	Members  []NodeID
	Learners []NodeID
}

// Contains reports whether n is a serving member of the view.
func (v View) Contains(n NodeID) bool {
	for _, m := range v.Members {
		if m == n {
			return true
		}
	}
	return false
}

// IsLearner reports whether n is a learner (shadow replica) in the view.
func (v View) IsLearner(n NodeID) bool {
	for _, m := range v.Learners {
		if m == n {
			return true
		}
	}
	return false
}

// Others returns all serving members except self.
func (v View) Others(self NodeID) []NodeID {
	out := make([]NodeID, 0, len(v.Members))
	for _, m := range v.Members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// WriteSet returns every node that must acknowledge a write initiated by
// self: all other members plus all learners (shadow replicas ACK writes so
// their copies stay fresh while they catch up).
func (v View) WriteSet(self NodeID) []NodeID {
	out := make([]NodeID, 0, len(v.Members)+len(v.Learners))
	for _, m := range v.Members {
		if m != self {
			out = append(out, m)
		}
	}
	for _, l := range v.Learners {
		if l != self {
			out = append(out, l)
		}
	}
	return out
}

// Quorum returns the majority size of the serving membership.
func (v View) Quorum() int { return len(v.Members)/2 + 1 }

// Clone deep-copies the view.
func (v View) Clone() View {
	c := View{Epoch: v.Epoch}
	c.Members = append([]NodeID(nil), v.Members...)
	c.Learners = append([]NodeID(nil), v.Learners...)
	return c
}

func (v View) String() string {
	return fmt.Sprintf("view{e=%d members=%v learners=%v}", v.Epoch, v.Members, v.Learners)
}

// OpKind enumerates the client operations every protocol in this repo
// supports: linearizable reads, writes and single-key RMWs (paper §3, §3.6).
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	// OpCAS is a compare-and-swap RMW: succeeds and installs Value iff the
	// current value equals Expected. The paper motivates RMWs with
	// lock-acquisition CAS (§3.6).
	OpCAS
	// OpFAA is a fetch-and-add RMW over an 8-byte little-endian integer.
	OpFAA
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpFAA:
		return "faa"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// IsUpdate reports whether the op kind mutates state.
func (k OpKind) IsUpdate() bool { return k != OpRead }

// IsRMW reports whether the op is a read-modify-write (conflicting update).
func (k OpKind) IsRMW() bool { return k == OpCAS || k == OpFAA }

// ClientOp is a request submitted to a replica. ID is unique per submitting
// session and echoes back in the Completion.
type ClientOp struct {
	ID       uint64
	Kind     OpKind
	Key      Key
	Value    Value // write/CAS new value; FAA delta (8-byte LE)
	Expected Value // CAS comparand
}

// Status describes how an operation completed.
type Status uint8

const (
	// OK: read served, write committed, or RMW committed.
	OK Status = iota
	// Aborted: the RMW lost to a concurrent update (paper §3.6) and must be
	// retried by the client if desired. Writes never abort.
	Aborted
	// CASFailed: the CAS comparand did not match; Result.Value holds the
	// value observed (a linearizable read).
	CASFailed
	// NotOperational: the replica has no valid lease (e.g. it is on the
	// minority side of a partition) and cannot serve requests.
	NotOperational
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Aborted:
		return "aborted"
	case CASFailed:
		return "cas-failed"
	case NotOperational:
		return "not-operational"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Retryable reports whether an operation that completed with this status
// may be safely resubmitted: it provably had no effect. Aborted RMWs lost to
// a concurrent update before applying (§3.6); NotOperational replicas
// rejected the op before any protocol action. The client serving layer
// forwards these verbatim so wire clients can implement retry loops.
func (s Status) Retryable() bool { return s == Aborted || s == NotOperational }

// Completion reports the outcome of a ClientOp back to the session that
// submitted it.
type Completion struct {
	OpID   uint64
	Kind   OpKind
	Key    Key
	Status Status
	// Value: read result, failed-CAS observed value, or FAA's prior value.
	Value Value
}

// Replica is the uniform interface of every protocol node state machine.
// Implementations are single-threaded: the harness serializes all calls.
type Replica interface {
	// ID returns this replica's node ID.
	ID() NodeID
	// Submit hands a client operation to the replica. The result arrives
	// later via Env.Complete (possibly within this call).
	Submit(op ClientOp)
	// Deliver hands a network message (one of the protocol's own message
	// types) to the replica.
	Deliver(from NodeID, msg any)
	// Tick drives time-based behaviour: message-loss timeouts, replay
	// triggers, retransmissions. The harness calls it periodically.
	Tick()
	// OnViewChange installs a new reliable-membership view (m-update,
	// paper §3.4). The replica re-evaluates pending operations against the
	// new member set and retags retransmissions with the new epoch.
	OnViewChange(v View)
}

// Env is the replica's window to the outside world. Harnesses implement it;
// replicas call it from within Submit/Deliver/Tick/OnViewChange.
type Env interface {
	// Now returns the current time. Under simulation this is virtual time;
	// live it is a monotonic wall clock. Protocols must not call time.Now.
	Now() time.Duration
	// Send enqueues msg for delivery to node `to`. Delivery is asynchronous
	// and unreliable: messages may be dropped, duplicated or reordered.
	Send(to NodeID, msg any)
	// Complete reports a finished client operation.
	Complete(c Completion)
}

// ShardMsg is the shard-tagged wire envelope of the multi-worker protocol
// engine (paper §4.1: each HermesKV node runs multiple worker threads, each
// owning a partition of the keyspace). A sharded node wraps every outgoing
// protocol message so the receiver can route it to the shard replica that
// owns the key — shard s on one node only ever talks to shard s on its
// peers. Nodes running a single shard send messages unwrapped, so W=1
// deployments are wire-identical to the unsharded engine.
type ShardMsg struct {
	Shard uint16
	Msg   any
}

// ShardBatch is a coalesced frame of shard-tagged messages bound for one
// peer: the egress layer of a sharded node gathers small messages (ACKs,
// VALs) from all of its shard engines and ships them as a single wire frame
// under a single flow-control credit, instead of W independent ShardMsg
// frames with independent credit traffic. Msgs is never empty and its
// elements never nest another envelope. Single-shard (W=1) nodes never emit
// batches, preserving wire compatibility with the unsharded engine.
type ShardBatch struct {
	Msgs []ShardMsg
}

// AllShards is the MUpdate target meaning "every shard of the node". It is
// also the one shard index a deployment may never use for a real shard;
// ShardedNode caps worker counts far below it.
const AllShards uint16 = 0xFFFF

// MUpdate is a shard-routable membership update (m-update, paper §3.4): a
// View plus the shard whose epoch it advances. Per-shard epochs localize
// reconfiguration — installing a view on one shard shuts only that shard's
// read gate, filters only that shard's in-flight epoch-tagged messages and
// replays only that shard's slice of the keyspace, while the node's other
// shards keep serving undisturbed. Shard == AllShards addresses every shard
// (the classic node-wide m-update a membership agent decides).
//
// MUpdate is node-level routing, not shard-engine traffic: it never rides a
// ShardMsg/ShardBatch envelope (its Shard field already is the routing tag)
// and protocol state machines never see it — the hosting runtime intercepts
// it and turns it into per-shard OnViewChange calls.
type MUpdate struct {
	Shard uint16 // target shard, or AllShards for every shard
	View  View
}

// ViewLogReq asks a peer for the membership updates it has retained with
// epochs above Since — the fast-forward fetch of a rejoining or lagging
// shard (§3.5–3.6: a node that missed m-updates while down must learn them
// from the view service's log, not wedge waiting for a wire delivery that
// will never be repeated). Shard scopes the request to one shard's gap;
// AllShards asks for the node-wide history. Like MUpdate this is node-level
// routing: it never rides a shard envelope and never reaches a protocol
// state machine.
type ViewLogReq struct {
	Shard uint16 // shard whose gap is being filled, or AllShards
	Since uint32 // return only updates with View.Epoch > Since
}

// ViewLogResp answers a ViewLogReq with the retained updates, in ascending
// epoch order. The receiver replays each entry through its normal MUpdate
// install path — per-shard entries advance one shard, AllShards entries fan
// out — so fast-forward is literally a replay of the missed installs. Empty
// Updates means the peer retains nothing newer: the requester is caught up
// (or the gap outgrew the peer's bounded log and a newer epoch must arrive
// by other means).
type ViewLogResp struct {
	Updates []MUpdate
}

// EpochGossip announces the sender's per-shard membership epoch vector
// (Epochs[i] is shard i's current epoch). Nodes gossip it periodically on
// the live mesh (wings tEpochGossip) and piggyback the same vector on
// membership heartbeats; a receiver that sees a peer ahead of any of its
// shards triggers its own view-log fast-forward — self-healing without an
// operator or harness backstop. Like MUpdate this is node-level routing: it
// never rides a shard envelope and never reaches a protocol state machine.
// It is strictly advisory — a hostile or stale vector can at worst provoke a
// ViewLogReq whose answer is verified by the normal install path.
type EpochGossip struct {
	Epochs []uint32
}

// ClientReq is one pipelined request of the client wire protocol — the
// front-end traffic the server layer (internal/server) multiplexes onto the
// shard engines. Seq is a session-scoped correlator chosen by the client:
// many requests may be in flight on one connection, and responses may return
// in any order (reads served on the session goroutine overtake queued
// updates), so the client matches responses to requests by Seq, never by
// position. Like the protocol's own messages it is framed by internal/wings;
// it is client↔server traffic only and never rides the replica mesh or a
// shard envelope.
type ClientReq struct {
	Seq      uint64
	Op       OpKind
	Key      Key
	Value    Value // write/CAS new value; FAA delta (8-byte LE)
	Expected Value // CAS comparand
}

// ClientResp answers one ClientReq: the echoed Seq, how the op completed,
// and its result value (read result, failed-CAS observed value, or FAA's
// prior value — exactly Completion.Value).
type ClientResp struct {
	Seq    uint64
	Status Status
	Value  Value
}

// ShardOf maps a key to one of w keyspace shards. Every node of a cluster
// must agree on w: the mapping is what makes "shard s here" and "shard s
// there" replicas of the same partition. The mixer is splitmix64's
// finalizer — deliberately different from the kvs.Store bucket hash so
// protocol shards and store buckets decorrelate.
func ShardOf(k Key, w int) uint16 {
	if w <= 1 {
		return 0
	}
	h := uint64(k) + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return uint16(h % uint64(w))
}

// Broadcast sends msg to every node in targets via env. A convenience used
// by all protocols; the wire layer may implement true multicast underneath.
func Broadcast(env Env, targets []NodeID, msg any) {
	for _, t := range targets {
		env.Send(t, msg)
	}
}

// EncodeInt64 encodes an int64 as an 8-byte little-endian value — the
// representation counter keys use (FAA operands and results).
func EncodeInt64(x int64) Value {
	return Value{byte(x), byte(x >> 8), byte(x >> 16), byte(x >> 24),
		byte(x >> 32), byte(x >> 40), byte(x >> 48), byte(x >> 56)}
}

// DecodeInt64 decodes an 8-byte little-endian integer value; zero-length or
// short values decode as 0 (the implicit initial value of a counter key).
func DecodeInt64(v Value) int64 {
	if len(v) < 8 {
		return 0
	}
	return int64(uint64(v[0]) | uint64(v[1])<<8 | uint64(v[2])<<16 | uint64(v[3])<<24 |
		uint64(v[4])<<32 | uint64(v[5])<<40 | uint64(v[6])<<48 | uint64(v[7])<<56)
}
