package proto

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTSOrdering(t *testing.T) {
	cases := []struct {
		name string
		a, b TS
		want int // a.Compare(b)
	}{
		{"zero-equal", TS{}, TS{}, 0},
		{"version-dominates", TS{Version: 2, CID: 0}, TS{Version: 1, CID: 9}, 1},
		{"version-dominates-rev", TS{Version: 1, CID: 9}, TS{Version: 2, CID: 0}, -1},
		{"cid-breaks-tie", TS{Version: 3, CID: 2}, TS{Version: 3, CID: 1}, 1},
		{"equal", TS{Version: 3, CID: 2}, TS{Version: 3, CID: 2}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Compare(c.b); got != c.want {
				t.Fatalf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
			}
			if got := c.a.After(c.b); got != (c.want > 0) {
				t.Fatalf("After(%v,%v)=%v want %v", c.a, c.b, got, c.want > 0)
			}
			if got := c.a.Before(c.b); got != (c.want < 0) {
				t.Fatalf("Before(%v,%v)=%v want %v", c.a, c.b, got, c.want < 0)
			}
			if got := c.a.AtLeast(c.b); got != (c.want >= 0) {
				t.Fatalf("AtLeast(%v,%v)=%v want %v", c.a, c.b, got, c.want >= 0)
			}
		})
	}
}

// Timestamps must be a strict total order: exactly one of <, =, > holds for
// every pair, and the order is transitive. This is what lets every Hermes
// replica locally establish the same global order of writes to a key.
func TestTSTotalOrderProperties(t *testing.T) {
	trichotomy := func(a, b TS) bool {
		n := 0
		if a.After(b) {
			n++
		}
		if b.After(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(trichotomy, nil); err != nil {
		t.Fatalf("trichotomy violated: %v", err)
	}
	transitive := func(a, b, c TS) bool {
		if a.After(b) && b.After(c) {
			return a.After(c)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Fatalf("transitivity violated: %v", err)
	}
	antisym := func(a, b TS) bool {
		if a.After(b) {
			return !b.After(a)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Fatalf("antisymmetry violated: %v", err)
	}
}

func TestTSIsZero(t *testing.T) {
	if !(TS{}).IsZero() {
		t.Fatal("zero TS should be zero")
	}
	if (TS{Version: 1}).IsZero() || (TS{CID: 1}).IsZero() {
		t.Fatal("non-zero TS reported zero")
	}
}

func TestViewMembership(t *testing.T) {
	v := View{Epoch: 3, Members: []NodeID{0, 1, 2, 4}, Learners: []NodeID{6}}
	if !v.Contains(2) || v.Contains(3) || v.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if !v.IsLearner(6) || v.IsLearner(1) {
		t.Fatal("IsLearner wrong")
	}
	if got := v.Quorum(); got != 3 {
		t.Fatalf("Quorum=%d want 3", got)
	}
	others := v.Others(1)
	if len(others) != 3 || others[0] != 0 || others[1] != 2 || others[2] != 4 {
		t.Fatalf("Others=%v", others)
	}
	ws := v.WriteSet(1)
	if len(ws) != 4 || ws[3] != 6 {
		t.Fatalf("WriteSet=%v want members-self plus learners", ws)
	}
	// Learner initiating (e.g. replayed write during catch-up) excludes itself.
	ws = v.WriteSet(6)
	if len(ws) != 4 {
		t.Fatalf("WriteSet(learner)=%v", ws)
	}
}

func TestViewCloneIsDeep(t *testing.T) {
	v := View{Epoch: 1, Members: []NodeID{0, 1}, Learners: []NodeID{2}}
	c := v.Clone()
	c.Members[0] = 9
	c.Learners[0] = 9
	if v.Members[0] != 0 || v.Learners[0] != 2 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestValueClone(t *testing.T) {
	if Value(nil).Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
	v := Value{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("clone aliases source")
	}
}

func TestOpKindPredicates(t *testing.T) {
	if OpRead.IsUpdate() || OpRead.IsRMW() {
		t.Fatal("read misclassified")
	}
	if !OpWrite.IsUpdate() || OpWrite.IsRMW() {
		t.Fatal("write misclassified")
	}
	for _, k := range []OpKind{OpCAS, OpFAA} {
		if !k.IsUpdate() || !k.IsRMW() {
			t.Fatalf("%v misclassified", k)
		}
	}
}

type recordingEnv struct {
	sent []NodeID
}

func (r *recordingEnv) Now() time.Duration    { return 0 }
func (r *recordingEnv) Complete(c Completion) {}
func (r *recordingEnv) Send(to NodeID, m any) { r.sent = append(r.sent, to) }

func TestBroadcast(t *testing.T) {
	env := &recordingEnv{}
	Broadcast(env, []NodeID{2, 3, 5}, "m")
	if len(env.sent) != 3 || env.sent[0] != 2 || env.sent[2] != 5 {
		t.Fatalf("Broadcast sent to %v", env.sent)
	}
}

func TestStringers(t *testing.T) {
	// Smoke-test the human-readable forms used in logs and test failures.
	if s := (TS{Version: 4, CID: 2}).String(); s != "4.2" {
		t.Fatalf("TS.String=%q", s)
	}
	if OpCAS.String() != "cas" || OpKind(200).String() == "" {
		t.Fatal("OpKind.String wrong")
	}
	if Aborted.String() != "aborted" || Status(200).String() == "" {
		t.Fatal("Status.String wrong")
	}
	if (View{Epoch: 1}).String() == "" {
		t.Fatal("View.String empty")
	}
}
