package integration

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/linear"
	"repro/internal/proto"
	"repro/internal/server"
)

// These tests drive the WIRE serving stack — internal/server fronting a live
// 3-replica sharded group, internal/client sessions over real TCP — with
// over a hundred pipelined sessions hammering a handful of hot keys, and
// check every key's observed history against the Wing–Gong oracle. They are
// the wire counterpart of TestShardedFastReadsLinearizableUnderViewChanges:
// real sockets, real session goroutines, reads on the server's lock-free
// fast path racing writes, CASes and FAAs through the shard event loops.

// wireHistory wraps linear.History for concurrent recording: client
// completion callbacks run on per-session pump goroutines.
type wireHistory struct {
	mu     sync.Mutex
	hist   *linear.History
	start  time.Time
	nextID atomic.Uint64
}

func newWireHistory() *wireHistory {
	return &wireHistory{hist: linear.NewHistory(), start: time.Now()}
}

func (w *wireHistory) invoke(key proto.Key, kind linear.Kind, arg, exp proto.Value) uint64 {
	id := w.nextID.Add(1)
	w.mu.Lock()
	w.hist.Invoke(id, key, kind, arg, exp, time.Since(w.start))
	w.mu.Unlock()
	return id
}

func (w *wireHistory) ret(id uint64, kind linear.Kind, out proto.Value) {
	w.mu.Lock()
	w.hist.Return(id, kind, out, time.Since(w.start))
	w.mu.Unlock()
}

func (w *wireHistory) discard(id uint64) {
	w.mu.Lock()
	w.hist.Discard(id)
	w.mu.Unlock()
}

// seedKeys records the preload writes: the oracle models registers as
// initially empty, so the pre-session writes must be part of the history
// (sequenced before every session op, which real time already guarantees).
func (w *wireHistory) seedKeys(hotKeys int) {
	for k := 0; k < hotKeys; k++ {
		id := w.invoke(proto.Key(k), linear.KWrite, proto.EncodeInt64(0), nil)
		w.ret(id, linear.KWrite, nil)
	}
}

func (w *wireHistory) check(t *testing.T) {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hist.Close()
	if k, res, ok := w.hist.CheckAll(); !ok {
		t.Fatalf("history of key %d not linearizable: %s", k, res.Info)
	}
}

// serveWireGroup stands up a live sharded group (W engine shards per node)
// with the wire server on node 0 and returns the dial address. The hot keys
// are preloaded: a read of a never-written key waits for a write that may
// never come (Hermes has no negative acknowledgement for absent keys), so
// the histories must start from written registers.
func serveWireGroup(t *testing.T, shards, hotKeys int) (*cluster.ShardedLocal, string) {
	t.Helper()
	grp := cluster.NewShardedLocal(cluster.LocalConfig{N: 3, MLT: 5 * time.Millisecond}, shards)
	t.Cleanup(grp.Close)
	ctx := context.Background()
	for k := 0; k < hotKeys; k++ {
		if err := grp.Nodes[0].Write(ctx, proto.Key(k), proto.EncodeInt64(0)); err != nil {
			t.Fatalf("preload key %d: %v", k, err)
		}
	}
	srv := server.New(server.Config{Backend: grp.Nodes[0]})
	t.Cleanup(func() { srv.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return grp, ln.Addr().String()
}

// record routes one wire completion into the history with the status
// semantics the protocol guarantees: Aborted RMWs provably never applied
// (discard); CASFailed observed the register (KCASFail with the observed
// value); reads that errored observed nothing (discard). NotOperational
// updates MAY have applied in general, so callers that can see one must
// leave the invocation pending instead of calling record.
func record(h *wireHistory, id uint64, kind proto.OpKind, resp proto.ClientResp) {
	switch {
	case resp.Status == proto.OK && kind == proto.OpRead:
		h.ret(id, linear.KRead, resp.Value)
	case resp.Status == proto.OK && kind == proto.OpWrite:
		h.ret(id, linear.KWrite, nil)
	case resp.Status == proto.OK && kind == proto.OpFAA:
		h.ret(id, linear.KFAA, resp.Value)
	case resp.Status == proto.OK && kind == proto.OpCAS:
		h.ret(id, linear.KCASOk, nil)
	case resp.Status == proto.CASFailed:
		h.ret(id, linear.KCASFail, resp.Value)
	case resp.Status == proto.Aborted:
		h.discard(id)
	}
}

// TestWireClientsLinearizableOnHotKeys runs ≥100 pipelined wire sessions,
// W=4 engine shards: reads racing writes, failing-and-succeeding CASes and
// FAAs on hot keys. Every completed op's observed value must admit a
// linearization. Sessions are grouped into cohorts of 8 per hot key — each
// key sees 8 concurrent pipelined sessions, which keeps the Wing–Gong
// search tractable (its cost is exponential in per-key CONCURRENCY, not in
// session count; >100 sessions all on one key is unCheckable).
func TestWireClientsLinearizableOnHotKeys(t *testing.T) {
	const (
		cohort   = 6
		hotKeys  = 17
		sessions = cohort * hotKeys // 102
		opsEach  = 12
		depth    = 2 // pipelining per session
	)
	grp, addr := serveWireGroup(t, 4, hotKeys)
	h := newWireHistory()
	h.seedKeys(hotKeys)

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Config{})
			if err != nil {
				t.Errorf("session %d dial: %v", s, err)
				return
			}
			defer c.Close()
			key := proto.Key(s / cohort) // this session's cohort key
			tokens := make(chan struct{}, depth)
			for i := 0; i < opsEach; i++ {
				var kind proto.OpKind
				var arg, exp proto.Value
				var lkind linear.Kind
				switch {
				case i%4 == 1:
					kind, lkind = proto.OpWrite, linear.KWrite
					arg = proto.EncodeInt64(int64(s)<<16 | int64(i))
				case i%8 == 2:
					kind, lkind = proto.OpFAA, linear.KFAA
					arg = proto.EncodeInt64(1)
				case i%8 == 6:
					// Mostly-failing CAS: the comparand is a cohort-mate's
					// unique write value, occasionally present.
					kind, lkind = proto.OpCAS, linear.KCASOk
					exp = proto.EncodeInt64(int64(s/cohort*cohort+(s+1)%cohort)<<16 | 1)
					arg = proto.EncodeInt64(int64(s)<<16 | int64(i) | 1<<40)
				default:
					kind, lkind = proto.OpRead, linear.KRead
				}
				// Token FIRST, invoke second: an op recorded as invoked
				// before its send slot opens looks concurrent with the whole
				// pipeline backlog, inflating the checker's search space.
				tokens <- struct{}{}
				id := h.invoke(key, lkind, arg, exp)
				err := c.Do(kind, key, arg, exp, func(resp proto.ClientResp, err error) {
					if err != nil {
						t.Errorf("session %d op %d: %v", s, i, err)
					} else {
						if resp.Status == proto.NotOperational {
							t.Errorf("session %d op %d: NotOperational in steady state", s, i)
						}
						record(h, id, kind, resp)
					}
					<-tokens
				})
				if err != nil {
					t.Errorf("session %d send: %v", s, err)
					<-tokens
					break
				}
			}
			for i := 0; i < depth; i++ {
				tokens <- struct{}{}
			}
		}(s)
	}
	wg.Wait()
	h.check(t)

	// The point of the exercise: the lock-free fast path actually served
	// wire reads while writes raced it.
	_, hits, _ := grp.Nodes[0].ReadStats()
	if hits == 0 {
		t.Fatal("no fast-path hits: wire reads never rode the lock-free path")
	}
}

// TestWireClientsViewInstallStorm re-runs the hot-key storm while view
// installs sweep every shard engine mid-flight. The contract: every op
// either completes (and its observed value linearizes) or reports a
// RETRYABLE status — never a wrong value, and the serving layer itself
// never errors a session.
func TestWireClientsViewInstallStorm(t *testing.T) {
	const (
		cohort   = 6
		hotKeys  = 18
		sessions = cohort * hotKeys // 108
		opsEach  = 10
		depth    = 2
	)
	grp, addr := serveWireGroup(t, 4, hotKeys)
	h := newWireHistory()
	h.seedKeys(hotKeys)
	var retryable atomic.Uint64

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Config{})
			if err != nil {
				t.Errorf("session %d dial: %v", s, err)
				return
			}
			defer c.Close()
			key := proto.Key(s / cohort) // this session's cohort key
			tokens := make(chan struct{}, depth)
			for i := 0; i < opsEach; i++ {
				kind, lkind := proto.OpRead, linear.KRead
				var arg proto.Value
				switch i % 4 {
				case 1:
					kind, lkind = proto.OpWrite, linear.KWrite
					arg = proto.EncodeInt64(int64(s)<<16 | int64(i))
				case 3:
					kind, lkind = proto.OpFAA, linear.KFAA
					arg = proto.EncodeInt64(1)
				}
				tokens <- struct{}{} // token before invoke; see the hot-key test
				id := h.invoke(key, lkind, arg, nil)
				err := c.Do(kind, key, arg, nil, func(resp proto.ClientResp, err error) {
					switch {
					case err != nil:
						t.Errorf("session %d op %d: session error %v", s, i, err)
					case resp.Status == proto.OK || resp.Status == proto.CASFailed:
						record(h, id, kind, resp)
					case resp.Status.Retryable():
						retryable.Add(1)
						if resp.Status == proto.Aborted {
							h.discard(id) // aborted RMWs provably never applied
						}
						// NotOperational updates stay pending: they may or
						// may not have applied; the checker allows both.
					default:
						t.Errorf("session %d op %d: unexpected status %v", s, i, resp.Status)
					}
					<-tokens
				})
				if err != nil {
					t.Errorf("session %d send: %v", s, err)
					<-tokens
					break
				}
			}
			for i := 0; i < depth; i++ {
				tokens <- struct{}{}
			}
		}(s)
	}
	// The storm: epoch bumps land on every node (and thus every shard
	// engine's read gate) while the sessions are mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint32(2); e <= 5; e++ {
			time.Sleep(3 * time.Millisecond)
			v := proto.View{Epoch: e, Members: []proto.NodeID{0, 1, 2}}
			for _, n := range grp.Nodes {
				n.InstallView(v)
			}
		}
	}()
	wg.Wait()
	h.check(t)
	t.Logf("retryable completions during storm: %d", retryable.Load())
}
