package integration

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/linear"
	"repro/internal/proto"
)

// TestShardedFastReadsLinearizableUnderViewChanges drives the LIVE sharded
// runtime — where Valid reads are served lock-free on the caller's
// goroutine — with readers on every replica racing writers and m-update
// epoch bumps, then checks every key's history against the Wing–Gong
// oracle. This is the live-runtime counterpart of the simulated nemesis
// suites: it exercises real concurrency between the fast path, the shard
// event loops and view installations (run under -race in CI).
func TestShardedFastReadsLinearizableUnderViewChanges(t *testing.T) {
	l := cluster.NewShardedLocal(cluster.LocalConfig{N: 3, MLT: 5 * time.Millisecond}, 4)
	defer l.Close()
	ctx := context.Background()
	const keys = 8

	hist := linear.NewHistory()
	var hmu sync.Mutex
	var nextID atomic.Uint64
	start := time.Now()
	invoke := func(key proto.Key, kind linear.Kind, arg proto.Value) uint64 {
		id := nextID.Add(1)
		hmu.Lock()
		hist.Invoke(id, key, kind, arg, nil, time.Since(start))
		hmu.Unlock()
		return id
	}
	ret := func(id uint64, kind linear.Kind, out proto.Value) {
		hmu.Lock()
		hist.Return(id, kind, out, time.Since(start))
		hmu.Unlock()
	}

	var wg sync.WaitGroup
	// One reader per replica: fast-path reads over the shared keyspace.
	for i, n := range l.Nodes {
		wg.Add(1)
		go func(seed int64, n *cluster.ShardedNode) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 60; j++ {
				k := proto.Key(rng.Intn(keys))
				id := invoke(k, linear.KRead, nil)
				v, err := n.Read(ctx, k)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				ret(id, linear.KRead, v)
			}
		}(int64(i)+1, n)
	}
	// Two writers with distinct value streams.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for j := 0; j < 40; j++ {
				k := proto.Key(rng.Intn(keys))
				val := proto.EncodeInt64(int64(w*1000 + j))
				id := invoke(k, linear.KWrite, val)
				if err := l.Nodes[w].Write(ctx, k, val); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				ret(id, linear.KWrite, nil)
			}
		}(w)
	}
	// m-update storm: every gate on every shard engine shuts and reopens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint32(2); e <= 5; e++ {
			time.Sleep(5 * time.Millisecond)
			v := proto.View{Epoch: e, Members: []proto.NodeID{0, 1, 2}}
			for _, n := range l.Nodes {
				n.InstallView(v)
			}
		}
	}()
	wg.Wait()

	hist.Close()
	if k, res, ok := hist.CheckAll(); !ok {
		t.Fatalf("history of key %d not linearizable: %s", k, res.Info)
	}
	var hits uint64
	for _, n := range l.Nodes {
		_, h, _ := n.ReadStats()
		hits += h
	}
	if hits == 0 {
		t.Fatal("no fast-path hits: the lock-free read path never engaged")
	}
}
