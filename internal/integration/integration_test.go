// Package integration runs whole-cluster simulations of every protocol
// under network nemeses (loss, duplication, reordering jitter, crashes,
// partitions) and verifies the consistency contracts the paper claims:
// linearizability for Hermes (all optimization variants) and rCRAQ,
// convergence and session ordering for rZAB and lockstep.
package integration

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/craq"
	"repro/internal/linear"
	"repro/internal/lockstep"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/zab"
)

// recordingDriver issues a closed-loop mixed workload over a tiny keyspace
// (to force conflicts) and records a linearizability history.
type recordingDriver struct {
	c        *sim.Cluster
	hist     *linear.History
	nextID   uint64
	faaOK    int64 // sum of deltas of FAA ops that reported OK
	writesOK uint64
}

func newDriver(c *sim.Cluster) *recordingDriver {
	return &recordingDriver{c: c, hist: linear.NewHistory()}
}

// session starts one closed-loop client at node; opPick selects operation
// i. maxOps bounds the history size per session and think paces ops so a
// session spans the whole run.
func (d *recordingDriver) session(node proto.NodeID, until time.Duration,
	opPick func(i uint64) proto.ClientOp) {
	d.pacedSession(node, until, 0, 1<<32, opPick)
}

func (d *recordingDriver) pacedSession(node proto.NodeID, until, think time.Duration,
	maxOps uint64, opPick func(i uint64) proto.ClientOp) {
	var issue func()
	var i uint64
	issue = func() {
		if d.c.Engine().Now() >= until || d.c.Crashed(node) || i >= maxOps {
			return
		}
		op := opPick(i)
		i++
		d.nextID++
		op.ID = d.nextID
		kind := linear.KRead
		switch op.Kind {
		case proto.OpWrite:
			kind = linear.KWrite
		case proto.OpFAA:
			kind = linear.KFAA
		case proto.OpCAS:
			kind = linear.KCASOk // refined at completion
		}
		id := op.ID
		d.hist.Invoke(id, op.Key, kind, op.Value, op.Expected, d.c.Engine().Now())
		d.c.Submit(node, op, func(comp proto.Completion) {
			now := d.c.Engine().Now()
			switch comp.Status {
			case proto.OK:
				switch comp.Kind {
				case proto.OpRead:
					d.hist.Return(id, linear.KRead, comp.Value, now)
				case proto.OpWrite:
					d.hist.Return(id, linear.KWrite, nil, now)
					d.writesOK++
				case proto.OpFAA:
					d.hist.Return(id, linear.KFAA, comp.Value, now)
					d.faaOK += proto.DecodeInt64(op.Value)
				case proto.OpCAS:
					d.hist.Return(id, linear.KCASOk, nil, now)
				}
			case proto.CASFailed:
				d.hist.Return(id, linear.KCASFail, comp.Value, now)
			case proto.Aborted:
				// Hermes guarantees an aborted RMW never took effect.
				d.hist.Discard(id)
			case proto.NotOperational:
				d.hist.Discard(id)
			}
			if think > 0 {
				d.c.Engine().After(think, issue)
			} else {
				issue()
			}
		})
	}
	issue()
}

func checkLinearizable(t *testing.T, d *recordingDriver) {
	t.Helper()
	d.hist.Close()
	if k, res, ok := d.hist.CheckAll(); !ok {
		t.Fatalf("history of key %d not linearizable: %s", k, res.Info)
	}
}

// uniqueVal tags writes uniquely so the checker can distinguish them.
func uniqueVal(node proto.NodeID, i uint64) proto.Value {
	return proto.Value{byte(node), byte(i), byte(i >> 8), byte(i >> 16), 0x7E}
}

func mixedPick(node proto.NodeID, key func(i uint64) proto.Key) func(uint64) proto.ClientOp {
	return func(i uint64) proto.ClientOp {
		k := key(i)
		switch i % 3 {
		case 0:
			return proto.ClientOp{Kind: proto.OpWrite, Key: k, Value: uniqueVal(node, i)}
		default:
			return proto.ClientOp{Kind: proto.OpRead, Key: k}
		}
	}
}

func hermesFactory(mut func(*core.Config)) sim.Factory {
	return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		cfg := core.Config{ID: id, View: view, Env: env, MLT: 300 * time.Microsecond}
		if mut != nil {
			mut(&cfg)
		}
		return core.New(cfg)
	}
}

func lossyNet() sim.NetConfig {
	return sim.NetConfig{
		BaseLatency: 2 * time.Microsecond,
		Jitter:      4 * time.Microsecond, // heavy reordering
		LossProb:    0.05,
		DupProb:     0.05,
	}
}

// runLinCheck spins a 5-node cluster of the given factory under the lossy
// nemesis with conflicting sessions and checks per-key linearizability.
func runLinCheck(t *testing.T, factory sim.Factory, seed int64) {
	t.Helper()
	c := sim.New(sim.Config{Nodes: 5, Factory: factory, Net: lossyNet(), Seed: seed})
	d := newDriver(c)
	const dur = 4 * time.Millisecond
	for n := proto.NodeID(0); n < 5; n++ {
		n := n
		d.session(n, dur, mixedPick(n, func(i uint64) proto.Key { return proto.Key(i % 3) }))
		d.session(n, dur, mixedPick(n, func(i uint64) proto.Key { return proto.Key((i + 1) % 3) }))
	}
	c.Engine().RunUntil(dur + 10*time.Millisecond) // drain: retries resolve
	checkLinearizable(t, d)
}

func TestHermesLinearizableUnderNemesis(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		runLinCheck(t, hermesFactory(nil), seed)
	}
}

func TestHermesO1LinearizableUnderNemesis(t *testing.T) {
	runLinCheck(t, hermesFactory(func(c *core.Config) { c.ElideVAL = true }), 77)
}

func TestHermesO3LinearizableUnderNemesis(t *testing.T) {
	runLinCheck(t, hermesFactory(func(c *core.Config) { c.EarlyACKs = true }), 78)
}

func TestHermesO2LinearizableUnderNemesis(t *testing.T) {
	runLinCheck(t, hermesFactory(func(c *core.Config) {
		c.VirtualIDs = core.VirtualIDs(c.ID, 5, 4)
		c.CIDOwner = core.StrideOwner(5)
	}), 79)
}

func TestHermesNoLSCLinearizableUnderNemesis(t *testing.T) {
	runLinCheck(t, hermesFactory(func(c *core.Config) { c.NoLSC = true }), 80)
}

func TestCRAQLinearizableUnderNemesis(t *testing.T) {
	factory := func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return craq.New(craq.Config{ID: id, View: view, Env: env, MLT: 300 * time.Microsecond})
	}
	for seed := int64(0); seed < 5; seed++ {
		runLinCheck(t, factory, seed)
	}
}

// Crash nemesis: a node dies mid-run; RM reconfigures; the surviving
// majority's history must stay linearizable and writes must keep flowing.
func TestHermesLinearizableAcrossCrashAndMUpdate(t *testing.T) {
	c := sim.New(sim.Config{
		Nodes:   5,
		Factory: hermesFactory(func(cc *core.Config) { cc.MLT = 500 * time.Microsecond }),
		Net:     sim.NetConfig{BaseLatency: 2 * time.Microsecond, Jitter: time.Microsecond},
		Seed:    5,
		RM: &sim.RMParams{
			HeartbeatEvery: 100 * time.Microsecond,
			SuspectAfter:   500 * time.Microsecond,
			LeaseDur:       time.Millisecond,
		},
	})
	c.CrashAt(4, 2*time.Millisecond)
	d := newDriver(c)
	const dur = 12 * time.Millisecond
	for n := proto.NodeID(0); n < 5; n++ {
		n := n
		// Paced so each session spans the crash and the m-update while the
		// per-key history stays small enough to check.
		d.pacedSession(n, dur, 60*time.Microsecond, 150,
			mixedPick(n, func(i uint64) proto.Key { return proto.Key(i % 2) }))
	}
	c.Engine().RunUntil(dur + 10*time.Millisecond)
	if c.ViewChanges == 0 {
		t.Fatal("membership never reconfigured")
	}
	checkLinearizable(t, d)
	// Progress after the crash: a fresh write at a survivor completes.
	var done *proto.Completion
	c.Submit(0, proto.ClientOp{ID: 1 << 40, Kind: proto.OpWrite, Key: 9, Value: proto.Value("post")},
		func(comp proto.Completion) { done = &comp })
	c.Engine().RunUntil(c.Engine().Now() + 5*time.Millisecond)
	if done == nil || done.Status != proto.OK {
		t.Fatalf("no progress after m-update: %+v", done)
	}
}

// The FAA counter invariant: the final counter equals the sum of deltas of
// exactly the RMWs that reported OK — aborted RMWs provably never applied
// (at most one of concurrent RMWs commits, §3.6).
func TestHermesAbortedRMWsNeverApply(t *testing.T) {
	c := sim.New(sim.Config{Nodes: 3, Factory: hermesFactory(nil), Net: lossyNet(), Seed: 21})
	d := newDriver(c)
	const dur = 4 * time.Millisecond
	for n := proto.NodeID(0); n < 3; n++ {
		d.session(n, dur, func(i uint64) proto.ClientOp {
			return proto.ClientOp{Kind: proto.OpFAA, Key: 1, Value: proto.EncodeInt64(1)}
		})
	}
	// Drain thoroughly: all in-flight RMWs must resolve before summing.
	c.Engine().RunUntil(dur + 20*time.Millisecond)
	d.hist.Close()
	// Read the converged value at every node.
	finals := map[proto.NodeID]int64{}
	for n := proto.NodeID(0); n < 3; n++ {
		n := n
		c.Submit(n, proto.ClientOp{ID: uint64(1<<40) + uint64(n), Kind: proto.OpRead, Key: 1},
			func(comp proto.Completion) { finals[n] = proto.DecodeInt64(comp.Value) })
	}
	c.Engine().RunUntil(c.Engine().Now() + 20*time.Millisecond)
	if len(finals) != 3 {
		t.Fatalf("reads incomplete: %v", finals)
	}
	for n, v := range finals {
		if v != d.faaOK {
			t.Fatalf("node %d counter=%d but OK-FAA sum=%d (phantom or lost RMW)", n, v, d.faaOK)
		}
	}
	if d.faaOK == 0 {
		t.Fatal("no RMW committed at all")
	}
}

// ZAB is sequentially consistent: per-session read-your-writes must hold,
// and all replicas converge. (Its local reads are deliberately NOT checked
// for linearizability — the paper evaluates exactly this upper bound.)
func TestZABSessionOrderAndConvergence(t *testing.T) {
	factory := func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return zab.New(zab.Config{ID: id, View: view, Env: env, MLT: 300 * time.Microsecond})
	}
	c := sim.New(sim.Config{Nodes: 3, Factory: factory, Net: lossyNet(), Seed: 31})
	type sessState struct {
		lastWritten proto.Value
		violations  int
	}
	states := make([]*sessState, 3)
	var id uint64
	const dur = 4 * time.Millisecond
	for n := proto.NodeID(0); n < 3; n++ {
		n := n
		st := &sessState{}
		states[n] = st
		key := proto.Key(n) // per-session key isolates read-your-writes
		var issue func(i uint64)
		issue = func(i uint64) {
			if c.Engine().Now() >= dur {
				return
			}
			id++
			if i%2 == 0 {
				val := uniqueVal(n, i)
				c.Submit(n, proto.ClientOp{ID: id, Kind: proto.OpWrite, Key: key, Value: val},
					func(comp proto.Completion) {
						if comp.Status == proto.OK {
							st.lastWritten = val
						}
						issue(i + 1)
					})
				return
			}
			c.Submit(n, proto.ClientOp{ID: id, Kind: proto.OpRead, Key: key},
				func(comp proto.Completion) {
					if st.lastWritten != nil && string(comp.Value) != string(st.lastWritten) {
						st.violations++
					}
					issue(i + 1)
				})
		}
		issue(0)
	}
	c.Engine().RunUntil(dur + 20*time.Millisecond)
	for n, st := range states {
		if st.violations > 0 {
			t.Fatalf("session %d: %d read-your-writes violations", n, st.violations)
		}
	}
	// Convergence across replicas.
	for k := proto.Key(0); k < 3; k++ {
		var vals []string
		for n := proto.NodeID(0); n < 3; n++ {
			vals = append(vals, string(c.Replica(n).(*zab.Replica).Value(k)))
		}
		if vals[0] != vals[1] || vals[1] != vals[2] {
			t.Fatalf("key %d diverged: %q", k, vals)
		}
	}
}

// Lockstep delivers a single total order: replicas converge key-by-key.
func TestLockstepConvergenceUnderNemesis(t *testing.T) {
	factory := func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return lockstep.New(lockstep.Config{ID: id, View: view, Env: env, MLT: 300 * time.Microsecond})
	}
	c := sim.New(sim.Config{Nodes: 3, Factory: factory, Net: lossyNet(), Seed: 41})
	var id uint64
	const dur = 4 * time.Millisecond
	for n := proto.NodeID(0); n < 3; n++ {
		n := n
		var issue func(i uint64)
		issue = func(i uint64) {
			if c.Engine().Now() >= dur {
				return
			}
			id++
			c.Submit(n, proto.ClientOp{ID: id, Kind: proto.OpWrite, Key: proto.Key(i % 2), Value: uniqueVal(n, i)},
				func(proto.Completion) { issue(i + 1) })
		}
		issue(0)
	}
	c.Engine().RunUntil(dur + 20*time.Millisecond)
	for k := proto.Key(0); k < 2; k++ {
		ref := c.Replica(0).(*lockstep.Replica).Value(k)
		for n := proto.NodeID(1); n < 3; n++ {
			if string(c.Replica(n).(*lockstep.Replica).Value(k)) != string(ref) {
				t.Fatalf("key %d diverged at node %d", k, n)
			}
		}
	}
}

// Partition nemesis: the minority side must stop serving (leases) and the
// majority side must keep accepting linearizable traffic after the
// m-update.
func TestHermesPartitionPrimarySideContinues(t *testing.T) {
	c := sim.New(sim.Config{
		Nodes:   5,
		Factory: hermesFactory(func(cc *core.Config) { cc.MLT = 500 * time.Microsecond }),
		Net:     sim.NetConfig{BaseLatency: 2 * time.Microsecond, Jitter: time.Microsecond},
		Seed:    51,
		RM: &sim.RMParams{
			HeartbeatEvery: 100 * time.Microsecond,
			SuspectAfter:   500 * time.Microsecond,
			LeaseDur:       time.Millisecond,
		},
	})
	// Cut {3,4} from {0,1,2} at t=1ms.
	c.Engine().At(time.Millisecond, func() {
		c.Network().SetPartition(func(a, b proto.NodeID) bool {
			return (a >= 3) != (b >= 3)
		})
	})
	c.Engine().RunUntil(15 * time.Millisecond)
	if c.ViewChanges == 0 {
		t.Fatal("no m-update on the primary side")
	}
	// Majority side serves.
	var done *proto.Completion
	c.Submit(0, proto.ClientOp{ID: 1, Kind: proto.OpWrite, Key: 1, Value: proto.Value("maj")},
		func(comp proto.Completion) { done = &comp })
	c.Engine().RunUntil(c.Engine().Now() + 5*time.Millisecond)
	if done == nil || done.Status != proto.OK {
		t.Fatalf("majority side blocked: %+v", done)
	}
	// Minority side refuses (lease lost).
	var minority *proto.Completion
	c.Submit(4, proto.ClientOp{ID: 2, Kind: proto.OpRead, Key: 1},
		func(comp proto.Completion) { minority = &comp })
	c.Engine().RunUntil(c.Engine().Now() + 5*time.Millisecond)
	if minority != nil && minority.Status == proto.OK {
		t.Fatal("minority-side replica served a read without a lease")
	}
}
