// Package workload generates the access patterns of the paper's evaluation
// (§5.2, §6): a keyspace of one million keys accessed either uniformly or
// under a Zipfian distribution with exponent 0.99 (as in YCSB), mixed
// read/write traffic at a configurable write ratio, and configurable object
// sizes (32 B default, up to 1 KB for the Derecho comparison).
package workload

import (
	"encoding/binary"
	"math"
	"math/rand"

	"repro/internal/proto"
)

// KeyChooser selects the next key to access.
type KeyChooser interface {
	Next(rng *rand.Rand) proto.Key
}

// Uniform chooses keys uniformly from [0, N).
type Uniform struct{ N uint64 }

// Next implements KeyChooser.
func (u Uniform) Next(rng *rand.Rand) proto.Key {
	return proto.Key(rng.Uint64() % u.N)
}

// Zipfian chooses keys under a power-law distribution using the Gray et al.
// rejection-free method popularized by YCSB. Rank 0 is the most popular key;
// ranks are scattered over the keyspace with a multiplicative hash so that
// popular keys do not cluster in one hash-table region.
type Zipfian struct {
	n       uint64
	theta   float64
	zetaN   float64
	zeta2   float64
	alpha   float64
	eta     float64
	scatter bool
}

// NewZipfian returns a Zipfian chooser over n keys with the given exponent
// (the paper and YCSB use 0.99). Scatter controls whether ranks are hashed
// over the keyspace (true for realistic traffic) or identity-mapped (useful
// in tests that want rank==key).
func NewZipfian(n uint64, theta float64, scatter bool) *Zipfian {
	if n == 0 {
		panic("workload: zipfian over empty keyspace")
	}
	z := &Zipfian{n: n, theta: theta, scatter: scatter}
	z.zetaN = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// Rank returns the next zipf rank in [0, n) — 0 the hottest.
func (z *Zipfian) Rank(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Next implements KeyChooser.
func (z *Zipfian) Next(rng *rand.Rand) proto.Key {
	r := z.Rank(rng)
	if !z.scatter {
		return proto.Key(r)
	}
	return proto.Key(splitmix64(r) % z.n)
}

// splitmix64 is a strong 64-bit mixing function (Vigna); bijective, so
// scattering never collides two ranks onto one key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Config describes a benchmark workload.
type Config struct {
	Keys       uint64  // keyspace size (paper: 1M)
	WriteRatio float64 // fraction of update ops in [0,1]
	RMWRatio   float64 // fraction of updates issued as RMWs (0 for Fig 5-9)
	// CASRatio is the fraction of RMWs issued as CAS instead of FAA. The
	// comparand is a random value, so most wire CASes report CASFailed —
	// which exercises the full INV round regardless, making the mix useful
	// for latency measurement even though it rarely swaps.
	CASRatio  float64
	ValueSize int     // object size in bytes (paper default 32)
	Zipf      bool    // zipfian vs uniform
	ZipfTheta float64 // exponent (0.99 when Zipf)
}

// DefaultConfig mirrors the paper's testbed defaults (§5.2).
func DefaultConfig() Config {
	return Config{Keys: 1 << 20, WriteRatio: 0.05, ValueSize: 32, ZipfTheta: 0.99}
}

// Generator produces a stream of client operations for one session. Each
// session owns its Generator (and RNG) so sessions are independent and runs
// are reproducible from seeds.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	keys   KeyChooser
	nextID uint64
	valBuf []byte
}

// NewGenerator builds a Generator with the given seed.
func NewGenerator(cfg Config, seed int64) *Generator {
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 20
	}
	var keys KeyChooser
	if cfg.Zipf {
		theta := cfg.ZipfTheta
		if theta == 0 {
			theta = 0.99
		}
		keys = NewZipfian(cfg.Keys, theta, true)
	} else {
		keys = Uniform{N: cfg.Keys}
	}
	return NewGeneratorWith(cfg, keys, seed)
}

// NewGeneratorWith builds a Generator that draws keys from the given chooser
// instead of constructing its own. NewZipfian computes an O(Keys) harmonic
// sum; sharing one chooser across the sessions of a benchmark turns that
// from per-session into per-run work. The chooser must be safe for
// concurrent use with distinct rngs (Uniform and Zipfian both are: they are
// immutable after construction, all per-draw state lives in the rng).
func NewGeneratorWith(cfg Config, keys KeyChooser, seed int64) *Generator {
	if cfg.Keys == 0 {
		cfg.Keys = 1 << 20
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 32
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed)), keys: keys}
	g.valBuf = make([]byte, cfg.ValueSize)
	return g
}

// Next returns the next operation. Values are freshly allocated and tagged
// with a session-unique sequence in the first 8 bytes, which the
// linearizability checker uses to identify writes uniquely.
func (g *Generator) Next() proto.ClientOp {
	g.nextID++
	op := proto.ClientOp{ID: g.nextID, Key: g.keys.Next(g.rng)}
	if g.rng.Float64() >= g.cfg.WriteRatio {
		op.Kind = proto.OpRead
		return op
	}
	if g.cfg.RMWRatio > 0 && g.rng.Float64() < g.cfg.RMWRatio {
		if g.cfg.CASRatio > 0 && g.rng.Float64() < g.cfg.CASRatio {
			op.Kind = proto.OpCAS
			op.Expected = g.value()
			op.Value = g.value()
			return op
		}
		op.Kind = proto.OpFAA
		op.Value = FAADelta(1)
		return op
	}
	op.Kind = proto.OpWrite
	op.Value = g.value()
	return op
}

func (g *Generator) value() proto.Value {
	v := make(proto.Value, g.cfg.ValueSize)
	if len(v) >= 8 {
		binary.LittleEndian.PutUint64(v, g.rng.Uint64())
	}
	return v
}

// FAADelta encodes an int64 delta for OpFAA operations.
func FAADelta(d int64) proto.Value { return proto.EncodeInt64(d) }

// DecodeInt64 decodes an 8-byte little-endian integer value. It forwards to
// proto.DecodeInt64 and is kept for workload-local readability.
func DecodeInt64(v proto.Value) int64 { return proto.DecodeInt64(v) }

// EncodeInt64 encodes an int64 as an 8-byte value (see proto.EncodeInt64).
func EncodeInt64(x int64) proto.Value { return proto.EncodeInt64(x) }
