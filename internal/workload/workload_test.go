package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/proto"
)

func TestUniformCoversKeyspace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{N: 16}
	seen := make(map[proto.Key]bool)
	for i := 0; i < 4096; i++ {
		k := u.Next(rng)
		if uint64(k) >= 16 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d/16 keys seen", len(seen))
	}
}

func TestZipfianRankDistribution(t *testing.T) {
	// With theta=0.99 over 1000 keys, rank 0 must receive ~1/zeta(1000)
	// of the mass (~12.8%), and the top-10 ranks a large share.
	const n = 1000
	z := NewZipfian(n, 0.99, false)
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	p0 := float64(counts[0]) / draws
	want := 1 / zeta(n, 0.99)
	if math.Abs(p0-want)/want > 0.1 {
		t.Fatalf("rank0 mass=%.4f want~%.4f", p0, want)
	}
	// Monotone-ish: rank0 > rank10 > rank100.
	if !(counts[0] > counts[10] && counts[10] > counts[100]) {
		t.Fatalf("not decreasing: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if share := float64(top10) / draws; share < 0.3 {
		t.Fatalf("top-10 share=%.3f want >0.3 (skew lost)", share)
	}
}

func TestZipfianRanksInRange(t *testing.T) {
	z := NewZipfian(37, 0.99, false)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if r := z.Rank(rng); r >= 37 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfianScatterIsInjective(t *testing.T) {
	// Scattering must not map two hot ranks onto the same key for small n
	// samples (splitmix64 is bijective; modulo can collide, but for the top
	// ranks of a big keyspace collisions would distort the skew badly, so we
	// verify none among top 1000 on the 1M default).
	const n = 1 << 20
	seen := make(map[uint64]uint64)
	for r := uint64(0); r < 1000; r++ {
		k := splitmix64(r) % n
		if prev, dup := seen[k]; dup {
			t.Fatalf("ranks %d and %d collide on key %d", prev, r, k)
		}
		seen[k] = r
	}
}

func TestZipfianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewZipfian(0, 0.99, false)
}

func TestGeneratorWriteRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.05, 0.5, 1} {
		g := NewGenerator(Config{Keys: 100, WriteRatio: ratio, ValueSize: 32}, 9)
		writes := 0
		const total = 20000
		for i := 0; i < total; i++ {
			op := g.Next()
			if op.Kind.IsUpdate() {
				writes++
				if len(op.Value) != 32 {
					t.Fatalf("value size %d", len(op.Value))
				}
			} else if op.Value != nil {
				t.Fatal("read carries a value")
			}
		}
		got := float64(writes) / total
		if math.Abs(got-ratio) > 0.01 {
			t.Fatalf("ratio %.2f: measured %.3f", ratio, got)
		}
	}
}

func TestGeneratorRMWMix(t *testing.T) {
	g := NewGenerator(Config{Keys: 100, WriteRatio: 1, RMWRatio: 0.5}, 11)
	rmws := 0
	const total = 10000
	for i := 0; i < total; i++ {
		op := g.Next()
		if !op.Kind.IsUpdate() {
			t.Fatal("write-only workload emitted a read")
		}
		if op.Kind.IsRMW() {
			rmws++
			if DecodeInt64(op.Value) != 1 {
				t.Fatal("FAA delta wrong")
			}
		}
	}
	if frac := float64(rmws) / total; math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("rmw fraction=%.3f", frac)
	}
}

func TestGeneratorIDsAreUniqueAndMonotone(t *testing.T) {
	g := NewGenerator(DefaultConfig(), 1)
	var last uint64
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.ID <= last {
			t.Fatalf("op id %d not monotone after %d", op.ID, last)
		}
		last = op.ID
	}
}

func TestGeneratorDeterministicFromSeed(t *testing.T) {
	a := NewGenerator(DefaultConfig(), 77)
	b := NewGenerator(DefaultConfig(), 77)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x.Key != y.Key || x.Kind != y.Kind {
			t.Fatalf("divergence at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestGeneratorDefaultsApplied(t *testing.T) {
	g := NewGenerator(Config{WriteRatio: 1}, 5)
	op := g.Next()
	if len(op.Value) != 32 {
		t.Fatalf("default value size not applied: %d", len(op.Value))
	}
	if uint64(op.Key) >= 1<<20 {
		t.Fatalf("default keyspace not applied: %d", op.Key)
	}
}

func TestZipfDefaultTheta(t *testing.T) {
	g := NewGenerator(Config{Keys: 1000, Zipf: true}, 5)
	z, ok := g.keys.(*Zipfian)
	if !ok {
		t.Fatal("zipf config did not select Zipfian chooser")
	}
	if z.theta != 0.99 {
		t.Fatalf("theta=%v want 0.99 default", z.theta)
	}
}

func TestInt64Roundtrip(t *testing.T) {
	for _, x := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if got := DecodeInt64(EncodeInt64(x)); got != x {
			t.Fatalf("roundtrip %d -> %d", x, got)
		}
	}
	if DecodeInt64(nil) != 0 || DecodeInt64(proto.Value{1, 2}) != 0 {
		t.Fatal("short values must decode as 0")
	}
}
