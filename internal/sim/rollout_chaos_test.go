package sim

import (
	"testing"
)

// Chaos scenarios for the automatic reconfiguration pipeline: the view-log
// fast-forward of a node that rejoined epochs behind, and agent-driven
// staggered rollouts replacing harness-pushed installs.

// TestChaosRejoinBehindFastForwardsViaViewLog is the acceptance regression
// for the view log: a node crashes, misses the removal plus three more
// epochs plus its own learner-add (none of which the harness ever
// re-delivers), restarts on its stale pre-crash view — and must fast-forward
// every shard through peers' view logs, catch up by chunk transfer and get
// promoted, all without a second restart. Red runs embed the seed.
func TestChaosRejoinBehindFastForwardsViaViewLog(t *testing.T) {
	for _, seed := range chaosSeeds(t, 4) {
		res, err := RunChaos(ChaosConfig{
			Seed:         seed,
			CrashRejoin:  true,
			RejoinBehind: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashes != 1 || res.Restarts != 1 || res.Promotions != 1 {
			t.Fatalf("seed %d: crash/restart/promote = %d/%d/%d, want 1/1/1",
				seed, res.Crashes, res.Restarts, res.Promotions)
		}
		// The rejoined node was ≥ 3 epochs behind with no wire delivery of
		// the gap: only view-log fetches can have closed it.
		if res.FastForwards == 0 {
			t.Fatalf("seed %d: no view-log fetches issued — the laggard recovered through a backdoor", seed)
		}
		if res.FFApplied < 3 {
			t.Fatalf("seed %d: only %d fetched updates applied, want >= 3 (the missed epochs)",
				seed, res.FFApplied)
		}
		if res.FFServed < res.FFApplied {
			t.Fatalf("seed %d: served %d < applied %d — entries applied that nobody served",
				seed, res.FFServed, res.FFApplied)
		}
		// Convergence is asserted inside RunChaos (awaitConvergence); the
		// epochs here document it.
		for n, epochs := range res.FinalEpochs {
			for s, e := range epochs {
				if e < res.FinalEpochs[0][s] {
					t.Fatalf("seed %d: node %d shard %d at epoch %d, behind node 0's %d",
						seed, n, s, e, res.FinalEpochs[0][s])
				}
			}
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d: no operations completed", seed)
		}
	}
}

// TestChaosAgentDrivenRollout drives every reconfiguration through real
// membership.Agents: the script proposes, Paxos decides over the lossy
// network, and each node's commit triggers the staggered per-shard rollout.
// The full crash/rejoin/promote arc plus node-wide rollout storms must stay
// linearizable and converge on every shard.
func TestChaosAgentDrivenRollout(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{
			Seed:        seed,
			AgentDriven: true,
			CrashRejoin: true,
			ShardStorms: true, // node-wide rollout storms in agent mode
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Installs < 3 {
			t.Fatalf("seed %d: only %d agent-decided views — the script never reached consensus", seed, res.Installs)
		}
		if res.Promotions != 1 {
			t.Fatalf("seed %d: %d promotions, want 1", seed, res.Promotions)
		}
		// Agent decisions are node-wide: after convergence every shard of
		// every node sits on the same (final) epoch.
		final := res.FinalEpochs[0][0]
		for n, epochs := range res.FinalEpochs {
			for s, e := range epochs {
				if e != final {
					t.Fatalf("seed %d: node %d shard %d at epoch %d, want uniform %d",
						seed, n, s, e, final)
				}
			}
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d: no operations completed", seed)
		}
	}
}

// TestChaosAgentDrivenDeterministic extends the replayable-seed contract to
// agent-driven runs: Paxos traffic, staggered rollouts and view-log fetches
// all ride the seeded engine, so two runs of one seed are byte-identical.
func TestChaosAgentDrivenDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Seed:        99,
		AgentDriven: true,
		CrashRejoin: true,
		ShardStorms: true,
		LeaseFlips:  true,
	}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same seed, different runs: fingerprints %x vs %x (ops %d vs %d)",
			fa, fb, a.Ops, b.Ops)
	}
}

// TestChaosRejoinBehindDeterministic pins exact replay for the fast-forward
// scenario specifically (the acceptance criterion asks for it by name).
func TestChaosRejoinBehindDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, CrashRejoin: true, RejoinBehind: 3}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same seed, different runs: fingerprints %x vs %x", fa, fb)
	}
	if a.FastForwards != b.FastForwards || a.FFApplied != b.FFApplied {
		t.Fatalf("fast-forward counters diverged across identical runs: %d/%d vs %d/%d",
			a.FastForwards, a.FFApplied, b.FastForwards, b.FFApplied)
	}
}
