package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/workload"
)

// hermesFactory builds Hermes replicas for simulator tests.
func hermesFactory(mlt time.Duration) Factory {
	return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return core.New(core.Config{ID: id, View: view, Env: env, MLT: mlt})
	}
}

func newTestCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	return New(Config{
		Nodes:   nodes,
		Factory: hermesFactory(500 * time.Microsecond),
		Net:     DefaultNet(),
		Seed:    1,
	})
}

func TestClusterSingleWrite(t *testing.T) {
	c := newTestCluster(t, 3)
	var done *proto.Completion
	c.Submit(0, proto.ClientOp{ID: 1, Kind: proto.OpWrite, Key: 7, Value: proto.Value("v")},
		func(comp proto.Completion) { done = &comp })
	c.Engine().RunUntil(time.Millisecond)
	if done == nil || done.Status != proto.OK {
		t.Fatalf("write did not complete: %+v", done)
	}
	// The write took at least one network round-trip of virtual time.
	var read *proto.Completion
	c.Submit(1, proto.ClientOp{ID: 2, Kind: proto.OpRead, Key: 7},
		func(comp proto.Completion) { read = &comp })
	c.Engine().RunUntil(2 * time.Millisecond)
	if read == nil || string(read.Value) != "v" {
		t.Fatalf("read at another replica: %+v", read)
	}
}

func TestClusterWorkloadRunProducesStats(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 256, WriteRatio: 0.2, ValueSize: 32},
		SessionsPerNode: 2,
		Warmup:          200 * time.Microsecond,
		Duration:        5 * time.Millisecond,
	})
	if res.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if res.Read.Count() == 0 || res.Write.Count() == 0 {
		t.Fatalf("histograms empty: reads=%d writes=%d", res.Read.Count(), res.Write.Count())
	}
	// Writes traverse the network; reads are local. Medians must reflect it.
	if res.Write.Median() <= res.Read.Median() {
		t.Fatalf("write median %v <= read median %v", res.Write.Median(), res.Read.Median())
	}
	if res.MsgsSent == 0 {
		t.Fatal("no messages counted")
	}
}

func TestClusterReadOnlyIsLocal(t *testing.T) {
	c := newTestCluster(t, 5)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 256, WriteRatio: 0},
		SessionsPerNode: 2,
		Duration:        2 * time.Millisecond,
	})
	if res.MsgsSent != 0 {
		t.Fatalf("read-only workload sent %d messages", res.MsgsSent)
	}
	if res.Ops == 0 {
		t.Fatal("no reads completed")
	}
}

func TestClusterThroughputScalesWithNodes(t *testing.T) {
	// Read-only: more replicas, proportionally more local throughput
	// (load-balanced local reads, §2.3).
	run := func(n int) float64 {
		c := newTestCluster(t, n)
		res := c.RunWorkload(WorkloadParams{
			Workload:        workload.Config{Keys: 1024, WriteRatio: 0},
			SessionsPerNode: 4,
			Warmup:          time.Millisecond,
			Duration:        5 * time.Millisecond,
		})
		return res.Throughput
	}
	t3, t7 := run(3), run(7)
	if t7 < 1.8*t3 {
		t.Fatalf("7-node read throughput %.0f not ~2.3x 3-node %.0f", t7, t3)
	}
}

func TestClusterCrashWithoutRMBlocksWrites(t *testing.T) {
	c := newTestCluster(t, 3)
	c.CrashAt(2, 0)
	c.Engine().RunUntil(10 * time.Microsecond)
	var done *proto.Completion
	c.Submit(0, proto.ClientOp{ID: 1, Kind: proto.OpWrite, Key: 1, Value: proto.Value("v")},
		func(comp proto.Completion) { done = &comp })
	c.Engine().RunUntil(5 * time.Millisecond)
	if done != nil {
		t.Fatal("write committed without the crashed follower's ACK and no m-update")
	}
	// Installing a view without the dead node releases it.
	c.InstallView(proto.View{Epoch: 2, Members: []proto.NodeID{0, 1}})
	c.Engine().RunUntil(10 * time.Millisecond)
	if done == nil || done.Status != proto.OK {
		t.Fatalf("write still blocked after m-update: %+v", done)
	}
}

// End-to-end failure experiment shape (Fig. 9): with RM enabled, a crash
// stalls writes until suspicion + lease expiry produce an m-update, after
// which throughput recovers.
func TestClusterFailureRecoveryWithRM(t *testing.T) {
	c := New(Config{
		Nodes:   5,
		Factory: hermesFactory(2 * time.Millisecond),
		Net:     DefaultNet(),
		Seed:    3,
		RM: &RMParams{
			HeartbeatEvery: 200 * time.Microsecond,
			SuspectAfter:   time.Millisecond,
			LeaseDur:       2 * time.Millisecond,
		},
	})
	c.CrashAt(4, 3*time.Millisecond)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 64, WriteRatio: 0.2, ValueSize: 32},
		SessionsPerNode: 2,
		Duration:        30 * time.Millisecond,
		SeriesBucket:    time.Millisecond,
	})
	if c.ViewChanges == 0 {
		t.Fatal("no m-update happened")
	}
	rates := res.Series.Rates()
	if len(rates) < 25 {
		t.Fatalf("series too short: %d buckets", len(rates))
	}
	pre := rates[1]
	// Shortly after the crash, throughput must dip (writes blocked on the
	// dead node's ACKs).
	dip := rates[5]
	if dip > pre/2 {
		t.Fatalf("no dip after crash: pre=%.0f dip=%.0f", pre, dip)
	}
	// By the end it must have recovered substantially.
	tail := rates[len(rates)-2]
	if tail < pre/2 {
		t.Fatalf("no recovery: pre=%.0f tail=%.0f", pre, tail)
	}
}

func TestClusterUtilizationAccounting(t *testing.T) {
	c := newTestCluster(t, 3)
	c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 64, WriteRatio: 0.5},
		SessionsPerNode: 4,
		Duration:        2 * time.Millisecond,
	})
	for i, u := range c.Utilization() {
		if u <= 0 || u > 1.01 {
			t.Fatalf("node %d utilization %.3f out of range", i, u)
		}
	}
}

func TestClusterRMWAbortsSurfaceInResult(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 1, WriteRatio: 1, RMWRatio: 1},
		SessionsPerNode: 4,
		Duration:        5 * time.Millisecond,
		Seed:            9,
	})
	if res.Ops == 0 {
		t.Fatal("no RMWs completed")
	}
	if res.Aborts == 0 {
		t.Fatal("single hot key, 12 concurrent RMW sessions: expected aborts")
	}
}

func TestClusterRetryAborts(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 1, WriteRatio: 1, RMWRatio: 1},
		SessionsPerNode: 2,
		Duration:        5 * time.Millisecond,
		RetryAborts:     true,
		Seed:            11,
	})
	if res.Aborts == 0 {
		t.Fatal("expected aborts on a hot key")
	}
	if res.Ops == 0 {
		t.Fatal("retries starved all progress")
	}
}

func TestDefaultCostsSane(t *testing.T) {
	co := DefaultCosts()
	if co.ClientOp <= 0 || co.Message <= 0 {
		t.Fatal("bad defaults")
	}
}
