// Package sim is the discrete-event cluster simulator that stands in for
// the paper's 7-node RDMA testbed (§5.2). It provides:
//
//   - a virtual clock and event heap (engine.go),
//   - a network model with configurable latency, jitter, loss, duplication,
//     reordering and partitions (network.go),
//   - hosts with a queueing CPU model so per-node load imbalance (the ZAB
//     leader, the CRAQ tail) surfaces as queueing delay and throughput caps
//     (cluster.go),
//   - closed-loop client sessions, latency histograms and throughput series
//     (run.go).
//
// Protocol state machines run unmodified under the simulator; virtual time
// makes latency distributions deterministic and reproducible from seeds.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a discrete-event executor over virtual time.
type Engine struct {
	now time.Duration
	pq  eventHeap
	seq uint64
}

type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// RunUntil executes events in time order until the clock reaches t or no
// events remain. Returns the number of events executed.
func (e *Engine) RunUntil(t time.Duration) int {
	n := 0
	for len(e.pq) > 0 && e.pq[0].at <= t {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }
