package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/linear"
	"repro/internal/proto"
)

// This file is the deterministic reconfiguration chaos harness: a seeded
// schedule of node crashes, rejoins as learner, lease flips and per-shard
// view installs, injected under a live read/write/RMW workload on a sharded
// Hermes cluster, with every key's history checked against the Wing–Gong
// linearizability oracle (internal/linear). Everything — the fault schedule,
// the client mix, the network's loss and jitter — derives from ChaosConfig.Seed
// over virtual time, so a failing run replays exactly from its seed. (The
// protocol core cooperates: Tick and OnViewChange iterate per-key state in
// sorted order precisely so retransmission order cannot leak map randomness
// into the schedule.)

// ChaosConfig parameterizes one chaos run. The zero value of every field
// gets a sensible default; only Seed is required to vary runs.
type ChaosConfig struct {
	Seed            int64
	Nodes           int           // replica count (default 3)
	Shards          int           // engines per node (default 4)
	Keys            int           // keyspace size (default 12; small → real contention)
	SessionsPerNode int           // closed-loop clients per node (default 2)
	OpsPerSession   int           // ops each session issues (default 150)
	MLT             time.Duration // message-loss timeout (default 2ms)
	TickEvery       time.Duration // timer granularity (default 100µs)
	// Net models the fabric; the zero value becomes a lossy RDMA-class
	// network (1% loss, 0.5% duplication) — chaos without message loss
	// would never exercise replays.
	Net NetConfig

	// Fault injections. All off yields a plain workload run.
	CrashRejoin bool // crash a node, remove it, rejoin as learner, promote
	LeaseFlips  bool // temporarily revoke a node's RM lease
	ShardStorms bool // back-to-back view installs targeted at single shards
	// StormShard pins the shard the back-to-back installs target; an
	// out-of-range value (e.g. -1) picks per-storm at random. The zero value
	// pins shard 0, which scenario tests exploit to assert the other shards'
	// epochs never moved.
	StormShard int

	// AgentDriven routes every scripted reconfiguration through real
	// membership.Agents: the script proposes views (ProposeView on the
	// current coordinator's agent), Paxos decides them over the same lossy
	// network as the data traffic, and each node's agent commit triggers a
	// deterministic staggered per-shard rollout ordered by live engine load —
	// the simulator mirror of cluster.RolloutController. Storms become
	// node-wide rollout storms (an agent cannot address one shard), so the
	// single-shard epoch-isolation scenarios keep the default harness mode.
	AgentDriven bool

	// RejoinBehind, with CrashRejoin, makes the crashed node miss that many
	// extra membership epochs while it is down and restart with its stale
	// pre-crash view — so it rejoins RejoinBehind+2 epochs behind and can
	// only catch up by fetching the peers' view logs (proto.ViewLogReq);
	// the harness never re-delivers the missed installs. 0 rejoins at the
	// current view, as a freshly told learner would.
	RejoinBehind int
}

func (cfg *ChaosConfig) defaults() {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 12
	}
	if cfg.SessionsPerNode <= 0 {
		cfg.SessionsPerNode = 2
	}
	if cfg.OpsPerSession <= 0 {
		cfg.OpsPerSession = 200
	}
	if cfg.MLT <= 0 {
		cfg.MLT = 2 * time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 100 * time.Microsecond
	}
	if cfg.Net == (NetConfig{}) {
		cfg.Net = NetConfig{
			BaseLatency: 2 * time.Microsecond,
			Jitter:      500 * time.Nanosecond,
			LossProb:    0.01,
			DupProb:     0.005,
		}
	}
}

// ChaosResult aggregates a run's observations. History holds every key's
// recorded operations (already checked by RunChaos); the counters summarize
// what the schedule actually exercised so scenario tests can assert they hit
// their target machinery.
type ChaosResult struct {
	Seed    int64
	Elapsed time.Duration // virtual time at the end of the run

	Ops, Reads, Writes, RMWs uint64 // completed, by class
	Aborts, Rejected         uint64 // RMW aborts; NotOperational rejections
	Abandoned                uint64 // ops given up on (crashed server) — pending in the history

	Crashes, Restarts, Promotions int
	Installs                      int // views issued by the harness (or decided by agents)
	ShardInstalls                 int // single-shard installs among them

	// FastForwards counts view-log fetches issued by lagging shards;
	// FFServed/FFApplied sum the replicas' log entries served to peers and
	// fetched entries that actually advanced an epoch. Nonzero FFApplied is
	// the proof a run recovered skipped epochs through the log rather than a
	// harness backdoor.
	FastForwards        uint64
	FFServed, FFApplied uint64

	Replays, Retransmits, StaleEpochDrops uint64 // summed over engines

	FinalEpochs [][]uint32 // per live node, per shard
	History     *linear.History
}

// Fingerprint digests the run — every recorded operation with its timing and
// output, plus the final per-shard epochs — into one value. Two runs of the
// same seed must produce identical fingerprints; the determinism test pins
// that.
func (r *ChaosResult) Fingerprint() uint64 {
	h := fnv.New64a()
	w := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	for _, k := range r.History.Keys() {
		w(uint64(k))
		for _, op := range r.History.Ops(k) {
			w(op.ID, uint64(op.Kind), uint64(op.Invoke), uint64(op.Return))
			h.Write(op.Arg)
			h.Write(op.Out)
		}
	}
	for _, es := range r.FinalEpochs {
		for _, e := range es {
			w(uint64(e))
		}
	}
	w(r.Ops, r.Aborts, r.Rejected, r.Abandoned, r.Replays)
	return h.Sum64()
}

// chaosRun is the mutable harness state; everything mutates inside engine
// events, so no locking is needed (the simulator is single-threaded).
type chaosRun struct {
	cfg  ChaosConfig
	c    *Cluster
	rng  *rand.Rand
	hist *linear.History
	res  *ChaosResult

	view  proto.View // the harness's (= membership service's) current view
	epoch uint32     // highest epoch issued so far, across all shards

	// shardTarget is the highest epoch issued for each shard; the run must
	// drive every live shard to its target (awaitConvergence) — with lost
	// installs recovered through the view-log fetch, not a direct backstop.
	shardTarget []uint32

	alive       []bool
	leased      []bool
	learner     proto.NodeID // node currently rejoining, or NilNode
	outstanding map[uint64]func(proto.Completion)
	idSeq       uint64
	sessionsRun int // sessions still issuing
	scriptOpen  int // scheduled fault-script items not yet finished
}

// RunChaos executes one seeded chaos run and checks every key's history for
// linearizability. A non-nil error reports a safety violation (history not
// linearizable), an availability failure (final reads never completed) or a
// stuck run; the message embeds the seed for replay.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.defaults()
	r := &chaosRun{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		hist:        linear.NewHistory(),
		res:         &ChaosResult{Seed: cfg.Seed, History: nil},
		alive:       make([]bool, cfg.Nodes),
		leased:      make([]bool, cfg.Nodes),
		learner:     proto.NilNode,
		outstanding: make(map[uint64]func(proto.Completion)),
	}
	r.res.History = r.hist
	r.shardTarget = make([]uint32, cfg.Shards)
	for i := range r.alive {
		r.alive[i] = true
		r.leased[i] = true
	}
	simCfg := Config{
		Nodes: cfg.Nodes,
		Factory: func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return NewShardedReplica(id, view, env, ShardedReplicaConfig{
				Shards: cfg.Shards, MLT: cfg.MLT,
			})
		},
		Net:       cfg.Net,
		TickEvery: cfg.TickEvery,
		Seed:      cfg.Seed ^ 0xC0FFEE,
	}
	if cfg.AgentDriven {
		// Real membership agents decide the views; suspicion and lease
		// windows are pushed out of reach so the *script* stays the only
		// source of reconfiguration (the agents' own failure detection would
		// otherwise race the schedule and break replayability of the
		// scenario shape).
		simCfg.RM = &RMParams{
			HeartbeatEvery: 500 * time.Microsecond,
			SuspectAfter:   time.Hour,
			LeaseDur:       time.Hour,
		}
		simCfg.OnView = func(id proto.NodeID, v proto.View) { r.onAgentView(id, v) }
	}
	r.c = New(simCfg)
	r.view = r.c.View()
	r.epoch = r.view.Epoch
	for s := range r.shardTarget {
		r.shardTarget[s] = r.epoch
	}

	// Client sessions: closed-loop read/write/RMW mix.
	for n := 0; n < cfg.Nodes; n++ {
		for s := 0; s < cfg.SessionsPerNode; s++ {
			sess := &chaosSession{
				r:         r,
				rng:       rand.New(rand.NewSource(cfg.Seed + int64(n)*131 + int64(s)*7919 + 1)),
				node:      proto.NodeID(n),
				remaining: cfg.OpsPerSession,
			}
			r.sessionsRun++
			start := time.Duration(1+r.rng.Intn(500)) * time.Microsecond
			r.c.eng.After(start, sess.next)
		}
	}
	r.scheduleFaults()

	// Drive until sessions and fault script complete (or declare the run
	// stuck — that too is a finding).
	const horizon = 3 * time.Second
	for r.sessionsRun > 0 || r.scriptOpen > 0 {
		if r.c.eng.Now() > horizon {
			return r.res, fmt.Errorf("chaos run stuck at %v: %d sessions, %d script items open (replay with seed %d)",
				r.c.eng.Now(), r.sessionsRun, r.scriptOpen, cfg.Seed)
		}
		r.c.eng.RunUntil(r.c.eng.Now() + 5*time.Millisecond)
	}

	// Epoch convergence: every live shard must reach the highest epoch issued
	// for it. Installs lost on the wire have exactly one recovery path — the
	// view-log fetch — so a shard stuck behind here means that path failed.
	if err := r.awaitConvergence(); err != nil {
		return r.res, err
	}

	// Availability epilogue: one read of every key at every serving member,
	// in node rounds (sequential per key across rounds, so divergence between
	// replicas cannot hide). These reads stall on Invalid keys and must be
	// completed by the replay machinery — that they finish at all is part of
	// the check.
	if err := r.finalReads(horizon); err != nil {
		return r.res, err
	}

	r.collectMetrics()
	r.hist.Close()
	if k, res, ok := r.hist.CheckAll(); !ok {
		return r.res, fmt.Errorf("history of key %d not linearizable: %s (replay with seed %d)", k, res.Info, cfg.Seed)
	}
	r.res.Elapsed = r.c.eng.Now()
	return r.res, nil
}

// --- fault script ---

// scheduleFaults lays out the seeded injection schedule. All randomness is
// drawn here and inside engine events, in deterministic order.
func (r *chaosRun) scheduleFaults() {
	if r.cfg.ShardStorms {
		for i := 0; i < 2; i++ {
			at := time.Duration(5+r.rng.Intn(30)) * time.Millisecond
			shard := r.cfg.StormShard
			if shard < 0 || shard >= r.cfg.Shards {
				shard = r.rng.Intn(r.cfg.Shards)
			}
			bursts := 3 + r.rng.Intn(3)
			gap := time.Duration(200+r.rng.Intn(600)) * time.Microsecond
			r.scriptOpen++
			r.c.eng.At(at, func() { r.storm(shard, bursts, gap) })
		}
	}
	if r.cfg.LeaseFlips {
		for i := 0; i < 2; i++ {
			at := time.Duration(6+r.rng.Intn(25)) * time.Millisecond
			dur := time.Duration(2+r.rng.Intn(4)) * time.Millisecond
			r.scriptOpen++
			r.c.eng.At(at, func() { r.leaseFlip(dur) })
		}
	}
	if r.cfg.CrashRejoin {
		at := time.Duration(8+r.rng.Intn(8)) * time.Millisecond
		r.scriptOpen++
		r.c.eng.At(at, func() { r.crashCycle() })
	}
}

// storm issues `bursts` back-to-back view installs targeted at one shard:
// membership unchanged, epoch advancing each time — the §3.4 transition
// (gate shut, epoch-tagged filtering, replays of in-flight writes) hammered
// on one shard while every other shard's epoch never moves. In agent-driven
// mode the bursts are node-wide proposals instead (an agent cannot address
// one shard); each decision triggers every node's staggered rollout.
func (r *chaosRun) storm(shard, bursts int, gap time.Duration) {
	if bursts == 0 {
		r.scriptOpen--
		return
	}
	if r.cfg.AgentDriven {
		if !r.propose(r.view.Members, r.view.Learners) {
			// The coordinator still has a proposal in flight (or is dead):
			// retry this burst after the gap instead of dropping it.
			bursts++
		}
	} else {
		r.epoch++
		v := r.view.Clone()
		v.Epoch = r.epoch
		r.install(v, shard)
	}
	r.c.eng.After(gap, func() { r.storm(shard, bursts-1, gap) })
}

// propose asks the current coordinator's membership agent for a new view;
// false means no proposal was started (agent busy or missing) and the
// caller should retry.
func (r *chaosRun) propose(members, learners []proto.NodeID) bool {
	coord := r.coordinator()
	if !r.alive[coord] {
		return false
	}
	a := r.c.Agent(coord)
	if a == nil || a.Proposing() {
		return false
	}
	a.ProposeView(members, learners)
	return true
}

// onAgentView is the Config.OnView hook of agent-driven runs: one node's
// agent committed view v. It mirrors cluster.RolloutController inside the
// simulator — record the view in the node's log, then roll it across the
// node's shards one at a time, coolest engine first (by ops processed),
// with a fixed stagger. Everything runs on engine events, so the rollout is
// deterministic and exactly replayable.
func (r *chaosRun) onAgentView(id proto.NodeID, v proto.View) {
	if v.Epoch > r.epoch {
		// First commit of this epoch anywhere: it becomes the harness's
		// current view and every shard's target.
		r.epoch = v.Epoch
		r.view = v.Clone()
		r.res.Installs++
		for s := range r.shardTarget {
			if v.Epoch > r.shardTarget[s] {
				r.shardTarget[s] = v.Epoch
			}
		}
	}
	rep, ok := r.c.Replica(id).(*ShardedReplica)
	if !ok || !r.alive[id] {
		return
	}
	rep.RecordView(proto.MUpdate{Shard: proto.AllShards, View: v})
	const rolloutStagger = 150 * time.Microsecond
	for pos, s := range engineLoadOrder(rep) {
		s := s
		r.c.eng.After(time.Duration(pos)*rolloutStagger, func() {
			if !r.alive[id] {
				return
			}
			if cur, ok := r.c.Replica(id).(*ShardedReplica); ok && cur.Engine(s).View().Epoch < v.Epoch {
				cur.InstallShard(s, v)
			}
		})
	}
}

// engineLoadOrder sorts a replica's shard indices by ops processed so far,
// ascending (ties by index): the deterministic sim stand-in for the live
// controller's read/write load counters.
func engineLoadOrder(rep *ShardedReplica) []int {
	load := make([]uint64, rep.Shards())
	for i := 0; i < rep.Shards(); i++ {
		m := rep.Engine(i).Metrics()
		load[i] = m.Reads + m.Writes + m.RMWs
	}
	order := make([]int, len(load))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if load[order[a]] != load[order[b]] {
			return load[order[a]] < load[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// leaseFlip revokes a serving member's lease for dur — the node rejects
// client requests (NotOperational) but keeps following the protocol, exactly
// like a replica on the minority side of a partition before the membership
// reacts.
func (r *chaosRun) leaseFlip(dur time.Duration) {
	n := r.pickVictim()
	if n == proto.NilNode {
		r.scriptOpen--
		return
	}
	r.leased[n] = false
	r.c.Replica(n).(*ShardedReplica).SetOperational(false)
	r.c.eng.After(dur, func() {
		if r.alive[n] {
			r.leased[n] = true
			r.c.Replica(n).(*ShardedReplica).SetOperational(true)
		}
		r.scriptOpen--
	})
}

// crashCycle is the full §3.4 recovery arc: crash-stop a member while
// traffic (and possibly a replay) is in flight, reconfigure it out, restart
// it as a learner (shadow replica, empty store), wait for chunk-transfer
// catch-up, then promote it back to a serving member. With RejoinBehind the
// node additionally misses extra epochs while down and restarts on its
// stale pre-crash view, so its only way forward is the view-log fetch.
func (r *chaosRun) crashCycle() {
	n := r.pickVictim()
	if n == proto.NilNode {
		r.scriptOpen--
		return
	}
	stale := r.view.Clone() // what n will remember if it rejoins behind
	r.c.hosts[n].crashed = true
	r.alive[n] = false
	r.res.Crashes++

	// Remove it from the membership a detection-delay later (staggered
	// per-shard installs on the survivors).
	r.c.eng.After(3*time.Millisecond, func() {
		if r.cfg.AgentDriven {
			r.proposeUntil(
				func() ([]proto.NodeID, []proto.NodeID) { return without(r.view.Members, n), r.view.Learners },
				func() bool { return !r.view.Contains(n) },
				func() {})
			return
		}
		r.epoch++
		v := proto.View{Epoch: r.epoch, Members: without(r.view.Members, n)}
		v.Learners = append([]proto.NodeID(nil), r.view.Learners...)
		r.view = v
		r.install(v, -1)
	})

	// Epochs n sleeps through: membership-unchanged bumps decided while it
	// is down, which it can later only learn from a peer's view log.
	restartAfter := 6 * time.Millisecond
	for i := 0; i < r.cfg.RejoinBehind; i++ {
		after := 3500*time.Microsecond + time.Duration(i)*600*time.Microsecond
		if after+600*time.Microsecond > restartAfter {
			restartAfter = after + 600*time.Microsecond
		}
		r.c.eng.After(after, func() {
			if r.cfg.AgentDriven {
				r.propose(r.view.Members, r.view.Learners)
				return
			}
			r.epoch++
			v := r.view.Clone()
			v.Epoch = r.epoch
			r.view = v
			r.install(v, -1)
		})
	}

	// Restart as learner and add it to the view as one.
	r.c.eng.After(restartAfter, func() { r.restartAsLearner(n, stale) })
}

// restartAsLearner revives n as a shadow replica and reconfigures it into
// the view as a learner. With RejoinBehind the restarted node seeds from its
// stale pre-crash view and the harness never re-delivers what it missed —
// the lag recovery (ensureInstalled's view-log fetch) must carry it.
func (r *chaosRun) restartAsLearner(n proto.NodeID, stale proto.View) {
	factory := func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return NewShardedReplica(id, view, env, ShardedReplicaConfig{
			Shards: r.cfg.Shards, MLT: r.cfg.MLT, Learner: true,
		})
	}
	if r.cfg.AgentDriven {
		// Order matters: the learner-add view must COMMIT before the node
		// starts its chunk transfer. A learner fetching state while the
		// members' installed views still exclude it from the write set would
		// miss the writes racing the transfer — a stale store behind a Valid
		// state, serving stale reads after promotion.
		r.proposeUntil(
			func() ([]proto.NodeID, []proto.NodeID) {
				return r.view.Members, append(append([]proto.NodeID(nil), r.view.Learners...), n)
			},
			func() bool { return r.view.IsLearner(n) },
			func() {
				r.alive[n] = true
				r.leased[n] = true
				r.learner = n
				r.res.Restarts++
				restartView := r.view
				if r.cfg.RejoinBehind > 0 {
					restartView = stale
				}
				r.c.Restart(n, factory, restartView)
				r.pollPromotion(n)
			})
		return
	}
	r.epoch++
	v := proto.View{
		Epoch:    r.epoch,
		Members:  append([]proto.NodeID(nil), r.view.Members...),
		Learners: append(append([]proto.NodeID(nil), r.view.Learners...), n),
	}
	r.view = v
	r.alive[n] = true
	r.leased[n] = true
	r.learner = n
	r.res.Restarts++
	restartView, skip := v, proto.NilNode
	if r.cfg.RejoinBehind > 0 {
		// The node comes back on what it remembered; even the learner-add
		// m-update does not reach it directly (it was decided while the node
		// was still unreachable). Its shards fast-forward via the log.
		restartView, skip = stale, n
	}
	r.c.Restart(n, factory, restartView)
	r.installSkip(v, -1, skip)
	r.pollPromotion(n)
}

// pollPromotion waits for the learner's every engine to finish state
// transfer, then promotes it to a serving member.
func (r *chaosRun) pollPromotion(n proto.NodeID) {
	rep, ok := r.c.Replica(n).(*ShardedReplica)
	if ok && rep.CaughtUp() {
		if r.cfg.AgentDriven {
			r.proposeUntil(
				func() ([]proto.NodeID, []proto.NodeID) {
					m := append(append([]proto.NodeID(nil), r.view.Members...), n)
					sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
					return m, without(r.view.Learners, n)
				},
				func() bool { return r.view.Contains(n) },
				func() {
					r.learner = proto.NilNode
					r.res.Promotions++
					r.scriptOpen--
				})
			return
		}
		r.epoch++
		v := proto.View{
			Epoch:   r.epoch,
			Members: append(append([]proto.NodeID(nil), r.view.Members...), n),
		}
		sort.Slice(v.Members, func(i, j int) bool { return v.Members[i] < v.Members[j] })
		v.Learners = without(r.view.Learners, n)
		r.view = v
		r.learner = proto.NilNode
		r.res.Promotions++
		r.install(v, -1)
		r.scriptOpen--
		return
	}
	r.c.eng.After(time.Millisecond, func() { r.pollPromotion(n) })
}

// proposeUntil keeps proposing a view shaped by mk (recomputed from the
// current committed view on every attempt, so a rival decision folds in)
// until pred observes the change committed, then runs done. Drives the
// agent-mode script items through real consensus without wedging on lost
// proposals or duels.
func (r *chaosRun) proposeUntil(mk func() ([]proto.NodeID, []proto.NodeID), pred func() bool, done func()) {
	var step func()
	step = func() {
		if pred() {
			done()
			return
		}
		m, l := mk()
		r.propose(m, l) // best effort; retried next step if it did not start
		r.c.eng.After(time.Millisecond, step)
	}
	step()
}

// pickVictim selects a live, leased, non-learner member — never the last one
// standing.
func (r *chaosRun) pickVictim() proto.NodeID {
	var cands []proto.NodeID
	healthy := 0
	for _, m := range r.view.Members {
		if r.alive[m] && r.leased[m] {
			healthy++
		}
	}
	if healthy < 2 {
		return proto.NilNode
	}
	for _, m := range r.view.Members {
		if r.alive[m] && r.leased[m] && m != r.learner {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return proto.NilNode
	}
	return cands[r.rng.Intn(len(cands))]
}

// install delivers view v to every live node — to a single shard, or, with
// shard < 0, to all shards with a per-shard stagger (shards advance epochs
// independently; nothing requires them to transition together). Each
// (node, shard) install rides the lossy network as a proto.MUpdate from the
// current coordinator. There is no direct backstop anymore: a lost m-update
// is recovered by the lagging shard itself fetching the coordinator's view
// log (ensureInstalled) — recovery is protocol traffic on the same lossy
// wire, exactly what the live runtime ships.
func (r *chaosRun) install(v proto.View, shard int) { r.installSkip(v, shard, proto.NilNode) }

// installSkip is install with one node excluded from the wire fan-out
// (modeling a decision made while that node was unreachable); the excluded
// node still gets a lag check, so its only path to the view is the log
// fetch.
func (r *chaosRun) installSkip(v proto.View, shard int, skip proto.NodeID) {
	r.res.Installs++
	coord := r.coordinator()
	lo, hi := shard, shard+1
	if shard < 0 {
		lo, hi = 0, r.cfg.Shards
	} else {
		r.res.ShardInstalls++
	}
	// The deciding service durably records its own decision: the coordinator
	// retains every (shard, view) in its log even if the wire loses the
	// fan-out, so there is always a node laggards can fetch from.
	crep, crepOK := r.c.Replica(coord).(*ShardedReplica)
	for s := lo; s < hi; s++ {
		if v.Epoch > r.shardTarget[s] {
			r.shardTarget[s] = v.Epoch
		}
		if crepOK && r.alive[coord] {
			crep.RecordView(proto.MUpdate{Shard: uint16(s), View: v})
		}
	}
	for n := 0; n < r.cfg.Nodes; n++ {
		node := proto.NodeID(n)
		for s := lo; s < hi; s++ {
			s := s
			mu := proto.MUpdate{Shard: uint16(s), View: v}
			delay := time.Duration(s)*150*time.Microsecond +
				time.Duration(r.rng.Intn(200))*time.Microsecond
			if node != skip {
				r.c.eng.After(delay, func() {
					if r.alive[node] {
						r.c.net.Send(coord, node, mu, r.c.sizeOf(mu))
					}
				})
			}
			r.c.eng.After(delay+5*r.cfg.MLT, func() {
				r.ensureInstalled(node, s, coord, 0)
			})
		}
	}
}

// ensureInstalled is the lag detector + recovery path: if the shard is
// still behind the highest epoch issued for it, the node fetches the gap
// from a peer's view log (a proto.ViewLogReq riding the lossy network) and
// keeps retrying with rotating sources until it converges. Stands in for
// the live runtime's epoch-gossip observer calling
// RolloutController.FastForward.
func (r *chaosRun) ensureInstalled(node proto.NodeID, shard int, coord proto.NodeID, attempt int) {
	if !r.alive[node] {
		return // a crashed node's rejoin path schedules its own recovery
	}
	rep, ok := r.c.Replica(node).(*ShardedReplica)
	if !ok || rep.Engine(shard).View().Epoch >= r.shardTarget[shard] {
		return
	}
	src := coord
	if attempt > 0 || !r.alive[src] || src == node {
		src = r.fetchSource(node, attempt)
	}
	if src != proto.NilNode {
		r.res.FastForwards++
		req := proto.ViewLogReq{Shard: uint16(shard), Since: rep.Engine(shard).View().Epoch}
		r.c.net.Send(node, src, req, r.c.sizeOf(req))
	}
	r.c.eng.After(5*r.cfg.MLT, func() { r.ensureInstalled(node, shard, coord, attempt+1) })
}

// fetchSource rotates over live peers so a fetch wedged on one peer's
// incomplete log eventually reaches a node that applied the epoch (every
// node records the updates it receives, so any converged peer can serve).
func (r *chaosRun) fetchSource(node proto.NodeID, attempt int) proto.NodeID {
	var alive []proto.NodeID
	for n := 0; n < r.cfg.Nodes; n++ {
		if id := proto.NodeID(n); id != node && r.alive[id] {
			alive = append(alive, id)
		}
	}
	if len(alive) == 0 {
		return proto.NilNode
	}
	return alive[attempt%len(alive)]
}

// awaitConvergence drives the engine until every live shard has reached the
// highest epoch issued for it. A shard stuck behind means the view-log
// recovery path failed — that is a finding, reported with the seed.
func (r *chaosRun) awaitConvergence() error {
	deadline := r.c.eng.Now() + 400*time.Millisecond
	for !r.converged() {
		if r.c.eng.Now() >= deadline {
			return fmt.Errorf("shard epochs never converged to %v: [%s] (replay with seed %d)",
				r.shardTarget, r.lagReport(), r.cfg.Seed)
		}
		r.c.eng.RunUntil(r.c.eng.Now() + time.Millisecond)
	}
	return nil
}

func (r *chaosRun) converged() bool {
	for n := 0; n < r.cfg.Nodes; n++ {
		if !r.alive[n] {
			continue
		}
		rep, ok := r.c.Replica(proto.NodeID(n)).(*ShardedReplica)
		if !ok {
			continue
		}
		for s := 0; s < r.cfg.Shards; s++ {
			if rep.Engine(s).View().Epoch < r.shardTarget[s] {
				return false
			}
		}
	}
	return true
}

func (r *chaosRun) lagReport() string {
	var lags []string
	for n := 0; n < r.cfg.Nodes; n++ {
		if !r.alive[n] {
			continue
		}
		rep, ok := r.c.Replica(proto.NodeID(n)).(*ShardedReplica)
		if !ok {
			continue
		}
		for s := 0; s < r.cfg.Shards; s++ {
			if e := rep.Engine(s).View().Epoch; e < r.shardTarget[s] {
				lags = append(lags, fmt.Sprintf("node%d/shard%d@%d<%d", n, s, e, r.shardTarget[s]))
			}
		}
	}
	return strings.Join(lags, " ")
}

func (r *chaosRun) coordinator() proto.NodeID {
	for _, m := range r.view.Members {
		if r.alive[m] {
			return m
		}
	}
	return r.view.Members[0]
}

// --- client sessions ---

type chaosSession struct {
	r         *chaosRun
	rng       *rand.Rand
	node      proto.NodeID
	remaining int
}

// next issues the session's next operation (or retires the session).
func (s *chaosSession) next() {
	r := s.r
	if s.remaining == 0 {
		r.sessionsRun--
		return
	}
	s.remaining--

	// Stick to the home node while it serves; fail over otherwise.
	target := s.node
	if !r.alive[target] || !r.leased[target] || !r.view.Contains(target) {
		target = proto.NilNode
		for _, m := range r.view.Members {
			if r.alive[m] && r.leased[m] {
				target = m
				break
			}
		}
		if target == proto.NilNode {
			s.remaining++
			r.c.eng.After(time.Millisecond, s.next)
			return
		}
	}

	r.idSeq++
	id := r.idSeq
	key := proto.Key(s.rng.Intn(r.cfg.Keys))
	now := r.c.eng.Now()

	var op proto.ClientOp
	var kind linear.Kind
	switch p := s.rng.Float64(); {
	case p < 0.50:
		op = proto.ClientOp{ID: id, Kind: proto.OpRead, Key: key}
		kind = linear.KRead
		r.hist.Invoke(id, key, kind, nil, nil, now)
	case p < 0.80:
		val := proto.EncodeInt64(int64(id))
		op = proto.ClientOp{ID: id, Kind: proto.OpWrite, Key: key, Value: val}
		kind = linear.KWrite
		r.hist.Invoke(id, key, kind, val, nil, now)
	case p < 0.93:
		op = proto.ClientOp{ID: id, Kind: proto.OpFAA, Key: key, Value: proto.EncodeInt64(1)}
		kind = linear.KFAA
		r.hist.Invoke(id, key, kind, proto.EncodeInt64(1), nil, now)
	default:
		exp := proto.EncodeInt64(int64(s.rng.Intn(64)))
		val := proto.EncodeInt64(int64(id))
		op = proto.ClientOp{ID: id, Kind: proto.OpCAS, Key: key, Value: val, Expected: exp}
		kind = linear.KCASOk
		r.hist.Invoke(id, key, kind, val, exp, now)
	}

	r.outstanding[id] = func(comp proto.Completion) { s.complete(comp) }
	r.c.Submit(target, op, func(comp proto.Completion) {
		if cb := r.outstanding[comp.OpID]; cb != nil {
			delete(r.outstanding, comp.OpID)
			cb(comp)
		}
	})
	// Give-up watchdog: an op whose server crash-stopped can never complete;
	// abandon it (it stays pending in the history — it may or may not have
	// taken effect, which is exactly what the checker allows) and move on.
	// The window is generous so plain retransmission never trips it.
	r.c.eng.After(50*r.cfg.MLT, func() {
		if _, open := r.outstanding[id]; open {
			delete(r.outstanding, id)
			r.res.Abandoned++
			s.next()
		}
	})
}

// complete records an operation's outcome and issues the next one.
func (s *chaosSession) complete(comp proto.Completion) {
	r := s.r
	now := r.c.eng.Now()
	switch comp.Status {
	case proto.NotOperational:
		// Rejected before any protocol action: provably no effect.
		r.hist.Discard(comp.OpID)
		r.res.Rejected++
		s.remaining++ // retry does not consume the op budget
		r.c.eng.After(time.Millisecond, s.next)
		return
	case proto.Aborted:
		// Hermes guarantees aborted RMWs never applied.
		r.hist.Discard(comp.OpID)
		r.res.Aborts++
	case proto.CASFailed:
		r.hist.Return(comp.OpID, linear.KCASFail, comp.Value, now)
		r.res.Ops++
		r.res.RMWs++
	default:
		switch comp.Kind {
		case proto.OpRead:
			r.hist.Return(comp.OpID, linear.KRead, comp.Value, now)
			r.res.Reads++
		case proto.OpWrite:
			r.hist.Return(comp.OpID, linear.KWrite, nil, now)
			r.res.Writes++
		case proto.OpFAA:
			r.hist.Return(comp.OpID, linear.KFAA, comp.Value, now)
			r.res.RMWs++
		case proto.OpCAS:
			r.hist.Return(comp.OpID, linear.KCASOk, nil, now)
			r.res.RMWs++
		}
		r.res.Ops++
	}
	// Think time: stretches the workload across the fault schedule and keeps
	// per-key concurrency within what the Wing–Gong search handles happily.
	r.c.eng.After(time.Duration(50+s.rng.Intn(250))*time.Microsecond, s.next)
}

// --- epilogue ---

// finalReads issues one read per key at every serving member, one node
// round at a time, and requires every read to complete: Invalid keys must be
// driven Valid by the replay machinery, so this is an availability check as
// much as a convergence check.
func (r *chaosRun) finalReads(horizon time.Duration) error {
	var servers []proto.NodeID
	for _, m := range r.view.Members {
		if r.alive[m] && r.leased[m] {
			servers = append(servers, m)
		}
	}
	for _, node := range servers {
		open := r.cfg.Keys
		for k := 0; k < r.cfg.Keys; k++ {
			r.idSeq++
			id := r.idSeq
			key := proto.Key(k)
			r.hist.Invoke(id, key, linear.KRead, nil, nil, r.c.eng.Now())
			r.c.Submit(node, proto.ClientOp{ID: id, Kind: proto.OpRead, Key: key}, func(comp proto.Completion) {
				r.hist.Return(comp.OpID, linear.KRead, comp.Value, r.c.eng.Now())
				open--
			})
		}
		deadline := r.c.eng.Now() + 500*time.Millisecond
		for open > 0 && r.c.eng.Now() < deadline {
			r.c.eng.RunUntil(r.c.eng.Now() + time.Millisecond)
		}
		if open > 0 {
			return fmt.Errorf("final reads: %d of %d keys never became readable at node %d (replay with seed %d)",
				open, r.cfg.Keys, node, r.cfg.Seed)
		}
	}
	return nil
}

func (r *chaosRun) collectMetrics() {
	for n := 0; n < r.cfg.Nodes; n++ {
		rep, ok := r.c.Replica(proto.NodeID(n)).(*ShardedReplica)
		if !ok || !r.alive[n] {
			continue
		}
		var epochs []uint32
		for i := 0; i < rep.Shards(); i++ {
			m := rep.Engine(i).Metrics()
			r.res.Replays += m.Replays
			r.res.Retransmits += m.Retransmits
			r.res.StaleEpochDrops += m.StaleEpochDrops
			epochs = append(epochs, rep.Engine(i).View().Epoch)
		}
		served, applied := rep.FastForwardStats()
		r.res.FFServed += served
		r.res.FFApplied += applied
		r.res.FinalEpochs = append(r.res.FinalEpochs, epochs)
	}
}

// without returns ns minus x (non-destructive).
func without(ns []proto.NodeID, x proto.NodeID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(ns))
	for _, n := range ns {
		if n != x {
			out = append(out, n)
		}
	}
	return out
}
