package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"repro/internal/linear"
	"repro/internal/proto"
)

// This file is the deterministic reconfiguration chaos harness: a seeded
// schedule of node crashes, rejoins as learner, lease flips and per-shard
// view installs, injected under a live read/write/RMW workload on a sharded
// Hermes cluster, with every key's history checked against the Wing–Gong
// linearizability oracle (internal/linear). Everything — the fault schedule,
// the client mix, the network's loss and jitter — derives from ChaosConfig.Seed
// over virtual time, so a failing run replays exactly from its seed. (The
// protocol core cooperates: Tick and OnViewChange iterate per-key state in
// sorted order precisely so retransmission order cannot leak map randomness
// into the schedule.)

// ChaosConfig parameterizes one chaos run. The zero value of every field
// gets a sensible default; only Seed is required to vary runs.
type ChaosConfig struct {
	Seed            int64
	Nodes           int           // replica count (default 3)
	Shards          int           // engines per node (default 4)
	Keys            int           // keyspace size (default 12; small → real contention)
	SessionsPerNode int           // closed-loop clients per node (default 2)
	OpsPerSession   int           // ops each session issues (default 150)
	MLT             time.Duration // message-loss timeout (default 2ms)
	TickEvery       time.Duration // timer granularity (default 100µs)
	// Net models the fabric; the zero value becomes a lossy RDMA-class
	// network (1% loss, 0.5% duplication) — chaos without message loss
	// would never exercise replays.
	Net NetConfig

	// Fault injections. All off yields a plain workload run.
	CrashRejoin bool // crash a node, remove it, rejoin as learner, promote
	LeaseFlips  bool // temporarily revoke a node's RM lease
	ShardStorms bool // back-to-back view installs targeted at single shards
	// StormShard pins the shard the back-to-back installs target; an
	// out-of-range value (e.g. -1) picks per-storm at random. The zero value
	// pins shard 0, which scenario tests exploit to assert the other shards'
	// epochs never moved.
	StormShard int
}

func (cfg *ChaosConfig) defaults() {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 12
	}
	if cfg.SessionsPerNode <= 0 {
		cfg.SessionsPerNode = 2
	}
	if cfg.OpsPerSession <= 0 {
		cfg.OpsPerSession = 200
	}
	if cfg.MLT <= 0 {
		cfg.MLT = 2 * time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 100 * time.Microsecond
	}
	if cfg.Net == (NetConfig{}) {
		cfg.Net = NetConfig{
			BaseLatency: 2 * time.Microsecond,
			Jitter:      500 * time.Nanosecond,
			LossProb:    0.01,
			DupProb:     0.005,
		}
	}
}

// ChaosResult aggregates a run's observations. History holds every key's
// recorded operations (already checked by RunChaos); the counters summarize
// what the schedule actually exercised so scenario tests can assert they hit
// their target machinery.
type ChaosResult struct {
	Seed    int64
	Elapsed time.Duration // virtual time at the end of the run

	Ops, Reads, Writes, RMWs uint64 // completed, by class
	Aborts, Rejected         uint64 // RMW aborts; NotOperational rejections
	Abandoned                uint64 // ops given up on (crashed server) — pending in the history

	Crashes, Restarts, Promotions int
	Installs                      int // views issued by the harness
	ShardInstalls                 int // single-shard installs among them

	Replays, Retransmits, StaleEpochDrops uint64 // summed over engines

	FinalEpochs [][]uint32 // per live node, per shard
	History     *linear.History
}

// Fingerprint digests the run — every recorded operation with its timing and
// output, plus the final per-shard epochs — into one value. Two runs of the
// same seed must produce identical fingerprints; the determinism test pins
// that.
func (r *ChaosResult) Fingerprint() uint64 {
	h := fnv.New64a()
	w := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	for _, k := range r.History.Keys() {
		w(uint64(k))
		for _, op := range r.History.Ops(k) {
			w(op.ID, uint64(op.Kind), uint64(op.Invoke), uint64(op.Return))
			h.Write(op.Arg)
			h.Write(op.Out)
		}
	}
	for _, es := range r.FinalEpochs {
		for _, e := range es {
			w(uint64(e))
		}
	}
	w(r.Ops, r.Aborts, r.Rejected, r.Abandoned, r.Replays)
	return h.Sum64()
}

// chaosRun is the mutable harness state; everything mutates inside engine
// events, so no locking is needed (the simulator is single-threaded).
type chaosRun struct {
	cfg  ChaosConfig
	c    *Cluster
	rng  *rand.Rand
	hist *linear.History
	res  *ChaosResult

	view  proto.View // the harness's (= membership service's) current view
	epoch uint32     // highest epoch issued so far, across all shards

	alive       []bool
	leased      []bool
	learner     proto.NodeID // node currently rejoining, or NilNode
	outstanding map[uint64]func(proto.Completion)
	idSeq       uint64
	sessionsRun int // sessions still issuing
	scriptOpen  int // scheduled fault-script items not yet finished
}

// RunChaos executes one seeded chaos run and checks every key's history for
// linearizability. A non-nil error reports a safety violation (history not
// linearizable), an availability failure (final reads never completed) or a
// stuck run; the message embeds the seed for replay.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.defaults()
	r := &chaosRun{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		hist:        linear.NewHistory(),
		res:         &ChaosResult{Seed: cfg.Seed, History: nil},
		alive:       make([]bool, cfg.Nodes),
		leased:      make([]bool, cfg.Nodes),
		learner:     proto.NilNode,
		outstanding: make(map[uint64]func(proto.Completion)),
	}
	r.res.History = r.hist
	for i := range r.alive {
		r.alive[i] = true
		r.leased[i] = true
	}
	r.c = New(Config{
		Nodes: cfg.Nodes,
		Factory: func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return NewShardedReplica(id, view, env, ShardedReplicaConfig{
				Shards: cfg.Shards, MLT: cfg.MLT,
			})
		},
		Net:       cfg.Net,
		TickEvery: cfg.TickEvery,
		Seed:      cfg.Seed ^ 0xC0FFEE,
	})
	r.view = r.c.View()
	r.epoch = r.view.Epoch

	// Client sessions: closed-loop read/write/RMW mix.
	for n := 0; n < cfg.Nodes; n++ {
		for s := 0; s < cfg.SessionsPerNode; s++ {
			sess := &chaosSession{
				r:         r,
				rng:       rand.New(rand.NewSource(cfg.Seed + int64(n)*131 + int64(s)*7919 + 1)),
				node:      proto.NodeID(n),
				remaining: cfg.OpsPerSession,
			}
			r.sessionsRun++
			start := time.Duration(1+r.rng.Intn(500)) * time.Microsecond
			r.c.eng.After(start, sess.next)
		}
	}
	r.scheduleFaults()

	// Drive until sessions and fault script complete (or declare the run
	// stuck — that too is a finding).
	const horizon = 3 * time.Second
	for r.sessionsRun > 0 || r.scriptOpen > 0 {
		if r.c.eng.Now() > horizon {
			return r.res, fmt.Errorf("chaos run stuck at %v: %d sessions, %d script items open (replay with seed %d)",
				r.c.eng.Now(), r.sessionsRun, r.scriptOpen, cfg.Seed)
		}
		r.c.eng.RunUntil(r.c.eng.Now() + 5*time.Millisecond)
	}

	// Availability epilogue: one read of every key at every serving member,
	// in node rounds (sequential per key across rounds, so divergence between
	// replicas cannot hide). These reads stall on Invalid keys and must be
	// completed by the replay machinery — that they finish at all is part of
	// the check.
	if err := r.finalReads(horizon); err != nil {
		return r.res, err
	}

	r.collectMetrics()
	r.hist.Close()
	if k, res, ok := r.hist.CheckAll(); !ok {
		return r.res, fmt.Errorf("history of key %d not linearizable: %s (replay with seed %d)", k, res.Info, cfg.Seed)
	}
	r.res.Elapsed = r.c.eng.Now()
	return r.res, nil
}

// --- fault script ---

// scheduleFaults lays out the seeded injection schedule. All randomness is
// drawn here and inside engine events, in deterministic order.
func (r *chaosRun) scheduleFaults() {
	if r.cfg.ShardStorms {
		for i := 0; i < 2; i++ {
			at := time.Duration(5+r.rng.Intn(30)) * time.Millisecond
			shard := r.cfg.StormShard
			if shard < 0 || shard >= r.cfg.Shards {
				shard = r.rng.Intn(r.cfg.Shards)
			}
			bursts := 3 + r.rng.Intn(3)
			gap := time.Duration(200+r.rng.Intn(600)) * time.Microsecond
			r.scriptOpen++
			r.c.eng.At(at, func() { r.storm(shard, bursts, gap) })
		}
	}
	if r.cfg.LeaseFlips {
		for i := 0; i < 2; i++ {
			at := time.Duration(6+r.rng.Intn(25)) * time.Millisecond
			dur := time.Duration(2+r.rng.Intn(4)) * time.Millisecond
			r.scriptOpen++
			r.c.eng.At(at, func() { r.leaseFlip(dur) })
		}
	}
	if r.cfg.CrashRejoin {
		at := time.Duration(8+r.rng.Intn(8)) * time.Millisecond
		r.scriptOpen++
		r.c.eng.At(at, func() { r.crashCycle() })
	}
}

// storm issues `bursts` back-to-back view installs targeted at one shard:
// membership unchanged, epoch advancing each time — the §3.4 transition
// (gate shut, epoch-tagged filtering, replays of in-flight writes) hammered
// on one shard while every other shard's epoch never moves.
func (r *chaosRun) storm(shard, bursts int, gap time.Duration) {
	if bursts == 0 {
		r.scriptOpen--
		return
	}
	r.epoch++
	v := r.view.Clone()
	v.Epoch = r.epoch
	r.install(v, shard)
	r.c.eng.After(gap, func() { r.storm(shard, bursts-1, gap) })
}

// leaseFlip revokes a serving member's lease for dur — the node rejects
// client requests (NotOperational) but keeps following the protocol, exactly
// like a replica on the minority side of a partition before the membership
// reacts.
func (r *chaosRun) leaseFlip(dur time.Duration) {
	n := r.pickVictim()
	if n == proto.NilNode {
		r.scriptOpen--
		return
	}
	r.leased[n] = false
	r.c.Replica(n).(*ShardedReplica).SetOperational(false)
	r.c.eng.After(dur, func() {
		if r.alive[n] {
			r.leased[n] = true
			r.c.Replica(n).(*ShardedReplica).SetOperational(true)
		}
		r.scriptOpen--
	})
}

// crashCycle is the full §3.4 recovery arc: crash-stop a member while
// traffic (and possibly a replay) is in flight, reconfigure it out, restart
// it as a learner (shadow replica, empty store), wait for chunk-transfer
// catch-up, then promote it back to a serving member.
func (r *chaosRun) crashCycle() {
	n := r.pickVictim()
	if n == proto.NilNode {
		r.scriptOpen--
		return
	}
	r.c.hosts[n].crashed = true
	r.alive[n] = false
	r.res.Crashes++

	// Remove it from the membership a detection-delay later (staggered
	// per-shard installs on the survivors).
	r.c.eng.After(3*time.Millisecond, func() {
		r.epoch++
		v := proto.View{Epoch: r.epoch, Members: without(r.view.Members, n)}
		v.Learners = append([]proto.NodeID(nil), r.view.Learners...)
		r.view = v
		r.install(v, -1)
	})

	// Restart as learner and add it to the view as one.
	r.c.eng.After(6*time.Millisecond, func() {
		r.epoch++
		v := proto.View{
			Epoch:    r.epoch,
			Members:  append([]proto.NodeID(nil), r.view.Members...),
			Learners: append(append([]proto.NodeID(nil), r.view.Learners...), n),
		}
		r.view = v
		r.alive[n] = true
		r.leased[n] = true
		r.learner = n
		r.res.Restarts++
		r.c.Restart(n, func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return NewShardedReplica(id, view, env, ShardedReplicaConfig{
				Shards: r.cfg.Shards, MLT: r.cfg.MLT, Learner: true,
			})
		}, v)
		r.install(v, -1)
		r.pollPromotion(n)
	})
}

// pollPromotion waits for the learner's every engine to finish state
// transfer, then promotes it to a serving member.
func (r *chaosRun) pollPromotion(n proto.NodeID) {
	rep, ok := r.c.Replica(n).(*ShardedReplica)
	if ok && rep.CaughtUp() {
		r.epoch++
		v := proto.View{
			Epoch:   r.epoch,
			Members: append(append([]proto.NodeID(nil), r.view.Members...), n),
		}
		sort.Slice(v.Members, func(i, j int) bool { return v.Members[i] < v.Members[j] })
		v.Learners = without(r.view.Learners, n)
		r.view = v
		r.learner = proto.NilNode
		r.res.Promotions++
		r.install(v, -1)
		r.scriptOpen--
		return
	}
	r.c.eng.After(time.Millisecond, func() { r.pollPromotion(n) })
}

// pickVictim selects a live, leased, non-learner member — never the last one
// standing.
func (r *chaosRun) pickVictim() proto.NodeID {
	var cands []proto.NodeID
	healthy := 0
	for _, m := range r.view.Members {
		if r.alive[m] && r.leased[m] {
			healthy++
		}
	}
	if healthy < 2 {
		return proto.NilNode
	}
	for _, m := range r.view.Members {
		if r.alive[m] && r.leased[m] && m != r.learner {
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		return proto.NilNode
	}
	return cands[r.rng.Intn(len(cands))]
}

// install delivers view v to every live node — to a single shard, or, with
// shard < 0, to all shards with a per-shard stagger (shards advance epochs
// independently; nothing requires them to transition together). Each
// (node, shard) install rides the lossy network as a proto.MUpdate from the
// current coordinator, with a direct backstop 5 MLTs later standing in for
// the membership service's commit retry — so a lost m-update delays a shard,
// never wedges it.
func (r *chaosRun) install(v proto.View, shard int) {
	r.res.Installs++
	coord := r.coordinator()
	lo, hi := shard, shard+1
	if shard < 0 {
		lo, hi = 0, r.cfg.Shards
	} else {
		r.res.ShardInstalls++
	}
	for n := 0; n < r.cfg.Nodes; n++ {
		node := proto.NodeID(n)
		for s := lo; s < hi; s++ {
			mu := proto.MUpdate{Shard: uint16(s), View: v}
			delay := time.Duration(s)*150*time.Microsecond +
				time.Duration(r.rng.Intn(200))*time.Microsecond
			r.c.eng.After(delay, func() {
				if r.alive[node] {
					r.c.net.Send(coord, node, mu, r.c.sizeOf(mu))
				}
			})
			r.c.eng.After(delay+5*r.cfg.MLT, func() {
				if !r.alive[node] {
					return
				}
				if rep, ok := r.c.Replica(node).(*ShardedReplica); ok {
					rep.InstallShard(int(mu.Shard), v)
				}
			})
		}
	}
}

func (r *chaosRun) coordinator() proto.NodeID {
	for _, m := range r.view.Members {
		if r.alive[m] {
			return m
		}
	}
	return r.view.Members[0]
}

// --- client sessions ---

type chaosSession struct {
	r         *chaosRun
	rng       *rand.Rand
	node      proto.NodeID
	remaining int
}

// next issues the session's next operation (or retires the session).
func (s *chaosSession) next() {
	r := s.r
	if s.remaining == 0 {
		r.sessionsRun--
		return
	}
	s.remaining--

	// Stick to the home node while it serves; fail over otherwise.
	target := s.node
	if !r.alive[target] || !r.leased[target] || !r.view.Contains(target) {
		target = proto.NilNode
		for _, m := range r.view.Members {
			if r.alive[m] && r.leased[m] {
				target = m
				break
			}
		}
		if target == proto.NilNode {
			s.remaining++
			r.c.eng.After(time.Millisecond, s.next)
			return
		}
	}

	r.idSeq++
	id := r.idSeq
	key := proto.Key(s.rng.Intn(r.cfg.Keys))
	now := r.c.eng.Now()

	var op proto.ClientOp
	var kind linear.Kind
	switch p := s.rng.Float64(); {
	case p < 0.50:
		op = proto.ClientOp{ID: id, Kind: proto.OpRead, Key: key}
		kind = linear.KRead
		r.hist.Invoke(id, key, kind, nil, nil, now)
	case p < 0.80:
		val := proto.EncodeInt64(int64(id))
		op = proto.ClientOp{ID: id, Kind: proto.OpWrite, Key: key, Value: val}
		kind = linear.KWrite
		r.hist.Invoke(id, key, kind, val, nil, now)
	case p < 0.93:
		op = proto.ClientOp{ID: id, Kind: proto.OpFAA, Key: key, Value: proto.EncodeInt64(1)}
		kind = linear.KFAA
		r.hist.Invoke(id, key, kind, proto.EncodeInt64(1), nil, now)
	default:
		exp := proto.EncodeInt64(int64(s.rng.Intn(64)))
		val := proto.EncodeInt64(int64(id))
		op = proto.ClientOp{ID: id, Kind: proto.OpCAS, Key: key, Value: val, Expected: exp}
		kind = linear.KCASOk
		r.hist.Invoke(id, key, kind, val, exp, now)
	}

	r.outstanding[id] = func(comp proto.Completion) { s.complete(comp) }
	r.c.Submit(target, op, func(comp proto.Completion) {
		if cb := r.outstanding[comp.OpID]; cb != nil {
			delete(r.outstanding, comp.OpID)
			cb(comp)
		}
	})
	// Give-up watchdog: an op whose server crash-stopped can never complete;
	// abandon it (it stays pending in the history — it may or may not have
	// taken effect, which is exactly what the checker allows) and move on.
	// The window is generous so plain retransmission never trips it.
	r.c.eng.After(50*r.cfg.MLT, func() {
		if _, open := r.outstanding[id]; open {
			delete(r.outstanding, id)
			r.res.Abandoned++
			s.next()
		}
	})
}

// complete records an operation's outcome and issues the next one.
func (s *chaosSession) complete(comp proto.Completion) {
	r := s.r
	now := r.c.eng.Now()
	switch comp.Status {
	case proto.NotOperational:
		// Rejected before any protocol action: provably no effect.
		r.hist.Discard(comp.OpID)
		r.res.Rejected++
		s.remaining++ // retry does not consume the op budget
		r.c.eng.After(time.Millisecond, s.next)
		return
	case proto.Aborted:
		// Hermes guarantees aborted RMWs never applied.
		r.hist.Discard(comp.OpID)
		r.res.Aborts++
	case proto.CASFailed:
		r.hist.Return(comp.OpID, linear.KCASFail, comp.Value, now)
		r.res.Ops++
		r.res.RMWs++
	default:
		switch comp.Kind {
		case proto.OpRead:
			r.hist.Return(comp.OpID, linear.KRead, comp.Value, now)
			r.res.Reads++
		case proto.OpWrite:
			r.hist.Return(comp.OpID, linear.KWrite, nil, now)
			r.res.Writes++
		case proto.OpFAA:
			r.hist.Return(comp.OpID, linear.KFAA, comp.Value, now)
			r.res.RMWs++
		case proto.OpCAS:
			r.hist.Return(comp.OpID, linear.KCASOk, nil, now)
			r.res.RMWs++
		}
		r.res.Ops++
	}
	// Think time: stretches the workload across the fault schedule and keeps
	// per-key concurrency within what the Wing–Gong search handles happily.
	r.c.eng.After(time.Duration(50+s.rng.Intn(250))*time.Microsecond, s.next)
}

// --- epilogue ---

// finalReads issues one read per key at every serving member, one node
// round at a time, and requires every read to complete: Invalid keys must be
// driven Valid by the replay machinery, so this is an availability check as
// much as a convergence check.
func (r *chaosRun) finalReads(horizon time.Duration) error {
	var servers []proto.NodeID
	for _, m := range r.view.Members {
		if r.alive[m] && r.leased[m] {
			servers = append(servers, m)
		}
	}
	for _, node := range servers {
		open := r.cfg.Keys
		for k := 0; k < r.cfg.Keys; k++ {
			r.idSeq++
			id := r.idSeq
			key := proto.Key(k)
			r.hist.Invoke(id, key, linear.KRead, nil, nil, r.c.eng.Now())
			r.c.Submit(node, proto.ClientOp{ID: id, Kind: proto.OpRead, Key: key}, func(comp proto.Completion) {
				r.hist.Return(comp.OpID, linear.KRead, comp.Value, r.c.eng.Now())
				open--
			})
		}
		deadline := r.c.eng.Now() + 500*time.Millisecond
		for open > 0 && r.c.eng.Now() < deadline {
			r.c.eng.RunUntil(r.c.eng.Now() + time.Millisecond)
		}
		if open > 0 {
			return fmt.Errorf("final reads: %d of %d keys never became readable at node %d (replay with seed %d)",
				open, r.cfg.Keys, node, r.cfg.Seed)
		}
	}
	return nil
}

func (r *chaosRun) collectMetrics() {
	for n := 0; n < r.cfg.Nodes; n++ {
		rep, ok := r.c.Replica(proto.NodeID(n)).(*ShardedReplica)
		if !ok || !r.alive[n] {
			continue
		}
		var epochs []uint32
		for i := 0; i < rep.Shards(); i++ {
			m := rep.Engine(i).Metrics()
			r.res.Replays += m.Replays
			r.res.Retransmits += m.Retransmits
			r.res.StaleEpochDrops += m.StaleEpochDrops
			epochs = append(epochs, rep.Engine(i).View().Epoch)
		}
		r.res.FinalEpochs = append(r.res.FinalEpochs, epochs)
	}
}

// without returns ns minus x (non-destructive).
func without(ns []proto.NodeID, x proto.NodeID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(ns))
	for _, n := range ns {
		if n != x {
			out = append(out, n)
		}
	}
	return out
}
