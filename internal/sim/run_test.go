package sim

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/workload"
)

func TestWarmupExcludedFromStats(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 64, WriteRatio: 0},
		SessionsPerNode: 1,
		Warmup:          2 * time.Millisecond,
		Duration:        time.Millisecond,
	})
	// At ~0.5µs per local read, 3 sessions complete far more ops in 3ms
	// than the 1ms window admits; warmup ops must not be counted.
	maxInWindow := uint64(3 * (time.Millisecond / (500 * time.Nanosecond)))
	if res.Ops == 0 || res.Ops > maxInWindow {
		t.Fatalf("ops=%d exceeds the measured window's capacity %d", res.Ops, maxInWindow)
	}
}

func TestSessionsGetUniqueOpIDs(t *testing.T) {
	// Regression: sessions on one node must not share completion slots
	// (generator IDs restart at 1 per session). With S sessions per node,
	// throughput must scale with S until CPU-bound — it cannot if sessions
	// clobber each other's callbacks and starve.
	run := func(sessions int) float64 {
		c := newTestCluster(t, 3)
		res := c.RunWorkload(WorkloadParams{
			Workload:        workload.Config{Keys: 4096, WriteRatio: 1, ValueSize: 8},
			SessionsPerNode: sessions,
			Warmup:          500 * time.Microsecond,
			Duration:        3 * time.Millisecond,
		})
		return res.Throughput
	}
	t1, t4 := run(1), run(4)
	if t4 < 2*t1 {
		t.Fatalf("4 sessions (%.0f) not ~4x 1 session (%.0f): sessions starving", t4, t1)
	}
}

func TestSeriesCoversWholeRunIncludingWarmup(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 64, WriteRatio: 0.1},
		SessionsPerNode: 2,
		Warmup:          2 * time.Millisecond,
		Duration:        3 * time.Millisecond,
		SeriesBucket:    time.Millisecond,
	})
	b := res.Series.Buckets()
	if len(b) < 5 {
		t.Fatalf("series has %d buckets, want >=5 (warmup+duration)", len(b))
	}
	if b[0] == 0 {
		t.Fatal("warmup activity missing from series")
	}
}

func TestDefaultSessionCountApplied(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload: workload.Config{Keys: 64, WriteRatio: 0},
		Duration: time.Millisecond,
	})
	if res.Ops == 0 {
		t.Fatal("default sessions did not run")
	}
}

func TestResultHistogramsSeparateKinds(t *testing.T) {
	c := newTestCluster(t, 3)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 64, WriteRatio: 0.3},
		SessionsPerNode: 2,
		Duration:        2 * time.Millisecond,
	})
	if res.Read.Count()+res.Write.Count() != res.All.Count() {
		t.Fatalf("histogram split broken: %d + %d != %d",
			res.Read.Count(), res.Write.Count(), res.All.Count())
	}
}

func TestCrashedNodeSessionsStop(t *testing.T) {
	c := newTestCluster(t, 3)
	c.CrashAt(2, time.Millisecond)
	res := c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 64, WriteRatio: 0},
		SessionsPerNode: 1,
		Duration:        4 * time.Millisecond,
		SeriesBucket:    time.Millisecond,
	})
	_ = res
	if !c.Crashed(2) {
		t.Fatal("crash did not fire")
	}
	// Submitting at the crashed node is a silent no-op.
	c.Submit(2, proto.ClientOp{ID: 1, Kind: proto.OpRead, Key: 1}, func(proto.Completion) {
		t.Fatal("completion from a crashed node")
	})
	c.Engine().RunUntil(c.Engine().Now() + time.Millisecond)
}
