package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func runCoalescePoint(t *testing.T, window time.Duration) Result {
	t.Helper()
	cfg := Config{
		Nodes:    3,
		Factory:  hermesFactory(500 * time.Microsecond),
		Net:      DefaultNet(),
		Seed:     3,
		Workers:  4,
		WorkerOf: func(msg any) int { return 0 }, // worker routing irrelevant here
	}
	if window > 0 {
		cfg.CoalesceWindow = window
		cfg.Coalescable = core.Coalescable
	}
	c := New(cfg)
	return c.RunWorkload(WorkloadParams{
		Workload:        workload.Config{Keys: 512, WriteRatio: 1.0, ValueSize: 32},
		SessionsPerNode: 16,
		Warmup:          200 * time.Microsecond,
		Duration:        4 * time.Millisecond,
	})
}

// TestCoalescingCutsFramesNotMessages checks the simulator's model of the
// coalescing layer: the protocol exchanges the same messages either way
// (msgs/op invariant), but with coalescing on, several ACKs/VALs to one
// peer share a frame, so frames come out measurably below messages.
func TestCoalescingCutsFramesNotMessages(t *testing.T) {
	off := runCoalescePoint(t, 0)
	on := runCoalescePoint(t, time.Microsecond)

	if off.Ops == 0 || on.Ops == 0 {
		t.Fatalf("ops: off=%d on=%d", off.Ops, on.Ops)
	}
	if off.FramesSent != off.MsgsSent {
		t.Fatalf("without coalescing frames (%d) must equal messages (%d)",
			off.FramesSent, off.MsgsSent)
	}
	if on.FramesSent >= on.MsgsSent {
		t.Fatalf("with coalescing frames (%d) should be below messages (%d)",
			on.FramesSent, on.MsgsSent)
	}
	offRate := float64(off.FramesSent) / float64(off.Ops)
	onRate := float64(on.FramesSent) / float64(on.Ops)
	if onRate >= offRate*0.9 {
		t.Fatalf("coalescing saved too little: %.2f frames/op vs %.2f baseline", onRate, offRate)
	}
	// The messages the protocol needs per op do not change materially.
	offMsgs := float64(off.MsgsSent) / float64(off.Ops)
	onMsgs := float64(on.MsgsSent) / float64(on.Ops)
	if onMsgs > offMsgs*1.2 || onMsgs < offMsgs*0.8 {
		t.Fatalf("msgs/op moved with coalescing: %.2f vs %.2f", onMsgs, offMsgs)
	}
}
