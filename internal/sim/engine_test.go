package sim

import (
	"testing"
	"time"

	"repro/internal/proto"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Microsecond, func() { order = append(order, 3) })
	e.At(10*time.Microsecond, func() { order = append(order, 1) })
	e.At(20*time.Microsecond, func() { order = append(order, 2) })
	if n := e.RunUntil(time.Millisecond); n != 3 {
		t.Fatalf("executed %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order=%v", order)
	}
	if e.Now() != time.Millisecond {
		t.Fatalf("clock=%v want advanced to deadline", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*time.Microsecond, func() { order = append(order, i) })
	}
	e.RunUntil(time.Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	var recur func()
	recur = func() {
		hits++
		if hits < 5 {
			e.After(10*time.Microsecond, recur)
		}
	}
	e.After(0, recur)
	e.RunUntil(time.Millisecond)
	if hits != 5 {
		t.Fatalf("hits=%d", hits)
	}
	if e.Pending() != 0 {
		t.Fatal("events left over")
	}
}

func TestEngineRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(2*time.Millisecond, func() { ran = true })
	e.RunUntil(time.Millisecond)
	if ran {
		t.Fatal("future event executed early")
	}
	if e.Pending() != 1 {
		t.Fatal("event lost")
	}
	e.RunUntil(3 * time.Millisecond)
	if !ran {
		t.Fatal("event never ran")
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Millisecond)
	ran := false
	e.At(0, func() { ran = true }) // in the past: runs "now"
	e.RunUntil(2 * time.Millisecond)
	if !ran {
		t.Fatal("clamped event dropped")
	}
}

func TestNetworkDeliversWithLatency(t *testing.T) {
	e := NewEngine()
	var deliveredAt time.Duration
	n := NewNetwork(NetConfig{BaseLatency: 5 * time.Microsecond}, e, 1,
		func(to, from proto.NodeID, msg any, bytes int) { deliveredAt = e.Now() })
	n.Send(0, 1, "m", 10)
	e.RunUntil(time.Millisecond)
	if deliveredAt != 5*time.Microsecond {
		t.Fatalf("delivered at %v", deliveredAt)
	}
	if n.Sent != 1 {
		t.Fatalf("sent=%d", n.Sent)
	}
}

func TestNetworkLossAndDuplication(t *testing.T) {
	e := NewEngine()
	got := 0
	n := NewNetwork(NetConfig{BaseLatency: time.Microsecond, LossProb: 0.5}, e, 7,
		func(to, from proto.NodeID, msg any, bytes int) { got++ })
	for i := 0; i < 1000; i++ {
		n.Send(0, 1, i, 0)
	}
	e.RunUntil(time.Second)
	if got < 350 || got > 650 {
		t.Fatalf("with 50%% loss, delivered %d/1000", got)
	}
	if n.Dropped == 0 {
		t.Fatal("no drops counted")
	}

	e2 := NewEngine()
	got2 := 0
	n2 := NewNetwork(NetConfig{BaseLatency: time.Microsecond, DupProb: 1}, e2, 7,
		func(to, from proto.NodeID, msg any, bytes int) { got2++ })
	n2.Send(0, 1, "x", 0)
	e2.RunUntil(time.Second)
	if got2 != 2 {
		t.Fatalf("dup delivered %d copies", got2)
	}
}

func TestNetworkPartition(t *testing.T) {
	e := NewEngine()
	got := 0
	n := NewNetwork(NetConfig{BaseLatency: time.Microsecond}, e, 1,
		func(to, from proto.NodeID, msg any, bytes int) { got++ })
	n.SetPartition(func(a, b proto.NodeID) bool { return (a == 0) != (b == 0) })
	n.Send(0, 1, "blocked", 0)
	n.Send(1, 2, "ok", 0)
	e.RunUntil(time.Millisecond)
	if got != 1 {
		t.Fatalf("delivered %d, want only the intra-partition message", got)
	}
	n.SetPartition(nil)
	n.Send(0, 1, "healed", 0)
	e.RunUntil(2 * time.Millisecond)
	if got != 2 {
		t.Fatal("healed partition still blocks")
	}
}

func TestNetworkPerByteDelay(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	n := NewNetwork(NetConfig{BaseLatency: time.Microsecond, PerByte: time.Nanosecond}, e, 1,
		func(to, from proto.NodeID, msg any, bytes int) { at = e.Now() })
	n.Send(0, 1, "m", 1000)
	e.RunUntil(time.Millisecond)
	if at != 2*time.Microsecond {
		t.Fatalf("1KB at 1ns/B should add 1µs: delivered at %v", at)
	}
}

func TestNetworkJitterReorders(t *testing.T) {
	e := NewEngine()
	var got []int
	n := NewNetwork(NetConfig{BaseLatency: time.Microsecond, Jitter: 10 * time.Microsecond}, e, 42,
		func(to, from proto.NodeID, msg any, bytes int) { got = append(got, msg.(int)) })
	for i := 0; i < 50; i++ {
		n.Send(0, 1, i, 0)
	}
	e.RunUntil(time.Second)
	if len(got) != 50 {
		t.Fatalf("delivered %d", len(got))
	}
	reordered := false
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			reordered = true
		}
	}
	if !reordered {
		t.Fatal("jitter produced no reordering in 50 sends")
	}
}
