package sim

import (
	"math/rand"
	"time"

	"repro/internal/proto"
)

// NetConfig models an intra-datacenter fabric. Defaults approximate the
// paper's InfiniBand testbed shape: microsecond-scale base latency with
// exponential jitter. Loss, duplication and reordering (via jitter) model
// the "imperfect links" of §3.4; Partitioned models link failures.
type NetConfig struct {
	// BaseLatency is the one-way propagation+switching delay.
	BaseLatency time.Duration
	// Jitter is the mean of an exponential delay added per message; it also
	// produces natural reordering.
	Jitter time.Duration
	// LossProb drops a message; DupProb delivers it twice.
	LossProb, DupProb float64
	// PerByte adds serialization delay per payload byte (object-size
	// sensitivity, Fig. 8). Zero disables.
	PerByte time.Duration
	// ReorderProb holds a message back an extra ReorderDelay so messages
	// sent after it overtake it in flight — burst reordering well beyond
	// what jitter produces. Held messages are counted in Reordered.
	ReorderProb float64
	// ReorderDelay is the extra hold applied to a reordered message.
	// Zero defaults to 8x BaseLatency (enough to be overtaken by a full
	// protocol round trip).
	ReorderDelay time.Duration
}

// DefaultNet mirrors a low-latency RDMA-class fabric.
func DefaultNet() NetConfig {
	return NetConfig{BaseLatency: 2 * time.Microsecond, Jitter: 500 * time.Nanosecond}
}

// linkKey is a directed link a->b; asymmetric cuts block one direction only.
type linkKey struct{ from, to proto.NodeID }

// Network delivers messages between hosts under NetConfig.
type Network struct {
	cfg NetConfig
	eng *Engine
	rng *rand.Rand
	// blocked reports whether traffic a->b is cut (partition). Nil = never.
	blocked func(a, b proto.NodeID) bool
	// cut holds directed link cuts installed by SetLinkBlocked; unlike the
	// blocked predicate these are mutated incrementally, so a chaos schedule
	// can open A->B while B->A stays clean (gray asymmetric partition).
	cut map[linkKey]struct{}
	// slow holds per-node latency multipliers (slow-but-alive nodes). A
	// message is stretched by the largest factor among its two endpoints.
	slow    map[proto.NodeID]float64
	deliver func(to proto.NodeID, from proto.NodeID, msg any, bytes int)

	// Counters for bandwidth accounting. Sent counts wire frames (a
	// coalesced frame is one); Msgs counts protocol messages, so with
	// coalescing enabled Msgs ≥ Sent and their ratio is the mean batch size.
	// Reordered counts messages held back by ReorderProb.
	Sent, Msgs, Dropped, Duplicated, Reordered uint64
}

// NewNetwork builds a network; deliver is invoked at arrival time.
func NewNetwork(cfg NetConfig, eng *Engine, seed int64,
	deliver func(to, from proto.NodeID, msg any, bytes int)) *Network {
	return &Network{cfg: cfg, eng: eng, rng: rand.New(rand.NewSource(seed)), deliver: deliver}
}

// SetPartition installs (or clears, with nil) the partition predicate.
func (n *Network) SetPartition(blocked func(a, b proto.NodeID) bool) { n.blocked = blocked }

// SetLinkBlocked cuts (or heals) the directed link from->to. The reverse
// direction is untouched, so a one-way cut leaves from able to hear to while
// to never hears from — the asymmetric partitions that defeat naive
// heartbeat-based failure detectors.
func (n *Network) SetLinkBlocked(from, to proto.NodeID, blocked bool) {
	if blocked {
		if n.cut == nil {
			n.cut = make(map[linkKey]struct{})
		}
		n.cut[linkKey{from, to}] = struct{}{}
		return
	}
	delete(n.cut, linkKey{from, to})
}

// SetNodeSlow installs a latency multiplier on every message to or from id
// (slow-but-alive: the node answers, just late). factor <= 1 clears it.
func (n *Network) SetNodeSlow(id proto.NodeID, factor float64) {
	if factor <= 1 {
		delete(n.slow, id)
		return
	}
	if n.slow == nil {
		n.slow = make(map[proto.NodeID]float64)
	}
	n.slow[id] = factor
}

// Send queues msg for delivery from a to b; bytes scales serialization
// delay for large objects.
func (n *Network) Send(from, to proto.NodeID, msg any, bytes int) {
	n.Sent++
	if cf, ok := msg.(coalescedFrame); ok {
		n.Msgs += uint64(len(cf.msgs))
	} else {
		n.Msgs++
	}
	if n.blocked != nil && n.blocked(from, to) {
		n.Dropped++
		return
	}
	if _, cut := n.cut[linkKey{from, to}]; cut {
		n.Dropped++
		return
	}
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.Dropped++
		return
	}
	n.scheduleDelivery(from, to, msg, bytes)
	if n.cfg.DupProb > 0 && n.rng.Float64() < n.cfg.DupProb {
		n.Duplicated++
		n.scheduleDelivery(from, to, msg, bytes)
	}
}

func (n *Network) scheduleDelivery(from, to proto.NodeID, msg any, bytes int) {
	d := n.cfg.BaseLatency
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.ExpFloat64() * float64(n.cfg.Jitter))
	}
	if n.cfg.PerByte > 0 && bytes > 0 {
		d += time.Duration(bytes) * n.cfg.PerByte
	}
	if f := n.slowFactor(from, to); f > 1 {
		d = time.Duration(float64(d) * f)
	}
	if n.cfg.ReorderProb > 0 && n.rng.Float64() < n.cfg.ReorderProb {
		n.Reordered++
		hold := n.cfg.ReorderDelay
		if hold <= 0 {
			hold = 8 * n.cfg.BaseLatency
		}
		d += hold
	}
	n.eng.After(d, func() { n.deliver(to, from, msg, bytes) })
}

func (n *Network) slowFactor(from, to proto.NodeID) float64 {
	f := n.slow[from]
	if g := n.slow[to]; g > f {
		f = g
	}
	return f
}
