package sim

import (
	"math/rand"
	"time"

	"repro/internal/proto"
)

// NetConfig models an intra-datacenter fabric. Defaults approximate the
// paper's InfiniBand testbed shape: microsecond-scale base latency with
// exponential jitter. Loss, duplication and reordering (via jitter) model
// the "imperfect links" of §3.4; Partitioned models link failures.
type NetConfig struct {
	// BaseLatency is the one-way propagation+switching delay.
	BaseLatency time.Duration
	// Jitter is the mean of an exponential delay added per message; it also
	// produces natural reordering.
	Jitter time.Duration
	// LossProb drops a message; DupProb delivers it twice.
	LossProb, DupProb float64
	// PerByte adds serialization delay per payload byte (object-size
	// sensitivity, Fig. 8). Zero disables.
	PerByte time.Duration
}

// DefaultNet mirrors a low-latency RDMA-class fabric.
func DefaultNet() NetConfig {
	return NetConfig{BaseLatency: 2 * time.Microsecond, Jitter: 500 * time.Nanosecond}
}

// Network delivers messages between hosts under NetConfig.
type Network struct {
	cfg NetConfig
	eng *Engine
	rng *rand.Rand
	// blocked reports whether traffic a->b is cut (partition). Nil = never.
	blocked func(a, b proto.NodeID) bool
	deliver func(to proto.NodeID, from proto.NodeID, msg any, bytes int)

	// Counters for bandwidth accounting. Sent counts wire frames (a
	// coalesced frame is one); Msgs counts protocol messages, so with
	// coalescing enabled Msgs ≥ Sent and their ratio is the mean batch size.
	Sent, Msgs, Dropped, Duplicated uint64
}

// NewNetwork builds a network; deliver is invoked at arrival time.
func NewNetwork(cfg NetConfig, eng *Engine, seed int64,
	deliver func(to, from proto.NodeID, msg any, bytes int)) *Network {
	return &Network{cfg: cfg, eng: eng, rng: rand.New(rand.NewSource(seed)), deliver: deliver}
}

// SetPartition installs (or clears, with nil) the partition predicate.
func (n *Network) SetPartition(blocked func(a, b proto.NodeID) bool) { n.blocked = blocked }

// Send queues msg for delivery from a to b; bytes scales serialization
// delay for large objects.
func (n *Network) Send(from, to proto.NodeID, msg any, bytes int) {
	n.Sent++
	if cf, ok := msg.(coalescedFrame); ok {
		n.Msgs += uint64(len(cf.msgs))
	} else {
		n.Msgs++
	}
	if n.blocked != nil && n.blocked(from, to) {
		n.Dropped++
		return
	}
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.Dropped++
		return
	}
	n.scheduleDelivery(from, to, msg, bytes)
	if n.cfg.DupProb > 0 && n.rng.Float64() < n.cfg.DupProb {
		n.Duplicated++
		n.scheduleDelivery(from, to, msg, bytes)
	}
}

func (n *Network) scheduleDelivery(from, to proto.NodeID, msg any, bytes int) {
	d := n.cfg.BaseLatency
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.ExpFloat64() * float64(n.cfg.Jitter))
	}
	if n.cfg.PerByte > 0 && bytes > 0 {
		d += time.Duration(bytes) * n.cfg.PerByte
	}
	n.eng.After(d, func() { n.deliver(to, from, msg, bytes) })
}
