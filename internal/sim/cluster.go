package sim

import (
	"fmt"
	"time"

	"repro/internal/membership"
	"repro/internal/proto"
)

// Costs is the host CPU model: a host is a FIFO single server (the
// aggregate of the paper's worker threads on one machine); every handled
// client op and protocol message occupies it for the configured service
// time, so overload surfaces as queueing delay — which is exactly how the
// ZAB leader and the CRAQ tail become bottlenecks in the paper's evaluation.
type Costs struct {
	// ClientOp is the local service time of one client request (decode +
	// KVS access; §4.1).
	ClientOp time.Duration
	// Message is the service time of one incoming protocol message.
	Message time.Duration
	// PerByte adds CPU time per payload byte handled (large-object cost,
	// Fig. 8).
	PerByte time.Duration
}

// DefaultCosts gives a node roughly 2 Mops/s of local read capacity — a
// scaled-down stand-in for the testbed's ~197 Mops/s 20-thread nodes. All
// figures reproduce shapes, not absolute rates (see DESIGN.md §2).
func DefaultCosts() Costs {
	return Costs{ClientOp: 500 * time.Nanosecond, Message: 300 * time.Nanosecond}
}

// RMParams configures the reliable-membership agents. Nil RMParams in
// Config runs with a static membership (no heartbeat traffic), which is how
// the throughput/latency figures are measured; the failure experiment
// (Fig. 9) enables it.
type RMParams struct {
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	LeaseDur       time.Duration
}

// Factory builds one replica of the protocol under test.
type Factory func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica

// Config assembles a simulated cluster.
type Config struct {
	Nodes     int
	Factory   Factory
	Net       NetConfig
	Costs     Costs
	TickEvery time.Duration // protocol timer granularity (default 100µs)
	Seed      int64
	RM        *RMParams
	// SizeOf estimates a message's wire payload size for PerByte costs and
	// bandwidth accounting; nil uses a flat 64 B.
	SizeOf func(msg any) int
}

// Cluster is a simulated deployment: engine + network + hosts + sessions.
type Cluster struct {
	cfg   Config
	eng   *Engine
	net   *Network
	hosts []*host
	view  proto.View

	sessions map[proto.NodeID]map[uint64]func(proto.Completion)

	// ViewChanges counts installed m-updates across hosts.
	ViewChanges uint64
}

type host struct {
	c         *Cluster
	id        proto.NodeID
	rep       proto.Replica
	agent     *membership.Agent
	busyUntil time.Duration
	crashed   bool
	// Busy accumulates CPU time consumed, for utilization accounting.
	Busy time.Duration
}

// hostEnv adapts a host to proto.Env. Handlers execute at their CPU
// completion time, so sends and Now() observed by the protocol naturally
// reflect processing delay.
type hostEnv struct{ h *host }

func (e hostEnv) Now() time.Duration { return e.h.c.eng.Now() }

func (e hostEnv) Send(to proto.NodeID, msg any) {
	c := e.h.c
	c.net.Send(e.h.id, to, msg, c.sizeOf(msg))
}

func (e hostEnv) Complete(comp proto.Completion) {
	e.h.c.complete(e.h.id, comp)
}

// New builds the cluster. Node IDs are 0..Nodes-1, all members of epoch 1.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("sim: Config.Nodes must be positive")
	}
	if cfg.Factory == nil {
		panic("sim: Config.Factory is required")
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 100 * time.Microsecond
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	c := &Cluster{
		cfg:      cfg,
		eng:      NewEngine(),
		sessions: make(map[proto.NodeID]map[uint64]func(proto.Completion)),
	}
	c.net = NewNetwork(cfg.Net, c.eng, cfg.Seed^0x5eed, c.deliver)

	members := make([]proto.NodeID, cfg.Nodes)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	c.view = proto.View{Epoch: 1, Members: members}

	for _, id := range members {
		h := &host{c: c, id: id}
		env := hostEnv{h: h}
		h.rep = cfg.Factory(id, c.view, env)
		if cfg.RM != nil {
			h.agent = membership.New(membership.Config{
				ID: id, All: members, Initial: c.view, Env: env,
				HeartbeatEvery: cfg.RM.HeartbeatEvery,
				SuspectAfter:   cfg.RM.SuspectAfter,
				LeaseDur:       cfg.RM.LeaseDur,
				OnView: func(v proto.View) {
					c.ViewChanges++
					h.rep.OnViewChange(v)
				},
				OnLease: func(ok bool) {
					if la, is := h.rep.(interface{ SetOperational(bool) }); is {
						la.SetOperational(ok)
					}
				},
			})
		}
		c.hosts = append(c.hosts, h)
		c.sessions[id] = make(map[uint64]func(proto.Completion))
	}
	// Timer loop per host.
	for _, h := range c.hosts {
		h := h
		var tick func()
		tick = func() {
			if !h.crashed {
				h.rep.Tick()
				if h.agent != nil {
					h.agent.Tick()
				}
			}
			c.eng.After(cfg.TickEvery, tick)
		}
		c.eng.After(cfg.TickEvery, tick)
	}
	return c
}

// Engine exposes the virtual clock (tests and the bench harness use it).
func (c *Cluster) Engine() *Engine { return c.eng }

// Network exposes the network for partitions and counters.
func (c *Cluster) Network() *Network { return c.net }

// Replica returns node id's protocol instance.
func (c *Cluster) Replica(id proto.NodeID) proto.Replica { return c.hosts[id].rep }

// View returns the initial static view.
func (c *Cluster) View() proto.View { return c.view }

func (c *Cluster) sizeOf(msg any) int {
	if c.cfg.SizeOf != nil {
		return c.cfg.SizeOf(msg)
	}
	return 64
}

// exec models the host CPU: fn runs after the host has had cost free CPU
// time, FIFO behind earlier work.
func (h *host) exec(cost time.Duration, fn func()) {
	start := h.c.eng.Now()
	if h.busyUntil > start {
		start = h.busyUntil
	}
	h.busyUntil = start + cost
	h.Busy += cost
	h.c.eng.At(h.busyUntil, func() {
		if !h.crashed {
			fn()
		}
	})
}

// deliver is the network's arrival callback.
func (c *Cluster) deliver(to, from proto.NodeID, msg any, bytes int) {
	h := c.hosts[to]
	if h.crashed {
		return
	}
	cost := c.cfg.Costs.Message + time.Duration(bytes)*c.cfg.Costs.PerByte
	h.exec(cost, func() {
		if membership.IsMsg(msg) {
			if h.agent != nil {
				h.agent.Deliver(from, msg)
			}
			return
		}
		h.rep.Deliver(from, msg)
	})
}

// Submit injects a client operation at node id; cb fires at completion.
func (c *Cluster) Submit(id proto.NodeID, op proto.ClientOp, cb func(proto.Completion)) {
	h := c.hosts[id]
	if h.crashed {
		return // client loses its server; the session ends
	}
	c.sessions[id][op.ID] = cb
	cost := c.cfg.Costs.ClientOp + time.Duration(len(op.Value))*c.cfg.Costs.PerByte
	h.exec(cost, func() { h.rep.Submit(op) })
}

func (c *Cluster) complete(id proto.NodeID, comp proto.Completion) {
	m := c.sessions[id]
	cb := m[comp.OpID]
	if cb == nil {
		return
	}
	delete(m, comp.OpID)
	cb(comp)
}

// CrashAt schedules a crash-stop failure of node id at virtual time t.
func (c *Cluster) CrashAt(id proto.NodeID, t time.Duration) {
	c.eng.At(t, func() { c.hosts[id].crashed = true })
}

// Crashed reports whether the node has crashed.
func (c *Cluster) Crashed(id proto.NodeID) bool { return c.hosts[id].crashed }

// InstallView force-installs a view at every live host (used when RM is
// disabled but a test still wants an m-update).
func (c *Cluster) InstallView(v proto.View) {
	for _, h := range c.hosts {
		if !h.crashed {
			h.rep.OnViewChange(v)
		}
	}
	c.view = v
}

// Utilization returns each host's CPU busy fraction over elapsed time.
func (c *Cluster) Utilization() []float64 {
	el := c.eng.Now()
	if el == 0 {
		return make([]float64, len(c.hosts))
	}
	out := make([]float64, len(c.hosts))
	for i, h := range c.hosts {
		out[i] = float64(h.Busy) / float64(el)
	}
	return out
}

func (c *Cluster) String() string {
	return fmt.Sprintf("sim.Cluster{nodes=%d, now=%v}", len(c.hosts), c.eng.Now())
}
