package sim

import (
	"fmt"
	"time"

	"repro/internal/membership"
	"repro/internal/proto"
)

// Costs is the host CPU model: a host is a FIFO single server (the
// aggregate of the paper's worker threads on one machine); every handled
// client op and protocol message occupies it for the configured service
// time, so overload surfaces as queueing delay — which is exactly how the
// ZAB leader and the CRAQ tail become bottlenecks in the paper's evaluation.
type Costs struct {
	// ClientOp is the local service time of one client request (decode +
	// KVS access; §4.1).
	ClientOp time.Duration
	// Message is the service time of one incoming protocol message.
	Message time.Duration
	// PerByte adds CPU time per payload byte handled (large-object cost,
	// Fig. 8).
	PerByte time.Duration
}

// DefaultCosts gives a node roughly 2 Mops/s of local read capacity — a
// scaled-down stand-in for the testbed's ~197 Mops/s 20-thread nodes. All
// figures reproduce shapes, not absolute rates (see DESIGN.md §2).
func DefaultCosts() Costs {
	return Costs{ClientOp: 500 * time.Nanosecond, Message: 300 * time.Nanosecond}
}

// RMParams configures the reliable-membership agents. Nil RMParams in
// Config runs with a static membership (no heartbeat traffic), which is how
// the throughput/latency figures are measured; the failure experiment
// (Fig. 9) enables it.
type RMParams struct {
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	LeaseDur       time.Duration
}

// Factory builds one replica of the protocol under test.
type Factory func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica

// Config assembles a simulated cluster.
type Config struct {
	Nodes     int
	Factory   Factory
	Net       NetConfig
	Costs     Costs
	TickEvery time.Duration // protocol timer granularity (default 100µs)
	Seed      int64
	RM        *RMParams
	// OnView, when set, intercepts the membership agents' decided views
	// instead of the default direct rep.OnViewChange fan-out: the hook owns
	// how (and whether) the view reaches the replica — e.g. the chaos
	// harness's staggered per-shard rollout. Only meaningful with RM set.
	OnView func(id proto.NodeID, v proto.View)
	// SizeOf estimates a message's wire payload size for PerByte costs and
	// bandwidth accounting; nil uses a flat 64 B.
	SizeOf func(msg any) int
	// Workers models per-node CPU parallelism: each host runs that many
	// independent FIFO servers instead of one, standing in for the paper's
	// multiple worker threads per node (§4.1), each owning a keyspace
	// shard. 0 or 1 keeps the classic single-server host.
	Workers int
	// WorkerOf routes work (protocol messages and proto.ClientOp values) to
	// a host worker; the result is taken modulo Workers. Nil sends
	// everything to worker 0 — with Workers > 1 that models a node whose
	// extra cores sit idle, so callers wanting parallelism must route by
	// key (see bench.ShardWorkerOf).
	WorkerOf func(msg any) int
	// CoalesceWindow models the live ShardedNode's cross-shard egress
	// coalescing: messages matching Coalescable that one host emits to the
	// same peer within the window ship as a single network frame (one
	// Network.Sent event, summed bytes), the way a coalesced ShardBatch is
	// one wire frame under one credit. Zero disables — every message is its
	// own frame, the pre-coalescing wire. The window stands in for the
	// "while the previous flush is in flight" gathering of the live path.
	CoalesceWindow time.Duration
	// Coalescable selects the messages eligible for coalescing (live: ACKs
	// and VALs). Nil with a nonzero window coalesces nothing. All eligible
	// messages to one peer share a frame here; the live coalescer
	// additionally keeps credit classes (ACKs vs VALs) in separate frames,
	// a distinction that only shows when VAL elision (O1) is off.
	Coalescable func(msg any) bool
}

// Cluster is a simulated deployment: engine + network + hosts + sessions.
type Cluster struct {
	cfg   Config
	eng   *Engine
	net   *Network
	hosts []*host
	view  proto.View

	sessions map[proto.NodeID]map[uint64]func(proto.Completion)

	// ViewChanges counts installed m-updates across hosts.
	ViewChanges uint64
}

type host struct {
	c     *Cluster
	id    proto.NodeID
	rep   proto.Replica
	agent *membership.Agent
	// busyUntil holds each worker's queue horizon; workers are independent
	// FIFO servers over the shared virtual clock.
	busyUntil []time.Duration
	crashed   bool
	// Busy accumulates CPU time consumed across all workers, for
	// utilization accounting; WorkerBusy breaks it out per worker.
	Busy       time.Duration
	WorkerBusy []time.Duration
	// egress buffers coalescable messages per destination until the
	// CoalesceWindow flush event ships them as one frame.
	egress map[proto.NodeID]*egressQueue
	// Clock skew: the time this host's protocol code observes is
	// skewAccum + (engineNow - skewBase) * skewRate. Rate 1 is nominal;
	// SetClockRate re-bases so perceived time stays continuous and (for
	// positive rates) monotonic. Skew survives Restart — it models the
	// hardware clock, not process state.
	skewRate            float64
	skewBase, skewAccum time.Duration
}

// egressQueue is one peer's pending coalesced messages.
type egressQueue struct {
	msgs  []any
	bytes int
}

// coalescedFrame is the simulator's stand-in for a wings tShardBatch: one
// network send event carrying several protocol messages. The receiving host
// charges CPU per inner message at that message's worker, as the live
// dispatcher fans a batch out to its owner shards.
type coalescedFrame struct {
	msgs []any
}

// hostEnv adapts a host to proto.Env. Handlers execute at their CPU
// completion time, so sends and Now() observed by the protocol naturally
// reflect processing delay.
type hostEnv struct{ h *host }

func (e hostEnv) Now() time.Duration { return e.h.now() }

// now is the host's skewed clock: everything the replica and membership
// agent derive from Env.Now (MLT retransmit deadlines, lease windows,
// heartbeat cadence) runs on this clock, while the network and engine keep
// true time — so a fast clock retransmits early enough to race originals and
// a slow clock strains the §8 loosely-synchronized-clock lease assumption.
func (h *host) now() time.Duration {
	now := h.c.eng.Now()
	if h.skewRate == 1 {
		return h.skewAccum + (now - h.skewBase)
	}
	return h.skewAccum + time.Duration(float64(now-h.skewBase)*h.skewRate)
}

// SetClockRate sets node id's clock rate (1.0 = nominal). The perceived
// clock is re-based at the current instant, so it never jumps backward when
// the rate changes.
func (c *Cluster) SetClockRate(id proto.NodeID, rate float64) {
	h := c.hosts[id]
	h.skewAccum = h.now()
	h.skewBase = c.eng.Now()
	h.skewRate = rate
}

func (e hostEnv) Send(to proto.NodeID, msg any) {
	c := e.h.c
	if c.cfg.CoalesceWindow > 0 && c.cfg.Coalescable != nil && c.cfg.Coalescable(msg) {
		e.h.enqueueCoalesced(to, msg)
		return
	}
	c.net.Send(e.h.id, to, msg, c.sizeOf(msg))
}

// enqueueCoalesced buffers msg for peer to; the first message of a buffer
// schedules the flush event one CoalesceWindow out.
func (h *host) enqueueCoalesced(to proto.NodeID, msg any) {
	q := h.egress[to]
	if q == nil {
		q = &egressQueue{}
		h.egress[to] = q
	}
	q.msgs = append(q.msgs, msg)
	q.bytes += h.c.sizeOf(msg)
	if len(q.msgs) == 1 {
		h.c.eng.After(h.c.cfg.CoalesceWindow, func() { h.flushEgress(to) })
	}
}

func (h *host) flushEgress(to proto.NodeID) {
	q := h.egress[to]
	if q == nil || len(q.msgs) == 0 {
		return
	}
	msgs, bytes := q.msgs, q.bytes
	q.msgs, q.bytes = nil, 0
	if h.crashed {
		return // a crash-stop host's buffered egress dies with it
	}
	if len(msgs) == 1 {
		// A lone message ships plain, as the live coalescer does.
		h.c.net.Send(h.id, to, msgs[0], bytes)
		return
	}
	// Envelope overhead: 2 B count plus a 2 B shard tag per entry.
	h.c.net.Send(h.id, to, coalescedFrame{msgs: msgs}, bytes+2+2*len(msgs))
}

func (e hostEnv) Complete(comp proto.Completion) {
	e.h.c.complete(e.h.id, comp)
}

// New builds the cluster. Node IDs are 0..Nodes-1, all members of epoch 1.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("sim: Config.Nodes must be positive")
	}
	if cfg.Factory == nil {
		panic("sim: Config.Factory is required")
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 100 * time.Microsecond
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	c := &Cluster{
		cfg:      cfg,
		eng:      NewEngine(),
		sessions: make(map[proto.NodeID]map[uint64]func(proto.Completion)),
	}
	c.net = NewNetwork(cfg.Net, c.eng, cfg.Seed^0x5eed, c.deliver)

	members := make([]proto.NodeID, cfg.Nodes)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	c.view = proto.View{Epoch: 1, Members: members}

	for _, id := range members {
		h := &host{c: c, id: id,
			busyUntil:  make([]time.Duration, cfg.Workers),
			WorkerBusy: make([]time.Duration, cfg.Workers),
			egress:     make(map[proto.NodeID]*egressQueue),
			skewRate:   1,
		}
		env := hostEnv{h: h}
		h.rep = cfg.Factory(id, c.view, env)
		if cfg.RM != nil {
			h.agent = c.newAgent(h, id, c.view)
		}
		c.hosts = append(c.hosts, h)
		c.sessions[id] = make(map[uint64]func(proto.Completion))
	}
	// Timer loop per host.
	for _, h := range c.hosts {
		h := h
		var tick func()
		tick = func() {
			if !h.crashed {
				h.rep.Tick()
				if h.agent != nil {
					h.agent.Tick()
				}
			}
			c.eng.After(cfg.TickEvery, tick)
		}
		c.eng.After(cfg.TickEvery, tick)
	}
	return c
}

// newAgent builds host h's reliable-membership agent, wired to the
// cluster's view/lease plumbing. The acceptor group is always the full
// configured node set; initial seeds the agent's committed view (a restarted
// node passes the possibly stale view it remembered).
func (c *Cluster) newAgent(h *host, id proto.NodeID, initial proto.View) *membership.Agent {
	return membership.New(membership.Config{
		ID: id, All: c.viewMembersAll(), Initial: initial, Env: hostEnv{h: h},
		HeartbeatEvery: c.cfg.RM.HeartbeatEvery,
		SuspectAfter:   c.cfg.RM.SuspectAfter,
		LeaseDur:       c.cfg.RM.LeaseDur,
		OnView: func(v proto.View) {
			c.ViewChanges++
			if c.cfg.OnView != nil {
				c.cfg.OnView(id, v)
				return
			}
			h.rep.OnViewChange(v)
		},
		OnLease: func(ok bool) {
			if la, is := h.rep.(interface{ SetOperational(bool) }); is {
				la.SetOperational(ok)
			}
		},
		// Epoch gossip rides the heartbeats when the replica has per-shard
		// epochs: the vector goes out with every beat, and a beat showing a
		// peer ahead routes to the replica's own debounced fast-forward
		// observer — self-healing through the membership plane.
		Epochs: func() []uint32 {
			if se, is := h.rep.(interface{ ShardEpochs() []uint32 }); is {
				return se.ShardEpochs()
			}
			return nil
		},
		OnPeerAhead: func(from proto.NodeID, epochs []uint32) {
			if ob, is := h.rep.(interface {
				ObserveEpochGossip(proto.NodeID, []uint32)
			}); is {
				ob.ObserveEpochGossip(from, epochs)
			}
		},
	})
}

// viewMembersAll returns the full configured node set 0..Nodes-1.
func (c *Cluster) viewMembersAll() []proto.NodeID {
	all := make([]proto.NodeID, c.cfg.Nodes)
	for i := range all {
		all[i] = proto.NodeID(i)
	}
	return all
}

// Agent returns node id's membership agent (nil when RM is disabled).
func (c *Cluster) Agent(id proto.NodeID) *membership.Agent { return c.hosts[id].agent }

// Engine exposes the virtual clock (tests and the bench harness use it).
func (c *Cluster) Engine() *Engine { return c.eng }

// Network exposes the network for partitions and counters.
func (c *Cluster) Network() *Network { return c.net }

// Replica returns node id's protocol instance.
func (c *Cluster) Replica(id proto.NodeID) proto.Replica { return c.hosts[id].rep }

// View returns the initial static view.
func (c *Cluster) View() proto.View { return c.view }

func (c *Cluster) sizeOf(msg any) int {
	if c.cfg.SizeOf != nil {
		return c.cfg.SizeOf(msg)
	}
	return 64
}

// workerOf picks the worker that will process msg: the configured router
// modulo the worker count, worker 0 otherwise.
func (c *Cluster) workerOf(msg any) int {
	if c.cfg.Workers <= 1 || c.cfg.WorkerOf == nil {
		return 0
	}
	w := c.cfg.WorkerOf(msg) % c.cfg.Workers
	if w < 0 {
		w += c.cfg.Workers
	}
	return w
}

// exec models one host worker's CPU: fn runs after worker w has had cost
// free CPU time, FIFO behind that worker's earlier work. Different workers
// of one host proceed in parallel virtual time — the multi-worker node
// model of §4.1.
func (h *host) exec(w int, cost time.Duration, fn func()) {
	start := h.c.eng.Now()
	if h.busyUntil[w] > start {
		start = h.busyUntil[w]
	}
	h.busyUntil[w] = start + cost
	h.Busy += cost
	h.WorkerBusy[w] += cost
	h.c.eng.At(h.busyUntil[w], func() {
		if !h.crashed {
			fn()
		}
	})
}

// deliver is the network's arrival callback. Coalesced frames fan out to
// one CPU charge per inner message, each at that message's worker — the
// counterpart of the live node dispatching a ShardBatch to its owner shards.
func (c *Cluster) deliver(to, from proto.NodeID, msg any, bytes int) {
	if cf, ok := msg.(coalescedFrame); ok {
		for _, m := range cf.msgs {
			c.deliverOne(to, from, m, c.sizeOf(m))
		}
		return
	}
	c.deliverOne(to, from, msg, bytes)
}

func (c *Cluster) deliverOne(to, from proto.NodeID, msg any, bytes int) {
	h := c.hosts[to]
	if h.crashed {
		return
	}
	cost := c.cfg.Costs.Message + time.Duration(bytes)*c.cfg.Costs.PerByte
	h.exec(c.workerOf(msg), cost, func() {
		if membership.IsMsg(msg) {
			if h.agent != nil {
				h.agent.Deliver(from, msg)
			}
			return
		}
		h.rep.Deliver(from, msg)
	})
}

// Submit injects a client operation at node id; cb fires at completion.
func (c *Cluster) Submit(id proto.NodeID, op proto.ClientOp, cb func(proto.Completion)) {
	h := c.hosts[id]
	if h.crashed {
		return // client loses its server; the session ends
	}
	c.sessions[id][op.ID] = cb
	cost := c.cfg.Costs.ClientOp + time.Duration(len(op.Value))*c.cfg.Costs.PerByte
	h.exec(c.workerOf(op), cost, func() { h.rep.Submit(op) })
}

func (c *Cluster) complete(id proto.NodeID, comp proto.Completion) {
	m := c.sessions[id]
	cb := m[comp.OpID]
	if cb == nil {
		return
	}
	delete(m, comp.OpID)
	cb(comp)
}

// CrashAt schedules a crash-stop failure of node id at virtual time t.
func (c *Cluster) CrashAt(id proto.NodeID, t time.Duration) {
	c.eng.At(t, func() { c.hosts[id].crashed = true })
}

// Crashed reports whether the node has crashed.
func (c *Cluster) Crashed(id proto.NodeID) bool { return c.hosts[id].crashed }

// Restart revives a crashed host with a fresh replica built by f — a process
// restart that lost all volatile state, the precondition of the §3.4
// rejoin-as-learner path. The host's timer loop resumes on the next tick;
// in-flight messages addressed to the dead incarnation deliver to the new
// one (the network cannot tell them apart), which is exactly why rejoining
// replicas start at the current epoch and filter stale traffic. No-op if the
// host is not crashed.
func (c *Cluster) Restart(id proto.NodeID, f Factory, view proto.View) {
	h := c.hosts[id]
	if !h.crashed {
		return
	}
	h.crashed = false
	for i := range h.busyUntil {
		h.busyUntil[i] = 0
	}
	h.egress = make(map[proto.NodeID]*egressQueue) // buffered egress died with the process
	h.rep = f(id, view, hostEnv{h: h})
	if c.cfg.RM != nil {
		// The agent's volatile state died with the process too; the rebuilt
		// one seeds from whatever view the restarting node remembered (view
		// may be stale — heartbeat epochs catch it up).
		h.agent = c.newAgent(h, id, view)
	}
}

// InstallView force-installs a view at every live host (used when RM is
// disabled but a test still wants an m-update).
func (c *Cluster) InstallView(v proto.View) {
	for _, h := range c.hosts {
		if !h.crashed {
			h.rep.OnViewChange(v)
		}
	}
	c.view = v
}

// Utilization returns each host's CPU busy fraction over elapsed time,
// normalized by the worker count (1.0 = all workers saturated).
func (c *Cluster) Utilization() []float64 {
	el := c.eng.Now()
	if el == 0 {
		return make([]float64, len(c.hosts))
	}
	out := make([]float64, len(c.hosts))
	for i, h := range c.hosts {
		out[i] = float64(h.Busy) / float64(el) / float64(c.cfg.Workers)
	}
	return out
}

// WorkerUtilization returns, per host, each worker's busy fraction —
// exposing shard load (im)balance.
func (c *Cluster) WorkerUtilization() [][]float64 {
	el := c.eng.Now()
	out := make([][]float64, len(c.hosts))
	for i, h := range c.hosts {
		out[i] = make([]float64, len(h.WorkerBusy))
		if el == 0 {
			continue
		}
		for w, b := range h.WorkerBusy {
			out[i][w] = float64(b) / float64(el)
		}
	}
	return out
}

func (c *Cluster) String() string {
	return fmt.Sprintf("sim.Cluster{nodes=%d, now=%v}", len(c.hosts), c.eng.Now())
}
