package sim

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// ShardedReplica is the simulator's counterpart of cluster.ShardedNode: one
// host running W independent core.Hermes engines, each owning the keyspace
// partition proto.ShardOf selects, with per-shard membership epochs. Where
// the live node gives every engine its own event-loop goroutine, the
// simulator is single-threaded — the engines are simply distinct state
// machines behind one Replica facade, and CPU parallelism (when wanted) is
// modeled separately by Config.Workers.
//
// The wire shape matches the live runtime exactly: outgoing messages wrap in
// proto.ShardMsg (elided at W=1), arriving tagged messages deliver only when
// the tag matches the local owner of the key they carry, and a proto.MUpdate
// installs on exactly the shards it addresses. That makes the chaos harness
// exercise the same routing and per-shard epoch filtering the live cluster
// ships.
type ShardedReplica struct {
	id      proto.NodeID
	w       int
	env     proto.Env
	engines []*core.Hermes

	// vlog is the bounded view log: every membership update this node has
	// seen (wire MUpdates, direct installs, node-wide views), in arrival
	// order with exact duplicates elided. A rejoining or lagging peer
	// replays its gap from here via proto.ViewLogReq — the fast-forward
	// path that replaced the chaos harness's out-of-band install backstop.
	vlog []proto.MUpdate

	// ffServed counts view-log entries served to peers; ffApplied counts
	// fetched entries whose replay actually advanced a local shard's epoch.
	ffServed, ffApplied uint64

	// Epoch-gossip self-healing state, the sim mirror of the live rollout
	// controller's observer: cfg.GossipEvery paces the announcements,
	// nextGossip/ffNotBefore are the send and debounce horizons, and
	// candPeer/candEpoch hold the best fast-forward candidate (newest peer
	// preferred) seen in the current debounce window.
	cfg         ShardedReplicaConfig
	nextGossip  time.Duration
	ffNotBefore time.Duration
	candPeer    proto.NodeID
	candEpoch   uint32
	haveCand    bool
	// gossipSent counts vectors announced; gossipBehind counts observations
	// showing a peer strictly ahead; gossipFF counts debounced fetches
	// actually issued (the self-healing trigger firing).
	gossipSent, gossipBehind, gossipFF uint64
}

// replicaViewLogCap bounds the retained log, mirroring membership.Agent's
// ring: reconfiguration is control-plane rare and a laggard further behind
// rejoins through the learner arc.
const replicaViewLogCap = 64

// ShardedReplicaConfig parameterizes NewShardedReplica. The embedded toggles
// mean what they do on core.Config.
type ShardedReplicaConfig struct {
	Shards                     int
	MLT                        time.Duration
	ElideVAL, EarlyACKs, NoLSC bool
	// Learner starts every engine as a shadow replica (§3.4 Recovery) — the
	// state a crashed node rejoins in.
	Learner bool
	// GossipEvery, when positive, announces this replica's per-shard epoch
	// vector (proto.EpochGossip) to the members and learners of its newest
	// known view on that period, from Tick — the sim counterpart of the live
	// controller's gossip loop. A receiver that observes itself behind
	// issues its own debounced view-log fetch: self-healing with no harness
	// backstop.
	GossipEvery time.Duration
	// FFDebounce rate-limits gossip-triggered fetches (default
	// 4 x GossipEvery).
	FFDebounce time.Duration
}

// shardReplicaEnv is one engine's window to the host env: it tags outgoing
// messages with the engine's shard index (unless W=1, which stays
// wire-identical to an unsharded replica).
type shardReplicaEnv struct {
	env proto.Env
	idx uint16
	w   int
}

func (e shardReplicaEnv) Now() time.Duration { return e.env.Now() }
func (e shardReplicaEnv) Send(to proto.NodeID, msg any) {
	if e.w == 1 {
		e.env.Send(to, msg)
		return
	}
	e.env.Send(to, proto.ShardMsg{Shard: e.idx, Msg: msg})
}
func (e shardReplicaEnv) Complete(c proto.Completion) { e.env.Complete(c) }

// NewShardedReplica builds a W-engine replica for host id on env.
func NewShardedReplica(id proto.NodeID, view proto.View, env proto.Env, cfg ShardedReplicaConfig) *ShardedReplica {
	w := cfg.Shards
	if w < 1 {
		w = 1
	}
	r := &ShardedReplica{id: id, w: w, env: env, cfg: cfg}
	for i := 0; i < w; i++ {
		r.engines = append(r.engines, core.New(core.Config{
			ID: id, View: view.Clone(),
			Env: shardReplicaEnv{env: env, idx: uint16(i), w: w},
			MLT: cfg.MLT, ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs,
			NoLSC: cfg.NoLSC, Learner: cfg.Learner,
		}))
	}
	return r
}

// ID implements proto.Replica.
func (r *ShardedReplica) ID() proto.NodeID { return r.id }

// Shards returns the worker count W.
func (r *ShardedReplica) Shards() int { return r.w }

// Engine exposes shard i's state machine (metrics, tests).
func (r *ShardedReplica) Engine(i int) *core.Hermes { return r.engines[i] }

// Submit implements proto.Replica: ops route to the engine owning the key.
func (r *ShardedReplica) Submit(op proto.ClientOp) {
	r.engines[proto.ShardOf(op.Key, r.w)].Submit(op)
}

// Deliver implements proto.Replica, mirroring cluster.ShardedNode.dispatch:
// batches fan out, tagged messages pass the tag-vs-owner check, m-updates
// install on the shards they address, untagged traffic routes by key.
func (r *ShardedReplica) Deliver(from proto.NodeID, msg any) {
	switch m := msg.(type) {
	case proto.ShardBatch:
		for _, sm := range m.Msgs {
			r.deliverTagged(from, sm)
		}
	case proto.ShardMsg:
		r.deliverTagged(from, m)
	case proto.MUpdate:
		r.RecordView(m)
		r.applyMUpdate(m)
	case proto.ViewLogReq:
		// A lagging peer's fast-forward fetch: answer with the retained
		// updates above its epoch that concern the shard it asks about.
		var ups []proto.MUpdate
		for _, mu := range r.vlog {
			if mu.View.Epoch > m.Since &&
				(m.Shard == proto.AllShards || mu.Shard == proto.AllShards || mu.Shard == m.Shard) {
				ups = append(ups, mu)
			}
		}
		r.ffServed += uint64(len(ups))
		r.env.Send(from, proto.ViewLogResp{Updates: ups})
	case proto.ViewLogResp:
		// Replay the fetched gap through the normal install path, counting
		// only entries that advance an epoch (redeliveries are idempotent).
		for _, mu := range m.Updates {
			if r.advances(mu) {
				r.ffApplied++
			}
			r.RecordView(mu)
			r.applyMUpdate(mu)
		}
	case proto.EpochGossip:
		r.ObserveEpochGossip(from, m.Epochs)
	default:
		r.engines[r.ownerOf(msg, 0)].Deliver(from, msg)
	}
}

// applyMUpdate installs a membership update on the shards it addresses.
func (r *ShardedReplica) applyMUpdate(m proto.MUpdate) {
	switch {
	case m.Shard == proto.AllShards:
		for _, e := range r.engines {
			e.OnViewChange(m.View)
		}
	case int(m.Shard) < r.w:
		r.engines[m.Shard].OnViewChange(m.View)
	}
}

// advances reports whether installing m would move some addressed shard's
// epoch forward.
func (r *ShardedReplica) advances(m proto.MUpdate) bool {
	switch {
	case m.Shard == proto.AllShards:
		for _, e := range r.engines {
			if e.View().Epoch < m.View.Epoch {
				return true
			}
		}
	case int(m.Shard) < r.w:
		return r.engines[m.Shard].View().Epoch < m.View.Epoch
	}
	return false
}

// RecordView retains a membership update in the replica's bounded view log
// (exact duplicates elided) without installing it. The chaos harness calls
// it on the deciding coordinator — the membership service durably knows its
// own decisions even when the wire loses the fan-out — and Deliver records
// every update that arrives, so any node that applied an epoch can serve it
// to a laggard.
func (r *ShardedReplica) RecordView(m proto.MUpdate) {
	for _, have := range r.vlog {
		if have.Shard == m.Shard && have.View.Epoch == m.View.Epoch {
			return
		}
	}
	r.vlog = append(r.vlog, proto.MUpdate{Shard: m.Shard, View: m.View.Clone()})
	if len(r.vlog) > replicaViewLogCap {
		r.vlog = append(r.vlog[:0:0], r.vlog[len(r.vlog)-replicaViewLogCap:]...)
	}
}

// FastForwardStats reports the view-log counters: entries served to peers
// and fetched entries that advanced a local epoch.
func (r *ShardedReplica) FastForwardStats() (served, applied uint64) {
	return r.ffServed, r.ffApplied
}

func (r *ShardedReplica) deliverTagged(from proto.NodeID, sm proto.ShardMsg) {
	if int(sm.Shard) < r.w && r.ownerOf(sm.Msg, sm.Shard) == sm.Shard {
		r.engines[sm.Shard].Deliver(from, sm.Msg)
	}
}

// ownerOf maps a message to the local shard owning it — key-carrying
// messages by hash, instance-scoped traffic keeps the default tag.
func (r *ShardedReplica) ownerOf(msg any, dflt uint16) uint16 {
	if r.w == 1 {
		return 0
	}
	switch m := msg.(type) {
	case core.INV:
		return proto.ShardOf(m.Key, r.w)
	case core.ACK:
		return proto.ShardOf(m.Key, r.w)
	case core.VAL:
		return proto.ShardOf(m.Key, r.w)
	}
	return dflt
}

// Tick implements proto.Replica.
func (r *ShardedReplica) Tick() {
	for _, e := range r.engines {
		e.Tick()
	}
	if r.cfg.GossipEvery > 0 {
		now := r.env.Now()
		if now >= r.nextGossip {
			r.nextGossip = now + r.cfg.GossipEvery
			r.gossip()
		}
	}
}

// gossip announces this replica's per-shard epoch vector to the members and
// learners of its newest known view (minus self) — the sim counterpart of
// the live controller's gossip loop. Gossip is node-level routing: it is
// sent bare, never shard-tagged.
func (r *ShardedReplica) gossip() {
	v := r.newestView()
	eg := proto.EpochGossip{Epochs: r.ShardEpochs()}
	for _, n := range v.Members {
		if n != r.id {
			r.gossipSent++
			r.env.Send(n, eg)
		}
	}
	for _, n := range v.Learners {
		if n != r.id {
			r.gossipSent++
			r.env.Send(n, eg)
		}
	}
}

// newestView returns the highest-epoch view among the engines — the best
// notion this node has of current membership (shards may differ mid-roll).
func (r *ShardedReplica) newestView() proto.View {
	best := r.engines[0].View()
	for _, e := range r.engines[1:] {
		if v := e.View(); v.Epoch > best.Epoch {
			best = v
		}
	}
	return best
}

// ObserveEpochGossip is the receive side of epoch gossip: if the peer's
// vector is strictly ahead of any local shard, the peer becomes a
// fast-forward candidate, and at most one view-log fetch fires per debounce
// window — at the candidate advertising the highest epoch seen within it
// (newest peer preferred). The same observer serves heartbeat-piggybacked
// vectors (membership.Config.OnPeerAhead) and wire gossip frames. Advisory
// only: the fetch's answer replays through the normal install path, so a
// lying vector can waste one request, never corrupt state.
func (r *ShardedReplica) ObserveEpochGossip(from proto.NodeID, epochs []uint32) {
	local := r.ShardEpochs()
	behind := false
	var peerMax, localMax uint32
	for _, e := range local {
		if e > localMax {
			localMax = e
		}
	}
	for i, e := range epochs {
		if e > peerMax {
			peerMax = e
		}
		if i < len(local) && e > local[i] {
			behind = true
		}
	}
	if peerMax > localMax {
		behind = true
	}
	if !behind {
		return
	}
	r.gossipBehind++
	if !r.haveCand || peerMax > r.candEpoch {
		r.candPeer, r.candEpoch, r.haveCand = from, peerMax, true
	}
	now := r.env.Now()
	if now < r.ffNotBefore {
		return
	}
	debounce := r.cfg.FFDebounce
	if debounce <= 0 {
		debounce = 4 * r.cfg.GossipEvery
	}
	if debounce <= 0 {
		debounce = 4 * time.Millisecond
	}
	r.ffNotBefore = now + debounce
	peer := r.candPeer
	r.haveCand, r.candEpoch = false, 0
	r.gossipFF++
	since := local[0]
	for _, e := range local {
		if e < since {
			since = e
		}
	}
	r.env.Send(peer, proto.ViewLogReq{Shard: proto.AllShards, Since: since})
}

// GossipStats reports the epoch-gossip counters: vectors announced, peer-
// ahead observations, and debounced fetches issued.
func (r *ShardedReplica) GossipStats() (sent, behind, ff uint64) {
	return r.gossipSent, r.gossipBehind, r.gossipFF
}

// SetNoLSC flips §8 clock-free read mode on every engine at runtime (the
// gate closes or reopens accordingly; queued speculative reads still drain).
func (r *ShardedReplica) SetNoLSC(on bool) {
	for _, e := range r.engines {
		e.SetNoLSC(on)
	}
}

// OnViewChange implements proto.Replica: the node-wide m-update fans out to
// every shard (what a membership agent's decision does). The view is also
// retained in the log so this node can serve laggards.
func (r *ShardedReplica) OnViewChange(v proto.View) {
	r.RecordView(proto.MUpdate{Shard: proto.AllShards, View: v})
	for _, e := range r.engines {
		e.OnViewChange(v)
	}
}

// InstallShard advances a single shard's membership epoch, leaving the other
// shards untouched — the localized reconfiguration the chaos harness storms.
func (r *ShardedReplica) InstallShard(shard int, v proto.View) {
	r.RecordView(proto.MUpdate{Shard: uint16(shard), View: v})
	r.engines[shard].OnViewChange(v)
}

// SetOperational flips the RM lease on every engine (lease loss is a
// node-level event).
func (r *ShardedReplica) SetOperational(ok bool) {
	for _, e := range r.engines {
		e.SetOperational(ok)
	}
}

// CaughtUp reports whether every learner engine finished state transfer.
func (r *ShardedReplica) CaughtUp() bool {
	for _, e := range r.engines {
		if !e.CaughtUp() {
			return false
		}
	}
	return true
}

// ShardEpochs reports each engine's current membership epoch; with per-shard
// installs they may legitimately differ.
func (r *ShardedReplica) ShardEpochs() []uint32 {
	out := make([]uint32, r.w)
	for i, e := range r.engines {
		out[i] = e.View().Epoch
	}
	return out
}
