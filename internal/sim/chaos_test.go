package sim

import (
	"testing"
	"time"
)

// The chaos regression suite: deterministic, seeded reconfiguration
// scenarios over the sharded engine, each checked against the Wing–Gong
// linearizability oracle by RunChaos itself. Every failure message from
// RunChaos embeds the seed, so a red run replays exactly.

// TestChaosCrashDuringReplay crashes a member while writes — and, under a
// lossy network, their replays — are in flight, reconfigures it out, rejoins
// it as a learner and promotes it. The counters assert the run actually
// exercised the §3.4 machinery it is named for.
func TestChaosCrashDuringReplay(t *testing.T) {
	seeds := chaosSeeds(t, 3)
	for _, seed := range seeds {
		cfg := ChaosConfig{
			Seed:        seed,
			CrashRejoin: true,
			// Lossier than the default so VAL loss strands keys Invalid and
			// the replay path fires around the crash.
			Net: NetConfig{
				BaseLatency: 2 * time.Microsecond,
				Jitter:      500 * time.Nanosecond,
				LossProb:    0.03,
				DupProb:     0.01,
			},
		}
		res, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Crashes != 1 || res.Restarts != 1 || res.Promotions != 1 {
			t.Fatalf("seed %d: crash/restart/promote = %d/%d/%d, want 1/1/1",
				seed, res.Crashes, res.Restarts, res.Promotions)
		}
		if res.Replays == 0 {
			t.Fatalf("seed %d: no write replays — the scenario never reached the machinery under test", seed)
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d: no operations completed", seed)
		}
	}
}

// TestChaosBackToBackViewChangesOneShard storms one shard with consecutive
// view installs under load and pins the localization property: the stormed
// shard's epoch races ahead on every node while every other shard's epoch
// never moves off the initial view.
func TestChaosBackToBackViewChangesOneShard(t *testing.T) {
	const hot = 2
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{
			Seed:        seed,
			ShardStorms: true,
			StormShard:  hot,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ShardInstalls < 6 {
			t.Fatalf("seed %d: only %d single-shard installs, want >=6 (two storms of >=3)",
				seed, res.ShardInstalls)
		}
		for n, epochs := range res.FinalEpochs {
			for s, e := range epochs {
				if s == hot && e < 2 {
					t.Fatalf("seed %d: node %d stormed shard epoch %d, want >=2", seed, n, e)
				}
				if s != hot && e != 1 {
					t.Fatalf("seed %d: node %d shard %d epoch %d, want 1 (untouched by the storm)",
						seed, n, s, e)
				}
			}
		}
		if res.StaleEpochDrops == 0 {
			t.Logf("seed %d: storms raced no in-flight traffic (drops=0) — legal but unambitious", seed)
		}
	}
}

// TestChaosLearnerCatchUpRacingReads runs the full rejoin arc while reader
// sessions keep hammering all keys: chunk-transfer catch-up races live
// reads and writes, and after promotion the ex-learner serves reads itself
// (the epilogue reads every key at every member, promoted node included).
func TestChaosLearnerCatchUpRacingReads(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{
			Seed:        seed,
			CrashRejoin: true,
			LeaseFlips:  true,
			// More keys → a real chunk-transfer payload racing more reads.
			Keys: 24,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Promotions != 1 {
			t.Fatalf("seed %d: %d promotions, want 1", seed, res.Promotions)
		}
		// The promoted node appears in FinalEpochs (it is alive) and must
		// have converged onto the final epoch on every shard.
		if len(res.FinalEpochs) != 3 {
			t.Fatalf("seed %d: %d live nodes at the end, want 3", seed, len(res.FinalEpochs))
		}
	}
}

// TestChaosKitchenSink turns every injection on at once across seeds — the
// harness as regression net rather than targeted scenario.
func TestChaosKitchenSink(t *testing.T) {
	for _, seed := range chaosSeeds(t, 4) {
		res, err := RunChaos(ChaosConfig{
			Seed:        seed,
			CrashRejoin: true,
			LeaseFlips:  true,
			ShardStorms: true,
			StormShard:  -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d: no operations completed", seed)
		}
	}
}

// TestChaosDeterministic pins the "replayable seed" contract: two runs of
// the same seed must produce byte-identical histories, epochs and counters.
// (This is what the protocol core's sorted meta iteration buys.)
func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Seed:        77,
		CrashRejoin: true,
		LeaseFlips:  true,
		ShardStorms: true,
		StormShard:  -1,
	}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same seed, different runs: fingerprints %x vs %x (ops %d vs %d, elapsed %v vs %v)",
			fa, fb, a.Ops, b.Ops, a.Elapsed, b.Elapsed)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("same seed, different virtual end times: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

// chaosSeeds trims the seed sweep in -short mode (CI runs the suite under
// -race, where a full sweep is needlessly slow).
func chaosSeeds(t *testing.T, n int) []int64 {
	t.Helper()
	if testing.Short() && n > 1 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}
