package sim

import (
	"fmt"
	"testing"
)

// Gray-failure scenarios: the fault vocabulary beyond fail-stop — one-way
// partitions, slow-but-alive nodes, clock-rate skew, burst reordering — plus
// the epoch-gossip self-healing loop and §8 NoLSC mode under all of it.
// Every run's full history goes through the Wing–Gong checker inside
// RunChaos; the assertions below are about coverage (did the schedule reach
// the machinery it names) and about the specific healing/gating claims.

// TestChaosAsymmetricPartition installs one-way link cuts under live load:
// A->B silently drops while B->A keeps delivering. The protocol's
// retransmissions must carry the run through, and every cut must heal.
func TestChaosAsymmetricPartition(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{Seed: seed, AsymPartitions: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.AsymParts != 2 || res.AsymHealed != 2 {
			t.Fatalf("seed %d: %d cuts, %d healed, want 2/2", seed, res.AsymParts, res.AsymHealed)
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d: no operations completed", seed)
		}
	}
}

// TestChaosSlowButAliveNode opens slow windows sized to straddle the MLT:
// the slowed node's traffic arrives after the sender has already
// retransmitted, so originals and retransmissions race in flight. The pin is
// that a slow-but-alive node never wedges anyone: sessions finish, the
// epilogue reads every key at every member, and the history linearizes —
// all enforced inside RunChaos.
func TestChaosSlowButAliveNode(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{Seed: seed, SlowNodes: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SlowWindows != 2 {
			t.Fatalf("seed %d: %d slow windows, want 2", seed, res.SlowWindows)
		}
		if res.Retransmits == 0 {
			t.Fatalf("seed %d: no retransmissions — the windows never straddled the MLT", seed)
		}
	}
}

// TestChaosClockSkew runs nodes' clocks at 0.25x–4x: MLT deadlines, tick
// cadence and lease arithmetic all skew while the wire keeps true time. A
// fast clock retransmits early (duplicates), a slow one late (stalls) — the
// protocol must absorb both without a safety violation.
func TestChaosClockSkew(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{Seed: seed, ClockSkew: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SkewEvents != 3 {
			t.Fatalf("seed %d: %d skew events, want 3", seed, res.SkewEvents)
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d: no operations completed", seed)
		}
	}
}

// TestChaosBurstReorder holds a seeded fraction of messages back long enough
// for later sends to overtake them — reordering far beyond jitter's adjacent
// swaps — and requires the run to have actually reordered something.
func TestChaosBurstReorder(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{Seed: seed, Reorder: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reordered == 0 {
			t.Fatalf("seed %d: no messages reordered", seed)
		}
	}
}

// TestChaosGossipSelfHealsRejoinBehind is the tentpole scenario: a node
// crashes, misses 3 extra epochs, and rejoins on its stale pre-crash view
// under an asymmetric partition — with the harness's lag-recovery backstop
// disabled. Convergence must come entirely from the replicas themselves:
// peers announce their epoch vectors, the laggard observes itself behind and
// issues its own view-log fetch. FastForwards == 0 proves no harness
// backdoor fired; GossipFF > 0 and FFApplied >= 3 prove gossip carried the
// recovery.
func TestChaosGossipSelfHealsRejoinBehind(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{
			Seed:              seed,
			CrashRejoin:       true,
			RejoinBehind:      3,
			AsymPartitions:    true,
			Gossip:            true,
			NoInstallBackstop: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FastForwards != 0 {
			t.Fatalf("seed %d: harness backstop issued %d fetches with NoInstallBackstop set", seed, res.FastForwards)
		}
		if res.GossipFF == 0 {
			t.Fatalf("seed %d: no gossip-triggered fetches — who healed the laggard?", seed)
		}
		if res.FFApplied < 3 {
			t.Fatalf("seed %d: only %d fetched view-log entries applied, want >=3 (the missed epochs)",
				seed, res.FFApplied)
		}
		if res.Promotions != 1 {
			t.Fatalf("seed %d: %d promotions, want 1", seed, res.Promotions)
		}
		// Every live node ended on the same per-shard epochs (awaitConvergence
		// enforces reaching the target; this pins uniformity).
		for n := 1; n < len(res.FinalEpochs); n++ {
			for s := range res.FinalEpochs[n] {
				if res.FinalEpochs[n][s] != res.FinalEpochs[0][s] {
					t.Fatalf("seed %d: final epochs diverge: node0=%v node%d=%v",
						seed, res.FinalEpochs[0], n, res.FinalEpochs[n])
				}
			}
		}
	}
}

// TestChaosNoLSCUnderSkew runs every engine in §8 clock-free mode while
// clocks skew and a node runs slow: reads execute speculatively and release
// only on a commit flush or an MCheck majority. The read-gate fast path must
// be structurally closed — zero hits across every probe — and the histories
// must still linearize (checked inside RunChaos).
func TestChaosNoLSCUnderSkew(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{
			Seed:      seed,
			NoLSC:     true,
			ClockSkew: true,
			SlowNodes: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FastProbes == 0 {
			t.Fatalf("seed %d: probe loop never ran", seed)
		}
		if res.FastHitsNoLSC != 0 {
			t.Fatalf("seed %d: %d fast-path hits under NoLSC, want exactly 0", seed, res.FastHitsNoLSC)
		}
		if res.GatesOpen != 0 {
			t.Fatalf("seed %d: %d read gates open at end of a NoLSC run, want 0", seed, res.GatesOpen)
		}
		if res.MChecks+res.SpecFlushed == 0 {
			t.Fatalf("seed %d: no speculative-read releases (MChecks=0, SpecFlushed=0) — §8 never engaged", seed)
		}
	}
}

// TestChaosLSCRestoreReopensGate flips the engines back from NoLSC to LSC
// mid-run: the queued speculative reads must drain, the read gates must
// reopen (probes start hitting again, and every gate is open at the end),
// and not a single probe may have slipped through while NoLSC held.
func TestChaosLSCRestoreReopensGate(t *testing.T) {
	for _, seed := range chaosSeeds(t, 3) {
		res, err := RunChaos(ChaosConfig{
			Seed:       seed,
			NoLSC:      true,
			RestoreLSC: true,
			ClockSkew:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FastHitsNoLSC != 0 {
			t.Fatalf("seed %d: %d fast-path hits before the restore, want 0", seed, res.FastHitsNoLSC)
		}
		if res.FastHitsRestored == 0 {
			t.Fatalf("seed %d: no fast-path hits after restoring LSC — the gate never reopened", seed)
		}
		if res.GatesOpen == 0 {
			t.Fatalf("seed %d: every read gate still shut at end of run after RestoreLSC", seed)
		}
	}
}

// TestChaosGrayDeterministic pins deterministic replay per fault type: for
// each gray-failure injection, two runs of the same seed must produce
// identical fingerprints (histories, final epochs, counters — including the
// new Reordered/GossipFF/FastHitsNoLSC/SkewEvents fields).
func TestChaosGrayDeterministic(t *testing.T) {
	cases := []struct {
		name string
		cfg  ChaosConfig
	}{
		{"asym", ChaosConfig{Seed: 101, AsymPartitions: true}},
		{"slow", ChaosConfig{Seed: 102, SlowNodes: true}},
		{"skew", ChaosConfig{Seed: 103, ClockSkew: true}},
		{"reorder", ChaosConfig{Seed: 104, Reorder: true}},
		{"nolsc", ChaosConfig{Seed: 105, NoLSC: true, RestoreLSC: true, ClockSkew: true}},
		{"gossip", ChaosConfig{Seed: 106, CrashRejoin: true, RejoinBehind: 3,
			AsymPartitions: true, Gossip: true, NoInstallBackstop: true}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := RunChaos(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunChaos(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
				t.Fatalf("same seed, different runs: fingerprints %x vs %x (ops %d vs %d)",
					fa, fb, a.Ops, b.Ops)
			}
		})
	}
}

// grayDiscoveryNet is the fabric the 300-seed discovery sweeps ran on: fast
// (2µs base) but noticeably lossy, duplicating and reordering — the regime
// that flushed out the two latent bugs pinned below. The pinned seeds replay
// the exact schedules that found them.
var grayDiscoveryNet = NetConfig{BaseLatency: 2000, Jitter: 500, LossProb: 0.05, DupProb: 0.02, ReorderProb: 0.05}

// TestChaosStaleAckIncarnation pins a latent bug the gray vocabulary flushed
// out (discovery sweep seed 76): a pending write had gathered an ACK from a
// node that then crashed, was removed, and rejoined — all within the
// pending's lifetime. The stale acked entry counted for the node's fresh
// incarnation, so the write committed without ever re-invalidating the
// restarted (empty) replica, and a later read there returned the old value.
// OnViewChange now resets every pending's gathered-ACK set so commit
// accounting restarts under the new membership; the linearizability check
// inside RunChaos is the assertion.
func TestChaosStaleAckIncarnation(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed: 76, OpsPerSession: 80, Net: grayDiscoveryNet,
		CrashRejoin: true, LeaseFlips: true, ShardStorms: true, StormShard: -1,
		AsymPartitions: true, SlowNodes: true, ClockSkew: true, Gossip: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatalf("schedule drift: the pinned run no longer restarts a node")
	}
}

// TestChaosTeachingACK pins the teaching-ACK shield (discovery sweep seed
// 205): an ACK-without-apply used to hide the acker's in-flight rival from
// the losing write's coordinator, which validated its own outranked copy at
// commit time and served it as an RMW base — the RMW minted above the rival
// and its read skipped the rival's later-committed value, a non-linearizable
// splice. The ACK now carries the outranking entry (core.ACK.Higher*) and
// the coordinator installs it instead of validating, so the RMW waits for
// the rival's chain like any other stalled request. Crucially the shield
// only *applies* the taught entry — the pending's own timestamp is never
// reissued, since its INV may already have committed via a §3.4 replay
// elsewhere (re-minting resurrected already-observed values in the sweep).
func TestChaosTeachingACK(t *testing.T) {
	var taught uint64
	for seed := int64(200); seed <= 214; seed++ {
		res, err := RunChaos(ChaosConfig{
			Seed: seed, OpsPerSession: 80, Net: grayDiscoveryNet,
			CrashRejoin: true, LeaseFlips: true, ShardStorms: true, StormShard: -1,
			AsymPartitions: true, SlowNodes: true, Gossip: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		taught += res.TaughtApplied
	}
	if taught == 0 {
		t.Fatalf("no teaching ACK was ever applied across the pinned seeds — the shield went dead")
	}
}

// TestChaosGraySweep is the CI gray-failure net: every gray injection on at
// once — one-way cuts, slow nodes, skewed clocks, burst reorder, epoch
// gossip, crash-rejoin-behind with the install backstop off — across a wide
// seed sweep. It runs the full sweep even in -short mode (CI runs exactly
// this under -race); the per-run workload is trimmed to keep it quick.
func TestChaosGraySweep(t *testing.T) {
	const sweep = 40
	for seed := int64(1); seed <= sweep; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunChaos(ChaosConfig{
				Seed:              seed,
				OpsPerSession:     60,
				CrashRejoin:       true,
				RejoinBehind:      2,
				AsymPartitions:    true,
				SlowNodes:         true,
				ClockSkew:         true,
				Reorder:           true,
				Gossip:            true,
				NoInstallBackstop: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatalf("seed %d: no operations completed", seed)
			}
			if res.FastForwards != 0 {
				t.Fatalf("seed %d: harness backstop fired %d times with NoInstallBackstop set",
					seed, res.FastForwards)
			}
		})
	}
}
