package sim

import (
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/workload"
)

// WorkloadParams drives a measured run: closed-loop sessions per node
// issuing a read/write mix, with a warmup excluded from statistics —
// mirroring the paper's methodology (§5.2, §6).
type WorkloadParams struct {
	Workload        workload.Config
	SessionsPerNode int
	Warmup          time.Duration
	Duration        time.Duration // measured window (after warmup)
	// SeriesBucket, when non-zero, records a throughput-over-time series
	// across the whole run including warmup (Fig. 9).
	SeriesBucket time.Duration
	// RetryAborts reissues aborted RMWs (clients typically retry a failed
	// lock acquisition).
	RetryAborts bool
	// Observer, when non-nil, sees every completion inside the measured
	// window — the hook per-shard throughput accounting uses (the
	// completion's Key identifies the owning shard).
	Observer func(comp proto.Completion)
	// Seed varies session RNGs between runs.
	Seed int64
}

// Result aggregates a run's measurements.
type Result struct {
	// Ops counts completions inside the measured window; Throughput is
	// ops/s of virtual time.
	Ops        uint64
	Throughput float64
	// Read and Write hold end-to-end latencies (RMWs count as writes).
	Read, Write *stats.Histogram
	// All merges both.
	All *stats.Histogram
	// Aborts counts aborted RMWs; NotOperational counts rejections by
	// lease-less replicas (both over the whole run).
	Aborts, NotOperational uint64
	// Series is the completion-rate series when requested.
	Series *stats.Series
	// MsgsSent is total protocol messages over the whole run; FramesSent is
	// wire frames. They differ only when egress coalescing is on (a
	// coalesced batch is one frame carrying several messages).
	MsgsSent, FramesSent uint64
}

type session struct {
	c       *Cluster
	node    proto.NodeID
	gen     *workload.Generator
	p       *WorkloadParams
	r       *runState
	idBase  uint64 // disambiguates op IDs between sessions on one node
	pending proto.ClientOp
	issued  time.Duration
}

type runState struct {
	res        Result
	start, end time.Duration // measured window bounds
}

// RunWorkload executes the workload and returns measurements. The cluster
// can be reused for further runs; the clock keeps advancing.
func (c *Cluster) RunWorkload(p WorkloadParams) Result {
	if p.SessionsPerNode <= 0 {
		p.SessionsPerNode = 4
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Millisecond
	}
	rs := &runState{
		start: c.eng.Now() + p.Warmup,
		end:   c.eng.Now() + p.Warmup + p.Duration,
	}
	rs.res.Read = stats.NewHistogram()
	rs.res.Write = stats.NewHistogram()
	rs.res.All = stats.NewHistogram()
	if p.SeriesBucket > 0 {
		rs.res.Series = stats.NewSeries(p.SeriesBucket)
	}
	sentBefore, msgsBefore := c.net.Sent, c.net.Msgs

	for _, h := range c.hosts {
		for s := 0; s < p.SessionsPerNode; s++ {
			sess := &session{
				c:      c,
				node:   h.id,
				gen:    workload.NewGenerator(p.Workload, p.Seed+int64(h.id)*1000+int64(s)),
				p:      &p,
				r:      rs,
				idBase: uint64(s+1) << 40, // session-unique ID space per node
			}
			sess.issueNext()
		}
	}

	c.eng.RunUntil(rs.end)
	elapsed := p.Duration.Seconds()
	rs.res.Throughput = float64(rs.res.Ops) / elapsed
	rs.res.FramesSent = c.net.Sent - sentBefore
	rs.res.MsgsSent = c.net.Msgs - msgsBefore
	return rs.res
}

func (s *session) issueNext() {
	s.pending = s.gen.Next()
	s.pending.ID += s.idBase
	s.issue(s.pending)
}

func (s *session) issue(op proto.ClientOp) {
	s.issued = s.c.eng.Now()
	s.c.Submit(s.node, op, s.onDone)
}

func (s *session) onDone(comp proto.Completion) {
	now := s.c.eng.Now()
	switch comp.Status {
	case proto.Aborted:
		s.r.res.Aborts++
		if s.p.RetryAborts {
			// Retry with a fresh op ID so the completion routes back here.
			op := s.pending
			op.ID += 1 << 48 // disjoint from generator IDs
			s.pending = op
			s.issue(op)
			return
		}
	case proto.NotOperational:
		s.r.res.NotOperational++
		// Back off and retry: the replica may regain its lease.
		s.c.eng.After(time.Millisecond, func() { s.issue(s.pending) })
		return
	case proto.OK, proto.CASFailed:
		// Completed operations fall through to latency recording below.
	}
	lat := now - s.issued
	if now >= s.r.start && now < s.r.end {
		if s.p.Observer != nil {
			s.p.Observer(comp)
		}
		s.r.res.Ops++
		s.r.res.All.Record(lat)
		if comp.Kind == proto.OpRead {
			s.r.res.Read.Record(lat)
		} else {
			s.r.res.Write.Record(lat)
		}
	}
	if s.r.res.Series != nil {
		s.r.res.Series.Add(now)
	}
	if now < s.r.end {
		s.issueNext()
	}
}
