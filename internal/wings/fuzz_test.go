package wings

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// The decoder must never panic on arbitrary bytes — a malformed or
// malicious frame yields an error, not a crash.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		_, _ = DecodeOne(buf) // must not panic
		for tp := uint8(0); tp < 12; tp++ {
			_, _ = decodeMsg(tp, buf, nil)
		}
	}
}

// Bit-flip corruption of valid frames must never panic either.
func TestDecodeSurvivesBitFlips(t *testing.T) {
	frames := validFrames(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		f := append([]byte(nil), frames[i%len(frames)]...)
		f[rng.Intn(len(f))] ^= 1 << uint(rng.Intn(8))
		_, _ = DecodeOne(f)
	}
}

// Serve must reject oversized or undersized frame headers rather than
// allocating absurd buffers.
func TestServeFrameLengthBounds(t *testing.T) {
	l := NewLink(bytes.NewBuffer(nil), LinkConfig{})
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1) // below the 2-byte count minimum
	if err := l.Serve(bytes.NewReader(hdr[:]), func(any) {}); err == nil {
		t.Fatal("undersized frame accepted")
	}
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	if err := l.Serve(bytes.NewReader(hdr[:]), func(any) {}); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func validFrames(t *testing.T) [][]byte {
	t.Helper()
	var out [][]byte
	for _, m := range sampleMessages() {
		f, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}
