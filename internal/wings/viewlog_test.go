package wings

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/proto"
)

// The view-log fetch pair crosses the wire between nodes that disagree
// about epochs by construction — that is the whole point of the fetch — so
// its codec gets the same hostile-input treatment as tMUpdate: round trips,
// lying counts, truncations, nesting rejection, bit flips.

func TestViewLogReqRoundTrips(t *testing.T) {
	msgs := []proto.ViewLogReq{
		{Shard: 0, Since: 0},
		{Shard: 3, Since: 42},
		{Shard: proto.AllShards, Since: ^uint32(0)},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestViewLogRespRoundTrips(t *testing.T) {
	msgs := []proto.ViewLogResp{
		// An empty log is a legal answer ("nothing newer than Since").
		{},
		{Updates: []proto.MUpdate{
			{Shard: 0, View: proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}}},
		}},
		// A realistic fast-forward gap: consecutive epochs, mixed scoping,
		// learners, extremes.
		{Updates: []proto.MUpdate{
			{Shard: 1, View: proto.View{Epoch: 3, Members: []proto.NodeID{0, 1}}},
			{Shard: proto.AllShards, View: proto.View{Epoch: 4,
				Members: []proto.NodeID{0, 1}, Learners: []proto.NodeID{2}}},
			{Shard: 0xFFFE, View: proto.View{Epoch: ^uint32(0),
				Members: []proto.NodeID{proto.NilNode}}},
		}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

// viewlogRespBody hand-builds a tViewLogResp payload with an arbitrary
// (possibly lying) update count over the given entry bytes.
func viewlogRespBody(count uint16, entries ...[]byte) []byte {
	b := binary.LittleEndian.AppendUint16(nil, count)
	for _, e := range entries {
		b = append(b, e...)
	}
	return b
}

// A hostile update count larger than the bytes present must fail without
// driving the preallocation; truncated entries surface as EOF.
func TestViewLogRespHostileCounts(t *testing.T) {
	entry := mupdateBody(5, 1, 1, []byte{0}, 0, nil)
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"count with no entries", viewlogRespBody(0xFFFF)},
		{"count beyond body", viewlogRespBody(8, entry)},
		{"truncated entry", viewlogRespBody(1, entry[:len(entry)-1])},
		{"truncated second entry", viewlogRespBody(2, entry, entry[:4])},
		{"empty body", nil},
		{"count only, one short", []byte{1}},
	} {
		if _, err := decodeMsg(tViewLogResp, tc.body, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("%s: err=%v, want unexpected EOF", tc.name, err)
		}
	}
	// A lying member count inside an otherwise well-framed entry.
	bad := viewlogRespBody(1, mupdateBody(5, 1, 0x7FFF, []byte{0}, 0, nil))
	if _, err := decodeMsg(tViewLogResp, bad, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lying inner member count: err=%v, want unexpected EOF", err)
	}
}

func TestViewLogReqTruncations(t *testing.T) {
	full := binary.LittleEndian.AppendUint16(nil, 2)
	full = binary.LittleEndian.AppendUint32(full, 7)
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeMsg(tViewLogReq, full[:cut], nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncated at %d: err=%v, want unexpected EOF", cut, err)
		}
	}
	if _, err := decodeMsg(tViewLogReq, full, nil); err != nil {
		t.Fatalf("full body: %v", err)
	}
}

// View-log traffic is node-level routing, like MUpdate: a shard envelope
// around either direction is always a corrupt or hostile stream.
func TestViewLogNeverNestsInShardEnvelopes(t *testing.T) {
	req := proto.ViewLogReq{Shard: 1, Since: 3}
	resp := proto.ViewLogResp{Updates: []proto.MUpdate{
		{Shard: 1, View: proto.View{Epoch: 4, Members: []proto.NodeID{0}}}}}
	for _, inner := range []any{req, resp} {
		if _, err := Encode(proto.ShardMsg{Shard: 1, Msg: inner}); err == nil {
			t.Fatalf("encoder accepted %T inside ShardMsg", inner)
		}
		if _, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{{Shard: 1, Msg: inner}}}); err == nil {
			t.Fatalf("encoder accepted %T inside ShardBatch", inner)
		}
		// Craft the bytes a conforming encoder refuses to produce.
		body, err := appendMsg(nil, inner)
		if err != nil {
			t.Fatal(err)
		}
		tagged := binary.LittleEndian.AppendUint16(nil, 1)
		tagged = append(tagged, body...)
		if _, err := decodeMsg(tShard, tagged, nil); !errors.Is(err, ErrUnknownType) {
			t.Fatalf("decoder on shard-tagged %T: err=%v, want ErrUnknownType", inner, err)
		}
	}
}

// Random bytes and bit-flipped valid frames must never panic, and a decoded
// result must never have been allocated from a hostile count.
func TestViewLogDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(96))
		rng.Read(buf)
		_, _ = decodeMsg(tViewLogReq, buf, nil)
		_, _ = decodeMsg(tViewLogResp, buf, nil)
	}
	valid, err := Encode(proto.ViewLogResp{Updates: []proto.MUpdate{
		{Shard: 0, View: proto.View{Epoch: 7, Members: []proto.NodeID{0, 1, 2}}},
		{Shard: 2, View: proto.View{Epoch: 8, Members: []proto.NodeID{0, 1, 2},
			Learners: []proto.NodeID{3}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		f := append([]byte(nil), valid...)
		f[rng.Intn(len(f))] ^= 1 << uint(rng.Intn(8))
		_, _ = DecodeOne(f)
	}
}

// The fetch round trip must survive the full framed link path among other
// traffic — the route a live fast-forward actually takes.
func TestViewLogOverLink(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender := NewLink(a, LinkConfig{})
	recv := NewLink(b, LinkConfig{})
	got := make(chan any, 2)
	go recv.Serve(b, func(m any) { got <- m })

	req := proto.ViewLogReq{Shard: proto.AllShards, Since: 3}
	resp := proto.ViewLogResp{Updates: []proto.MUpdate{
		{Shard: proto.AllShards, View: proto.View{Epoch: 4, Members: []proto.NodeID{0, 1}}},
		{Shard: proto.AllShards, View: proto.View{Epoch: 5, Members: []proto.NodeID{0, 1},
			Learners: []proto.NodeID{2}}},
	}}
	if err := sender.Send(req); err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(resp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []any{req, resp} {
		select {
		case m := <-got:
			if !reflect.DeepEqual(m, want) {
				t.Fatalf("received %+v, want %+v", m, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("view-log message never arrived over the link")
		}
	}
}
