package wings

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/proto"
)

// tEpochGossip arrives unsolicited from any mesh peer — the most exposed
// position a frame can be in — so it gets the full hostile-input treatment:
// round trips, lying counts, truncations, nesting rejection, bit flips.

func TestEpochGossipRoundTrips(t *testing.T) {
	msgs := []proto.EpochGossip{
		// An empty vector is legal (a node with no shards up yet).
		{},
		{Epochs: []uint32{1}},
		{Epochs: []uint32{4, 4, 7, 1}},
		{Epochs: []uint32{0, ^uint32(0), 1 << 30}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

// gossipBody hand-builds a tEpochGossip payload with an arbitrary (possibly
// lying) count over the given epoch words.
func gossipBody(count uint16, epochs ...uint32) []byte {
	b := binary.LittleEndian.AppendUint16(nil, count)
	for _, e := range epochs {
		b = binary.LittleEndian.AppendUint32(b, e)
	}
	return b
}

func TestEpochGossipHostileCounts(t *testing.T) {
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"count with no epochs", gossipBody(0xFFFF)},
		{"count beyond body", gossipBody(4, 1, 2)},
		{"truncated epoch", gossipBody(1, 7)[:5]},
		{"empty body", nil},
		{"count only, one short", []byte{1}},
	} {
		if _, err := decodeMsg(tEpochGossip, tc.body, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("%s: err=%v, want unexpected EOF", tc.name, err)
		}
	}
	if _, err := decodeMsg(tEpochGossip, gossipBody(2, 3, 9), nil); err != nil {
		t.Fatalf("well-formed body rejected: %v", err)
	}
}

// Epoch gossip is node-level routing, like MUpdate: a shard envelope around
// it is always a corrupt or hostile stream.
func TestEpochGossipNeverNestsInShardEnvelopes(t *testing.T) {
	inner := proto.EpochGossip{Epochs: []uint32{2, 2}}
	if _, err := Encode(proto.ShardMsg{Shard: 1, Msg: inner}); err == nil {
		t.Fatal("encoder accepted EpochGossip inside ShardMsg")
	}
	if _, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{{Shard: 1, Msg: inner}}}); err == nil {
		t.Fatal("encoder accepted EpochGossip inside ShardBatch")
	}
	// Craft the bytes a conforming encoder refuses to produce.
	body, err := appendMsg(nil, inner)
	if err != nil {
		t.Fatal(err)
	}
	tagged := binary.LittleEndian.AppendUint16(nil, 1)
	tagged = append(tagged, body...)
	if _, err := decodeMsg(tShard, tagged, nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("decoder on shard-tagged EpochGossip: err=%v, want ErrUnknownType", err)
	}
}

// Random bytes and bit-flipped valid frames must never panic, and a decoded
// result must never have been allocated from a hostile count.
func TestEpochGossipDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(60221023))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		_, _ = decodeMsg(tEpochGossip, buf, nil)
	}
	valid, err := Encode(proto.EpochGossip{Epochs: []uint32{5, 6, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		f := append([]byte(nil), valid...)
		f[rng.Intn(len(f))] ^= 1 << uint(rng.Intn(8))
		_, _ = DecodeOne(f)
	}
}
