package wings

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// TestPiggybackedCreditGrants pins the grant-deferral path deterministically:
// b's flusher is wedged on a write (nobody reads its end yet), so a grant
// falling due while the flush is in flight must ride the outbound queue
// instead of paying for a standalone credit frame — and must still reach the
// peer once the flusher drains.
func TestPiggybackedCreditGrants(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	a := NewLink(ca, LinkConfig{Credits: 4})
	b := NewLink(cb, LinkConfig{Credits: 4, ExplicitEvery: 1})
	defer a.Close()
	defer b.Close()

	recvB := make(chan any, 64)
	go b.Serve(cb, func(m any) { recvB <- m })

	// Wedge b's flusher: its write to cb blocks until ca is read, which
	// nothing does yet. FramesSent is bumped before the socket write, so
	// once it reads 1 the flush is provably in flight.
	if err := b.Send(core.VAL{Epoch: 1, Key: 100, TS: proto.TS{Version: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.Stats().FramesSent == 1 })

	// One-way traffic into b makes a grant fall due mid-flush: it must be
	// deferred onto the wedged flusher, not shipped standalone. recvB fires
	// after onReceive, so once it delivers, the deferral has happened.
	if err := a.Send(core.VAL{Epoch: 1, Key: 1, TS: proto.TS{Version: 1}}); err != nil {
		t.Fatal(err)
	}
	<-recvB
	// Queue a data message behind the wedge so the deferred grant has a
	// frame to ride when the flusher drains.
	if err := b.Send(core.VAL{Epoch: 1, Key: 101, TS: proto.TS{Version: 1}}); err != nil {
		t.Fatal(err)
	}

	// Unwedge: reading a's end lets b's flusher drain, which must now ship
	// the deferred grant with the queued VAL; a's window reopens and far
	// more one-way VALs than the 4-credit window complete.
	go a.Serve(ca, func(any) {})
	waitFor(t, func() bool { return b.Stats().PiggybackedGrants == 1 })
	const n = 12
	errCh := make(chan error, 1)
	go func() {
		for i := 2; i <= n; i++ {
			if err := a.Send(core.VAL{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for got := 1; got < n; {
		select {
		case <-recvB:
			got++
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("one-way traffic stalled at %d/%d (piggybacked grant lost?)", got, n)
		}
	}
	if st := b.Stats(); st.ExplicitCreditsSent < st.PiggybackedGrants {
		t.Fatalf("piggybacked grants (%d) not counted in ExplicitCreditsSent (%d)",
			st.PiggybackedGrants, st.ExplicitCreditsSent)
	}
}

// TestHugePendingBacklogSplitsFrames pins the frame-count bound: more
// messages than a frame's 2-byte count can carry may accumulate while a
// flush is wedged (responses are credit-exempt, so nothing backpressures
// them), and the backlog must ship as several frames rather than silently
// truncating the count to uint16 and losing the overflow.
func TestHugePendingBacklogSplitsFrames(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	isResponse := func(m any) bool { _, ok := m.(core.ACK); return ok }
	a := NewLink(ca, LinkConfig{Credits: 4, IsResponse: isResponse})
	b := NewLink(cb, LinkConfig{})
	defer a.Close()
	defer b.Close()

	// Wedge a's flusher (nobody reads its end), then queue more ACKs than
	// one frame can count.
	const n = maxFrameMsgs + 10
	if err := a.Send(core.ACK{Epoch: 1, Key: 0, TS: proto.TS{Version: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.Stats().FramesSent == 1 })
	for i := 1; i < n; i++ {
		if err := a.Send(core.ACK{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}); err != nil {
			t.Fatal(err)
		}
	}

	got := make(chan int)
	go func() {
		count := 0
		b.Serve(cb, func(m any) {
			if _, ok := m.(core.ACK); ok {
				count++
				if count == n {
					got <- count
				}
			}
		})
	}()
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		st := b.Stats()
		t.Fatalf("backlog lost: received %d of %d messages in %d frames",
			st.MsgsRecv, n, st.FramesRecv)
	}
	if st := a.Stats(); st.FramesSent < 3 {
		t.Fatalf("backlog shipped in %d frames, want >=3 (wedge + split)", st.FramesSent)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkServeFrames measures the receive path; -benchmem shows the
// effect of the pooled frame buffers (one fewer allocation per frame).
func BenchmarkServeFrames(b *testing.B) {
	var stream bytes.Buffer
	const frames = 1000
	for i := 0; i < frames; i++ {
		f, err := Encode(core.ACK{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}})
		if err != nil {
			b.Fatal(err)
		}
		stream.Write(f)
	}
	l := NewLink(io.Discard, LinkConfig{})
	data := stream.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Serve(bytes.NewReader(data), func(any) {}); err != io.EOF {
			b.Fatal(err)
		}
	}
}
