package wings

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/proto"
)

// m-updates cross the wire between nodes that may disagree about views,
// shard counts and epochs — exactly the traffic an adversary (or a confused
// peer mid-reconfiguration) can mangle. This suite mirrors fuzz_test.go for
// the tMUpdate codec: round trips, hostile counts, truncations and nesting.

func TestMUpdateRoundTrips(t *testing.T) {
	msgs := []proto.MUpdate{
		{Shard: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1, 2}}},
		{Shard: 3, View: proto.View{Epoch: 42,
			Members: []proto.NodeID{0, 2}, Learners: []proto.NodeID{1}}},
		// AllShards and epoch extremes must survive unchanged.
		{Shard: proto.AllShards, View: proto.View{Epoch: ^uint32(0),
			Members: []proto.NodeID{7}}},
		// Empty member/learner lists round-trip as nil (the View zero shape).
		{Shard: 1, View: proto.View{Epoch: 0}},
		// A view mentioning the NilNode sentinel is preserved verbatim — the
		// codec routes bytes, it does not validate membership semantics.
		{Shard: 9, View: proto.View{Epoch: 3, Members: []proto.NodeID{proto.NilNode}}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

// A hostile member or learner count larger than the bytes actually present
// must fail without driving the preallocation (the tShardBatch discipline).
func TestMUpdateHostileCounts(t *testing.T) {
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"member count with no members", mupdateBody(5, 1, 0xFFFF, nil, 0, nil)},
		{"member count beyond body", mupdateBody(5, 1, 8, []byte{0, 1, 2}, 0, nil)},
		{"learner count beyond body", mupdateBody(5, 1, 1, []byte{0}, 0x7FFF, []byte{9})},
		{"truncated member list", mupdateBody(5, 1, 3, []byte{0, 1}, 0, nil)[:9]},
		{"missing learner count", mupdateBody(5, 1, 1, []byte{0}, 0, nil)[:9]},
		{"empty body", nil},
		{"epoch only", []byte{1, 0, 0, 0}},
	} {
		if _, err := decodeMsg(tMUpdate, tc.body, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("%s: err=%v, want unexpected EOF", tc.name, err)
		}
	}
}

// mupdateBody hand-builds a tMUpdate payload with arbitrary (possibly lying)
// counts.
func mupdateBody(epoch uint32, shard, nMembers uint16, members []byte, nLearners uint16, learners []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, epoch)
	b = binary.LittleEndian.AppendUint16(b, shard)
	b = binary.LittleEndian.AppendUint16(b, nMembers)
	b = append(b, members...)
	b = binary.LittleEndian.AppendUint16(b, nLearners)
	return append(b, learners...)
}

// Out-of-range shard ids are a wire-legal value — range checking is the
// receiving node's dispatch decision (it knows its own W), not the codec's.
func TestMUpdateOutOfRangeShardDecodes(t *testing.T) {
	in := proto.MUpdate{Shard: 0xFFFE, View: proto.View{Epoch: 2, Members: []proto.NodeID{0}}}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("got %+v want %+v", got, in)
	}
}

// MUpdate carries its own routing; a shard envelope around it is always a
// corrupt or hostile stream. Both directions must refuse it.
func TestMUpdateNeverNestsInShardEnvelopes(t *testing.T) {
	mu := proto.MUpdate{Shard: 1, View: proto.View{Epoch: 2, Members: []proto.NodeID{0}}}
	if _, err := Encode(proto.ShardMsg{Shard: 1, Msg: mu}); err == nil {
		t.Fatal("encoder accepted MUpdate inside ShardMsg")
	}
	if _, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{{Shard: 1, Msg: mu}}}); err == nil {
		t.Fatal("encoder accepted MUpdate inside ShardBatch")
	}
	// Craft the hostile bytes a conforming encoder refuses to produce:
	// [2B shard][1B tMUpdate][4B len][payload].
	inner, err := appendMsg(nil, mu)
	if err != nil {
		t.Fatal(err)
	}
	tagged := binary.LittleEndian.AppendUint16(nil, 1)
	tagged = append(tagged, inner...)
	if _, err := decodeMsg(tShard, tagged, nil); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("decoder on shard-tagged MUpdate: err=%v, want ErrUnknownType", err)
	}
}

// Random bytes and bit-flipped valid frames must never panic — the tMUpdate
// arm joins the blanket fuzz in fuzz_test.go, plus targeted volume here.
func TestMUpdateDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		_, _ = decodeMsg(tMUpdate, buf, nil)
	}
	valid, err := Encode(proto.MUpdate{Shard: 2, View: proto.View{Epoch: 7,
		Members: []proto.NodeID{0, 1, 2, 3, 4}, Learners: []proto.NodeID{5, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		f := append([]byte(nil), valid...)
		f[rng.Intn(len(f))] ^= 1 << uint(rng.Intn(8))
		_, _ = DecodeOne(f)
	}
}

// An m-update must also survive the full framed link path among other
// traffic (the route live reconfiguration actually takes).
func TestMUpdateOverLink(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender := NewLink(a, LinkConfig{})
	recv := NewLink(b, LinkConfig{})
	got := make(chan any, 1)
	go recv.Serve(b, func(m any) { got <- m })

	mu := proto.MUpdate{Shard: proto.AllShards,
		View: proto.View{Epoch: 5, Members: []proto.NodeID{0, 1, 2}, Learners: []proto.NodeID{3}}}
	if err := sender.Send(mu); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if !reflect.DeepEqual(m, mu) {
			t.Fatalf("received %+v, want %+v", m, mu)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("m-update never arrived over the link")
	}
}
