package wings

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/proto"
)

// The client codecs are the repo's most exposed surface: tClientReq/tClientResp
// frames arrive from arbitrary TCP peers, not trusted replicas, so every
// hostile-input property the mesh codecs enforce must hold here too. This
// suite mirrors mupdate_test.go/viewlog_test.go: round trips, hostile
// lengths, truncations, out-of-range enums, nesting rejection, bit flips.

func TestClientReqRoundTrips(t *testing.T) {
	msgs := []proto.ClientReq{
		{Seq: 1, Op: proto.OpRead, Key: 42},
		{Seq: ^uint64(0), Op: proto.OpWrite, Key: ^proto.Key(0), Value: proto.Value("v")},
		{Seq: 7, Op: proto.OpCAS, Key: 9,
			Value: proto.Value("new"), Expected: proto.Value("old")},
		{Seq: 8, Op: proto.OpFAA, Key: 3, Value: proto.EncodeInt64(-5)},
		// Empty and nil values round-trip as nil (the zero shape).
		{Seq: 0, Op: proto.OpWrite, Key: 0},
		// Large-ish payloads survive verbatim.
		{Seq: 2, Op: proto.OpWrite, Key: 5, Value: make(proto.Value, 4096)},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestClientRespRoundTrips(t *testing.T) {
	msgs := []proto.ClientResp{
		{Seq: 1, Status: proto.OK, Value: proto.Value("hello")},
		{Seq: 2, Status: proto.Aborted},
		{Seq: 3, Status: proto.CASFailed, Value: proto.Value("observed")},
		{Seq: ^uint64(0), Status: proto.NotOperational},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

// Out-of-range op and status codes must be refused in BOTH directions: the
// encoder never produces them and the decoder treats them as a corrupt or
// hostile stream (ErrBadEnum), never as values to hand to dispatch.
func TestClientEnumRangeEnforced(t *testing.T) {
	if _, err := Encode(proto.ClientReq{Op: proto.OpFAA + 1}); !errors.Is(err, ErrBadEnum) {
		t.Fatalf("encoder accepted op %d: %v", proto.OpFAA+1, err)
	}
	if _, err := Encode(proto.ClientResp{Status: proto.NotOperational + 1}); !errors.Is(err, ErrBadEnum) {
		t.Fatalf("encoder accepted status %d: %v", proto.NotOperational+1, err)
	}
	// Hand-build bodies with hostile enum bytes.
	req := clientReqBody(1, 0xEE, 42, []byte("v"), nil)
	if _, err := decodeMsg(tClientReq, req, nil); !errors.Is(err, ErrBadEnum) {
		t.Fatalf("decoder accepted op 0xEE: %v", err)
	}
	resp := clientRespBody(1, 0xEE, nil)
	if _, err := decodeMsg(tClientResp, resp, nil); !errors.Is(err, ErrBadEnum) {
		t.Fatalf("decoder accepted status 0xEE: %v", err)
	}
}

// clientReqBody hand-builds a tClientReq payload with arbitrary bytes.
func clientReqBody(seq uint64, op byte, key uint64, value, expected []byte) []byte {
	b := binary.LittleEndian.AppendUint64(nil, seq)
	b = append(b, op)
	b = binary.LittleEndian.AppendUint64(b, key)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(value)))
	b = append(b, value...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(expected)))
	return append(b, expected...)
}

// clientRespBody hand-builds a tClientResp payload.
func clientRespBody(seq uint64, status byte, value []byte) []byte {
	b := binary.LittleEndian.AppendUint64(nil, seq)
	b = append(b, status)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(value)))
	return append(b, value...)
}

// Hostile lengths: a value length claiming more bytes than the body holds
// must fail before any allocation sized by the lie.
func TestClientHostileLengths(t *testing.T) {
	lyingReq := clientReqBody(1, byte(proto.OpWrite), 42, []byte("v"), nil)
	// Patch the value length (offset 17) to claim 16MB.
	binary.LittleEndian.PutUint32(lyingReq[17:], 16<<20)
	if _, err := decodeMsg(tClientReq, lyingReq, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lying req value length: err=%v, want unexpected EOF", err)
	}
	lyingResp := clientRespBody(1, byte(proto.OK), []byte("v"))
	binary.LittleEndian.PutUint32(lyingResp[9:], 0xFFFFFFF0)
	if _, err := decodeMsg(tClientResp, lyingResp, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("lying resp value length: err=%v, want unexpected EOF", err)
	}
}

// Truncations at every byte boundary must fail cleanly, never panic.
func TestClientTruncatedPayloads(t *testing.T) {
	req := clientReqBody(9, byte(proto.OpCAS), 7, []byte("value"), []byte("expected"))
	for i := 0; i < len(req); i++ {
		if _, err := decodeMsg(tClientReq, req[:i], nil); err == nil {
			t.Fatalf("req truncated to %d bytes decoded", i)
		}
	}
	resp := clientRespBody(9, byte(proto.CASFailed), []byte("observed"))
	for i := 0; i < len(resp); i++ {
		if _, err := decodeMsg(tClientResp, resp[:i], nil); err == nil {
			t.Fatalf("resp truncated to %d bytes decoded", i)
		}
	}
}

// Client messages ride client sessions only — a shard envelope around one is
// always hostile, in both the encoder and the decoder, standalone and inside
// a coalesced tShardBatch.
func TestClientNeverNestsInShardEnvelopes(t *testing.T) {
	req := proto.ClientReq{Seq: 1, Op: proto.OpRead, Key: 4}
	resp := proto.ClientResp{Seq: 1, Status: proto.OK}
	for _, inner := range []any{req, resp} {
		if _, err := Encode(proto.ShardMsg{Shard: 1, Msg: inner}); err == nil {
			t.Fatalf("encoder accepted %T inside ShardMsg", inner)
		}
		if _, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{{Shard: 1, Msg: inner}}}); err == nil {
			t.Fatalf("encoder accepted %T inside ShardBatch", inner)
		}
	}
	// Craft the hostile bytes: [2B shard][1B type][4B len][payload] for
	// tShard, and the batch shape for tShardBatch.
	for _, tc := range []struct {
		typ  uint8
		body []byte
	}{
		{tClientReq, clientReqBody(1, byte(proto.OpRead), 4, nil, nil)},
		{tClientResp, clientRespBody(1, byte(proto.OK), nil)},
	} {
		tagged := binary.LittleEndian.AppendUint16(nil, 1)
		tagged = append(tagged, tc.typ)
		tagged = binary.LittleEndian.AppendUint32(tagged, uint32(len(tc.body)))
		tagged = append(tagged, tc.body...)
		if _, err := decodeMsg(tShard, tagged, nil); !errors.Is(err, ErrUnknownType) {
			t.Fatalf("shard-tagged type %d: err=%v, want ErrUnknownType", tc.typ, err)
		}
		batch := binary.LittleEndian.AppendUint16(nil, 1) // batch count
		batch = append(batch, tagged...)
		if _, err := decodeMsg(tShardBatch, batch, nil); !errors.Is(err, ErrUnknownType) {
			t.Fatalf("batched type %d: err=%v, want ErrUnknownType", tc.typ, err)
		}
	}
}

// Random bytes and bit-flipped valid frames must never panic.
func TestClientDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(80))
		rng.Read(buf)
		_, _ = decodeMsg(tClientReq, buf, nil)
		_, _ = decodeMsg(tClientResp, buf, nil)
	}
	validReq, err := Encode(proto.ClientReq{Seq: 3, Op: proto.OpCAS, Key: 11,
		Value: proto.Value("abcdefgh"), Expected: proto.Value("12345678")})
	if err != nil {
		t.Fatal(err)
	}
	validResp, err := Encode(proto.ClientResp{Seq: 3, Status: proto.CASFailed,
		Value: proto.Value("observed")})
	if err != nil {
		t.Fatal(err)
	}
	for _, valid := range [][]byte{validReq, validResp} {
		for i := 0; i < 3000; i++ {
			f := append([]byte(nil), valid...)
			f[rng.Intn(len(f))] ^= 1 << uint(rng.Intn(8))
			_, _ = DecodeOne(f)
		}
	}
}

// A ServeFrames stream containing a tCredit entry is a protocol violation
// on a client session (admission is session-level, not link-level).
func TestServeFramesRejectsCredit(t *testing.T) {
	// [4B frame len][2B count][1B tCredit][4B len=2][2B grant]
	frame := binary.LittleEndian.AppendUint32(nil, 2+7)
	frame = binary.LittleEndian.AppendUint16(frame, 1)
	frame = append(frame, tCredit)
	frame = binary.LittleEndian.AppendUint32(frame, 2)
	frame = binary.LittleEndian.AppendUint16(frame, 8)
	err := ServeFrames(bytesReader(frame), func(any) error { return nil })
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("tCredit on client session: err=%v, want ErrUnknownType", err)
	}
}

// ServeFrames round-trips an AppendFrame batch and dispatches in order.
func TestAppendFrameServeFramesRoundTrip(t *testing.T) {
	reqs := make([]any, 100)
	for i := range reqs {
		reqs[i] = proto.ClientReq{Seq: uint64(i), Op: proto.OpWrite,
			Key: proto.Key(i), Value: proto.EncodeInt64(int64(i))}
	}
	frame, err := AppendFrame(nil, reqs...)
	if err != nil {
		t.Fatal(err)
	}
	var got []any
	err = ServeFrames(bytesReader(frame), func(m any) error {
		got = append(got, m)
		return nil
	})
	if err != io.EOF {
		t.Fatalf("serve: %v", err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("dispatched %d msgs, mismatch (got[0]=%+v)", len(got), got[0])
	}
}

// bytesReader is a minimal io.Reader over a byte slice (avoids importing
// bytes just for tests).
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
