package wings

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// FuzzDecodeMsg drives the per-message body decoder with every tag. The
// properties: decodeMsg never panics, and anything it accepts re-encodes.
func FuzzDecodeMsg(f *testing.F) {
	// The seed list is the fuzz registry: every wire tag constant must appear
	// here so fuzzing covers each frame type (hermes-vet's wingscodec
	// analyzer enforces the listing).
	wireTags := []uint8{
		tINV, tACK, tVAL, tMCheck, tMCheckAck, tChunkReq, tChunkResp, tCredit,
		tShard, tShardBatch, tMUpdate, tViewLogReq, tViewLogResp, tClientReq,
		tClientResp, tEpochGossip,
	}
	for _, tag := range wireTags {
		f.Add(tag, []byte{})
		f.Add(tag, bytes.Repeat([]byte{0xff}, 40))
	}
	// Well-formed bodies so the fuzzer starts from deep decoder states.
	for _, m := range sampleMessages() {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		// Encode's frame layout: [4B len][2B count][1B tag][4B bodyLen][body].
		f.Add(frame[6], frame[11:])
	}
	f.Fuzz(func(t *testing.T, tag uint8, body []byte) {
		msg, err := decodeMsg(tag, body, nil)
		if err != nil {
			return
		}
		if _, err := Encode(msg); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
	})
}

// FuzzDecodeOne drives the whole-frame decoder (length header included).
func FuzzDecodeOne(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	f.Add(hdr[:])
	f.Fuzz(func(t *testing.T, frame []byte) {
		_, _ = DecodeOne(frame) // must not panic
	})
}

// FuzzEpochGossipCount targets the tEpochGossip shard-count bound: a count
// field claiming more epochs than the body holds must be rejected before the
// preallocation, the tShardBatch/tViewLogResp discipline.
func FuzzEpochGossipCount(f *testing.F) {
	base, err := Encode(proto.EpochGossip{Epochs: []uint32{3, 3, 5}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base, uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, frame []byte, count uint16) {
		// Body starts at offset 11: [2B count][4B epoch each].
		if len(frame) < 13 || frame[6] != tEpochGossip {
			return
		}
		frame = append([]byte(nil), frame...)
		binary.LittleEndian.PutUint16(frame[11:], count)
		msg, err := DecodeOne(frame)
		if err != nil {
			return
		}
		eg, ok := msg.(proto.EpochGossip)
		if !ok {
			return
		}
		if len(eg.Epochs) != int(count) {
			t.Fatalf("accepted EpochGossip with count %d but %d epochs", count, len(eg.Epochs))
		}
	})
}

// TestChunkRespHostileCount pins the tChunkResp record-count bound: a count
// claiming more records than the remaining bytes could hold must be rejected
// up front (regression: the decode loop previously trusted the wire count).
func TestChunkRespHostileCount(t *testing.T) {
	frame, err := Encode(core.ChunkResp{Epoch: 1, Cursor: 2,
		Keys: []proto.Key{9},
		Recs: []core.ChunkRec{{TS: proto.TS{Version: 1}, Value: proto.Value("x")}}})
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(frame[24:], 1<<30) // count field of the body
	if _, err := DecodeOne(frame); err == nil {
		t.Fatal("hostile ChunkResp count accepted")
	}
}

// FuzzChunkRespCount targets the tChunkResp record-count bound specifically:
// a count field claiming more records than the body holds must be rejected
// without allocating (regression for the unchecked append loop).
func FuzzChunkRespCount(f *testing.F) {
	base, err := Encode(core.ChunkResp{Epoch: 1, Cursor: 2, Done: false,
		Keys: []proto.Key{9},
		Recs: []core.ChunkRec{{TS: proto.TS{Version: 1}, Value: proto.Value("x")}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base, uint32(1<<31))
	f.Fuzz(func(t *testing.T, frame []byte, count uint32) {
		// Body starts at offset 11: [4B epoch][8B cursor][1B done][4B count].
		if len(frame) < 28 || frame[6] != tChunkResp {
			return
		}
		frame = append([]byte(nil), frame...)
		binary.LittleEndian.PutUint32(frame[24:], count)
		msg, err := DecodeOne(frame)
		if err != nil {
			return
		}
		cr, ok := msg.(core.ChunkResp)
		if !ok {
			return
		}
		if len(cr.Recs) != int(count) {
			t.Fatalf("accepted ChunkResp with count %d but %d records", count, len(cr.Recs))
		}
	})
}
