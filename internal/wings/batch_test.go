package wings

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// The coalesced ShardBatch envelope must round-trip through the frame
// codec: cross-shard ACK coalescing has to survive the TCP wire.
func TestShardBatchEncodeDecodeRoundTrip(t *testing.T) {
	batches := []proto.ShardBatch{
		{Msgs: []proto.ShardMsg{
			{Shard: 0, Msg: core.ACK{Epoch: 1, Key: 2, TS: proto.TS{Version: 3, CID: 1}}},
		}},
		{Msgs: []proto.ShardMsg{
			{Shard: 0, Msg: core.ACK{Epoch: 7, Key: 42, TS: proto.TS{Version: 9, CID: 3}}},
			{Shard: 3, Msg: core.VAL{Epoch: 7, Key: 43, TS: proto.TS{Version: 2, CID: 1}}},
			{Shard: 65535, Msg: core.ACK{Epoch: 7, Key: 44, TS: proto.TS{Version: 1}}},
		}},
		{Msgs: []proto.ShardMsg{
			// A batch may carry value-bearing messages too; the coalescer
			// just does not choose to today.
			{Shard: 1, Msg: core.INV{Epoch: 2, Key: 5, TS: proto.TS{Version: 4}, Value: proto.Value("v"), RMW: true}},
			{Shard: 2, Msg: core.ACK{Epoch: 2, Key: 5, TS: proto.TS{Version: 4}}},
		}},
	}
	for _, b := range batches {
		frame, err := Encode(b)
		if err != nil {
			t.Fatalf("encode batch of %d: %v", len(b.Msgs), err)
		}
		out, err := DecodeOne(frame)
		if err != nil {
			t.Fatalf("decode batch of %d: %v", len(b.Msgs), err)
		}
		if !reflect.DeepEqual(out, b) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", out, b)
		}
	}
}

func TestShardBatchRejectsEmptyAndNested(t *testing.T) {
	if _, err := Encode(proto.ShardBatch{}); err == nil {
		t.Fatal("encoder accepted an empty batch")
	}
	if _, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{
		{Shard: 1, Msg: proto.ShardMsg{Shard: 2, Msg: core.ACK{}}},
	}}); err == nil {
		t.Fatal("encoder accepted a ShardMsg nested in a batch entry")
	}
	if _, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{
		{Shard: 1, Msg: proto.ShardBatch{Msgs: []proto.ShardMsg{{Msg: core.ACK{}}}}},
	}}); err == nil {
		t.Fatal("encoder accepted a batch nested in a batch entry")
	}
	if _, err := Encode(proto.ShardMsg{Shard: 1, Msg: proto.ShardBatch{
		Msgs: []proto.ShardMsg{{Msg: core.ACK{}}},
	}}); err == nil {
		t.Fatal("encoder accepted a batch nested in a ShardMsg")
	}
}

// A hostile frame claiming a nested envelope inside a batch entry must be
// rejected (unbounded recursion would blow the stack), as must truncations
// and count overclaims.
func TestShardBatchDecodeHostile(t *testing.T) {
	frame, err := Encode(proto.ShardBatch{Msgs: []proto.ShardMsg{
		{Shard: 1, Msg: core.ACK{Epoch: 1, Key: 2, TS: proto.TS{Version: 3}}},
		{Shard: 2, Msg: core.ACK{Epoch: 1, Key: 3, TS: proto.TS{Version: 4}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: [4B frame len][2B msg count][1B tShardBatch][4B body len]
	//         [2B batch count]([2B shard][1B type][4B len][payload])...
	const body = 6 + 5 // start of the batch body
	for _, bad := range []uint8{tShard, tShardBatch, tCredit} {
		f := append([]byte(nil), frame...)
		f[body+2+2] = bad // first entry's inner type byte
		if _, err := DecodeOne(f); err == nil {
			t.Fatalf("decoder accepted nested type %d inside a batch", bad)
		}
	}
	// Count overclaim: more entries promised than present.
	f := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint16(f[body:], 60000)
	if _, err := DecodeOne(f); err == nil {
		t.Fatal("decoder accepted an overclaimed batch count")
	}
	// Zero count.
	f = append([]byte(nil), frame...)
	binary.LittleEndian.PutUint16(f[body:], 0)
	if _, err := DecodeOne(f); err == nil {
		t.Fatal("decoder accepted a zero-count batch")
	}
	// Every truncation of the payload fails cleanly, never panics.
	for cut := 1; cut < len(frame)-6; cut++ {
		if _, err := DecodeOne(frame[:len(frame)-cut]); err == nil {
			t.Fatalf("truncated batch (-%d bytes) decoded without error", cut)
		}
	}
}

// A link-level send of a batch debits ONE credit for the whole frame, and a
// received batch of responses repays one credit per inner response — the
// coalesced credit discipline.
func TestShardBatchCreditAccounting(t *testing.T) {
	isResp := func(m any) bool {
		if sb, ok := m.(proto.ShardBatch); ok {
			for _, sm := range sb.Msgs {
				if _, ack := sm.Msg.(core.ACK); !ack {
					return false
				}
			}
			return len(sb.Msgs) > 0
		}
		if sm, ok := m.(proto.ShardMsg); ok {
			m = sm.Msg
		}
		_, ack := m.(core.ACK)
		return ack
	}
	cfg := LinkConfig{Credits: 8, IsResponse: isResp}
	a, b, recvA, recvB, done := pipePair(t, cfg)
	defer done()

	// Spend 6 credits on tagged INVs.
	for i := 0; i < 6; i++ {
		sm := proto.ShardMsg{Shard: uint16(i % 3), Msg: core.INV{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}}
		if err := a.Send(sm); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		<-recvB
	}
	// One coalesced batch of 6 ACKs repays all 6 — and, being all
	// responses, consumes no credit at b.
	batch := proto.ShardBatch{Msgs: make([]proto.ShardMsg, 6)}
	for i := range batch.Msgs {
		batch.Msgs[i] = proto.ShardMsg{Shard: uint16(i % 3), Msg: core.ACK{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}}
	}
	if err := b.Send(batch); err != nil {
		t.Fatal(err)
	}
	<-recvA
	if st := a.Stats(); st.ImplicitCreditsRecovered != 6 {
		t.Fatalf("batch of 6 ACKs repaid %d credits, want 6", st.ImplicitCreditsRecovered)
	}
	if st := b.Stats(); st.CoalescedSent != 6 || st.MsgsSent != 1 {
		t.Fatalf("batch sender stats: coalesced=%d msgs=%d, want 6 and 1",
			st.CoalescedSent, st.MsgsSent)
	}
	if st := a.Stats(); st.CoalescedRecv != 6 {
		t.Fatalf("batch receiver saw %d coalesced, want 6", st.CoalescedRecv)
	}
}
