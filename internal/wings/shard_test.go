package wings

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// The ShardMsg envelope must round-trip through the frame codec for every
// message kind it can wrap: shard routing has to survive the TCP wire.
func TestShardMsgEncodeDecodeRoundTrip(t *testing.T) {
	inner := []any{
		core.INV{Epoch: 7, Key: 42, TS: proto.TS{Version: 9, CID: 3}, Value: proto.Value("v"), RMW: true},
		core.ACK{Epoch: 7, Key: 42, TS: proto.TS{Version: 9, CID: 3}},
		core.VAL{Epoch: 7, Key: 42, TS: proto.TS{Version: 9, CID: 3}},
		core.MCheck{Epoch: 7, Seq: 11},
		core.MCheckAck{Epoch: 7, Seq: 11},
		core.ChunkReq{Epoch: 7, Cursor: 5, MaxKeys: 100},
	}
	for _, in := range inner {
		for _, shard := range []uint16{0, 1, 513, 65535} {
			msg := proto.ShardMsg{Shard: shard, Msg: in}
			frame, err := Encode(msg)
			if err != nil {
				t.Fatalf("encode %T shard %d: %v", in, shard, err)
			}
			out, err := DecodeOne(frame)
			if err != nil {
				t.Fatalf("decode %T shard %d: %v", in, shard, err)
			}
			if !reflect.DeepEqual(out, msg) {
				t.Fatalf("round trip %T shard %d: got %#v want %#v", in, shard, out, msg)
			}
		}
	}
}

// A nested envelope never comes off the legitimate encoder (it wraps one
// level); both directions must reject it — the decoder because unbounded
// recursion on a hostile frame would blow the stack.
func TestShardMsgRejectsNesting(t *testing.T) {
	if _, err := Encode(proto.ShardMsg{Shard: 1, Msg: proto.ShardMsg{Shard: 2, Msg: core.ACK{}}}); err == nil {
		t.Fatal("encoder accepted a nested ShardMsg")
	}
	// Hand-build a frame whose tShard payload claims another tShard inside.
	frame, err := Encode(proto.ShardMsg{Shard: 1, Msg: core.ACK{Epoch: 1, Key: 2}})
	if err != nil {
		t.Fatal(err)
	}
	frame[6+5+2] = frame[6] // overwrite inner type byte with tShard
	if _, err := DecodeOne(frame); err == nil {
		t.Fatal("decoder accepted a nested tShard")
	}
}

func TestShardMsgDecodeTruncated(t *testing.T) {
	frame, err := Encode(proto.ShardMsg{Shard: 2, Msg: core.ACK{Epoch: 1, Key: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the payload; every truncation must fail cleanly, not
	// panic or mis-decode. (Truncating the frame header itself is the frame
	// reader's job, covered by the existing fuzz tests.)
	for cut := 1; cut < 12; cut++ {
		bad := make([]byte, len(frame)-cut)
		copy(bad, frame)
		if _, err := DecodeOne(bad); err == nil {
			t.Fatalf("truncated frame (-%d bytes) decoded without error", cut)
		}
	}
}
