package wings

import (
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	frame, err := Encode(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	got, err := DecodeOne(frame)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return got
}

// sampleMessages returns one instance of every wire message (shared with
// the corruption tests).
func sampleMessages() []any {
	return []any{
		core.INV{Epoch: 3, Key: 42, TS: proto.TS{Version: 9, CID: 2}, Value: proto.Value("hello"), RMW: true},
		core.ACK{Epoch: 7, Key: 1, TS: proto.TS{Version: 4, CID: 1}},
		core.ACK{Epoch: 7, Key: 1, TS: proto.TS{Version: 4, CID: 1},
			Higher: true, HTS: proto.TS{Version: 6, CID: 2}, HVal: proto.Value("rival"), HRMW: true},
		core.VAL{Epoch: 2, Key: 99, TS: proto.TS{Version: 8, CID: 3}},
		core.MCheck{Epoch: 5, Seq: 11},
		core.ChunkResp{Epoch: 1, Cursor: 514, Done: true,
			Keys: []proto.Key{5},
			Recs: []core.ChunkRec{{TS: proto.TS{Version: 2}, Value: proto.Value("a")}}},
		proto.MUpdate{Shard: 2, View: proto.View{Epoch: 9,
			Members: []proto.NodeID{0, 1, 2}, Learners: []proto.NodeID{4}}},
		proto.EpochGossip{Epochs: []uint32{4, 4, 7, 1}},
	}
}

func TestCodecRoundTrips(t *testing.T) {
	msgs := []any{
		core.INV{Epoch: 3, Key: 42, TS: proto.TS{Version: 9, CID: 2}, Value: proto.Value("hello"), RMW: true},
		core.INV{Epoch: 1, Key: 0, TS: proto.TS{}, Value: nil},
		core.ACK{Epoch: 7, Key: 1, TS: proto.TS{Version: 4, CID: 1}},
		// A teaching ACK (ACK-without-apply): the payload carrying the
		// acker's outranking entry must survive the wire bit-exact.
		core.ACK{Epoch: 7, Key: 1, TS: proto.TS{Version: 4, CID: 1},
			Higher: true, HTS: proto.TS{Version: 6, CID: 2}, HVal: proto.Value("rival"), HRMW: true},
		core.VAL{Epoch: 2, Key: 99, TS: proto.TS{Version: 8, CID: 3}},
		core.MCheck{Epoch: 5, Seq: 11},
		core.MCheckAck{Epoch: 5, Seq: 11},
		core.ChunkReq{Epoch: 1, Cursor: 512, MaxKeys: 64},
		core.ChunkResp{Epoch: 1, Cursor: 514, Done: true,
			Keys: []proto.Key{5, 6},
			Recs: []core.ChunkRec{
				{TS: proto.TS{Version: 2, CID: 0}, Value: proto.Value("a")},
				{TS: proto.TS{Version: 3, CID: 1}, Value: proto.Value("bb"), RMW: true, Invalid: true},
			}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestCodecINVProperty(t *testing.T) {
	f := func(epoch uint32, key uint64, ver uint32, cid uint16, rmw bool, val []byte) bool {
		in := core.INV{Epoch: epoch, Key: proto.Key(key), TS: proto.TS{Version: ver, CID: cid}, RMW: rmw, Value: val}
		if len(val) == 0 {
			in.Value = nil
		}
		frame, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := DecodeOne(frame)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Encode("not a protocol message"); err == nil {
		t.Fatal("encoded a foreign type")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	frame, _ := Encode(core.ACK{Epoch: 1, Key: 2, TS: proto.TS{Version: 3}})
	for cut := 1; cut < len(frame); cut++ {
		if _, err := DecodeOne(frame[:cut]); err == nil {
			t.Fatalf("accepted frame truncated to %d bytes", cut)
		}
	}
}

// pipePair builds two linked Links over a net.Pipe and starts Serve pumps.
func pipePair(t *testing.T, cfg LinkConfig) (a, b *Link, recvA, recvB chan any, closeFn func()) {
	t.Helper()
	ca, cb := net.Pipe()
	a = NewLink(ca, cfg)
	b = NewLink(cb, cfg)
	recvA = make(chan any, 1024)
	recvB = make(chan any, 1024)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a.Serve(ca, func(m any) { recvA <- m }) }()
	go func() { defer wg.Done(); b.Serve(cb, func(m any) { recvB <- m }) }()
	return a, b, recvA, recvB, func() {
		a.Close()
		b.Close()
		ca.Close()
		cb.Close()
		wg.Wait()
	}
}

func TestLinkDeliversMessages(t *testing.T) {
	a, _, _, recvB, done := pipePair(t, LinkConfig{})
	defer done()
	want := core.INV{Epoch: 1, Key: 7, TS: proto.TS{Version: 2, CID: 1}, Value: proto.Value("v")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recvB:
		inv, ok := got.(core.INV)
		if !ok {
			t.Fatalf("got %T, want core.INV", got)
		}
		// A wire-decoded INV with a value arrives owner-backed: its Value is
		// a zero-copy sub-slice of the pooled frame buffer, pinned by one
		// reference the receiver must consume.
		if inv.Owner == nil {
			t.Fatalf("decoded INV carries no frame-buffer owner: %+v", inv)
		}
		inv.ReleaseOwner()
		inv.Owner = nil
		if !reflect.DeepEqual(inv, want) {
			t.Fatalf("got %+v", inv)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestLinkOpportunisticBatching(t *testing.T) {
	a, _, _, recvB, done := pipePair(t, LinkConfig{})
	defer done()
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(core.ACK{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case <-recvB:
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout at message %d", i)
		}
	}
	st := a.Stats()
	if st.MsgsSent != n {
		t.Fatalf("sent %d", st.MsgsSent)
	}
	// net.Pipe is synchronous, so sends pile up while a flush blocks:
	// far fewer frames than messages proves batching.
	if st.FramesSent >= n {
		t.Fatalf("no batching: %d frames for %d messages", st.FramesSent, n)
	}
	if st.BatchedMsgs == 0 {
		t.Fatal("no batched messages recorded")
	}
}

func TestLinkImplicitCredits(t *testing.T) {
	cfg := LinkConfig{
		Credits: 4,
		IsResponse: func(m any) bool {
			_, isACK := m.(core.ACK)
			return isACK
		},
	}
	a, b, recvA, recvB, done := pipePair(t, cfg)
	defer done()
	_ = recvA
	// Echo server: b responds to INVs with ACKs, repaying credits.
	go func() {
		for m := range recvB {
			if inv, ok := m.(core.INV); ok {
				b.Send(core.ACK{Epoch: inv.Epoch, Key: inv.Key, TS: inv.TS})
			}
		}
	}()
	// Send far more than the window; implicit credits must keep it moving.
	const n = 50
	got := 0
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(core.INV{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	deadline := time.After(5 * time.Second)
	for got < n {
		select {
		case m := <-recvA:
			if _, ok := m.(core.ACK); ok {
				got++
			}
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("stalled after %d acks (credit accounting broken)", got)
		}
	}
	if st := a.Stats(); st.ImplicitCreditsRecovered == 0 {
		t.Fatal("no implicit credits recovered")
	}
}

func TestLinkExplicitCredits(t *testing.T) {
	cfg := LinkConfig{Credits: 4, ExplicitEvery: 2}
	a, _, _, recvB, done := pipePair(t, cfg)
	defer done()
	// One-way traffic (like VALs): only explicit credit updates keep the
	// sender's window open.
	const n = 40
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(core.VAL{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < n; i++ {
		select {
		case <-recvB:
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("one-way traffic stalled at %d (explicit credits broken)", i)
		}
	}
}

func TestBroadcastFansOut(t *testing.T) {
	a1, _, _, recv1, done1 := pipePair(t, LinkConfig{})
	defer done1()
	a2, _, _, recv2, done2 := pipePair(t, LinkConfig{})
	defer done2()
	msg := core.VAL{Epoch: 1, Key: 5, TS: proto.TS{Version: 2}}
	if err := Broadcast([]*Link{a1, a2}, msg); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []chan any{recv1, recv2} {
		select {
		case got := <-ch:
			if !reflect.DeepEqual(got, msg) {
				t.Fatalf("peer %d got %+v", i, got)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timeout")
		}
	}
}

func TestServeRejectsGarbage(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	l := NewLink(ca, LinkConfig{})
	errCh := make(chan error, 1)
	go func() { errCh <- l.Serve(ca, func(any) {}) }()
	cb.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd frame length
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("accepted garbage frame header")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not reject garbage")
	}
}

func TestClosedLinkSendFails(t *testing.T) {
	ca, _ := net.Pipe()
	l := NewLink(ca, LinkConfig{})
	l.Close()
	if err := l.Send(core.ACK{}); err == nil {
		t.Fatal("send on closed link succeeded")
	}
}

var _ io.Reader = (*net.TCPConn)(nil) // interface sanity
