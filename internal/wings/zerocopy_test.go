package wings

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// TestZeroCopyValueSurvivesFrameReuse is the end-to-end pin of the zero-copy
// receive path: a decoded INV's value aliases the pooled frame buffer, and
// the reference the decoder retained must keep that buffer out of the pool —
// across arbitrary later traffic on the link — until the holder releases it.
// Without the refcount, the serve loop would recycle the frame after
// dispatch and a later frame read would overwrite the retained value.
func TestZeroCopyValueSurvivesFrameReuse(t *testing.T) {
	a, _, _, recvB, done := pipePair(t, LinkConfig{})
	defer done()

	first := bytes.Repeat([]byte{0x5A}, 512)
	if err := a.Send(core.INV{Epoch: 1, Key: 1, TS: proto.TS{Version: 2}, Value: first}); err != nil {
		t.Fatal(err)
	}
	var held core.INV
	select {
	case m := <-recvB:
		held = m.(core.INV)
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for first INV")
	}
	if held.Owner == nil {
		t.Fatal("decoded INV carries no owner; zero-copy path not taken")
	}
	// The value must alias the frame, not copy it.
	if !sliceWithin(held.Value, held.Owner.Bytes()) {
		t.Fatal("decoded value does not alias the frame buffer")
	}

	// Churn the link: every later frame draws a buffer from the same pool.
	// The held reference must keep the first frame pinned, so none of this
	// traffic may scribble over the retained value.
	for i := 0; i < 64; i++ {
		filler := bytes.Repeat([]byte{byte(i)}, 512)
		if err := a.Send(core.INV{Epoch: 1, Key: proto.Key(2 + i), TS: proto.TS{Version: 2}, Value: filler}); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-recvB:
			m.(core.INV).ReleaseOwner() // this consumer is done immediately
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout at churn frame %d", i)
		}
	}

	if !bytes.Equal(held.Value, first) {
		t.Fatalf("retained value corrupted by frame reuse: %x...", held.Value[:8])
	}
	held.ReleaseOwner()
}

// sliceWithin reports whether sub's backing array lies inside outer's.
func sliceWithin(sub, outer []byte) bool {
	if len(sub) == 0 || len(outer) == 0 {
		return false
	}
	for i := range outer {
		if &outer[i] == &sub[0] {
			return i+len(sub) <= len(outer)
		}
	}
	return false
}

// TestSendReleasesOwnersOnEncodeError fault-injects the encoder: a ShardBatch
// whose second entry cannot be encoded fails after the first entry's INV (and
// its frame reference) entered appendMsg. Send owns the references on every
// path, so the failure must release them exactly once — refs hit zero, no
// panic from a double release — refund the debited credits, and leave the
// link usable.
func TestSendReleasesOwnersOnEncodeError(t *testing.T) {
	var sink bytes.Buffer
	l := NewLink(&sink, LinkConfig{Credits: 4})
	pool := refbuf.NewPool()

	fb := pool.Get(8)
	copy(fb.Bytes(), "payload!")
	batch := proto.ShardBatch{Msgs: []proto.ShardMsg{
		{Shard: 0, Msg: core.INV{Epoch: 1, Key: 1, TS: proto.TS{Version: 2},
			Value: fb.Bytes()[0:8:8], Owner: fb}},
		{Shard: 1, Msg: struct{ not any }{}}, // no encoder case: appendMsg fails
	}}
	if err := l.Send(batch); err == nil {
		t.Fatal("Send encoded a batch with an unencodable entry")
	}
	if got := fb.Refs(); got != 0 {
		t.Fatalf("frame refs after encode-error Send = %d, want 0", got)
	}
	if st := l.Stats(); st.CreditsRefunded == 0 {
		t.Fatalf("encode failure refunded no credits: %+v", st)
	}
	// The failure must not have corrupted the pending queue or the window.
	if err := l.Send(core.ACK{Epoch: 1, Key: 2, TS: proto.TS{Version: 1}}); err != nil {
		t.Fatalf("link unusable after encode error: %v", err)
	}

	t.Run("closed link", func(t *testing.T) {
		l2 := NewLink(&bytes.Buffer{}, LinkConfig{})
		l2.Close()
		fb2 := pool.Get(4)
		inv := core.INV{Epoch: 1, Key: 3, TS: proto.TS{Version: 2},
			Value: fb2.Bytes()[0:4:4], Owner: fb2}
		if err := l2.Send(inv); err == nil {
			t.Fatal("send on closed link succeeded")
		}
		if got := fb2.Refs(); got != 0 {
			t.Fatalf("frame refs after closed-link Send = %d, want 0", got)
		}
	})

	t.Run("success path", func(t *testing.T) {
		l3 := NewLink(&bytes.Buffer{}, LinkConfig{})
		fb3 := pool.Get(4)
		inv := core.INV{Epoch: 1, Key: 4, TS: proto.TS{Version: 2},
			Value: fb3.Bytes()[0:4:4], Owner: fb3}
		if err := l3.Send(inv); err != nil {
			t.Fatal(err)
		}
		// The encoder copies value bytes into the send buffer synchronously:
		// the reference is spent when Send returns, success included.
		if got := fb3.Refs(); got != 0 {
			t.Fatalf("frame refs after successful Send = %d, want 0", got)
		}
	})
}

// TestAppendClientRespsMatchesAppendFrame pins the monomorphic response
// encoder to the generic frame encoder bit for bit, including the enum-range
// rejection, so the two framings cannot drift.
func TestAppendClientRespsMatchesAppendFrame(t *testing.T) {
	resps := []proto.ClientResp{
		{Seq: 1, Status: proto.OK, Value: proto.Value("hello")},
		{Seq: 2, Status: proto.Aborted},
		{Seq: 3, Status: proto.CASFailed, Value: proto.Value("observed-value")},
		{Seq: 4, Status: proto.NotOperational, Value: nil},
	}
	anys := make([]any, len(resps))
	for i, r := range resps {
		anys[i] = r
	}
	want, err := AppendFrame(nil, anys...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendClientResps(nil, resps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frames differ:\n got %x\nwant %x", got, want)
	}

	bad := []proto.ClientResp{{Seq: 9, Status: proto.NotOperational + 1}}
	if _, err := AppendClientResps(nil, bad); err != ErrBadEnum {
		t.Fatalf("out-of-range status: err = %v, want ErrBadEnum", err)
	}
}

// TestAppendClientRespsZeroAlloc is the read→resp-encode half of the
// allocation satellite: flushing a batch of responses into a warm, reused
// buffer must not allocate at all — the encoder is monomorphic precisely to
// avoid the per-response interface boxing of AppendFrame's []any.
func TestAppendClientRespsZeroAlloc(t *testing.T) {
	resps := make([]proto.ClientResp, 16)
	for i := range resps {
		resps[i] = proto.ClientResp{
			Seq: uint64(i), Status: proto.OK,
			Value: bytes.Repeat([]byte{byte(i)}, 64),
		}
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendClientResps(buf[:0], resps)
		if err != nil || len(out) == 0 {
			panic(fmt.Sprintf("encode failed: %v", err))
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendClientResps into a warm buffer allocates %v per run, want 0", allocs)
	}
}

// TestServePoolsPinnedFramesIndependently drives two links that share the
// package-level frame pool concurrently while one of them holds values
// pinned, checking the pool never hands a pinned buffer to the other link.
func TestServePoolsPinnedFramesIndependently(t *testing.T) {
	a1, _, _, recv1, done1 := pipePair(t, LinkConfig{})
	defer done1()
	a2, _, _, recv2, done2 := pipePair(t, LinkConfig{})
	defer done2()

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	drive := func(l *Link, recv chan any, tag byte) {
		defer wg.Done()
		var pinned []core.INV
		for i := 0; i < 128; i++ {
			val := bytes.Repeat([]byte{tag, byte(i)}, 64)
			if err := l.Send(core.INV{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 2}, Value: val}); err != nil {
				errs <- err
				return
			}
			select {
			case m := <-recv:
				inv := m.(core.INV)
				pinned = append(pinned, inv)
				if len(pinned) > 8 { // hold a sliding window of 8 frames
					old := pinned[0]
					pinned = pinned[1:]
					if old.Value[0] != tag {
						errs <- fmt.Errorf("link %c: pinned value overwritten: %x", tag, old.Value[:2])
						return
					}
					old.ReleaseOwner()
				}
			case <-time.After(5 * time.Second):
				errs <- fmt.Errorf("link %c: timeout at %d", tag, i)
				return
			}
		}
		for _, inv := range pinned {
			if inv.Value[0] != tag {
				errs <- fmt.Errorf("link %c: tail value overwritten", tag)
				return
			}
			inv.ReleaseOwner()
		}
	}
	go drive(a1, recv1, 'A')
	go drive(a2, recv2, 'B')
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
