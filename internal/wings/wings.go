// Package wings is the RPC layer of HermesKV (paper §4.2), re-targeted from
// RDMA UD sends to any byte stream (net.Conn, net.Pipe): it provides
//
//   - compact hand-rolled binary codecs for every Hermes message,
//   - opportunistic batching: messages accumulate while a send is in flight
//     and ship as one framed batch — never stalling to fill a batch,
//   - credit-based flow control with implicit credits (responses) and
//     explicit credit-update frames for one-way traffic like VALs,
//   - a broadcast primitive implemented as unicasts to a peer group.
//
// PCIe-level RDMA tricks (doorbell batching, inlining, header-only credit
// packets) have no software-visible protocol effect and are represented by
// their closest stream analogue: one syscall per batch and a 1-byte credit
// frame.
package wings

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// Frame layout:
//
//	[4B total length][2B message count] then per message:
//	[1B type][4B length][payload]
//
// A credit-update frame is a regular frame whose single message has type
// tCredit and a 2-byte grant payload.

const (
	tINV uint8 = iota + 1
	tACK
	tVAL
	tMCheck
	tMCheckAck
	tChunkReq
	tChunkResp
	tCredit
	// tShard wraps any other message with a 2-byte shard tag — the
	// proto.ShardMsg envelope of the multi-worker engine. Payload:
	// [2B shard][1B inner type][4B inner length][inner payload].
	tShard
	// tShardBatch coalesces shard-tagged small messages from many shard
	// engines into one frame under one flow-control credit — the
	// proto.ShardBatch envelope. Payload:
	// [2B count] then per entry [2B shard][1B inner type][4B len][payload].
	tShardBatch
	// tMUpdate is a shard-routable membership update (proto.MUpdate):
	// [4B epoch][2B target shard][2B member count][members, 1B each]
	// [2B learner count][learners, 1B each]. Node-level routing — it never
	// nests inside a shard envelope (the shard field IS the routing tag).
	tMUpdate
	// tViewLogReq asks a peer for its retained membership updates — the
	// fast-forward fetch of a rejoining or lagging shard (proto.ViewLogReq):
	// [2B shard][4B since]. Node-level routing like tMUpdate.
	tViewLogReq
	// tViewLogResp carries the retained updates (proto.ViewLogResp):
	// [2B count] then per entry the tMUpdate body
	// ([4B epoch][2B shard][2B n][members][2B n][learners]). The count is
	// validated against the bytes present before any allocation, the
	// tShardBatch discipline. Never nests inside a shard envelope.
	tViewLogResp
	// tClientReq is one pipelined client request (proto.ClientReq):
	// [8B seq][1B op][8B key][4B len][value][4B len][expected]. Client↔server
	// traffic only: it never rides the replica mesh, so a shard envelope
	// around it is always hostile. Out-of-range op codes are rejected at
	// decode — the server must never see an op kind it cannot dispatch.
	tClientReq
	// tClientResp answers a tClientReq (proto.ClientResp):
	// [8B seq][1B status][4B len][value]. Same nesting and range discipline
	// as tClientReq (a status outside the protocol's enum is a corrupt or
	// hostile stream, not a value to hand to retry logic).
	tClientResp
	// tEpochGossip announces the sender's per-shard membership epoch vector
	// (proto.EpochGossip): [2B count][4B epoch each]. The count is validated
	// against the bytes present before any allocation, the tShardBatch
	// discipline. Node-level routing like tMUpdate — never nests inside a
	// shard envelope. Strictly advisory on receipt: a hostile vector can at
	// worst provoke a view-log fetch whose answer the normal install path
	// verifies.
	tEpochGossip
)

// maxFrame bounds a frame's size (defense against corrupt streams).
const maxFrame = 16 << 20

// ClientMagic opens a client session: the connecting client writes these 4
// bytes, and the server answers with the same 4 bytes followed by a 4-byte
// little-endian pipelining window — the number of requests the client may
// keep in flight on the connection (its send-credit budget). Both the wire
// server (internal/server) and the session client (internal/client) speak
// this handshake; a connection that opens with anything else is not a client
// session and is closed before any frame is parsed.
var ClientMagic = [4]byte{'h', 'C', 'L', '1'}

// MaxFrameMsgs is the most messages one frame can carry (AppendFrame rejects
// larger batches); exported so batching callers can split at the same bound
// the codec enforces.
const MaxFrameMsgs = maxFrameMsgs

// ErrUnknownType reports an unregistered message type on the wire.
var ErrUnknownType = errors.New("wings: unknown message type")

// ErrBadEnum reports a client-protocol op or status code outside the
// protocol's enum — a corrupt or hostile stream, never produced by a
// conforming encoder.
var ErrBadEnum = errors.New("wings: enum value out of range")

// appendMsg encodes one protocol message.
func appendMsg(buf []byte, msg any) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0) // type + length placeholder
	var t uint8
	switch m := msg.(type) {
	case core.INV:
		t = tINV
		buf = appendEpochKeyTS(buf, m.Epoch, m.Key, m.TS)
		buf = appendBool(buf, m.RMW)
		buf = appendBytes(buf, m.Value)
	case core.ACK:
		t = tACK
		buf = appendEpochKeyTS(buf, m.Epoch, m.Key, m.TS)
		buf = appendBool(buf, m.Higher)
		if m.Higher {
			buf = binary.LittleEndian.AppendUint32(buf, m.HTS.Version)
			buf = binary.LittleEndian.AppendUint16(buf, m.HTS.CID)
			buf = appendBool(buf, m.HRMW)
			buf = appendBytes(buf, m.HVal)
		}
	case core.VAL:
		t = tVAL
		buf = appendEpochKeyTS(buf, m.Epoch, m.Key, m.TS)
	case core.MCheck:
		t = tMCheck
		buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	case core.MCheckAck:
		t = tMCheckAck
		buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	case core.ChunkReq:
		t = tChunkReq
		buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, m.Cursor)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.MaxKeys))
	case core.ChunkResp:
		t = tChunkResp
		buf = binary.LittleEndian.AppendUint32(buf, m.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, m.Cursor)
		buf = appendBool(buf, m.Done)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Keys)))
		for i, k := range m.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
			r := m.Recs[i]
			buf = binary.LittleEndian.AppendUint32(buf, r.TS.Version)
			buf = binary.LittleEndian.AppendUint16(buf, r.TS.CID)
			buf = appendBool(buf, r.RMW)
			buf = appendBool(buf, r.Invalid)
			buf = appendBytes(buf, r.Value)
		}
	case proto.ShardMsg:
		t = tShard
		if nestedEnvelope(m.Msg) {
			return nil, fmt.Errorf("wings: nested ShardMsg")
		}
		buf = binary.LittleEndian.AppendUint16(buf, m.Shard)
		var err error
		buf, err = appendMsg(buf, m.Msg)
		if err != nil {
			return nil, err
		}
	case proto.ShardBatch:
		t = tShardBatch
		if len(m.Msgs) == 0 || len(m.Msgs) > 0xFFFF {
			return nil, fmt.Errorf("wings: ShardBatch of %d messages", len(m.Msgs))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Msgs)))
		for _, sm := range m.Msgs {
			if nestedEnvelope(sm.Msg) {
				return nil, fmt.Errorf("wings: nested envelope in ShardBatch")
			}
			buf = binary.LittleEndian.AppendUint16(buf, sm.Shard)
			var err error
			buf, err = appendMsg(buf, sm.Msg)
			if err != nil {
				return nil, err
			}
		}
	case proto.MUpdate:
		t = tMUpdate
		var err error
		buf, err = appendMUpdateBody(buf, m)
		if err != nil {
			return nil, err
		}
	case proto.ViewLogReq:
		t = tViewLogReq
		buf = binary.LittleEndian.AppendUint16(buf, m.Shard)
		buf = binary.LittleEndian.AppendUint32(buf, m.Since)
	case proto.ClientReq:
		t = tClientReq
		if m.Op > proto.OpFAA {
			return nil, ErrBadEnum
		}
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = append(buf, byte(m.Op))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Key))
		buf = appendBytes(buf, m.Value)
		buf = appendBytes(buf, m.Expected)
	case proto.ClientResp:
		t = tClientResp
		if m.Status > proto.NotOperational {
			return nil, ErrBadEnum
		}
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = append(buf, byte(m.Status))
		buf = appendBytes(buf, m.Value)
	case proto.EpochGossip:
		t = tEpochGossip
		if len(m.Epochs) > 0xFFFF {
			return nil, fmt.Errorf("wings: EpochGossip of %d shards", len(m.Epochs))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Epochs)))
		for _, e := range m.Epochs {
			buf = binary.LittleEndian.AppendUint32(buf, e)
		}
	case proto.ViewLogResp:
		t = tViewLogResp
		if len(m.Updates) > 0xFFFF {
			return nil, fmt.Errorf("wings: ViewLogResp of %d updates", len(m.Updates))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Updates)))
		for _, up := range m.Updates {
			var err error
			buf, err = appendMUpdateBody(buf, up)
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("wings: cannot encode %T", msg)
	}
	buf[start] = t
	binary.LittleEndian.PutUint32(buf[start+1:], uint32(len(buf)-start-5))
	return buf, nil
}

// nestedEnvelope reports whether msg must not nest inside a shard envelope:
// the envelopes themselves (the encoders wrap exactly one level), the
// node-level membership traffic — MUpdate (its shard field IS the routing
// tag) and the view-log pair (host-level fast-forward, never shard-engine
// traffic) — and the client session pair, which never touches the replica
// mesh at all.
func nestedEnvelope(msg any) bool {
	switch msg.(type) {
	case proto.ShardMsg, proto.ShardBatch, proto.MUpdate, proto.ViewLogReq, proto.ViewLogResp,
		proto.EpochGossip, proto.ClientReq, proto.ClientResp:
		return true
	}
	return false
}

// appendMUpdateBody encodes an MUpdate's payload: [4B epoch][2B shard]
// [2B n][members][2B n][learners]. Shared by tMUpdate and the entries of a
// tViewLogResp so the two framings cannot drift.
func appendMUpdateBody(buf []byte, m proto.MUpdate) ([]byte, error) {
	if len(m.View.Members) > 0xFFFF || len(m.View.Learners) > 0xFFFF {
		return nil, fmt.Errorf("wings: oversized view in MUpdate")
	}
	buf = binary.LittleEndian.AppendUint32(buf, m.View.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, m.Shard)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.View.Members)))
	for _, n := range m.View.Members {
		buf = append(buf, byte(n))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.View.Learners)))
	for _, n := range m.View.Learners {
		buf = append(buf, byte(n))
	}
	return buf, nil
}

// readMUpdateBody decodes one MUpdate payload; errors surface via r.err.
func readMUpdateBody(r *reader) proto.MUpdate {
	m := proto.MUpdate{}
	m.View.Epoch = r.u32()
	m.Shard = r.u16()
	m.View.Members = r.nodeIDs()
	m.View.Learners = r.nodeIDs()
	return m
}

func appendEpochKeyTS(buf []byte, epoch uint32, key proto.Key, ts proto.TS) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key))
	buf = binary.LittleEndian.AppendUint32(buf, ts.Version)
	buf = binary.LittleEndian.AppendUint16(buf, ts.CID)
	return buf
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) boolv() bool {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return false
	}
	v := r.b[r.off] != 0
	r.off++
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += n
	if n == 0 {
		return nil
	}
	return out
}

// bytesRef reads a length-prefixed byte field without copying: the result
// aliases the frame buffer (three-index sliced so an append can never grow
// into neighboring frame bytes). Callers must pair it with a reference on
// the frame's refbuf.Buf — this is the zero-copy INV value path.
func (r *reader) bytesRef() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

func (r *reader) ts() proto.TS { return proto.TS{Version: r.u32(), CID: r.u16()} }

// nodeIDs reads a [2B count][1B id]... node list. The count is validated
// against the bytes actually present before any allocation, so a hostile
// count cannot drive the preallocation (the same discipline as tShardBatch);
// a truncated list surfaces as ErrUnexpectedEOF via r.err.
func (r *reader) nodeIDs() []proto.NodeID {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]proto.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = proto.NodeID(r.b[r.off+i])
	}
	r.off += n
	return out
}

// decodeMsg decodes one message body of the given type. When owner is
// non-nil it is the pooled frame buffer body aliases, and value-bearing hot
// path messages (INV) decode zero-copy: the value sub-slices the frame and
// the message carries a retained reference the receiver must consume (adopt
// into the store or release on a drop path). A nil owner forces the copying
// decode — correct for standalone frames and codec paths with no refcount
// discipline downstream.
func decodeMsg(t uint8, body []byte, owner *refbuf.Buf) (any, error) {
	r := &reader{b: body}
	var msg any
	switch t {
	case tINV:
		m := core.INV{Epoch: r.u32(), Key: proto.Key(r.u64()), TS: r.ts()}
		m.RMW = r.boolv()
		if owner != nil {
			if m.Value = r.bytesRef(); m.Value != nil {
				owner.Retain()
				m.Owner = owner
			}
		} else {
			m.Value = r.bytes()
		}
		msg = m
	case tACK:
		m := core.ACK{Epoch: r.u32(), Key: proto.Key(r.u64()), TS: r.ts()}
		if m.Higher = r.boolv(); m.Higher {
			m.HTS = r.ts()
			m.HRMW = r.boolv()
			m.HVal = r.bytes()
		}
		msg = m
	case tVAL:
		msg = core.VAL{Epoch: r.u32(), Key: proto.Key(r.u64()), TS: r.ts()}
	case tMCheck:
		msg = core.MCheck{Epoch: r.u32(), Seq: r.u64()}
	case tMCheckAck:
		msg = core.MCheckAck{Epoch: r.u32(), Seq: r.u64()}
	case tChunkReq:
		msg = core.ChunkReq{Epoch: r.u32(), Cursor: r.u64(), MaxKeys: int(r.u32())}
	case tChunkResp:
		m := core.ChunkResp{Epoch: r.u32(), Cursor: r.u64(), Done: r.boolv()}
		n := int(r.u32())
		// Each record occupies at least 20 wire bytes (key 8, TS 6, two
		// flags, empty-value length 4); a count claiming more records than
		// the remaining bytes could hold is hostile.
		if n < 0 || n > (len(r.b)-r.off)/20 {
			return nil, io.ErrUnexpectedEOF
		}
		for i := 0; i < n && r.err == nil; i++ {
			m.Keys = append(m.Keys, proto.Key(r.u64()))
			rec := core.ChunkRec{TS: r.ts()}
			rec.RMW = r.boolv()
			rec.Invalid = r.boolv()
			rec.Value = r.bytes()
			m.Recs = append(m.Recs, rec)
		}
		msg = m
	case tMUpdate:
		msg = readMUpdateBody(r)
	case tViewLogReq:
		msg = proto.ViewLogReq{Shard: r.u16(), Since: r.u32()}
	case tClientReq:
		m := proto.ClientReq{Seq: r.u64(), Op: proto.OpKind(r.u8())}
		m.Key = proto.Key(r.u64())
		m.Value = r.bytes()
		m.Expected = r.bytes()
		if r.err == nil && m.Op > proto.OpFAA {
			return nil, ErrBadEnum
		}
		msg = m
	case tClientResp:
		m := proto.ClientResp{Seq: r.u64(), Status: proto.Status(r.u8())}
		m.Value = r.bytes()
		if r.err == nil && m.Status > proto.NotOperational {
			return nil, ErrBadEnum
		}
		msg = m
	case tEpochGossip:
		count := int(r.u16())
		if r.err != nil {
			return nil, r.err
		}
		// Each epoch is 4 wire bytes; a count claiming more than the body
		// holds is hostile and must not drive the preallocation. An empty
		// vector is legal (a node with no shards up yet).
		if count > (len(r.b)-r.off)/4 {
			return nil, io.ErrUnexpectedEOF
		}
		m := proto.EpochGossip{}
		if count > 0 {
			m.Epochs = make([]uint32, 0, count)
		}
		for i := 0; i < count && r.err == nil; i++ {
			m.Epochs = append(m.Epochs, r.u32())
		}
		msg = m
	case tViewLogResp:
		count := int(r.u16())
		if r.err != nil {
			return nil, r.err
		}
		// Every entry takes at least 10 bytes (epoch + shard + two counts); a
		// hostile count larger than the body can hold must not drive the
		// preallocation. An empty log is a legal answer ("nothing newer").
		if count > (len(r.b)-r.off)/10 {
			return nil, io.ErrUnexpectedEOF
		}
		m := proto.ViewLogResp{}
		if count > 0 {
			m.Updates = make([]proto.MUpdate, 0, count)
		}
		for i := 0; i < count && r.err == nil; i++ {
			m.Updates = append(m.Updates, readMUpdateBody(r))
		}
		msg = m
	case tShard:
		sm, err := decodeTagged(r, owner)
		if err != nil {
			return nil, err
		}
		msg = sm
	case tShardBatch:
		count := int(r.u16())
		if r.err != nil {
			return nil, r.err
		}
		if count == 0 {
			return nil, fmt.Errorf("wings: empty ShardBatch")
		}
		// Every entry takes at least 7 bytes (shard + type + length); a
		// hostile count larger than the body can hold must not drive the
		// preallocation.
		if count > (len(r.b)-r.off)/7 {
			return nil, io.ErrUnexpectedEOF
		}
		b := proto.ShardBatch{Msgs: make([]proto.ShardMsg, 0, count)}
		for i := 0; i < count; i++ {
			sm, err := decodeTagged(r, owner)
			if err != nil {
				// References already retained for earlier entries die with
				// the batch: the stream is aborted on a decode error, so the
				// frame buffer is simply never pooled again (GC reclaims it).
				releaseShardMsgOwners(b.Msgs)
				return nil, err
			}
			b.Msgs = append(b.Msgs, sm)
		}
		if r.err != nil {
			releaseShardMsgOwners(b.Msgs)
			return nil, r.err
		}
		msg = b
	default:
		return nil, ErrUnknownType
	}
	if r.err != nil {
		core.ReleaseMsgOwners(msg)
		return nil, r.err
	}
	return msg, nil
}

// releaseShardMsgOwners drops the frame references of partially decoded
// batch entries when a later entry fails to decode.
func releaseShardMsgOwners(msgs []proto.ShardMsg) {
	for _, sm := range msgs {
		core.ReleaseMsgOwners(sm.Msg)
	}
}

// decodeTagged parses one [2B shard][1B type][4B len][payload] entry — the
// body of a tShard message and the element of a tShardBatch.
func decodeTagged(r *reader, owner *refbuf.Buf) (proto.ShardMsg, error) {
	shard := r.u16()
	if r.err != nil {
		return proto.ShardMsg{}, r.err
	}
	if r.off+5 > len(r.b) {
		return proto.ShardMsg{}, io.ErrUnexpectedEOF
	}
	it := r.b[r.off]
	// The encoders wrap exactly one level; a nested envelope only occurs in
	// a corrupt or hostile stream, and recursing on it unboundedly would let
	// a 16 MB frame blow the stack. MUpdate and the view-log pair are
	// node-level routing, and the client session pair never rides the mesh:
	// shard-tagged ones are equally hostile.
	if it == tShard || it == tShardBatch || it == tCredit || it == tMUpdate ||
		it == tViewLogReq || it == tViewLogResp || it == tClientReq || it == tClientResp ||
		it == tEpochGossip {
		return proto.ShardMsg{}, ErrUnknownType
	}
	n := int(binary.LittleEndian.Uint32(r.b[r.off+1:]))
	r.off += 5
	if n < 0 || r.off+n > len(r.b) {
		return proto.ShardMsg{}, io.ErrUnexpectedEOF
	}
	inner, err := decodeMsg(it, r.b[r.off:r.off+n], owner)
	if err != nil {
		return proto.ShardMsg{}, err
	}
	r.off += n
	return proto.ShardMsg{Shard: shard, Msg: inner}, nil
}

// Stats counts link-level events.
type Stats struct {
	FramesSent, MsgsSent uint64
	FramesRecv, MsgsRecv uint64
	BatchedMsgs          uint64 // messages that shipped with company
	CreditStalls         uint64 // sends that waited for credits
	ExplicitCreditsSent  uint64
	// PiggybackedGrants counts the ExplicitCreditsSent subset that rode an
	// outgoing data frame instead of paying for a standalone credit frame.
	PiggybackedGrants        uint64
	ImplicitCreditsRecovered uint64
	// CoalescedSent/CoalescedRecv count the inner messages carried inside
	// ShardBatch envelopes; the envelope itself counts once in MsgsSent or
	// MsgsRecv, matching its single flow-control credit.
	CoalescedSent, CoalescedRecv uint64
	// CreditsRefunded counts credits returned on Send error paths (link
	// closed while waiting, or encode failure after the debit).
	CreditsRefunded uint64
}

// LinkConfig tunes one peer link.
type LinkConfig struct {
	// Credits is the send window (receiver buffer slots). 0 disables flow
	// control.
	Credits int
	// ExplicitEvery makes the receiver grant an explicit credit update
	// after that many received one-way messages (see IsOneWay). 0 disables.
	ExplicitEvery int
	// IsOneWay marks credit-consuming messages that never draw a response
	// (e.g. a VAL, or a coalesced batch of them): only those count toward
	// ExplicitEvery. Requests like INVs are excluded — their responses
	// repay them implicitly, and granting for them too would repay every
	// credit twice, collapsing the flow-control window into a no-op. Nil
	// counts every received message (correct only when nothing is repaid
	// implicitly).
	IsOneWay func(msg any) bool
	// IsResponse marks message types that implicitly return one credit to
	// the peer that sent the request (e.g. an ACK repays an INV). Responses
	// do not consume send credits themselves: the requester reserved their
	// buffer space when it spent a credit on the request. A ShardBatch is a
	// response (consumes no credit) only when every inner message is one;
	// on receive each inner response repays one credit individually.
	IsResponse func(msg any) bool
	// CreditReturn, when set, receives implicit credit repayments instead
	// of this link. A TCP mesh sets it so that a response arriving on an
	// inbound-only connection repays the outbound link that actually spent
	// the credit (see transport.Mesh); nil keeps repayments local, which is
	// correct when one link both sends and receives.
	CreditReturn func(n int)
	// CreditCost prices a credit-consuming message in send-window slots;
	// nil charges 1. A coalesced batch of requests (INVs) costs one slot
	// per inner request — each is repaid individually by its response —
	// while a batch of one-way messages (VALs) still costs one, matching
	// the receiver counting the whole batch once toward ExplicitEvery.
	// Responses are never charged, regardless of this hook. Costs above the
	// window size are clamped so an oversized batch cannot deadlock the
	// sender.
	CreditCost func(msg any) int
}

// Link is one flow-controlled, batching connection to a peer.
type Link struct {
	cfg LinkConfig

	mu       sync.Mutex
	sendCond *sync.Cond
	pending  []byte // encoded, unsent messages
	nPending int
	credits  int
	closed   bool
	flushing bool
	// pendingGrant holds explicit credits waiting to piggyback on the next
	// outgoing frame (deferred by onReceive while a flush is in flight
	// instead of paying for a standalone credit frame).
	pendingGrant int

	// wmu serializes socket writes. It is never held together with mu, so a
	// slow peer stalls only the flusher — Sends with credits keep queueing.
	wmu sync.Mutex
	w   *bufio.Writer // guarded by wmu
	raw io.Writer     // the unbuffered stream, for vectored large-frame writes

	recvSinceCredit int
	stats           Stats
	statsMu         sync.Mutex
}

// NewLink wraps one side of a stream. Call Serve with the read side to pump
// incoming messages.
func NewLink(w io.Writer, cfg LinkConfig) *Link {
	l := &Link{cfg: cfg, w: bufio.NewWriterSize(w, 64<<10), raw: w, credits: cfg.Credits}
	l.sendCond = sync.NewCond(&l.mu)
	return l
}

// Send encodes msg and queues it; it ships in the next batch. Blocks only
// when flow-control credits are exhausted. A coalesced one-way batch costs
// one credit for the whole frame — that is the point of coalescing — while
// a request batch is priced per inner request via cfg.CreditCost.
//
// Send consumes msg's pooled-buffer value references (core.INV.Owner and
// friends) on every path, success or failure: the encoder copies value
// bytes into the send buffer synchronously, so the references are spent the
// moment Send returns and callers must never release them afterward. For
// the same reason a message holding frame references must be Sent at most
// once (Broadcast is for owner-less messages).
func (l *Link) Send(msg any) error {
	cost := 0
	if l.cfg.Credits > 0 && !(l.cfg.IsResponse != nil && l.cfg.IsResponse(msg)) {
		cost = 1
		if l.cfg.CreditCost != nil {
			if c := l.cfg.CreditCost(msg); c > 1 {
				cost = c
			}
		}
		if cost > l.cfg.Credits {
			cost = l.cfg.Credits
		}
	}
	l.mu.Lock()
	if cost > 0 {
		stalled := false
		for l.credits < cost && !l.closed {
			stalled = true
			l.sendCond.Wait()
		}
		if stalled {
			l.bumpStat(func(s *Stats) { s.CreditStalls++ })
		}
	}
	if l.closed {
		// No debit happened (or the closed-wakeup interrupted the wait
		// before one): nothing to refund. The value references are still
		// consumed — Send owns them unconditionally.
		l.mu.Unlock()
		core.ReleaseMsgOwners(msg)
		return errors.New("wings: link closed")
	}
	l.credits -= cost
	// appendMsg returns nil on error: keep the old buffer so an encode
	// failure cannot wipe messages already queued by other senders.
	encoded, err := appendMsg(l.pending, msg)
	if err != nil {
		if cost > 0 {
			// The message never shipped; give the credits back so the window
			// does not shrink permanently on encode errors.
			l.credits += cost
			l.bumpStat(func(s *Stats) { s.CreditsRefunded += uint64(cost) })
			l.sendCond.Signal()
		}
		l.mu.Unlock()
		// Exactly-once consumption on the failure path too: nothing was
		// queued, so this is the last party holding the references.
		core.ReleaseMsgOwners(msg)
		return err
	}
	l.pending = encoded
	l.nPending++
	if sb, ok := msg.(proto.ShardBatch); ok {
		l.bumpStat(func(s *Stats) { s.CoalescedSent += uint64(len(sb.Msgs)) })
	}
	l.kickLocked()
	l.mu.Unlock()
	// The bytes are in the send buffer; the frame references are spent.
	core.ReleaseMsgOwners(msg)
	return nil
}

// kickLocked starts the flusher if idle. Batching is opportunistic: while a
// flush is in flight, further Sends pile into pending and ship together.
func (l *Link) kickLocked() {
	if l.flushing || (l.nPending == 0 && l.pendingGrant == 0) {
		return
	}
	l.flushing = true
	go l.flushLoop()
}

// maxFrameMsgs caps one frame at the header's 2-byte message count, leaving
// room for a piggybacked credit grant. Credit-exempt responses can pile into
// pending without bound while a flush is wedged on a slow peer, so an
// over-full buffer must ship as several frames — truncating the count to
// uint16 would make the receiver skip the overflowed messages silently.
const maxFrameMsgs = 0xFFFF - 1

func (l *Link) flushLoop() {
	for {
		l.mu.Lock()
		grant := l.pendingGrant
		if grant > 0xFFFF {
			grant = 0xFFFF // the grant payload is a u16; carry the rest over
		}
		if (l.nPending == 0 && grant == 0) || l.closed {
			l.flushing = false
			l.mu.Unlock()
			return
		}
		l.pendingGrant -= grant
		body := l.pending
		count := l.nPending
		if count > maxFrameMsgs {
			// Walk the [1B type][4B len][payload] encoding to the split
			// point; the remainder stays queued for the next iteration. The
			// three-index slice keeps the grant append below from clobbering
			// the retained tail, which shares the backing array.
			off := 0
			for i := 0; i < maxFrameMsgs; i++ {
				off += 5 + int(binary.LittleEndian.Uint32(body[off+1:]))
			}
			l.pending = body[off:]
			l.nPending = count - maxFrameMsgs
			body = body[:off:off]
			count = maxFrameMsgs
		} else {
			l.pending = nil
			l.nPending = 0
		}
		l.mu.Unlock()

		wireCount := count
		if grant > 0 {
			// Piggybacked grant: one more message in the frame. Receivers
			// process tCredit entries inline wherever they appear, so this
			// is wire-compatible with a standalone credit frame. The stat is
			// counted here — where the grant provably ships — and only as
			// piggybacked when it actually rides a data frame.
			body = append(body, tCredit, 2, 0, 0, 0, byte(grant), byte(grant>>8))
			wireCount++
			l.bumpStat(func(s *Stats) {
				s.ExplicitCreditsSent++
				if count > 0 {
					s.PiggybackedGrants++
				}
			})
		}

		var hdr [6]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)+2))
		binary.LittleEndian.PutUint16(hdr[4:], uint16(wireCount))
		// Count the frame before shipping it so a peer that has received the
		// messages can never observe sender stats that miss them. Stats
		// track protocol messages only: a piggybacked grant counts toward
		// the credit counters (see onReceive), not MsgsSent, and a
		// grant-only frame counts like a standalone credit frame (not at
		// all), keeping MsgsSent == messages Sent.
		l.bumpStat(func(s *Stats) {
			if count > 0 {
				s.FramesSent++
				s.MsgsSent += uint64(count)
			}
			if count > 1 {
				s.BatchedMsgs += uint64(count)
			}
		})
		// Socket I/O happens under wmu, not mu: a slow peer must not stall
		// Sends that still have credits — they keep piling into pending and
		// ship in the next batch when this write completes.
		l.wmu.Lock()
		err := l.writeFrame(hdr, body)
		l.wmu.Unlock()
		if err != nil {
			l.Close()
			return
		}
	}
}

// vectoredMin is the body size past which a frame bypasses the bufio copy:
// any buffered bytes are flushed first (frame order), then header and body
// go to the kernel as one gathered write — writev on a net.Conn, two plain
// writes elsewhere. Small frames keep the bufio path, where the copy is
// cheaper than the extra syscall.
const vectoredMin = 8 << 10

// writeFrame ships one frame; caller holds wmu.
func (l *Link) writeFrame(hdr [6]byte, body []byte) error {
	if len(body) >= vectoredMin {
		if err := l.w.Flush(); err != nil {
			return err
		}
		bufs := net.Buffers{hdr[:], body}
		_, err := bufs.WriteTo(l.raw)
		return err
	}
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(body); err != nil {
		return err
	}
	return l.w.Flush()
}

// sendCreditFrame grants n credits to the peer.
func (l *Link) sendCreditFrame(n int) {
	var frame [13]byte
	binary.LittleEndian.PutUint32(frame[:], 9) // count(2) + type(1) + len(4) + grant(2)
	binary.LittleEndian.PutUint16(frame[4:], 1)
	frame[6] = tCredit
	binary.LittleEndian.PutUint32(frame[7:], 2)
	binary.LittleEndian.PutUint16(frame[11:], uint16(n))
	l.wmu.Lock()
	l.w.Write(frame[:])
	l.w.Flush()
	l.wmu.Unlock()
	l.bumpStat(func(s *Stats) { s.ExplicitCreditsSent++ })
}

// framePool recycles inbound frame buffers for the copying decode paths
// (ServeFrames): there the decoder copies every variable-length payload out
// of the frame, so nothing escapes it and the buffer can be reused as soon
// as the frame's messages have been dispatched.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// frameBufs recycles the refcounted frame buffers of the link serve path,
// where decoded INV values alias the frame (see decodeMsg): the serve loop
// holds the initial reference for the frame's duration and each zero-copy
// value holds its own, so the buffer returns to the pool only when the
// store (or a drop path) releases the last adopted value.
var frameBufs = refbuf.NewPool()

// Serve reads frames from rd and dispatches messages to fn until error/EOF.
func (l *Link) Serve(rd io.Reader, fn func(msg any)) error {
	br := bufio.NewReaderSize(rd, 64<<10)
	for {
		if err := l.serveFrame(br, fn); err != nil {
			return err
		}
	}
}

// serveFrame reads and dispatches one frame. The frame buffer is refcounted:
// the serve loop's own reference lasts exactly the frame's duration, while
// zero-copy INV values decoded out of it carry their own references, so a
// frame with adopted values outlives this call and is pooled again only when
// the store releases the last one.
func (l *Link) serveFrame(br *bufio.Reader, fn func(msg any)) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 2 || n > maxFrame {
		return fmt.Errorf("wings: bad frame length %d", n)
	}
	fb := frameBufs.Get(n)
	defer fb.Release()
	frame := fb.Bytes()
	if _, err := io.ReadFull(br, frame); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint16(frame[:2]))
	off := 2
	l.bumpStat(func(s *Stats) { s.FramesRecv++ })
	for i := 0; i < count; i++ {
		if off+5 > len(frame) {
			return io.ErrUnexpectedEOF
		}
		t := frame[off]
		bodyLen := int(binary.LittleEndian.Uint32(frame[off+1:]))
		off += 5
		if bodyLen < 0 || off+bodyLen > len(frame) {
			return io.ErrUnexpectedEOF
		}
		body := frame[off : off+bodyLen]
		off += bodyLen
		if t == tCredit {
			if bodyLen < 2 {
				return io.ErrUnexpectedEOF
			}
			grant := int(binary.LittleEndian.Uint16(body))
			l.addCredits(grant)
			continue
		}
		msg, err := decodeMsg(t, body, fb)
		if err != nil {
			return err
		}
		l.bumpStat(func(s *Stats) {
			s.MsgsRecv++
			if sb, ok := msg.(proto.ShardBatch); ok {
				s.CoalescedRecv += uint64(len(sb.Msgs))
			}
		})
		l.onReceive(msg)
		fn(msg)
	}
	return nil
}

// onReceive applies flow-control accounting for an incoming message.
// Implicit repayments go through cfg.CreditReturn when set — in a TCP mesh
// the link that spent the credit (the outbound one) is usually not the link
// the response arrives on.
func (l *Link) onReceive(msg any) {
	if n := l.implicitCredits(msg); n > 0 {
		if l.cfg.CreditReturn != nil {
			l.cfg.CreditReturn(n)
		} else {
			l.RepayCredits(n)
		}
	}
	if l.cfg.ExplicitEvery > 0 && (l.cfg.IsOneWay == nil || l.cfg.IsOneWay(msg)) {
		l.mu.Lock()
		l.recvSinceCredit++
		grant, piggy := 0, false
		if l.recvSinceCredit >= l.cfg.ExplicitEvery {
			l.recvSinceCredit = 0
			grant = l.cfg.ExplicitEvery
			if l.flushing || l.nPending > 0 {
				// A data frame is already on its way out: ride it instead
				// of paying for a standalone credit frame. The flusher
				// drains pendingGrant with (or, if its queue just emptied,
				// right after) the queued messages.
				l.pendingGrant += grant
				piggy = true
			}
		}
		l.mu.Unlock()
		if grant > 0 && !piggy {
			go l.sendCreditFrame(grant)
		}
	}
}

// implicitCredits counts the credit repayments msg carries: one for a plain
// response, one per response inside a coalesced batch (each inner ACK repays
// the INV that was sent — and debited — individually).
func (l *Link) implicitCredits(msg any) int {
	if l.cfg.IsResponse == nil {
		return 0
	}
	if sb, ok := msg.(proto.ShardBatch); ok {
		n := 0
		for _, sm := range sb.Msgs {
			if l.cfg.IsResponse(sm) {
				n++
			}
		}
		return n
	}
	if l.cfg.IsResponse(msg) {
		return 1
	}
	return 0
}

// RepayCredits returns n implicitly recovered credits to this link's send
// window. The mesh calls it on the outbound link when responses arrive on a
// different connection than the requests left on.
func (l *Link) RepayCredits(n int) {
	if n <= 0 {
		return
	}
	l.addCredits(n)
	l.bumpStat(func(s *Stats) { s.ImplicitCreditsRecovered += uint64(n) })
}

func (l *Link) addCredits(n int) {
	if l.cfg.Credits == 0 {
		return
	}
	l.mu.Lock()
	l.credits += n
	if l.credits > l.cfg.Credits {
		l.credits = l.cfg.Credits
	}
	l.mu.Unlock()
	l.sendCond.Broadcast()
}

// Close shuts the link; blocked senders return.
func (l *Link) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.sendCond.Broadcast()
}

// Stats snapshots link counters.
func (l *Link) Stats() Stats {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	return l.stats
}

func (l *Link) bumpStat(fn func(*Stats)) {
	l.statsMu.Lock()
	fn(&l.stats)
	l.statsMu.Unlock()
}

// Broadcast sends msg on every link; unicast fan-out, as Wings implements
// software broadcast over UD sends.
func Broadcast(links []*Link, msg any) error {
	for _, l := range links {
		if err := l.Send(msg); err != nil {
			return err
		}
	}
	return nil
}

// AppendFrame appends one wire frame carrying msgs to buf and returns the
// extended buffer. This is the batch encoder of the client serving layer's
// per-session response coalescer: responses that accumulated while a flush
// was in flight ship as one frame — one syscall, one header — exactly like
// the link flusher's opportunistic batching. At most maxFrameMsgs messages
// fit one frame (the header's count is 16-bit); callers split larger batches.
func AppendFrame(buf []byte, msgs ...any) ([]byte, error) {
	if len(msgs) == 0 || len(msgs) > maxFrameMsgs {
		return nil, fmt.Errorf("wings: frame of %d messages", len(msgs))
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0) // length + count placeholder
	for _, m := range msgs {
		var err error
		buf, err = appendMsg(buf, m)
		if err != nil {
			return nil, err
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	binary.LittleEndian.PutUint16(buf[start+4:], uint16(len(msgs)))
	return buf, nil
}

// ServeFrames reads frames from rd and dispatches each decoded message to fn
// until read error, EOF, decode failure, or fn returning a non-nil error
// (which aborts the stream and is returned). It is Link.Serve without a
// link: no flow-control accounting, no credit frames — the client serving
// layer does admission at the session layer, and a tCredit entry from a
// client is meaningless, so it is rejected like any other protocol
// violation. The same hostile-input discipline as Link.Serve applies: frame
// lengths are bounded, per-message lengths validated against the frame, and
// decoded payloads are copied out (nil decode owner) so the pooled frame
// buffer never escapes.
func ServeFrames(rd io.Reader, fn func(msg any) error) error {
	br := bufio.NewReaderSize(rd, 64<<10)
	for {
		if err := serveRawFrame(br, fn); err != nil {
			return err
		}
	}
}

// serveRawFrame reads and dispatches one frame for ServeFrames, holding a
// pooled buffer for exactly its duration.
func serveRawFrame(br *bufio.Reader, fn func(msg any) error) error {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 2 || n > maxFrame {
		return fmt.Errorf("wings: bad frame length %d", n)
	}
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	if cap(*bufp) < n {
		*bufp = make([]byte, n)
	}
	frame := (*bufp)[:n]
	if _, err := io.ReadFull(br, frame); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint16(frame[:2]))
	off := 2
	for i := 0; i < count; i++ {
		if off+5 > len(frame) {
			return io.ErrUnexpectedEOF
		}
		t := frame[off]
		bodyLen := int(binary.LittleEndian.Uint32(frame[off+1:]))
		off += 5
		if bodyLen < 0 || off+bodyLen > len(frame) {
			return io.ErrUnexpectedEOF
		}
		msg, err := decodeMsg(t, frame[off:off+bodyLen], nil)
		if err != nil {
			return err
		}
		off += bodyLen
		if err := fn(msg); err != nil {
			return err
		}
	}
	return nil
}

// AppendClientResps appends one wire frame carrying resps to buf — the
// monomorphic sibling of AppendFrame for the serving layer's flusher: no
// []any boxing per response, so a steady-state flush into a reused buffer
// performs zero allocations. The wire bytes are identical to
// AppendFrame(buf, resps...). At most MaxFrameMsgs responses fit one frame;
// callers split larger batches.
func AppendClientResps(buf []byte, resps []proto.ClientResp) ([]byte, error) {
	if len(resps) == 0 || len(resps) > maxFrameMsgs {
		return nil, fmt.Errorf("wings: frame of %d messages", len(resps))
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0) // length + count placeholder
	for _, m := range resps {
		if m.Status > proto.NotOperational {
			return nil, ErrBadEnum
		}
		s := len(buf)
		buf = append(buf, tClientResp, 0, 0, 0, 0)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = append(buf, byte(m.Status))
		buf = appendBytes(buf, m.Value)
		binary.LittleEndian.PutUint32(buf[s+1:], uint32(len(buf)-s-5))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	binary.LittleEndian.PutUint16(buf[start+4:], uint16(len(resps)))
	return buf, nil
}

// Encode serializes a single message into a standalone frame (tests, and
// the text protocol of cmd/hermes-node uses it for loopback checks).
func Encode(msg any) ([]byte, error) {
	body, err := appendMsg(nil, msg)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 6, 6+len(body))
	binary.LittleEndian.PutUint32(out, uint32(len(body)+2))
	binary.LittleEndian.PutUint16(out[4:], 1)
	return append(out, body...), nil
}

// DecodeOne parses a single-message frame produced by Encode.
func DecodeOne(frame []byte) (any, error) {
	if len(frame) < 11 {
		return nil, io.ErrUnexpectedEOF
	}
	t := frame[6]
	n := int(binary.LittleEndian.Uint32(frame[7:]))
	if 11+n > len(frame) {
		return nil, io.ErrUnexpectedEOF
	}
	return decodeMsg(t, frame[11:11+n], nil)
}
