package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
)

// shardedMeshGroup stands up n live W-shard Hermes replicas over loopback
// TCP. Every replication message crosses the wire inside a ShardMsg
// envelope under the wings credit discipline.
func shardedMeshGroup(t *testing.T, n, w int) ([]*cluster.ShardedNode, []*Mesh, func()) {
	t.Helper()
	addrs := make(map[proto.NodeID]string)
	meshes := make([]*Mesh, n)
	for i := 0; i < n; i++ {
		m, err := NewMesh(proto.NodeID(i), map[proto.NodeID]string{proto.NodeID(i): "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
		addrs[proto.NodeID(i)] = m.Addr()
	}
	for _, m := range meshes {
		m.addrs = addrs
	}
	members := make([]proto.NodeID, n)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: members}
	nodes := make([]*cluster.ShardedNode, n)
	for i := 0; i < n; i++ {
		nodes[i] = cluster.NewShardedNode(cluster.ShardedConfig{
			ID: proto.NodeID(i), View: view, MLT: 50 * time.Millisecond, Shards: w,
		}, meshes[i])
	}
	return nodes, meshes, func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, m := range meshes {
			m.Close()
		}
	}
}

func TestShardMsgOverTCP(t *testing.T) {
	const w = 4
	nodes, _, done := shardedMeshGroup(t, 3, w)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Touch every shard from every coordinator; converge everywhere.
	for i := 0; i < 4*w; i++ {
		k := proto.Key(i + 1)
		val := proto.Value(fmt.Sprintf("v%d", i))
		if err := nodes[i%3].Write(ctx, k, val); err != nil {
			t.Fatalf("write %d (shard %d): %v", i, proto.ShardOf(k, w), err)
		}
		for _, n := range nodes {
			got, err := n.Read(ctx, k)
			if err != nil || string(got) != string(val) {
				t.Fatalf("node %d key %d: %q %v", n.ID(), k, got, err)
			}
		}
	}
}

// TestShardMsgTCPConcurrentWriters drives enough shard-tagged traffic
// through the links to exercise batching and the credit window, from
// concurrent writers on every node.
func TestShardMsgTCPConcurrentWriters(t *testing.T) {
	const w = 4
	nodes, _, done := shardedMeshGroup(t, 3, w)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for ni, n := range nodes {
		wg.Add(1)
		go func(ni int, n *cluster.ShardedNode) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				k := proto.Key(j%16 + 1)
				if err := n.Write(ctx, k, proto.Value(fmt.Sprintf("n%d-%d", ni, j))); err != nil {
					t.Errorf("node %d write %d: %v", ni, j, err)
					return
				}
			}
		}(ni, n)
	}
	wg.Wait()
	for k := proto.Key(1); k <= 16; k++ {
		ref, err := nodes[0].Read(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes[1:] {
			v, err := n.Read(ctx, k)
			if err != nil || string(v) != string(ref) {
				t.Fatalf("divergence on key %d: node %d has %q, node 0 has %q (%v)",
					k, n.ID(), v, ref, err)
			}
		}
	}
}

// TestShardMsgTCPReconnect kills one replica's mesh mid-run and restarts it
// on the same address: the peers' links die, lazy redial plus the shard
// engines' retransmission finish subsequent writes.
func TestShardMsgTCPReconnect(t *testing.T) {
	const w = 2
	nodes, meshes, done := shardedMeshGroup(t, 2, w)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := nodes[0].Write(ctx, 1, proto.Value("before")); err != nil {
		done()
		t.Fatal(err)
	}

	// Crash-restart node 1's transport and engine on the same port.
	addr1 := meshes[1].Addr()
	nodes[1].Close()
	meshes[1].Close()
	addrs := map[proto.NodeID]string{0: meshes[0].Addr(), 1: addr1}
	var mesh1b *Mesh
	var err error
	for i := 0; i < 50; i++ { // the freed port can linger briefly
		mesh1b, err = NewMesh(1, addrs)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		done()
		t.Fatalf("rebind %s: %v", addr1, err)
	}
	view := proto.View{Epoch: 1, Members: []proto.NodeID{0, 1}}
	node1b := cluster.NewShardedNode(cluster.ShardedConfig{
		ID: 1, View: view, MLT: 50 * time.Millisecond, Shards: w,
	}, mesh1b)
	defer func() {
		node1b.Close()
		mesh1b.Close()
		nodes[0].Close()
		meshes[0].Close()
	}()

	// Writes on both shards commit across the re-established links.
	for k := proto.Key(2); k <= 5; k++ {
		if err := nodes[0].Write(ctx, k, proto.Value("after")); err != nil {
			t.Fatalf("write key %d after reconnect: %v", k, err)
		}
		if v, err := node1b.Read(ctx, k); err != nil || string(v) != "after" {
			t.Fatalf("restarted node read key %d: %q %v", k, v, err)
		}
	}
}
