package transport

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
)

// meshGroup stands up n live Hermes replicas over loopback TCP.
func meshGroup(t *testing.T, n int) ([]*cluster.Node, func()) {
	t.Helper()
	// First bind listeners on :0 to learn addresses.
	addrs := make(map[proto.NodeID]string)
	meshes := make([]*Mesh, n)
	for i := 0; i < n; i++ {
		m, err := NewMesh(proto.NodeID(i), map[proto.NodeID]string{proto.NodeID(i): "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
		addrs[proto.NodeID(i)] = m.Addr()
	}
	// Publish the full address map.
	for _, m := range meshes {
		m.addrs = addrs
	}
	members := make([]proto.NodeID, n)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: members}
	nodes := make([]*cluster.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = cluster.NewNode(cluster.NodeConfig{
			ID: proto.NodeID(i), View: view, MLT: 50 * time.Millisecond,
		}, meshes[i])
	}
	return nodes, func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, m := range meshes {
			m.Close()
		}
	}
}

func TestTCPWriteReadAcrossNodes(t *testing.T) {
	nodes, done := meshGroup(t, 3)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := nodes[0].Write(ctx, 42, proto.Value("over-tcp")); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		v, err := n.Read(ctx, 42)
		if err != nil || string(v) != "over-tcp" {
			t.Fatalf("node %d: %q %v", i, v, err)
		}
	}
}

func TestTCPManyWrites(t *testing.T) {
	nodes, done := meshGroup(t, 3)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 100; i++ {
		if err := nodes[i%3].Write(ctx, proto.Key(i%10), proto.Value{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for k := proto.Key(0); k < 10; k++ {
		ref, err := nodes[0].Read(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 3; i++ {
			v, err := nodes[i].Read(ctx, k)
			if err != nil || string(v) != string(ref) {
				t.Fatalf("node %d key %d: %q vs %q (%v)", i, k, v, ref, err)
			}
		}
	}
}

func TestTCPFAA(t *testing.T) {
	nodes, done := meshGroup(t, 3)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	total := int64(0)
	for i := 0; i < 20; i++ {
		for {
			_, err := nodes[i%3].FAA(ctx, 7, 2)
			if err == nil {
				total += 2
				break
			}
			if err != cluster.ErrAborted {
				t.Fatal(err)
			}
		}
	}
	v, err := nodes[1].Read(ctx, 7)
	if err != nil || proto.DecodeInt64(v) != total {
		t.Fatalf("counter=%d want %d (%v)", proto.DecodeInt64(v), total, err)
	}
}

func TestMeshSurvivesUnreachablePeer(t *testing.T) {
	// A mesh with a bogus peer address: sends are dropped, not fatal.
	m, err := NewMesh(0, map[proto.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Send(0, 1, struct{}{}) // must not panic or block forever
}
