// Package transport provides the TCP mesh transport for real deployments
// (cmd/hermes-node): every node listens on its address and maintains one
// wings.Link per peer, with lazy dialing, reconnection, and the Hermes
// credit discipline (ACKs repay INVs implicitly; VALs are paid back by
// explicit credit updates — §4.2).
package transport

import (
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/wings"
)

// Mesh is a TCP transport implementing cluster.Transport for one local
// node.
type Mesh struct {
	self  proto.NodeID
	addrs map[proto.NodeID]string
	cfg   wings.LinkConfig

	mu      sync.Mutex
	links   map[proto.NodeID]*wings.Link
	conns   map[net.Conn]struct{}
	deliver func(from proto.NodeID, msg any)
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup
}

// DefaultLinkConfig applies the paper's credit discipline: responses repay
// implicitly; only one-way traffic (VALs) is paid back by explicit credit
// frames. Granting for implicitly-repaid requests too would return every
// credit twice.
func DefaultLinkConfig() wings.LinkConfig {
	return wings.LinkConfig{
		Credits:       1024,
		ExplicitEvery: 64,
		IsResponse:    isResponse,
		IsOneWay:      isOneWay,
		CreditCost:    creditCost,
	}
}

// creditCost prices a credit-consuming message: a coalesced request batch
// (INVs) costs one send-window slot per inner request, because each inner
// INV occupies receiver buffer space and is repaid individually by its ACK
// — charging the batch a single credit would let W shards overrun the
// window W-fold and collect W repayments for one debit. One-way batches
// (VALs) keep the PR 2 pricing: one credit per frame, repaid by explicit
// grants that count the batch once (see isOneWay). Only consulted for
// non-responses.
func creditCost(m any) int {
	sb, ok := m.(proto.ShardBatch)
	if !ok || isOneWay(sb) {
		return 1
	}
	n := 0
	for _, sm := range sb.Msgs {
		if !isResponse(sm.Msg) {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// isOneWay marks credit-consuming messages that draw no response: VALs,
// bare or shard-tagged, and coalesced batches of them. A batch is one-way
// only when every inner message is — with INVs now coalescable, a
// non-response batch may be a request batch, and counting it toward
// explicit grants would repay credits its ACKs already repay implicitly.
// Requests that a response will repay — INVs, MChecks, ChunkReqs — are
// deliberately excluded. A request dropped without a response (stale epoch
// during reconfiguration) leaks its credit until the connection is rebuilt,
// which node failure — the common cause of epoch change — does anyway.
func isOneWay(m any) bool {
	if sb, ok := m.(proto.ShardBatch); ok {
		for _, sm := range sb.Msgs {
			if !isOneWay(sm.Msg) {
				return false
			}
		}
		return len(sb.Msgs) > 0
	}
	if sm, ok := m.(proto.ShardMsg); ok {
		m = sm.Msg
	}
	switch m.(type) {
	case core.VAL, proto.MUpdate, proto.EpochGossip:
		// All consume a credit and draw no response; without counting them
		// toward explicit grants each one would shrink the send window
		// permanently (MUpdates are rare, but reconfiguration storms are
		// exactly when the window must not erode — and epoch gossip is
		// periodic, so an eroding window would wedge the mesh in steady
		// state).
		return true
	}
	return false
}

// isResponse implements the credit discipline's response classification. A
// shard-tagged response repays credit the same as a bare one: the envelope
// is routing, not flow-control semantics. A coalesced batch is a response —
// and consumes no send credit — only when every inner message is one; wings
// counts the inner responses individually for implicit repayment.
func isResponse(m any) bool {
	if sb, ok := m.(proto.ShardBatch); ok {
		for _, sm := range sb.Msgs {
			if !isResponse(sm.Msg) {
				return false
			}
		}
		return len(sb.Msgs) > 0
	}
	if sm, ok := m.(proto.ShardMsg); ok {
		m = sm.Msg
	}
	if _, ok := m.(proto.ViewLogResp); ok {
		// A view-log answer repays the ViewLogReq's credit, like any other
		// response; the requester reserved the buffer slot when it spent a
		// credit on the fetch.
		return true
	}
	return core.IsResponseMsg(m)
}

// NewMesh starts a mesh node listening on addrs[self].
func NewMesh(self proto.NodeID, addrs map[proto.NodeID]string) (*Mesh, error) {
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		self:  self,
		addrs: addrs,
		cfg:   DefaultLinkConfig(),
		links: make(map[proto.NodeID]*wings.Link),
		conns: make(map[net.Conn]struct{}),
		ln:    ln,
	}
	m.wg.Add(1)
	go m.accept()
	return m, nil
}

// Addr returns the listener's address (useful with ":0").
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

func (m *Mesh) accept() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serveConn(conn)
		}()
	}
}

// track registers a connection for teardown on Close; returns false if the
// mesh is already closed.
func (m *Mesh) track(conn net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[conn] = struct{}{}
	return true
}

func (m *Mesh) untrack(conn net.Conn) {
	m.mu.Lock()
	delete(m.conns, conn)
	m.mu.Unlock()
}

// serveConn handles an inbound connection: the peer announces its ID in a
// 1-byte hello, then wings frames flow.
func (m *Mesh) serveConn(conn net.Conn) {
	defer conn.Close()
	if !m.track(conn) {
		return
	}
	defer m.untrack(conn)
	var hello [1]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hello[:]); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	from := proto.NodeID(hello[0])
	// This link only ever writes credit frames; responses read here repaid
	// credits that the *outbound* link to the peer spent, so route them
	// there (looked up per repayment — it survives reconnects).
	cfg := m.cfg
	cfg.CreditReturn = func(n int) { m.repayCredits(from, n) }
	l := wings.NewLink(conn, cfg)
	l.Serve(conn, func(msg any) {
		m.mu.Lock()
		fn := m.deliver
		m.mu.Unlock()
		if fn != nil {
			fn(from, msg)
		} else {
			// No consumer registered yet: the drop must spend the frame
			// references decode retained for the message's values.
			core.ReleaseMsgOwners(msg)
		}
	})
}

// link returns (dialing if needed) the outbound link to a peer.
func (m *Mesh) link(to proto.NodeID) *wings.Link {
	m.mu.Lock()
	if l := m.links[to]; l != nil {
		m.mu.Unlock()
		return l
	}
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()

	conn, err := net.DialTimeout("tcp", m.addrs[to], 2*time.Second)
	if err != nil {
		return nil // unreachable peer: message lost; protocol retransmits
	}
	if _, err := conn.Write([]byte{byte(m.self)}); err != nil {
		conn.Close()
		return nil
	}
	if !m.track(conn) {
		conn.Close()
		return nil
	}
	cfg := m.cfg
	// Route repayments through the mesh here too: after a reconnect the
	// registered outbound link may be a newer one than this.
	cfg.CreditReturn = func(n int) { m.repayCredits(to, n) }
	l := wings.NewLink(conn, cfg)
	// Outbound connections also carry return traffic (credit frames).
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer conn.Close()
		defer m.untrack(conn)
		l.Serve(conn, func(msg any) {
			m.mu.Lock()
			fn := m.deliver
			m.mu.Unlock()
			if fn != nil {
				fn(to, msg)
			} else {
				core.ReleaseMsgOwners(msg)
			}
		})
		m.mu.Lock()
		if m.links[to] == l {
			delete(m.links, to) // reconnect lazily on next Send
		}
		m.mu.Unlock()
	}()
	m.mu.Lock()
	if existing := m.links[to]; existing != nil {
		m.mu.Unlock()
		l.Close()
		conn.Close()
		return existing
	}
	m.links[to] = l
	m.mu.Unlock()
	return l
}

// repayCredits routes n implicit credit repayments to the outbound link for
// peer — the link whose Sends spent them — regardless of which connection
// the responses arrived on. With no outbound link (nothing was spent, or it
// died) the repayment is moot and dropped; a fresh link starts with a full
// window anyway.
func (m *Mesh) repayCredits(peer proto.NodeID, n int) {
	m.mu.Lock()
	l := m.links[peer]
	m.mu.Unlock()
	if l != nil {
		l.RepayCredits(n)
	}
}

// Send implements cluster.Transport. Like wings.Link.Send it consumes
// msg's pooled-buffer value references on every path, including the
// unreachable-peer drop.
func (m *Mesh) Send(from, to proto.NodeID, msg any) {
	if l := m.link(to); l != nil {
		l.Send(msg)
	} else {
		core.ReleaseMsgOwners(msg)
	}
}

// SetDeliver implements cluster.Transport.
func (m *Mesh) SetDeliver(id proto.NodeID, fn func(from proto.NodeID, msg any)) {
	m.mu.Lock()
	m.deliver = fn
	m.mu.Unlock()
}

// Close implements cluster.Transport.
func (m *Mesh) Close() error {
	m.mu.Lock()
	m.closed = true
	links := m.links
	m.links = map[proto.NodeID]*wings.Link{}
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.conns = map[net.Conn]struct{}{}
	m.mu.Unlock()
	for _, l := range links {
		l.Close()
	}
	for _, c := range conns {
		c.Close() // unblocks Serve readers
	}
	err := m.ln.Close()
	m.wg.Wait()
	return err
}
