package transport

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/wings"
)

// starvedLinkConfig is a tiny send window with explicit credit updates
// DISABLED: the only way a sender can keep moving is implicit repayment —
// responses crediting the link that spent on the requests.
func starvedLinkConfig() wings.LinkConfig {
	return wings.LinkConfig{Credits: 4, ExplicitEvery: 0, IsResponse: isResponse}
}

// echoMeshPair stands up meshes A and B where B answers every INV with an
// ACK for the same key, and A collects the ACKs on ackCh.
func echoMeshPair(t *testing.T) (a, b *Mesh, ackCh chan core.ACK, done func()) {
	t.Helper()
	a, err := NewMesh(0, map[proto.NodeID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewMesh(1, map[proto.NodeID]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[proto.NodeID]string{0: a.Addr(), 1: b.Addr()}
	a.addrs, b.addrs = addrs, addrs
	a.cfg, b.cfg = starvedLinkConfig(), starvedLinkConfig()

	ackCh = make(chan core.ACK, 1024)
	a.SetDeliver(0, func(from proto.NodeID, msg any) {
		if ack, ok := msg.(core.ACK); ok {
			ackCh <- ack
		}
	})
	b.SetDeliver(1, func(from proto.NodeID, msg any) {
		if inv, ok := msg.(core.INV); ok {
			b.Send(1, from, core.ACK{Epoch: inv.Epoch, Key: inv.Key, TS: inv.TS})
		}
	})
	return a, b, ackCh, func() {
		a.Close()
		b.Close()
	}
}

// drive pushes n INVs through a's outbound link and waits for every ACK.
// With a 4-credit window and no explicit credit updates, completing at all
// proves the implicit repayments reached the link that spent the credits.
func drive(t *testing.T, a *Mesh, ackCh chan core.ACK, n, base int) {
	t.Helper()
	sent := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			a.Send(0, 1, core.INV{Epoch: 1, Key: proto.Key(base + i), TS: proto.TS{Version: 1}})
		}
		close(sent)
	}()
	deadline := time.After(20 * time.Second)
	for got := 0; got < n; {
		select {
		case <-ackCh:
			got++
		case <-deadline:
			t.Fatalf("stalled after %d/%d ACKs: implicit repayment is not reaching the outbound link", got, n)
		}
	}
	select {
	case <-sent:
	case <-deadline:
		t.Fatal("sender still blocked after all ACKs arrived")
	}
}

// TestMeshImplicitCreditsRepayOutboundLink is the regression test for the
// credit-routing bug: ACKs arrive on the inbound connection B dialed, not on
// the connection A's outbound link writes to, so repayments must be routed
// to the outbound link by peer ID — otherwise a starved sender deadlocks
// once the window is spent (4 here, with ExplicitEvery disabled).
func TestMeshImplicitCreditsRepayOutboundLink(t *testing.T) {
	a, _, ackCh, done := echoMeshPair(t)
	defer done()

	drive(t, a, ackCh, 64, 0)

	a.mu.Lock()
	out := a.links[1]
	a.mu.Unlock()
	if out == nil {
		t.Fatal("no outbound link to peer 1")
	}
	st := out.Stats()
	if st.ImplicitCreditsRecovered == 0 {
		t.Fatal("outbound link recovered no implicit credits")
	}
	if st.ImplicitCreditsRecovered < 32 {
		t.Fatalf("outbound link recovered only %d implicit credits for 64 round trips",
			st.ImplicitCreditsRecovered)
	}
}

// TestMeshImplicitCreditsSurviveReconnect restarts the responder mid-run:
// A's outbound link dies with the peer, a fresh one is dialed lazily, and
// repayments must find the NEW link — the mesh routes them by peer ID at
// repayment time, not through a pointer captured at connection setup.
func TestMeshImplicitCreditsSurviveReconnect(t *testing.T) {
	a, b, ackCh, done := echoMeshPair(t)
	defer done()

	drive(t, a, ackCh, 16, 0)
	a.mu.Lock()
	first := a.links[1]
	a.mu.Unlock()

	// Crash-restart B on the same address.
	addrB := b.Addr()
	b.Close()
	addrs := map[proto.NodeID]string{0: a.Addr(), 1: addrB}
	var b2 *Mesh
	var err error
	for i := 0; i < 50; i++ { // the freed port can linger briefly
		b2, err = NewMesh(1, addrs)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	b2.cfg = starvedLinkConfig()
	b2.SetDeliver(1, func(from proto.NodeID, msg any) {
		if inv, ok := msg.(core.INV); ok {
			b2.Send(1, from, core.ACK{Epoch: inv.Epoch, Key: inv.Key, TS: inv.TS})
		}
	})

	// A's link to the dead B may take a beat to notice; retry the first
	// sends until the fresh link carries traffic end to end.
	deadline := time.After(20 * time.Second)
	for {
		a.Send(0, 1, core.INV{Epoch: 1, Key: 999, TS: proto.TS{Version: 1}})
		select {
		case <-ackCh:
		case <-time.After(200 * time.Millisecond):
			select {
			case <-deadline:
				t.Fatal("no traffic across the reconnected mesh")
			default:
				continue
			}
		}
		break
	}

	// Far more traffic than the 4-credit window: only implicit repayments
	// reaching the new outbound link let this finish.
	drive(t, a, ackCh, 64, 1000)

	a.mu.Lock()
	second := a.links[1]
	a.mu.Unlock()
	if second == nil {
		t.Fatal("no outbound link after reconnect")
	}
	if second == first {
		t.Fatal("outbound link was not replaced across the reconnect")
	}
	if st := second.Stats(); st.ImplicitCreditsRecovered == 0 {
		t.Fatal("post-reconnect outbound link recovered no implicit credits")
	}
}

// TestCreditsRepaidExactlyOnce pins the discipline down at the link level
// with the mesh's own config: request traffic (INVs) is repaid ONLY
// implicitly — the receiver must not also count it toward explicit grants,
// or every credit comes back twice and the window stops meaning anything —
// while one-way VAL traffic is repaid ONLY by explicit grants.
func TestCreditsRepaidExactlyOnce(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Credits = 4
	cfg.ExplicitEvery = 2

	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	a := wings.NewLink(ca, cfg)
	b := wings.NewLink(cb, cfg)
	acks := make(chan any, 256)
	go a.Serve(ca, func(m any) { acks <- m })
	go b.Serve(cb, func(m any) {
		if inv, ok := m.(core.INV); ok {
			b.Send(core.ACK{Epoch: inv.Epoch, Key: inv.Key, TS: inv.TS})
		}
	})
	defer a.Close()
	defer b.Close()

	const n = 32
	go func() {
		for i := 0; i < n; i++ {
			a.Send(core.INV{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}})
		}
	}()
	deadline := time.After(10 * time.Second)
	for got := 0; got < n; {
		select {
		case <-acks:
			got++
		case <-deadline:
			t.Fatalf("request traffic stalled at %d/%d (implicit repayment broken)", got, n)
		}
	}
	if st := b.Stats(); st.ExplicitCreditsSent != 0 {
		t.Fatalf("receiver issued %d explicit grants for request traffic repaid implicitly",
			st.ExplicitCreditsSent)
	}
	if st := a.Stats(); st.ImplicitCreditsRecovered < n {
		t.Fatalf("only %d of %d request credits repaid implicitly", st.ImplicitCreditsRecovered, n)
	}

	// One-way VALs: far more than the window only completes via explicit
	// grants.
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(core.VAL{Epoch: 1, Key: proto.Key(i), TS: proto.TS{Version: 1}}); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("one-way VAL traffic stalled (explicit grants broken)")
	}
	if st := b.Stats(); st.ExplicitCreditsSent == 0 {
		t.Fatal("no explicit grants for one-way traffic")
	}
}

// TestMeshShardBatchRoundTrip ships a coalesced batch through the TCP mesh
// and checks it arrives intact as one envelope.
func TestMeshShardBatchRoundTrip(t *testing.T) {
	a, err := NewMesh(0, map[proto.NodeID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewMesh(1, map[proto.NodeID]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addrs := map[proto.NodeID]string{0: a.Addr(), 1: b.Addr()}
	a.addrs, b.addrs = addrs, addrs

	got := make(chan any, 1)
	b.SetDeliver(1, func(from proto.NodeID, msg any) { got <- msg })

	batch := proto.ShardBatch{Msgs: []proto.ShardMsg{
		{Shard: 0, Msg: core.ACK{Epoch: 1, Key: 7, TS: proto.TS{Version: 2, CID: 1}}},
		{Shard: 2, Msg: core.VAL{Epoch: 1, Key: 9, TS: proto.TS{Version: 3, CID: 1}}},
	}}
	a.Send(0, 1, batch)
	select {
	case m := <-got:
		if !reflect.DeepEqual(m, batch) {
			t.Fatalf("batch arrived mangled:\n got %#v\nwant %#v", m, batch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch never arrived")
	}
}
