// Package client is the pipelined wire client for the serving layer
// (internal/server): one TCP connection carrying many in-flight requests,
// correlated by sequence number, flow-controlled by the window the server
// grants at handshake. The blocking API (Read/Write/CAS/FAA) mirrors
// cluster.Node's so code written against an in-process node ports to the
// wire unchanged; the callback API (Do) is what the benchmark's thousands of
// sessions use to keep the pipeline full without a goroutine per request.
//
// Flow control reuses the wings link credit discipline: each request costs
// one send credit, each response repays one implicitly, so a Send past the
// window blocks the caller — the client-side half of the server's admission
// contract, which guarantees a compliant client is never killed for
// overrunning its window.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/proto"
	"repro/internal/wings"
)

// ErrAborted reports an RMW that lost to a concurrent conflicting update
// (paper §3.6); the op had no effect and may be retried.
var ErrAborted = errors.New("client: rmw aborted by concurrent update")

// ErrNotOperational reports a replica without a valid membership lease (or
// one shutting down); retry against a current member.
var ErrNotOperational = errors.New("client: replica not operational")

// ErrClosed reports an operation on a closed client, or one whose
// connection died mid-flight (the op's fate is unknown; reads and
// idempotent retries are safe).
var ErrClosed = errors.New("client: connection closed")

// Config tunes Dial.
type Config struct {
	// DialTimeout bounds the TCP connect + handshake (default 5s).
	DialTimeout time.Duration
}

// Client is one pipelined session. Safe for concurrent use by any number of
// goroutines; requests interleave on the single connection.
type Client struct {
	addr   string
	cfg    Config
	window int

	mu      sync.Mutex
	conn    net.Conn
	link    *wings.Link
	waiters map[uint64]waiter
	nextSeq uint64
	closed  bool
	wg      sync.WaitGroup
}

// waiter is one in-flight request's completion sink: a channel for the
// blocking API or a callback for Do. Exactly one is set.
type waiter struct {
	ch chan proto.ClientResp
	fn func(proto.ClientResp, error)
}

// respChPool recycles the blocking API's single-use response channels.
var respChPool = sync.Pool{
	New: func() any { return make(chan proto.ClientResp, 1) },
}

// Dial connects and performs the session handshake, returning a live client.
func Dial(addr string, cfg Config) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, cfg: cfg, waiters: make(map[uint64]waiter)}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials, handshakes, and starts the read pump. Caller must not hold
// c.mu for the whole duration — it is only taken to publish the new conn.
func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := conn.Write(wings.ClientMagic[:]); err != nil {
		conn.Close()
		return err
	}
	var reply [8]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		conn.Close()
		return err
	}
	if [4]byte(reply[:4]) != wings.ClientMagic {
		conn.Close()
		return fmt.Errorf("client: bad handshake from %s", c.addr)
	}
	window := int(uint32(reply[4]) | uint32(reply[5])<<8 | uint32(reply[6])<<16 | uint32(reply[7])<<24)
	if window <= 0 || window > 1<<20 {
		conn.Close()
		return fmt.Errorf("client: server granted absurd window %d", window)
	}
	conn.SetDeadline(time.Time{})

	link := wings.NewLink(conn, wings.LinkConfig{
		Credits: window,
		IsResponse: func(m any) bool {
			_, ok := m.(proto.ClientResp)
			return ok
		},
	})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	c.conn = conn
	c.link = link
	c.window = window
	c.mu.Unlock()

	c.wg.Add(1)
	go c.pump(conn, link)
	return nil
}

// pump reads responses and dispatches them to waiters; on any stream error
// it fails every in-flight request (their fate is unknown) and leaves the
// client disconnected — the next request lazily reconnects.
func (c *Client) pump(conn net.Conn, link *wings.Link) {
	defer c.wg.Done()
	link.Serve(conn, func(msg any) {
		resp, ok := msg.(proto.ClientResp)
		if !ok {
			return // server never sends anything else; tolerate and drop
		}
		c.mu.Lock()
		w := c.waiters[resp.Seq]
		delete(c.waiters, resp.Seq)
		c.mu.Unlock()
		switch {
		case w.fn != nil:
			w.fn(resp, nil)
		case w.ch != nil:
			w.ch <- resp
		}
	})
	conn.Close()
	link.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
		c.link = nil
	}
	stranded := c.waiters
	c.waiters = make(map[uint64]waiter)
	c.mu.Unlock()
	for _, w := range stranded {
		switch {
		case w.fn != nil:
			w.fn(proto.ClientResp{}, ErrClosed)
		case w.ch != nil:
			w.ch <- proto.ClientResp{Status: proto.NotOperational, Seq: ^uint64(0)}
		}
	}
}

// Window reports the pipelining window the server granted.
func (c *Client) Window() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window
}

// Close tears the session down; in-flight requests fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	c.wg.Wait()
	return nil
}

// send registers w under a fresh seq and ships the request, lazily
// reconnecting a dead session first. Blocks when the window is exhausted
// (the link's credit discipline).
func (c *Client) send(op proto.OpKind, key proto.Key, val, exp proto.Value, w waiter) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.conn == nil {
		c.mu.Unlock()
		if err := c.connect(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed || c.conn == nil {
			c.mu.Unlock()
			return ErrClosed
		}
	}
	c.nextSeq++
	seq := c.nextSeq
	link := c.link
	c.waiters[seq] = w
	c.mu.Unlock()

	err := link.Send(proto.ClientReq{Seq: seq, Op: op, Key: key, Value: val, Expected: exp})
	if err != nil {
		// The request never shipped; the pump's strand sweep may already have
		// consumed the waiter, in which case the caller's sink was notified.
		c.mu.Lock()
		_, still := c.waiters[seq]
		delete(c.waiters, seq)
		c.mu.Unlock()
		if !still {
			return nil
		}
		return ErrClosed
	}
	return nil
}

// Do issues one request and invokes fn with the response (or error) from the
// read-pump goroutine; fn must not block. This is the pipelined path: a
// single goroutine can keep the whole window in flight.
func (c *Client) Do(op proto.OpKind, key proto.Key, val, exp proto.Value, fn func(proto.ClientResp, error)) error {
	if fn == nil {
		panic("client: nil callback")
	}
	return c.send(op, key, val, exp, waiter{fn: fn})
}

// call is the blocking request path shared by Read/Write/CAS/FAA.
func (c *Client) call(op proto.OpKind, key proto.Key, val, exp proto.Value) (proto.ClientResp, error) {
	ch := respChPool.Get().(chan proto.ClientResp)
	if err := c.send(op, key, val, exp, waiter{ch: ch}); err != nil {
		respChPool.Put(ch)
		return proto.ClientResp{}, err
	}
	resp := <-ch
	respChPool.Put(ch)
	if resp.Seq == ^uint64(0) {
		return proto.ClientResp{}, ErrClosed
	}
	return resp, nil
}

// Read performs a linearizable read.
func (c *Client) Read(key proto.Key) (proto.Value, error) {
	resp, err := c.call(proto.OpRead, key, nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.Status != proto.OK {
		return nil, statusErr(resp.Status)
	}
	return resp.Value, nil
}

// Write performs a linearizable write.
func (c *Client) Write(key proto.Key, val proto.Value) error {
	resp, err := c.call(proto.OpWrite, key, val, nil)
	if err != nil {
		return err
	}
	if resp.Status != proto.OK {
		return statusErr(resp.Status)
	}
	return nil
}

// CAS performs a compare-and-swap; swapped=false with err==nil means the
// comparand mismatched and observed holds the current value.
func (c *Client) CAS(key proto.Key, expect, val proto.Value) (swapped bool, observed proto.Value, err error) {
	resp, err := c.call(proto.OpCAS, key, val, expect)
	if err != nil {
		return false, nil, err
	}
	switch resp.Status {
	case proto.OK:
		return true, nil, nil
	case proto.CASFailed:
		return false, resp.Value, nil
	default:
		return false, nil, statusErr(resp.Status)
	}
}

// FAA atomically adds delta and returns the prior value; ErrAborted means
// the RMW lost to a concurrent update and may be retried.
func (c *Client) FAA(key proto.Key, delta int64) (int64, error) {
	resp, err := c.call(proto.OpFAA, key, proto.EncodeInt64(delta), nil)
	if err != nil {
		return 0, err
	}
	if resp.Status != proto.OK {
		return 0, statusErr(resp.Status)
	}
	return proto.DecodeInt64(resp.Value), nil
}

// statusErr maps a non-OK wire status to the package's sentinel errors.
func statusErr(s proto.Status) error {
	switch s {
	case proto.Aborted:
		return ErrAborted
	case proto.NotOperational:
		return ErrNotOperational
	default:
		return fmt.Errorf("client: status %v", s)
	}
}
