package client

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"

	"repro/internal/proto"
	"repro/internal/wings"
)

// fakeServer speaks just enough of the wire protocol to exercise the client
// alone: handshake with a configurable magic/window reply, then an echo loop
// answering every request with OK and the request's own value. It keeps the
// client package's tests free of the full serving stack (internal/server has
// the end-to-end suites).
type fakeServer struct {
	ln     net.Listener
	magic  [4]byte
	window uint32
	wg     sync.WaitGroup
}

func newFakeServer(t *testing.T, magic [4]byte, window uint32) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	fs := &fakeServer{ln: ln, magic: magic, window: window}
	fs.wg.Add(1)
	go fs.accept()
	t.Cleanup(func() { ln.Close(); fs.wg.Wait() })
	return fs
}

func (fs *fakeServer) accept() {
	defer fs.wg.Done()
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.wg.Add(1)
		go fs.serve(conn)
	}
}

func (fs *fakeServer) serve(conn net.Conn) {
	defer fs.wg.Done()
	defer conn.Close()
	var clientMagic [4]byte
	if _, err := readFull(conn, clientMagic[:]); err != nil {
		return
	}
	var reply [8]byte
	copy(reply[:4], fs.magic[:])
	binary.LittleEndian.PutUint32(reply[4:], fs.window)
	if _, err := conn.Write(reply[:]); err != nil {
		return
	}
	var mu sync.Mutex
	wings.ServeFrames(conn, func(msg any) error {
		req, ok := msg.(proto.ClientReq)
		if !ok {
			return errors.New("fake server: unexpected message")
		}
		buf, err := wings.AppendFrame(nil, proto.ClientResp{
			Seq: req.Seq, Status: proto.OK, Value: req.Value,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		_, err = conn.Write(buf)
		mu.Unlock()
		return err
	})
}

func readFull(conn net.Conn, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := conn.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestDialHandshakeAndWindow(t *testing.T) {
	fs := newFakeServer(t, wings.ClientMagic, 64)
	c, err := Dial(fs.ln.Addr().String(), Config{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if c.Window() != 64 {
		t.Fatalf("window = %d, want 64", c.Window())
	}
}

func TestDialRejectsBadMagic(t *testing.T) {
	fs := newFakeServer(t, [4]byte{'n', 'o', 'p', 'e'}, 64)
	if _, err := Dial(fs.ln.Addr().String(), Config{}); err == nil {
		t.Fatal("dial accepted a server speaking the wrong protocol")
	}
}

func TestDialRejectsAbsurdWindow(t *testing.T) {
	for _, w := range []uint32{0, 1 << 21} {
		fs := newFakeServer(t, wings.ClientMagic, w)
		if _, err := Dial(fs.ln.Addr().String(), Config{}); err == nil {
			t.Fatalf("dial accepted window %d", w)
		}
	}
}

func TestDialRefusedAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	if _, err := Dial(addr, Config{}); err == nil {
		t.Fatal("dial succeeded against a dead address")
	}
}

// TestPipelinedEcho drives the callback API well past the granted window
// from several goroutines; every response must carry its request's value
// (sequence correlation) and every callback must fire exactly once.
func TestPipelinedEcho(t *testing.T) {
	fs := newFakeServer(t, wings.ClientMagic, 8)
	c, err := Dial(fs.ln.Addr().String(), Config{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines, each = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			done := make(chan struct{}, each)
			for i := 0; i < each; i++ {
				want := proto.EncodeInt64(int64(g)<<32 | int64(i))
				err := c.Do(proto.OpWrite, proto.Key(i), want, nil, func(resp proto.ClientResp, err error) {
					if err != nil {
						t.Errorf("g%d op %d: %v", g, i, err)
					} else if string(resp.Value) != string(want) {
						t.Errorf("g%d op %d: echoed %x, want %x", g, i, resp.Value, want)
					}
					done <- struct{}{}
				})
				if err != nil {
					t.Errorf("g%d send %d: %v", g, i, err)
					done <- struct{}{}
				}
			}
			for i := 0; i < each; i++ {
				<-done
			}
		}(g)
	}
	wg.Wait()
}

func TestOpsAfterCloseFail(t *testing.T) {
	fs := newFakeServer(t, wings.ClientMagic, 8)
	c, err := Dial(fs.ln.Addr().String(), Config{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Close()
	if _, err := c.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}
	if err := c.Do(proto.OpRead, 1, nil, nil, func(proto.ClientResp, error) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("do after close: %v, want ErrClosed", err)
	}
}

// TestServerDeathStrandsWaiters kills the connection with a request in
// flight: the blocking caller must get ErrClosed, not hang.
func TestServerDeathStrandsWaiters(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		var m [4]byte
		readFull(conn, m[:])
		var reply [8]byte
		copy(reply[:4], wings.ClientMagic[:])
		binary.LittleEndian.PutUint32(reply[4:], 8)
		conn.Write(reply[:])
		// Read one frame's worth of bytes, then die mid-request.
		buf := make([]byte, 16)
		conn.Read(buf)
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String(), Config{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Read(42); !errors.Is(err, ErrClosed) {
		t.Fatalf("read against dying server: %v, want ErrClosed", err)
	}
}
