package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.P99() != 0 ||
		h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count=%d", h.Count())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		got := h.Percentile(p)
		if got != 42*time.Microsecond {
			t.Fatalf("p%.0f=%v want 42µs", p, got)
		}
	}
	if h.Min() != 42*time.Microsecond || h.Max() != 42*time.Microsecond {
		t.Fatal("min/max wrong")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Record 1..10000 µs uniformly: percentiles should land within the
	// histogram's relative error (~3.1% per sub-bucket) of the exact value.
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		exact := float64(p) / 100 * 10000 // µs
		got := h.Percentile(p).Seconds() * 1e6
		if relErr := math.Abs(got-exact) / exact; relErr > 0.05 {
			t.Fatalf("p%.0f=%vµs exact=%vµs relErr=%.3f", p, got, exact, relErr)
		}
	}
	if m := h.Mean().Seconds() * 1e6; math.Abs(m-5000.5) > 1 {
		t.Fatalf("mean=%v want ~5000.5µs", m)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5) // should clamp to bucket 0, not panic
	if h.Count() != 1 {
		t.Fatal("negative sample not recorded")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
		b.Record(time.Duration(i+100) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count=%d", a.Count())
	}
	if a.Max() < 190*time.Millisecond {
		t.Fatalf("merged max=%v", a.Max())
	}
	if a.Min() != 0 {
		t.Fatalf("merged min=%v", a.Min())
	}
}

// Property: the bucket index function is monotone non-decreasing and every
// value falls in a bucket whose low bound does not exceed it.
func TestBucketIndexProperties(t *testing.T) {
	monotone := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(monotone, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("bucketIndex not monotone: %v", err)
	}
	lowBound := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := bucketIndex(v)
		return bucketLow(idx) <= v
	}
	if err := quick.Check(lowBound, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("bucketLow exceeds member value: %v", err)
	}
}

// Property: percentile is within 5% relative error for random exponential
// samples (the shape of real latency distributions).
func TestHistogramVsExactPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := rng.ExpFloat64() * 50e3 // ~50µs mean, in ns
		if v < 1 {
			v = 1
		}
		h.Record(time.Duration(v))
		samples = append(samples, v)
	}
	sortFloats(samples)
	for _, p := range []float64{50, 90, 99, 99.9} {
		idx := int(p/100*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := float64(h.Percentile(p))
		if relErr := math.Abs(got-exact) / exact; relErr > 0.06 {
			t.Fatalf("p%v: got=%.0f exact=%.0f relErr=%.3f", p, got, exact, relErr)
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(10 * time.Millisecond)
	s.Add(1 * time.Millisecond)
	s.Add(9 * time.Millisecond)
	s.Add(10 * time.Millisecond)
	s.Add(35 * time.Millisecond)
	s.Add(-1) // ignored
	b := s.Buckets()
	if len(b) != 4 || b[0] != 2 || b[1] != 1 || b[2] != 0 || b[3] != 1 {
		t.Fatalf("buckets=%v", b)
	}
	if r := s.Rate(0); math.Abs(r-200) > 1e-9 {
		t.Fatalf("rate=%v want 200/s", r)
	}
	if rs := s.Rates(); len(rs) != 4 || rs[2] != 0 {
		t.Fatalf("rates=%v", rs)
	}
	if s.Rate(99) != 0 || s.Rate(-1) != 0 {
		t.Fatal("out-of-range rate should be 0")
	}
	if s.BucketWidth() != 10*time.Millisecond {
		t.Fatal("width wrong")
	}
}

func TestSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive width")
		}
	}()
	NewSeries(0)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"write%", "hermes", "craq"}}
	tb.AddRow(1, 770.0, 690.123)
	tb.AddRow(100, 72.0, 55.5)
	out := tb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	lines := splitLines(out)
	if len(lines) != 4 {
		t.Fatalf("want 4 lines got %d:\n%s", len(lines), out)
	}
	if lines[0][:6] != "write%" {
		t.Fatalf("header line: %q", lines[0])
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary")
	}
	s = Summarize([]float64{3, 1, 2, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("summary=%+v", s)
	}
	if math.Abs(s.Stdev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stdev=%v", s.Stdev)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		123.4:  "123",
		12.345: "12.35",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v)=%q want %q", in, got, want)
		}
	}
}
