package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.P99() != 0 ||
		h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count=%d", h.Count())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		got := h.Percentile(p)
		if got != 42*time.Microsecond {
			t.Fatalf("p%.0f=%v want 42µs", p, got)
		}
	}
	if h.Min() != 42*time.Microsecond || h.Max() != 42*time.Microsecond {
		t.Fatal("min/max wrong")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Record 1..10000 µs uniformly: percentiles should land within the
	// histogram's relative error (~3.1% per sub-bucket) of the exact value.
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, p := range []float64{10, 50, 90, 99} {
		exact := float64(p) / 100 * 10000 // µs
		got := h.Percentile(p).Seconds() * 1e6
		if relErr := math.Abs(got-exact) / exact; relErr > 0.05 {
			t.Fatalf("p%.0f=%vµs exact=%vµs relErr=%.3f", p, got, exact, relErr)
		}
	}
	if m := h.Mean().Seconds() * 1e6; math.Abs(m-5000.5) > 1 {
		t.Fatalf("mean=%v want ~5000.5µs", m)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5) // should clamp to bucket 0, not panic
	if h.Count() != 1 {
		t.Fatal("negative sample not recorded")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
		b.Record(time.Duration(i+100) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count=%d", a.Count())
	}
	if a.Max() < 190*time.Millisecond {
		t.Fatalf("merged max=%v", a.Max())
	}
	if a.Min() != 0 {
		t.Fatalf("merged min=%v", a.Min())
	}
}

// Property: the bucket index function is monotone non-decreasing and every
// value falls in a bucket whose low bound does not exceed it.
func TestBucketIndexProperties(t *testing.T) {
	monotone := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(monotone, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("bucketIndex not monotone: %v", err)
	}
	lowBound := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := bucketIndex(v)
		return bucketLow(idx) <= v
	}
	if err := quick.Check(lowBound, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatalf("bucketLow exceeds member value: %v", err)
	}
}

// Property: percentile is within 5% relative error for random exponential
// samples (the shape of real latency distributions).
func TestHistogramVsExactPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := rng.ExpFloat64() * 50e3 // ~50µs mean, in ns
		if v < 1 {
			v = 1
		}
		h.Record(time.Duration(v))
		samples = append(samples, v)
	}
	sortFloats(samples)
	for _, p := range []float64{50, 90, 99, 99.9} {
		idx := int(p/100*float64(len(samples))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := samples[idx]
		got := float64(h.Percentile(p))
		if relErr := math.Abs(got-exact) / exact; relErr > 0.06 {
			t.Fatalf("p%v: got=%.0f exact=%.0f relErr=%.3f", p, got, exact, relErr)
		}
	}
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(10 * time.Millisecond)
	s.Add(1 * time.Millisecond)
	s.Add(9 * time.Millisecond)
	s.Add(10 * time.Millisecond)
	s.Add(35 * time.Millisecond)
	s.Add(-1) // ignored
	b := s.Buckets()
	if len(b) != 4 || b[0] != 2 || b[1] != 1 || b[2] != 0 || b[3] != 1 {
		t.Fatalf("buckets=%v", b)
	}
	if r := s.Rate(0); math.Abs(r-200) > 1e-9 {
		t.Fatalf("rate=%v want 200/s", r)
	}
	if rs := s.Rates(); len(rs) != 4 || rs[2] != 0 {
		t.Fatalf("rates=%v", rs)
	}
	if s.Rate(99) != 0 || s.Rate(-1) != 0 {
		t.Fatal("out-of-range rate should be 0")
	}
	if s.BucketWidth() != 10*time.Millisecond {
		t.Fatal("width wrong")
	}
}

func TestSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive width")
		}
	}()
	NewSeries(0)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"write%", "hermes", "craq"}}
	tb.AddRow(1, 770.0, 690.123)
	tb.AddRow(100, 72.0, 55.5)
	out := tb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	lines := splitLines(out)
	if len(lines) != 4 {
		t.Fatalf("want 4 lines got %d:\n%s", len(lines), out)
	}
	if lines[0][:6] != "write%" {
		t.Fatalf("header line: %q", lines[0])
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary")
	}
	s = Summarize([]float64{3, 1, 2, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("summary=%+v", s)
	}
	if math.Abs(s.Stdev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stdev=%v", s.Stdev)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		123.4:  "123",
		12.345: "12.35",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v)=%q want %q", in, got, want)
		}
	}
}

// P999 must sit between P99 and Max on a distribution with a distinct far
// tail, and the percentile edges (0, 100, out-of-range) must clamp.
func TestHistogramP999AndPercentileEdges(t *testing.T) {
	h := NewHistogram()
	// 10k samples at 1ms, 90 at 10ms, 10 at 100ms: p99 ~1ms, p99.9 ~10ms.
	for i := 0; i < 10000; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 90; i++ {
		h.Record(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	if p := h.P99(); p < 900*time.Microsecond || p > 2*time.Millisecond {
		t.Fatalf("p99=%v, want ~1ms", p)
	}
	if p := h.P999(); p < 9*time.Millisecond || p > 12*time.Millisecond {
		t.Fatalf("p999=%v, want ~10ms", p)
	}
	if h.P999() < h.P99() {
		t.Fatalf("p999=%v < p99=%v", h.P999(), h.P99())
	}
	// Edges: p<=0 clamps to the first sample, p>=100 to the max.
	if got := h.Percentile(-5); got != h.Min() {
		t.Fatalf("p(-5)=%v, want min=%v", got, h.Min())
	}
	if got := h.Percentile(0); got != h.Min() {
		t.Fatalf("p0=%v, want min=%v", got, h.Min())
	}
	// p>=100 lands in the max sample's bucket (low bound, <=3.1% below max)
	// and never exceeds max.
	if got := h.Percentile(100); got > h.Max() || got < 96*time.Millisecond {
		t.Fatalf("p100=%v, want within bucket error of max=%v", got, h.Max())
	}
	if got := h.Percentile(400); got != h.Percentile(100) {
		t.Fatalf("p(400)=%v, want clamped to p100=%v", got, h.Percentile(100))
	}
	// Empty histogram: every percentile is 0, including the new tail.
	if e := NewHistogram(); e.P999() != 0 || e.Percentile(100) != 0 {
		t.Fatal("empty histogram percentiles must be 0")
	}
}

// A single sample is every percentile.
func TestHistogramP999SingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(42 * time.Microsecond)
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 42*time.Microsecond {
			t.Fatalf("p%v=%v, want 42µs", p, got)
		}
	}
}

// Concurrent Record and Snapshot/Percentile must be race-free (run under
// -race in CI) and every snapshot self-consistent: its total equals the sum
// of its buckets, and its percentiles never exceed its max.
func TestHistogramConcurrentRecordSnapshot(t *testing.T) {
	h := NewHistogram()
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * time.Millisecond
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Record(d + time.Duration(i%100)*time.Microsecond)
			}
		}(w)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	var last uint64
	for time.Now().Before(deadline) {
		s := h.Snapshot()
		var sum uint64
		for i := range s.counts {
			sum += s.counts[i].Load()
		}
		if sum != s.Count() {
			t.Fatalf("snapshot total %d != bucket sum %d", s.Count(), sum)
		}
		if s.Count() < last {
			t.Fatalf("snapshot count went backwards: %d -> %d", last, s.Count())
		}
		last = s.Count()
		if c := s.Count(); c > 0 {
			if s.P999() > s.Max() || s.Median() < s.Min() {
				t.Fatalf("inconsistent snapshot: min=%v p50=%v p999=%v max=%v",
					s.Min(), s.Median(), s.P999(), s.Max())
			}
		}
		// Queries on the live histogram race Records by design; they must
		// still be data-race free and return sane values.
		_ = h.Percentile(99.9)
		_ = h.Mean()
	}
	close(stop)
	wg.Wait()
}
