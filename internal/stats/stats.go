// Package stats provides the measurement primitives the benchmark harness
// uses to regenerate the paper's figures: log-bucketed latency histograms
// (median and tail percentiles, Fig. 6) and time-bucketed throughput series
// (Fig. 9).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram is a latency histogram with logarithmically spaced buckets
// (HdrHistogram-style, base-2 exponent with linear sub-buckets). It records
// time.Duration samples with bounded relative error (~1/subBuckets) and
// answers percentile queries without retaining samples.
//
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

const (
	subBits    = 5 // 32 linear sub-buckets per power of two => <=3.1% error
	subBuckets = 1 << subBits
	numExp     = 40 // covers up to ~2^40 ns ~= 18 minutes
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, numExp*subBuckets),
		min:    math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// exponent of the highest set bit
	exp := 63 - leadingZeros64(uint64(v))
	// top subBits bits below the leading bit select the sub-bucket
	sub := int(v>>(uint(exp)-subBits)) - subBuckets
	idx := (exp-subBits+1)*subBuckets + sub
	if idx >= numExp*subBuckets {
		idx = numExp*subBuckets - 1
	}
	return idx
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound value represented by bucket idx.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets + subBits - 1
	sub := idx % subBuckets
	return (int64(subBuckets) + int64(sub)) << (uint(exp) - subBits)
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of recorded samples, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Percentile returns the value at quantile p in [0,100], e.g. 50 for the
// median and 99 for the tail the paper reports. Returns 0 if empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Median is Percentile(50).
func (h *Histogram) Median() time.Duration { return h.Percentile(50) }

// P99 is Percentile(99).
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// String summarizes the distribution for logs and tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v max=%v", h.total, h.Median(), h.P99(), h.Max())
}

// Series accumulates event counts into fixed-width time buckets, producing a
// throughput-over-time curve (used for the failure experiment, Fig. 9).
type Series struct {
	width   time.Duration
	buckets []uint64
}

// NewSeries returns a Series with the given bucket width.
func NewSeries(width time.Duration) *Series {
	if width <= 0 {
		panic("stats: series bucket width must be positive")
	}
	return &Series{width: width}
}

// Add records one event at time t (relative to the series origin).
func (s *Series) Add(t time.Duration) {
	if t < 0 {
		return
	}
	i := int(t / s.width)
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[i]++
}

// BucketWidth returns the configured width.
func (s *Series) BucketWidth() time.Duration { return s.width }

// Buckets returns a copy of the per-bucket counts.
func (s *Series) Buckets() []uint64 {
	return append([]uint64(nil), s.buckets...)
}

// Rate returns the per-second event rate of bucket i.
func (s *Series) Rate(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return float64(s.buckets[i]) / s.width.Seconds()
}

// Rates returns the per-second rate for every bucket.
func (s *Series) Rates() []float64 {
	out := make([]float64, len(s.buckets))
	for i := range s.buckets {
		out[i] = s.Rate(i)
	}
	return out
}

// Table renders rows of columns as an aligned text table; the harness prints
// every reproduced figure and table this way.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if w := widths[i] - len(c); w > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", w))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Summary of a set of float samples; used for fairness ablations.
type Summary struct {
	N                int
	Mean, Stdev      float64
	Min, Max, Median float64
}

// Summarize computes summary statistics of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	s.Min, s.Max = cp[0], cp[len(cp)-1]
	s.Median = cp[len(cp)/2]
	var sum float64
	for _, x := range cp {
		sum += x
	}
	s.Mean = sum / float64(len(cp))
	var ss float64
	for _, x := range cp {
		d := x - s.Mean
		ss += d * d
	}
	s.Stdev = math.Sqrt(ss / float64(len(cp)))
	return s
}
