// Package stats provides the measurement primitives the benchmark harness
// uses to regenerate the paper's figures: log-bucketed latency histograms
// (median and tail percentiles, Fig. 6) and time-bucketed throughput series
// (Fig. 9).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a latency histogram with logarithmically spaced buckets
// (HdrHistogram-style, base-2 exponent with linear sub-buckets). It records
// time.Duration samples with bounded relative error (~1/subBuckets) and
// answers percentile queries without retaining samples.
//
// Record is safe to call from any number of goroutines concurrently — the
// client serving layer's sessions record latencies from their completion
// callbacks — and every query (Percentile, Mean, Count, …) is race-free
// against concurrent Records. Queries that walk the whole histogram see a
// weakly consistent view while traffic is flowing: a Record that races the
// walk may be partially included. Snapshot takes a private copy whose
// queries are self-consistent; take one before printing mid-traffic numbers.
//
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // sum of samples in nanoseconds (~292 years headroom)
	min    atomic.Int64
	max    atomic.Int64
}

const (
	subBits    = 5 // 32 linear sub-buckets per power of two => <=3.1% error
	subBuckets = 1 << subBits
	numExp     = 40 // covers up to ~2^40 ns ~= 18 minutes
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, numExp*subBuckets)}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// exponent of the highest set bit
	exp := 63 - leadingZeros64(uint64(v))
	// top subBits bits below the leading bit select the sub-bucket
	sub := int(v>>(uint(exp)-subBits)) - subBuckets
	idx := (exp-subBits+1)*subBuckets + sub
	if idx >= numExp*subBuckets {
		idx = numExp*subBuckets - 1
	}
	return idx
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound value represented by bucket idx.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets + subBits - 1
	sub := idx % subBuckets
	return (int64(subBuckets) + int64(sub)) << (uint(exp) - subBits)
}

// Record adds one sample. Safe for concurrent use.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Merge adds all samples of o into h. Both histograms may be under
// concurrent Record traffic; samples racing the merge land in exactly one
// of the two.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	if om := o.min.Load(); om < h.min.Load() {
		for {
			old := h.min.Load()
			if om >= old || h.min.CompareAndSwap(old, om) {
				break
			}
		}
	}
	if om := o.max.Load(); om > h.max.Load() {
		for {
			old := h.max.Load()
			if om <= old || h.max.CompareAndSwap(old, om) {
				break
			}
		}
	}
}

// Snapshot returns a private copy of the histogram, safe to query while the
// original keeps absorbing Records — the mid-traffic progress reports of the
// client benchmark read tails this way. The copy's total is derived from the
// copied buckets, so its percentile walk is always self-consistent even when
// Records raced the copy.
func (h *Histogram) Snapshot() *Histogram {
	s := NewHistogram()
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 {
			s.counts[i].Store(c)
			total += c
		}
	}
	s.total.Store(total)
	s.sum.Store(h.sum.Load())
	s.min.Store(h.min.Load())
	s.max.Store(h.max.Load())
	return s
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean of recorded samples, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return time.Duration(float64(h.sum.Load()) / float64(total))
}

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Percentile returns the value at quantile p in [0,100], e.g. 50 for the
// median and 99 for the tail the paper reports. Returns 0 if empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank == 0 {
		rank = 1
	}
	min, max := h.min.Load(), h.max.Load()
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			v := bucketLow(i)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(max)
}

// Median is Percentile(50).
func (h *Histogram) Median() time.Duration { return h.Percentile(50) }

// P99 is Percentile(99).
func (h *Histogram) P99() time.Duration { return h.Percentile(99) }

// P999 is Percentile(99.9) — the far tail the serving-layer benchmark
// reports: at thousands of sessions a once-per-thousand-requests stall is a
// per-second event, and the paper's headline is precisely that Hermes keeps
// this tail flat (§6.3).
func (h *Histogram) P999() time.Duration { return h.Percentile(99.9) }

// String summarizes the distribution for logs and tables.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v max=%v", h.Count(), h.Median(), h.P99(), h.Max())
}

// Series accumulates event counts into fixed-width time buckets, producing a
// throughput-over-time curve (used for the failure experiment, Fig. 9).
type Series struct {
	width   time.Duration
	buckets []uint64
}

// NewSeries returns a Series with the given bucket width.
func NewSeries(width time.Duration) *Series {
	if width <= 0 {
		panic("stats: series bucket width must be positive")
	}
	return &Series{width: width}
}

// Add records one event at time t (relative to the series origin).
func (s *Series) Add(t time.Duration) {
	if t < 0 {
		return
	}
	i := int(t / s.width)
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[i]++
}

// BucketWidth returns the configured width.
func (s *Series) BucketWidth() time.Duration { return s.width }

// Buckets returns a copy of the per-bucket counts.
func (s *Series) Buckets() []uint64 {
	return append([]uint64(nil), s.buckets...)
}

// Rate returns the per-second event rate of bucket i.
func (s *Series) Rate(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return float64(s.buckets[i]) / s.width.Seconds()
}

// Rates returns the per-second rate for every bucket.
func (s *Series) Rates() []float64 {
	out := make([]float64, len(s.buckets))
	for i := range s.buckets {
		out[i] = s.Rate(i)
	}
	return out
}

// Table renders rows of columns as an aligned text table; the harness prints
// every reproduced figure and table this way.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if w := widths[i] - len(c); w > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", w))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Summary of a set of float samples; used for fairness ablations.
type Summary struct {
	N                int
	Mean, Stdev      float64
	Min, Max, Median float64
}

// Summarize computes summary statistics of xs (xs is not modified).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	s.Min, s.Max = cp[0], cp[len(cp)-1]
	s.Median = cp[len(cp)/2]
	var sum float64
	for _, x := range cp {
		sum += x
	}
	s.Mean = sum / float64(len(cp))
	var ss float64
	for _, x := range cp {
		d := x - s.Mean
		ss += d * d
	}
	s.Stdev = math.Sqrt(ss / float64(len(cp)))
	return s
}
