// Package prototest provides a reusable in-memory harness for testing
// protocol state machines (anything implementing proto.Replica) with full
// control over message delivery order, loss, duplication and virtual time.
// The protocol packages' unit tests build on it; internal/core has its own
// specialized copy with access to Hermes internals.
package prototest

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
)

// Envelope is one in-flight message.
type Envelope struct {
	From, To proto.NodeID
	Msg      any
}

// Harness wires replicas to a controllable message pool.
type Harness struct {
	T       *testing.T
	NowTime time.Duration
	Nodes   map[proto.NodeID]proto.Replica
	ViewNow proto.View
	Msgs    []Envelope
	Done    map[proto.NodeID][]proto.Completion
	Crashed map[proto.NodeID]bool
	nextOp  uint64
}

type env struct {
	h  *Harness
	id proto.NodeID
}

func (e *env) Now() time.Duration { return e.h.NowTime }
func (e *env) Send(to proto.NodeID, m any) {
	e.h.Msgs = append(e.h.Msgs, Envelope{From: e.id, To: to, Msg: m})
}
func (e *env) Complete(c proto.Completion) {
	e.h.Done[e.id] = append(e.h.Done[e.id], c)
}

// Build creates a harness of n nodes using the factory.
func Build(t *testing.T, n int, factory func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica) *Harness {
	t.Helper()
	members := make([]proto.NodeID, n)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: members}
	h := &Harness{
		T:       t,
		Nodes:   make(map[proto.NodeID]proto.Replica),
		ViewNow: view,
		Done:    make(map[proto.NodeID][]proto.Completion),
		Crashed: make(map[proto.NodeID]bool),
	}
	for _, id := range members {
		h.Nodes[id] = factory(id, view, &env{h: h, id: id})
	}
	return h
}

// Step delivers the oldest in-flight message; false if none remain.
func (h *Harness) Step() bool {
	for len(h.Msgs) > 0 {
		e := h.Msgs[0]
		h.Msgs = h.Msgs[1:]
		if h.Crashed[e.To] || h.Crashed[e.From] {
			continue
		}
		if n, ok := h.Nodes[e.To]; ok {
			n.Deliver(e.From, e.Msg)
			return true
		}
	}
	return false
}

// Run delivers messages FIFO until quiet.
func (h *Harness) Run() {
	for i := 0; ; i++ {
		if !h.Step() {
			return
		}
		if i > 1_000_000 {
			h.T.Fatal("prototest: message storm")
		}
	}
}

// RunShuffled delivers all messages in a random order.
func (h *Harness) RunShuffled(rng *rand.Rand) {
	for i := 0; len(h.Msgs) > 0; i++ {
		j := rng.Intn(len(h.Msgs))
		h.Msgs[0], h.Msgs[j] = h.Msgs[j], h.Msgs[0]
		if !h.Step() {
			return
		}
		if i > 1_000_000 {
			h.T.Fatal("prototest: message storm")
		}
	}
}

// DropWhere removes matching in-flight messages; returns the count.
func (h *Harness) DropWhere(match func(Envelope) bool) int {
	kept := h.Msgs[:0]
	n := 0
	for _, e := range h.Msgs {
		if match(e) {
			n++
		} else {
			kept = append(kept, e)
		}
	}
	h.Msgs = kept
	return n
}

// DuplicateAll duplicates every in-flight message.
func (h *Harness) DuplicateAll() { h.Msgs = append(h.Msgs, h.Msgs...) }

// Advance moves the clock and ticks live nodes.
func (h *Harness) Advance(d time.Duration) {
	h.NowTime += d
	for id, n := range h.Nodes {
		if !h.Crashed[id] {
			n.Tick()
		}
	}
}

// Crash stops a node and drops its traffic.
func (h *Harness) Crash(id proto.NodeID) {
	h.Crashed[id] = true
	h.DropWhere(func(e Envelope) bool { return e.To == id || e.From == id })
}

// RemoveFromView installs a view without id at every live node.
func (h *Harness) RemoveFromView(id proto.NodeID) {
	nv := proto.View{Epoch: h.ViewNow.Epoch + 1}
	for _, m := range h.ViewNow.Members {
		if m != id {
			nv.Members = append(nv.Members, m)
		}
	}
	nv.Learners = append(nv.Learners, h.ViewNow.Learners...)
	h.InstallView(nv)
}

// InstallView delivers an m-update to every live node.
func (h *Harness) InstallView(v proto.View) {
	h.ViewNow = v
	for id, n := range h.Nodes {
		if !h.Crashed[id] {
			n.OnViewChange(v)
		}
	}
}

// Submit assigns a fresh op ID and submits at node id.
func (h *Harness) Submit(id proto.NodeID, op proto.ClientOp) uint64 {
	h.nextOp++
	op.ID = h.nextOp
	h.Nodes[id].Submit(op)
	return h.nextOp
}

// Write submits a write.
func (h *Harness) Write(id proto.NodeID, key proto.Key, val string) uint64 {
	return h.Submit(id, proto.ClientOp{Kind: proto.OpWrite, Key: key, Value: proto.Value(val)})
}

// Read submits a read.
func (h *Harness) Read(id proto.NodeID, key proto.Key) uint64 {
	return h.Submit(id, proto.ClientOp{Kind: proto.OpRead, Key: key})
}

// FAA submits a fetch-and-add.
func (h *Harness) FAA(id proto.NodeID, key proto.Key, delta int64) uint64 {
	return h.Submit(id, proto.ClientOp{Kind: proto.OpFAA, Key: key, Value: proto.EncodeInt64(delta)})
}

// CAS submits a compare-and-swap.
func (h *Harness) CAS(id proto.NodeID, key proto.Key, expect, val string) uint64 {
	return h.Submit(id, proto.ClientOp{Kind: proto.OpCAS, Key: key, Expected: proto.Value(expect), Value: proto.Value(val)})
}

// Completion fetches opID's completion at node id or fails the test.
func (h *Harness) Completion(id proto.NodeID, opID uint64) proto.Completion {
	h.T.Helper()
	for _, c := range h.Done[id] {
		if c.OpID == opID {
			return c
		}
	}
	h.T.Fatalf("node %d: no completion for op %d (have %v)", id, opID, h.Done[id])
	return proto.Completion{}
}

// HasCompletion reports whether opID completed at node id.
func (h *Harness) HasCompletion(id proto.NodeID, opID uint64) bool {
	for _, c := range h.Done[id] {
		if c.OpID == opID {
			return true
		}
	}
	return false
}

// ReadBack issues a read at id and runs the pool to quiescence, returning
// the value (drives protocols whose reads may need remote hops, e.g. CRAQ
// tail queries).
func (h *Harness) ReadBack(id proto.NodeID, key proto.Key) proto.Value {
	h.T.Helper()
	op := h.Read(id, key)
	h.Run()
	return h.Completion(id, op).Value
}
