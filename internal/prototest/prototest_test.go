package prototest

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// echoReplica is a trivial protocol for exercising the harness itself:
// writes broadcast the value; a replica applies the highest op ID it saw.
type echoReplica struct {
	id   proto.NodeID
	env  proto.Env
	view proto.View
	last proto.Value
	seen uint64
}

type echoMsg struct {
	ID  uint64
	Val proto.Value
}

func (e *echoReplica) ID() proto.NodeID { return e.id }
func (e *echoReplica) Submit(op proto.ClientOp) {
	switch op.Kind {
	case proto.OpRead:
		e.env.Complete(proto.Completion{OpID: op.ID, Kind: proto.OpRead, Key: op.Key, Status: proto.OK, Value: e.last})
	default:
		for _, n := range e.view.Others(e.id) {
			e.env.Send(n, echoMsg{ID: op.ID, Val: op.Value})
		}
		e.apply(echoMsg{ID: op.ID, Val: op.Value})
		e.env.Complete(proto.Completion{OpID: op.ID, Kind: op.Kind, Key: op.Key, Status: proto.OK})
	}
}
func (e *echoReplica) apply(m echoMsg) {
	if m.ID > e.seen {
		e.seen = m.ID
		e.last = m.Val
	}
}
func (e *echoReplica) Deliver(from proto.NodeID, msg any) { e.apply(msg.(echoMsg)) }
func (e *echoReplica) Tick()                              {}
func (e *echoReplica) OnViewChange(v proto.View)          { e.view = v.Clone() }

func buildEcho(t *testing.T, n int) *Harness {
	return Build(t, n, func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return &echoReplica{id: id, env: env, view: view}
	})
}

func TestHarnessDeliversFIFO(t *testing.T) {
	h := buildEcho(t, 3)
	op := h.Write(0, 1, "x")
	if !h.HasCompletion(0, op) {
		t.Fatal("echo write should complete synchronously")
	}
	h.Run()
	for id := proto.NodeID(0); id < 3; id++ {
		if got := h.Nodes[id].(*echoReplica).last; string(got) != "x" {
			t.Fatalf("node %d: %q", id, got)
		}
	}
}

func TestHarnessDropAndDuplicate(t *testing.T) {
	h := buildEcho(t, 3)
	h.Write(0, 1, "a")
	if n := h.DropWhere(func(e Envelope) bool { return e.To == 2 }); n != 1 {
		t.Fatalf("dropped %d", n)
	}
	h.DuplicateAll()
	h.Run()
	if string(h.Nodes[1].(*echoReplica).last) != "a" {
		t.Fatal("node 1 missed the duplicate-surviving message")
	}
	if string(h.Nodes[2].(*echoReplica).last) != "" {
		t.Fatal("dropped message leaked to node 2")
	}
}

func TestHarnessCrashIsolation(t *testing.T) {
	h := buildEcho(t, 3)
	h.Crash(1)
	h.Write(0, 1, "b")
	h.Run()
	if string(h.Nodes[1].(*echoReplica).last) != "" {
		t.Fatal("crashed node received traffic")
	}
	if string(h.Nodes[2].(*echoReplica).last) != "b" {
		t.Fatal("live node missed traffic")
	}
}

func TestHarnessViewManagement(t *testing.T) {
	h := buildEcho(t, 3)
	h.RemoveFromView(2)
	if h.ViewNow.Epoch != 2 || h.ViewNow.Contains(2) {
		t.Fatalf("view: %v", h.ViewNow)
	}
	// After the m-update, node 0 broadcasts only to node 1.
	h.Write(0, 1, "c")
	if len(h.Msgs) != 1 || h.Msgs[0].To != 1 {
		t.Fatalf("msgs: %+v", h.Msgs)
	}
}

func TestHarnessClockAndTicks(t *testing.T) {
	h := buildEcho(t, 2)
	if h.NowTime != 0 {
		t.Fatal("clock should start at zero")
	}
	h.Advance(5 * time.Millisecond)
	if h.NowTime != 5*time.Millisecond {
		t.Fatalf("clock=%v", h.NowTime)
	}
}

func TestHarnessReadBack(t *testing.T) {
	h := buildEcho(t, 2)
	h.Write(0, 7, "rv")
	h.Run()
	if v := h.ReadBack(1, 7); string(v) != "rv" {
		t.Fatalf("readback=%q", v)
	}
}

func TestHarnessOpHelpers(t *testing.T) {
	h := buildEcho(t, 2)
	a := h.FAA(0, 1, 5)
	b := h.CAS(0, 1, "x", "y")
	if a == b {
		t.Fatal("op IDs must be unique")
	}
	if c := h.Completion(0, a); c.Kind != proto.OpFAA {
		t.Fatalf("faa completion: %+v", c)
	}
}
