// Package analysistest runs hermes-vet analyzers over golden packages and
// checks their diagnostics against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the offline build
// cannot vendor). A want comment expects, on its own line, at least one
// diagnostic whose message matches the regex; every diagnostic must be
// expected and every expectation met, or the test fails.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted regexes from a want comment: double-quoted
// (Go-unquoted) or backquoted strings after "// want".
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the packages matching patterns under dir, applies the analyzer,
// and reconciles diagnostics with the want comments in the loaded files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s %v: %v", dir, patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, dir)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		for _, d := range diags {
			matched := false
			for _, w := range wants {
				if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
					w.met = true
					matched = true
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.met {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted regex", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}
