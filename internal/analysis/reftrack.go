package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RefTrackAnalyzer enforces the refbuf ownership contract interprocedurally:
// every frame-buffer reference a function acquires — Retain, a TryRetain
// guard, Pool.Get, or a call whose summary returns a retained buffer — must
// be spent exactly once on every path: released, adopted into an Owner
// field, passed to a consuming call (known by summary within the package, or
// by the documented cross-package allowlist: ReleaseMsgOwners,
// ReleaseOwner), or returned to the caller.
//
// This is the engine-backed successor to the blind spot bufown documents:
// bufown "cannot see a clone behind a helper call (which is why any wrapping
// call passes)". reftrack's summaries close both directions of that gap:
//
//   - a same-package helper that consumes its argument is recognized, so
//     passing a reference to it balances the books (no false leak);
//   - a same-package helper that does NOT clone is recognized too: a value
//     escaping into an owner-less destination through such a helper is
//     reported (the aliasing summary), where bufown's lexical rule gave any
//     call a free pass.
//
// Unknown callees — dynamic calls, interface methods, cross-package
// functions with no body here — are conservatively assumed to consume
// nothing, and that assumption is carried into the diagnostic text rather
// than silently weakening the verdict.
var RefTrackAnalyzer = &Analyzer{
	Name: "reftrack",
	Doc:  "frame-buffer references must be spent exactly once on every path (leaks and double releases, across call boundaries)",
	Run:  runRefTrack,
}

func runRefTrack(pass *Pass) {
	eng := NewEngine(pass)
	for _, fn := range eng.Order() {
		decl := eng.Decls()[fn]
		if decl.Body == nil {
			continue
		}
		checkRefBalance(pass, eng, decl)
		// Function literals run their own balance scope (a closure may
		// legitimately spend at a later time, so references crossing the
		// boundary are unknown — but references acquired INSIDE the literal
		// must still balance inside it).
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkRefBalanceBody(pass, eng, fl.Body)
			}
			return true
		})
	}
	checkAliasEscapes(pass, eng)
}

func checkRefBalance(pass *Pass, eng *Engine, decl *ast.FuncDecl) {
	checkRefBalanceBody(pass, eng, decl.Body)
}

func checkRefBalanceBody(pass *Pass, eng *Engine, body *ast.BlockStmt) {
	in := newRefInterp(eng, func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	})
	st := in.newState()
	in.block(body, st)
	if !st.dead {
		in.recordExit(st, nil)
	}
	for _, ex := range in.exits {
		for _, info := range ex.state.refs {
			if info.unknown || info.obl == 0 {
				continue
			}
			in.reportf(info.pos,
				"frame-buffer reference acquired by %s is never spent on some path: release it, adopt it into an Owner field, or pass it to a consuming call%s",
				info.kind, noteSuffix(info.notes))
		}
	}
}

// checkAliasEscapes is the interprocedural owner-escape check: a value that
// reaches an owner-less destination through a same-package helper whose
// summary says "result aliases parameter j without a clone" escapes the
// pooled bytes exactly as if it had been stored directly — the shape bufown
// documents as invisible.
func checkAliasEscapes(pass *Pass, eng *Engine) {
	for _, fn := range eng.Order() {
		decl := eng.Decls()[fn]
		if decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[n]
				if !ok {
					return true
				}
				lt := tv.Type
				if p, ok := lt.Underlying().(*types.Pointer); ok {
					lt = p.Elem()
				}
				if ownerBearing(lt) {
					return true // destination carries the owner; adoption is fine
				}
				for _, el := range n.Elts {
					val := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					reportAliasingCall(pass, eng, val, "a composite literal without an Owner field")
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					s, ok := pass.Info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal {
						continue
					}
					if ownerBearing(s.Recv()) {
						continue
					}
					reportAliasingCall(pass, eng, n.Rhs[i], "a struct field with no accompanying owner")
				}
			}
			return true
		})
	}
}

// reportAliasingCall reports val when it is a call to a same-package helper
// whose result aliases an owner-carrying argument's bytes without a clone.
func reportAliasingCall(pass *Pass, eng *Engine, val ast.Expr, dest string) {
	call, ok := ast.Unparen(val).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := staticCallee(pass.Info, call)
	sum := eng.SummaryOf(callee)
	if sum == nil {
		return
	}
	for ri, pi := range sum.ResultAliasesParam {
		if ri != 0 || pi < 0 || pi >= len(call.Args) {
			continue
		}
		arg := call.Args[pi]
		if !aliasesOwnedValue(pass, arg) {
			continue
		}
		pass.Reportf(val.Pos(),
			"value escaping into %s comes through %s, which returns its argument's bytes without a clone: the pooled frame buffer can be recycled under the reader (clone before storing, or carry the owner)",
			dest, callee.Name())
	}
}

// aliasesOwnedValue reports whether expr's bytes may belong to a pooled
// frame buffer: the Value field of an owner-bearing struct, or a slice or
// index thereof.
func aliasesOwnedValue(pass *Pass, expr ast.Expr) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return ownedValueSel(pass.Info, x)
	case *ast.SliceExpr:
		return aliasesOwnedValue(pass, x.X)
	case *ast.IndexExpr:
		return aliasesOwnedValue(pass, x.X)
	case *ast.Ident:
		if tv, ok := pass.Info.Types[x]; ok && ownerBearing(tv.Type) {
			return true
		}
	}
	return false
}
