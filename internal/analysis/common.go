package analysis

import (
	"go/ast"
	"go/types"
)

// staticCallee resolves a call expression to the *types.Func it invokes, or
// nil when the callee is dynamic (a function value, an interface method) or
// a builtin/conversion. Interface method calls resolve to the interface's
// method object; callers that need a body must additionally check the
// receiver is concrete via funcBody.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltinCall reports whether the call invokes the named builtin (append,
// len, delete, ...); name == "" matches any builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	return name == "" || id.Name == name
}

// pkgFunc reports whether fn is the package-level function pkgPath.name
// (receiver-less).
func pkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// recvTypeName returns the name of a method's receiver's named type ("" for
// package-level functions and unnamed receivers).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// declOfFunc maps every function/method declared in the package's files to
// its body, keyed by the *types.Func object.
func declOfFunc(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
