package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the seeded-replay property of packages named
// "sim" and "core": the same seed must produce the same schedule, byte for
// byte. Three things break it:
//
//   - time.Now / time.Since — wall-clock reads diverge between runs; the
//     protocol's Env.Now and the sim's virtual clock exist for this.
//   - the global math/rand functions — their state is shared and unseeded;
//     use the engine's seeded *rand.Rand instance.
//   - ranging over a map where the body sends, schedules, or retransmits —
//     Go randomizes map iteration order, so the emission order differs per
//     run (the PR 4 retransmission-order bug). Collecting keys and sorting
//     first (core.sortedMetaKeys) is the sanctioned idiom and is not
//     flagged.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "bans wall-clock time, global math/rand, and map-order-dependent scheduling in seeded-replay packages",
	Run:  runDeterminism,
}

// scheduleVerbs are callee names that emit into the network/schedule; a call
// to one inside a map-range body makes the emission order map-order.
var scheduleVerbs = map[string]bool{
	"Send": true, "Deliver": true, "Submit": true, "SubmitAsync": true,
	"After": true, "Schedule": true, "Enqueue": true, "Retransmit": true,
	"Broadcast": true, "Complete": true,
}

func runDeterminism(pass *Pass) {
	if pass.Pkg.Name() != "sim" && pass.Pkg.Name() != "core" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

func checkNondeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s breaks seeded replay: use the injected clock (proto.Env.Now / the sim's virtual time)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (rand.New(rand.NewSource(seed))) are the sanctioned
		// way to build a seeded generator; only the package-level draws that
		// consult the shared global source are banned.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			pass.Reportf(call.Pos(),
				"global %s.%s uses shared unseeded state: draw from the engine's seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
		}
	}
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok || !isMapType(tv.Type) {
		return
	}
	var verb string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if verb != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass.Info, call)
		if scheduleVerbs[name] {
			verb = name
			return false
		}
		return true
	})
	if verb != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order feeds %s: Go randomizes map order per run, so the schedule diverges under the same seed; collect keys, sort, then iterate (see core's sortedMetaKeys)", verb)
	}
}

// calleeName extracts the syntactic callee name of a call ("Send" from
// env.Send(...) or Send(...)); "" for indirect calls.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if isConversion(info, call) || isBuiltinCall(info, call, "") {
		return ""
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		// Skip package-qualified stdlib calls like strings.Contains — only
		// method-style or local calls are schedule emissions.
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return ""
			}
		}
		return fun.Sel.Name
	}
	return ""
}
