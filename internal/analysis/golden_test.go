package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over its golden tree under testdata/ (a standalone
// `vettest` module the go tool otherwise ignores). The red cases prove the
// analyzer fires — if it ever stops, the unmatched want comment fails the
// test — and the ignore-directive cases prove suppression works.

func TestEventLoopGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.EventLoopAnalyzer, "./eventloop/...")
}

func TestAtomicFieldGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicFieldAnalyzer, "./atomicfield/...")
}

func TestWingsCodecGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WingsCodecAnalyzer, "./wingscodec/...")
}

func TestExhaustiveGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ExhaustiveAnalyzer, "./exhaustive/...")
}

func TestDeterminismGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "./determinism/...")
}

func TestBufOwnGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.BufOwnAnalyzer, "./bufown/...")
}

func TestRefTrackGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.RefTrackAnalyzer, "./reftrack/...")
}

func TestCreditFlowGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CreditFlowAnalyzer, "./creditflow/...")
}

func TestLockOrderGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockOrderAnalyzer, "./lockorder/...")
}

// TestStaleWaiverGolden runs the full suite over a package whose only
// directive suppresses nothing: the directive itself must be the one finding.
// (Want comments can't express this — a directive line cannot carry a second
// comment — so the reconciliation is done directly.)
func TestStaleWaiverGolden(t *testing.T) {
	pkgs, err := analysis.Load("testdata", "./stale/...")
	if err != nil {
		t.Fatalf("loading stale fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := analysis.RunAnalyzers(pkgs[0], analysis.All())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale-directive finding: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "hermesvet" {
		t.Errorf("finding attributed to %q, want the hermesvet pseudo-analyzer", d.Analyzer)
	}
	if !strings.Contains(d.Message, "stale ignore directive (bufown)") {
		t.Errorf("unexpected message: %q", d.Message)
	}
	if filepath.Base(d.Pos.Filename) != "app.go" || d.Pos.Line != 7 {
		t.Errorf("finding at %s:%d, want app.go:7 (the directive's line)", filepath.Base(d.Pos.Filename), d.Pos.Line)
	}
}

func TestAllAnalyzersDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 9 {
		t.Fatalf("expected 9 analyzers, got %d", len(seen))
	}
}
