package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over its golden tree under testdata/ (a standalone
// `vettest` module the go tool otherwise ignores). The red cases prove the
// analyzer fires — if it ever stops, the unmatched want comment fails the
// test — and the ignore-directive cases prove suppression works.

func TestEventLoopGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.EventLoopAnalyzer, "./eventloop/...")
}

func TestAtomicFieldGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicFieldAnalyzer, "./atomicfield/...")
}

func TestWingsCodecGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WingsCodecAnalyzer, "./wingscodec/...")
}

func TestExhaustiveGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ExhaustiveAnalyzer, "./exhaustive/...")
}

func TestDeterminismGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeterminismAnalyzer, "./determinism/...")
}

func TestBufOwnGolden(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.BufOwnAnalyzer, "./bufown/...")
}

func TestAllAnalyzersDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 analyzers, got %d", len(seen))
	}
}
