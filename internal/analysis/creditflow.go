package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CreditFlowAnalyzer mechanizes the PR 2 credit-discipline post-mortem for
// the transport layers (packages named "wings" and "transport"): a send
// window only survives if every debited credit is spent exactly once —
// consumed by a successful transmission or refunded on the path that
// failed. Both historical bugs are covered:
//
//   - leak-on-error: a function debits (`credits -= cost`) and then returns
//     a non-nil error without a refund (`credits += n`, a
//     CreditReturn/RepayCredits/repayCredits call, or a same-package helper
//     whose engine summary refunds) anywhere after the debit on that path.
//     Each leak shrinks the window permanently; enough of them wedge the
//     link.
//   - double-repay: two refunds after a single debit on one path, the
//     inverse failure (the window grows past the receiver's buffer
//     reservation, which is flow-control in name only).
//
// It also checks the classifier agreement the coalescer assumes:
//
//   - a concrete message type classified `true` by both the one-way and the
//     response classifier would have its credit repaid twice — once by the
//     explicit grant counter, once implicitly by its "response" arriving;
//   - a `return true` inside a classifier's range loop classifies a whole
//     batch by its first member ("any" semantics); the discipline prices
//     and repays batches by ALL-member semantics, so the early true
//     misclassifies every mixed batch.
//
// Path merging is lenient by design: a refund on any incoming branch
// satisfies the error path (guard correlation such as wings.Send's
// `if cost > 0` refund mirror is beyond the checker), so the findings that
// remain are the unconditional misses.
var CreditFlowAnalyzer = &Analyzer{
	Name: "creditflow",
	Doc:  "transport error paths must refund or consume debited flow-control credits, and one-way/response classification must be disjoint and all-member",
	Run:  runCreditFlow,
}

func runCreditFlow(pass *Pass) {
	if pass.Pkg.Name() != "wings" && pass.Pkg.Name() != "transport" {
		return
	}
	eng := NewEngine(pass)
	for _, fn := range eng.Order() {
		decl := eng.Decls()[fn]
		if decl.Body == nil {
			continue
		}
		checkCreditPaths(pass, eng, fn, decl)
	}
	checkClassifiers(pass, eng)
}

// --- debit/refund path check ----------------------------------------------

type creditState struct {
	debited bool
	refunds int
	dead    bool
}

type creditWalker struct {
	pass *Pass
	eng  *Engine
}

func checkCreditPaths(pass *Pass, eng *Engine, fn *types.Func, decl *ast.FuncDecl) {
	sig := fn.Type().(*types.Signature)
	nres := sig.Results().Len()
	if nres == 0 || !isErrorType(sig.Results().At(nres-1).Type()) {
		return // no error result: no error path to audit
	}
	w := &creditWalker{pass: pass, eng: eng}
	w.stmts(decl.Body.List, &creditState{})
}

func isErrorType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func (w *creditWalker) stmts(list []ast.Stmt, st *creditState) {
	for _, s := range list {
		if st.dead {
			return
		}
		w.stmt(s, st)
	}
}

func (w *creditWalker) stmt(s ast.Stmt, st *creditState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.AssignStmt:
		w.events(s, st)
	case *ast.ExprStmt:
		w.events(s, st)
	case *ast.DeferStmt:
		w.events(s, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.events(s.Cond, st)
		thenSt, elseSt := *st, *st
		w.stmt(s.Body, &thenSt)
		if s.Else != nil {
			w.stmt(s.Else, &elseSt)
		}
		w.merge(st, &thenSt, &elseSt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.clauses(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		body := *st
		w.stmt(s.Body, &body)
		if !body.dead {
			st.debited = st.debited || body.debited
			st.refunds = maxInt(st.refunds, body.refunds)
		}
	case *ast.RangeStmt:
		body := *st
		w.stmt(s.Body, &body)
		if !body.dead {
			st.debited = st.debited || body.debited
			st.refunds = maxInt(st.refunds, body.refunds)
		}
	case *ast.ReturnStmt:
		w.ret(s, st)
		st.dead = true
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	}
}

func (w *creditWalker) clauses(s ast.Stmt, st *creditState) {
	var bodies [][]ast.Stmt
	hasDefault := false
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		hasDefault = true // each comm is its own path; no fall-through state
	}
	for _, cl := range body.List {
		switch cc := cl.(type) {
		case *ast.CaseClause:
			bodies = append(bodies, cc.Body)
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			bodies = append(bodies, cc.Body)
		}
	}
	outs := make([]*creditState, 0, len(bodies)+1)
	for _, b := range bodies {
		bs := *st
		w.stmts(b, &bs)
		if !bs.dead {
			outs = append(outs, &bs)
		}
	}
	if !hasDefault {
		fall := *st
		outs = append(outs, &fall)
	}
	w.mergeAll(st, outs)
}

func (w *creditWalker) merge(st *creditState, outs ...*creditState) {
	live := outs[:0]
	for _, o := range outs {
		if !o.dead {
			live = append(live, o)
		}
	}
	w.mergeAll(st, live)
}

func (w *creditWalker) mergeAll(st *creditState, outs []*creditState) {
	if len(outs) == 0 {
		st.dead = true
		return
	}
	st.debited, st.refunds = outs[0].debited, outs[0].refunds
	for _, o := range outs[1:] {
		st.debited = st.debited || o.debited
		st.refunds = maxInt(st.refunds, o.refunds)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// events scans one non-branching node for debit and refund events.
func (w *creditWalker) events(n ast.Node, st *creditState) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && isCreditsField(w.pass.Info, n.Lhs[0]) {
				switch n.Tok {
				case token.SUB_ASSIGN:
					st.debited = true
					st.refunds = 0
				case token.ADD_ASSIGN:
					w.refund(n.Pos(), st)
				}
			}
		case *ast.CallExpr:
			if w.isRefundCall(n) {
				w.refund(n.Pos(), st)
				return false
			}
		}
		return true
	})
}

func (w *creditWalker) isRefundCall(call *ast.CallExpr) bool {
	switch calleeSelName(call) {
	case "CreditReturn", "RepayCredits", "repayCredits":
		return true
	}
	if fn := staticCallee(w.pass.Info, call); fn != nil {
		if sum := w.eng.SummaryOf(fn); sum != nil && sum.Refunds {
			return true
		}
	}
	return false
}

func (w *creditWalker) refund(pos token.Pos, st *creditState) {
	st.refunds++
	if st.debited && st.refunds > 1 {
		w.pass.Reportf(pos,
			"credit refunded more than once after a single debit on this path: the send window grows past the receiver's buffer reservation (the PR 2 double-repay shape)")
	}
}

func (w *creditWalker) ret(s *ast.ReturnStmt, st *creditState) {
	if len(s.Results) == 0 {
		return // naked return: named results are beyond the checker
	}
	for _, res := range s.Results {
		w.events(res, st)
	}
	last := ast.Unparen(s.Results[len(s.Results)-1])
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return // success: the transmission consumes the credit
	}
	if st.debited && st.refunds == 0 {
		w.pass.Reportf(s.Pos(),
			"error path returns without refunding the debited credit: the send window shrinks permanently (refund with credits += cost or a CreditReturn/RepayCredits call before returning)")
	}
}

// --- classifier agreement --------------------------------------------------

// checkClassifiers audits the one-way/response classifier pair: the
// concrete types each answers `return true` for must be disjoint, and no
// classifier may answer true from inside a range over batch members.
func checkClassifiers(pass *Pass, eng *Engine) {
	type classifier struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var oneWay, response []classifier
	for _, fn := range eng.Order() {
		decl := eng.Decls()[fn]
		if decl.Body == nil {
			continue
		}
		switch strings.ToLower(fn.Name()) {
		case "isoneway":
			oneWay = append(oneWay, classifier{fn, decl})
		case "isresponse":
			response = append(response, classifier{fn, decl})
		}
	}
	for _, c := range append(append([]classifier{}, oneWay...), response...) {
		checkAllMemberSemantics(pass, c.decl)
	}
	for _, ow := range oneWay {
		owTrue := classifierTrueTypes(pass, ow.decl)
		for _, rs := range response {
			rsTrue := classifierTrueTypes(pass, rs.decl)
			for tname, pos := range owTrue {
				if _, both := rsTrue[tname]; both {
					pass.Reportf(pos,
						"%s is classified true by both %s and %s: its credit would be repaid twice (explicit grant and implicit response repayment) — the classes must be disjoint",
						tname, ow.fn.Name(), rs.fn.Name())
				}
			}
		}
	}
}

// checkAllMemberSemantics flags `return true` inside a range loop of a
// classifier: a batch is classified by ALL of its members (the coalescer
// prices and repays on that assumption), so answering true at the first
// matching member misclassifies every mixed batch.
func checkAllMemberSemantics(pass *Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			if _, isFn := n.(*ast.FuncLit); isFn {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			if id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident); ok && id.Name == "true" {
				pass.Reportf(ret.Pos(),
					"classifier answers true from inside a range over batch members: a batch is classified by ALL members (return false on the first mismatch, true after the loop)")
			}
			return true
		})
		return false // the inner Inspect covered the body
	})
}

// classifierTrueTypes collects the concrete type names a classifier
// answers a literal `true` for: `case T1, T2:` clauses and
// `if _, ok := m.(T); ok` guards whose body returns true.
func classifierTrueTypes(pass *Pass, decl *ast.FuncDecl) map[string]token.Pos {
	out := map[string]token.Pos{}
	record := func(texpr ast.Expr) {
		if tv, ok := pass.Info.Types[texpr]; ok && tv.IsType() {
			out[typeName(tv.Type)] = texpr.Pos()
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CaseClause:
			if n.List == nil || !bodyReturnsTrue(n.Body) {
				return true
			}
			for _, texpr := range n.List {
				record(texpr)
			}
		case *ast.IfStmt:
			// if _, ok := m.(T); ok { return true }
			as, ok := n.Init.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil || !bodyReturnsTrue(n.Body.List) {
				return true
			}
			record(ta.Type)
		}
		return true
	})
	return out
}

// bodyReturnsTrue reports whether the clause body's terminal statement is
// `return true`.
func bodyReturnsTrue(body []ast.Stmt) bool {
	for i := len(body) - 1; i >= 0; i-- {
		ret, ok := body[i].(*ast.ReturnStmt)
		if !ok {
			continue
		}
		if len(ret.Results) != 1 {
			return false
		}
		id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
		return ok && id.Name == "true"
	}
	return false
}
