package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// TestFiles are in-package _test.go files, parsed but not type-checked
	// (analyzers treat them as a registry to consult — fuzz targets — not as
	// code under analysis: tests may legitimately block, sleep and use
	// wall-clock time).
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir         string
	ImportPath  string
	Name        string
	Export      string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Standard    bool
	Error       *struct{ Err string }
}

// Load enumerates the packages matching patterns under dir, compiles export
// data for their dependency closure via `go list -export -deps`, and
// type-checks each matched package from source. It is the stdlib-only
// equivalent of golang.org/x/tools/go/packages.Load in LoadAllSyntax mode
// for the target packages (dependencies come from compiled export data,
// which is both faster and exactly what the compiler itself would see).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	matchSet := map[string]bool{}
	for _, p := range listed.deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	for _, ip := range listed.match {
		matchSet[ip] = true
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, p := range listed.deps {
		if !matchSet[p.ImportPath] || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

type listResult struct {
	deps  []listedPkg // full dependency closure, with export data
	match []string    // import paths matching the patterns
}

func goList(dir string, patterns []string) (listResult, error) {
	var res listResult

	// Pass 1: which import paths do the patterns denote?
	args := append([]string{"list", "-e"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return res, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			res.match = append(res.match, line)
		}
	}

	// Pass 2: compile the closure and collect export data + file lists.
	args = append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,CgoFiles,TestGoFiles,Standard,Error",
	}, patterns...)
	cmd = exec.Command("go", args...)
	cmd.Dir = dir
	stderr.Reset()
	cmd.Stderr = &stderr
	out, err = cmd.Output()
	if err != nil {
		return res, fmt.Errorf("go list -export %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return res, fmt.Errorf("decoding go list output: %v", err)
		}
		res.deps = append(res.deps, p)
	}
	return res, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, p listedPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		files = append(files, af)
	}
	var testFiles []*ast.File
	for _, name := range p.TestGoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		testFiles = append(testFiles, af)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Name:       p.Name,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		Info:       info,
	}, nil
}
