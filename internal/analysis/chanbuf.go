package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file is the channel-headroom prover shared by eventloop and
// lockorder: the question "can this send block?" answered by tracing the
// channel expression to its construction sites.
//
// A send is provably non-blocking when the channel has buffer headroom by
// construction. Two shapes are proved:
//
//  1. a local `ch := make(chan T, N)` with constant N > 0 in the same
//     function body (the original eventloop rule);
//  2. an unexported channel field of a package-local struct whose every
//     package-wide binding site is a buffered make or a sync.Pool whose New
//     returns one — the completion-channel idiom (`w.ch <- c` where every
//     waiter{ch: ...} literal draws from a pool of cap-1 channels).
//
// "Headroom" is still an approximation: a cap-1 channel that has already
// received its one send has none. The repo's idiom makes that sound in
// practice — each pooled completion channel receives exactly once per op —
// and the prover only accepts channels whose every binding site is such a
// construction, so an unbuffered or externally-supplied channel never
// qualifies.

// chanProvablyBuffered reports whether a send on ch cannot block for lack
// of buffer space, by the rules above. funcBody is the enclosing function
// body (used for local-variable tracing); it may be nil.
func chanProvablyBuffered(pass *Pass, ch ast.Expr, funcBody *ast.BlockStmt) bool {
	switch x := ast.Unparen(ch).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			return false
		}
		return localChanBuffered(pass, obj, funcBody) || packageVarChanBuffered(pass, obj)
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return false
		}
		return fieldChanBuffered(pass, sel.Obj())
	}
	return false
}

// localChanBuffered proves obj (a local channel variable) is bound in
// funcBody only from provably-buffered sources.
func localChanBuffered(pass *Pass, obj types.Object, funcBody *ast.BlockStmt) bool {
	if funcBody == nil {
		return false
	}
	proved := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.Defs[lid] != obj || i >= len(as.Rhs) {
				continue
			}
			proved = bufferedConstruction(pass, as.Rhs[i])
		}
		return true
	})
	return proved
}

// packageVarChanBuffered proves obj is a package-level channel variable
// initialized with a buffered make.
func packageVarChanBuffered(pass *Pass, obj types.Object) bool {
	if obj.Parent() != pass.Pkg.Scope() {
		return false
	}
	proved := false
	forEachPackageValueSpec(pass, func(vs *ast.ValueSpec) {
		for i, name := range vs.Names {
			if pass.Info.Defs[name] == obj && i < len(vs.Values) {
				proved = bufferedConstruction(pass, vs.Values[i])
			}
		}
	})
	return proved
}

// fieldChanBuffered proves every package-wide binding of the struct field
// fld draws from a buffered construction. The field must be unexported and
// its owning type package-local, so no binding site can hide elsewhere.
func fieldChanBuffered(pass *Pass, fld types.Object) bool {
	if fld.Exported() || fld.Pkg() != pass.Pkg {
		return false
	}
	bindings := 0
	allProved := true
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || pass.Info.Uses[key] != fld {
						continue
					}
					bindings++
					if !bufferedConstructionOrLocal(pass, kv.Value, enclosingFuncBody(f, n.Pos())) {
						allProved = false
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && s.Obj() == fld {
						bindings++
						if !bufferedConstructionOrLocal(pass, n.Rhs[i], enclosingFuncBody(f, n.Pos())) {
							allProved = false
						}
					}
				}
			}
			return true
		})
	}
	return bindings > 0 && allProved
}

// enclosingFuncBody finds the function body containing pos in f, for local
// variable tracing at a binding site.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			body = fd.Body
		}
		return true
	})
	return body
}

// bufferedConstructionOrLocal accepts a buffered construction directly, or
// an identifier whose local binding is one.
func bufferedConstructionOrLocal(pass *Pass, x ast.Expr, funcBody *ast.BlockStmt) bool {
	if bufferedConstruction(pass, x) {
		return true
	}
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return localChanBuffered(pass, obj, funcBody) || packageVarChanBuffered(pass, obj)
		}
	}
	return false
}

// bufferedConstruction proves x constructs a buffered channel: a
// `make(chan T, N>0)` or a `pool.Get().(chan T)` where pool is a
// package-level sync.Pool whose New returns a buffered make.
func bufferedConstruction(pass *Pass, x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		return bufferedMake(pass, x)
	case *ast.TypeAssertExpr:
		call, ok := ast.Unparen(x.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Get" {
			return false
		}
		poolID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return false
		}
		pool := pass.Info.Uses[poolID]
		if pool == nil || !isSyncPool(pool.Type()) {
			return false
		}
		return poolNewReturnsBuffered(pass, pool)
	}
	return false
}

func bufferedMake(pass *Pass, call *ast.CallExpr) bool {
	if !isBuiltinCall(pass.Info, call, "make") || len(call.Args) != 2 {
		return false
	}
	tv, ok := pass.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v > 0
}

func isSyncPool(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// poolNewReturnsBuffered proves pool (a package-level sync.Pool variable)
// is declared with a New func-lit whose every return yields a buffered
// make(chan T, N>0).
func poolNewReturnsBuffered(pass *Pass, pool types.Object) bool {
	if pool.Parent() != pass.Pkg.Scope() {
		return false
	}
	proved := false
	forEachPackageValueSpec(pass, func(vs *ast.ValueSpec) {
		for i, name := range vs.Names {
			if pass.Info.Defs[name] != pool || i >= len(vs.Values) {
				continue
			}
			lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
					continue
				}
				fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit)
				if !ok {
					continue
				}
				proved = funcLitReturnsBufferedMake(pass, fl)
			}
		}
	})
	return proved
}

func funcLitReturnsBufferedMake(pass *Pass, fl *ast.FuncLit) bool {
	returns, allBuffered := 0, true
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(fl) {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			returns++
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok || !bufferedMake(pass, call) {
				allBuffered = false
			}
		}
		return true
	})
	return returns > 0 && allBuffered
}

// forEachPackageValueSpec visits every package-level var spec.
func forEachPackageValueSpec(pass *Pass, fn func(*ast.ValueSpec)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fn(vs)
				}
			}
		}
	}
}
