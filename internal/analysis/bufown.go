package analysis

import (
	"go/ast"
	"go/types"
)

// BufOwnAnalyzer enforces the pooled-buffer ownership discipline of the
// zero-copy value path (internal/refbuf). A struct carrying both a Value
// field and an `Owner *refbuf.Buf` field — core.INV, kvs.Entry — holds a
// value that may alias a pooled wire-frame buffer, alive only while its
// refcount is. Lexically copying such a Value out of its owner's side is the
// exact shape of both aliasing bugs this rule post-dates (the chunk-transfer
// ChunkRec and the server response escape): once the entry is replaced, the
// pool recycles the frame and the escaped slice reads another frame's bytes.
//
// Two findings:
//
//  1. escape: `T{..., F: x.Value, ...}` or `y.F = x.Value` where x's type is
//     owner-bearing and T (resp. y's type) is not. The value must be cloned
//     (any call wrapping it — x.Value.Clone(), safeVal(x) — satisfies the
//     rule lexically) or the destination must carry the owner.
//  2. dropped owner: an owner-bearing composite literal that takes
//     `Value: x.Value` from an owner-bearing source without also setting
//     Owner — an adoption that silently forgets the reference it must hold.
//
// The check is lexical and package-local by design: it cannot see a clone
// behind a helper call (which is why any wrapping call passes), but the two
// historical bugs — and every site the refactor audited — are bare selector
// copies, which it flags with no false positives across the repository.
var BufOwnAnalyzer = &Analyzer{
	Name: "bufown",
	Doc:  "values aliasing pooled frame buffers must not escape their owner: clone at the boundary or carry the Owner reference",
	Run:  runBufOwn,
}

func runBufOwn(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkBufOwnLit(pass, n)
			case *ast.AssignStmt:
				checkBufOwnAssign(pass, n)
			}
			return true
		})
	}
}

// ownerBearing reports whether t (through pointers and aliases) is a struct
// type with a Value field and an Owner field of type *refbuf.Buf.
func ownerBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasValue, hasOwner := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "Value":
			hasValue = true
		case "Owner":
			hasOwner = isRefbufPtr(f.Type())
		}
	}
	return hasValue && hasOwner
}

// isRefbufPtr reports whether t is a pointer to refbuf.Buf (matched by
// name so the golden module's stand-in package qualifies too).
func isRefbufPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "Buf" && o.Pkg() != nil && o.Pkg().Name() == "refbuf"
}

// ownedValueSel reports whether e is a bare `x.Value` selector on an
// owner-bearing x. Any wrapping call — x.Value.Clone(), safeVal(x) — makes
// the expression a CallExpr and passes the rule.
func ownedValueSel(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Value" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return ownerBearing(tv.Type)
}

// typeName renders t's named type for diagnostics ("kvs.Entry", "ChunkRec").
func typeName(t types.Type) string {
	if n := namedOf(t); n != nil {
		if n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}

func checkBufOwnLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	target := tv.Type
	targetOwned := ownerBearing(target)
	setsOwner := false
	var valueFrom ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if key.Name == "Owner" {
			setsOwner = true
		}
		if !ownedValueSel(pass.Info, kv.Value) {
			continue
		}
		if targetOwned {
			if key.Name == "Value" {
				valueFrom = kv.Value
			}
			continue
		}
		pass.Reportf(kv.Value.Pos(),
			"value aliasing a pooled frame buffer escapes into %s, which carries no owner: Clone() it at the boundary or give the destination the Owner reference",
			typeName(target))
	}
	if valueFrom != nil && !setsOwner {
		pass.Reportf(valueFrom.Pos(),
			"%s adopts a possibly pooled value but drops its owner: set Owner alongside Value (or Clone() the value)",
			typeName(target))
	}
}

func checkBufOwnAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !ownedValueSel(pass.Info, rhs) {
			continue
		}
		// Only field stores escape: a local `v := e.Value` stays inside the
		// event-loop turn and is the legitimate working idiom.
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[lhs.X]
		if !ok || ownerBearing(tv.Type) {
			continue
		}
		pass.Reportf(rhs.Pos(),
			"value aliasing a pooled frame buffer is stored into a field of %s, which carries no owner: Clone() it at the boundary",
			typeName(tv.Type))
	}
}
