package analysis

import (
	"go/types"
	"testing"
)

// loadEngine builds the fixpoint engine over the testdata/engine fixture.
func loadEngine(t *testing.T) *Engine {
	t.Helper()
	pkgs, err := Load("testdata", "./engine/...")
	if err != nil {
		t.Fatalf("loading engine fixture: %v", err)
	}
	var pkg *Package
	for _, p := range pkgs {
		if p.Types.Name() == "engine" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("engine fixture package not loaded")
	}
	pass := &Pass{
		Analyzer: RefTrackAnalyzer,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	return NewEngine(pass)
}

func fnNamed(t *testing.T, eng *Engine, name string) *types.Func {
	t.Helper()
	for _, fn := range eng.Order() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %q not in engine order", name)
	return nil
}

func sumOf(t *testing.T, eng *Engine, name string) *Summary {
	t.Helper()
	sum := eng.SummaryOf(fnNamed(t, eng, name))
	if sum == nil {
		t.Fatalf("no summary for %q", name)
	}
	return sum
}

func TestEngineConsumesParamFixpoint(t *testing.T) {
	eng := loadEngine(t)
	cases := []struct {
		fn   string
		idx  int
		want bool
	}{
		{"consume", 0, true},
		{"keep", 0, false},
		// Recursion: the optimistic init keeps the recursive call consuming
		// until (unless) an iteration disproves it.
		{"consumeRec", 0, true},
		{"pingConsume", 0, true},
		{"pongConsume", 0, true},
		// The base path of spinLeak never spends, so the fixpoint refines the
		// optimistic "consumes" down to false.
		{"spinLeak", 0, false},
		// An interface call is an unknown callee: conservatively consumes
		// nothing.
		{"viaInterface", 1, false},
	}
	for _, tc := range cases {
		sum := sumOf(t, eng, tc.fn)
		if got := sum.ConsumesParam[tc.idx]; got != tc.want {
			t.Errorf("%s: ConsumesParam[%d] = %v, want %v", tc.fn, tc.idx, got, tc.want)
		}
	}
}

func TestEngineResultAndAliasSummaries(t *testing.T) {
	eng := loadEngine(t)
	if sum := sumOf(t, eng, "getRetained"); !sum.ResultAcquired[0] {
		t.Error("getRetained: result 0 should be acquired (returned retained buffer)")
	}
	if sum := sumOf(t, eng, "passthrough"); sum.ResultAliasesParam[0] != 0 {
		t.Errorf("passthrough: ResultAliasesParam[0] = %d, want 0", sum.ResultAliasesParam[0])
	}
	// Aliasing propagates through a same-package helper call.
	if sum := sumOf(t, eng, "throughHelper"); sum.ResultAliasesParam[0] != 0 {
		t.Errorf("throughHelper: ResultAliasesParam[0] = %d, want 0 (transitive)", sum.ResultAliasesParam[0])
	}
	if sum := sumOf(t, eng, "cloned"); sum.ResultAliasesParam[0] != -1 {
		t.Errorf("cloned: ResultAliasesParam[0] = %d, want -1 (append clones)", sum.ResultAliasesParam[0])
	}
	if sum := sumOf(t, eng, "rawVal"); sum.ResultAliasesParam[0] != 0 {
		t.Errorf("rawVal: ResultAliasesParam[0] = %d, want 0 (unguarded field alias)", sum.ResultAliasesParam[0])
	}
	// The owner-nil guard: `if e.Owner != nil { return clone }` proves the
	// fall-through return aliases only unpooled bytes.
	if sum := sumOf(t, eng, "condClone"); sum.ResultAliasesParam[0] != -1 {
		t.Errorf("condClone: ResultAliasesParam[0] = %d, want -1 (conditional clone)", sum.ResultAliasesParam[0])
	}
}

func TestEngineRefundBlockAndLockSummaries(t *testing.T) {
	eng := loadEngine(t)
	if !sumOf(t, eng, "repay").Refunds {
		t.Error("repay should refund (credits += n)")
	}
	if !sumOf(t, eng, "indirectRepay").Refunds {
		t.Error("indirectRepay should refund through its callee's summary")
	}
	if sumOf(t, eng, "pure").Refunds {
		t.Error("pure must not refund")
	}

	if sum := sumOf(t, eng, "blockRecv"); !sum.MayBlock || sum.BlockNote != "channel receive" {
		t.Errorf("blockRecv: MayBlock=%v note=%q, want blocking channel receive", sum.MayBlock, sum.BlockNote)
	}
	if sum := sumOf(t, eng, "indirectBlock"); !sum.MayBlock || sum.BlockNote != "blockRecv: channel receive" {
		t.Errorf("indirectBlock: MayBlock=%v note=%q, want callee-propagated note", sum.MayBlock, sum.BlockNote)
	}
	if sumOf(t, eng, "pure").MayBlock {
		t.Error("pure must not block")
	}

	if sum := sumOf(t, eng, "lockIt"); len(sum.Acquires) != 1 || sum.Acquires[0] != "S.mu" {
		t.Errorf("lockIt: Acquires = %v, want [S.mu]", sum.Acquires)
	}
	if sum := sumOf(t, eng, "indirectLock"); len(sum.Acquires) != 1 || sum.Acquires[0] != "S.mu" {
		t.Errorf("indirectLock: Acquires = %v, want [S.mu] (transitive)", sum.Acquires)
	}
}

func TestEngineUnknownCalleeFallback(t *testing.T) {
	eng := loadEngine(t)
	if eng.SummaryOf(nil) != nil {
		t.Error("nil callee must have a nil summary")
	}
	// An interface method has no body in the package: its summary must be
	// nil so analyzers report the conservative assumption instead of
	// silently trusting it.
	obj := eng.pass.Pkg.Scope().Lookup("Pusher")
	if obj == nil {
		t.Fatal("Pusher not found in fixture scope")
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		t.Fatal("Pusher is not an interface with methods")
	}
	if eng.SummaryOf(iface.Method(0)) != nil {
		t.Error("interface method must have no summary (conservative, reported fallback)")
	}
}
