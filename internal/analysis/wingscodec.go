package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WingsCodecAnalyzer enforces two decoder-side invariants inside packages
// named "wings" (the wire codec):
//
//  1. Allocation sizes must not be trusted from the wire. A count read by the
//     reader's u8/u16/u32/u64 accessors must pass through an `if` bound check
//     (against remaining buffer bytes, a max constant, ...) before it sizes a
//     make() or bounds a loop that appends. A loop's own `i < n` condition is
//     not a bound check — that is exactly the shape of an attacker-controlled
//     allocation loop.
//  2. Every wire message tag (constants named t<Upper>...) must be exercised
//     by a registered fuzz target: some Fuzz* function in the package's
//     _test.go files has to reference the constant, so `go test -fuzz` seeds
//     cover each frame type.
var WingsCodecAnalyzer = &Analyzer{
	Name: "wingscodec",
	Doc:  "bound-check wire-read counts before allocating; every wire tag needs a fuzz target",
	Run:  runWingsCodec,
}

func runWingsCodec(pass *Pass) {
	if pass.Pkg.Name() != "wings" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWireCounts(pass, fd)
		}
	}
	checkFuzzRegistry(pass)
}

// wireReadAccessors are the reader methods that pull little-endian integers
// off the wire; a value produced by one of them is attacker-controlled.
var wireReadAccessors = map[string]bool{"u8": true, "u16": true, "u32": true, "u64": true}

func checkWireCounts(pass *Pass, fd *ast.FuncDecl) {
	// Step 1: objects bound (possibly through a conversion) to a wire read.
	wire := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && isWireReadExpr(pass.Info, as.Rhs[i]) {
				wire[obj] = true
			}
		}
		return true
	})
	if len(wire) == 0 {
		return
	}

	// Step 2: positions where an `if` condition compares a wire count. Any
	// comparison in an if — against remaining bytes, a cap, zero — counts;
	// what matters is the decoder made a decision before allocating.
	var checks []struct {
		obj types.Object
		pos token.Pos
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			// The count may sit inside arithmetic (r.off+n > len(r.b)), so
			// search both operands recursively.
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(s ast.Node) bool {
					if id, ok := s.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil && wire[obj] {
							checks = append(checks, struct {
								obj types.Object
								pos token.Pos
							}{obj, ifs.Pos()})
						}
					}
					return true
				})
			}
			return true
		})
		return true
	})
	checked := func(obj types.Object, use token.Pos) bool {
		for _, c := range checks {
			if c.obj == obj && c.pos < use {
				return true
			}
		}
		return false
	}
	usesWire := func(e ast.Expr) types.Object {
		var found types.Object
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && wire[obj] {
					found = obj
				}
			}
			return true
		})
		return found
	}

	// Step 3: flag unchecked uses — make() sized by a wire count, and loops
	// bounded by one whose body appends.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isBuiltinCall(pass.Info, n, "make") {
				return true
			}
			for _, arg := range n.Args[1:] {
				if obj := usesWire(arg); obj != nil && !checked(obj, n.Pos()) {
					pass.Reportf(n.Pos(),
						"make sized by wire-read count %s without a preceding bound check against remaining buffer bytes",
						obj.Name())
				}
			}
		case *ast.ForStmt:
			if n.Cond == nil {
				return true
			}
			obj := usesWire(n.Cond)
			if obj == nil || checked(obj, n.Pos()) {
				return true
			}
			appends := false
			ast.Inspect(n.Body, func(b ast.Node) bool {
				if call, ok := b.(*ast.CallExpr); ok && isBuiltinCall(pass.Info, call, "append") {
					appends = true
				}
				return true
			})
			if appends {
				pass.Reportf(n.Pos(),
					"append loop bounded by wire-read count %s without a preceding bound check against remaining buffer bytes",
					obj.Name())
			}
		}
		return true
	})
}

// isWireReadExpr reports whether e is r.uN(...) possibly wrapped in a
// conversion like int(...).
func isWireReadExpr(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if isConversion(info, call) && len(call.Args) == 1 {
		return isWireReadExpr(info, call.Args[0])
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && wireReadAccessors[sel.Sel.Name]
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// checkFuzzRegistry verifies each wire tag constant (t<Upper>...) is
// referenced from some Fuzz* function in the package's test files.
func checkFuzzRegistry(pass *Pass) {
	// Idents referenced inside Fuzz* functions (test files are parse-only,
	// so matching is by name — tags are package-scoped constants).
	fuzzed := map[string]bool{}
	for _, f := range pass.TestFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !strings.HasPrefix(fd.Name.Name, "Fuzz") || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					fuzzed[id.Name] = true
				}
				return true
			})
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isWireTagName(name.Name) || fuzzed[name.Name] {
						continue
					}
					pass.Reportf(name.Pos(),
						"wire tag %s has no fuzz target: reference it from a Fuzz* function so decode fuzzing seeds this frame type",
						name.Name)
				}
			}
		}
	}
}

// isWireTagName matches the tag naming convention: t followed by an
// upper-case letter (tINV, tShardBatch, ...).
func isWireTagName(name string) bool {
	return len(name) >= 2 && name[0] == 't' && name[1] >= 'A' && name[1] <= 'Z'
}
