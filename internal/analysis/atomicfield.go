package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicFieldAnalyzer flags struct fields that are accessed through
// sync/atomic in one place and plainly in another within the same package.
// Mixed access is a data race the race detector only catches when both sides
// execute in the same run (PR 5's flake): once any access site uses
// atomic.Load/Store/Add on &s.f, every other access of s.f must too.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "detects mixed atomic/plain access to the same struct field across a package",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	type atomicUse struct {
		pos token.Pos
		fn  string // the sync/atomic function used
	}
	atomicUses := map[*types.Var][]atomicUse{} // field → atomic access sites
	partOfAtomic := map[*ast.SelectorExpr]bool{}

	// Pass 1: find atomic accesses — sync/atomic calls taking &x.f.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(pass.Info, sel); fv != nil && fv.Pkg() == pass.Pkg {
					atomicUses[fv] = append(atomicUses[fv], atomicUse{pos: sel.Pos(), fn: fn.Name()})
					partOfAtomic[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicUses) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a plain (racy) access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || partOfAtomic[sel] {
				return true
			}
			fv := fieldOf(pass.Info, sel)
			if fv == nil {
				return true
			}
			uses, ok := atomicUses[fv]
			if !ok {
				return true
			}
			first := pass.Fset.Position(uses[0].pos)
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed atomically (atomic.%s at %s:%d); use sync/atomic for every access",
				fieldPath(pass.Info, sel, fv), uses[0].fn, first.Filename, first.Line)
			return true
		})
	}
}

// fieldOf resolves a selector to the struct field it denotes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldPath renders "Type.field" for a selector when the receiver type is
// named, else just the field name.
func fieldPath(info *types.Info, sel *ast.SelectorExpr, fv *types.Var) string {
	if tv, ok := info.Types[sel.X]; ok {
		if n := namedOf(tv.Type); n != nil {
			return fmt.Sprintf("%s.%s", n.Obj().Name(), fv.Name())
		}
	}
	return fv.Name()
}
