// Package refbuf is the golden stand-in for the repository's refcounted
// buffer package: reftrack matches Retain/TryRetain/Release/Pool.Get by
// package, receiver and method name, so this minimal shape is all the
// analyzer needs.
package refbuf

// Buf is a refcounted pooled buffer.
type Buf struct{ refs int32 }

// Retain adds a reference.
func (b *Buf) Retain() { b.refs++ }

// TryRetain adds a reference unless the buffer is already released.
func (b *Buf) TryRetain() bool {
	if b.refs > 0 {
		b.refs++
		return true
	}
	return false
}

// Release drops one reference.
func (b *Buf) Release() { b.refs-- }

// Pool hands out buffers with one reference already held.
type Pool struct{}

// Get returns a buffer the caller owns one reference to.
func (p *Pool) Get(n int) *Buf { return &Buf{refs: 1} }
