// Golden cases for reftrack: every acquired frame-buffer reference must be
// spent exactly once on every path. Red cases carry want comments; green
// cases carry none and fail the test if the analyzer overreaches.
package app

import "vettest/reftrack/refbuf"

var pool refbuf.Pool

// Entry is the owner-bearing shape (Value + Owner *refbuf.Buf).
type Entry struct {
	Value []byte
	Owner *refbuf.Buf
}

// Msg carries bytes with no owner — escaping pooled bytes into it needs a
// clone.
type Msg struct {
	Data []byte
}

func use(b *refbuf.Buf) {}

// --- red: straight leaks ---------------------------------------------------

func leak() {
	b := pool.Get(64) // want `reference acquired by Pool.Get.*is never spent`
	_ = b
}

func dropped() {
	pool.Get(8) // want `reference returned by Pool.Get is dropped`
}

func loopLeak(n int) {
	for i := 0; i < n; i++ {
		b := pool.Get(8) // want `leaks at the end of each loop iteration`
		_ = b
	}
}

// --- red: double release ---------------------------------------------------

func double() {
	b := pool.Get(64)
	b.Release()
	b.Release() // want `double release`
}

func deferredDouble() {
	b := pool.Get(64)
	defer b.Release()
	b.Release() // want `double release`
}

// --- red: path imbalance ---------------------------------------------------

func imbalance(cond bool) {
	b := pool.Get(64) // want `spent on some paths but not others`
	if cond {
		b.Release()
	}
}

// --- green: balanced shapes ------------------------------------------------

func balanced() {
	b := pool.Get(64)
	defer b.Release()
	use(b)
}

func balancedBranches(cond bool) {
	b := pool.Get(64)
	if cond {
		b.Release()
	} else {
		b.Release()
	}
}

func tryRetainGuard(b *refbuf.Buf) {
	if b.TryRetain() {
		b.Release()
	}
}

func tryRetainNegated(b *refbuf.Buf) {
	if !b.TryRetain() {
		return
	}
	b.Release()
}

func adoptLiteral(data []byte) Entry {
	b := pool.Get(len(data))
	return Entry{Value: data, Owner: b}
}

func adoptField(e *Entry) {
	b := pool.Get(8)
	e.Owner = b
}

// getRetained transfers its reference to the caller (ResultAcquired).
func getRetained() *refbuf.Buf {
	b := pool.Get(8)
	return b
}

func callerReleases() {
	b := getRetained()
	b.Release()
}

// --- red: acquiring helper, caller drops -----------------------------------

func callerLeaks() {
	b := getRetained() // want `reference acquired by call to getRetained.*is never spent`
	_ = b
}

// --- interprocedural consumption (fixpoint) --------------------------------

// consume spends its argument: callers passing a reference are balanced.
func consume(b *refbuf.Buf) {
	b.Release()
}

func viaConsumingHelper() {
	b := pool.Get(8)
	consume(b)
}

// note does NOT spend its argument; passing is not spending, and the
// assumption is carried into the leak report.
func note(b *refbuf.Buf) {}

func leakThroughHelper() {
	b := pool.Get(8) // want `never spent.*note does not consume its argument`
	note(b)
}

// --- fixpoint: recursion and mutual recursion ------------------------------

// consumeRec consumes through recursion: the optimistic fixpoint keeps the
// recursive call consuming, and the base case proves it.
func consumeRec(b *refbuf.Buf, n int) {
	if n == 0 {
		b.Release()
		return
	}
	consumeRec(b, n-1)
}

func recursionGreen() {
	b := pool.Get(8)
	consumeRec(b, 3)
}

func pingConsume(b *refbuf.Buf, n int) {
	if n <= 0 {
		b.Release()
		return
	}
	pongConsume(b, n-1)
}

func pongConsume(b *refbuf.Buf, n int) {
	if n <= 0 {
		b.Release()
		return
	}
	pingConsume(b, n-1)
}

func mutualRecursionGreen() {
	b := pool.Get(8)
	pingConsume(b, 4)
}

// spin never spends its argument on the base path, so the fixpoint refines
// its optimistic "consumes" down to "does not".
func spin(b *refbuf.Buf, n int) {
	if n == 0 {
		return
	}
	spin(b, n-1)
}

func recursionRed() {
	b := pool.Get(8) // want `never spent.*spin does not consume its argument`
	spin(b, 3)
}

// --- conservative fallbacks are reported assumptions, not silent passes ----

func dynamicCallee(f func(*refbuf.Buf)) {
	b := pool.Get(8) // want `never spent.*dynamic callee, conservatively assumed to consume nothing`
	f(b)
}

type Sink interface {
	Push(b *refbuf.Buf)
}

func interfaceCallee(s Sink) {
	b := pool.Get(8) // want `never spent.*assumed to consume nothing`
	s.Push(b)
}

// --- the bufown blind spot: no-clone aliasing through a helper -------------

// passthrough returns its argument's bytes unchanged — no clone. bufown's
// lexical rule gives any wrapping call a free pass; the aliasing summary
// does not.
func passthrough(v []byte) []byte { return v }

func hiddenNoClone(e Entry) Msg {
	return Msg{Data: passthrough(e.Value)} // want `passthrough, which returns its argument's bytes without a clone`
}

func hiddenNoCloneAssign(e Entry, m *Msg) {
	m.Data = passthrough(e.Value) // want `passthrough, which returns its argument's bytes without a clone`
}

// clone actually copies, so the same shape is green.
func clone(v []byte) []byte { return append([]byte(nil), v...) }

func clonedEscape(e Entry) Msg {
	return Msg{Data: clone(e.Value)}
}

// safeVal is the conditional-clone idiom: it clones exactly when the bytes
// are pooled, so the fall-through return aliases only unpooled bytes and
// escaping its result is green.
func safeVal(e Entry) []byte {
	if e.Owner != nil {
		return clone(e.Value)
	}
	return e.Value
}

func conditionalCloneEscape(e Entry) Msg {
	return Msg{Data: safeVal(e)}
}

// --- comma-ok acquisition guard --------------------------------------------

// lookupRetained acquires only on success (the bool reports it).
func lookupRetained(hit bool) ([]byte, *refbuf.Buf, bool) {
	if !hit {
		return nil, nil, false
	}
	b := pool.Get(8)
	return nil, b, true
}

// green: the reference exists only on the ok branch, where the literal's
// unexported owner field adopts it.
type queued struct {
	data  []byte
	owner *refbuf.Buf
}

func okGuardAdopt(hit bool) *queued {
	if v, owner, ok := lookupRetained(hit); ok {
		return &queued{data: v, owner: owner}
	}
	return nil
}

// red: the ok branch drops the acquired reference.
func okGuardLeak(hit bool) []byte {
	if v, _, ok := lookupRetained(hit); ok { // want `reference returned by call to lookupRetained is discarded into _`
		return v
	}
	return nil
}

// --- ignore directive ------------------------------------------------------

func waived() {
	b := pool.Get(8) //hermesvet:ignore reftrack golden case exercising suppression of a deliberate leak
	_ = b
}
