// The waiver below outlived its finding: the full suite runs over this
// package and nothing is suppressed, so the directive itself must be
// reported as stale by the "hermesvet" pseudo-analyzer.
package app

func fine() int {
	x := 1 //hermesvet:ignore bufown this waiver outlived the refactor that justified it
	return x
}
