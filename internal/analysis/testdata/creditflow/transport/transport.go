// Golden cases for creditflow's classifier-agreement check: the one-way and
// response classifiers must answer true for disjoint concrete types, and a
// batch is classified by ALL of its members.
package transport

type VAL struct{}
type ACK struct{}
type INV struct{}

type Batch struct {
	Msgs []any
}

func isOneWay(m any) bool {
	if b, ok := m.(Batch); ok {
		for _, sm := range b.Msgs {
			if isOneWay(sm) {
				return true // want `classified by ALL members`
			}
		}
		return false
	}
	switch m.(type) {
	case VAL, ACK: // want `ACK is classified true by both isOneWay and isResponse`
		return true
	}
	return false
}

func isResponse(m any) bool {
	// green: the batch arm uses all-member semantics (false on the first
	// mismatch, true only after the loop).
	if b, ok := m.(Batch); ok {
		for _, sm := range b.Msgs {
			if !isResponse(sm) {
				return false
			}
		}
		return len(b.Msgs) > 0
	}
	if _, ok := m.(ACK); ok {
		return true
	}
	return false
}
