// Golden cases for creditflow's debit/refund path check: every debited
// credit must be consumed by a successful send (return nil) or refunded on
// the path that fails.
package wings

import "errors"

var errEncode = errors.New("encode failed")

type Link struct {
	credits int
}

// red: debit, then an error return with no refund — the PR 2 leak shape.
func (l *Link) SendLeaky(cost int) error {
	l.credits -= cost
	return errEncode // want `error path returns without refunding the debited credit`
}

// green: the error path refunds before returning.
func (l *Link) SendRefunds(cost int) error {
	l.credits -= cost
	if cost > 0 {
		l.credits += cost
		return errEncode
	}
	return nil
}

// refund is a same-package helper whose engine summary refunds.
func (l *Link) refund(n int) { l.credits += n }

// green: the refund arrives through the helper (interprocedural summary).
func (l *Link) SendHelperRefund(cost int) error {
	l.credits -= cost
	if cost > 0 {
		l.refund(cost)
		return errEncode
	}
	return nil
}

// red: two refunds after a single debit — the PR 2 double-repay shape.
func (l *Link) SendDoubleRepay(cost int) error {
	l.credits -= cost
	l.credits += cost
	l.credits += cost // want `credit refunded more than once after a single debit`
	return errEncode
}

// green: no error result means no error path to audit.
func (l *Link) Debit(cost int) {
	l.credits -= cost
}

// ignore: the caller repays on this link's behalf (documented contract).
func (l *Link) SendWaived(cost int) error {
	l.credits -= cost
	return errEncode //hermesvet:ignore creditflow the caller repays on our behalf after requeueing the frame
}
