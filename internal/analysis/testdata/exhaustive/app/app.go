// Golden cases for the exhaustive analyzer: enum switches and terminal
// type-switches over protocol messages.
package app

import "vettest/exhaustive/proto"

func missing(k proto.OpKind) int {
	switch k { // want `switch over proto\.OpKind is not exhaustive: missing OpRead`
	case proto.OpWrite:
		return 1
	case proto.OpCAS, proto.OpFAA:
		return 2
	}
	return 0
}

// covered lists every variant: green case.
func covered(k proto.OpKind) int {
	switch k {
	case proto.OpRead, proto.OpWrite, proto.OpCAS, proto.OpFAA:
		return 1
	}
	return 0
}

// defaulted fails explicitly on the variants it does not handle: green case.
func defaulted(s proto.Status) int {
	switch s {
	case proto.OK:
		return 1
	default:
		panic("unknown status")
	}
}

func suppressed(s proto.Status) int {
	//hermesvet:ignore exhaustive legacy accounting path predates Aborted and ignores it by design
	switch s {
	case proto.OK:
		return 1
	}
	return 0
}

func use(uint64) {}

func dispatch(m any) {
	switch m := m.(type) { // want `terminal type-switch over protocol messages has no default`
	case proto.INV:
		use(m.Key)
	case proto.ACK:
		use(m.Key)
	}
}

// dispatchChecked panics on unknown messages: green case.
func dispatchChecked(m any) {
	switch m := m.(type) {
	case proto.INV:
		use(m.Key)
	case proto.VAL:
		use(m.Key)
	default:
		panic("unknown message")
	}
}

func dispatchEmptyDefault(m any) {
	switch m.(type) {
	case proto.INV:
	case proto.ACK:
	default: // want `empty default in protocol message type-switch silently drops unknown messages`
	}
}

// peek is non-terminal — code follows the switch — so ignoring other
// variants is legitimate: green case.
func peek(m any) int {
	n := 0
	switch m := m.(type) {
	case proto.INV:
		use(m.Key)
	case proto.ACK:
		use(m.Key)
	}
	n++
	return n
}

var _ = []any{missing, covered, defaulted, suppressed, dispatch, dispatchChecked, dispatchEmptyDefault, peek}
