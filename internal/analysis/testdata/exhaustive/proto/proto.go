// Mini protocol package for the exhaustive analyzer's golden cases: the
// package name "proto" is what scopes the enum rule.
package proto

type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpCAS
	OpFAA
)

type Status uint8

const (
	OK Status = iota
	Aborted
)

type INV struct{ Key uint64 }
type ACK struct{ Key uint64 }
type VAL struct{ Key uint64 }
