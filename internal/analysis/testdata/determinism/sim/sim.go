// Golden cases for the determinism analyzer, in a package named sim.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

type Engine struct {
	rng     *rand.Rand
	pending map[uint64]int
}

// Seed builds a seeded generator — constructors are the sanctioned path.
func (e *Engine) Seed(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
}

func (e *Engine) Jitter() int {
	return rand.Intn(10) // want `global rand\.Intn uses shared unseeded state`
}

// JitterSeeded draws from the engine's own generator: green case.
func (e *Engine) JitterSeeded() int {
	return e.rng.Intn(10)
}

func (e *Engine) Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now breaks seeded replay`
}

func (e *Engine) Retransmit() {
	for k := range e.pending { // want `map iteration order feeds Send`
		e.Send(k)
	}
}

func (e *Engine) Send(k uint64) { _ = k }

// RetransmitSorted collects and sorts keys before emitting: green case.
func (e *Engine) RetransmitSorted() {
	keys := make([]uint64, 0, len(e.pending))
	for k := range e.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e.Send(k)
	}
}

func (e *Engine) Uptime() time.Duration {
	return time.Since(time.Time{}) //hermesvet:ignore determinism operator status line only; never feeds the schedule
}
