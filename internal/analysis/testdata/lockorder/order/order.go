// Golden cases for lockorder's acquisition-order cycle check.
package order

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// red pair: lockAB takes A.mu → B.mu, lockBA takes B.mu → A.mu.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-acquisition-order cycle: A.mu → B.mu → A.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// green pair: both callers agree on C.mu before D.mu.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockCD(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// green: the D.mu acquisition arrives through a helper's summary, in the
// same C-before-D order.
func lockCDViaHelper(c *C, d *D) {
	c.mu.Lock()
	lockD(d)
	c.mu.Unlock()
}

// red pair: the same inversion, with one side's acquisition hidden behind a
// helper call (the edge comes from the engine summary).
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func grabF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func eThenF(e *E, f *F) {
	e.mu.Lock()
	grabF(f) // want `lock-acquisition-order cycle: E.mu → F.mu → E.mu`
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}

// green: two instances of one type share a lock identity; ordering them is
// out of scope (no self-edge, no report).
func transfer(src, dst *C) {
	src.mu.Lock()
	dst.mu.Lock()
	dst.mu.Unlock()
	src.mu.Unlock()
}
