// Golden cases for lockorder's blocking-while-holding check.
package app

import (
	"sync"
	"time"
)

type Server struct {
	mu   sync.Mutex
	data chan int
}

// red: a sleep inside the critical section.
func (s *Server) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding Server.mu`
	s.mu.Unlock()
}

// red: a deferred Unlock keeps the lock held for the whole body.
func (s *Server) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.data // want `channel receive while holding Server.mu`
}

// red: an unbuffered send stalls every contender if the reader is slow.
func (s *Server) UnbufferedSend(v int) {
	s.mu.Lock()
	s.data <- v // want `channel send without provable buffer headroom while holding Server.mu`
	s.mu.Unlock()
}

// red: a default-less select parks the holder.
func (s *Server) SelectUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without a default case while holding Server.mu`
	case v := <-s.data:
		return v
	}
}

// red: the blocking operation hides one call deep (engine summary).
func (s *Server) waitForData() int {
	return <-s.data
}

func (s *Server) IndirectBlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waitForData() // want `waitForData may block: channel receive`
}

// green: the lock is released before the receive.
func (s *Server) UnlockFirst() int {
	s.mu.Lock()
	s.mu.Unlock()
	return <-s.data
}

// green: a local cap-1 channel has provable headroom for its one send.
func (s *Server) BufferedSend(v int) int {
	done := make(chan int, 1)
	s.mu.Lock()
	done <- v
	s.mu.Unlock()
	return <-done
}

// green: select with a default never parks.
func (s *Server) OfferUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.data <- v:
	default:
	}
}

// green: Cond.Wait atomically releases the mutex it coordinates with.
type Queue struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func (q *Queue) WaitReady() {
	q.mu.Lock()
	q.cond.Wait()
	q.mu.Unlock()
}

// ignore: a receive the surrounding protocol bounds.
func (s *Server) Waived() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.data //hermesvet:ignore lockorder the producer is on the same goroutine pool and never parks
}
