// Golden cases for the atomicfield analyzer: mixed atomic/plain access.
package metrics

import "sync/atomic"

type Counters struct {
	reads  uint64
	writes uint64
	other  uint64
}

func (c *Counters) IncReads() {
	atomic.AddUint64(&c.reads, 1)
}

func (c *Counters) Reads() uint64 {
	return atomic.LoadUint64(&c.reads)
}

func (c *Counters) Snapshot() uint64 {
	return c.reads // want `plain access to field Counters\.reads, which is accessed atomically`
}

func (c *Counters) IncWrites() {
	atomic.AddUint64(&c.writes, 1)
}

func (c *Counters) WritesApprox() uint64 {
	return c.writes //hermesvet:ignore atomicfield approximate stats snapshot; a torn read is acceptable here
}

// Other is never touched atomically, so plain access is fine.
func (c *Counters) Other() uint64 {
	c.other++
	return c.other
}
