// Fixture for the engine fixpoint unit test (engine_test.go asserts the
// computed summaries for these functions by name): consumption through
// recursion and mutual recursion, result acquisition, no-clone aliasing
// through helpers, refund and blocking propagation, transitive lock sets,
// and the interface-method fallback.
package engine

import (
	"sync"

	"vettest/reftrack/refbuf"
)

var pool refbuf.Pool

func consume(b *refbuf.Buf) { b.Release() }

func keep(b *refbuf.Buf) {}

func consumeRec(b *refbuf.Buf, n int) {
	if n == 0 {
		b.Release()
		return
	}
	consumeRec(b, n-1)
}

func pingConsume(b *refbuf.Buf, n int) {
	if n <= 0 {
		b.Release()
		return
	}
	pongConsume(b, n-1)
}

func pongConsume(b *refbuf.Buf, n int) {
	if n <= 0 {
		b.Release()
		return
	}
	pingConsume(b, n-1)
}

func spinLeak(b *refbuf.Buf, n int) {
	if n == 0 {
		return
	}
	spinLeak(b, n-1)
}

func getRetained() *refbuf.Buf {
	b := pool.Get(8)
	return b
}

func passthrough(v []byte) []byte { return v }

func throughHelper(v []byte) []byte { return passthrough(v) }

func cloned(v []byte) []byte { return append([]byte(nil), v...) }

type Entry struct {
	Value []byte
	Owner *refbuf.Buf
}

// condClone clones exactly when the bytes are pooled: the fall-through
// return aliases only unpooled bytes, so the summary is non-aliasing.
func condClone(e Entry) []byte {
	if e.Owner != nil {
		return cloned(e.Value)
	}
	return e.Value
}

// rawVal has no guard: its result aliases the (possibly pooled) argument.
func rawVal(e Entry) []byte { return e.Value }

type Link struct{ credits int }

func (l *Link) repay(n int) { l.credits += n }

func (l *Link) indirectRepay(n int) { l.repay(n) }

func blockRecv(ch chan int) int { return <-ch }

func indirectBlock(ch chan int) int { return blockRecv(ch) }

func pure(x int) int { return x + 1 }

type S struct{ mu sync.Mutex }

func (s *S) lockIt() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) indirectLock() { s.lockIt() }

type Pusher interface {
	Push(b *refbuf.Buf)
}

func viaInterface(p Pusher, b *refbuf.Buf) { p.Push(b) }
