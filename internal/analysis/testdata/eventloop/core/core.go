// Golden cases for the eventloop analyzer: a mock Hermes state machine in a
// package named core, mirroring the real handler surface.
package core

import (
	"sync"
	"time"
)

type Hermes struct {
	mu    sync.Mutex
	ch    chan int
	inbox chan any
}

func (h *Hermes) Deliver(msg any) {
	h.mu.Lock() // want `sync.Mutex.Lock may block the event loop`
	defer h.mu.Unlock()
	h.onINV(msg)
}

// onINV is not itself a root; the finding must surface via the Deliver chain.
func (h *Hermes) onINV(msg any) {
	_ = msg
	time.Sleep(time.Millisecond) // want `time.Sleep blocks the event loop \(event-loop path: Deliver → onINV\)`
}

func (h *Hermes) Tick() {
	h.ch <- 1   // want `channel send may block the event loop`
	v := <-h.ch // want `channel receive may block the event loop`
	_ = v
	select { // want `select without a default case blocks the event loop`
	case m := <-h.inbox:
		_ = m
	}
}

// Submit is the green case: goroutines, provably buffered channels, and
// selects with a default are all sanctioned.
func (h *Hermes) Submit(op int) {
	done := make(chan int, 1)
	go func() {
		time.Sleep(time.Second) // off-loop goroutine: exempt
		done <- op
	}()
	select {
	case v := <-done:
		_ = v
	default:
	}
	done <- op // cap-1 channel made in this function: exempt
}

func (h *Hermes) OnViewChange() {
	h.mu.Lock() //hermesvet:ignore eventloop two-load critical section held only while swapping the view pointer
	h.mu.Unlock()
}
