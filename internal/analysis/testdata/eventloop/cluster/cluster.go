// Golden cases for the eventloop analyzer's cluster roots: Send/Complete on
// Env and Transport implementations.
package cluster

import "sync"

type nodeEnv struct {
	mu sync.Mutex
}

func (e *nodeEnv) Send(to int, msg any) {
	e.enqueue(msg)
}

func (e *nodeEnv) enqueue(msg any) {
	e.mu.Lock() // want `sync.Mutex.Lock may block the event loop \(event-loop path: Send → enqueue\)`
	defer e.mu.Unlock()
	_ = msg
}

type ChanTransport struct {
	inbox chan any
}

// Send is the green shape: non-blocking offer with an explicit drop path.
func (t *ChanTransport) Send(from, to int, msg any) {
	select {
	case t.inbox <- msg:
	default:
	}
}

func (t *ChanTransport) Complete(msg any) {
	t.inbox <- msg //hermesvet:ignore eventloop cap-1 completion channel drained by the sole waiter before reuse
}

// completionEnv is the pool-backed green shape: every binding of the done
// field draws from a package-level pool of cap-1 channels, so
// chanProvablyBuffered proves the send non-blocking and no waiver is needed
// (the shape the cluster waiver audit retired).
type completionEnv struct {
	waiters map[int]doneWaiter
}

type doneWaiter struct {
	done chan any
}

var donePool = sync.Pool{
	New: func() any { return make(chan any, 1) },
}

func (e *completionEnv) register(id int) {
	ch := donePool.Get().(chan any)
	e.waiters[id] = doneWaiter{done: ch}
}

func (e *completionEnv) Complete(msg any) {
	w := e.waiters[0]
	w.done <- msg
}
