// Golden cases for the eventloop analyzer's cluster roots: Send/Complete on
// Env and Transport implementations.
package cluster

import "sync"

type nodeEnv struct {
	mu sync.Mutex
}

func (e *nodeEnv) Send(to int, msg any) {
	e.enqueue(msg)
}

func (e *nodeEnv) enqueue(msg any) {
	e.mu.Lock() // want `sync.Mutex.Lock may block the event loop \(event-loop path: Send → enqueue\)`
	defer e.mu.Unlock()
	_ = msg
}

type ChanTransport struct {
	inbox chan any
}

// Send is the green shape: non-blocking offer with an explicit drop path.
func (t *ChanTransport) Send(from, to int, msg any) {
	select {
	case t.inbox <- msg:
	default:
	}
}

func (t *ChanTransport) Complete(msg any) {
	t.inbox <- msg //hermesvet:ignore eventloop cap-1 completion channel drained by the sole waiter before reuse
}
