// Package refbuf is the golden stand-in for the repository's refcounted
// buffer package: bufown matches the Owner field's type by package and type
// name, so this minimal shape is all the analyzer needs.
package refbuf

// Buf is a refcounted pooled buffer.
type Buf struct{ refs int32 }

// Retain adds a reference.
func (b *Buf) Retain() { b.refs++ }

// Release drops one.
func (b *Buf) Release() { b.refs-- }
