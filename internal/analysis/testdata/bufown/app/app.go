// Golden cases for the bufown analyzer: values that may alias pooled frame
// buffers escaping their owner-bearing structs.
package app

import "vettest/bufown/store"

// chunkEscape is the chunk-transfer post-mortem shape: the store entry's
// value shipped into an owner-less record without a clone.
func chunkEscape(e store.Entry) store.Rec {
	return store.Rec{TS: e.TS, Value: e.Value} // want `value aliasing a pooled frame buffer escapes into store\.Rec`
}

// chunkCloned copies at the boundary: green case (any wrapping call passes).
func chunkCloned(e store.Entry) store.Rec {
	return store.Rec{TS: e.TS, Value: store.Clone(e.Value)}
}

// adoptDroppingOwner installs a wire value but forgets the reference that
// pins it — the entry would read recycled bytes after the INV's release.
func adoptDroppingOwner(inv store.INV) store.Entry {
	return store.Entry{Value: inv.Value} // want `store\.Entry adopts a possibly pooled value but drops its owner`
}

// adoptWithOwner transfers the reference alongside the value: green case.
func adoptWithOwner(inv store.INV) store.Entry {
	return store.Entry{Value: inv.Value, Owner: inv.Owner}
}

// adoptHeapValue fills an owner-bearing entry from an owner-less source:
// green case (nothing pooled to pin).
func adoptHeapValue(r store.Rec) store.Entry {
	return store.Entry{Value: r.Value}
}

// fieldEscape stores an owned value into an owner-less struct's field.
func fieldEscape(e store.Entry, r *store.Rec) {
	r.Value = e.Value // want `value aliasing a pooled frame buffer is stored into a field of store\.Rec`
}

// localAlias is the working idiom inside an event-loop turn: green case.
func localAlias(e store.Entry) int {
	v := e.Value
	return len(v)
}

// suppressed documents a site audited by hand.
func suppressed(e store.Entry) store.Rec {
	//hermesvet:ignore bufown the entry is snapshot-owned by this call's caller and outlives the record
	return store.Rec{Value: e.Value}
}
