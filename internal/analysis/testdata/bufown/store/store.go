// Package store declares the owner-bearing and owner-less record shapes the
// bufown golden cases move values between.
package store

import "vettest/bufown/refbuf"

// Entry is owner-bearing: Value may alias a pooled frame buffer pinned by
// Owner's reference.
type Entry struct {
	Value []byte
	TS    uint64
	Owner *refbuf.Buf
}

// INV is the other owner-bearing shape (a wire message adopting its frame).
type INV struct {
	Key   uint64
	Value []byte
	Owner *refbuf.Buf
}

// Rec carries a value with no owner: anything stored here must be a private
// heap copy.
type Rec struct {
	TS    uint64
	Value []byte
}

// Clone returns a private copy of b.
func Clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
