module vettest

go 1.22
