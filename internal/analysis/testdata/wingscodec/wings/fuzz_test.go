package wings

import "testing"

// FuzzDecode registers tGood; tBad is deliberately missing (red case) and
// tIgn carries an ignore directive at its declaration.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{tGood})
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = decode(b)
	})
}
