// Golden cases for the wingscodec analyzer: wire-count bound checks and the
// fuzz-target registry, in a package named wings with the real reader shape.
package wings

import "io"

const (
	tGood uint8 = iota + 1
	tBad        // want `wire tag tBad has no fuzz target`
	tIgn        //hermesvet:ignore wingscodec link-layer frame covered by the transport fuzzer, not the codec one
)

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := uint16(r.b[r.off]) | uint16(r.b[r.off+1])<<8
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := uint32(r.b[r.off])
	r.off += 4
	return v
}

// decode trusts the wire count: red case.
func decode(b []byte) ([]uint64, error) {
	r := &reader{b: b}
	n := int(r.u32())
	out := make([]uint64, n) // want `make sized by wire-read count n without a preceding bound check`
	for i := range out {
		out[i] = uint64(r.u32())
	}
	return out, r.err
}

// decodeChecked validates against remaining bytes first: green case.
func decodeChecked(b []byte) ([]byte, error) {
	r := &reader{b: b}
	n := int(r.u32())
	if n < 0 || r.off+n > len(r.b) {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	return out, nil
}

// decodeLoop appends under a wire-count loop bound with no check: red case.
func decodeLoop(b []byte) []uint64 {
	r := &reader{b: b}
	n := int(r.u16())
	var out []uint64
	for i := 0; i < n && r.err == nil; i++ { // want `append loop bounded by wire-read count n`
		out = append(out, uint64(r.u32()))
	}
	return out
}

func decodeIgnored(b []byte) []byte {
	r := &reader{b: b}
	n := int(r.u32())
	out := make([]byte, n) //hermesvet:ignore wingscodec framing layer already capped the payload at maxFrame before dispatch
	copy(out, r.b[r.off:])
	return out
}

var _ = []any{decode, decodeChecked, decodeLoop, decodeIgnored}
