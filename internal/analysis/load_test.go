package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestLoadRepoPackages smoke-tests the stdlib-only loader against the real
// repository: packages resolve, type-check, and carry test files.
func TestLoadRepoPackages(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/proto", "./internal/wings")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byName[p.Name] = p
	}
	for _, name := range []string{"proto", "wings"} {
		p := byName[name]
		if p == nil {
			t.Fatalf("package %s not loaded (got %v)", name, byName)
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("package %s loaded without type information", name)
		}
	}
	if len(byName["wings"].TestFiles) == 0 {
		t.Error("wings test files not loaded; the fuzz registry check would be blind")
	}
}
