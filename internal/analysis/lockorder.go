package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrderAnalyzer audits mutex discipline with the engine's summaries:
//
//   - blocking while holding: a channel send without provable buffer
//     headroom, a channel receive, a default-less select, time.Sleep,
//     socket I/O, WaitGroup.Wait — or a call to a same-package function
//     whose summary says it may do one of those — executed while a mutex is
//     held. One stalled holder stalls every contender; on the event loop
//     that is the gray-failure shape the cluster waivers argue about.
//     sync.Cond.Wait is exempt for its own mutex (it releases it
//     atomically); select-with-default and sends proved buffered by
//     chanProvablyBuffered (local makes, pool-backed completion channels)
//     are non-blocking by construction.
//   - lock-order cycles: an edge A→B is recorded whenever B is acquired
//     (directly or transitively through a summarized callee) while A is
//     held; a cycle in the per-package graph is a deadlock waiting for the
//     right interleaving. Lock identity is "Type.field" — every instance of
//     a type shares the discipline — so self-edges (two instances of one
//     type) are excluded rather than reported: ordering instances of the
//     same type needs a runtime tiebreak the analyzer cannot see.
//
// Branch merging keeps the intersection of held locks (a release on either
// branch counts), so only locks held on every path produce findings.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "no blocking operations while holding a mutex, and the lock-acquisition-order graph must be acyclic",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	lo := &lockOrderChecker{
		pass:     pass,
		eng:      NewEngine(pass),
		edges:    map[lockID]map[lockID]token.Pos{},
		reported: map[token.Pos]bool{},
	}
	for _, fn := range lo.eng.Order() {
		decl := lo.eng.Decls()[fn]
		if decl.Body == nil {
			continue
		}
		lo.walkRoot(decl.Body)
	}
	lo.reportCycles()
}

type lockOrderChecker struct {
	pass *Pass
	eng  *Engine
	// curBody is the root body being walked, for local channel tracing.
	curBody *ast.BlockStmt
	// edges[a][b] is a sample position where b was acquired while a was held.
	edges    map[lockID]map[lockID]token.Pos
	reported map[token.Pos]bool
}

// heldSet is the ordered list of locks held on the current path.
type heldSet []lockID

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) has(id lockID) bool {
	for _, l := range h {
		if l == id {
			return true
		}
	}
	return false
}

func (h heldSet) without(id lockID) heldSet {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == id {
			return append(h[:i:i], h[i+1:]...)
		}
	}
	return h
}

func intersect(a, b heldSet) heldSet {
	var out heldSet
	for _, l := range a {
		if b.has(l) {
			out = append(out, l)
		}
	}
	return out
}

// walkRoot audits one independent execution context (a function body, a
// goroutine body, a function literal) starting with no locks held.
func (lo *lockOrderChecker) walkRoot(body *ast.BlockStmt) {
	prev := lo.curBody
	lo.curBody = body
	lo.stmts(body.List, heldSet{})
	lo.curBody = prev
}

func (lo *lockOrderChecker) stmts(list []ast.Stmt, held heldSet) heldSet {
	for _, s := range list {
		held = lo.stmt(s, held)
	}
	return held
}

func (lo *lockOrderChecker) stmt(s ast.Stmt, held heldSet) heldSet {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return lo.stmts(s.List, held)
	case *ast.ExprStmt:
		return lo.expr(s.X, held, nil)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = lo.expr(rhs, held, nil)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = lo.expr(v, held, nil)
					}
				}
			}
		}
		return held
	case *ast.DeferStmt:
		// A deferred Unlock releases at function end: the lock stays held
		// for everything that follows; a deferred Lock (unheard of) and any
		// other deferred call contribute no current-path effects.
		if _, ok := lockRelease(lo.pass, s.Call); ok {
			return held
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			lo.walkRoot(fl.Body)
		}
		return held
	case *ast.GoStmt:
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			lo.walkRoot(fl.Body)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = lo.stmt(s.Init, held)
		}
		held = lo.expr(s.Cond, held, nil)
		thenHeld := lo.stmts(s.Body.List, held.clone())
		elseHeld := held.clone()
		if s.Else != nil {
			elseHeld = lo.stmt(s.Else, elseHeld)
		}
		return intersect(thenHeld, elseHeld)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = lo.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = lo.expr(s.Tag, held, nil)
		}
		return lo.clauses(clauseBodies(s.Body), held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = lo.stmt(s.Init, held)
		}
		return lo.clauses(clauseBodies(s.Body), held)
	case *ast.SelectStmt:
		// Blocking is judged on the select as a whole; the comm statements
		// themselves are not re-walked (their sends/receives would otherwise
		// double-report what the select finding already covers).
		if len(held) > 0 && !selectHasDefault(s) {
			lo.report(s.Pos(), held, "select without a default case")
		}
		var bodies [][]ast.Stmt
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		return lo.clauses(bodies, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = lo.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = lo.expr(s.Cond, held, nil)
		}
		lo.stmts(s.Body.List, held.clone())
		return held
	case *ast.RangeStmt:
		held = lo.expr(s.X, held, nil)
		lo.stmts(s.Body.List, held.clone())
		return held
	case *ast.SendStmt:
		if len(held) > 0 && !chanProvablyBuffered(lo.pass, s.Chan, lo.curBody) {
			lo.report(s.Pos(), held, "channel send without provable buffer headroom")
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = lo.expr(r, held, nil)
		}
		return held
	case *ast.LabeledStmt:
		return lo.stmt(s.Stmt, held)
	case *ast.IncDecStmt:
		return lo.expr(s.X, held, nil)
	}
	return held
}

func (lo *lockOrderChecker) clauses(bodies [][]ast.Stmt, held heldSet) heldSet {
	out := held
	first := true
	for _, b := range bodies {
		bh := lo.stmts(b, held.clone())
		if first {
			out, first = bh, false
		} else {
			out = intersect(out, bh)
		}
	}
	if first {
		return held
	}
	return intersect(out, held) // a clause may not run at all
}

// expr walks an expression, applying lock and blocking effects; selects in
// statement position are handled by stmt, so receives seen here are bare.
func (lo *lockOrderChecker) expr(x ast.Expr, held heldSet, exempt map[any]bool) heldSet {
	switch x := ast.Unparen(x).(type) {
	case nil:
		return held
	case *ast.CallExpr:
		return lo.call(x, held)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			if len(held) > 0 {
				lo.report(x.Pos(), held, "channel receive")
			}
			return held
		}
		return lo.expr(x.X, held, exempt)
	case *ast.BinaryExpr:
		held = lo.expr(x.X, held, exempt)
		return lo.expr(x.Y, held, exempt)
	case *ast.SelectorExpr:
		return lo.expr(x.X, held, exempt)
	case *ast.IndexExpr:
		held = lo.expr(x.X, held, exempt)
		return lo.expr(x.Index, held, exempt)
	case *ast.SliceExpr:
		return lo.expr(x.X, held, exempt)
	case *ast.StarExpr:
		return lo.expr(x.X, held, exempt)
	case *ast.TypeAssertExpr:
		return lo.expr(x.X, held, exempt)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				held = lo.expr(kv.Value, held, exempt)
			} else {
				held = lo.expr(el, held, exempt)
			}
		}
		return held
	case *ast.FuncLit:
		lo.walkRoot(x.Body)
		return held
	}
	return held
}

func (lo *lockOrderChecker) call(call *ast.CallExpr, held heldSet) heldSet {
	for _, arg := range call.Args {
		held = lo.expr(arg, held, nil)
	}
	if id, ok := lockAcquisition(lo.pass, call); ok {
		lo.addEdges(held, id, call.Pos())
		return append(held, id)
	}
	if id, ok := lockRelease(lo.pass, call); ok {
		return held.without(id)
	}
	fn := staticCallee(lo.pass.Info, call)
	if fn == nil {
		return held
	}
	if len(held) > 0 {
		if msg := blockingForSummary(fn); msg != "" {
			lo.report(call.Pos(), held, msg)
			return held
		}
	}
	if sum := lo.eng.SummaryOf(fn); sum != nil {
		if len(held) > 0 && sum.MayBlock {
			lo.report(call.Pos(), held, fn.Name()+" may block: "+sum.BlockNote)
		}
		for _, acq := range sum.Acquires {
			lo.addEdges(held, acq, call.Pos())
		}
	}
	return held
}

func (lo *lockOrderChecker) addEdges(held heldSet, acquired lockID, pos token.Pos) {
	for _, h := range held {
		if h == acquired {
			continue // same type identity: instance ordering is out of scope
		}
		if lo.edges[h] == nil {
			lo.edges[h] = map[lockID]token.Pos{}
		}
		if _, ok := lo.edges[h][acquired]; !ok {
			lo.edges[h][acquired] = pos
		}
	}
}

func (lo *lockOrderChecker) report(pos token.Pos, held heldSet, what string) {
	if lo.reported[pos] {
		return
	}
	lo.reported[pos] = true
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = string(h)
	}
	lo.pass.Reportf(pos, "%s while holding %s: a stalled holder stalls every contender (move the blocking operation outside the critical section)",
		what, strings.Join(names, ", "))
}

// reportCycles runs a DFS over the acquisition-order graph and reports each
// cycle once, at the recorded sample position of its lexically-first edge.
func (lo *lockOrderChecker) reportCycles() {
	nodes := make([]lockID, 0, len(lo.edges))
	for a := range lo.edges {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[lockID]int{}
	var stack []lockID

	var visit func(n lockID)
	visit = func(n lockID) {
		color[n] = gray
		stack = append(stack, n)
		succs := make([]lockID, 0, len(lo.edges[n]))
		for b := range lo.edges[n] {
			succs = append(succs, b)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
		for _, b := range succs {
			switch color[b] {
			case white:
				visit(b)
			case gray:
				// Found a cycle: b ... n -> b.
				start := 0
				for i, s := range stack {
					if s == b {
						start = i
						break
					}
				}
				cycle := append(append([]lockID{}, stack[start:]...), b)
				lo.reportCycle(cycle)
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
}

func (lo *lockOrderChecker) reportCycle(cycle []lockID) {
	// Report at the sample position of the first edge in the cycle.
	pos := lo.edges[cycle[0]][cycle[1]]
	if lo.reported[pos] {
		return
	}
	lo.reported[pos] = true
	parts := make([]string, len(cycle))
	for i, l := range cycle {
		parts[i] = string(l)
	}
	lo.pass.Reportf(pos,
		"lock-acquisition-order cycle: %s — two goroutines taking these locks in different orders deadlock; pick one global order",
		strings.Join(parts, " → "))
}
