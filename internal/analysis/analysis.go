// Package analysis is hermes-vet: a suite of static analyzers that turn the
// repository's protocol invariants — conventions that previously lived only
// in comments and were enforced only by after-the-fact tests — into
// build-breaking checks. The nine analyzers are:
//
//   - eventloop: code reachable from protocol message handlers and the live
//     runtime's event-loop callbacks must never block (PR 6's "only enqueue"
//     contract).
//   - atomicfield: a struct field accessed through sync/atomic in one place
//     must never be accessed plainly in another.
//   - wingscodec: wire decoders must bound-check wire-declared counts before
//     allocating, and every wire type needs a registered fuzz target.
//   - exhaustive: switches over protocol enums and terminal type-switches
//     over protocol messages must cover every variant or carry an explicit
//     failing default.
//   - determinism: the seeded-replay packages (internal/sim, internal/core)
//     must not consult wall clocks, global randomness, or unordered map
//     iteration for decisions that feed the network schedule (the PR 4
//     map-order retransmission bug).
//   - bufown: values that may alias pooled refcounted frame buffers
//     (structs carrying an Owner *refbuf.Buf) must not escape into
//     owner-less destinations without a clone, and adopting literals must
//     carry the owner (PR 9's zero-copy value path).
//   - reftrack: interprocedural reference balance — every frame-buffer
//     reference acquired (Retain, TryRetain, Pool.Get, a call returning a
//     retained buffer) must be spent exactly once on every path; flags
//     leaks, double releases and no-clone aliasing through same-package
//     helpers (the cross-call blindness bufown documents).
//   - creditflow: transport credit discipline — error paths of
//     credit-debiting functions must refund, and one-way/response
//     classification must be disjoint and all-member (PR 2 post-mortem).
//   - lockorder: no blocking operations while holding a mutex, and the
//     lock-acquisition-order graph must be acyclic.
//
// The last three run on the summary-based interprocedural engine in
// engine.go (call graph, per-function effect summaries, fixpoint).
//
// The suite is deliberately built on the standard library only (go/ast,
// go/types, `go list -export`): the container that grows this repo has no
// module proxy access, so golang.org/x/tools is off the table. The Analyzer,
// Pass and Diagnostic types below mirror the x/tools go/analysis shapes
// closely enough that the analyzers could be ported to real go/analysis
// drivers by swapping the harness.
//
// A finding is suppressed by an escape-hatch comment on the same line or the
// line above:
//
//	//hermesvet:ignore <analyzer>[,<analyzer>...] <justification>
//
// The justification is mandatory; a directive without one is itself a
// diagnostic, and so is a stale directive — one that suppresses no finding
// of any analyzer in the run. `all` matches every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Report*.
	Run func(pass *Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's syntax and type information through one
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's compiled (non-test) syntax trees.
	Files []*ast.File
	// TestFiles are the package's in-package _test.go files, parsed but NOT
	// type-checked; wingscodec reads them to verify fuzz-target registration.
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //hermesvet:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // names, or ["all"]
	reason    string
	malformed string // non-empty: why the directive is unusable
	used      bool
	// fromTest marks directives in _test.go files; they are exempt from
	// stale-waiver detection (analyzers never report into test files, so
	// their directives are documentation, not suppression).
	fromTest bool
}

func (d *ignoreDirective) matches(analyzer string) bool {
	if d.malformed != "" {
		return false
	}
	for _, a := range d.analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

const directivePrefix = "//hermesvet:ignore"

// parseDirectives collects every hermesvet:ignore directive in the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{file: pos.Filename, line: pos.Line}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //hermesvet:ignoreXXX — not ours.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and justification"
				case len(fields) == 1:
					d.malformed = "missing justification (a reason is mandatory)"
				default:
					d.analyzers = strings.Split(fields[0], ",")
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// filterIgnored splits diagnostics into kept and suppressed — a directive
// on the same line or the line immediately above suppresses, and is marked
// used.
func filterIgnored(diags []Diagnostic, dirs []*ignoreDirective) (kept, suppressed []Diagnostic) {
	if len(dirs) == 0 {
		return diags, nil
	}
	byLine := map[string]map[int][]*ignoreDirective{}
	for _, d := range dirs {
		if byLine[d.file] == nil {
			byLine[d.file] = map[int][]*ignoreDirective{}
		}
		byLine[d.file][d.line] = append(byLine[d.file][d.line], d)
	}
	for _, dg := range diags {
		hit := false
		for _, line := range []int{dg.Pos.Line, dg.Pos.Line - 1} {
			for _, d := range byLine[dg.Pos.Filename][line] {
				if d.matches(dg.Analyzer) {
					d.used = true
					hit = true
				}
			}
		}
		if hit {
			suppressed = append(suppressed, dg)
		} else {
			kept = append(kept, dg)
		}
	}
	return kept, suppressed
}

// directiveDiagnostics reports malformed directives (once per package, not
// per analyzer) and — when the run's analyzer set can vouch for it — stale
// ones, under the pseudo-analyzer name "hermesvet". A directive is stale
// when it is well formed, lives in a non-test file, suppressed zero
// findings, and every analyzer it names ran (for `all`, when the whole
// registered suite ran): the code it excused no longer trips the check, so
// the waiver must not outlive it.
func directiveDiagnostics(dirs []*ignoreDirective, ranAnalyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range ranAnalyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range All() {
		if !ran[a.Name] {
			fullSuite = false
		}
	}
	var out []Diagnostic
	for _, d := range dirs {
		if d.malformed != "" {
			out = append(out, Diagnostic{
				Analyzer: "hermesvet",
				Pos:      token.Position{Filename: d.file, Line: d.line, Column: 1},
				Message:  "malformed ignore directive: " + d.malformed,
			})
			continue
		}
		if d.used || d.fromTest {
			continue
		}
		verifiable := true
		for _, name := range d.analyzers {
			if name == "all" {
				verifiable = verifiable && fullSuite
			} else {
				verifiable = verifiable && ran[name]
			}
		}
		if verifiable {
			out = append(out, Diagnostic{
				Analyzer: "hermesvet",
				Pos:      token.Position{Filename: d.file, Line: d.line, Column: 1},
				Message: fmt.Sprintf("stale ignore directive (%s): it suppresses no finding — remove it or re-justify it against the current code",
					strings.Join(d.analyzers, ",")),
			})
		}
	}
	return out
}

// VetResult is one package's full analyzer outcome: the surviving findings
// and the ones an ignore directive suppressed (machine consumers — the
// -json output — want both).
type VetResult struct {
	Kept       []Diagnostic
	Suppressed []Diagnostic
}

// RunAnalyzers executes the analyzers over one loaded package and returns
// the surviving (non-ignored) diagnostics in file/line order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAnalyzersDetail(pkg, analyzers).Kept
}

// RunAnalyzersDetail is RunAnalyzers keeping the suppressed findings too.
func RunAnalyzersDetail(pkg *Package, analyzers []*Analyzer) VetResult {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	for _, d := range parseDirectives(pkg.Fset, pkg.TestFiles) {
		d.fromTest = true
		dirs = append(dirs, d)
	}
	var all []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			diags:     &diags,
		}
		a.Run(pass)
		all = append(all, diags...)
	}
	kept, suppressed := filterIgnored(all, dirs)
	kept = append(kept, directiveDiagnostics(dirs, analyzers)...)
	sortDiags(kept)
	sortDiags(suppressed)
	return VetResult{Kept: kept, Suppressed: suppressed}
}

func sortDiags(all []Diagnostic) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// All returns the full hermes-vet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		EventLoopAnalyzer,
		AtomicFieldAnalyzer,
		WingsCodecAnalyzer,
		ExhaustiveAnalyzer,
		DeterminismAnalyzer,
		BufOwnAnalyzer,
		RefTrackAnalyzer,
		CreditFlowAnalyzer,
		LockOrderAnalyzer,
	}
}
