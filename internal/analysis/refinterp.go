package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// refInterp is an abstract interpreter for frame-buffer reference balance.
// It walks one function body tracking references acquired there (Retain,
// TryRetain guards, Pool.Get, calls whose summary returns an acquired
// reference) and the spend events that balance them (Release, adoption into
// an Owner field, transfer to a consuming callee, return to the caller).
// The engine runs it silently to compute summaries; reftrack runs it with a
// report sink to flag leaks, double releases and path imbalances.
//
// The interpreter is deliberately forgiving: any shape it cannot model —
// address-of, closure capture, storage into containers, reassignment over a
// live reference, channel sends — demotes the reference to "unknown", which
// produces no findings. Precision is spent where the historical bugs live:
// straight-line and branchy code that drops or double-spends a reference it
// just acquired.

// refKey identifies one tracked reference: a root object (local or
// parameter) plus an optional single field hop (ep.Owner).
type refKey struct {
	root  types.Object
	field types.Object
}

func (k refKey) zero() bool { return k.root == nil }

// refInfo is the abstract state of one tracked reference.
type refInfo struct {
	obl      int    // outstanding spend obligations
	unknown  bool   // modeling gave up; no findings for this ref
	returned bool   // transferred to the caller via return
	kind     string // how it was acquired, for diagnostics
	pos      token.Pos
	notes    []string // assumptions worth surfacing in a leak report
}

func (i *refInfo) clone() *refInfo {
	c := *i
	c.notes = append([]string(nil), i.notes...)
	return &c
}

// refState is the abstract state along one control-flow path.
type refState struct {
	refs map[refKey]*refInfo
	dead bool
}

func (s *refState) clone() *refState {
	c := &refState{refs: make(map[refKey]*refInfo, len(s.refs)), dead: s.dead}
	for k, v := range s.refs {
		c.refs[k] = v.clone()
	}
	return c
}

// refExit is the state snapshot at one function exit.
type refExit struct {
	state *refState
	// returnedKeys[i] is the tracked key returned at result position i
	// (zero key if none).
	returnedKeys []refKey
	// acquiredResults are result positions filled directly by an acquiring
	// call (`return pool.Get(n)`).
	acquiredResults []int
}

type refInterp struct {
	e      *Engine
	report func(pos token.Pos, format string, args ...any) // nil: summary mode
	exits  []*refExit
	seeds  map[refKey]bool // parameters seeded by the engine (summary mode)
	// reportedAt dedupes per-acquisition reports across exits and merges.
	reportedAt map[token.Pos]bool
}

func newRefInterp(e *Engine, report func(pos token.Pos, format string, args ...any)) *refInterp {
	return &refInterp{e: e, report: report, seeds: map[refKey]bool{}, reportedAt: map[token.Pos]bool{}}
}

func (in *refInterp) newState() *refState {
	st := &refState{refs: map[refKey]*refInfo{}}
	for k := range in.seeds {
		st.refs[k] = &refInfo{obl: 1, kind: "parameter", pos: k.root.Pos()}
	}
	return st
}

// seed marks a parameter as carrying one transferred reference (summary
// mode: the engine asks whether the function consumes it).
func (in *refInterp) seed(k refKey, pos token.Pos) {
	in.seeds[k] = true
}

func (in *refInterp) reportf(pos token.Pos, format string, args ...any) {
	if in.report == nil || in.reportedAt[pos] {
		return
	}
	in.reportedAt[pos] = true
	in.report(pos, format, args...)
}

// keyOf resolves expr to a trackable reference location: an identifier, or
// a one-level field selector on an identifier.
func (in *refInterp) keyOf(expr ast.Expr) refKey {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := in.e.pass.Info.Uses[x]; obj != nil {
			return refKey{root: obj}
		}
		if obj := in.e.pass.Info.Defs[x]; obj != nil {
			return refKey{root: obj}
		}
	case *ast.SelectorExpr:
		root, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			return refKey{}
		}
		rootObj := in.e.pass.Info.Uses[root]
		if rootObj == nil {
			return refKey{}
		}
		if sel, ok := in.e.pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return refKey{root: rootObj, field: sel.Obj()}
		}
	}
	return refKey{}
}

func (in *refInterp) track(st *refState, k refKey, kind string, pos token.Pos) *refInfo {
	info := st.refs[k]
	if info == nil {
		info = &refInfo{kind: kind, pos: pos}
		st.refs[k] = info
	}
	return info
}

// acquire adds one obligation to k.
func (in *refInterp) acquire(st *refState, k refKey, kind string, pos token.Pos) {
	info := in.track(st, k, kind, pos)
	if info.unknown {
		return
	}
	if info.obl == 0 {
		// A fresh acquisition (or re-acquisition after balance) re-anchors
		// the diagnostic at this site.
		info.kind, info.pos = kind, pos
	}
	info.obl++
}

// spend consumes one obligation of k; how describes the event for the
// double-release diagnostic.
func (in *refInterp) spend(st *refState, k refKey, pos token.Pos, how string) {
	info := st.refs[k]
	if info == nil || info.unknown {
		return // inherited reference — not ours to balance
	}
	if info.obl == 0 {
		in.reportf(pos, "frame-buffer reference already spent is %s again (double release: the pool would hand the same bytes to two owners)", how)
		return
	}
	info.obl--
}

func (in *refInterp) markUnknown(st *refState, k refKey) {
	if info := st.refs[k]; info != nil {
		info.unknown = true
	}
}

// markRootUnknown demotes every tracked reference rooted at obj.
func (in *refInterp) markRootUnknown(st *refState, obj types.Object) {
	for k, info := range st.refs {
		if k.root == obj {
			info.unknown = true
		}
	}
}

// spendRoot transfers every live reference rooted at obj (a `return *ep`
// hands the pinned entry — and its reference — to the caller).
func (in *refInterp) spendRoot(st *refState, obj types.Object, returned bool) {
	for k, info := range st.refs {
		if k.root == obj && !info.unknown && info.obl > 0 {
			info.obl = 0
			info.returned = returned
		}
	}
}

// recordExit snapshots the fall-off-the-end exit (ret is nil there).
func (in *refInterp) recordExit(st *refState, ret *ast.ReturnStmt) {
	in.recordExitKeys(st, nil, nil)
}

func (in *refInterp) recordExitKeys(st *refState, keys []refKey, acquired []int) {
	in.exits = append(in.exits, &refExit{state: st.clone(), returnedKeys: keys, acquiredResults: acquired})
}

// --- statement walking -----------------------------------------------------

func (in *refInterp) block(b *ast.BlockStmt, st *refState) {
	for _, s := range b.List {
		if st.dead {
			return
		}
		in.stmt(s, st)
	}
}

func (in *refInterp) stmt(s ast.Stmt, st *refState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		in.block(s, st)
	case *ast.ExprStmt:
		in.exprStmt(s.X, st)
	case *ast.AssignStmt:
		in.assign(s, st)
	case *ast.DeclStmt:
		in.decl(s, st)
	case *ast.IfStmt:
		in.ifStmt(s, st)
	case *ast.ReturnStmt:
		in.ret(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			in.stmt(s.Init, st)
		}
		if s.Cond != nil {
			in.eval(s.Cond, st)
		}
		in.loopBody(s.Body, st, s.Post)
	case *ast.RangeStmt:
		in.eval(s.X, st)
		in.loopBody(s.Body, st, nil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			in.stmt(s.Init, st)
		}
		if s.Tag != nil {
			in.eval(s.Tag, st)
		}
		in.branches(clauseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in.stmt(s.Init, st)
		}
		in.branches(clauseBodies(s.Body), hasDefaultClause(s.Body), st)
	case *ast.SelectStmt:
		in.branches(commBodies(s.Body), true, st)
	case *ast.SendStmt:
		in.eval(s.Chan, st)
		if k := in.keyOf(s.Value); !k.zero() {
			in.markUnknown(st, k)
		} else {
			in.eval(s.Value, st)
		}
	case *ast.DeferStmt:
		in.deferStmt(s, st)
	case *ast.GoStmt:
		// The goroutine takes everything it references with it.
		in.escapeAll(s.Call, st)
	case *ast.LabeledStmt:
		in.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto exit the structured region the walker models;
		// anything live crossing the edge is beyond this interpreter.
		for _, info := range st.refs {
			if info.obl > 0 {
				info.unknown = true
			}
		}
		st.dead = true
	case *ast.IncDecStmt:
		in.eval(s.X, st)
	}
}

func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func commBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CommClause); ok {
			stmts := cc.Body
			if cc.Comm != nil {
				stmts = append([]ast.Stmt{cc.Comm}, stmts...)
			}
			out = append(out, stmts)
		}
	}
	return out
}

// branches walks each alternative from a clone of st and merges the
// surviving states. withImplicit adds the fall-through path (a switch with
// no default, an if with no else).
func (in *refInterp) branches(bodies [][]ast.Stmt, hasDefault bool, st *refState) {
	var outs []*refState
	for _, body := range bodies {
		bs := st.clone()
		for _, s := range body {
			if bs.dead {
				break
			}
			in.stmt(s, bs)
		}
		if !bs.dead {
			outs = append(outs, bs)
		}
	}
	if !hasDefault {
		outs = append(outs, st.clone())
	}
	in.mergeInto(st, outs)
}

// mergeInto replaces st's refs with the merge of the surviving branch
// states. A reference live in one branch and spent in another is the
// classic path imbalance and is reported (when the ref predates the
// branch); a reference acquired in only some branches is demoted to
// unknown without a report (its balance is usually guarded by the same
// condition that acquired it).
func (in *refInterp) mergeInto(st *refState, outs []*refState) {
	if len(outs) == 0 {
		st.dead = true
		return
	}
	keys := map[refKey]bool{}
	for _, o := range outs {
		for k := range o.refs {
			keys[k] = true
		}
	}
	merged := map[refKey]*refInfo{}
	for k := range keys {
		var first *refInfo
		everywhere, conflict, anyUnknown := true, false, false
		for _, o := range outs {
			info := o.refs[k]
			if info == nil {
				everywhere = false
				continue
			}
			if info.unknown {
				anyUnknown = true
			}
			if first == nil {
				first = info.clone()
			} else if info.obl != first.obl {
				conflict = true
				if info.obl > first.obl {
					first = info.clone() // keep the live side's anchor
				}
			} else {
				first.notes = mergeNotes(first.notes, info.notes)
			}
			first.returned = first.returned || info.returned
		}
		switch {
		case anyUnknown:
			first.unknown = true
		case !everywhere:
			if first.obl > 0 {
				first.unknown = true
			}
		case conflict:
			if preBranch := st.refs[k]; preBranch != nil && !preBranch.unknown {
				in.reportf(first.pos,
					"frame-buffer reference acquired by %s is spent on some paths but not others: every path must spend it exactly once%s",
					first.kind, noteSuffix(first.notes))
			}
			first.unknown = true
		}
		merged[k] = first
	}
	st.refs = merged
	st.dead = false
}

func mergeNotes(a, b []string) []string {
	seen := map[string]bool{}
	for _, n := range a {
		seen[n] = true
	}
	for _, n := range b {
		if !seen[n] {
			a = append(a, n)
			seen[n] = true
		}
	}
	return a
}

func noteSuffix(notes []string) string {
	if len(notes) == 0 {
		return ""
	}
	sort.Strings(notes)
	return " (" + strings.Join(notes, "; ") + ")"
}

// loopBody walks a loop body once on a clone. References acquired inside
// the body must balance by the body's end (a leak there leaks once per
// iteration); references from outside whose balance the body changed are
// demoted — the loop may run zero or many times.
func (in *refInterp) loopBody(body *ast.BlockStmt, st *refState, post ast.Stmt) {
	bs := st.clone()
	in.block(body, bs)
	if post != nil && !bs.dead {
		in.stmt(post, bs)
	}
	if !bs.dead {
		for k, info := range bs.refs {
			if _, preexisting := st.refs[k]; preexisting {
				continue
			}
			if !info.unknown && info.obl > 0 {
				in.reportf(info.pos,
					"frame-buffer reference acquired by %s leaks at the end of each loop iteration: spend it before the iteration ends%s",
					info.kind, noteSuffix(info.notes))
			}
		}
	}
	for k, pre := range st.refs {
		if pre.unknown {
			continue
		}
		if after := bs.refs[k]; after == nil || after.unknown || after.obl != pre.obl {
			pre.unknown = true
		}
	}
}

func (in *refInterp) ifStmt(s *ast.IfStmt, st *refState) {
	// `if v, owner, ok := f(); ok` with an acquiring f: the references exist
	// only on the success branch (the failure branch got zero values).
	okCall, okAs, okNeg := in.okGuardCall(s)
	if s.Init != nil {
		if okCall != nil {
			in.exprStmtCallEffects(okCall, st)
		} else {
			in.stmt(s.Init, st)
		}
	}
	// `if k.TryRetain()` / `if !k.TryRetain()`: the reference exists only in
	// the guarded branch.
	guardKey, negated, isGuard := in.tryRetainGuard(s.Cond)
	if !isGuard && okCall == nil {
		in.eval(s.Cond, st)
	}

	thenSt := st.clone()
	elseSt := st.clone()
	if isGuard {
		pos := s.Cond.Pos()
		if negated {
			in.acquire(elseSt, guardKey, "TryRetain", pos)
		} else {
			in.acquire(thenSt, guardKey, "TryRetain", pos)
		}
	}
	if okCall != nil {
		if okNeg {
			in.bindAcquiredInto(okAs, okCall, elseSt)
		} else {
			in.bindAcquiredInto(okAs, okCall, thenSt)
		}
	}
	in.block(s.Body, thenSt)
	if s.Else != nil {
		in.stmt(s.Else, elseSt)
	}
	var outs []*refState
	if !thenSt.dead {
		outs = append(outs, thenSt)
	}
	if !elseSt.dead {
		outs = append(outs, elseSt)
	}
	in.mergeInto(st, outs)
}

// okGuardCall matches `if a, b, ok := f(); ok` (or `; !ok`) where f's
// summary marks results acquired and the condition is exactly the last bound
// variable: on the failure branch the results are zero values and carry no
// reference, so the acquisition binds only to the success branch.
func (in *refInterp) okGuardCall(s *ast.IfStmt) (*ast.CallExpr, *ast.AssignStmt, bool) {
	as, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return nil, nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, nil, false
	}
	if acq, _ := in.acquiredResults(call); len(acq) == 0 {
		return nil, nil, false
	}
	cond := ast.Unparen(s.Cond)
	negated := false
	if u, isNot := cond.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		negated = true
		cond = ast.Unparen(u.X)
	}
	condID, ok := cond.(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	lastID, ok := ast.Unparen(as.Lhs[len(as.Lhs)-1]).(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	condObj := in.e.pass.Info.Uses[condID]
	lastObj := in.e.pass.Info.Defs[lastID]
	if lastObj == nil {
		lastObj = in.e.pass.Info.Uses[lastID]
	}
	if condObj == nil || condObj != lastObj {
		return nil, nil, false
	}
	return call, as, negated
}

// bindAcquiredInto binds call's acquired results (per as's left-hand sides)
// into bs — the ok-guarded success branch.
func (in *refInterp) bindAcquiredInto(as *ast.AssignStmt, call *ast.CallExpr, bs *refState) {
	acquired, kind := in.acquiredResults(call)
	for i, lhs := range as.Lhs {
		if !acquired[i] {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			in.reportf(lhs.Pos(),
				"frame-buffer reference returned by %s is discarded into _: bind it and spend it (Release, adopt, or pass to a consumer)", kind)
			continue
		}
		obj := in.e.pass.Info.Defs[id]
		if obj == nil {
			obj = in.e.pass.Info.Uses[id]
		}
		if obj != nil {
			in.acquire(bs, refKey{root: obj}, kind, call.Pos())
		}
	}
}

// tryRetainGuard matches `k.TryRetain()` and `!k.TryRetain()` conditions.
func (in *refInterp) tryRetainGuard(cond ast.Expr) (refKey, bool, bool) {
	negated := false
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		negated = true
		cond = ast.Unparen(u.X)
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return refKey{}, false, false
	}
	fn := staticCallee(in.e.pass.Info, call)
	if !isRefbufBufMethod(fn, "TryRetain") {
		return refKey{}, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return refKey{}, false, false
	}
	k := in.keyOf(sel.X)
	if k.zero() {
		return refKey{}, false, false
	}
	return k, negated, true
}

func (in *refInterp) ret(s *ast.ReturnStmt, st *refState) {
	keys := make([]refKey, len(s.Results))
	var acquired []int
	for i, res := range s.Results {
		if k := in.keyOf(res); !k.zero() {
			if info := st.refs[k]; info != nil && !info.unknown && info.obl > 0 {
				info.obl = 0
				info.returned = true
				keys[i] = k
				continue
			}
		}
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			if kind := in.acquiringCall(call, st); kind != "" {
				// Ownership flows straight through to the caller.
				in.evalCallArgs(call, st)
				acquired = append(acquired, i)
				continue
			}
		}
		// Evaluate first so adoption inside the returned value (an Owner
		// field in a composite literal) spends normally; then `return *ep`
		// transfers any reference still pinned under a mentioned root.
		in.eval(res, st)
		for _, id := range identsIn(res) {
			if obj := in.e.pass.Info.Uses[id]; obj != nil {
				in.spendRoot(st, obj, true)
			}
		}
	}
	in.recordExitKeys(st, keys, acquired)
	st.dead = true
}

func identsIn(x ast.Node) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

func (in *refInterp) decl(s *ast.DeclStmt, st *refState) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			in.eval(v, st)
		}
	}
}

// assign handles bindings of acquiring calls, adoption stores into Owner
// fields, escapes into non-local destinations, and reassignment over live
// references.
func (in *refInterp) assign(s *ast.AssignStmt, st *refState) {
	// Multi-value form: a, b := f() — bind acquired results positionally.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			in.bindMulti(s, call, st)
			return
		}
	}
	for i, rhs := range s.Rhs {
		if i >= len(s.Lhs) {
			break
		}
		in.assignOne(s.Lhs[i], rhs, st)
	}
}

func (in *refInterp) assignOne(lhs, rhs ast.Expr, st *refState) {
	rhsKey := in.keyOf(rhs)
	rhsCall, _ := ast.Unparen(rhs).(*ast.CallExpr)

	// Adoption: `x.Owner = ref` spends the reference into the owner field.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if selObj, ok := in.e.pass.Info.Selections[sel]; ok && selObj.Kind() == types.FieldVal && isRefbufPtr(selObj.Obj().Type()) {
			if !rhsKey.zero() {
				in.spend(st, rhsKey, rhs.Pos(), "adopted into an Owner field")
				return
			}
			in.eval(rhs, st)
			return
		}
	}

	lhsID, lhsIsIdent := ast.Unparen(lhs).(*ast.Ident)
	if lhsIsIdent && lhsID.Name == "_" {
		if rhsCall != nil {
			if kind := in.acquiringCall(rhsCall, st); kind != "" {
				in.reportf(rhs.Pos(),
					"frame-buffer reference returned by %s is discarded: bind it and spend it (Release, adopt, or pass to a consumer)", kind)
				in.evalCallArgs(rhsCall, st)
				return
			}
		}
		in.eval(rhs, st)
		return
	}

	if lhsIsIdent {
		obj := in.e.pass.Info.Defs[lhsID]
		isDef := obj != nil
		if obj == nil {
			obj = in.e.pass.Info.Uses[lhsID]
		}
		if obj != nil && !isDef {
			// Plain `=` over a root holding a live reference loses it.
			in.markRootUnknown(st, obj)
		}
		if rhsCall != nil {
			if kind := in.acquiringCall(rhsCall, st); kind != "" {
				in.evalCallArgs(rhsCall, st)
				if obj != nil {
					in.acquire(st, refKey{root: obj}, kind, rhs.Pos())
				}
				return
			}
		}
		if !rhsKey.zero() {
			// Aliasing a tracked reference under a second name: modeling two
			// names for one obligation is beyond the tracker.
			if info := st.refs[rhsKey]; info != nil && info.obl > 0 {
				info.unknown = true
			}
			return
		}
		in.eval(rhs, st)
		return
	}

	// Field, index or dereference store: the reference escapes to the heap
	// (a struct owner now holds it — e.g. qr.owner = b — and later balance
	// is that structure's contract, not this function's).
	if !rhsKey.zero() {
		if info := st.refs[rhsKey]; info != nil {
			info.unknown = true
		}
		in.eval(lhs, st)
		return
	}
	in.eval(lhs, st)
	in.eval(rhs, st)
}

// bindMulti handles `a, b, ok := f(...)` where f's summary marks some
// results acquired.
func (in *refInterp) bindMulti(s *ast.AssignStmt, call *ast.CallExpr, st *refState) {
	in.exprStmtCallEffects(call, st)
	acquired, kind := in.acquiredResults(call)
	for i, lhs := range s.Lhs {
		if !acquired[i] {
			continue
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			in.reportf(lhs.Pos(),
				"frame-buffer reference returned by %s is discarded into _: bind it and spend it (Release, adopt, or pass to a consumer)", kind)
			continue
		}
		obj := in.e.pass.Info.Defs[id]
		if obj == nil {
			obj = in.e.pass.Info.Uses[id]
		}
		if obj != nil {
			in.acquire(st, refKey{root: obj}, kind, call.Pos())
		}
	}
}

// acquiredResults reports which result positions of call carry a reference
// the caller inherits, with a description of the source.
func (in *refInterp) acquiredResults(call *ast.CallExpr) (map[int]bool, string) {
	out := map[int]bool{}
	fn := staticCallee(in.e.pass.Info, call)
	if fn == nil {
		return out, ""
	}
	if sum := in.e.SummaryOf(fn); sum != nil {
		for i, acq := range sum.ResultAcquired {
			if acq {
				out[i] = true
			}
		}
		return out, "call to " + fn.Name()
	}
	// Cross-package fallback: the *Retained naming convention transfers a
	// pinned buffer (core.Hermes.ReadLocalRetained and friends).
	if strings.Contains(fn.Name(), "Retain") {
		sig, ok := fn.Type().(*types.Signature)
		if ok {
			for i := 0; i < sig.Results().Len(); i++ {
				if isRefbufPtr(sig.Results().At(i).Type()) {
					out[i] = true
				}
			}
		}
		return out, "call to " + fn.Name()
	}
	return out, ""
}

// --- expression walking ----------------------------------------------------

// exprStmt handles a statement-position expression; an acquiring call whose
// result is dropped on the floor is an immediate leak.
func (in *refInterp) exprStmt(x ast.Expr, st *refState) {
	if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
		if kind := in.acquiringCall(call, st); kind != "" {
			in.reportf(call.Pos(),
				"frame-buffer reference returned by %s is dropped: bind it and spend it (Release, adopt, or pass to a consumer)", kind)
			in.evalCallArgs(call, st)
			return
		}
		in.call(call, st)
		return
	}
	in.eval(x, st)
}

// acquiringCall reports whether call's (single) result carries a fresh
// reference, returning a description or "". It does not process the call's
// argument effects.
func (in *refInterp) acquiringCall(call *ast.CallExpr, st *refState) string {
	fn := staticCallee(in.e.pass.Info, call)
	if fn == nil {
		return ""
	}
	if isRefbufPoolGet(fn) {
		return "Pool.Get"
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isRefbufPtr(sig.Results().At(0).Type()) {
		return ""
	}
	if sum := in.e.SummaryOf(fn); sum != nil {
		if len(sum.ResultAcquired) == 1 && sum.ResultAcquired[0] {
			return "call to " + fn.Name()
		}
		return ""
	}
	if strings.Contains(fn.Name(), "Retain") {
		return "call to " + fn.Name()
	}
	return ""
}

// eval walks an expression for reference effects.
func (in *refInterp) eval(x ast.Expr, st *refState) {
	switch x := x.(type) {
	case nil:
		return
	case *ast.CallExpr:
		in.call(x, st)
	case *ast.CompositeLit:
		in.compositeLit(x, st)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if k := in.keyOf(x.X); !k.zero() {
				in.markRootUnknown(st, k.root)
			}
		}
		in.eval(x.X, st)
	case *ast.FuncLit:
		// Closure capture: references used inside may be spent at any later
		// time (or never) — beyond the tracker.
		for _, id := range identsIn(x.Body) {
			if obj := in.e.pass.Info.Uses[id]; obj != nil {
				for k, info := range st.refs {
					if k.root == obj && info.obl > 0 {
						info.unknown = true
					}
				}
			}
		}
	case *ast.ParenExpr:
		in.eval(x.X, st)
	case *ast.BinaryExpr:
		in.eval(x.X, st)
		in.eval(x.Y, st)
	case *ast.SelectorExpr:
		in.eval(x.X, st)
	case *ast.IndexExpr:
		in.eval(x.X, st)
		in.eval(x.Index, st)
	case *ast.SliceExpr:
		in.eval(x.X, st)
	case *ast.StarExpr:
		in.eval(x.X, st)
	case *ast.TypeAssertExpr:
		in.eval(x.X, st)
	case *ast.KeyValueExpr:
		in.eval(x.Value, st)
	}
}

// compositeLit scans a literal for Owner-field adoption of tracked
// references.
func (in *refInterp) compositeLit(lit *ast.CompositeLit, st *refState) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			in.eval(el, st)
			continue
		}
		if _, isField := kv.Key.(*ast.Ident); isField {
			if vk := in.keyOf(kv.Value); !vk.zero() {
				// Any *refbuf.Buf field adopts: the struct's contract owns
				// the reference from here (queuedResp.owner, Entry.Owner).
				if tv, tok := in.e.pass.Info.Types[kv.Value]; tok && isRefbufPtr(tv.Type) {
					in.spend(st, vk, kv.Value.Pos(), "adopted into an owner field")
					continue
				}
			}
		}
		in.eval(kv.Value, st)
	}
}

// call processes one call's reference effects: refbuf primitives, consuming
// callees (by summary or by the cross-package allowlist), and the reported
// assumption for everything else.
func (in *refInterp) call(call *ast.CallExpr, st *refState) {
	if isConversion(in.e.pass.Info, call) || isBuiltinCall(in.e.pass.Info, call, "") {
		in.evalCallArgs(call, st)
		return
	}
	fn := staticCallee(in.e.pass.Info, call)
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)

	// refbuf primitives on a trackable receiver.
	if fn != nil && sel != nil {
		recvKey := in.keyOf(sel.X)
		switch {
		case isRefbufBufMethod(fn, "Retain"):
			if !recvKey.zero() {
				in.acquire(st, recvKey, "Retain", call.Pos())
			}
			return
		case isRefbufBufMethod(fn, "TryRetain"):
			// Outside an if-guard the success/failure split is unmodeled.
			if !recvKey.zero() {
				in.markUnknown(st, recvKey)
			}
			return
		case isRefbufBufMethod(fn, "Release"):
			if !recvKey.zero() {
				in.spend(st, recvKey, call.Pos(), "released")
			}
			return
		}
	}

	in.exprStmtCallEffects(call, st)
}

// exprStmtCallEffects applies a call's effects on its tracked arguments.
func (in *refInterp) exprStmtCallEffects(call *ast.CallExpr, st *refState) {
	fn := staticCallee(in.e.pass.Info, call)
	sum := in.e.SummaryOf(fn)
	for i, arg := range call.Args {
		k := in.keyOf(arg)
		if k.zero() {
			in.eval(arg, st)
			continue
		}
		info := st.refs[k]
		if info == nil || info.unknown || info.obl == 0 {
			continue
		}
		switch {
		case sum != nil && i < len(sum.ConsumesParam) && sum.ConsumesParam[i]:
			in.spend(st, k, arg.Pos(), "consumed by "+fn.Name())
		case fn != nil && isKnownConsumer(fn):
			in.spend(st, k, arg.Pos(), "consumed by "+fn.Name())
		case fn == nil:
			info.notes = mergeNotes(info.notes,
				[]string{"passed to a dynamic callee, conservatively assumed to consume nothing"})
		case sum == nil:
			info.notes = mergeNotes(info.notes,
				[]string{"passed to " + fn.Name() + ", which has no body here and is assumed to consume nothing"})
		default:
			info.notes = mergeNotes(info.notes,
				[]string{fn.Name() + " does not consume its argument"})
		}
	}
}

func (in *refInterp) evalCallArgs(call *ast.CallExpr, st *refState) {
	for _, arg := range call.Args {
		in.eval(arg, st)
	}
}

// deferStmt handles deferred calls. A deferred Release (or consuming call)
// is a spend that happens at every exit — modeling it as an immediate spend
// is exact for balance purposes and makes defer-plus-explicit a
// double-release finding. Any other deferred call referencing tracked
// references demotes them (execution order is beyond the tracker).
func (in *refInterp) deferStmt(s *ast.DeferStmt, st *refState) {
	call := s.Call
	fn := staticCallee(in.e.pass.Info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isRefbufBufMethod(fn, "Release") {
		if k := in.keyOf(sel.X); !k.zero() {
			in.spend(st, k, call.Pos(), "released (deferred)")
			return
		}
	}
	if fn != nil && isKnownConsumer(fn) {
		for _, arg := range call.Args {
			if k := in.keyOf(arg); !k.zero() {
				in.spend(st, k, arg.Pos(), "consumed by deferred "+fn.Name())
			}
		}
		return
	}
	in.escapeAll(call, st)
}

// escapeAll demotes every tracked reference a go-statement's call (args and
// closure body) mentions.
func (in *refInterp) escapeAll(call *ast.CallExpr, st *refState) {
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := in.e.pass.Info.Uses[id]; obj != nil {
				for k, info := range st.refs {
					if k.root == obj && info.obl > 0 {
						info.unknown = true
					}
				}
			}
		}
		return true
	})
}

// isKnownConsumer is the cross-package allowlist of functions documented to
// spend their argument's frame references (wings.Link.Send's contract, the
// drop-path helper).
func isKnownConsumer(fn *types.Func) bool {
	switch fn.Name() {
	case "ReleaseMsgOwners", "ReleaseOwner":
		return true
	}
	return false
}

// isRefbufBufMethod reports whether fn is refbuf.Buf's method name (matched
// by package and receiver name so golden stand-ins qualify).
func isRefbufBufMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Name() != "refbuf" {
		return false
	}
	return recvTypeName(fn) == "Buf"
}

// isRefbufPoolGet reports whether fn is refbuf.Pool.Get.
func isRefbufPoolGet(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Get" || fn.Pkg() == nil || fn.Pkg().Name() != "refbuf" {
		return false
	}
	return recvTypeName(fn) == "Pool"
}
