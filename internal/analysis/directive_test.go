package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //hermesvet:ignore eventloop justified because the section is bounded
	_ = 2 //hermesvet:ignore atomicfield,eventloop shared justification for two analyzers
	_ = 3 //hermesvet:ignore atomicfield
	_ = 4 //hermesvet:ignore
	_ = 5 //hermesvet:ignoreXX not a directive at all
	_ = 6 //hermesvet:ignore all blanket waiver with a reason
}
`
	fset, files := parseSrc(t, src)
	dirs := parseDirectives(fset, files)
	if len(dirs) != 5 {
		t.Fatalf("got %d directives, want 5 (the :ignoreXX comment is not one)", len(dirs))
	}
	if !dirs[0].matches("eventloop") || dirs[0].matches("atomicfield") {
		t.Errorf("directive 0 should match only eventloop: %+v", dirs[0])
	}
	if !dirs[1].matches("eventloop") || !dirs[1].matches("atomicfield") || dirs[1].matches("wingscodec") {
		t.Errorf("directive 1 should match its two analyzers: %+v", dirs[1])
	}
	if dirs[2].malformed == "" {
		t.Error("directive without justification should be malformed")
	}
	if dirs[2].matches("atomicfield") {
		t.Error("malformed directive must not suppress anything")
	}
	if dirs[3].malformed == "" {
		t.Error("bare directive should be malformed")
	}
	for _, name := range []string{"eventloop", "determinism", "hermesvet"} {
		if !dirs[4].matches(name) {
			t.Errorf("'all' directive should match %s", name)
		}
	}
	// With no analyzers ran, only the two malformed directives are
	// diagnosed — staleness of the others cannot be vouched for.
	if got := len(directiveDiagnostics(dirs, nil)); got != 2 {
		t.Fatalf("got %d malformed-directive diagnostics, want 2", got)
	}
}

func TestStaleDirectiveDetection(t *testing.T) {
	mk := func(used, fromTest bool, analyzers ...string) []*ignoreDirective {
		return []*ignoreDirective{{
			file: "a.go", line: 1, analyzers: analyzers, reason: "r",
			used: used, fromTest: fromTest,
		}}
	}
	countStale := func(dirs []*ignoreDirective, ran []*Analyzer) int {
		n := 0
		for _, d := range directiveDiagnostics(dirs, ran) {
			if d.Analyzer == "hermesvet" && d.Message != "" && d.Pos.Line == 1 {
				n++
			}
		}
		return n
	}
	full := All()
	one := []*Analyzer{EventLoopAnalyzer}
	cases := []struct {
		name string
		dirs []*ignoreDirective
		ran  []*Analyzer
		want int
	}{
		{"unused directive, its analyzer ran", mk(false, false, "eventloop"), one, 1},
		{"used directive", mk(true, false, "eventloop"), one, 0},
		{"unused but its analyzer did not run", mk(false, false, "bufown"), one, 0},
		{"unused in a test file", mk(false, true, "eventloop"), one, 0},
		{"unused 'all' with the full suite", mk(false, false, "all"), full, 1},
		{"unused 'all' with a partial run", mk(false, false, "all"), one, 0},
	}
	for _, tc := range cases {
		if got := countStale(tc.dirs, tc.ran); got != tc.want {
			t.Errorf("%s: got %d stale diagnostics, want %d", tc.name, got, tc.want)
		}
	}
}

func TestFilterIgnored(t *testing.T) {
	dirs := []*ignoreDirective{
		{file: "a.go", line: 10, analyzers: []string{"eventloop"}, reason: "r"},
	}
	diags := []Diagnostic{
		{Analyzer: "eventloop", Pos: token.Position{Filename: "a.go", Line: 10}},   // same line: suppressed
		{Analyzer: "eventloop", Pos: token.Position{Filename: "a.go", Line: 11}},   // directive on line above: suppressed
		{Analyzer: "determinism", Pos: token.Position{Filename: "a.go", Line: 10}}, // wrong analyzer: kept
		{Analyzer: "eventloop", Pos: token.Position{Filename: "a.go", Line: 13}},   // out of range: kept
		{Analyzer: "eventloop", Pos: token.Position{Filename: "b.go", Line: 10}},   // wrong file: kept
	}
	kept, suppressed := filterIgnored(diags, dirs)
	if len(kept) != 3 {
		t.Fatalf("kept %d diagnostics, want 3: %v", len(kept), kept)
	}
	if len(suppressed) != 2 {
		t.Fatalf("suppressed %d diagnostics, want 2: %v", len(suppressed), suppressed)
	}
	if !dirs[0].used {
		t.Error("directive should be marked used")
	}
}
