package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveAnalyzer enforces that dispatch over protocol values cannot
// silently drop a variant:
//
//   - A switch over an enum declared in a package named "proto" (a named
//     integer type with ≥2 package-level constants, e.g. OpKind, Status)
//     must either list every constant or carry a default clause.
//   - A terminal type-switch over an any-typed value whose cases are
//     protocol message types (≥2 named case types from packages named
//     "core" or "proto") must carry a default clause — with an open message
//     set, the default IS the exhaustiveness check, so it must exist and
//     must do something (panic, error, count) rather than be empty.
//
// "Terminal" means the type-switch is the last statement of its function
// body: dispatch loops like Deliver and transport demux. Non-terminal
// type-switches (peeking at a message then falling through to common code)
// legitimately ignore other variants.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over proto enums and terminal protocol type-switches must cover all variants or fail explicitly",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var terminal ast.Stmt
			if n := len(fd.Body.List); n > 0 {
				terminal = fd.Body.List[n-1]
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SwitchStmt:
					checkEnumSwitch(pass, n)
				case *ast.TypeSwitchStmt:
					if n == terminal {
						checkTypeSwitch(pass, n)
					}
				}
				return true
			})
		}
	}
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok {
		return
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "proto" {
		return
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{}
	hasDefault := false
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			var obj types.Object
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj = pass.Info.Uses[e]
			case *ast.SelectorExpr:
				obj = pass.Info.Uses[e.Sel]
			}
			if c, ok := obj.(*types.Const); ok {
				covered[c.Name()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s.%s is not exhaustive: missing %s (add the cases or a default that fails explicitly)",
			named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumMembers lists the package-level constants of the named type, sorted by
// declaration order (constant value, then name).
func enumMembers(named *types.Named) []string {
	scope := named.Obj().Pkg().Scope()
	type member struct {
		name string
		val  string
	}
	var ms []member
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			ms = append(ms, member{name, c.Val().ExactString()})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].val != ms[j].val {
			return ms[i].val < ms[j].val
		}
		return ms[i].name < ms[j].name
	})
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.name
	}
	return out
}

func checkTypeSwitch(pass *Pass, sw *ast.TypeSwitchStmt) {
	protoCases := 0
	hasDefault := false
	var defaultClause *ast.CaseClause
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok {
				continue
			}
			if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() != nil {
				switch n.Obj().Pkg().Name() {
				case "core", "proto":
					protoCases++
				}
			}
		}
	}
	if protoCases < 2 {
		return
	}
	if !hasDefault {
		pass.Reportf(sw.Pos(),
			"terminal type-switch over protocol messages has no default: an unknown message would be silently dropped (add a default that fails explicitly)")
		return
	}
	if len(defaultClause.Body) == 0 {
		pass.Reportf(defaultClause.Pos(),
			"empty default in protocol message type-switch silently drops unknown messages; panic, count, or log instead")
	}
}
