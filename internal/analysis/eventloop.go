package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EventLoopAnalyzer enforces the event-loop contract of the live runtime:
// code reachable from a protocol state machine's message handlers — and from
// the cluster callbacks those handlers invoke on the event-loop goroutine —
// must never block. One stalled handler stalls every key the shard owns
// (internal/cluster's architecture comment; SubmitAsync's callback contract).
//
// Roots:
//   - in a package named "core": methods Deliver, Submit, Tick and
//     OnViewChange on the Hermes state machine (the on* handlers are reached
//     transitively);
//   - in a package named "cluster": Send/Complete methods on types whose
//     name contains "Env" or "Transport" — the proto.Env and Transport
//     implementations the state machine calls back into from handler code.
//
// Blocking operations flagged on any statically reachable same-package path:
// sync mutex/RWMutex Lock and RLock, WaitGroup/Cond Wait, time.Sleep,
// net socket Read/Write/Accept, channel sends on channels without provable
// buffer headroom (chanProvablyBuffered: local buffered makes, buffered
// package vars, and pool-backed completion-channel fields all qualify),
// channel receives, and selects without a default.
// Goroutine bodies (`go ...`) are exempt — launching is the sanctioned way
// to move blocking work off the loop.
var EventLoopAnalyzer = &Analyzer{
	Name: "eventloop",
	Doc:  "flags blocking operations reachable from protocol handlers and event-loop callbacks",
	Run:  runEventLoop,
}

func runEventLoop(pass *Pass) {
	if pass.Pkg.Name() != "core" && pass.Pkg.Name() != "cluster" {
		return
	}
	c := &eventLoopChecker{
		pass:     pass,
		decls:    declOfFunc(pass),
		visited:  map[*types.Func]bool{},
		reported: map[token.Pos]bool{},
	}
	for fn, decl := range c.decls {
		if c.isRoot(fn) {
			c.visit(fn, decl, nil)
		}
	}
}

type eventLoopChecker struct {
	pass     *Pass
	decls    map[*types.Func]*ast.FuncDecl
	visited  map[*types.Func]bool
	reported map[token.Pos]bool
}

var coreHandlerNames = map[string]bool{
	"Deliver": true, "Submit": true, "Tick": true, "OnViewChange": true,
}

func (c *eventLoopChecker) isRoot(fn *types.Func) bool {
	recv := recvTypeName(fn)
	if recv == "" {
		return false
	}
	switch c.pass.Pkg.Name() {
	case "core":
		return recv == "Hermes" && coreHandlerNames[fn.Name()]
	case "cluster":
		if fn.Name() != "Send" && fn.Name() != "Complete" {
			return false
		}
		return strings.Contains(recv, "Env") || strings.Contains(recv, "Transport")
	}
	return false
}

func (c *eventLoopChecker) visit(fn *types.Func, decl *ast.FuncDecl, chain []string) {
	if c.visited[fn] || len(chain) > 20 {
		return
	}
	c.visited[fn] = true
	chain = append(chain, fn.Name())
	if decl.Body != nil {
		c.walk(decl.Body, chain, map[ast.Node]bool{}, decl.Body)
	}
}

// walk inspects one function body. exemptComm holds the send/receive
// expressions that belong to a select-with-default (non-blocking by
// construction). funcBody is the enclosing body used to trace channel
// buffering.
func (c *eventLoopChecker) walk(n ast.Node, chain []string, exemptComm map[ast.Node]bool, funcBody *ast.BlockStmt) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The launched goroutine does not run on the event loop.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			// Comm clauses are part of the select, not independent blocking
			// sites: with a default the whole construct is non-blocking, and
			// without one the select itself is the (single) finding.
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					markCommExempt(cc.Comm, exemptComm)
				}
			}
			if !hasDefault {
				c.report(n.Pos(), chain, "select without a default case blocks the event loop")
			}
			return true
		case *ast.SendStmt:
			if !exemptComm[n] && !chanProvablyBuffered(c.pass, n.Chan, funcBody) {
				c.report(n.Pos(), chain, "channel send may block the event loop (channel not provably buffered here)")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exemptComm[n] {
				c.report(n.Pos(), chain, "channel receive may block the event loop")
			}
		case *ast.CallExpr:
			c.checkCall(n, chain, funcBody)
		}
		return true
	})
}

// markCommExempt records a select comm statement's channel operations.
func markCommExempt(comm ast.Stmt, exempt map[ast.Node]bool) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		exempt[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			exempt[u] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				exempt[u] = true
			}
		}
	}
}

func (c *eventLoopChecker) checkCall(call *ast.CallExpr, chain []string, funcBody *ast.BlockStmt) {
	if isConversion(c.pass.Info, call) || isBuiltinCall(c.pass.Info, call, "") {
		return
	}
	// Function literals invoked (or evaluated as arguments) here run on the
	// event loop right now; ast.Inspect already descends into them.
	fn := staticCallee(c.pass.Info, call)
	if fn == nil {
		return
	}
	if msg := blockingStdCall(fn); msg != "" {
		c.report(call.Pos(), chain, msg)
		return
	}
	// Descend into same-package callees with bodies.
	if decl, ok := c.decls[fn]; ok {
		c.visit(fn, decl, chain)
	}
}

// blockingStdCall classifies calls into the standard library that block.
func blockingStdCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "sync":
		switch fn.Name() {
		case "Lock", "RLock":
			return "sync." + recvTypeName(fn) + "." + fn.Name() + " may block the event loop"
		case "Wait":
			return "sync." + recvTypeName(fn) + ".Wait blocks the event loop"
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep blocks the event loop"
		}
	case "net":
		switch fn.Name() {
		case "Read", "Write", "Accept":
			return "net socket " + fn.Name() + " blocks the event loop"
		}
	}
	return ""
}

func (c *eventLoopChecker) report(pos token.Pos, chain []string, msg string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "%s (event-loop path: %s)", msg, strings.Join(chain, " → "))
}
