package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural dataflow engine the resource analyzers
// (reftrack, creditflow, lockorder) build on. The per-file lexical checks
// that preceded it (bufown's own doc comment spells out the limitation)
// cannot see a leak across a call boundary; the engine closes that gap for
// one package at a time:
//
//   - a call graph over the package's declared functions (staticCallee
//     resolution; dynamic calls — function values, interface methods — stay
//     unresolved and are modeled by an explicit, *reported* assumption);
//   - a per-function Summary of resource effects: which *refbuf.Buf
//     parameters the function consumes, which results carry a reference the
//     caller inherits, which results alias a parameter's bytes without a
//     clone, whether the function refunds flow-control credits, whether it
//     may block, and which locks it acquires;
//   - fixpoint iteration so callers inherit callee effects through
//     recursion and mutual recursion. Must-properties (ConsumesParam) start
//     optimistic and refine downward; may-properties (MayBlock, Refunds,
//     ResultAcquired, aliasing, lock sets) start empty and grow. Each
//     domain's transfer function is monotone in its own direction, so the
//     iteration terminates.
//
// Soundness limits, by design (documented in internal/README.md): the
// engine is package-local — cross-package callees have no body, so their
// effects fall back to conservative defaults (a named allowlist for the
// refbuf consuming entry points, "consumes nothing" otherwise, and the
// analyzers report that assumption rather than silently passing); dynamic
// dispatch is likewise "consumes nothing, may do anything blocking-wise is
// NOT assumed"; goroutine bodies run off the analyzed control flow and are
// walked as independent roots, not as caller effects.

// Summary is one function's resource-effect summary.
type Summary struct {
	fn   *types.Func
	decl *ast.FuncDecl

	// ConsumesParam[i] is true when every terminating path through the
	// function spends exactly the one reference the caller transferred with
	// *refbuf.Buf parameter i (Release, adoption into an Owner field,
	// transfer to a consuming callee, or return to the caller).
	ConsumesParam []bool
	// ResultAcquired[i] is true when result i may carry a live frame-buffer
	// reference the caller inherits (a retained buffer returned).
	ResultAcquired []bool
	// ResultAliasesParam[i] is the parameter index whose bytes result i may
	// alias without an intervening clone, or -1. This is the summary that
	// catches the "clone hidden behind a helper that doesn't clone" shape
	// bufown documents as invisible.
	ResultAliasesParam []int
	// Refunds is true when some path refunds flow-control credits (a
	// `credits += n` on a credits field, a CreditReturn/RepayCredits call,
	// or a callee that refunds).
	Refunds bool
	// MayBlock is true when some statement in the function (or a summarized
	// callee) can block: channel operations without provable buffer
	// headroom, default-less selects, time.Sleep, socket I/O,
	// WaitGroup.Wait.
	MayBlock bool
	// BlockNote describes the first blocking operation found, for
	// diagnostics ("time.Sleep", "channel receive", ...).
	BlockNote string
	// Acquires is the set of locks the function (transitively) acquires,
	// used to build the lock-acquisition-order graph across calls.
	Acquires []lockID
}

func (s *Summary) equal(o *Summary) bool {
	if s.Refunds != o.Refunds || s.MayBlock != o.MayBlock || s.BlockNote != o.BlockNote {
		return false
	}
	if !eqBools(s.ConsumesParam, o.ConsumesParam) || !eqBools(s.ResultAcquired, o.ResultAcquired) {
		return false
	}
	if len(s.ResultAliasesParam) != len(o.ResultAliasesParam) {
		return false
	}
	for i := range s.ResultAliasesParam {
		if s.ResultAliasesParam[i] != o.ResultAliasesParam[i] {
			return false
		}
	}
	if len(s.Acquires) != len(o.Acquires) {
		return false
	}
	for i := range s.Acquires {
		if s.Acquires[i] != o.Acquires[i] {
			return false
		}
	}
	return true
}

func eqBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lockID names one lock for the acquisition-order graph: the named type
// that carries it plus the field name ("Link.mu"), or the variable name for
// package-level and local locks.
type lockID string

// Engine holds the call graph and fixpoint summaries for one package.
type Engine struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*Summary
	order []*types.Func
}

// NewEngine builds the call graph for pass's package and iterates the
// summaries to fixpoint.
func NewEngine(pass *Pass) *Engine {
	e := &Engine{
		pass:  pass,
		decls: declOfFunc(pass),
		sums:  map[*types.Func]*Summary{},
	}
	for fn := range e.decls {
		e.order = append(e.order, fn)
	}
	sort.Slice(e.order, func(i, j int) bool {
		return e.decls[e.order[i]].Pos() < e.decls[e.order[j]].Pos()
	})
	// Optimistic initialization for the must-property (consumption through
	// recursion stays provable: the recursive call is assumed consuming
	// until an intra pass disproves it); empty for the may-properties.
	for _, fn := range e.order {
		e.sums[fn] = e.initialSummary(fn)
	}
	max := 2*len(e.order) + 4
	for iter := 0; iter < max; iter++ {
		changed := false
		for _, fn := range e.order {
			ns := e.summarize(fn)
			if !ns.equal(e.sums[fn]) {
				e.sums[fn] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// Decls exposes the package's function declarations, keyed by object.
func (e *Engine) Decls() map[*types.Func]*ast.FuncDecl { return e.decls }

// Order returns the declared functions in source order (deterministic
// iteration for analyzers).
func (e *Engine) Order() []*types.Func { return e.order }

// SummaryOf returns fn's fixpoint summary, or nil for functions without a
// body in this package (the conservative-fallback case the analyzers must
// report, not silently absorb).
func (e *Engine) SummaryOf(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return e.sums[fn]
}

func (e *Engine) initialSummary(fn *types.Func) *Summary {
	sig := fn.Type().(*types.Signature)
	s := &Summary{fn: fn, decl: e.decls[fn]}
	s.ConsumesParam = make([]bool, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		s.ConsumesParam[i] = isRefbufPtr(sig.Params().At(i).Type())
	}
	s.ResultAcquired = make([]bool, sig.Results().Len())
	s.ResultAliasesParam = make([]int, sig.Results().Len())
	for i := range s.ResultAliasesParam {
		s.ResultAliasesParam[i] = -1
	}
	return s
}

// summarize recomputes fn's summary from its body and the current summary
// map (one fixpoint round).
func (e *Engine) summarize(fn *types.Func) *Summary {
	decl := e.decls[fn]
	s := e.initialSummary(fn)
	for i := range s.ConsumesParam {
		s.ConsumesParam[i] = false
	}
	if decl.Body == nil {
		return s
	}
	e.refSummary(fn, decl, s)
	e.aliasSummary(fn, decl, s)
	s.Refunds = e.refundsIn(decl.Body)
	s.MayBlock, s.BlockNote = e.mayBlockIn(decl.Body)
	s.Acquires = e.acquiresIn(decl.Body)
	return s
}

// refSummary computes ConsumesParam and ResultAcquired by running the
// reference interpreter with the *refbuf.Buf parameters seeded as tracked
// (one transferred reference each).
func (e *Engine) refSummary(fn *types.Func, decl *ast.FuncDecl, s *Summary) {
	sig := fn.Type().(*types.Signature)
	in := newRefInterp(e, nil)
	paramKey := map[int]refKey{}
	if decl.Type.Params != nil {
		i := 0
		for _, fld := range decl.Type.Params.List {
			for _, name := range fld.Names {
				if i < sig.Params().Len() && isRefbufPtr(sig.Params().At(i).Type()) {
					if obj := e.pass.Info.Defs[name]; obj != nil {
						k := refKey{root: obj}
						paramKey[i] = k
						in.seed(k, name.Pos())
					}
				}
				i++
			}
			if len(fld.Names) == 0 {
				i++
			}
		}
	}
	st := in.newState()
	in.block(decl.Body, st)
	if !st.dead {
		in.recordExit(st, nil)
	}
	for i, k := range paramKey {
		consumed := len(in.exits) > 0
		for _, ex := range in.exits {
			info := ex.state.refs[k]
			if info == nil || info.unknown || info.obl != 0 {
				consumed = false
			}
		}
		s.ConsumesParam[i] = consumed
	}
	for _, ex := range in.exits {
		for ri, key := range ex.returnedKeys {
			if key == (refKey{}) || ri >= len(s.ResultAcquired) {
				continue
			}
			if info := ex.state.refs[key]; info != nil && !info.unknown && info.returned {
				s.ResultAcquired[ri] = true
			}
		}
		for _, ri := range ex.acquiredResults {
			if ri < len(s.ResultAcquired) {
				s.ResultAcquired[ri] = true
			}
		}
	}
}

// aliasSummary computes ResultAliasesParam: whether each return expression
// may alias a parameter's bytes (the parameter itself, one of its fields,
// or a slice of either) with no clone in between. A call to a same-package
// function inherits that callee's aliasing summary; cross-package calls are
// assumed to clone (exactly the lexical rule bufown applies — the point of
// the summary is that *same-package* helpers no longer get that free pass).
func (e *Engine) aliasSummary(fn *types.Func, decl *ast.FuncDecl, s *Summary) {
	sig := fn.Type().(*types.Signature)
	paramIdx := map[types.Object]int{}
	if decl.Type.Params != nil {
		i := 0
		for _, fld := range decl.Type.Params.List {
			for _, name := range fld.Names {
				if obj := e.pass.Info.Defs[name]; obj != nil {
					paramIdx[obj] = i
				}
				i++
			}
			if len(fld.Names) == 0 {
				i++
			}
		}
	}
	// Propagate through simple local assignments: v := <aliasing expr>.
	localAlias := map[types.Object]int{}
	var exprAlias func(x ast.Expr) int
	exprAlias = func(x ast.Expr) int {
		switch x := ast.Unparen(x).(type) {
		case *ast.Ident:
			if obj := e.pass.Info.Uses[x]; obj != nil {
				if i, ok := paramIdx[obj]; ok {
					return i
				}
				if i, ok := localAlias[obj]; ok {
					return i
				}
			}
		case *ast.SelectorExpr:
			return exprAlias(x.X)
		case *ast.IndexExpr:
			return exprAlias(x.X)
		case *ast.SliceExpr:
			return exprAlias(x.X)
		case *ast.CallExpr:
			if callee := staticCallee(e.pass.Info, x); callee != nil {
				if cs, ok := e.sums[callee]; ok {
					for ri, pi := range cs.ResultAliasesParam {
						if pi >= 0 && ri == 0 && pi < len(x.Args) {
							return exprAlias(x.Args[pi])
						}
					}
				}
			}
		}
		return -1
	}
	objAt := map[int]types.Object{}
	for obj, i := range paramIdx {
		objAt[i] = obj
	}
	// The walk is flow-ordered and tracks, per block, the roots whose Owner
	// field is proven nil: after `if e.Owner != nil { return ... }`, a
	// `return e.Value` in the same block aliases only UNPOOLED bytes — the
	// conditional-clone idiom (core.safeVal) is summarized as non-aliasing.
	var walkStmts func(list []ast.Stmt, ownerNil map[types.Object]bool)
	var walkStmt func(st ast.Stmt, ownerNil map[types.Object]bool)
	walkStmt = func(st ast.Stmt, ownerNil map[types.Object]bool) {
		switch st := st.(type) {
		case *ast.BlockStmt:
			walkStmts(st.List, ownerNil)
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				obj := e.pass.Info.Defs[id]
				if obj == nil {
					obj = e.pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if ai := exprAlias(st.Rhs[i]); ai >= 0 && isByteSliceLike(obj.Type()) {
					localAlias[obj] = ai
				} else {
					delete(localAlias, obj)
				}
			}
		case *ast.ReturnStmt:
			for ri, res := range st.Results {
				if ri >= sig.Results().Len() || !isByteSliceLike(sig.Results().At(ri).Type()) {
					continue
				}
				ai := exprAlias(res)
				if ai < 0 || ri >= len(s.ResultAliasesParam) {
					continue
				}
				if ownerNil[objAt[ai]] {
					continue // guard proved the bytes are not pooled
				}
				s.ResultAliasesParam[ri] = ai
			}
		case *ast.IfStmt:
			if st.Init != nil {
				walkStmt(st.Init, ownerNil)
			}
			walkStmts(st.Body.List, ownerNil)
			if st.Else != nil {
				walkStmt(st.Else, ownerNil)
			}
			if root := ownerNotNilGuard(e.pass, st.Cond); root != nil && endsInReturn(st.Body) {
				ownerNil[root] = true // for the rest of THIS block only
			}
		case *ast.ForStmt:
			walkStmts(st.Body.List, ownerNil)
		case *ast.RangeStmt:
			walkStmts(st.Body.List, ownerNil)
		case *ast.SwitchStmt:
			for _, b := range clauseBodies(st.Body) {
				walkStmts(b, ownerNil)
			}
		case *ast.TypeSwitchStmt:
			for _, b := range clauseBodies(st.Body) {
				walkStmts(b, ownerNil)
			}
		case *ast.SelectStmt:
			for _, b := range commBodies(st.Body) {
				walkStmts(b, ownerNil)
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, ownerNil)
		}
		// Function literals are separate scopes: their returns are not this
		// function's returns, and the walker never descends into expressions.
	}
	walkStmts = func(list []ast.Stmt, ownerNil map[types.Object]bool) {
		// Copy so guard facts established inside a nested block don't leak
		// back out to a region the guard does not dominate.
		inner := make(map[types.Object]bool, len(ownerNil))
		for k, v := range ownerNil {
			inner[k] = v
		}
		for _, st := range list {
			walkStmt(st, inner)
		}
	}
	walkStmts(decl.Body.List, map[types.Object]bool{})
}

// ownerNotNilGuard matches a condition of the form `x.Owner != nil` (any
// *refbuf.Buf field selected from an identifier), returning the root object.
func ownerNotNilGuard(pass *Pass, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return nil
	}
	sel, nilSide := be.X, be.Y
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && id.Name == "nil" {
		sel, nilSide = be.Y, be.X
	}
	if id, ok := ast.Unparen(nilSide).(*ast.Ident); !ok || id.Name != "nil" {
		return nil
	}
	se, ok := ast.Unparen(sel).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.Info.Selections[se]
	if !ok || s.Kind() != types.FieldVal || !isRefbufPtr(s.Obj().Type()) {
		return nil
	}
	root, ok := ast.Unparen(se.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[root]
}

// endsInReturn reports whether the block's last statement is a return (the
// terminating shape the owner-nil guard requires).
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// isByteSliceLike reports whether t's core type is a byte slice (covers
// proto.Value and friends).
func isByteSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// refundsIn reports whether body contains a credit refund: `x.credits += n`
// (or `x.credits -= -n`…: only ADD_ASSIGN counts), a call through a field
// or method named CreditReturn/RepayCredits/repayCredits, or a call to a
// same-package function whose summary refunds.
func (e *Engine) refundsIn(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isCreditsField(e.pass.Info, n.Lhs[0]) {
				found = true
			}
		case *ast.CallExpr:
			if name := calleeSelName(n); name == "CreditReturn" || name == "RepayCredits" || name == "repayCredits" {
				found = true
				return false
			}
			if callee := staticCallee(e.pass.Info, n); callee != nil {
				if cs, ok := e.sums[callee]; ok && cs.Refunds {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isCreditsField reports whether x is a selector (or identifier) of an
// integer variable named "credits"/"Credits" — the send-window counter the
// credit discipline debits and refunds.
func isCreditsField(info *types.Info, x ast.Expr) bool {
	var name string
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return false
	}
	if name != "credits" && name != "Credits" {
		return false
	}
	tv, ok := info.Types[x]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// calleeSelName returns the selector name of a call's Fun ("CreditReturn"
// for l.cfg.CreditReturn(n)), or "".
func calleeSelName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// mayBlockIn scans body for blocking operations; goroutine bodies and
// nested function literals run off this function's control flow and are
// excluded. Mutex Lock/Unlock acquisition is deliberately NOT in the
// blocking set here (lock nesting is the order graph's job; treating every
// lock as blocking would flood callers) — but a select without a default,
// channel operations without provable headroom, sleeps, socket reads and
// writes, and WaitGroup.Wait are.
func (e *Engine) mayBlockIn(body *ast.BlockStmt) (bool, string) {
	var note string
	exempt := selectExemptComms(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if note != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				note = "select without a default case"
			}
		case *ast.SendStmt:
			if !exempt[ast.Stmt(n)] && !chanProvablyBuffered(e.pass, n.Chan, body) {
				note = "channel send (no provable buffer headroom)"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exempt[ast.Node(n)] {
				note = "channel receive"
			}
		case *ast.CallExpr:
			if fn := staticCallee(e.pass.Info, n); fn != nil {
				if m := blockingForSummary(fn); m != "" {
					note = m
				} else if cs, ok := e.sums[fn]; ok && cs.MayBlock {
					note = fn.Name() + ": " + cs.BlockNote
				}
			}
		}
		return true
	})
	return note != "", note
}

// selectExemptComms collects the comm statements and receive expressions
// that belong to a select (blocking is judged on the select itself, and a
// select with a default is non-blocking by construction).
func selectExemptComms(body ast.Node) map[any]bool {
	exempt := map[any]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch s := cc.Comm.(type) {
			case *ast.SendStmt:
				exempt[ast.Stmt(s)] = true
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					exempt[ast.Node(u)] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range s.Rhs {
					if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						exempt[ast.Node(u)] = true
					}
				}
			}
		}
		return true
	})
	return exempt
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingForSummary classifies standard-library calls that block, for the
// MayBlock summary. sync.Cond.Wait is excluded: it atomically releases the
// mutex it coordinates with, so "blocking while holding" does not apply to
// its own lock (a documented soundness limit for any *other* lock held).
func blockingForSummary(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "sync":
		if fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup" {
			return "sync.WaitGroup.Wait"
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "net":
		switch fn.Name() {
		case "Read", "Write", "Accept":
			return "net socket " + fn.Name()
		}
	}
	return ""
}

// acquiresIn collects the locks body acquires, directly or through
// same-package callees (transitive via the fixpoint). Goroutine bodies and
// function literals are excluded — they acquire on their own goroutine.
func (e *Engine) acquiresIn(body *ast.BlockStmt) []lockID {
	set := map[lockID]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, ok := lockAcquisition(e.pass, n); ok {
				set[id] = true
			} else if fn := staticCallee(e.pass.Info, n); fn != nil {
				if cs, ok := e.sums[fn]; ok {
					for _, l := range cs.Acquires {
						set[l] = true
					}
				}
			}
		}
		return true
	})
	out := make([]lockID, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lockAcquisition reports whether call is a sync.Mutex/RWMutex Lock or
// RLock, returning the lock's identity.
func lockAcquisition(pass *Pass, call *ast.CallExpr) (lockID, bool) {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return "", false
	}
	rt := recvTypeName(fn)
	if rt != "Mutex" && rt != "RWMutex" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return lockIdent(pass, sel.X), true
}

// lockRelease is the Unlock/RUnlock counterpart of lockAcquisition.
func lockRelease(pass *Pass, call *ast.CallExpr) (lockID, bool) {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != "Unlock" && fn.Name() != "RUnlock" {
		return "", false
	}
	rt := recvTypeName(fn)
	if rt != "Mutex" && rt != "RWMutex" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return lockIdent(pass, sel.X), true
}

// lockIdent names the lock denoted by expr: "Type.field" for a mutex field
// of a named struct (the stable identity an order graph needs — every
// instance of the type shares the discipline), or the root identifier's
// name otherwise.
func lockIdent(pass *Pass, expr ast.Expr) lockID {
	expr = ast.Unparen(expr)
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if tv, ok := pass.Info.Types[sel.X]; ok {
			if n := namedOf(tv.Type); n != nil {
				return lockID(n.Obj().Name() + "." + sel.Sel.Name)
			}
		}
		return lockID(sel.Sel.Name)
	}
	if id, ok := expr.(*ast.Ident); ok {
		return lockID(id.Name)
	}
	return lockID("<lock>")
}
