// Package craq implements rCRAQ, the paper's strongest baseline (§2.5,
// §5.1.2): Chain Replication with Apportioned Queries [Terrace &
// Freedman '09]. Replicas form a chain ordered by node ID; writes enter at
// the head, propagate down the chain, commit at the tail and acknowledge
// back up. Reads are served locally when the key is clean; a node holding a
// dirty (in-flight) version must query the tail for the last committed
// version — the very behaviour that melts the tail under skew (§6.2, §6.3).
//
// The implementation mirrors internal/core's shape: a deterministic
// state machine over proto.Replica/proto.Env, epoch-tagged messages, and
// mlt-based retransmission so it survives the same message-loss faults.
package craq

import (
	"time"

	"repro/internal/proto"
)

// --- Messages ---

// WriteReq forwards a client write (or RMW) from its origin node to the
// head of the chain.
type WriteReq struct {
	Epoch  uint32
	Origin proto.NodeID
	OpID   uint64
	Op     proto.ClientOp
}

// WriteDown propagates a version down the chain.
type WriteDown struct {
	Epoch  uint32
	Key    proto.Key
	Ver    uint64
	Value  proto.Value
	Origin proto.NodeID
	OpID   uint64
	// RMWOld carries the pre-image for FAA completions.
	RMWOld proto.Value
	Kind   proto.OpKind
}

// AckUp announces commitment (the write reached the tail) back up the
// chain; every node marks the version clean as it passes.
type AckUp struct {
	Epoch  uint32
	Key    proto.Key
	Ver    uint64
	Origin proto.NodeID
	OpID   uint64
	RMWOld proto.Value
	Kind   proto.OpKind
}

// RMWReply answers a CAS that failed its comparison at the head (a
// linearizable read, no version created).
type RMWReply struct {
	Epoch    uint32
	OpID     uint64
	Observed proto.Value
}

// VersionQuery asks the tail for a key's last committed version.
type VersionQuery struct {
	Epoch uint32
	Key   proto.Key
	OpID  uint64
}

// VersionReply is the tail's answer; Value is the committed value so the
// reader can answer its client directly.
type VersionReply struct {
	Epoch uint32
	Key   proto.Key
	OpID  uint64
	Ver   uint64
	Value proto.Value
}

// --- Replica ---

// Config parameterizes a CRAQ replica.
type Config struct {
	ID   proto.NodeID
	View proto.View
	Env  proto.Env
	// MLT is the retransmission timeout for unacknowledged writes and
	// unanswered tail queries.
	MLT time.Duration
}

// Metrics counts protocol events.
type Metrics struct {
	Reads, Writes     uint64
	LocalReads        uint64
	TailQueries       uint64 // reads that had to consult the tail
	Forwards          uint64 // writes forwarded to the head
	Retransmits       uint64
	StaleEpochDrops   uint64
	VersionsCommitted uint64
}

type entry struct {
	cleanVer uint64
	cleanVal proto.Value
	dirty    []dirtyVer // ascending versions > cleanVer
}

type dirtyVer struct {
	ver    uint64
	val    proto.Value
	origin proto.NodeID
	opID   uint64
	rmwOld proto.Value
	kind   proto.OpKind
	sentAt time.Duration // head only: for retransmission
}

// pendingRead is a read awaiting the tail's version reply.
type pendingRead struct {
	op       proto.ClientOp
	deadline time.Duration
}

// pendingFwd is an origin-side write awaiting commitment.
type pendingFwd struct {
	op       proto.ClientOp
	deadline time.Duration
}

// Replica is one CRAQ node.
type Replica struct {
	cfg     Config
	id      proto.NodeID
	env     proto.Env
	view    proto.View
	store   map[proto.Key]*entry
	oper    bool
	metrics Metrics

	nextVer  map[proto.Key]uint64 // head only
	pendR    map[uint64]*pendingRead
	pendW    map[uint64]*pendingFwd
	doneOnce map[uint64]bool // dedup completions across retransmits
	// assigned (head only) deduplicates retransmitted WriteReqs: an op that
	// already has a version must never be assigned a second one.
	assigned map[opKey]*assignedOp
}

type opKey struct {
	origin proto.NodeID
	opID   uint64
}

type assignedOp struct {
	key       proto.Key
	ver       uint64
	kind      proto.OpKind
	rmwOld    proto.Value
	casFailed bool
	observed  proto.Value
}

// New builds a CRAQ replica.
func New(cfg Config) *Replica {
	if cfg.Env == nil {
		panic("craq: Config.Env is required")
	}
	if cfg.MLT <= 0 {
		cfg.MLT = 10 * time.Millisecond
	}
	return &Replica{
		cfg:      cfg,
		id:       cfg.ID,
		env:      cfg.Env,
		view:     cfg.View.Clone(),
		store:    make(map[proto.Key]*entry),
		oper:     true,
		nextVer:  make(map[proto.Key]uint64),
		pendR:    make(map[uint64]*pendingRead),
		pendW:    make(map[uint64]*pendingFwd),
		doneOnce: make(map[uint64]bool),
		assigned: make(map[opKey]*assignedOp),
	}
}

// ID implements proto.Replica.
func (r *Replica) ID() proto.NodeID { return r.id }

// Metrics returns the replica's counters.
func (r *Replica) Metrics() Metrics { return r.metrics }

// SetOperational installs lease state (same contract as core.Hermes).
func (r *Replica) SetOperational(ok bool) { r.oper = ok }

func (r *Replica) head() proto.NodeID { return r.view.Members[0] }
func (r *Replica) tail() proto.NodeID { return r.view.Members[len(r.view.Members)-1] }

// succ returns the chain successor, or NilNode at the tail.
func (r *Replica) succ() proto.NodeID {
	for i, m := range r.view.Members {
		if m == r.id {
			if i+1 < len(r.view.Members) {
				return r.view.Members[i+1]
			}
			return proto.NilNode
		}
	}
	return proto.NilNode
}

// pred returns the chain predecessor, or NilNode at the head.
func (r *Replica) pred() proto.NodeID {
	for i, m := range r.view.Members {
		if m == r.id {
			if i > 0 {
				return r.view.Members[i-1]
			}
			return proto.NilNode
		}
	}
	return proto.NilNode
}

func (r *Replica) ent(k proto.Key) *entry {
	e := r.store[k]
	if e == nil {
		e = &entry{}
		r.store[k] = e
	}
	return e
}

// Submit implements proto.Replica.
func (r *Replica) Submit(op proto.ClientOp) {
	if !r.oper || !r.view.Contains(r.id) {
		r.env.Complete(proto.Completion{OpID: op.ID, Kind: op.Kind, Key: op.Key, Status: proto.NotOperational})
		return
	}
	if op.Kind == proto.OpRead {
		r.metrics.Reads++
		r.submitRead(op)
		return
	}
	r.metrics.Writes++
	if r.id == r.head() {
		r.headWrite(op, r.id)
		return
	}
	// Forward to the head; the chain is centralized for writes (the very
	// property Hermes' decentralized writes remove).
	r.metrics.Forwards++
	r.pendW[op.ID] = &pendingFwd{op: op, deadline: r.env.Now() + r.cfg.MLT}
	r.env.Send(r.head(), WriteReq{Epoch: r.view.Epoch, Origin: r.id, OpID: op.ID, Op: op})
}

func (r *Replica) submitRead(op proto.ClientOp) {
	e := r.store[op.Key]
	if e == nil || len(e.dirty) == 0 || r.id == r.tail() {
		// Clean (or we are the tail, whose view is authoritative).
		r.metrics.LocalReads++
		val := proto.Value(nil)
		if e != nil {
			val = e.cleanVal
		}
		r.env.Complete(proto.Completion{OpID: op.ID, Kind: proto.OpRead, Key: op.Key, Status: proto.OK, Value: val})
		return
	}
	// Dirty: apportioned query to the tail (§2.5).
	r.metrics.TailQueries++
	r.pendR[op.ID] = &pendingRead{op: op, deadline: r.env.Now() + r.cfg.MLT}
	r.env.Send(r.tail(), VersionQuery{Epoch: r.view.Epoch, Key: op.Key, OpID: op.ID})
}

// headWrite runs at the head: assign the next version and start it down the
// chain. RMWs are evaluated here against the newest (possibly dirty)
// version, which is what serializing all updates at the head buys CRAQ.
func (r *Replica) headWrite(op proto.ClientOp, origin proto.NodeID) {
	if prev := r.assigned[opKey{origin, op.ID}]; prev != nil {
		r.replayAssigned(op, origin, prev)
		return
	}
	e := r.ent(op.Key)
	newest := e.cleanVal
	if n := len(e.dirty); n > 0 {
		newest = e.dirty[n-1].val
	}
	var val, rmwOld proto.Value
	switch op.Kind {
	case proto.OpWrite:
		val = op.Value.Clone()
	case proto.OpCAS:
		if string(newest) != string(op.Expected) {
			r.assigned[opKey{origin, op.ID}] = &assignedOp{key: op.Key, kind: op.Kind, casFailed: true, observed: newest}
			r.replyCASFail(origin, op.ID, newest)
			return
		}
		val = op.Value.Clone()
	case proto.OpRead:
		panic("craq: read op reached the write path")
	case proto.OpFAA:
		rmwOld = newest
		val = proto.EncodeInt64(proto.DecodeInt64(newest) + proto.DecodeInt64(op.Value))
	}
	ver := r.nextVer[op.Key]
	base := e.cleanVer
	if n := len(e.dirty); n > 0 {
		base = e.dirty[n-1].ver
	}
	if ver <= base {
		ver = base + 1
	}
	r.nextVer[op.Key] = ver + 1
	r.assigned[opKey{origin, op.ID}] = &assignedOp{key: op.Key, ver: ver, kind: op.Kind, rmwOld: rmwOld}
	dv := dirtyVer{ver: ver, val: val, origin: origin, opID: op.ID,
		rmwOld: rmwOld, kind: op.Kind, sentAt: r.env.Now()}
	e.dirty = append(e.dirty, dv)
	r.sendDown(op.Key, dv)
}

// replayAssigned answers a retransmitted WriteReq without assigning a new
// version: resend the in-flight version, or re-announce the outcome.
func (r *Replica) replayAssigned(op proto.ClientOp, origin proto.NodeID, prev *assignedOp) {
	if prev.casFailed {
		r.replyCASFail(origin, op.ID, prev.observed)
		return
	}
	e := r.ent(prev.key)
	for _, d := range e.dirty {
		if d.ver == prev.ver {
			r.sendDown(prev.key, d)
			return
		}
	}
	// Already committed: re-announce directly to the origin.
	ack := AckUp{Epoch: r.view.Epoch, Key: prev.key, Ver: prev.ver,
		Origin: origin, OpID: op.ID, RMWOld: prev.rmwOld, Kind: prev.kind}
	if origin == r.id {
		r.commit(prev.key, ack)
		return
	}
	r.env.Send(origin, ack)
}

func (r *Replica) replyCASFail(origin proto.NodeID, opID uint64, observed proto.Value) {
	if origin == r.id {
		r.completeOnce(proto.Completion{OpID: opID, Kind: proto.OpCAS, Status: proto.CASFailed, Value: observed})
		return
	}
	r.env.Send(origin, RMWReply{Epoch: r.view.Epoch, OpID: opID, Observed: observed})
}

func (r *Replica) sendDown(k proto.Key, dv dirtyVer) {
	next := r.succ()
	msg := WriteDown{Epoch: r.view.Epoch, Key: k, Ver: dv.ver, Value: dv.val,
		Origin: dv.origin, OpID: dv.opID, RMWOld: dv.rmwOld, Kind: dv.kind}
	if next == proto.NilNode {
		// Single-node chain: head is tail; commit immediately.
		r.commit(k, AckUp{Epoch: r.view.Epoch, Key: k, Ver: dv.ver,
			Origin: dv.origin, OpID: dv.opID, RMWOld: dv.rmwOld, Kind: dv.kind})
		return
	}
	r.env.Send(next, msg)
}

// Deliver implements proto.Replica.
func (r *Replica) Deliver(from proto.NodeID, msg any) {
	switch t := msg.(type) {
	case WriteReq:
		if r.stale(t.Epoch) {
			return
		}
		if r.id == r.head() {
			r.headWrite(t.Op, t.Origin)
		}
	case WriteDown:
		r.onWriteDown(t)
	case AckUp:
		r.onAckUp(t)
	case RMWReply:
		if r.stale(t.Epoch) {
			return
		}
		delete(r.pendW, t.OpID)
		r.completeOnce(proto.Completion{OpID: t.OpID, Kind: proto.OpCAS, Status: proto.CASFailed, Value: t.Observed})
	case VersionQuery:
		if r.stale(t.Epoch) {
			return
		}
		e := r.ent(t.Key)
		r.env.Send(from, VersionReply{Epoch: r.view.Epoch, Key: t.Key, OpID: t.OpID,
			Ver: e.cleanVer, Value: e.cleanVal})
	case VersionReply:
		if r.stale(t.Epoch) {
			return
		}
		if pr := r.pendR[t.OpID]; pr != nil {
			delete(r.pendR, t.OpID)
			r.env.Complete(proto.Completion{OpID: t.OpID, Kind: proto.OpRead, Key: t.Key, Status: proto.OK, Value: t.Value})
		}
	default:
		panic("craq: unknown message type")
	}
}

func (r *Replica) stale(e uint32) bool {
	if e != r.view.Epoch {
		r.metrics.StaleEpochDrops++
		return true
	}
	return false
}

func (r *Replica) onWriteDown(w WriteDown) {
	if r.stale(w.Epoch) {
		return
	}
	e := r.ent(w.Key)
	if w.Ver <= e.cleanVer {
		// Already committed here (retransmission); re-ack so upstream can
		// clean too.
		r.propagateAck(AckUp{Epoch: r.view.Epoch, Key: w.Key, Ver: w.Ver,
			Origin: w.Origin, OpID: w.OpID, RMWOld: w.RMWOld, Kind: w.Kind})
		return
	}
	// Insert as dirty unless already present.
	present := false
	for _, d := range e.dirty {
		if d.ver == w.Ver {
			present = true
			break
		}
	}
	if !present {
		dv := dirtyVer{ver: w.Ver, val: w.Value, origin: w.Origin, opID: w.OpID, rmwOld: w.RMWOld, kind: w.Kind}
		// Maintain ascending order under reordering.
		pos := len(e.dirty)
		for pos > 0 && e.dirty[pos-1].ver > w.Ver {
			pos--
		}
		e.dirty = append(e.dirty, dirtyVer{})
		copy(e.dirty[pos+1:], e.dirty[pos:])
		e.dirty[pos] = dv
	}
	if r.id == r.tail() {
		r.commit(w.Key, AckUp{Epoch: r.view.Epoch, Key: w.Key, Ver: w.Ver,
			Origin: w.Origin, OpID: w.OpID, RMWOld: w.RMWOld, Kind: w.Kind})
		return
	}
	r.env.Send(r.succ(), WriteDown{Epoch: r.view.Epoch, Key: w.Key, Ver: w.Ver,
		Value: w.Value, Origin: w.Origin, OpID: w.OpID, RMWOld: w.RMWOld, Kind: w.Kind})
}

func (r *Replica) onAckUp(a AckUp) {
	if r.stale(a.Epoch) {
		return
	}
	r.commit(a.Key, a)
}

// commit marks version a.Ver clean locally, completes the op if this node
// is its origin, and propagates the ack upstream.
func (r *Replica) commit(k proto.Key, a AckUp) {
	e := r.ent(k)
	if a.Ver > e.cleanVer {
		// Find the value among dirties (every node saw the WriteDown first;
		// with reordering the ack may arrive early — then hold it by
		// ignoring; the head's retransmission recovers).
		var val proto.Value
		found := false
		for _, d := range e.dirty {
			if d.ver == a.Ver {
				val = d.val
				found = true
				break
			}
		}
		if !found && r.id != r.tail() {
			return // ack overtook its write; drop, retransmit recovers
		}
		if found {
			e.cleanVer = a.Ver
			e.cleanVal = val
			r.metrics.VersionsCommitted++
			// Drop dirty versions <= committed.
			kept := e.dirty[:0]
			for _, d := range e.dirty {
				if d.ver > a.Ver {
					kept = append(kept, d)
				}
			}
			e.dirty = kept
		}
	}
	if a.Origin == r.id {
		delete(r.pendW, a.OpID)
		c := proto.Completion{OpID: a.OpID, Kind: a.Kind, Key: k, Status: proto.OK}
		if a.Kind == proto.OpFAA {
			c.Value = a.RMWOld
		}
		r.completeOnce(c)
	}
	r.propagateAck(a)
}

func (r *Replica) propagateAck(a AckUp) {
	if p := r.pred(); p != proto.NilNode {
		a.Epoch = r.view.Epoch
		r.env.Send(p, a)
	}
}

// completeOnce deduplicates completions across retransmissions.
func (r *Replica) completeOnce(c proto.Completion) {
	if r.doneOnce[c.OpID] {
		return
	}
	r.doneOnce[c.OpID] = true
	r.env.Complete(c)
}

// Tick implements proto.Replica: head retransmits stale dirty writes;
// origins retransmit unacknowledged forwards; readers retry tail queries.
func (r *Replica) Tick() {
	now := r.env.Now()
	if r.id == r.head() {
		for k, e := range r.store {
			for i := range e.dirty {
				if now-e.dirty[i].sentAt >= r.cfg.MLT {
					e.dirty[i].sentAt = now
					r.metrics.Retransmits++
					r.sendDown(k, e.dirty[i])
				}
			}
		}
	}
	for id, pw := range r.pendW {
		if now >= pw.deadline {
			pw.deadline = now + r.cfg.MLT
			r.metrics.Retransmits++
			r.env.Send(r.head(), WriteReq{Epoch: r.view.Epoch, Origin: r.id, OpID: id, Op: pw.op})
		}
	}
	for id, pr := range r.pendR {
		if now >= pr.deadline {
			pr.deadline = now + r.cfg.MLT
			r.metrics.Retransmits++
			r.env.Send(r.tail(), VersionQuery{Epoch: r.view.Epoch, Key: pr.op.Key, OpID: id})
		}
	}
}

// OnViewChange rebuilds the chain. The new head re-pushes every dirty
// version it knows down the new chain (values travel with WriteDowns, so
// any survivor chain prefix can be completed); origins re-forward pending
// writes under the new epoch.
func (r *Replica) OnViewChange(v proto.View) {
	if v.Epoch <= r.view.Epoch {
		return
	}
	r.view = v.Clone()
	if !v.Contains(r.id) {
		r.oper = false
		return
	}
	now := r.env.Now()
	if r.id == r.head() {
		for k, e := range r.store {
			for i := range e.dirty {
				e.dirty[i].sentAt = now
				r.sendDown(k, e.dirty[i])
			}
		}
	}
	for id, pw := range r.pendW {
		pw.deadline = now + r.cfg.MLT
		r.env.Send(r.head(), WriteReq{Epoch: r.view.Epoch, Origin: r.id, OpID: id, Op: pw.op})
	}
	for id, pr := range r.pendR {
		pr.deadline = now + r.cfg.MLT
		r.env.Send(r.tail(), VersionQuery{Epoch: r.view.Epoch, Key: pr.op.Key, OpID: id})
	}
}

// CleanValue exposes a key's committed value (tests).
func (r *Replica) CleanValue(k proto.Key) (proto.Value, uint64) {
	e := r.store[k]
	if e == nil {
		return nil, 0
	}
	return e.cleanVal, e.cleanVer
}

// DirtyCount exposes the number of in-flight versions for a key (tests).
func (r *Replica) DirtyCount(k proto.Key) int {
	e := r.store[k]
	if e == nil {
		return 0
	}
	return len(e.dirty)
}
