package craq

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/prototest"
)

func build(t *testing.T, n int) *prototest.Harness {
	return prototest.Build(t, n, func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return New(Config{ID: id, View: view, Env: env, MLT: 10 * time.Millisecond})
	})
}

func rep(h *prototest.Harness, id proto.NodeID) *Replica {
	return h.Nodes[id].(*Replica)
}

func TestWriteAtHeadPropagatesToAll(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v") // node 0 is the head
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion: %+v", c)
	}
	for id := proto.NodeID(0); id < 3; id++ {
		val, ver := rep(h, id).CleanValue(1)
		if string(val) != "v" || ver != 1 {
			t.Fatalf("node %d: (%q,%d)", id, val, ver)
		}
		if rep(h, id).DirtyCount(1) != 0 {
			t.Fatalf("node %d still dirty", id)
		}
	}
}

func TestWriteAtNonHeadForwards(t *testing.T) {
	h := build(t, 3)
	op := h.Write(2, 1, "v") // tail origin: forward to head, down, commit
	h.Run()
	if c := h.Completion(2, op); c.Status != proto.OK {
		t.Fatalf("completion: %+v", c)
	}
	if rep(h, 2).Metrics().Forwards != 1 {
		t.Fatal("write was not forwarded to the head")
	}
	if v := h.ReadBack(0, 1); string(v) != "v" {
		t.Fatalf("head reads %q", v)
	}
}

func TestCleanReadIsLocal(t *testing.T) {
	h := build(t, 5)
	h.Write(0, 1, "v")
	h.Run()
	for id := proto.NodeID(0); id < 5; id++ {
		before := len(h.Msgs)
		op := h.Read(id, 1)
		if len(h.Msgs) != before {
			t.Fatalf("clean read at node %d generated traffic", id)
		}
		if c := h.Completion(id, op); string(c.Value) != "v" {
			t.Fatalf("node %d read %q", id, c.Value)
		}
	}
}

// The apportioned query (§2.5): a node holding a dirty version must consult
// the tail; the tail answers with the committed version.
func TestDirtyReadQueriesTail(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "old")
	h.Run()
	h.Write(0, 1, "new")
	// Propagate the WriteDown to node 1 only; key is dirty there.
	h.Step()
	if rep(h, 1).DirtyCount(1) != 1 {
		t.Fatal("node 1 should hold a dirty version")
	}
	// Hold the in-flight WriteDown to the tail so the new version stays
	// uncommitted while we read.
	held := h.Msgs
	h.Msgs = nil
	op := h.Read(1, 1)
	if h.HasCompletion(1, op) {
		t.Fatal("dirty read answered locally")
	}
	if rep(h, 1).Metrics().TailQueries != 1 {
		t.Fatal("no tail query issued")
	}
	h.Run() // only the VersionQuery/Reply are in flight
	// The tail has not seen the write: it answers "old" — correct, the new
	// version is uncommitted.
	if c := h.Completion(1, op); string(c.Value) != "old" {
		t.Fatalf("tail-apportioned read: %q", c.Value)
	}
	h.Msgs = held
	h.Run()
	if v := h.ReadBack(1, 1); string(v) != "new" {
		t.Fatalf("after commit: %q", v)
	}
}

func TestTailReadsAlwaysLocal(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "a")
	h.Run()
	h.Write(0, 1, "b")
	h.Step() // dirty at node 1; tail (node 2) hasn't seen it
	op := h.Read(2, 1)
	if c := h.Completion(2, op); string(c.Value) != "a" {
		t.Fatalf("tail read %q (must serve its committed value locally)", c.Value)
	}
	if rep(h, 2).Metrics().TailQueries != 0 {
		t.Fatal("the tail queried itself")
	}
}

func TestWritesToSameKeySerializeByVersion(t *testing.T) {
	h := build(t, 3)
	a := h.Write(1, 1, "from1")
	b := h.Write(2, 1, "from2")
	h.Run()
	if !h.HasCompletion(1, a) || !h.HasCompletion(2, b) {
		t.Fatal("both writes must commit")
	}
	// Whichever WriteReq reached the head second wins; all replicas agree.
	ref, refVer := rep(h, 0).CleanValue(1)
	if refVer != 2 {
		t.Fatalf("version=%d want 2", refVer)
	}
	for id := proto.NodeID(1); id < 3; id++ {
		v, ver := rep(h, id).CleanValue(1)
		if string(v) != string(ref) || ver != refVer {
			t.Fatalf("divergence at node %d: (%q,%d) vs (%q,%d)", id, v, ver, ref, refVer)
		}
	}
}

func TestInterKeyConcurrency(t *testing.T) {
	h := build(t, 3)
	// Writes to distinct keys flow down the chain concurrently.
	ops := map[proto.Key]uint64{}
	for k := proto.Key(0); k < 8; k++ {
		ops[k] = h.Write(1, k, "v")
	}
	h.Run()
	for k, op := range ops {
		if c := h.Completion(1, op); c.Status != proto.OK {
			t.Fatalf("key %d: %+v", k, c)
		}
	}
}

func TestFAAAtHead(t *testing.T) {
	h := build(t, 3)
	op1 := h.FAA(1, 1, 5)
	h.Run()
	op2 := h.FAA(2, 1, 7)
	h.Run()
	if c := h.Completion(1, op1); proto.DecodeInt64(c.Value) != 0 {
		t.Fatalf("first FAA old=%d", proto.DecodeInt64(c.Value))
	}
	if c := h.Completion(2, op2); proto.DecodeInt64(c.Value) != 5 {
		t.Fatalf("second FAA old=%d", proto.DecodeInt64(c.Value))
	}
	if v := h.ReadBack(0, 1); proto.DecodeInt64(v) != 12 {
		t.Fatalf("counter=%d", proto.DecodeInt64(v))
	}
}

func TestCASFailureRepliesToOrigin(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "actual")
	h.Run()
	op := h.CAS(2, 1, "wrong", "new")
	h.Run()
	c := h.Completion(2, op)
	if c.Status != proto.CASFailed || string(c.Value) != "actual" {
		t.Fatalf("CAS failure: %+v", c)
	}
	if v := h.ReadBack(0, 1); string(v) != "actual" {
		t.Fatal("failed CAS mutated state")
	}
}

func TestCASSuccessAgainstDirtyNewest(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "a")
	h.Run()
	// CAS expecting "a" arrives while a newer write is dirty at the head:
	// the head evaluates against the newest version ("b"), so it fails.
	h.Write(0, 1, "b")
	op := h.CAS(0, 1, "a", "c")
	if c := h.Completion(0, op); c.Status != proto.CASFailed || string(c.Value) != "b" {
		t.Fatalf("CAS vs dirty head state: %+v", c)
	}
	h.Run()
}

func TestLostWriteDownRetransmitted(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v")
	// Lose the WriteDown to node 1.
	h.DropWhere(func(e prototest.Envelope) bool { _, is := e.Msg.(WriteDown); return is })
	h.Run()
	if h.HasCompletion(0, op) {
		t.Fatal("committed without reaching the tail")
	}
	h.Advance(15 * time.Millisecond) // head retransmits
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("after retransmit: %+v", c)
	}
}

func TestLostWriteReqRetransmitted(t *testing.T) {
	h := build(t, 3)
	op := h.Write(2, 1, "v")
	h.DropWhere(func(e prototest.Envelope) bool { _, is := e.Msg.(WriteReq); return is })
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(2, op); c.Status != proto.OK {
		t.Fatalf("after WriteReq retransmit: %+v", c)
	}
}

func TestDuplicatesAreIdempotent(t *testing.T) {
	h := build(t, 3)
	op := h.Write(1, 1, "v")
	h.DuplicateAll()
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	count := 0
	for _, c := range h.Done[1] {
		if c.OpID == op {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("op completed %d times", count)
	}
	if v, ver := rep(h, 2).CleanValue(1); string(v) != "v" || ver != 1 {
		t.Fatalf("tail state (%q,%d)", v, ver)
	}
}

// Chain reconfiguration: the middle node dies; the head re-pushes dirty
// writes down the shortened chain and the write commits.
func TestMidChainFailureRecovery(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v")
	// WriteDown reaches node 1 and dies there.
	h.Step()
	h.Crash(1)
	h.Run()
	if h.HasCompletion(0, op) {
		t.Fatal("committed through a dead node")
	}
	h.RemoveFromView(1)
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("after reconfiguration: %+v", c)
	}
	if v, _ := rep(h, 2).CleanValue(1); string(v) != "v" {
		t.Fatalf("tail has %q", v)
	}
}

// Head failure: the new head (old second node) re-pushes its dirty set.
func TestHeadFailureRecovery(t *testing.T) {
	h := build(t, 3)
	op := h.Write(1, 5, "v") // origin node 1
	h.Step()                 // WriteReq reaches head 0
	h.Step()                 // WriteDown reaches node 1 (dirty there)
	h.Crash(0)
	h.Run()
	h.RemoveFromView(0) // chain is now 1 -> 2; node 1 is head
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(1, op); c.Status != proto.OK {
		t.Fatalf("after head failover: %+v", c)
	}
	if v, _ := rep(h, 2).CleanValue(5); string(v) != "v" {
		t.Fatalf("tail has %q", v)
	}
}

func TestShuffledDeliveryConverges(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := build(t, 5)
		var ops []uint64
		for i := 0; i < 10; i++ {
			ops = append(ops, h.Write(proto.NodeID(rng.Intn(5)), 1, string(rune('a'+i))))
			if rng.Intn(2) == 0 {
				h.RunShuffled(rng)
			}
		}
		for round := 0; round < 30; round++ {
			h.RunShuffled(rng)
			h.Advance(11 * time.Millisecond)
		}
		h.Run()
		for _, op := range ops {
			done := false
			for id := range h.Nodes {
				if h.HasCompletion(id, op) {
					done = true
				}
			}
			if !done {
				t.Fatalf("seed %d: a write never completed", seed)
			}
		}
		ref, refVer := rep(h, 0).CleanValue(1)
		for id := proto.NodeID(1); id < 5; id++ {
			v, ver := rep(h, id).CleanValue(1)
			if ver != refVer || string(v) != string(ref) {
				t.Fatalf("seed %d: divergence at node %d", seed, id)
			}
		}
	}
}

func TestNonOperationalRejects(t *testing.T) {
	h := build(t, 3)
	rep(h, 1).SetOperational(false)
	op := h.Read(1, 1)
	if c := h.Completion(1, op); c.Status != proto.NotOperational {
		t.Fatalf("%+v", c)
	}
}

func TestSingleNodeChain(t *testing.T) {
	h := build(t, 1)
	op := h.Write(0, 1, "v")
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
	if v := h.ReadBack(0, 1); string(v) != "v" {
		t.Fatalf("%q", v)
	}
}
