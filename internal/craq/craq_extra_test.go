package craq

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/prototest"
)

// The tail failing is special for CRAQ: commitment moves to the new tail
// and the head's re-push completes pending writes.
func TestTailFailureRecovery(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v")
	h.Step() // WriteDown reaches node 1
	h.Crash(2)
	h.Run()
	if h.HasCompletion(0, op) {
		t.Fatal("committed at a dead tail")
	}
	h.RemoveFromView(2) // chain 0 -> 1, node 1 is the new tail
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("after tail failover: %+v", c)
	}
	if v, _ := rep(h, 1).CleanValue(1); string(v) != "v" {
		t.Fatalf("new tail: %q", v)
	}
}

// A version query that races with the write's commit still returns a
// linearizable answer: either the old committed value or the new one.
func TestQueryCommitRace(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "old")
	h.Run()
	h.Write(0, 1, "new")
	h.Step() // dirty at node 1
	op := h.Read(1, 1)
	h.Run() // query + remaining chain traffic interleave FIFO
	c := h.Completion(1, op)
	if got := string(c.Value); got != "old" && got != "new" {
		t.Fatalf("read %q, want old or new", got)
	}
}

// Lost AckUp: the committed write is re-announced by the head's
// retransmission; the origin's completion arrives exactly once.
func TestLostAckUpRecovered(t *testing.T) {
	h := build(t, 3)
	op := h.Write(1, 1, "v")
	for {
		if h.DropWhere(func(e prototest.Envelope) bool { _, is := e.Msg.(AckUp); return is }) > 0 {
			continue
		}
		if len(h.Msgs) == 0 {
			break
		}
		h.Step()
	}
	if h.HasCompletion(1, op) {
		t.Fatal("completed without acks")
	}
	h.Advance(15 * time.Millisecond)
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(1, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
	n := 0
	for _, c := range h.Done[1] {
		if c.OpID == op {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("completed %d times", n)
	}
}

// Reads must keep flowing during chain reconfiguration (clean keys stay
// serveable; the membership check gates only removed nodes).
func TestReadsAvailableDuringReconfiguration(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "v")
	h.Run()
	h.Crash(1)
	h.RemoveFromView(1)
	op := h.Read(0, 1)
	if c := h.Completion(0, op); c.Status != proto.OK || string(c.Value) != "v" {
		t.Fatalf("read during reconfig: %+v", c)
	}
}

func TestMetricsAccounting(t *testing.T) {
	h := build(t, 3)
	h.Write(2, 1, "v")
	h.Run()
	h.Read(2, 1)
	m := rep(h, 2).Metrics()
	if m.Writes != 1 || m.Forwards != 1 || m.Reads != 1 || m.LocalReads != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if rep(h, 0).Metrics().VersionsCommitted != 1 {
		t.Fatal("head commit not counted")
	}
}
