package zab

import (
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/prototest"
)

// A follower that misses a proposal *and* its retransmissions (committed by
// the other majority members meanwhile) repairs the gap with a fetch.
func TestGapRepairViaFetch(t *testing.T) {
	h := build(t, 3)
	// Write 1 commits fully.
	h.Write(0, 1, "a")
	h.Run()
	// Write 2: node 2 never sees the proposal, but node 1 ACKs -> majority.
	h.Write(0, 2, "b")
	for {
		if h.DropWhere(func(e prototest.Envelope) bool {
			_, is := e.Msg.(Propose)
			return is && e.To == 2
		}) > 0 {
			continue
		}
		if len(h.Msgs) == 0 {
			break
		}
		h.Step()
	}
	if string(rep(h, 2).Value(2)) != "" {
		t.Fatal("node 2 should have a gap")
	}
	// Subsequent write commits too; node 2 now knows it is behind (commit
	// announcements) and fetches.
	h.Write(0, 3, "c")
	h.Run()
	for i := 0; i < 6; i++ {
		h.Advance(15 * time.Millisecond)
		h.Run()
	}
	r2 := rep(h, 2)
	if string(r2.Value(2)) != "b" || string(r2.Value(3)) != "c" {
		t.Fatalf("gap not repaired: key2=%q key3=%q", r2.Value(2), r2.Value(3))
	}
}

// Double failover: leader 0 dies, then leader 1 dies; node 2 leads alone
// (still a majority of... no — of 3 configured, 1 is not a majority; use 5).
func TestDoubleLeaderFailover(t *testing.T) {
	h := build(t, 5)
	h.Write(0, 1, "first")
	h.Run()
	h.Crash(0)
	h.RemoveFromView(0)
	h.Run()
	op := h.Write(1, 2, "second") // new leader = 1
	h.Run()
	if c := h.Completion(1, op); c.Status != proto.OK {
		t.Fatalf("after first failover: %+v", c)
	}
	h.Crash(1)
	h.RemoveFromView(1)
	h.Run()
	op = h.Write(3, 3, "third") // new leader = 2
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(3, op); c.Status != proto.OK {
		t.Fatalf("after second failover: %+v", c)
	}
	for _, id := range []proto.NodeID{2, 3, 4} {
		r := rep(h, id)
		if string(r.Value(1)) != "first" || string(r.Value(3)) != "third" {
			t.Fatalf("node %d lost data: %q %q", id, r.Value(1), r.Value(3))
		}
	}
}

// The leader's own sessions behave like any other: leader-local writes
// complete only after majority commit.
func TestLeaderWriteWaitsForMajority(t *testing.T) {
	h := build(t, 5)
	op := h.Write(0, 1, "v")
	if h.HasCompletion(0, op) {
		t.Fatal("leader committed its own write without follower ACKs")
	}
	h.Step() // propose -> 1
	h.Step() // propose -> 2
	h.Step() // propose -> 3
	h.Step() // propose -> 4
	h.Step() // first ACK: 2/5 not majority
	if h.HasCompletion(0, op) {
		t.Fatal("committed below quorum")
	}
	h.Step() // second ACK: 3/5 majority
	if !h.HasCompletion(0, op) {
		t.Fatal("not committed at quorum")
	}
}

// Commit messages arriving before their proposals (reordering) are held
// until the log prefix is contiguous.
func TestCommitBeforeProposeHeld(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "v")
	// Manually deliver out of order at node 2: commit first.
	var propose, commit *prototest.Envelope
	h.DropWhere(func(e prototest.Envelope) bool {
		if _, is := e.Msg.(Propose); is && e.To == 2 {
			cp := e
			propose = &cp
			return true
		}
		return false
	})
	h.Run() // node 1 ACKs; the leader commits; hold node 2's Commit
	h.DropWhere(func(e prototest.Envelope) bool {
		if _, is := e.Msg.(Commit); is && e.To == 2 {
			cp := e
			commit = &cp
			return true
		}
		return false
	})
	if commit != nil {
		h.Nodes[2].Deliver(commit.From, commit.Msg)
	}
	if string(rep(h, 2).Value(1)) == "v" {
		t.Fatal("applied without the proposal")
	}
	if propose != nil {
		h.Nodes[2].Deliver(propose.From, propose.Msg)
	}
	h.Run()
	if string(rep(h, 2).Value(1)) != "v" {
		t.Fatal("proposal after commit did not apply")
	}
}
