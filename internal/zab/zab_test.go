package zab

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/prototest"
)

func build(t *testing.T, n int) *prototest.Harness {
	return prototest.Build(t, n, func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		return New(Config{ID: id, View: view, Env: env, MLT: 10 * time.Millisecond})
	})
}

func rep(h *prototest.Harness, id proto.NodeID) *Replica {
	return h.Nodes[id].(*Replica)
}

func TestLeaderIsLowestMember(t *testing.T) {
	h := build(t, 3)
	for id := proto.NodeID(0); id < 3; id++ {
		if got := rep(h, id).Leader(); got != 0 {
			t.Fatalf("node %d thinks leader is %d", id, got)
		}
	}
}

func TestWriteAtLeaderCommitsOnMajority(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v")
	// Proposal to both followers in flight.
	if len(h.Msgs) != 2 {
		t.Fatalf("%d messages, want 2 proposals", len(h.Msgs))
	}
	h.Step() // propose -> node 1
	h.Step() // propose -> node 2
	h.Step() // first ack -> leader: majority (leader+1) reached, commit
	if !h.HasCompletion(0, op) {
		t.Fatal("not committed on majority")
	}
	h.Run()
	for id := proto.NodeID(0); id < 3; id++ {
		if v := rep(h, id).Value(1); string(v) != "v" {
			t.Fatalf("node %d applied %q", id, v)
		}
	}
}

func TestWriteAtFollowerForwardsToLeader(t *testing.T) {
	h := build(t, 3)
	op := h.Write(2, 1, "v")
	h.Run()
	if c := h.Completion(2, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
	if rep(h, 2).Metrics().Forwards != 1 {
		t.Fatal("no forward")
	}
	if rep(h, 0).Metrics().Proposals != 1 {
		t.Fatal("leader did not propose")
	}
}

func TestWritesTotallyOrderedAcrossKeys(t *testing.T) {
	// ZAB's defining cost: updates to *different* keys still serialize
	// through the leader's single log.
	h := build(t, 3)
	for k := proto.Key(0); k < 6; k++ {
		h.Write(proto.NodeID(k%3), k, "v")
	}
	h.Run()
	lead := rep(h, 0)
	if lead.LastApplied().Counter != 6 {
		t.Fatalf("leader applied %d entries, want 6 in one log", lead.LastApplied().Counter)
	}
	for id := proto.NodeID(0); id < 3; id++ {
		for k := proto.Key(0); k < 6; k++ {
			if string(rep(h, id).Value(k)) != "v" {
				t.Fatalf("node %d key %d missing", id, k)
			}
		}
	}
}

func TestLocalReadsAreSequentiallyConsistent(t *testing.T) {
	h := build(t, 3)
	wop := h.Write(2, 1, "mine")
	h.Run()
	if c := h.Completion(2, wop); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
	// The session's node has applied its own write (completion implies
	// application), so its local read observes it.
	rop := h.Read(2, 1)
	if c := h.Completion(2, rop); string(c.Value) != "mine" {
		t.Fatalf("read-your-writes violated: %q", c.Value)
	}
	// Reads never generate traffic.
	before := len(h.Msgs)
	h.Read(1, 1)
	if len(h.Msgs) != before {
		t.Fatal("local read sent messages")
	}
}

func TestCommitAppliesInZxidOrderDespiteReordering(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "a")
	h.Write(0, 1, "b")
	h.Write(0, 2, "c")
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		h.RunShuffled(rng)
		h.Advance(11 * time.Millisecond)
	}
	h.Run()
	for id := proto.NodeID(0); id < 3; id++ {
		r := rep(h, id)
		if string(r.Value(1)) != "b" || string(r.Value(2)) != "c" {
			t.Fatalf("node %d: key1=%q key2=%q", id, r.Value(1), r.Value(2))
		}
	}
}

func TestFAASerializedAtLeader(t *testing.T) {
	h := build(t, 3)
	a := h.FAA(1, 1, 3)
	b := h.FAA(2, 1, 4)
	h.Run()
	olds := []int64{
		proto.DecodeInt64(h.Completion(1, a).Value),
		proto.DecodeInt64(h.Completion(2, b).Value),
	}
	// One saw 0, the other saw the first delta.
	if !(olds[0] == 0 && olds[1] == 3 || olds[0] == 4 && olds[1] == 0) {
		t.Fatalf("FAA old values %v", olds)
	}
	if v := proto.DecodeInt64(rep(h, 0).Value(1)); v != 7 {
		t.Fatalf("counter=%d", v)
	}
}

func TestCASFailureReply(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "actual")
	h.Run()
	op := h.CAS(2, 1, "wrong", "x")
	h.Run()
	c := h.Completion(2, op)
	if c.Status != proto.CASFailed || string(c.Value) != "actual" {
		t.Fatalf("%+v", c)
	}
}

func TestLostProposalRetransmitted(t *testing.T) {
	h := build(t, 3)
	op := h.Write(0, 1, "v")
	h.DropWhere(func(e prototest.Envelope) bool { _, is := e.Msg.(Propose); return is })
	h.Run()
	if h.HasCompletion(0, op) {
		t.Fatal("committed without follower acks")
	}
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
	for id := proto.NodeID(1); id < 3; id++ {
		if string(rep(h, id).Value(1)) != "v" {
			t.Fatalf("node %d missing value after retransmit", id)
		}
	}
}

func TestLostForwardRetransmitted(t *testing.T) {
	h := build(t, 3)
	op := h.Write(1, 1, "v")
	h.DropWhere(func(e prototest.Envelope) bool { _, is := e.Msg.(Forward); return is })
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(1, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
}

func TestDuplicateForwardProposedOnce(t *testing.T) {
	h := build(t, 3)
	h.Write(1, 1, "v")
	h.DuplicateAll()
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if got := rep(h, 0).Metrics().Proposals; got != 1 {
		t.Fatalf("%d proposals for one op", got)
	}
}

func TestLeaderFailover(t *testing.T) {
	h := build(t, 3)
	h.Write(0, 1, "committed")
	h.Run()
	// A write forwarded to the leader, proposed, but the leader dies before
	// commit.
	op := h.Write(1, 2, "pending")
	h.Step() // Forward reaches leader
	h.Step() // Propose reaches node 1 (buffered there)
	h.Crash(0)
	h.Run()
	h.RemoveFromView(0) // new leader: node 1
	h.Run()
	for id := proto.NodeID(1); id < 3; id++ {
		if got := rep(h, id).Leader(); got != 1 {
			t.Fatalf("node %d leader=%d", id, got)
		}
	}
	// The new leader re-proposes the uncommitted entry from its buffer; the
	// origin's op completes.
	h.Advance(15 * time.Millisecond)
	h.Run()
	h.Advance(15 * time.Millisecond)
	h.Run()
	if c := h.Completion(1, op); c.Status != proto.OK {
		t.Fatalf("pending write lost in failover: %+v", c)
	}
	if string(rep(h, 2).Value(2)) != "pending" {
		t.Fatal("follower missing recovered write")
	}
	if string(rep(h, 2).Value(1)) != "committed" {
		t.Fatal("failover lost committed data")
	}
}

func TestFollowerFailure(t *testing.T) {
	h := build(t, 5)
	h.Crash(4)
	op := h.Write(0, 1, "v")
	h.Run()
	// Majority (3/5) still reachable: commits without node 4.
	if c := h.Completion(0, op); c.Status != proto.OK {
		t.Fatalf("%+v", c)
	}
}

func TestShuffledStressConverges(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := build(t, 3)
		var ops []uint64
		for i := 0; i < 10; i++ {
			id := proto.NodeID(rng.Intn(3))
			ops = append(ops, h.Write(id, proto.Key(rng.Intn(3)), string(rune('a'+i))))
			if rng.Intn(2) == 0 {
				h.RunShuffled(rng)
			}
		}
		for round := 0; round < 30; round++ {
			h.DropWhere(func(prototest.Envelope) bool { return rng.Float64() < 0.1 })
			h.RunShuffled(rng)
			h.Advance(11 * time.Millisecond)
		}
		h.Run()
		for i, op := range ops {
			done := false
			for id := range h.Nodes {
				if h.HasCompletion(id, op) {
					done = true
				}
			}
			if !done {
				t.Fatalf("seed %d: op %d lost", seed, i)
			}
		}
		// All replicas converge on the leader's state.
		lead := rep(h, 0)
		for id := proto.NodeID(1); id < 3; id++ {
			for k := proto.Key(0); k < 3; k++ {
				if string(rep(h, id).Value(k)) != string(lead.Value(k)) {
					t.Fatalf("seed %d: divergence at node %d key %d", seed, id, k)
				}
			}
		}
	}
}

func TestNonOperationalRejects(t *testing.T) {
	h := build(t, 3)
	rep(h, 2).SetOperational(false)
	op := h.Write(2, 1, "x")
	if c := h.Completion(2, op); c.Status != proto.NotOperational {
		t.Fatalf("%+v", c)
	}
}

func TestZxidOrdering(t *testing.T) {
	cases := []struct {
		a, b Zxid
		less bool
	}{
		{Zxid{1, 5}, Zxid{2, 1}, true},
		{Zxid{2, 1}, Zxid{1, 5}, false},
		{Zxid{1, 1}, Zxid{1, 2}, true},
		{Zxid{1, 2}, Zxid{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Fatalf("%v.Less(%v)=%v", c.a, c.b, got)
		}
	}
}
