// Package zab implements rZAB, the paper's majority-commit baseline
// (§5.1.1): the ZooKeeper Atomic Broadcast protocol [Junqueira et al. '11],
// RDMA-optimized per the paper's methodology. One node is the leader; every
// write from any node is forwarded to it, serialized into a zxid-ordered
// log, proposed to all followers, committed on a majority of ACKs and
// applied in log order everywhere. Reads are local and sequentially
// consistent (not linearizable — the paper deliberately evaluates this
// upper bound, §5.1.1): a session's read is correct once that session's own
// last write has applied locally, which this implementation guarantees by
// completing writes only when the origin node has applied them.
//
// The leader is the write-path bottleneck — the very property that caps
// ZAB's throughput in Figs. 5-7.
package zab

import (
	"sort"
	"time"

	"repro/internal/proto"
)

// Zxid identifies a log slot: the leader's epoch and a counter within it,
// ordered lexicographically.
type Zxid struct {
	Epoch   uint32 // leadership epoch (the membership epoch that elected it)
	Counter uint64
}

// Less orders zxids.
func (z Zxid) Less(o Zxid) bool {
	return z.Epoch < o.Epoch || (z.Epoch == o.Epoch && z.Counter < o.Counter)
}

// --- Messages ---

// Forward carries a client update from its origin to the leader.
type Forward struct {
	Epoch  uint32
	Origin proto.NodeID
	OpID   uint64
	Op     proto.ClientOp
}

// Propose replicates one log entry to followers.
type Propose struct {
	Epoch uint32
	Entry LogEntry
}

// AckProp acknowledges a proposal.
type AckProp struct {
	Epoch uint32
	Z     Zxid
}

// Commit orders followers to apply everything up to Z.
type Commit struct {
	Epoch uint32
	Z     Zxid
}

// RMWReply answers a CAS whose comparison failed at the leader.
type RMWReply struct {
	Epoch    uint32
	OpID     uint64
	Observed proto.Value
}

// FetchReq asks the leader to re-send committed entries starting at
// FromCounter (the requester has a gap: it missed a proposal that has since
// committed at a majority that did not include it).
type FetchReq struct {
	Epoch       uint32
	FromCounter uint64
}

// FetchResp carries committed entries back to a lagging follower.
type FetchResp struct {
	Epoch   uint32
	Entries []LogEntry
}

// SyncInfo carries a follower's log status to a newly elected leader: its
// last applied zxid and its uncommitted suffix.
type SyncInfo struct {
	Epoch       uint32
	LastApplied Zxid
	Uncommitted []LogEntry
}

// SyncLog installs the new leader's reconciled uncommitted suffix plus its
// commit point on a follower.
type SyncLog struct {
	Epoch     uint32
	Committed Zxid
	Entries   []LogEntry
}

// LogEntry is one serialized update.
type LogEntry struct {
	Z      Zxid
	Key    proto.Key
	Value  proto.Value
	Origin proto.NodeID
	OpID   uint64
	Kind   proto.OpKind
	RMWOld proto.Value
}

// --- Replica ---

// Config parameterizes a ZAB replica.
type Config struct {
	ID   proto.NodeID
	View proto.View
	Env  proto.Env
	MLT  time.Duration
}

// Metrics counts protocol events.
type Metrics struct {
	Reads, Writes   uint64
	Forwards        uint64
	Proposals       uint64
	Commits         uint64
	Retransmits     uint64
	StaleEpochDrops uint64
	Elections       uint64
}

type pendingProp struct {
	entry    LogEntry
	acks     map[proto.NodeID]bool
	sentAt   time.Duration
	commited bool
}

type pendingFwd struct {
	op       proto.ClientOp
	deadline time.Duration
}

// Replica is one ZAB node.
type Replica struct {
	cfg     Config
	id      proto.NodeID
	env     proto.Env
	view    proto.View
	oper    bool
	metrics Metrics

	// Applied state.
	data        map[proto.Key]proto.Value
	lastApplied Zxid

	// Leader state.
	counter   uint64
	pending   map[Zxid]*pendingProp // proposed, not yet committed
	commitPt  Zxid
	specState map[proto.Key]proto.Value // leader's speculative view for RMWs
	// history retains committed entries so lagging followers can fetch the
	// gaps they missed (a real deployment truncates it at a checkpoint).
	history map[Zxid]LogEntry

	// Follower state: out-of-order proposal buffer and the highest commit
	// point announced by the leader.
	buffer     map[Zxid]LogEntry
	seenCommit Zxid

	// Origin state.
	pendW    map[uint64]*pendingFwd
	doneOnce map[uint64]bool

	// Recovery.
	syncing     bool
	syncInfos   map[proto.NodeID]SyncInfo
	mySyncInfo  SyncInfo
	awaitSync   bool
	syncRetryAt time.Duration
}

// New builds a ZAB replica.
func New(cfg Config) *Replica {
	if cfg.Env == nil {
		panic("zab: Config.Env is required")
	}
	if cfg.MLT <= 0 {
		cfg.MLT = 10 * time.Millisecond
	}
	r := &Replica{
		cfg:       cfg,
		id:        cfg.ID,
		env:       cfg.Env,
		view:      cfg.View.Clone(),
		oper:      true,
		data:      make(map[proto.Key]proto.Value),
		pending:   make(map[Zxid]*pendingProp),
		specState: make(map[proto.Key]proto.Value),
		history:   make(map[Zxid]LogEntry),
		buffer:    make(map[Zxid]LogEntry),
		pendW:     make(map[uint64]*pendingFwd),
		doneOnce:  make(map[uint64]bool),
		syncInfos: make(map[proto.NodeID]SyncInfo),
	}
	return r
}

// ID implements proto.Replica.
func (r *Replica) ID() proto.NodeID { return r.id }

// Metrics returns counters.
func (r *Replica) Metrics() Metrics { return r.metrics }

// SetOperational installs lease state.
func (r *Replica) SetOperational(ok bool) { r.oper = ok }

// Leader returns the current leader (lowest live member).
func (r *Replica) Leader() proto.NodeID { return r.view.Members[0] }

func (r *Replica) isLeader() bool { return r.id == r.Leader() }

// Value returns the applied value of a key (tests).
func (r *Replica) Value(k proto.Key) proto.Value { return r.data[k] }

// LastApplied returns the last applied zxid (tests).
func (r *Replica) LastApplied() Zxid { return r.lastApplied }

// Submit implements proto.Replica.
func (r *Replica) Submit(op proto.ClientOp) {
	if !r.oper || !r.view.Contains(r.id) {
		r.env.Complete(proto.Completion{OpID: op.ID, Kind: op.Kind, Key: op.Key, Status: proto.NotOperational})
		return
	}
	if op.Kind == proto.OpRead {
		// Local, sequentially consistent read: session order holds because
		// this node completes its sessions' writes only after applying them.
		r.metrics.Reads++
		r.env.Complete(proto.Completion{OpID: op.ID, Kind: proto.OpRead, Key: op.Key, Status: proto.OK, Value: r.data[op.Key]})
		return
	}
	r.metrics.Writes++
	r.pendW[op.ID] = &pendingFwd{op: op, deadline: r.env.Now() + r.cfg.MLT}
	if r.isLeader() {
		r.propose(op, r.id)
		return
	}
	r.metrics.Forwards++
	r.env.Send(r.Leader(), Forward{Epoch: r.view.Epoch, Origin: r.id, OpID: op.ID, Op: op})
}

// propose serializes one update at the leader.
func (r *Replica) propose(op proto.ClientOp, origin proto.NodeID) {
	if r.syncing {
		return // defer to retransmission once sync completes
	}
	cur := r.specState[op.Key]
	var val, rmwOld proto.Value
	switch op.Kind {
	case proto.OpWrite:
		val = op.Value.Clone()
	case proto.OpCAS:
		if string(cur) != string(op.Expected) {
			if origin == r.id {
				r.completeOnce(proto.Completion{OpID: op.ID, Kind: proto.OpCAS, Key: op.Key, Status: proto.CASFailed, Value: cur})
			} else {
				r.env.Send(origin, RMWReply{Epoch: r.view.Epoch, OpID: op.ID, Observed: cur})
			}
			return
		}
		val = op.Value.Clone()
	case proto.OpFAA:
		rmwOld = cur
		val = proto.EncodeInt64(proto.DecodeInt64(cur) + proto.DecodeInt64(op.Value))
	default:
		// Reads are answered from specState without a proposal.
		panic("zab: non-update op kind in propose")
	}
	r.counter++
	entry := LogEntry{
		Z:   Zxid{Epoch: r.view.Epoch, Counter: r.counter},
		Key: op.Key, Value: val, Origin: origin, OpID: op.ID,
		Kind: op.Kind, RMWOld: rmwOld,
	}
	r.specState[op.Key] = val
	pp := &pendingProp{entry: entry, acks: map[proto.NodeID]bool{r.id: true}, sentAt: r.env.Now()}
	r.pending[entry.Z] = pp
	r.metrics.Proposals++
	for _, n := range r.view.Others(r.id) {
		r.env.Send(n, Propose{Epoch: r.view.Epoch, Entry: entry})
	}
	r.maybeCommit()
}

// maybeCommit advances the commit point over the contiguous
// majority-acknowledged prefix and broadcasts it.
func (r *Replica) maybeCommit() {
	advanced := false
	for {
		next := Zxid{Epoch: r.view.Epoch, Counter: r.commitPt.Counter + 1}
		if r.commitPt.Epoch != r.view.Epoch {
			next = Zxid{Epoch: r.view.Epoch, Counter: 1}
		}
		pp := r.pending[next]
		if pp == nil || len(pp.acks) < r.view.Quorum() {
			break
		}
		r.commitPt = next
		r.history[next] = pp.entry
		r.applyEntry(pp.entry)
		delete(r.pending, next)
		advanced = true
	}
	if advanced {
		r.metrics.Commits++
		for _, n := range r.view.Others(r.id) {
			r.env.Send(n, Commit{Epoch: r.view.Epoch, Z: r.commitPt})
		}
	}
}

// applyEntry applies a committed entry to the datastore in order and
// completes the op if this node is its origin.
func (r *Replica) applyEntry(e LogEntry) {
	r.data[e.Key] = e.Value
	r.lastApplied = e.Z
	if e.Origin == r.id {
		delete(r.pendW, e.OpID)
		c := proto.Completion{OpID: e.OpID, Kind: e.Kind, Key: e.Key, Status: proto.OK}
		if e.Kind == proto.OpFAA {
			c.Value = e.RMWOld
		}
		r.completeOnce(c)
	}
}

// followerApply drains the contiguous buffered prefix up to the leader's
// commit point.
func (r *Replica) followerApply(committed Zxid) {
	for {
		next := Zxid{Epoch: committed.Epoch, Counter: r.lastApplied.Counter + 1}
		if r.lastApplied.Epoch != committed.Epoch {
			next = Zxid{Epoch: committed.Epoch, Counter: 1}
		}
		if committed.Less(next) {
			return
		}
		e, ok := r.buffer[next]
		if !ok {
			return // gap: wait for retransmission
		}
		delete(r.buffer, next)
		r.applyEntry(e)
	}
}

// Deliver implements proto.Replica.
func (r *Replica) Deliver(from proto.NodeID, msg any) {
	switch t := msg.(type) {
	case Forward:
		if r.stale(t.Epoch) {
			return
		}
		if r.isLeader() {
			if _, dup := r.findPending(t.OpID); !dup && !r.doneOnce[t.OpID] {
				r.propose(t.Op, t.Origin)
			}
		}
	case Propose:
		if r.stale(t.Epoch) {
			return
		}
		if !r.lastApplied.Less(t.Entry.Z) {
			// Already applied (duplicate): re-ack.
			r.env.Send(from, AckProp{Epoch: r.view.Epoch, Z: t.Entry.Z})
			return
		}
		r.buffer[t.Entry.Z] = t.Entry
		r.env.Send(from, AckProp{Epoch: r.view.Epoch, Z: t.Entry.Z})
		// The commit point may already cover this entry (the Commit
		// overtook the Propose in the network): apply immediately.
		if r.seenCommit.Epoch == r.view.Epoch {
			r.followerApply(r.seenCommit)
		}
	case AckProp:
		if r.stale(t.Epoch) {
			return
		}
		if pp := r.pending[t.Z]; pp != nil {
			pp.acks[from] = true
			r.maybeCommit()
		}
	case Commit:
		if r.stale(t.Epoch) {
			return
		}
		if r.seenCommit.Less(t.Z) {
			r.seenCommit = t.Z
		}
		r.followerApply(t.Z)
	case FetchReq:
		if r.stale(t.Epoch) || !r.isLeader() {
			return
		}
		resp := FetchResp{Epoch: r.view.Epoch}
		for c := t.FromCounter; c <= r.commitPt.Counter && len(resp.Entries) < 256; c++ {
			if e, ok := r.history[Zxid{Epoch: r.view.Epoch, Counter: c}]; ok {
				resp.Entries = append(resp.Entries, e)
			}
		}
		if len(resp.Entries) > 0 {
			r.env.Send(from, resp)
		}
	case FetchResp:
		if r.stale(t.Epoch) {
			return
		}
		for _, e := range t.Entries {
			if r.lastApplied.Less(e.Z) {
				r.buffer[e.Z] = e
			}
			if r.seenCommit.Less(e.Z) {
				r.seenCommit = e.Z
			}
		}
		r.followerApply(r.seenCommit)
	case RMWReply:
		if r.stale(t.Epoch) {
			return
		}
		delete(r.pendW, t.OpID)
		r.completeOnce(proto.Completion{OpID: t.OpID, Kind: proto.OpCAS, Status: proto.CASFailed, Value: t.Observed})
	case SyncInfo:
		r.onSyncInfo(from, t)
	case SyncLog:
		r.onSyncLog(t)
	default:
		panic("zab: unknown message type")
	}
}

func (r *Replica) findPending(opID uint64) (Zxid, bool) {
	for z, pp := range r.pending {
		if pp.entry.OpID == opID {
			return z, true
		}
	}
	return Zxid{}, false
}

func (r *Replica) stale(e uint32) bool {
	if e != r.view.Epoch {
		r.metrics.StaleEpochDrops++
		return true
	}
	return false
}

func (r *Replica) completeOnce(c proto.Completion) {
	if r.doneOnce[c.OpID] {
		return
	}
	r.doneOnce[c.OpID] = true
	r.env.Complete(c)
}

// Tick retransmits unacknowledged proposals (leader) and unanswered
// forwards (origins).
func (r *Replica) Tick() {
	now := r.env.Now()
	if r.isLeader() && !r.syncing {
		resent := false
		for _, pp := range r.pending {
			if now-pp.sentAt >= r.cfg.MLT {
				pp.sentAt = now
				r.metrics.Retransmits++
				resent = true
				for _, n := range r.view.Others(r.id) {
					if !pp.acks[n] {
						r.env.Send(n, Propose{Epoch: r.view.Epoch, Entry: pp.entry})
					}
				}
			}
		}
		if resent {
			// Re-announce the commit point for followers that missed it.
			for _, n := range r.view.Others(r.id) {
				r.env.Send(n, Commit{Epoch: r.view.Epoch, Z: r.commitPt})
			}
		}
	}
	if r.awaitSync && now >= r.syncRetryAt {
		r.syncRetryAt = now + r.cfg.MLT
		r.metrics.Retransmits++
		r.env.Send(r.Leader(), r.mySyncInfo)
	}
	// Follower gap repair: the leader committed past our applied prefix and
	// the missing proposal is not in our buffer — fetch it.
	if !r.isLeader() && !r.awaitSync && r.seenCommit.Epoch == r.view.Epoch {
		behind := r.lastApplied.Epoch != r.seenCommit.Epoch || r.lastApplied.Counter < r.seenCommit.Counter
		if behind {
			next := Zxid{Epoch: r.seenCommit.Epoch, Counter: r.lastApplied.Counter + 1}
			if r.lastApplied.Epoch != r.seenCommit.Epoch {
				next.Counter = 1
			}
			if _, buffered := r.buffer[next]; !buffered {
				r.metrics.Retransmits++
				r.env.Send(r.Leader(), FetchReq{Epoch: r.view.Epoch, FromCounter: next.Counter})
			} else {
				r.followerApply(r.seenCommit)
			}
		}
	}
	for id, pw := range r.pendW {
		if now >= pw.deadline && !r.syncing {
			pw.deadline = now + r.cfg.MLT
			r.metrics.Retransmits++
			if r.isLeader() {
				if _, dup := r.findPending(id); !dup {
					r.propose(pw.op, r.id)
				}
			} else {
				r.env.Send(r.Leader(), Forward{Epoch: r.view.Epoch, Origin: r.id, OpID: id, Op: pw.op})
			}
		}
	}
}

// OnViewChange installs the m-update and runs leader recovery: every
// follower reports its log status to the new leader, which reconciles the
// highest-zxid uncommitted suffix, re-proposes it under the new epoch and
// resumes (simplified ZAB discovery+synchronization).
func (r *Replica) OnViewChange(v proto.View) {
	if v.Epoch <= r.view.Epoch {
		return
	}
	r.view = v.Clone()
	if !v.Contains(r.id) {
		r.oper = false
		return
	}
	r.metrics.Elections++
	// Reset per-epoch leader state.
	r.counter = 0
	r.commitPt = Zxid{Epoch: v.Epoch, Counter: 0}
	r.seenCommit = Zxid{Epoch: v.Epoch, Counter: 0}
	r.history = make(map[Zxid]LogEntry)
	oldPending := r.pending
	r.pending = make(map[Zxid]*pendingProp)
	r.syncInfos = make(map[proto.NodeID]SyncInfo)

	// Collect this node's uncommitted knowledge (buffered proposals plus,
	// if it was leader, its pending set).
	var unc []LogEntry
	for _, e := range r.buffer {
		unc = append(unc, e)
	}
	for _, pp := range oldPending {
		unc = append(unc, pp.entry)
	}
	r.buffer = make(map[Zxid]LogEntry)

	if r.isLeader() {
		r.syncing = true
		r.awaitSync = false
		r.onSyncInfo(r.id, SyncInfo{Epoch: v.Epoch, LastApplied: r.lastApplied, Uncommitted: unc})
		return
	}
	r.syncing = false
	r.mySyncInfo = SyncInfo{Epoch: v.Epoch, LastApplied: r.lastApplied, Uncommitted: unc}
	r.awaitSync = true
	r.syncRetryAt = r.env.Now() + r.cfg.MLT
	r.env.Send(r.Leader(), r.mySyncInfo)
}

func (r *Replica) onSyncInfo(from proto.NodeID, si SyncInfo) {
	if si.Epoch != r.view.Epoch || !r.isLeader() || !r.syncing {
		return
	}
	r.syncInfos[from] = si
	for _, n := range r.view.Members {
		if _, ok := r.syncInfos[n]; !ok {
			return
		}
	}
	// All live members reported: reconcile. Take the union of uncommitted
	// entries, newest zxid per opID wins, ordered by old zxid, and re-propose
	// under the new epoch. Entries already applied anywhere are re-applied
	// idempotently by zxid ordering at followers behind the commit point.
	seen := make(map[uint64]LogEntry)
	for _, si := range r.syncInfos {
		for _, e := range si.Uncommitted {
			if prev, ok := seen[e.OpID]; !ok || prev.Z.Less(e.Z) {
				seen[e.OpID] = e
			}
		}
	}
	// Skip entries whose op already applied (committed before the fault).
	entries := make([]LogEntry, 0, len(seen))
	for _, e := range seen {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Z.Less(entries[j].Z) })

	// Rebuild speculative state from applied data.
	r.specState = make(map[proto.Key]proto.Value)
	for k, v := range r.data {
		r.specState[k] = v
	}
	r.syncing = false
	for _, e := range entries {
		op := proto.ClientOp{ID: e.OpID, Kind: e.Kind, Key: e.Key, Value: e.Value}
		if e.Kind == proto.OpFAA {
			// Replay FAA against current state via its recorded delta? The
			// delta is not retained; re-propose the computed value as a
			// write to stay idempotent.
			op.Kind = proto.OpWrite
		}
		r.propose(op, e.Origin)
	}
	// Tell followers to resume; their sessions' retransmissions re-enter
	// anything the union missed.
	for _, n := range r.view.Others(r.id) {
		r.env.Send(n, SyncLog{Epoch: r.view.Epoch, Committed: r.commitPt})
	}
}

func (r *Replica) onSyncLog(sl SyncLog) {
	if sl.Epoch != r.view.Epoch {
		return
	}
	// Followers restart their apply cursor in the new epoch.
	r.awaitSync = false
	r.lastApplied = Zxid{Epoch: sl.Epoch, Counter: 0}
}
