package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/proto"
)

// keysOnDistinctShards returns one key per shard for a W-shard engine,
// indexed by shard.
func keysOnDistinctShards(w int) []proto.Key {
	keys := make([]proto.Key, w)
	filled := make([]bool, w)
	found := 0
	for k := proto.Key(1); found < w; k++ {
		s := proto.ShardOf(k, w)
		if !filled[s] {
			keys[s], filled[s] = k, true
			found++
		}
	}
	return keys
}

func TestShardedReadWriteAllShards(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	ctx := context.Background()

	for i, k := range keysOnDistinctShards(w) {
		val := proto.Value(fmt.Sprintf("shard-%d", i))
		if err := l.Nodes[0].Write(ctx, k, val); err != nil {
			t.Fatalf("write shard %d: %v", i, err)
		}
		for _, n := range l.Nodes {
			v, err := n.Read(ctx, k)
			if err != nil || string(v) != string(val) {
				t.Fatalf("node %d shard %d: %q %v", n.ID(), i, v, err)
			}
		}
	}
}

// TestShardedCrossShardIndependence stalls one shard's replication traffic
// entirely and shows that writes to every other shard still commit: the
// engines are independent event loops with no shared serialization point.
func TestShardedCrossShardIndependence(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3, MLT: 20 * time.Millisecond}, w)
	defer l.Close()
	keys := keysOnDistinctShards(w)
	stuck := proto.ShardOf(keys[0], w)

	l.Tr.SetDrop(func(from, to proto.NodeID, msg any) bool {
		sm, ok := msg.(proto.ShardMsg)
		return ok && sm.Shard == stuck
	})

	// The stalled shard's write hangs (its INVs never arrive) ...
	stalled := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		stalled <- l.Nodes[0].Write(ctx, keys[0], proto.Value("late"))
	}()

	// ... while every other shard commits promptly.
	for _, k := range keys[1:] {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := l.Nodes[0].Write(ctx, k, proto.Value("fast"))
		cancel()
		if err != nil {
			t.Fatalf("write to healthy shard %d blocked behind stalled shard: %v",
				proto.ShardOf(k, w), err)
		}
	}
	select {
	case err := <-stalled:
		t.Fatalf("stalled write completed while its shard was cut: %v", err)
	default:
	}

	// Healing the shard lets the retransmission machinery finish the write.
	l.Tr.SetDrop(nil)
	if err := <-stalled; err != nil {
		t.Fatalf("stalled write after heal: %v", err)
	}
	ctx := context.Background()
	if v, err := l.Nodes[2].Read(ctx, keys[0]); err != nil || string(v) != "late" {
		t.Fatalf("healed shard read: %q %v", v, err)
	}
}

// TestShardedConcurrentLinearizable hammers writes, FAAs and reads across
// shards from every node concurrently and checks each key's history for
// linearizability (compositional, so per-key checks suffice — paper §2.2).
func TestShardedConcurrentLinearizable(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	keys := keysOnDistinctShards(w)

	h := linear.NewHistory()
	var mu sync.Mutex
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	var idSeq uint64
	nextID := func() uint64 { mu.Lock(); idSeq++; id := idSeq; mu.Unlock(); return id }

	ctx := context.Background()
	var wg sync.WaitGroup
	for ni, n := range l.Nodes {
		for _, k := range keys {
			wg.Add(1)
			go func(ni int, n *ShardedNode, k proto.Key) {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					id := nextID()
					val := proto.Value(fmt.Sprintf("n%d-%d", ni, j))
					mu.Lock()
					h.Invoke(id, k, linear.KWrite, val, nil, now())
					mu.Unlock()
					if err := n.Write(ctx, k, val); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					mu.Lock()
					h.Return(id, linear.KWrite, nil, now())
					mu.Unlock()

					id = nextID()
					mu.Lock()
					h.Invoke(id, k, linear.KRead, nil, nil, now())
					mu.Unlock()
					v, err := n.Read(ctx, k)
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					mu.Lock()
					h.Return(id, linear.KRead, v, now())
					mu.Unlock()
				}
			}(ni, n, k)
		}
	}
	wg.Wait()
	h.Close()
	if k, res, ok := h.CheckAll(); !ok {
		t.Fatalf("key %d not linearizable: %s", k, res.Info)
	}
}

// TestShardedW1WireCompatibleWithNode runs a mixed cluster — one
// single-shard ShardedNode alongside two plain Nodes — and asserts no
// ShardMsg envelope ever appears on the wire: W=1 is byte-for-byte the
// unsharded engine and interoperates with it.
func TestShardedW1WireCompatibleWithNode(t *testing.T) {
	ids := []proto.NodeID{0, 1, 2}
	view := proto.View{Epoch: 1, Members: ids}
	tr := NewChanTransport(ids)
	defer tr.Close()

	var mu sync.Mutex
	sawEnvelope := false
	tr.SetDrop(func(from, to proto.NodeID, msg any) bool {
		if _, ok := msg.(proto.ShardMsg); ok {
			mu.Lock()
			sawEnvelope = true
			mu.Unlock()
		}
		return false
	})

	sn := NewShardedNode(ShardedConfig{ID: 0, View: view, Shards: 1}, tr)
	defer sn.Close()
	plain := []*Node{
		NewNode(NodeConfig{ID: 1, View: view}, tr),
		NewNode(NodeConfig{ID: 2, View: view}, tr),
	}
	for _, n := range plain {
		defer n.Close()
	}

	ctx := context.Background()
	if err := sn.Write(ctx, 11, proto.Value("from-sharded")); err != nil {
		t.Fatal(err)
	}
	for _, n := range plain {
		if v, err := n.Read(ctx, 11); err != nil || string(v) != "from-sharded" {
			t.Fatalf("plain node %d: %q %v", n.ID(), v, err)
		}
	}
	if err := plain[0].Write(ctx, 12, proto.Value("from-plain")); err != nil {
		t.Fatal(err)
	}
	if v, err := sn.Read(ctx, 12); err != nil || string(v) != "from-plain" {
		t.Fatalf("sharded read of plain write: %q %v", v, err)
	}
	if _, err := sn.FAA(ctx, 13, 4); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if sawEnvelope {
		t.Fatal("W=1 sharded node put a ShardMsg envelope on the wire")
	}
}

// TestShardedViewChangeFansOutToAllShards bumps the epoch on every node and
// verifies each shard keeps serving: a shard that missed the m-update would
// drop the new-epoch traffic and stall the write.
func TestShardedViewChangeFansOutToAllShards(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	v2 := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}}
	for _, n := range l.Nodes {
		n.InstallView(v2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, k := range keysOnDistinctShards(w) {
		if err := l.Nodes[i%3].Write(ctx, k, proto.Value("epoch2")); err != nil {
			t.Fatalf("shard %d after view change: %v", proto.ShardOf(k, w), err)
		}
		if vv, err := l.Nodes[(i+1)%3].Read(ctx, k); err != nil || string(vv) != "epoch2" {
			t.Fatalf("shard %d read after view change: %q %v", proto.ShardOf(k, w), vv, err)
		}
	}
}
