package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/proto"
)

func TestFastPathHitCounters(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	n := l.Nodes[0]
	if err := n.Write(ctx, 1, proto.Value("v")); err != nil {
		t.Fatal(err)
	}
	_, hits0, _ := n.ReadStats()
	const reads = 100
	for i := 0; i < reads; i++ {
		if v, err := n.Read(ctx, 1); err != nil || string(v) != "v" {
			t.Fatalf("read %d: %q %v", i, v, err)
		}
	}
	total, hits, misses := n.ReadStats()
	if hits-hits0 != reads {
		t.Fatalf("fast-path hits %d, want %d (misses=%d total=%d)", hits-hits0, reads, misses, total)
	}
}

func TestFastPathDisabledUnderNoLSC(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3, NoLSC: true})
	defer l.Close()
	ctx := context.Background()
	n := l.Nodes[0]
	if err := n.Write(ctx, 1, proto.Value("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if v, err := n.Read(ctx, 1); err != nil || string(v) != "v" {
			t.Fatalf("read: %q %v", v, err)
		}
	}
	// Every read must have taken the §8 speculative Submit path: hit rate
	// exactly zero.
	if _, hits, misses := n.ReadStats(); hits != 0 || misses < 10 {
		t.Fatalf("NoLSC: hits=%d misses=%d, want 0 hits", hits, misses)
	}
}

// TestReadGateClosesDuringViewChange pins the transition-window behaviour:
// from the moment InstallView is called until the event loop finishes
// OnViewChange, the gate is shut and reads fall back to the Submit path.
func TestReadGateClosesDuringViewChange(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	n := l.Nodes[0]
	if err := n.Write(ctx, 1, proto.Value("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := n.Read(ctx, 1); err != nil || string(v) != "v" {
		t.Fatalf("warm read: %q %v", v, err)
	}

	// Stall the event loop so the m-update cannot complete, freezing the
	// transition window open for inspection.
	block := make(chan struct{})
	entered := make(chan struct{})
	n.enqueueFn(func() { close(entered); <-block })
	<-entered

	installed := make(chan struct{})
	go func() {
		n.InstallView(proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}})
		close(installed)
	}()
	// InstallView shuts the gate synchronously before enqueueing the
	// m-update; wait for that to be observable.
	deadline := time.Now().Add(5 * time.Second)
	for n.h.ReadGate().Allowed() {
		if time.Now().After(deadline) {
			t.Fatal("gate still open during view installation")
		}
		time.Sleep(time.Millisecond)
	}

	// A read inside the window must fall back — and with the loop stalled
	// the Submit path cannot answer, so it times out instead of serving a
	// possibly-stale fast-path value.
	_, hits0, misses0 := n.ReadStats()
	rctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := n.Read(rctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("read during window: err=%v, want deadline exceeded", err)
	}
	_, hits1, misses1 := n.ReadStats()
	if hits1 != hits0 || misses1 != misses0+1 {
		t.Fatalf("window read: hits %d->%d misses %d->%d, want one miss, no hits",
			hits0, hits1, misses0, misses1)
	}

	close(block)
	<-installed
	if !n.h.ReadGate().Allowed() || n.h.ReadGate().Epoch() != 2 {
		t.Fatalf("gate after install: allowed=%v epoch=%d", n.h.ReadGate().Allowed(), n.h.ReadGate().Epoch())
	}
	if v, err := n.Read(ctx, 1); err != nil || string(v) != "v" {
		t.Fatalf("read after install: %q %v", v, err)
	}
}

// TestFastPathLinearizableUnderViewChanges hammers one key with fast-path
// reads racing writes, CAS, FAA and m-update epoch bumps, then checks the
// recorded history against the Wing–Gong oracle. Run with -race.
func TestFastPathLinearizableUnderViewChanges(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3, MLT: 5 * time.Millisecond})
	defer l.Close()
	ctx := context.Background()
	const key = proto.Key(42)

	hist := linear.NewHistory()
	var hmu sync.Mutex
	var nextID atomic.Uint64
	start := time.Now()
	invoke := func(kind linear.Kind, arg, exp proto.Value) uint64 {
		id := nextID.Add(1)
		hmu.Lock()
		hist.Invoke(id, key, kind, arg, exp, time.Since(start))
		hmu.Unlock()
		return id
	}
	ret := func(id uint64, kind linear.Kind, out proto.Value) {
		hmu.Lock()
		hist.Return(id, kind, out, time.Since(start))
		hmu.Unlock()
	}
	discard := func(id uint64) {
		hmu.Lock()
		hist.Discard(id)
		hmu.Unlock()
	}

	var wg sync.WaitGroup
	// Two fast-path readers on different replicas.
	for _, n := range []*Node{l.Nodes[0], l.Nodes[1]} {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for i := 0; i < 75; i++ {
				id := invoke(linear.KRead, nil, nil)
				v, err := n.Read(ctx, key)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				ret(id, linear.KRead, v)
			}
		}(n)
	}
	// A writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			val := proto.EncodeInt64(int64(j))
			id := invoke(linear.KWrite, val, nil)
			if err := l.Nodes[2].Write(ctx, key, val); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			ret(id, linear.KWrite, nil)
		}
	}()
	// FAA and CAS contenders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 30; j++ {
			id := invoke(linear.KFAA, proto.EncodeInt64(1), nil)
			prior, err := l.Nodes[0].FAA(ctx, key, 1)
			if err == ErrAborted {
				discard(id)
				continue
			}
			if err != nil {
				t.Errorf("faa: %v", err)
				return
			}
			ret(id, linear.KFAA, proto.EncodeInt64(prior))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			exp, val := proto.EncodeInt64(int64(j)), proto.EncodeInt64(int64(1000+j))
			id := invoke(linear.KCASOk, val, exp)
			ok, observed, err := l.Nodes[1].CAS(ctx, key, exp, val)
			switch {
			case err == ErrAborted:
				discard(id)
			case err != nil:
				t.Errorf("cas: %v", err)
				return
			case ok:
				ret(id, linear.KCASOk, nil)
			default:
				ret(id, linear.KCASFail, observed)
			}
		}
	}()
	// m-update storm: epoch bumps with unchanged membership on every node,
	// shutting and reopening every read gate mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint32(2); e <= 6; e++ {
			time.Sleep(5 * time.Millisecond)
			v := proto.View{Epoch: e, Members: []proto.NodeID{0, 1, 2}}
			for _, n := range l.Nodes {
				n.InstallView(v)
			}
		}
	}()
	wg.Wait()

	hist.Close()
	if k, res, ok := hist.CheckAll(); !ok {
		t.Fatalf("history of key %d not linearizable: %s", k, res.Info)
	}
	_, hits, misses := l.Nodes[0].ReadStats()
	_, hits1, misses1 := l.Nodes[1].ReadStats()
	if hits+hits1 == 0 {
		t.Fatalf("no fast-path hits recorded (misses %d/%d): fast path never engaged", misses, misses1)
	}
}

// BenchmarkLiveFastRead measures the lock-free read fast path end to end on
// the live runtime; run with -benchmem to see it allocation-free.
func BenchmarkLiveFastRead(b *testing.B) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	if err := l.Nodes[0].Write(ctx, 1, proto.Value("v")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Nodes[0].Read(ctx, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLiveWrite covers the Submit slow path (completion-channel pool):
// -benchmem shows the per-op allocation drop from pooling.
func BenchmarkLiveWrite(b *testing.B) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	val := proto.Value("v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Nodes[0].Write(ctx, proto.Key(i%64), val); err != nil {
			b.Fatal(err)
		}
	}
}
