package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// gateTransport records sends and can block them, exposing the coalescer's
// opportunistic gathering deterministically: while one flush is stuck in
// Send, everything else enqueued for that peer must pile into one batch.
type gateTransport struct {
	mu    sync.Mutex
	sent  []any
	gate  chan struct{} // nil = sends pass; else Send blocks on it
	sendC chan struct{} // signaled at entry to Send
}

func (g *gateTransport) Send(from, to proto.NodeID, msg any) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	select {
	case g.sendC <- struct{}{}:
	default:
	}
	if gate != nil {
		<-gate
	}
	g.mu.Lock()
	g.sent = append(g.sent, msg)
	g.mu.Unlock()
}

func (g *gateTransport) SetDeliver(id proto.NodeID, fn func(proto.NodeID, any)) {}
func (g *gateTransport) Close() error                                           { return nil }

func (g *gateTransport) msgs() []any {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]any(nil), g.sent...)
}

// TestCoalescerGathersWhileSendInFlight drives the per-peer coalescer
// directly: with the transport gated shut after admitting one flush, three
// more ACKs enqueue behind it and must ship as a single ShardBatch frame
// once the gate opens.
func TestCoalescerGathersWhileSendInFlight(t *testing.T) {
	gate := make(chan struct{})
	tr := &gateTransport{gate: gate, sendC: make(chan struct{}, 1)}
	sn := NewShardedNode(ShardedConfig{
		ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1}},
		Shards: 4,
	}, tr)
	defer sn.Close()

	ack := func(shard uint16, key proto.Key) proto.ShardMsg {
		return proto.ShardMsg{Shard: shard, Msg: core.ACK{Epoch: 1, Key: key, TS: proto.TS{Version: 1}}}
	}

	co := sn.coalescerFor(coalKey{to: 1, class: classResponse}) // ACKs are responses
	co.enqueue(ack(0, 10))
	// Wait until the flusher is inside Send (blocked on the gate) so the
	// next three enqueues cannot race ahead of it.
	select {
	case <-tr.sendC:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never reached the transport")
	}
	co.enqueue(ack(1, 11))
	co.enqueue(ack(2, 12))
	co.enqueue(ack(3, 13))
	close(gate)

	deadline := time.After(5 * time.Second)
	for {
		if len(tr.msgs()) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("coalescer shipped %d frames, want 2", len(tr.msgs()))
		case <-time.After(time.Millisecond):
		}
	}
	sent := tr.msgs()
	if len(sent) != 2 {
		t.Fatalf("got %d frames, want 2 (one single + one batch): %#v", len(sent), sent)
	}
	if !reflect.DeepEqual(sent[0], ack(0, 10)) {
		t.Fatalf("first flush should be the lone ShardMsg, got %#v", sent[0])
	}
	batch, ok := sent[1].(proto.ShardBatch)
	if !ok {
		t.Fatalf("second flush is %T, want ShardBatch", sent[1])
	}
	want := proto.ShardBatch{Msgs: []proto.ShardMsg{ack(1, 11), ack(2, 12), ack(3, 13)}}
	if !reflect.DeepEqual(batch, want) {
		t.Fatalf("batch contents:\n got %#v\nwant %#v", batch, want)
	}
	if batches, coalesced, singles, dropped := sn.CoalesceStats(); batches != 1 || coalesced != 3 || singles != 1 || dropped != 0 {
		t.Fatalf("CoalesceStats = (%d,%d,%d,%d), want (1,3,1,0)", batches, coalesced, singles, dropped)
	}
}

// TestCoalescerSeparatesCreditClasses drives ACKs and VALs for one peer
// through the shard transports and checks no flushed batch ever mixes the
// classes: an all-ACK batch consumes no send credit, so ACK egress (which
// repays the peer) must never queue behind a credit-starved VAL batch.
func TestCoalescerSeparatesCreditClasses(t *testing.T) {
	gate := make(chan struct{})
	tr := &gateTransport{gate: gate, sendC: make(chan struct{}, 2)}
	sn := NewShardedNode(ShardedConfig{
		ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1}},
		Shards: 4,
	}, tr)
	defer sn.Close()

	st := &shardTransport{sn: sn, idx: 0}
	for i := 0; i < 4; i++ {
		st.idx = uint16(i)
		st.Send(0, 1, core.ACK{Epoch: 1, Key: proto.Key(10 + i), TS: proto.TS{Version: 1}})
		st.Send(0, 1, core.VAL{Epoch: 1, Key: proto.Key(20 + i), TS: proto.TS{Version: 1}})
	}
	close(gate)

	deadline := time.After(5 * time.Second)
	acks, vals := 0, 0
	for acks < 4 || vals < 4 {
		if len(tr.msgs()) == 0 {
			select {
			case <-deadline:
				t.Fatalf("flushed %d ACKs / %d VALs of 4+4", acks, vals)
			case <-time.After(time.Millisecond):
			}
		}
		acks, vals = 0, 0
		for _, m := range tr.msgs() {
			var entries []proto.ShardMsg
			switch f := m.(type) {
			case proto.ShardBatch:
				entries = f.Msgs
			case proto.ShardMsg:
				entries = []proto.ShardMsg{f}
			default:
				t.Fatalf("unexpected frame %T", m)
			}
			frameACKs, frameVALs := 0, 0
			for _, sm := range entries {
				switch sm.Msg.(type) {
				case core.ACK:
					frameACKs++
				case core.VAL:
					frameVALs++
				default:
					t.Fatalf("unexpected entry %T", sm.Msg)
				}
			}
			if frameACKs > 0 && frameVALs > 0 {
				t.Fatalf("frame mixes credit classes: %d ACKs and %d VALs", frameACKs, frameVALs)
			}
			acks += frameACKs
			vals += frameVALs
		}
	}
}

// TestCoalescerBudgetsRequestBatches drives the request-class (INV)
// coalescer with value-bearing messages and checks the byte budget: a
// backlog flushes as several frames none of which exceeds maxBatchBytes,
// while an INV too big for the budget on its own still ships (alone) rather
// than wedging the flusher.
func TestCoalescerBudgetsRequestBatches(t *testing.T) {
	inv := func(key proto.Key, valLen int) proto.ShardMsg {
		return proto.ShardMsg{Shard: 0, Msg: core.INV{
			Epoch: 1, Key: key, TS: proto.TS{Version: 1},
			Value: make(proto.Value, valLen),
		}}
	}
	if classOf(inv(0, 8).Msg) != classRequest {
		t.Fatal("INVs must coalesce in the request class")
	}

	gate := make(chan struct{})
	tr := &gateTransport{gate: gate, sendC: make(chan struct{}, 1)}
	sn := NewShardedNode(ShardedConfig{
		ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1}},
		Shards: 4,
	}, tr)
	defer sn.Close()

	co := sn.coalescerFor(coalKey{to: 1, class: classRequest})
	co.enqueue(inv(1, 16)) // admits the flusher into the gated Send
	select {
	case <-tr.sendC:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never reached the transport")
	}
	// 5 × (32 + 20KiB) piles up behind the gate: over the 64 KiB budget, so
	// the backlog must split — 3 fit, the next would overflow.
	const val = 20 << 10
	for i := proto.Key(2); i <= 6; i++ {
		co.enqueue(inv(i, val))
	}
	// Two INVs each individually over the budget: the i>0 guard must let
	// every one ship alone instead of cutting to an empty batch.
	const jumbo = 80 << 10
	co.enqueue(inv(7, jumbo))
	co.enqueue(inv(8, jumbo))
	close(gate)

	deadline := time.After(5 * time.Second)
	for len(tr.msgs()) < 5 {
		select {
		case <-deadline:
			t.Fatalf("coalescer shipped %d frames, want 5: %#v", len(tr.msgs()), tr.msgs())
		case <-time.After(time.Millisecond):
		}
	}
	sent := tr.msgs()
	if len(sent) != 5 {
		t.Fatalf("got %d frames, want 5", len(sent))
	}
	sizeOf := func(m any) (n, msgs int) {
		switch f := m.(type) {
		case proto.ShardBatch:
			for _, sm := range f.Msgs {
				n += shardMsgSize(sm)
			}
			return n, len(f.Msgs)
		case proto.ShardMsg:
			return shardMsgSize(f), 1
		}
		t.Fatalf("unexpected frame %T", m)
		return 0, 0
	}
	// Frame 0: the lone opener. Frames 1–2: the 20 KiB backlog split 3+2.
	// Frames 3–4: each jumbo alone.
	wantMsgs := []int{1, 3, 2, 1, 1}
	for i, m := range sent {
		n, msgs := sizeOf(m)
		if msgs != wantMsgs[i] {
			t.Fatalf("frame %d carries %d messages, want %d", i, msgs, wantMsgs[i])
		}
		if msgs > 1 && n > maxBatchBytes {
			t.Fatalf("frame %d: %d bytes exceeds the %d budget", i, n, maxBatchBytes)
		}
	}
	for _, i := range []int{3, 4} {
		sm, ok := sent[i].(proto.ShardMsg)
		if !ok {
			t.Fatalf("jumbo frame %d is %T, want a lone ShardMsg", i, sent[i])
		}
		if n := shardMsgSize(sm); n <= maxBatchBytes {
			t.Fatalf("jumbo frame %d is %d bytes; test lost its premise", i, n)
		}
	}
}

// TestDispatchFansOutShardBatch hand-delivers a coalesced frame and checks
// each inner message reaches exactly its owner shard — and that entries
// whose tag disagrees with local ownership (a W-mismatched peer) drop.
func TestDispatchFansOutShardBatch(t *testing.T) {
	const w = 4
	tr := &gateTransport{sendC: make(chan struct{}, 1)}
	sn := NewShardedNode(ShardedConfig{
		ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1}},
		Shards: w,
	}, tr)
	defer sn.Close()

	// Replace the captured shard delivers with recorders.
	type rec struct {
		shard int
		msg   any
	}
	got := make(chan rec, 16)
	for i := 0; i < w; i++ {
		i := i
		sn.deliver[i] = func(from proto.NodeID, msg any) { got <- rec{shard: i, msg: msg} }
	}

	keyOn := func(shard uint16) proto.Key {
		for k := proto.Key(1); ; k++ {
			if proto.ShardOf(k, w) == shard {
				return k
			}
		}
	}
	k1, k2 := keyOn(1), keyOn(3)
	badKey := keyOn(2) // tagged 0 below: owner mismatch, must drop
	sn.dispatch(1, proto.ShardBatch{Msgs: []proto.ShardMsg{
		{Shard: 1, Msg: core.ACK{Epoch: 1, Key: k1, TS: proto.TS{Version: 1}}},
		{Shard: 3, Msg: core.VAL{Epoch: 1, Key: k2, TS: proto.TS{Version: 1}}},
		{Shard: 0, Msg: core.ACK{Epoch: 1, Key: badKey, TS: proto.TS{Version: 1}}},
	}})

	want := map[int]proto.Key{1: k1, 3: k2}
	for i := 0; i < 2; i++ {
		select {
		case r := <-got:
			wantKey, ok := want[r.shard]
			if !ok {
				t.Fatalf("unexpected delivery to shard %d: %#v", r.shard, r.msg)
			}
			delete(want, r.shard)
			switch m := r.msg.(type) {
			case core.ACK:
				if m.Key != wantKey {
					t.Fatalf("shard %d got key %d, want %d", r.shard, m.Key, wantKey)
				}
			case core.VAL:
				if m.Key != wantKey {
					t.Fatalf("shard %d got key %d, want %d", r.shard, m.Key, wantKey)
				}
			default:
				t.Fatalf("shard %d got %T", r.shard, r.msg)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("batch fan-out incomplete; still waiting on shards %v", want)
		}
	}
	select {
	case r := <-got:
		t.Fatalf("mis-owned entry delivered to shard %d: %#v", r.shard, r.msg)
	case <-time.After(50 * time.Millisecond):
	}
}

// slowTransport delays every Send slightly, standing in for a real wire:
// while one flush is in transit, concurrent shard engines pile more
// messages into the coalescers — which the instantaneous ChanTransport
// would rarely let happen.
type slowTransport struct {
	*ChanTransport
	delay time.Duration
}

func (s *slowTransport) Send(from, to proto.NodeID, msg any) {
	time.Sleep(s.delay)
	s.ChanTransport.Send(from, to, msg)
}

// TestShardedLocalCoalescesAndStaysCorrect runs a W=4 replica group with
// concurrent writers over a wire-speed transport and checks (a) all
// replicas converge — coalesced frames fan out correctly end to end — and
// (b) the egress coalescers actually formed batches under the concurrency.
func TestShardedLocalCoalescesAndStaysCorrect(t *testing.T) {
	const w = 4
	ids := []proto.NodeID{0, 1, 2}
	view := proto.View{Epoch: 1, Members: ids}
	tr := &slowTransport{ChanTransport: NewChanTransport(ids), delay: 100 * time.Microsecond}
	l := &ShardedLocal{Tr: tr.ChanTransport}
	for _, id := range ids {
		l.Nodes = append(l.Nodes, NewShardedNode(ShardedConfig{
			ID: id, View: view, MLT: 20 * time.Millisecond, Shards: w,
		}, tr))
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Several writer sessions per node: a batch needs 2+ ACKs (or VALs) for
	// the SAME peer in flight at once, which only happens when one
	// coordinator has concurrent writes on different shards.
	var wg sync.WaitGroup
	for ni, n := range l.Nodes {
		for s := 0; s < 8; s++ {
			wg.Add(1)
			go func(ni, s int, n *ShardedNode) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					k := proto.Key((s*10+j)%32 + 1)
					if err := n.Write(ctx, k, proto.Value(fmt.Sprintf("n%d-%d-%d", ni, s, j))); err != nil {
						t.Errorf("node %d write %d/%d: %v", ni, s, j, err)
						return
					}
				}
			}(ni, s, n)
		}
	}
	wg.Wait()

	for k := proto.Key(1); k <= 32; k++ {
		ref, err := l.Nodes[0].Read(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range l.Nodes[1:] {
			v, err := n.Read(ctx, k)
			if err != nil || string(v) != string(ref) {
				t.Fatalf("divergence on key %d: node %d has %q, node 0 has %q (%v)",
					k, n.ID(), v, ref, err)
			}
		}
	}

	var batches, coalesced uint64
	for _, n := range l.Nodes {
		b, c, _, _ := n.CoalesceStats()
		batches += b
		coalesced += c
	}
	if batches == 0 {
		t.Fatal("240 concurrent cross-shard writes formed no coalesced batches")
	}
	if coalesced < 2*batches {
		t.Fatalf("batches=%d carried only %d messages; batching is degenerate", batches, coalesced)
	}
}
