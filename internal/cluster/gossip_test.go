package cluster

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// Epoch-gossip self-healing on the live runtime: announcements over the real
// transport, the laggard detecting itself behind, and the debounced
// newest-peer-preferred fast-forward — the loop the chaos harness exercises
// under faults, here pinned deterministically against the goroutine/channel
// stack.

// TestGossipSelfHealsLaggard closes the loop end to end with no operator and
// no test backdoor: node 0's controller announces its per-shard epoch vector
// on a timer; node 1's controller — which missed every decided view — must
// observe itself behind from the announcements alone, issue its own view-log
// fetch, and converge.
func TestGossipSelfHealsLaggard(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	a, b := l.Nodes[0], l.Nodes[1]
	rcA := NewRolloutController(a, RolloutConfig{
		GossipEvery: 5 * time.Millisecond,
		GossipPeers: []proto.NodeID{0, 1, 2},
	})
	defer rcA.Close()
	rcB := NewRolloutController(b, RolloutConfig{})
	defer rcB.Close()

	// Epochs 2..5 reach only node 0; node 1's agent missed them all.
	for e := uint32(2); e <= 5; e++ {
		rcA.OnView(view3(e))
	}
	waitEpochs(t, func() bool {
		for _, e := range a.ShardEpochs() {
			if e != 5 {
				return false
			}
		}
		return true
	})

	// Node 1 heals itself: no FastForward call anywhere in this test.
	waitEpochs(t, func() bool {
		for _, e := range b.ShardEpochs() {
			if e != 5 {
				return false
			}
		}
		return true
	})
	if st := rcA.Stats(); st.GossipSent == 0 {
		t.Fatalf("announcer sent no gossip: %+v", st)
	}
	st := rcB.Stats()
	if st.GossipRecv == 0 || st.GossipBehind == 0 {
		t.Fatalf("laggard observed nothing: %+v", st)
	}
	if st.GossipFastForwards == 0 {
		t.Fatalf("laggard never fast-forwarded itself: %+v", st)
	}
	if st.FFApplied < 4 {
		t.Fatalf("ffApplied = %d, want >= 4 (epochs 2..5)", st.FFApplied)
	}
}

// TestGossipDebounceNewestPeerPreferred pins the observer's rate-limit
// rules: within one debounce window at most one fetch fires, later
// observations only raise the stored candidate, and when the window expires
// the fetch goes to the highest-epoch candidate seen — not to whichever peer
// happened to trigger it. It also pins advisory safety: a vector advertising
// epochs the peer cannot serve wastes exactly one request and corrupts
// nothing.
func TestGossipDebounceNewestPeerPreferred(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	rc0 := NewRolloutController(l.Nodes[0], RolloutConfig{FFDebounce: 300 * time.Millisecond})
	defer rc0.Close()
	rc1 := NewRolloutController(l.Nodes[1], RolloutConfig{}) // stale: retains no views
	defer rc1.Close()
	rc2 := NewRolloutController(l.Nodes[2], RolloutConfig{})
	defer rc2.Close()
	for e := uint32(2); e <= 7; e++ {
		rc2.OnView(view3(e))
	}
	waitEpochs(t, func() bool {
		for _, e := range l.Nodes[2].ShardEpochs() {
			if e != 7 {
				return false
			}
		}
		return true
	})

	// Peer 1 advertises epoch 2 it cannot actually serve (its view log is
	// empty). The first observation in an idle window fires immediately —
	// at peer 1 — and the empty answer must leave node 0 untouched.
	two := []uint32{2, 2, 2, 2}
	rc0.ObserveGossip(1, two)
	waitEpochs(t, func() bool { return rc0.Stats().FFRequests == 1 })
	if st := rc0.Stats(); st.GossipFastForwards != 1 || st.FFApplied != 0 {
		t.Fatalf("lying vector: stats %+v, want 1 wasted request, 0 applied", st)
	}
	for _, e := range l.Nodes[0].ShardEpochs() {
		if e != 1 {
			t.Fatalf("lying vector moved node 0 to %v", l.Nodes[0].ShardEpochs())
		}
	}

	// Inside the debounce window: peer 2's (truthful, higher) vector only
	// becomes the stored candidate — no second fetch yet.
	rc0.ObserveGossip(2, []uint32{7, 7, 7, 7})
	time.Sleep(20 * time.Millisecond)
	if got := rc0.Stats().GossipFastForwards; got != 1 {
		t.Fatalf("debounce window leaked: %d fetches, want 1", got)
	}

	// Past the window, peer 1's low vector triggers again — but the fetch
	// must go to the stored newest candidate (peer 2), or node 0 would chase
	// the liar forever. Convergence to epoch 7 is the proof of the target.
	time.Sleep(350 * time.Millisecond)
	rc0.ObserveGossip(1, two)
	waitEpochs(t, func() bool {
		for _, e := range l.Nodes[0].ShardEpochs() {
			if e != 7 {
				return false
			}
		}
		return true
	})
	if st := rc0.Stats(); st.GossipFastForwards != 2 || st.FFApplied != 6 {
		t.Fatalf("stats %+v, want 2 fetches / 6 applied (epochs 2..7)", st)
	}
}
