package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

// The rollout controller: agent-decided views staggered across shards by
// live load, at most one read gate shut at a time, idempotent redelivery,
// node-wide fencing on removal, and view-log fast-forward for laggards.

func view3(e uint32) proto.View {
	return proto.View{Epoch: e, Members: []proto.NodeID{0, 1, 2}}
}

// TestRolloutOrdersByLoadOneGateAtATime pins the two tentpole properties of
// a roll: shards install coolest-first (per the live read/write counters),
// and whenever the next shard's install begins, every other shard's gate is
// open again — at most one gate is ever shut.
func TestRolloutOrdersByLoadOneGateAtATime(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	ctx := context.Background()
	sn := l.Nodes[0]
	keys := keysOnDistinctShards(w)
	for _, k := range keys {
		if err := sn.Write(ctx, k, proto.Value("v")); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var order []int
	rc := NewRolloutController(sn, RolloutConfig{})
	defer rc.Close()
	rc.onInstall = func(s int, v proto.View) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
		// The hook fires before shard s's gate shuts; every gate must be
		// open here — the previous install's transition completed before
		// this one begins.
		for j := 0; j < w; j++ {
			if !sn.Shard(j).h.ReadGate().Allowed() {
				t.Errorf("shard %d's gate shut while shard %d's install begins", j, s)
			}
		}
	}

	// Skew the load after the controller snapshotted its baseline:
	// shard order by reads becomes 3 < 1 < 2 < 0.
	reads := map[int]int{0: 40, 1: 10, 2: 30, 3: 0}
	for s, n := range reads {
		for i := 0; i < n; i++ {
			if _, err := sn.Read(ctx, keys[s]); err != nil {
				t.Fatal(err)
			}
		}
	}

	rc.OnView(view3(2))
	waitEpochs(t, func() bool {
		for _, e := range sn.ShardEpochs() {
			if e != 2 {
				return false
			}
		}
		return true
	})
	mu.Lock()
	defer mu.Unlock()
	want := []int{3, 1, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("installed %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("install order %v, want coolest-first %v", order, want)
		}
	}
	if st := rc.Stats(); st.Views != 1 || st.ShardInstalls != uint64(w) {
		t.Fatalf("stats %+v, want 1 view / %d shard installs", st, w)
	}
}

// TestRolloutRedeliveryDoesNotReShutGates is the controller-level regression
// mirroring PR 4's duplicate-install read-gate bug: a redelivered view (a
// lossy wire re-sends MUpdates, an agent re-fires a commit) must be dropped
// idempotently — counted, but with no gate shut, no install performed, and
// the fast path still serving.
func TestRolloutRedeliveryDoesNotReShutGates(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	ctx := context.Background()
	sn := l.Nodes[0]
	keys := keysOnDistinctShards(w)
	for _, k := range keys {
		if err := sn.Write(ctx, k, proto.Value("v")); err != nil {
			t.Fatal(err)
		}
	}
	rc := NewRolloutController(sn, RolloutConfig{})
	defer rc.Close()

	// First delivery arrives over the wire as a node-wide MUpdate — the
	// dispatch path must route it through the controller, not shut all four
	// gates at once.
	l.Tr.Send(1, 0, proto.MUpdate{Shard: proto.AllShards, View: view3(2)})
	waitEpochs(t, func() bool {
		for _, e := range sn.ShardEpochs() {
			if e != 2 {
				return false
			}
		}
		return true
	})
	installs := rc.Stats().ShardInstalls

	// Redeliver the same view: directly and over the wire.
	rc.OnView(view3(2))
	l.Tr.Send(1, 0, proto.MUpdate{Shard: proto.AllShards, View: view3(2)})
	deadline := time.Now().Add(200 * time.Millisecond)
	for rc.Stats().Redelivered < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := rc.Stats().Redelivered; got != 2 {
		t.Fatalf("redelivered = %d, want 2", got)
	}
	if got := rc.Stats().ShardInstalls; got != installs {
		t.Fatalf("redelivery performed %d extra installs", got-installs)
	}
	for j := 0; j < w; j++ {
		if !sn.Shard(j).h.ReadGate().Allowed() {
			t.Fatalf("shard %d's gate shut by a redelivered view", j)
		}
	}
	// And the fast path still serves: every read below must hit.
	_, h0, _ := sn.Shard(0).ReadStats()
	if v, err := sn.Read(ctx, keys[0]); err != nil || string(v) != "v" {
		t.Fatalf("read after redelivery: %q %v", v, err)
	}
	if _, h, _ := sn.Shard(0).ReadStats(); h != h0+1 {
		t.Fatal("read after redelivery missed the fast path")
	}
}

// TestRolloutNodeWideFallbackOnRemoval: a view that fences the local node
// installs on every shard at once — staggering a removal would keep serving
// shards the new membership no longer sanctions.
func TestRolloutNodeWideFallbackOnRemoval(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	sn := l.Nodes[0]
	rc := NewRolloutController(sn, RolloutConfig{})
	defer rc.Close()

	rc.OnView(proto.View{Epoch: 2, Members: []proto.NodeID{1, 2}})
	waitEpochs(t, func() bool {
		for _, e := range sn.ShardEpochs() {
			if e != 2 {
				return false
			}
		}
		return true
	})
	if st := rc.Stats(); st.NodeWideFallbacks != 1 || st.ShardInstalls != 0 {
		t.Fatalf("stats %+v, want exactly one node-wide fallback and no staggered installs", st)
	}
	for j := 0; j < w; j++ {
		if sn.Shard(j).h.ReadGate().Allowed() {
			t.Fatalf("shard %d still serving after the view removed this node", j)
		}
	}
	// Re-adding the node resumes the staggered path and reopens the gates.
	rc.OnView(view3(3))
	waitEpochs(t, func() bool {
		for j := 0; j < w; j++ {
			if !sn.Shard(j).h.ReadGate().Allowed() || sn.ShardEpochs()[j] != 3 {
				return false
			}
		}
		return true
	})
	if st := rc.Stats(); st.ShardInstalls != w {
		t.Fatalf("re-add rolled %d shard installs, want %d", st.ShardInstalls, w)
	}
}

// TestRolloutFastForwardViaViewLog: a node whose controller missed several
// decided views (its agent was down) pulls the gap from a peer's view log
// over the transport and fast-forwards every shard — without a restart and
// without any out-of-band install.
func TestRolloutFastForwardViaViewLog(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	a, b := l.Nodes[0], l.Nodes[1]
	rcA := NewRolloutController(a, RolloutConfig{})
	defer rcA.Close()
	rcB := NewRolloutController(b, RolloutConfig{})
	defer rcB.Close()

	// Epochs 2..5 reach only node 0's controller (node 1's agent missed the
	// decisions entirely).
	for e := uint32(2); e <= 5; e++ {
		rcA.OnView(view3(e))
	}
	waitEpochs(t, func() bool {
		for _, e := range a.ShardEpochs() {
			if e != 5 {
				return false
			}
		}
		return true
	})
	for _, e := range b.ShardEpochs() {
		if e != 1 {
			t.Fatalf("node 1 advanced to %v without any delivery", b.ShardEpochs())
		}
	}

	// Node 1 detects the lag (live: epoch gossip; here: the test) and
	// fetches the gap from node 0.
	rcB.FastForward(0)
	waitEpochs(t, func() bool {
		for _, e := range b.ShardEpochs() {
			if e != 5 {
				return false
			}
		}
		return true
	})
	st := rcB.Stats()
	if st.FFRequests != 1 {
		t.Fatalf("ffRequests = %d, want 1", st.FFRequests)
	}
	if st.FFApplied != 4 {
		t.Fatalf("ffApplied = %d, want 4 (epochs 2..5)", st.FFApplied)
	}
	// A later fetch for a caught-up node applies nothing.
	rcB.FastForward(0)
	time.Sleep(20 * time.Millisecond)
	if got := rcB.Stats().FFApplied; got != 4 {
		t.Fatalf("caught-up fetch applied %d more entries", got-4)
	}

	// A node without a controller replays a ViewLogResp through the direct
	// install path (the default dispatch fallback).
	c := l.Nodes[2]
	l.Tr.Send(0, 2, proto.ViewLogResp{Updates: []proto.MUpdate{
		{Shard: proto.AllShards, View: view3(4)},
		{Shard: proto.AllShards, View: view3(5)},
	}})
	waitEpochs(t, func() bool {
		for _, e := range c.ShardEpochs() {
			if e != 5 {
				return false
			}
		}
		return true
	})
}

// TestRolloutAttachSeedsEpochFloor: a controller attached to a node that
// already advanced past epoch 1 must treat late-redelivered older views as
// redeliveries. The dangerous variant is a stale pre-rejoin removal view:
// accepted as fresh, it would fence the node through the node-wide
// fallback and shut every gate.
func TestRolloutAttachSeedsEpochFloor(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	sn := l.Nodes[0]
	sn.InstallView(view3(3)) // node is at epoch 3 before any controller exists
	rc := NewRolloutController(sn, RolloutConfig{})
	defer rc.Close()

	// A lossy wire redelivers the old epoch-2 view that removed this node.
	rc.OnView(proto.View{Epoch: 2, Members: []proto.NodeID{1, 2}})
	time.Sleep(20 * time.Millisecond)
	st := rc.Stats()
	if st.Redelivered != 1 || st.NodeWideFallbacks != 0 || st.ShardInstalls != 0 {
		t.Fatalf("stale removal view after attach: stats %+v, want pure redelivery", st)
	}
	for j := 0; j < w; j++ {
		if !sn.Shard(j).h.ReadGate().Allowed() || sn.ShardEpochs()[j] != 3 {
			t.Fatalf("shard %d fenced or regressed by a stale removal view (epochs %v)",
				j, sn.ShardEpochs())
		}
	}
}

// TestViewLogReqAlwaysAnswered: every ViewLogReq gets a ViewLogResp — empty
// when the peer retains nothing — because the request spent a send credit
// that only the response repays. Both a handler-less ShardedNode and a
// plain Node must answer.
func TestViewLogReqAlwaysAnswered(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	asker := l.Nodes[0]
	got := make(chan []proto.MUpdate, 2)
	asker.SetViewHandlers(&ViewHandlers{
		FastForward: func(from proto.NodeID, ups []proto.MUpdate) { got <- ups },
	})
	defer asker.SetViewHandlers(nil)

	// Node 1 has no handlers attached at all; it must still answer.
	asker.RequestViewLog(1, proto.ViewLogReq{Shard: proto.AllShards, Since: 0})
	select {
	case ups := <-got:
		if len(ups) != 0 {
			t.Fatalf("handler-less peer served %d updates from nowhere", len(ups))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler-less ShardedNode never answered the fetch")
	}

	// A plain (unsharded) node must answer too: pair a plain Node with a
	// sharded asker on one transport.
	tr := NewChanTransport([]proto.NodeID{0, 1})
	defer tr.Close()
	view := proto.View{Epoch: 1, Members: []proto.NodeID{0, 1}}
	plain := NewNode(NodeConfig{ID: 0, View: view}, tr)
	defer plain.Close()
	asker2 := NewShardedNode(ShardedConfig{ID: 1, View: view, Shards: 4}, tr)
	defer asker2.Close()
	asker2.SetViewHandlers(&ViewHandlers{
		FastForward: func(from proto.NodeID, ups []proto.MUpdate) { got <- ups },
	})
	asker2.RequestViewLog(0, proto.ViewLogReq{Shard: 0, Since: 0})
	select {
	case ups := <-got:
		if len(ups) != 0 {
			t.Fatalf("plain node served %d updates from nowhere", len(ups))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("plain Node never answered the fetch")
	}
}

// TestRolloutSupersededMidRoll: a newer view arriving while an older one is
// mid-roll wins — every shard lands on the newest epoch (skipped epochs are
// a fast-forward, not a gap) and no shard is left behind.
func TestRolloutSupersededMidRoll(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	sn := l.Nodes[0]
	gate := make(chan struct{})
	var once sync.Once
	rc := NewRolloutController(sn, RolloutConfig{Stagger: 2 * time.Millisecond})
	defer rc.Close()
	rc.onInstall = func(s int, v proto.View) {
		// Block the first install until the superseding view is queued, so
		// the race is deterministic: v2's roll must abandon after shard one.
		once.Do(func() { <-gate })
	}

	rc.OnView(view3(2))
	rc.OnView(view3(3))
	close(gate)
	waitEpochs(t, func() bool {
		for _, e := range sn.ShardEpochs() {
			if e != 3 {
				return false
			}
		}
		return true
	})
	st := rc.Stats()
	if st.Views != 2 {
		t.Fatalf("views = %d, want 2", st.Views)
	}
	// At most one shard saw epoch 2 (the install in flight when v3 arrived);
	// the rest jumped straight to 3: installs ≤ w+1.
	if st.ShardInstalls > uint64(w+1) {
		t.Fatalf("superseded roll performed %d installs, want <= %d", st.ShardInstalls, w+1)
	}
}
