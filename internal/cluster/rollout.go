package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
)

// RolloutController turns node-wide membership decisions into staggered
// per-shard installs — the automatic reconfiguration pipeline of §3.5–3.6.
// A membership agent (membership.Agent's OnView callback, or a node-wide
// wire MUpdate) hands it one view per epoch; the controller rolls that view
// across the node's W shards one at a time, ordered by live shard load
// (coolest shard first, so the hottest keeps its lock-free read fast path
// open longest), so **at most one read gate is shut at any moment**. The
// per-shard install blocks until that shard's §3.4 transition completes
// before the next gate shuts.
//
// Two escape hatches keep the staggering safe:
//
//   - A view that removes the local node (neither member nor learner)
//     installs node-wide immediately: a fenced node must stop serving every
//     shard at once, and trickling the fence across shards would keep
//     serving reads the new membership no longer sanctions.
//   - A newer view arriving mid-roll supersedes the current one: the roll
//     restarts with the newest view and each shard lands directly on the
//     latest epoch (views are complete membership states, so skipping
//     epochs is a fast-forward, not a gap). The skipped views stay in the
//     controller's log for peers that need to replay them.
//
// The controller also owns the node's **view log**: a bounded ring of every
// view it accepted, served to rejoining or lagging peers via the
// proto.ViewLogReq fetch (registered on the ShardedNode's ViewHandlers) and
// replayed from a peer by FastForward when this node is the laggard.
type RolloutController struct {
	sn  *ShardedNode
	cfg RolloutConfig

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	mu           sync.Mutex
	latest       proto.View
	have         bool
	lastAccepted uint32
	log          []proto.MUpdate // accepted views, ascending epochs, bounded

	// prevLoads is the load snapshot of the previous roll; deltas against it
	// are the "live" load that orders the next roll. Only the roll loop
	// touches it.
	prevLoads []uint64

	// Epoch-gossip observer state (under mu): the debounce horizon and the
	// best fast-forward candidate seen during the current debounce window
	// (newest peer preferred — the one advertising the highest epoch).
	ffNotBefore time.Time
	candPeer    proto.NodeID
	candEpoch   uint32
	haveCand    bool

	// Counters (see RolloutStats).
	views, redelivered, shardInstalls, skippedInstalls atomic.Uint64
	nodeWideFallbacks, ffRequests, ffApplied           atomic.Uint64
	gossipSent, gossipRecv, gossipBehind, gossipFF     atomic.Uint64

	// onInstall is a test hook observing each per-shard install in order.
	onInstall func(shard int, v proto.View)
}

// RolloutConfig parameterizes a controller.
type RolloutConfig struct {
	// Stagger is the pause between consecutive per-shard installs of one
	// roll, on top of each install's own (blocking) transition time. It
	// spaces the replay storms the installs trigger; 0 means back-to-back.
	Stagger time.Duration
	// LogCap bounds the retained view log (default 64 — reconfigurations
	// are control-plane rare, and a laggard behind by more rejoins through
	// the full learner arc anyway).
	LogCap int
	// GossipEvery, when positive, broadcasts this node's per-shard epoch
	// vector (proto.EpochGossip) to GossipPeers on that period. Combined
	// with the observer on the receive side this closes the self-healing
	// loop: a node that missed m-updates learns its lag from any peer's
	// gossip and fast-forwards itself, no operator or harness required.
	GossipEvery time.Duration
	// GossipPeers is the mesh peer set gossip is announced to (typically
	// the full configured node set; self is skipped).
	GossipPeers []proto.NodeID
	// FFDebounce rate-limits gossip-triggered fast-forwards: within one
	// window, at most one fetch is issued, and the candidate peer is the
	// one advertising the highest epoch seen in the window (newest peer
	// preferred — it provably retains the longest log suffix). Default
	// 4 x GossipEvery, or 100ms when gossip is off.
	FFDebounce time.Duration
}

// RolloutStats snapshots the controller's counters.
type RolloutStats struct {
	// Views counts accepted (newer-epoch) views; Redelivered counts
	// duplicate or stale deliveries dropped idempotently — without touching
	// any read gate (the PR 4 duplicate-install lesson, now enforced one
	// layer up).
	Views, Redelivered uint64
	// ShardInstalls counts per-shard installs performed; SkippedInstalls
	// counts shards found already at or past the target epoch (fast-forward
	// landed first, or a superseded roll already covered them).
	ShardInstalls, SkippedInstalls uint64
	// NodeWideFallbacks counts views that removed the local node and were
	// installed on every shard at once.
	NodeWideFallbacks uint64
	// FFRequests counts view-log fetches issued; FFApplied counts fetched
	// updates actually applied (epoch advanced somewhere).
	FFRequests, FFApplied uint64
	// GossipSent counts epoch-gossip frames announced; GossipRecv counts
	// frames observed; GossipBehind counts observations that showed a peer
	// strictly ahead of a local shard; GossipFastForwards counts the
	// fetches those observations actually issued after debouncing (the
	// self-healing trigger firing).
	GossipSent, GossipRecv, GossipBehind, GossipFastForwards uint64
}

// NewRolloutController attaches a controller to sn and starts its roll
// loop. It registers itself as sn's ViewHandlers, so node-wide wire
// m-updates and view-log traffic route through it from now on. Hand
// OnView to the membership agent (membership.Config.OnView) to complete
// the automatic pipeline. Close detaches and stops it.
func NewRolloutController(sn *ShardedNode, cfg RolloutConfig) *RolloutController {
	if cfg.LogCap <= 0 {
		cfg.LogCap = 64
	}
	rc := &RolloutController{
		sn:   sn,
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	// Seed the accepted-epoch floor from the node's current state: a
	// controller attached to a node already at epoch N must treat a
	// late-redelivered view <= N as a redelivery, not a fresh decision — a
	// stale pre-rejoin removal view would otherwise fence the node through
	// the node-wide fallback.
	for _, e := range sn.ShardEpochs() {
		if e > rc.lastAccepted {
			rc.lastAccepted = e
		}
	}
	rc.prevLoads = sn.ShardLoads()
	sn.SetViewHandlers(&ViewHandlers{
		View:        rc.OnView,
		ViewLog:     rc.serveViewLog,
		FastForward: rc.onViewLogResp,
		Gossip:      rc.ObserveGossip,
	})
	rc.wg.Add(1)
	go rc.loop()
	if cfg.GossipEvery > 0 {
		rc.wg.Add(1)
		go rc.gossipLoop()
	}
	return rc
}

// ffDebounce resolves the configured (or defaulted) debounce window.
func (rc *RolloutController) ffDebounce() time.Duration {
	if rc.cfg.FFDebounce > 0 {
		return rc.cfg.FFDebounce
	}
	if rc.cfg.GossipEvery > 0 {
		return 4 * rc.cfg.GossipEvery
	}
	return 100 * time.Millisecond
}

// gossipLoop periodically announces this node's per-shard epoch vector to
// the configured peers. Sends run on this goroutine, never the dispatch
// pump, so a slow peer link cannot stall anything but its own gossip.
func (rc *RolloutController) gossipLoop() {
	defer rc.wg.Done()
	t := time.NewTicker(rc.cfg.GossipEvery)
	defer t.Stop()
	for {
		select {
		case <-rc.stop:
			return
		case <-t.C:
		}
		eg := proto.EpochGossip{Epochs: rc.sn.ShardEpochs()}
		for _, p := range rc.cfg.GossipPeers {
			if p == rc.sn.id {
				continue
			}
			rc.gossipSent.Add(1)
			rc.sn.tr.Send(rc.sn.id, p, eg)
		}
	}
}

// ObserveGossip is the receive side of epoch gossip (registered as the
// node's Gossip handler; membership heartbeat piggybacks route here too). If
// the peer's vector is strictly ahead of any local shard, the peer becomes a
// fast-forward candidate; at most one fetch fires per debounce window, at
// the candidate advertising the highest epoch seen within it. The fetch
// itself is advisory-safe: its answer replays through the normal install
// path, so a lying vector can waste one request, never corrupt state.
func (rc *RolloutController) ObserveGossip(from proto.NodeID, epochs []uint32) {
	rc.gossipRecv.Add(1)
	local := rc.sn.ShardEpochs()
	behind := false
	var peerMax, localMax uint32
	for _, e := range local {
		if e > localMax {
			localMax = e
		}
	}
	for i, e := range epochs {
		if e > peerMax {
			peerMax = e
		}
		if i < len(local) && e > local[i] {
			behind = true
		}
	}
	// W-mismatched peers (different vector lengths) still compare by their
	// highest epoch: views are node-wide decisions, so a peer whose maximum
	// is ahead has seen an epoch this node missed entirely.
	if peerMax > localMax {
		behind = true
	}
	if !behind {
		return
	}
	rc.gossipBehind.Add(1)
	now := time.Now()
	rc.mu.Lock()
	if !rc.haveCand || peerMax > rc.candEpoch {
		rc.candPeer, rc.candEpoch, rc.haveCand = from, peerMax, true
	}
	if now.Before(rc.ffNotBefore) {
		rc.mu.Unlock()
		return
	}
	rc.ffNotBefore = now.Add(rc.ffDebounce())
	peer := rc.candPeer
	rc.haveCand, rc.candEpoch = false, 0
	rc.mu.Unlock()
	rc.gossipFF.Add(1)
	// The fetch leaves on its own goroutine: ObserveGossip runs on the
	// transport's dispatch pump, and a blocking send (lazy dial, exhausted
	// credits) must not stall data traffic behind a control-plane hint.
	go rc.FastForward(peer)
}

// OnView accepts one decided view. Newer epochs queue for rolling (newest
// wins — an older queued view still unrolled is superseded); duplicates and
// stale epochs are dropped idempotently and counted, without shutting or
// republishing any gate.
func (rc *RolloutController) OnView(v proto.View) {
	rc.mu.Lock()
	if v.Epoch <= rc.lastAccepted {
		rc.mu.Unlock()
		rc.redelivered.Add(1)
		return
	}
	rc.lastAccepted = v.Epoch
	rc.latest = v.Clone()
	rc.have = true
	rc.logLocked(proto.MUpdate{Shard: proto.AllShards, View: rc.latest})
	rc.mu.Unlock()
	rc.views.Add(1)
	select {
	case rc.kick <- struct{}{}:
	default:
	}
}

func (rc *RolloutController) logLocked(mu proto.MUpdate) {
	rc.log = append(rc.log, mu)
	if len(rc.log) > rc.cfg.LogCap {
		rc.log = append(rc.log[:0:0], rc.log[len(rc.log)-rc.cfg.LogCap:]...)
	}
}

// serveViewLog answers a peer's fast-forward fetch from the retained log.
// Entries are node-wide views, so they match any requested shard scope.
func (rc *RolloutController) serveViewLog(req proto.ViewLogReq) []proto.MUpdate {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var out []proto.MUpdate
	for _, mu := range rc.log {
		if mu.View.Epoch > req.Since {
			out = append(out, mu)
		}
	}
	return out
}

// onViewLogResp replays a fetched gap: node-wide entries feed OnView (so
// ordering, dedup and the roll machinery apply — consecutive entries
// supersede each other and the shards land on the newest, which is exactly
// the fast-forward), shard-scoped entries install directly on their shard.
func (rc *RolloutController) onViewLogResp(from proto.NodeID, updates []proto.MUpdate) {
	for _, up := range updates {
		switch {
		case up.Shard == proto.AllShards:
			rc.mu.Lock()
			fresh := up.View.Epoch > rc.lastAccepted
			rc.mu.Unlock()
			if fresh {
				rc.ffApplied.Add(1)
			}
			rc.OnView(up.View)
		case int(up.Shard) < rc.sn.w:
			if rc.sn.ShardEpochs()[up.Shard] < up.View.Epoch {
				rc.ffApplied.Add(1)
				rc.sn.shards[up.Shard].installAsync(up.View)
			}
		}
	}
}

// FastForward asks peer for the epochs this node's most lagging shard has
// missed. The answer replays asynchronously via onViewLogResp. Callers are
// whoever detects the lag: a rejoin path, an epoch-gossip observer, or a
// harness.
func (rc *RolloutController) FastForward(peer proto.NodeID) {
	since := rc.sn.ShardEpochs()[0]
	for _, e := range rc.sn.ShardEpochs() {
		if e < since {
			since = e
		}
	}
	rc.ffRequests.Add(1)
	rc.sn.RequestViewLog(peer, proto.ViewLogReq{Shard: proto.AllShards, Since: since})
}

// Stats snapshots the controller's counters; safe mid-traffic.
func (rc *RolloutController) Stats() RolloutStats {
	return RolloutStats{
		Views:              rc.views.Load(),
		Redelivered:        rc.redelivered.Load(),
		ShardInstalls:      rc.shardInstalls.Load(),
		SkippedInstalls:    rc.skippedInstalls.Load(),
		NodeWideFallbacks:  rc.nodeWideFallbacks.Load(),
		FFRequests:         rc.ffRequests.Load(),
		FFApplied:          rc.ffApplied.Load(),
		GossipSent:         rc.gossipSent.Load(),
		GossipRecv:         rc.gossipRecv.Load(),
		GossipBehind:       rc.gossipBehind.Load(),
		GossipFastForwards: rc.gossipFF.Load(),
	}
}

// Close stops the roll loop and detaches the controller from the node.
// In-flight per-shard installs finish (they block on shard event loops that
// remain live); queued views are abandoned.
func (rc *RolloutController) Close() {
	select {
	case <-rc.stop:
	default:
		close(rc.stop)
	}
	rc.wg.Wait()
	rc.sn.SetViewHandlers(nil)
}

func (rc *RolloutController) loop() {
	defer rc.wg.Done()
	for {
		select {
		case <-rc.stop:
			return
		case <-rc.kick:
		}
		for {
			rc.mu.Lock()
			if !rc.have {
				rc.mu.Unlock()
				break
			}
			v := rc.latest
			rc.have = false
			rc.mu.Unlock()
			if !rc.roll(v) {
				return // stopped mid-roll
			}
		}
	}
}

// roll installs v across the shards, one read gate at a time, coolest shard
// first. Returns false when the controller was stopped mid-roll.
func (rc *RolloutController) roll(v proto.View) bool {
	self := rc.sn.id
	if !v.Contains(self) && !v.IsLearner(self) {
		// The view fences this node: stop serving everywhere at once.
		// Staggering a removal would keep gates open on shards the new
		// membership no longer sanctions.
		rc.nodeWideFallbacks.Add(1)
		rc.sn.InstallView(v)
		return true
	}
	for _, s := range rc.loadOrder() {
		rc.mu.Lock()
		superseded := rc.have
		rc.mu.Unlock()
		if superseded {
			// A newer view arrived mid-roll: abandon this epoch. The loop
			// restarts with the newest view, whose roll covers every shard
			// still behind — including the ones this pass never reached.
			return true
		}
		if rc.sn.ShardEpochs()[s] >= v.Epoch {
			// Already there (a fast-forward or a superseded roll landed
			// first): installing again would shut and republish a healthy
			// gate for nothing.
			rc.skippedInstalls.Add(1)
			continue
		}
		if rc.onInstall != nil {
			rc.onInstall(s, v)
		}
		rc.sn.InstallShardView(s, v) // blocks until the transition completes
		rc.shardInstalls.Add(1)
		if rc.cfg.Stagger > 0 {
			select {
			case <-rc.stop:
				return false
			case <-time.After(rc.cfg.Stagger):
			}
		}
	}
	return true
}

// loadOrder returns the shard indices sorted by the load accrued since the
// previous roll, ascending (ties by index, for determinism): the coolest
// shard transitions first, the hottest keeps its fast path open longest.
func (rc *RolloutController) loadOrder() []int {
	cur := rc.sn.ShardLoads()
	delta := make([]uint64, len(cur))
	for i, c := range cur {
		p := uint64(0)
		if i < len(rc.prevLoads) {
			p = rc.prevLoads[i]
		}
		delta[i] = c - p
	}
	rc.prevLoads = cur
	order := make([]int, len(cur))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if delta[order[a]] != delta[order[b]] {
			return delta[order[a]] < delta[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
