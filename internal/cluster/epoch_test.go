package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/proto"
)

// waitEpochs polls until fn is satisfied (async installs need a beat to
// drain through the event loops).
func waitEpochs(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("epochs never reached the expected state")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInstallShardViewAdvancesOnlyThatShard pins the per-shard epoch
// machinery: installing on shard i moves shard i's epoch and nobody else's,
// and the untouched shards keep committing writes throughout.
func TestInstallShardViewAdvancesOnlyThatShard(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	keys := keysOnDistinctShards(w)
	const hot = 2

	v2 := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}}
	for _, n := range l.Nodes {
		n.InstallShardView(hot, v2)
	}
	for _, n := range l.Nodes {
		for i, e := range n.ShardEpochs() {
			want := uint32(1)
			if i == hot {
				want = 2
			}
			if e != want {
				t.Fatalf("node %d shard %d epoch %d, want %d", n.ID(), i, e, want)
			}
		}
	}
	// Every shard — advanced or not — still serves: shard s here only talks
	// to shard s on peers, so a per-shard epoch skew between shards is not a
	// mismatch anywhere.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, k := range keys {
		if err := l.Nodes[i%3].Write(ctx, k, proto.Value("skewed")); err != nil {
			t.Fatalf("write shard %d under epoch skew: %v", proto.ShardOf(k, w), err)
		}
		if v, err := l.Nodes[(i+1)%3].Read(ctx, k); err != nil || string(v) != "skewed" {
			t.Fatalf("read shard %d under epoch skew: %q %v", proto.ShardOf(k, w), v, err)
		}
	}
}

// TestStaggeredGateIsolation is the satellite acceptance check: while shard
// i's read gate is shut mid-install (its event loop deliberately wedged so
// the transition window stays open), every other shard keeps serving
// fast-path reads at a 100% hit rate.
func TestStaggeredGateIsolation(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	ctx := context.Background()
	sn := l.Nodes[0]
	keys := keysOnDistinctShards(w)
	for _, k := range keys {
		if err := sn.Write(ctx, k, proto.Value("v")); err != nil {
			t.Fatal(err)
		}
	}
	const hot = 1

	// Wedge shard hot's event loop, then start its install: the gate shuts
	// immediately and cannot reopen until the loop resumes.
	block := make(chan struct{})
	entered := make(chan struct{})
	sn.Shard(hot).enqueueFn(func() { close(entered); <-block })
	<-entered
	installed := make(chan struct{})
	go func() {
		sn.InstallShardView(hot, proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}})
		close(installed)
	}()
	waitEpochs(t, func() bool { return !sn.Shard(hot).h.ReadGate().Allowed() })

	// Snapshot the untouched shards' counters, hammer them with reads, and
	// require every single one to have hit the fast path.
	type snap struct{ hits, misses uint64 }
	before := make(map[int]snap)
	for j := 0; j < w; j++ {
		if j == hot {
			continue
		}
		_, h, m := sn.Shard(j).ReadStats()
		before[j] = snap{h, m}
	}
	const reads = 200
	for i := 0; i < reads; i++ {
		for j, k := range keys {
			if j == hot {
				continue
			}
			if v, err := sn.Read(ctx, k); err != nil || string(v) != "v" {
				t.Fatalf("read shard %d during shard %d's install: %q %v", j, hot, v, err)
			}
		}
	}
	for j := 0; j < w; j++ {
		if j == hot {
			continue
		}
		_, h, m := sn.Shard(j).ReadStats()
		if h-before[j].hits != reads || m != before[j].misses {
			t.Fatalf("shard %d during shard %d's install: hits +%d (want +%d), misses +%d (want 0)",
				j, hot, h-before[j].hits, reads, m-before[j].misses)
		}
	}

	// The hot shard itself must NOT serve fast-path reads in the window.
	rctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := sn.Read(rctx, keys[hot]); err != context.DeadlineExceeded {
		t.Fatalf("hot-shard read during install: err=%v, want deadline exceeded", err)
	}

	close(block)
	<-installed
	if got := sn.ShardEpochs()[hot]; got != 2 {
		t.Fatalf("hot shard epoch after install: %d, want 2", got)
	}
	if v, err := sn.Read(ctx, keys[hot]); err != nil || string(v) != "v" {
		t.Fatalf("hot-shard read after install: %q %v", v, err)
	}
}

// TestMUpdateDispatch covers the wire path of per-shard m-updates: a
// proto.MUpdate arriving at a sharded node installs on exactly the shards it
// addresses, AllShards fans out, out-of-range targets drop, and a plain Node
// accepts the shard-0 and AllShards forms.
func TestMUpdateDispatch(t *testing.T) {
	const w = 4
	l := NewShardedLocal(LocalConfig{N: 3}, w)
	defer l.Close()
	sn := l.Nodes[0]
	v := func(e uint32) proto.View { return proto.View{Epoch: e, Members: []proto.NodeID{0, 1, 2}} }

	// Single-shard target, injected as if from peer 1.
	l.Tr.Send(1, 0, proto.MUpdate{Shard: 3, View: v(2)})
	waitEpochs(t, func() bool { return sn.ShardEpochs()[3] == 2 })
	for i, e := range sn.ShardEpochs() {
		if want := uint32(1); i != 3 && e != want {
			t.Fatalf("shard %d epoch %d after targeted MUpdate, want %d", i, e, want)
		}
	}

	// Out of range: dropped, nothing moves.
	l.Tr.Send(1, 0, proto.MUpdate{Shard: w, View: v(3)})
	time.Sleep(20 * time.Millisecond)
	if es := sn.ShardEpochs(); es[0] != 1 || es[3] != 2 {
		t.Fatalf("epochs %v after out-of-range MUpdate, want shard0=1 shard3=2", es)
	}

	// AllShards: every engine advances.
	l.Tr.Send(1, 0, proto.MUpdate{Shard: proto.AllShards, View: v(4)})
	waitEpochs(t, func() bool {
		for _, e := range sn.ShardEpochs() {
			if e != 4 {
				return false
			}
		}
		return true
	})

	// A plain (unsharded) node is its own shard 0.
	pl := NewLocal(LocalConfig{N: 3})
	defer pl.Close()
	n := pl.Nodes[0]
	pl.Tr.Send(1, 0, proto.MUpdate{Shard: 1, View: v(2)}) // not shard 0: dropped
	pl.Tr.Send(1, 0, proto.MUpdate{Shard: 0, View: v(3)})
	waitEpochs(t, func() bool { return n.h.ReadGate().Epoch() == 3 })
	pl.Tr.Send(1, 0, proto.MUpdate{Shard: proto.AllShards, View: v(4)})
	waitEpochs(t, func() bool { return n.h.ReadGate().Epoch() == 4 })
}

// TestDuplicateInstallReopensGate is the regression for the stale-epoch gate
// fix: a redelivered (duplicate) m-update shuts the gate before OnViewChange
// sees it is a no-op, and the no-op path must republish the gate — otherwise
// the fast path stays shut forever after the first duplicate on a lossy
// wire.
func TestDuplicateInstallReopensGate(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	n := l.Nodes[0]
	if err := n.Write(ctx, 1, proto.Value("v")); err != nil {
		t.Fatal(err)
	}
	v2 := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}}
	n.InstallView(v2)
	n.InstallView(v2) // duplicate: stale epoch, must still reopen the gate
	if !n.h.ReadGate().Allowed() || n.h.ReadGate().Epoch() != 2 {
		t.Fatalf("gate after duplicate install: allowed=%v epoch=%d, want open at 2",
			n.h.ReadGate().Allowed(), n.h.ReadGate().Epoch())
	}
	_, hits0, _ := n.ReadStats()
	if v, err := n.Read(ctx, 1); err != nil || string(v) != "v" {
		t.Fatalf("read after duplicate install: %q %v", v, err)
	}
	if _, hits, _ := n.ReadStats(); hits != hits0+1 {
		t.Fatal("read after duplicate install missed the fast path")
	}
}
