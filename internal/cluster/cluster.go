// Package cluster is the live runtime: it hosts the same protocol state
// machines the simulator runs, but on goroutines with real time and a
// pluggable transport — an in-process channel mesh for single-binary
// deployments and tests, or TCP via internal/transport for a real
// distributed deployment (cmd/hermes-node). This is the library surface a
// downstream user embeds: NewLocal to stand up a replica group, Client for
// blocking linearizable reads, writes and RMWs.
//
// Architecture: each replica runs one event-loop goroutine that owns the
// protocol state machine (Submit/Deliver/Tick/OnViewChange are never called
// concurrently). Local linearizable reads take the HermesKV fast path
// (§4.1): gated by core.ReadGate they consult the shared kvs.Store directly
// on the caller's goroutine, and only enter the event loop when the key is
// not Valid, the gate is shut (view installation in flight, non-serving
// replica) or NoLSC mode demands the §8 speculative path.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvs"
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// Transport delivers messages between replica processes.
type Transport interface {
	// Send delivers msg from one node to another; best-effort (the
	// protocols tolerate loss).
	Send(from, to proto.NodeID, msg any)
	// SetDeliver installs the arrival callback for node id.
	SetDeliver(id proto.NodeID, fn func(from proto.NodeID, msg any))
	// Close releases resources.
	Close() error
}

// ChanTransport is an in-process mesh of buffered channels with optional
// fault injection, for tests and single-binary clusters.
type ChanTransport struct {
	mu      sync.RWMutex
	inboxes map[proto.NodeID]chan env
	deliver map[proto.NodeID]func(proto.NodeID, any)
	drop    atomic.Pointer[func(from, to proto.NodeID, msg any) bool]
	closed  chan struct{}
	wg      sync.WaitGroup
}

type env struct {
	from proto.NodeID
	msg  any
}

// NewChanTransport builds a mesh for the given node IDs.
func NewChanTransport(ids []proto.NodeID) *ChanTransport {
	t := &ChanTransport{
		inboxes: make(map[proto.NodeID]chan env),
		deliver: make(map[proto.NodeID]func(proto.NodeID, any)),
		closed:  make(chan struct{}),
	}
	for _, id := range ids {
		t.inboxes[id] = make(chan env, 4096)
	}
	return t
}

// SetDrop installs a fault-injection predicate (nil clears).
func (t *ChanTransport) SetDrop(fn func(from, to proto.NodeID, msg any) bool) {
	if fn == nil {
		t.drop.Store(nil)
		return
	}
	t.drop.Store(&fn)
}

// Send implements Transport.
func (t *ChanTransport) Send(from, to proto.NodeID, msg any) {
	if d := t.drop.Load(); d != nil && (*d)(from, to, msg) {
		return
	}
	t.mu.RLock() //hermesvet:ignore eventloop inbox-map read; writers only touch mu during Register/Close, never on the hot path
	ch := t.inboxes[to]
	t.mu.RUnlock()
	if ch == nil {
		return
	}
	select {
	case ch <- env{from: from, msg: msg}:
	case <-t.closed:
	default:
		// Full inbox: drop (the protocols' retransmission recovers). This
		// models bounded NIC queues rather than blocking the sender.
	}
}

// SetDeliver implements Transport and starts the pump goroutine.
func (t *ChanTransport) SetDeliver(id proto.NodeID, fn func(proto.NodeID, any)) {
	t.mu.Lock()
	t.deliver[id] = fn
	ch := t.inboxes[id]
	t.mu.Unlock()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case e := <-ch:
				fn(e.from, e.msg)
			case <-t.closed:
				return
			}
		}
	}()
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	select {
	case <-t.closed:
	default:
		close(t.closed)
	}
	t.wg.Wait()
	return nil
}

// Node hosts one replica on an event-loop goroutine.
type Node struct {
	id     proto.NodeID
	h      *core.Hermes
	store  *kvs.Store
	tr     Transport
	ops    chan proto.ClientOp
	msgs   chan env
	stop   chan struct{}
	wg     sync.WaitGroup
	nextOp atomic.Uint64
	// updates counts submitted update ops (writes, CAS, FAA); together with
	// the read counters it is the live load signal the rollout controller
	// orders shards by.
	updates atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]waiter

	start time.Time
}

// waiter is one op's completion sink: a single-use channel for the blocking
// API (Read/Write/CAS/FAA) or a callback for SubmitAsync. Exactly one is set.
type waiter struct {
	ch chan proto.Completion
	fn func(proto.Completion)
}

// nodeEnv adapts the Node to proto.Env. Only the event-loop goroutine
// invokes it.
type nodeEnv struct{ n *Node }

func (e nodeEnv) Now() time.Duration { return time.Since(e.n.start) }
func (e nodeEnv) Send(to proto.NodeID, msg any) {
	e.n.tr.Send(e.n.id, to, msg)
}
func (e nodeEnv) Complete(c proto.Completion) {
	e.n.mu.Lock() //hermesvet:ignore eventloop waiter-table critical section is a bounded map lookup+delete; Submit holds mu only to insert
	w := e.n.waiters[c.OpID]
	delete(e.n.waiters, c.OpID)
	e.n.mu.Unlock()
	switch {
	case w.fn != nil:
		// SubmitAsync callback: runs on the event-loop goroutine, so it must
		// not block (the contract SubmitAsync documents).
		w.fn(c)
	case w.ch != nil:
		// Pooled cap-1 completion channel that receives exactly once per op;
		// hermes-vet's headroom prover verifies this from the pool's New and
		// the field's binding sites (no waiver needed).
		w.ch <- c
	}
}

// NodeConfig parameterizes one live replica.
type NodeConfig struct {
	ID   proto.NodeID
	View proto.View
	MLT  time.Duration
	// Hermes toggles (see core.Config).
	ElideVAL, EarlyACKs, NoLSC bool
	TickEvery                  time.Duration
}

// NewNode builds and starts a live Hermes replica on tr.
func NewNode(cfg NodeConfig, tr Transport) *Node {
	if cfg.MLT <= 0 {
		cfg.MLT = 20 * time.Millisecond
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 2 * time.Millisecond
	}
	st := kvs.New(64)
	n := &Node{
		id:      cfg.ID,
		store:   st,
		tr:      tr,
		ops:     make(chan proto.ClientOp, 1024),
		msgs:    make(chan env, 8192),
		stop:    make(chan struct{}),
		waiters: make(map[uint64]waiter),
		start:   time.Now(),
	}
	n.h = core.New(core.Config{
		ID: cfg.ID, View: cfg.View, Env: nodeEnv{n: n}, Store: st,
		MLT: cfg.MLT, ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs, NoLSC: cfg.NoLSC,
	})
	tr.SetDeliver(cfg.ID, func(from proto.NodeID, msg any) {
		switch m := msg.(type) {
		case proto.MUpdate:
			// A wire m-update never reaches the protocol state machine; it is
			// host-level routing. A plain node is its own shard 0, so it
			// accepts updates addressed to shard 0 or to all shards and drops
			// the rest (a mis-addressed update stalls safely, like a
			// mis-tagged ShardMsg).
			if m.Shard == 0 || m.Shard == proto.AllShards {
				n.installAsync(m.View)
			}
			return
		case proto.ViewLogReq:
			// A plain node retains no view log (that is the rollout
			// controller's job on sharded nodes), but it must still answer:
			// the request consumed a send credit on the requester's link that
			// only a response repays, and an empty ViewLogResp is the legal
			// "nothing newer". Replied off the pump goroutine — a blocking
			// send must not stall inbound delivery.
			go n.tr.Send(n.id, from, proto.ViewLogResp{})
			return
		case proto.ViewLogResp:
			// A fast-forward answer replays like the m-updates it carries.
			for _, up := range m.Updates {
				if up.Shard == 0 || up.Shard == proto.AllShards {
					n.installAsync(up.View)
				}
			}
			return
		}
		select {
		case n.msgs <- env{from: from, msg: msg}:
		case <-n.stop:
			// Dropped on shutdown: spend the frame references wings decode
			// retained for the message's values, like any other drop path.
			core.ReleaseMsgOwners(msg)
		}
	})
	n.wg.Add(1)
	go n.loop(cfg.TickEvery)
	return n
}

func (n *Node) loop(tickEvery time.Duration) {
	defer n.wg.Done()
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case e := <-n.msgs:
			if fn, ok := e.msg.(loopFn); ok {
				fn()
				break
			}
			n.h.Deliver(e.from, e.msg)
		case op := <-n.ops:
			n.h.Submit(op)
		case <-ticker.C:
			n.h.Tick()
		}
	}
}

// ID returns the node's ID.
func (n *Node) ID() proto.NodeID { return n.id }

// Hermes exposes the protocol instance (metrics, view).
func (n *Node) Hermes() *core.Hermes { return n.h }

// InstallView delivers an m-update to the replica. The lock-free read gate
// is shut before the m-update enters the event loop, so fast-path reads
// fall back to the Submit path for the entire transition window;
// OnViewChange republishes the gate under the new epoch.
func (n *Node) InstallView(v proto.View) {
	n.h.ReadGate().Shut()
	done := make(chan struct{})
	n.enqueueFn(func() { n.h.OnViewChange(v); close(done) })
	<-done
}

// installAsync is InstallView without the completion wait: the gate shuts
// immediately and the m-update is queued behind whatever the event loop is
// doing. Used when the caller is a transport pump that must not block on a
// busy shard (OnViewChange republishes the gate when it runs — including for
// duplicate or stale epochs, so a redelivered MUpdate cannot wedge the gate
// shut).
func (n *Node) installAsync(v proto.View) {
	n.h.ReadGate().Shut()
	n.enqueueFn(func() { n.h.OnViewChange(v) })
}

// enqueueFn runs fn on the event loop by disguising it as a message.
func (n *Node) enqueueFn(fn func()) {
	select {
	case n.msgs <- env{from: n.id, msg: loopFn(fn)}:
	case <-n.stop:
	}
}

// loopFn is an internal message type executed by Deliver interception.
type loopFn func()

// Close stops the node.
func (n *Node) Close() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	n.wg.Wait()
}

// ErrClosed reports an operation on a stopped node.
var ErrClosed = errors.New("cluster: node closed")

// Read performs a linearizable read. When the replica's read gate is open
// and the key is Valid, the read is served entirely on the caller's
// goroutine — one atomic gate load and one lock-free store lookup, never
// touching the event loop (the HermesKV fast path, §4.1). Otherwise —
// non-Valid key, NoLSC mode (the fast path must not bypass the §8
// membership proof), an in-flight view installation, or a non-serving
// replica — the op goes through the event loop and stalls until the key
// validates.
func (n *Node) Read(ctx context.Context, key proto.Key) (proto.Value, error) {
	if v, ok := n.h.ReadLocal(key); ok {
		return v, nil
	}
	c, err := n.do(ctx, proto.ClientOp{Kind: proto.OpRead, Key: key})
	if err != nil {
		return nil, err
	}
	return c.Value, nil
}

// ReadStats reports the node's read-side counters (total reads, fast-path
// hits, fast-path fallbacks); safe to call concurrently with traffic.
func (n *Node) ReadStats() (reads, fastHits, fastMisses uint64) {
	return n.h.ReadStats()
}

// Write performs a linearizable write.
func (n *Node) Write(ctx context.Context, key proto.Key, val proto.Value) error {
	_, err := n.do(ctx, proto.ClientOp{Kind: proto.OpWrite, Key: key, Value: val})
	return err
}

// CAS performs a compare-and-swap; swapped=false with err==nil means the
// comparand mismatched and observed holds the current value.
func (n *Node) CAS(ctx context.Context, key proto.Key, expect, val proto.Value) (swapped bool, observed proto.Value, err error) {
	c, err := n.do(ctx, proto.ClientOp{Kind: proto.OpCAS, Key: key, Expected: expect, Value: val})
	if err != nil {
		return false, nil, err
	}
	switch c.Status {
	case proto.OK:
		return true, nil, nil
	case proto.CASFailed:
		return false, c.Value, nil
	case proto.Aborted:
		return false, nil, ErrAborted
	default:
		return false, nil, fmt.Errorf("cluster: cas: %v", c.Status)
	}
}

// FAA atomically adds delta and returns the prior value. ErrAborted is
// returned when the RMW lost to a concurrent update; callers retry.
func (n *Node) FAA(ctx context.Context, key proto.Key, delta int64) (int64, error) {
	c, err := n.do(ctx, proto.ClientOp{Kind: proto.OpFAA, Key: key, Value: proto.EncodeInt64(delta)})
	if err != nil {
		return 0, err
	}
	if c.Status == proto.Aborted {
		return 0, ErrAborted
	}
	return proto.DecodeInt64(c.Value), nil
}

// ErrAborted reports an RMW that lost to a concurrent conflicting update
// (paper §3.6); the operation had no effect and may be retried.
var ErrAborted = errors.New("cluster: rmw aborted by concurrent update")

// ErrNotOperational reports a replica without a valid membership lease.
var ErrNotOperational = errors.New("cluster: replica not operational")

// completionChPool recycles the slow path's single-use completion channels:
// one Get/Put per op instead of one allocation per op. A channel may only be
// returned once it is provably empty and unreachable from the completer.
var completionChPool = sync.Pool{
	New: func() any { return make(chan proto.Completion, 1) },
}

// LoadStats reports the node's live client-op counters — total reads served
// (fast path + event loop) and update ops submitted — safe mid-traffic. The
// rollout controller orders shards by deltas of reads+updates.
func (n *Node) LoadStats() (reads, updates uint64) {
	r, _, _ := n.h.ReadStats()
	return r, n.updates.Load()
}

func (n *Node) do(ctx context.Context, op proto.ClientOp) (proto.Completion, error) {
	op.ID = n.nextOp.Add(1)
	if op.Kind.IsUpdate() {
		n.updates.Add(1)
	}
	ch := completionChPool.Get().(chan proto.Completion)
	n.mu.Lock()
	n.waiters[op.ID] = waiter{ch: ch}
	n.mu.Unlock()
	select {
	case n.ops <- op:
	case <-ctx.Done():
		// The op never reached the event loop, so no Completion can ever
		// be sent on ch: pooling it back after forget is safe.
		n.forget(op.ID)
		completionChPool.Put(ch)
		return proto.Completion{}, ctx.Err()
	case <-n.stop:
		return proto.Completion{}, ErrClosed
	}
	select {
	case c := <-ch:
		// The one send this op can produce has been drained; ch is empty.
		completionChPool.Put(ch)
		if c.Status == proto.NotOperational {
			return c, ErrNotOperational
		}
		return c, nil
	case <-ctx.Done():
		// NOT pooled: a racing Complete may have already taken ch out of
		// the waiter map and be about to send on it; reusing the channel
		// could deliver that stale completion to an unrelated op.
		n.forget(op.ID)
		return proto.Completion{}, ctx.Err()
	case <-n.stop:
		return proto.Completion{}, ErrClosed
	}
}

// ReadLocal attempts the lock-free local-read fast path on the caller's
// goroutine: one atomic gate load and one store lookup, never touching the
// event loop. ok=false means the caller must fall back to a submitted read
// (SubmitAsync or Read) — the key is not Valid, the gate is shut, or NoLSC
// mode forbids the fast path. The client serving layer calls this on session
// goroutines so wire reads keep the §4.1 fast path end to end.
func (n *Node) ReadLocal(key proto.Key) (proto.Value, bool) {
	return n.h.ReadLocal(key)
}

// ReadLocalRetained is ReadLocal minus the defensive copy: a non-nil owner
// pins the pooled frame buffer the value aliases, and the caller must
// Release it after the bytes' last use (the serving layer holds the pin
// across its response-encode flush). See core.Hermes.ReadLocalRetained.
func (n *Node) ReadLocalRetained(key proto.Key) (proto.Value, *refbuf.Buf, bool) {
	return n.h.ReadLocalRetained(key)
}

// SubmitAsync submits op to the event loop and invokes fn with its
// completion instead of blocking the caller — the pipelined serving layer's
// path: one session goroutine keeps hundreds of ops in flight without a
// goroutine per op. fn runs on the event-loop goroutine and MUST NOT block
// (enqueue and return; a blocking fn stalls the whole shard). op.ID is
// assigned here; the completion's OpID echoes it. Blocks only if the ops
// queue is full (bounded backpressure on the submitting session, never on
// other sessions or shards). Returns ErrClosed on a stopped node.
func (n *Node) SubmitAsync(op proto.ClientOp, fn func(proto.Completion)) error {
	op.ID = n.nextOp.Add(1)
	if op.Kind.IsUpdate() {
		n.updates.Add(1)
	}
	n.mu.Lock()
	n.waiters[op.ID] = waiter{fn: fn}
	n.mu.Unlock()
	select {
	case n.ops <- op:
		return nil
	case <-n.stop:
		n.forget(op.ID)
		return ErrClosed
	}
}

func (n *Node) forget(id uint64) {
	n.mu.Lock()
	delete(n.waiters, id)
	n.mu.Unlock()
}

// Local is a single-process replica group over a ChanTransport: the
// quickstart deployment and the fixture for live tests.
type Local struct {
	Nodes []*Node
	Tr    *ChanTransport
}

// LocalConfig parameterizes NewLocal.
type LocalConfig struct {
	N         int
	MLT       time.Duration
	ElideVAL  bool
	EarlyACKs bool
	NoLSC     bool
}

// NewLocal stands up an n-replica Hermes group in-process.
func NewLocal(cfg LocalConfig) *Local {
	ids := make([]proto.NodeID, cfg.N)
	for i := range ids {
		ids[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: ids}
	tr := NewChanTransport(ids)
	l := &Local{Tr: tr}
	for _, id := range ids {
		l.Nodes = append(l.Nodes, NewNode(NodeConfig{
			ID: id, View: view, MLT: cfg.MLT,
			ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs, NoLSC: cfg.NoLSC,
		}, tr))
	}
	return l
}

// Close stops all nodes and the transport.
func (l *Local) Close() {
	for _, n := range l.Nodes {
		n.Close()
	}
	l.Tr.Close()
}
