package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestLocalReadWrite(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()

	if err := l.Nodes[0].Write(ctx, 7, proto.Value("hello")); err != nil {
		t.Fatal(err)
	}
	// Linearizable read at every replica; the committed write is visible
	// everywhere (a committed Hermes write reached all replicas).
	for _, n := range l.Nodes {
		v, err := n.Read(ctx, 7)
		if err != nil {
			t.Fatalf("node %d: %v", n.ID(), err)
		}
		if string(v) != "hello" {
			t.Fatalf("node %d read %q", n.ID(), v)
		}
	}
}

func TestReadMissingKey(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	v, err := l.Nodes[1].Read(context.Background(), 999)
	if err != nil || v != nil {
		t.Fatalf("missing key: %q, %v", v, err)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i, n := range l.Nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				val := proto.Value(fmt.Sprintf("n%d-%d", i, j))
				if err := n.Write(ctx, 1, val); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(i, n)
	}
	wg.Wait()
	// All replicas converge on one value.
	ref, err := l.Nodes[0].Read(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range l.Nodes[1:] {
		v, err := n.Read(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != string(ref) {
			t.Fatalf("divergence: %q vs %q", v, ref)
		}
	}
}

func TestFAAIsAtomicUnderContention(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	const perNode = 30
	var wg sync.WaitGroup
	var committed atomic64
	for _, n := range l.Nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				for { // retry aborts: standard RMW usage
					_, err := n.FAA(ctx, 5, 1)
					if err == nil {
						committed.add(1)
						break
					}
					if err != ErrAborted {
						t.Errorf("faa: %v", err)
						return
					}
				}
			}
		}(n)
	}
	wg.Wait()
	v, err := l.Nodes[0].Read(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := proto.DecodeInt64(v); got != committed.load() || got != 3*perNode {
		t.Fatalf("counter=%d committed=%d want %d", got, committed.load(), 3*perNode)
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestCASLockSemantics(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	// Two contenders attempt to acquire a lock key via CAS(nil -> owner).
	okA, _, err := l.Nodes[0].CAS(ctx, 10, nil, proto.Value("A"))
	if err != nil {
		t.Fatal(err)
	}
	if !okA {
		t.Fatal("first CAS should win")
	}
	okB, observed, err := l.Nodes[1].CAS(ctx, 10, nil, proto.Value("B"))
	if err != nil {
		t.Fatal(err)
	}
	if okB {
		t.Fatal("second CAS should lose")
	}
	if string(observed) != "A" {
		t.Fatalf("observed %q", observed)
	}
}

func TestWriteStormOnManyKeys(t *testing.T) {
	l := NewLocal(LocalConfig{N: 5})
	defer l.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i, n := range l.Nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for k := proto.Key(0); k < 40; k++ {
				if err := n.Write(ctx, proto.Key(i)*100+k, proto.Value("v")); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(i, n)
	}
	wg.Wait()
	for i := range l.Nodes {
		for k := proto.Key(0); k < 40; k++ {
			v, err := l.Nodes[(i+1)%len(l.Nodes)].Read(ctx, proto.Key(i)*100+k)
			if err != nil || string(v) != "v" {
				t.Fatalf("key %d: %q %v", proto.Key(i)*100+k, v, err)
			}
		}
	}
}

func TestMessageLossRecoveredLive(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3, MLT: 30 * time.Millisecond})
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drop 20% of protocol messages.
	drop := 0
	var mu sync.Mutex
	l.Tr.SetDrop(func(from, to proto.NodeID, msg any) bool {
		mu.Lock()
		defer mu.Unlock()
		drop++
		return drop%5 == 0
	})
	for i := 0; i < 30; i++ {
		if err := l.Nodes[i%3].Write(ctx, proto.Key(i%4), proto.Value{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	l.Tr.SetDrop(nil)
	// All writes committed despite loss; convergence via read.
	for k := proto.Key(0); k < 4; k++ {
		if _, err := l.Nodes[0].Read(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3, MLT: time.Hour}) // never recover
	defer l.Close()
	// Block all traffic: the write can never commit.
	l.Tr.SetDrop(func(from, to proto.NodeID, msg any) bool { return true })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := l.Nodes[0].Write(ctx, 1, proto.Value("x"))
	if err != context.DeadlineExceeded {
		t.Fatalf("err=%v want deadline exceeded", err)
	}
}

func TestViewChangeReleasesBlockedWrite(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3, MLT: 20 * time.Millisecond})
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Node 2 goes dark.
	l.Tr.SetDrop(func(from, to proto.NodeID, msg any) bool { return from == 2 || to == 2 })
	done := make(chan error, 1)
	go func() { done <- l.Nodes[0].Write(ctx, 1, proto.Value("v")) }()
	select {
	case err := <-done:
		t.Fatalf("write completed without node 2: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	// m-update removes node 2.
	nv := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1}}
	l.Nodes[0].InstallView(nv)
	l.Nodes[1].InstallView(nv)
	if err := <-done; err != nil {
		t.Fatalf("write after m-update: %v", err)
	}
}

func TestClosedNodeReturnsErrClosed(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	n := l.Nodes[0]
	l.Close()
	if err := n.Write(context.Background(), 1, proto.Value("x")); err != ErrClosed {
		t.Fatalf("err=%v", err)
	}
}

func TestFastPathReadAvoidsEventLoop(t *testing.T) {
	l := NewLocal(LocalConfig{N: 3})
	defer l.Close()
	ctx := context.Background()
	if err := l.Nodes[0].Write(ctx, 3, proto.Value("fp")); err != nil {
		t.Fatal(err)
	}
	// Reads of Valid keys hit the seqlock-style store directly; measure
	// that they work while the event loop is saturated.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				l.Nodes[0].Write(ctx, 999, proto.Value("noise"))
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		v, err := l.Nodes[0].Read(ctx, 3)
		if err != nil || string(v) != "fp" {
			close(stop)
			t.Fatalf("fast read: %q %v", v, err)
		}
	}
	close(stop)
}
