package cluster

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// ShardedNode is the multi-worker protocol engine of HermesKV (paper §4.1):
// one live node hosting W independent core.Hermes state machines, each with
// its own event-loop goroutine, kvs.Store segment and timers, each owning
// the keyspace partition proto.ShardOf selects. Writes and RMWs to keys on
// different shards commit fully in parallel — there is no cross-shard
// serialization point — while the lock-free local-read fast path is the same
// as Node's (it consults the owning shard's store directly).
//
// On the wire every protocol message is wrapped in a proto.ShardMsg so the
// receiving node can route it to the peer shard that owns the key; shard s
// of one node only ever converses with shard s of the others. All nodes of
// a cluster must therefore be configured with the same shard count. With
// Shards=1 the envelope is elided entirely: a single-shard node is
// byte-for-byte identical to a plain Node on the wire and interoperates
// with one.
//
// Small messages (ACKs, VALs) do not write the transport directly: they
// pass through a per-peer egress coalescer that gathers what the W engines
// emit concurrently and ships it as one proto.ShardBatch frame under one
// flow-control credit — cutting the per-write frame rate that W would
// otherwise multiply. Arriving batches fan back out to owner shards in
// dispatch.
//
// Membership epochs are per shard: a node-wide m-update fans out to every
// shard (InstallView), while InstallShardView — or a wire proto.MUpdate
// addressing one shard — advances a single shard's epoch. Either way the
// §3.4 fault-tolerance machinery — epoch filtering, write replays,
// shadow-replica catch-up — operates per shard over that shard's slice of
// the keyspace, so one shard's reconfiguration never pauses the others.
type ShardedNode struct {
	id     proto.NodeID
	w      int
	tr     Transport
	shards []*Node
	// deliver[i] is shard i's arrival callback, captured when the shard's
	// Node registers on its shardTransport during construction.
	deliver []func(from proto.NodeID, msg any)

	// coal holds the egress coalescers, two per peer (lazily created): small
	// shard-tagged messages from all W engines gather there and ship as one
	// proto.ShardBatch frame under one flow-control credit, instead of W
	// independent ShardMsg frames. Responses (ACKs) and credit-consuming
	// messages (VALs) coalesce separately — see coalescerFor. Unused at W=1
	// (no envelopes at all).
	coalMu sync.Mutex
	coal   map[coalKey]*peerCoalescer

	// Coalescing counters (atomic; see CoalesceStats).
	batchesOut, coalescedOut, singlesOut atomic.Uint64
	// droppedOut counts messages shed by full coalescer buffers (a stalled
	// peer); the shard engines' retransmission recovers them.
	droppedOut atomic.Uint64

	// viewHandlers, when set, intercepts node-level membership traffic: a
	// rollout controller registers here to receive node-wide wire m-updates
	// (staggering them across shards instead of the all-gates-at-once fan
	// out), to answer view-log fetches, and to apply fast-forward responses.
	viewHandlers atomic.Pointer[ViewHandlers]
}

// ViewHandlers routes node-level membership traffic to an attached rollout
// controller (or any other membership host). All fields are optional; a nil
// handler falls back to the direct install path.
type ViewHandlers struct {
	// View receives node-wide (AllShards) wire m-updates.
	View func(v proto.View)
	// ViewLog answers a peer's fast-forward fetch with retained updates.
	ViewLog func(req proto.ViewLogReq) []proto.MUpdate
	// FastForward receives a view-log answer to this node's own fetch.
	FastForward func(from proto.NodeID, updates []proto.MUpdate)
	// Gossip receives a peer's per-shard epoch vector (proto.EpochGossip);
	// the handler decides whether the peer is ahead and whether to
	// fast-forward. Without a handler gossip frames drop harmlessly.
	Gossip func(from proto.NodeID, epochs []uint32)
}

// ShardedConfig parameterizes a sharded replica. The embedded per-shard
// toggles mean exactly what they do on NodeConfig; Shards is the worker
// count W (values < 1 become 1, so the zero value degenerates to a plain
// single-engine node).
type ShardedConfig struct {
	ID   proto.NodeID
	View proto.View
	MLT  time.Duration
	// Hermes toggles (see core.Config).
	ElideVAL, EarlyACKs, NoLSC bool
	TickEvery                  time.Duration
	Shards                     int
}

// DefaultShards picks a worker count for deployments that do not choose one:
// one shard per CPU, capped — the paper's testbed runs ~20 worker threads
// per node, but beyond the core count extra shards only add scheduling
// overhead.
func DefaultShards() int {
	w := runtime.NumCPU()
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardTransport is the per-shard window onto the node's real transport: it
// tags outgoing messages with the shard index (unless W=1) and captures the
// shard's deliver callback for the node-level dispatcher instead of
// registering it with the real transport.
type shardTransport struct {
	sn  *ShardedNode
	idx uint16
	// coalCache memoizes coalescer lookups so the per-message fast path
	// skips the node-global coalMu; only this shard's event loop touches it,
	// so it needs no lock.
	coalCache map[coalKey]*peerCoalescer
}

func (t *shardTransport) Send(from, to proto.NodeID, msg any) {
	if t.sn.w == 1 {
		t.sn.tr.Send(from, to, msg)
		return
	}
	sm := proto.ShardMsg{Shard: t.idx, Msg: msg}
	if core.Coalescable(msg) {
		// Small messages are the coalescing targets: at W shards they
		// dominate the frame rate, and no protocol property depends on
		// their ordering relative to the direct path (links are lossy and
		// reordering anyway).
		k := coalKey{to: to, class: classOf(msg)}
		p := t.coalCache[k]
		if p == nil {
			p = t.sn.coalescerFor(k)
			if t.coalCache == nil {
				t.coalCache = make(map[coalKey]*peerCoalescer)
			}
			t.coalCache[k] = p
		}
		p.enqueue(sm)
		return
	}
	t.sn.tr.Send(from, to, sm)
}

func (t *shardTransport) SetDeliver(id proto.NodeID, fn func(from proto.NodeID, msg any)) {
	t.sn.deliver[t.idx] = fn
}

func (t *shardTransport) Close() error { return nil }

// msgClass is the flow-control class of a coalesced message; one coalescer
// carries exactly one class, because the classes settle credits differently
// and a mixed batch would have no coherent price.
type msgClass uint8

const (
	// classResponse: ACKs. A homogeneous response batch consumes no send
	// credit, so ACK egress — the traffic that repays the peer's credits —
	// can never block behind a credit-starved batch of another class (mixing
	// could deadlock two mutually starved peers whose repayments sit queued
	// behind their own blocked flushers).
	classResponse msgClass = iota
	// classOneWay: VALs. One credit per frame, repaid by the receiver's
	// explicit grants counting the batch once.
	classOneWay
	// classRequest: INVs. One credit per inner message (wings prices the
	// batch via LinkConfig.CreditCost), each repaid implicitly by its ACK.
	// Request batches are additionally size-budgeted: INVs carry values, and
	// an unbounded batch would turn the per-frame flush into a latency cliff.
	classRequest
)

func classOf(msg any) msgClass {
	if core.IsResponseMsg(msg) {
		return classResponse
	}
	if _, ok := msg.(core.INV); ok {
		return classRequest
	}
	return classOneWay
}

// coalKey identifies one egress coalescer: the destination peer and the
// flow-control class of what it carries.
type coalKey struct {
	to    proto.NodeID
	class msgClass
}

// maxBatchMsgs caps one ShardBatch at the codec's 2-byte count; a fuller
// buffer flushes as several frames.
const maxBatchMsgs = 0xFFFF

// maxBatchBytes budgets one request-class (INV) batch frame. INVs carry
// values, so unlike the fixed-size ACK/VAL batches their frames can grow
// arbitrarily; past the budget the buffer flushes as several frames, keeping
// per-frame encode-and-write latency bounded while still amortizing the
// framing and credit overhead. A single oversized INV still ships alone.
const maxBatchBytes = 64 << 10

// shardMsgSize estimates one coalesced message's wire footprint for the
// request-class byte budget: fixed header plus the value an INV carries.
func shardMsgSize(sm proto.ShardMsg) int {
	const overhead = 32
	if inv, ok := sm.Msg.(core.INV); ok {
		return overhead + len(inv.Value)
	}
	return overhead
}

// maxCoalesceBuf bounds one coalescer's queue. Enqueue never blocks the
// shard engines, so when the flusher is stalled (a credit-starved peer) the
// buffer must not grow without bound; past the cap, messages drop — the
// same bounded-queue discipline as ChanTransport's full inbox, and the
// protocols' retransmission recovers.
const maxCoalesceBuf = 1 << 16

// peerCoalescer gathers small shard-tagged messages of one credit class
// bound for one peer across all W shard engines and flushes them as single
// ShardBatch frames. Batching is opportunistic, exactly like the wings
// flusher it feeds: the first enqueue starts a flusher goroutine, and while
// its Send is in flight (possibly blocked on flow-control credits) further
// messages pile into buf and ship together — latency is never traded for
// batch size.
type peerCoalescer struct {
	sn    *ShardedNode
	to    proto.NodeID
	class msgClass

	mu       sync.Mutex
	buf      []proto.ShardMsg
	flushing bool
}

func (p *peerCoalescer) enqueue(sm proto.ShardMsg) {
	p.mu.Lock() //hermesvet:ignore eventloop bounded append under the buffer lock; flushLoop copies the batch out and releases before any I/O
	if len(p.buf) >= maxCoalesceBuf {
		p.mu.Unlock()
		p.sn.droppedOut.Add(1)
		return
	}
	p.buf = append(p.buf, sm)
	if !p.flushing {
		p.flushing = true
		go p.flushLoop()
	}
	p.mu.Unlock()
}

func (p *peerCoalescer) flushLoop() {
	for {
		p.mu.Lock()
		if len(p.buf) == 0 {
			p.flushing = false
			p.mu.Unlock()
			return
		}
		cut := len(p.buf)
		if cut > maxBatchMsgs {
			cut = maxBatchMsgs
		}
		if p.class == classRequest {
			size := 0
			for i := 0; i < cut; i++ {
				size += shardMsgSize(p.buf[i])
				if size > maxBatchBytes && i > 0 {
					cut = i
					break
				}
			}
		}
		batch := p.buf[:cut]
		if cut == len(p.buf) {
			p.buf = nil
		} else {
			p.buf = p.buf[cut:]
		}
		p.mu.Unlock()

		if len(batch) == 1 {
			// A lone message ships as a plain ShardMsg: no envelope overhead,
			// and the wire stays identical to the pre-coalescing protocol
			// whenever there is nothing to coalesce.
			p.sn.singlesOut.Add(1)
			p.sn.tr.Send(p.sn.id, p.to, batch[0])
			continue
		}
		p.sn.batchesOut.Add(1)
		p.sn.coalescedOut.Add(uint64(len(batch)))
		p.sn.tr.Send(p.sn.id, p.to, proto.ShardBatch{Msgs: batch})
	}
}

// coalescerFor returns (creating if needed) the egress coalescer for a
// peer and credit class. Hot paths go through shardTransport's per-shard
// cache and reach here only on first contact with a peer.
func (sn *ShardedNode) coalescerFor(k coalKey) *peerCoalescer {
	sn.coalMu.Lock() //hermesvet:ignore eventloop first-contact slow path only; steady state resolves the coalescer through the per-shard cache
	defer sn.coalMu.Unlock()
	p := sn.coal[k]
	if p == nil {
		p = &peerCoalescer{sn: sn, to: k.to, class: k.class}
		sn.coal[k] = p
	}
	return p
}

// CoalesceStats reports the egress coalescers' work: batch frames shipped,
// messages carried inside them, messages that flushed alone, and messages
// shed by full buffers.
func (sn *ShardedNode) CoalesceStats() (batches, coalesced, singles, dropped uint64) {
	return sn.batchesOut.Load(), sn.coalescedOut.Load(), sn.singlesOut.Load(), sn.droppedOut.Load()
}

// NewShardedNode builds and starts a live sharded Hermes replica on tr.
func NewShardedNode(cfg ShardedConfig, tr Transport) *ShardedNode {
	w := cfg.Shards
	if w < 1 {
		w = 1
	}
	sn := &ShardedNode{
		id:      cfg.ID,
		w:       w,
		tr:      tr,
		deliver: make([]func(proto.NodeID, any), w),
		coal:    make(map[coalKey]*peerCoalescer),
	}
	for i := 0; i < w; i++ {
		sn.shards = append(sn.shards, NewNode(NodeConfig{
			ID: cfg.ID, View: cfg.View.Clone(), MLT: cfg.MLT,
			ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs, NoLSC: cfg.NoLSC,
			TickEvery: cfg.TickEvery,
		}, &shardTransport{sn: sn, idx: uint16(i)}))
	}
	tr.SetDeliver(cfg.ID, sn.dispatch)
	return sn
}

// dispatch routes an arriving message to the shard that owns it. Tagged
// messages are delivered only when the tag matches the local owner of the
// key they carry: a peer configured with a different W computes different
// owners, and delivering its traffic to a non-owner shard would store
// values no reader ever consults — silent lost updates. Dropping instead
// makes a W mismatch stall safely (the sender's MLT keeps retransmitting)
// rather than corrupt. Untagged messages — from a plain Node or a W=1
// sharded peer, the one supported mixed deployment — route by key the same
// way.
func (sn *ShardedNode) dispatch(from proto.NodeID, msg any) {
	switch m := msg.(type) {
	case proto.ShardBatch:
		// A coalesced frame fans out: each inner message goes to its owner
		// shard under the same tag check as a standalone tagged message.
		for _, sm := range m.Msgs {
			sn.dispatchTagged(from, sm)
		}
	case proto.ShardMsg:
		sn.dispatchTagged(from, m)
	case proto.MUpdate:
		sn.applyWireMUpdate(m)
	case proto.ViewLogReq:
		// A fast-forward fetch from a rejoining or lagging peer: answer from
		// the attached view log. ALWAYS answer — an empty ViewLogResp is the
		// legal "nothing newer" — because the request consumed a send credit
		// on the requester's link that only the response repays; silently
		// dropping it would erode the peer's send window one fetch at a
		// time. The reply leaves on its own goroutine: dispatch runs on the
		// transport's read pump, and a blocking send (lazy dial, exhausted
		// credits) must not stall delivery of the data traffic behind it.
		var ups []proto.MUpdate
		if h := sn.viewHandlers.Load(); h != nil && h.ViewLog != nil {
			ups = h.ViewLog(m)
		}
		go sn.tr.Send(sn.id, from, proto.ViewLogResp{Updates: ups})
	case proto.EpochGossip:
		// Advisory epoch gossip from a peer. Only an attached controller
		// knows how to act on it (debounce, pick the newest peer, fetch);
		// without one it drops — it carries no state, only a hint.
		if h := sn.viewHandlers.Load(); h != nil && h.Gossip != nil {
			h.Gossip(from, m.Epochs)
		}
	case proto.ViewLogResp:
		// The answer to this node's own fetch: hand it to the controller
		// (which orders and counts the replay), or replay the entries
		// directly through the install path a wire MUpdate takes.
		if h := sn.viewHandlers.Load(); h != nil && h.FastForward != nil {
			h.FastForward(from, m.Updates)
			return
		}
		for _, up := range m.Updates {
			sn.applyWireMUpdate(up)
		}
	default:
		sn.deliver[sn.ownerOf(msg, 0)](from, msg)
	}
}

// applyWireMUpdate installs a wire m-update on exactly the shards it
// addresses — the per-shard epoch machinery. Installs are asynchronous: the
// dispatch pump must not block behind one busy shard's event loop (that
// would re-couple the shards the per-shard epochs decouple). Out-of-range
// targets drop, like a mis-tagged ShardMsg. Node-wide (AllShards) updates
// divert to an attached rollout controller, which rolls them across the
// shards one gate at a time instead of shutting all W at once.
func (sn *ShardedNode) applyWireMUpdate(m proto.MUpdate) {
	switch {
	case m.Shard == proto.AllShards:
		if h := sn.viewHandlers.Load(); h != nil && h.View != nil {
			h.View(m.View)
			return
		}
		for _, s := range sn.shards {
			s.installAsync(m.View)
		}
	case int(m.Shard) < sn.w:
		sn.shards[m.Shard].installAsync(m.View)
	}
}

// SetViewHandlers attaches (or, with nil, detaches) the node-level
// membership routing hooks. Safe to call while traffic is flowing.
func (sn *ShardedNode) SetViewHandlers(h *ViewHandlers) {
	sn.viewHandlers.Store(h)
}

// RequestViewLog sends a fast-forward fetch to a peer; the answer arrives
// asynchronously through dispatch (ViewHandlers.FastForward when attached,
// the direct install path otherwise).
func (sn *ShardedNode) RequestViewLog(peer proto.NodeID, req proto.ViewLogReq) {
	sn.tr.Send(sn.id, peer, req)
}

func (sn *ShardedNode) dispatchTagged(from proto.NodeID, sm proto.ShardMsg) {
	if int(sm.Shard) < sn.w && sn.ownerOf(sm.Msg, sm.Shard) == sm.Shard {
		sn.deliver[sm.Shard](from, sm.Msg)
		return
	}
	// Mis-tagged drop (W mismatch): spend the frame references wings decode
	// retained for the message's values, like every other drop path.
	core.ReleaseMsgOwners(sm.Msg)
}

// ownerOf maps a protocol message to the shard owning it locally.
// Key-carrying messages hash their key; instance-scoped traffic
// (membership checks, state-transfer chunks) has no key and keeps dflt —
// the sender's tag for tagged messages, shard 0 (where a W=1 peer's single
// engine lives) for untagged ones.
func (sn *ShardedNode) ownerOf(msg any, dflt uint16) uint16 {
	if sn.w == 1 {
		return 0
	}
	switch m := msg.(type) {
	case core.INV:
		return proto.ShardOf(m.Key, sn.w)
	case core.ACK:
		return proto.ShardOf(m.Key, sn.w)
	case core.VAL:
		return proto.ShardOf(m.Key, sn.w)
	}
	return dflt
}

// ID returns the node's ID.
func (sn *ShardedNode) ID() proto.NodeID { return sn.id }

// Shards returns the worker count W.
func (sn *ShardedNode) Shards() int { return sn.w }

// Shard exposes shard i's engine (metrics, tests).
func (sn *ShardedNode) Shard(i int) *Node { return sn.shards[i] }

// shardFor returns the engine owning key.
func (sn *ShardedNode) shardFor(key proto.Key) *Node {
	return sn.shards[proto.ShardOf(key, sn.w)]
}

// Read performs a linearizable read via the owning shard; Valid keys are
// served lock-free from that shard's store segment on the caller's
// goroutine, subject to the shard engine's read gate.
func (sn *ShardedNode) Read(ctx context.Context, key proto.Key) (proto.Value, error) {
	return sn.shardFor(key).Read(ctx, key)
}

// ReadLocal attempts the lock-free fast path against the owning shard's
// store segment on the caller's goroutine; see Node.ReadLocal.
func (sn *ShardedNode) ReadLocal(key proto.Key) (proto.Value, bool) {
	return sn.shardFor(key).ReadLocal(key)
}

// ReadLocalRetained is ReadLocal minus the defensive copy; see
// Node.ReadLocalRetained for the pin contract.
func (sn *ShardedNode) ReadLocalRetained(key proto.Key) (proto.Value, *refbuf.Buf, bool) {
	return sn.shardFor(key).ReadLocalRetained(key)
}

// SubmitAsync routes op to its owning shard's event loop and invokes fn with
// the completion; see Node.SubmitAsync for the callback contract.
func (sn *ShardedNode) SubmitAsync(op proto.ClientOp, fn func(proto.Completion)) error {
	return sn.shardFor(op.Key).SubmitAsync(op, fn)
}

// ReadStats sums the shard engines' read-side counters (total reads,
// fast-path hits, fast-path fallbacks); safe to call concurrently with
// traffic.
func (sn *ShardedNode) ReadStats() (reads, fastHits, fastMisses uint64) {
	for _, s := range sn.shards {
		r, h, m := s.ReadStats()
		reads += r
		fastHits += h
		fastMisses += m
	}
	return reads, fastHits, fastMisses
}

// Write performs a linearizable write via the owning shard.
func (sn *ShardedNode) Write(ctx context.Context, key proto.Key, val proto.Value) error {
	return sn.shardFor(key).Write(ctx, key, val)
}

// CAS performs a compare-and-swap via the owning shard.
func (sn *ShardedNode) CAS(ctx context.Context, key proto.Key, expect, val proto.Value) (bool, proto.Value, error) {
	return sn.shardFor(key).CAS(ctx, key, expect, val)
}

// FAA performs a fetch-and-add via the owning shard.
func (sn *ShardedNode) FAA(ctx context.Context, key proto.Key, delta int64) (int64, error) {
	return sn.shardFor(key).FAA(ctx, key, delta)
}

// InstallView fans the m-update out to every shard — the node-wide install a
// membership agent decides once per node. Each shard runs the full §3.4
// transition independently over its own keyspace partition: its read gate
// shuts, its in-flight epoch-tagged messages are filtered, its replays run.
func (sn *ShardedNode) InstallView(v proto.View) {
	for _, s := range sn.shards {
		s.InstallView(v)
	}
}

// InstallShardView installs an m-update on one shard only, leaving every
// other shard's epoch, read gate and in-flight traffic untouched. This is
// what localizes reconfiguration: a replay storm following shard i's install
// cannot stall reads or writes on shards j≠i (measured by `hermes-bench
// -exp reconfig`). Blocks until the target shard's event loop has completed
// the transition.
func (sn *ShardedNode) InstallShardView(shard int, v proto.View) {
	sn.shards[shard].InstallView(v)
}

// ShardLoads reports each shard's live client-op load (reads + updates
// served since construction); safe mid-traffic. The rollout controller
// orders installs by deltas of these.
func (sn *ShardedNode) ShardLoads() []uint64 {
	out := make([]uint64, sn.w)
	for i, s := range sn.shards {
		r, u := s.LoadStats()
		out[i] = r + u
	}
	return out
}

// ShardEpochs reports each shard's currently published membership epoch
// (read from the shards' atomic read-gate words; safe mid-traffic). With
// per-shard installs the epochs may legitimately differ across shards of one
// node.
func (sn *ShardedNode) ShardEpochs() []uint32 {
	out := make([]uint32, sn.w)
	for i, s := range sn.shards {
		out[i] = s.h.ReadGate().Epoch()
	}
	return out
}

// Close stops all shard engines (the transport is the caller's to close,
// as with Node).
func (sn *ShardedNode) Close() {
	for _, s := range sn.shards {
		s.Close()
	}
}

// ShardedLocal is a single-process sharded replica group over a
// ChanTransport, mirroring Local for the multi-worker engine.
type ShardedLocal struct {
	Nodes []*ShardedNode
	Tr    *ChanTransport
}

// NewShardedLocal stands up an n-replica, W-shard Hermes group in-process.
func NewShardedLocal(cfg LocalConfig, shards int) *ShardedLocal {
	ids := make([]proto.NodeID, cfg.N)
	for i := range ids {
		ids[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: ids}
	tr := NewChanTransport(ids)
	l := &ShardedLocal{Tr: tr}
	for _, id := range ids {
		l.Nodes = append(l.Nodes, NewShardedNode(ShardedConfig{
			ID: id, View: view, MLT: cfg.MLT,
			ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs, NoLSC: cfg.NoLSC,
			Shards: shards,
		}, tr))
	}
	return l
}

// Close stops all nodes and the transport.
func (l *ShardedLocal) Close() {
	for _, n := range l.Nodes {
		n.Close()
	}
	l.Tr.Close()
}
