package cluster

import (
	"context"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// ShardedNode is the multi-worker protocol engine of HermesKV (paper §4.1):
// one live node hosting W independent core.Hermes state machines, each with
// its own event-loop goroutine, kvs.Store segment and timers, each owning
// the keyspace partition proto.ShardOf selects. Writes and RMWs to keys on
// different shards commit fully in parallel — there is no cross-shard
// serialization point — while the lock-free local-read fast path is the same
// as Node's (it consults the owning shard's store directly).
//
// On the wire every protocol message is wrapped in a proto.ShardMsg so the
// receiving node can route it to the peer shard that owns the key; shard s
// of one node only ever converses with shard s of the others. All nodes of
// a cluster must therefore be configured with the same shard count. With
// Shards=1 the envelope is elided entirely: a single-shard node is
// byte-for-byte identical to a plain Node on the wire and interoperates
// with one.
//
// Membership m-updates fan out to every shard (InstallView), so the §3.4
// fault-tolerance machinery — epoch filtering, write replays, shadow-replica
// catch-up — operates per shard over that shard's slice of the keyspace.
type ShardedNode struct {
	id     proto.NodeID
	w      int
	tr     Transport
	shards []*Node
	// deliver[i] is shard i's arrival callback, captured when the shard's
	// Node registers on its shardTransport during construction.
	deliver []func(from proto.NodeID, msg any)
}

// ShardedConfig parameterizes a sharded replica. The embedded per-shard
// toggles mean exactly what they do on NodeConfig; Shards is the worker
// count W (values < 1 become 1, so the zero value degenerates to a plain
// single-engine node).
type ShardedConfig struct {
	ID   proto.NodeID
	View proto.View
	MLT  time.Duration
	// Hermes toggles (see core.Config).
	ElideVAL, EarlyACKs, NoLSC bool
	TickEvery                  time.Duration
	Shards                     int
}

// DefaultShards picks a worker count for deployments that do not choose one:
// one shard per CPU, capped — the paper's testbed runs ~20 worker threads
// per node, but beyond the core count extra shards only add scheduling
// overhead.
func DefaultShards() int {
	w := runtime.NumCPU()
	if w > 16 {
		w = 16
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shardTransport is the per-shard window onto the node's real transport: it
// tags outgoing messages with the shard index (unless W=1) and captures the
// shard's deliver callback for the node-level dispatcher instead of
// registering it with the real transport.
type shardTransport struct {
	sn  *ShardedNode
	idx uint16
}

func (t *shardTransport) Send(from, to proto.NodeID, msg any) {
	if t.sn.w == 1 {
		t.sn.tr.Send(from, to, msg)
		return
	}
	t.sn.tr.Send(from, to, proto.ShardMsg{Shard: t.idx, Msg: msg})
}

func (t *shardTransport) SetDeliver(id proto.NodeID, fn func(from proto.NodeID, msg any)) {
	t.sn.deliver[t.idx] = fn
}

func (t *shardTransport) Close() error { return nil }

// NewShardedNode builds and starts a live sharded Hermes replica on tr.
func NewShardedNode(cfg ShardedConfig, tr Transport) *ShardedNode {
	w := cfg.Shards
	if w < 1 {
		w = 1
	}
	sn := &ShardedNode{
		id:      cfg.ID,
		w:       w,
		tr:      tr,
		deliver: make([]func(proto.NodeID, any), w),
	}
	for i := 0; i < w; i++ {
		sn.shards = append(sn.shards, NewNode(NodeConfig{
			ID: cfg.ID, View: cfg.View.Clone(), MLT: cfg.MLT,
			ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs, NoLSC: cfg.NoLSC,
			TickEvery: cfg.TickEvery,
		}, &shardTransport{sn: sn, idx: uint16(i)}))
	}
	tr.SetDeliver(cfg.ID, sn.dispatch)
	return sn
}

// dispatch routes an arriving message to the shard that owns it. Tagged
// messages are delivered only when the tag matches the local owner of the
// key they carry: a peer configured with a different W computes different
// owners, and delivering its traffic to a non-owner shard would store
// values no reader ever consults — silent lost updates. Dropping instead
// makes a W mismatch stall safely (the sender's MLT keeps retransmitting)
// rather than corrupt. Untagged messages — from a plain Node or a W=1
// sharded peer, the one supported mixed deployment — route by key the same
// way.
func (sn *ShardedNode) dispatch(from proto.NodeID, msg any) {
	if sm, ok := msg.(proto.ShardMsg); ok {
		if int(sm.Shard) < sn.w && sn.ownerOf(sm.Msg, sm.Shard) == sm.Shard {
			sn.deliver[sm.Shard](from, sm.Msg)
		}
		return
	}
	sn.deliver[sn.ownerOf(msg, 0)](from, msg)
}

// ownerOf maps a protocol message to the shard owning it locally.
// Key-carrying messages hash their key; instance-scoped traffic
// (membership checks, state-transfer chunks) has no key and keeps dflt —
// the sender's tag for tagged messages, shard 0 (where a W=1 peer's single
// engine lives) for untagged ones.
func (sn *ShardedNode) ownerOf(msg any, dflt uint16) uint16 {
	if sn.w == 1 {
		return 0
	}
	switch m := msg.(type) {
	case core.INV:
		return proto.ShardOf(m.Key, sn.w)
	case core.ACK:
		return proto.ShardOf(m.Key, sn.w)
	case core.VAL:
		return proto.ShardOf(m.Key, sn.w)
	}
	return dflt
}

// ID returns the node's ID.
func (sn *ShardedNode) ID() proto.NodeID { return sn.id }

// Shards returns the worker count W.
func (sn *ShardedNode) Shards() int { return sn.w }

// Shard exposes shard i's engine (metrics, tests).
func (sn *ShardedNode) Shard(i int) *Node { return sn.shards[i] }

// shardFor returns the engine owning key.
func (sn *ShardedNode) shardFor(key proto.Key) *Node {
	return sn.shards[proto.ShardOf(key, sn.w)]
}

// Read performs a linearizable read via the owning shard; Valid keys are
// served lock-free from that shard's store segment.
func (sn *ShardedNode) Read(ctx context.Context, key proto.Key) (proto.Value, error) {
	return sn.shardFor(key).Read(ctx, key)
}

// Write performs a linearizable write via the owning shard.
func (sn *ShardedNode) Write(ctx context.Context, key proto.Key, val proto.Value) error {
	return sn.shardFor(key).Write(ctx, key, val)
}

// CAS performs a compare-and-swap via the owning shard.
func (sn *ShardedNode) CAS(ctx context.Context, key proto.Key, expect, val proto.Value) (bool, proto.Value, error) {
	return sn.shardFor(key).CAS(ctx, key, expect, val)
}

// FAA performs a fetch-and-add via the owning shard.
func (sn *ShardedNode) FAA(ctx context.Context, key proto.Key, delta int64) (int64, error) {
	return sn.shardFor(key).FAA(ctx, key, delta)
}

// InstallView fans the m-update out to every shard, preserving the §3.4
// replay machinery per keyspace partition.
func (sn *ShardedNode) InstallView(v proto.View) {
	for _, s := range sn.shards {
		s.InstallView(v)
	}
}

// Close stops all shard engines (the transport is the caller's to close,
// as with Node).
func (sn *ShardedNode) Close() {
	for _, s := range sn.shards {
		s.Close()
	}
}

// ShardedLocal is a single-process sharded replica group over a
// ChanTransport, mirroring Local for the multi-worker engine.
type ShardedLocal struct {
	Nodes []*ShardedNode
	Tr    *ChanTransport
}

// NewShardedLocal stands up an n-replica, W-shard Hermes group in-process.
func NewShardedLocal(cfg LocalConfig, shards int) *ShardedLocal {
	ids := make([]proto.NodeID, cfg.N)
	for i := range ids {
		ids[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: ids}
	tr := NewChanTransport(ids)
	l := &ShardedLocal{Tr: tr}
	for _, id := range ids {
		l.Nodes = append(l.Nodes, NewShardedNode(ShardedConfig{
			ID: id, View: view, MLT: cfg.MLT,
			ElideVAL: cfg.ElideVAL, EarlyACKs: cfg.EarlyACKs, NoLSC: cfg.NoLSC,
			Shards: shards,
		}, tr))
	}
	return l
}

// Close stops all nodes and the transport.
func (l *ShardedLocal) Close() {
	for _, n := range l.Nodes {
		n.Close()
	}
	l.Tr.Close()
}
