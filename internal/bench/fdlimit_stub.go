//go:build !unix

package bench

// raiseFDLimit is a no-op on platforms without RLIMIT_NOFILE; session
// counts are bounded by whatever the OS grants.
func raiseFDLimit() {}
