package bench

import (
	"fmt"
	"testing"
	"time"
)

// tinyScale keeps shape tests fast.
func tinyScale() Scale {
	return Scale{Sessions: 4, Warmup: 300 * time.Microsecond, Duration: 3 * time.Millisecond, Keys: 1 << 12}
}

func TestSystemsString(t *testing.T) {
	for _, s := range []System{Hermes, CRAQ, ZAB, Lockstep} {
		if s.String() == "" || s.String() == "system(?)" {
			t.Fatalf("bad name for %d", s)
		}
	}
}

// The headline result (§6.1): Hermes outperforms rCRAQ and rZAB at every
// non-zero write ratio.
func TestFig5Shape(t *testing.T) {
	sc := tinyScale()
	for _, wr := range []float64{0.05, 0.20, 0.50} {
		h := Run(Point{System: Hermes, Nodes: 5, WriteRatio: wr}, sc)
		c := Run(Point{System: CRAQ, Nodes: 5, WriteRatio: wr}, sc)
		z := Run(Point{System: ZAB, Nodes: 5, WriteRatio: wr}, sc)
		if !(h.Throughput > c.Throughput && c.Throughput > z.Throughput) {
			t.Fatalf("wr=%.2f ordering violated: hermes=%.0f craq=%.0f zab=%.0f",
				wr, h.Throughput, c.Throughput, z.Throughput)
		}
	}
}

// Read-only: all three systems serve locally and perform equivalently
// (within noise), as in §6.1.
func TestReadOnlyEquivalent(t *testing.T) {
	sc := tinyScale()
	var tputs []float64
	for _, sys := range []System{Hermes, CRAQ, ZAB} {
		res := Run(Point{System: sys, Nodes: 5, WriteRatio: 0}, sc)
		if res.MsgsSent != 0 {
			t.Fatalf("%v sent %d messages on read-only", sys, res.MsgsSent)
		}
		tputs = append(tputs, res.Throughput)
	}
	for _, tp := range tputs[1:] {
		if tp < tputs[0]*0.9 || tp > tputs[0]*1.1 {
			t.Fatalf("read-only throughputs diverge: %v", tputs)
		}
	}
}

// Write latency shape (§6.3): Hermes writes commit in ~1 RTT; CRAQ writes
// traverse the chain — several times slower at equal load.
func TestWriteLatencyShape(t *testing.T) {
	sc := tinyScale()
	h := Run(Point{System: Hermes, Nodes: 5, WriteRatio: 0.05}, sc)
	c := Run(Point{System: CRAQ, Nodes: 5, WriteRatio: 0.05}, sc)
	if c.Write.Median() < 2*h.Write.Median() {
		t.Fatalf("CRAQ write median %v not >2x Hermes %v",
			c.Write.Median(), h.Write.Median())
	}
	// Reads stay local and fast for both.
	if h.Read.Median() > h.Write.Median() || c.Read.Median() > c.Write.Median() {
		t.Fatal("read median above write median")
	}
}

// Skew shape (§6.2): CRAQ's tail melts under Zipfian reads-after-writes;
// Hermes' reads stay local. The Hermes/CRAQ gap must widen under skew at a
// high write ratio.
func TestSkewShape(t *testing.T) {
	sc := tinyScale()
	const wr = 0.5
	hu := Run(Point{System: Hermes, Nodes: 5, WriteRatio: wr}, sc)
	cu := Run(Point{System: CRAQ, Nodes: 5, WriteRatio: wr}, sc)
	hz := Run(Point{System: Hermes, Nodes: 5, WriteRatio: wr, Zipf: true}, sc)
	cz := Run(Point{System: CRAQ, Nodes: 5, WriteRatio: wr, Zipf: true}, sc)
	gapUniform := hu.Throughput / cu.Throughput
	gapZipf := hz.Throughput / cz.Throughput
	if gapZipf <= gapUniform {
		t.Fatalf("skew did not widen the gap: uniform %.2fx, zipf %.2fx", gapUniform, gapZipf)
	}
}

// Scalability shape (Fig. 7): Hermes gains read throughput with more
// replicas at 1% writes; ZAB at 20% writes must not.
func TestFig7Shape(t *testing.T) {
	sc := tinyScale()
	h3 := Run(Point{System: Hermes, Nodes: 3, WriteRatio: 0.01}, sc)
	h7 := Run(Point{System: Hermes, Nodes: 7, WriteRatio: 0.01}, sc)
	if h7.Throughput < 1.5*h3.Throughput {
		t.Fatalf("Hermes did not scale 3->7: %.0f -> %.0f", h3.Throughput, h7.Throughput)
	}
	z5 := Run(Point{System: ZAB, Nodes: 5, WriteRatio: 0.20}, sc)
	z7 := Run(Point{System: ZAB, Nodes: 7, WriteRatio: 0.20}, sc)
	if z7.Throughput > 1.2*z5.Throughput {
		t.Fatalf("ZAB 'scaled' at 20%% writes: %.0f -> %.0f (leader should cap it)", z5.Throughput, z7.Throughput)
	}
}

// Fig. 8 shape: Hermes beats the lock-step total order on write-only
// traffic, and the gap narrows as object size grows.
func TestFig8Shape(t *testing.T) {
	sc := tinyScale()
	ratio := func(size int) float64 {
		h := Run(Point{System: Hermes, Nodes: 5, WriteRatio: 1, ValueSize: size, PerByte: true}, sc)
		d := Run(Point{System: Lockstep, Nodes: 5, WriteRatio: 1, ValueSize: size, PerByte: true}, sc)
		if d.Throughput == 0 {
			t.Fatal("lockstep made no progress")
		}
		return h.Throughput / d.Throughput
	}
	r32 := ratio(32)
	r1k := ratio(1024)
	if r32 <= 1 {
		t.Fatalf("Hermes does not beat lock-step at 32B: %.2fx", r32)
	}
	if r1k >= r32 {
		t.Fatalf("gap did not narrow with size: 32B=%.2fx 1KB=%.2fx", r32, r1k)
	}
}

// Fig. 9 shape: throughput dips to (near) zero after the crash and
// recovers after the timeout at a 4-node level.
func TestFig9Shape(t *testing.T) {
	out := Fig9(Scale{Sessions: 2, Keys: 1 << 12})
	rates := out.Series["5%"]
	if len(rates) < 25 {
		t.Fatalf("series too short: %d", len(rates))
	}
	pre := avg(rates[3:9])
	dip := minOf(rates[11:14])
	rec := avg(rates[len(rates)-4:])
	if dip > pre*0.3 {
		t.Fatalf("no crash dip: pre=%.0f dip=%.0f", pre, dip)
	}
	if rec < pre*0.5 {
		t.Fatalf("no recovery: pre=%.0f rec=%.0f", pre, rec)
	}
}

func TestTablesRender(t *testing.T) {
	sc := Scale{Sessions: 1, Warmup: 100 * time.Microsecond, Duration: 500 * time.Microsecond, Keys: 256}
	for name, tb := range map[string]fmt.Stringer{
		"table2": Table2(),
		"fig5a":  Fig5a(sc),
	} {
		if tb.String() == "" {
			t.Fatalf("%s rendered empty", name)
		}
	}
}

// Ablation smoke tests: they must run and show the expected direction.
func TestAblationO1Direction(t *testing.T) {
	tb := AblationO1(tinyScale())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// Row 1 (elide=true) must report non-zero elisions.
	if tb.Rows[1][3] == "0" {
		t.Fatalf("O1 elided nothing: %v", tb.Rows[1])
	}
}

func TestAblationNoLSCDirection(t *testing.T) {
	tb := AblationNoLSC(tinyScale())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
}
