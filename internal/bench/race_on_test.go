//go:build race

package bench

// raceEnabled reports whether the race detector instruments this test
// binary. Perf-threshold assertions are skipped under it: the ~5-10x
// slowdown and serialized memory accesses make throughput retention and
// fast-path hit rates meaningless.
const raceEnabled = true
