package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestValuesReportAndJSON runs the values experiment at quick scale in a
// temp directory and checks the two properties the trajectory record exists
// to pin: INV adoption allocs/op are identical at 32B and 4KiB (a copy in
// the path would scale them), and BENCH_values.json round-trips.
func TestValuesReportAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark loops; skipped in -short/race CI lanes")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	r := Values(QuickScale())
	if r.JSONErr != nil {
		t.Fatalf("writing %s: %v", ValuesJSON, r.JSONErr)
	}
	byName := map[string]ValuesPoint{}
	for _, p := range r.Report.Points {
		if p.OpsPerSec <= 0 {
			t.Fatalf("point %s measured no throughput: %+v", p.Name, p)
		}
		byName[p.Name] = p
	}
	small, large := byName["inv-adopt/32B"], byName["inv-adopt/4KiB"]
	if small.Name == "" || large.Name == "" {
		t.Fatalf("missing adopt points in %+v", r.Report.Points)
	}
	if small.AllocsPerOp != large.AllocsPerOp {
		t.Fatalf("adopt allocs scale with value size: %d at 32B vs %d at 4KiB",
			small.AllocsPerOp, large.AllocsPerOp)
	}
	for _, name := range []string{"read-retained/4KiB", "resp-encode/16x64B"} {
		if p := byName[name]; p.AllocsPerOp != 0 {
			t.Fatalf("%s allocates %d/op; want 0", name, p.AllocsPerOp)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, ValuesJSON))
	if err != nil {
		t.Fatal(err)
	}
	var back ValuesReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", ValuesJSON, err)
	}
	if back.Experiment != "values" || len(back.Points) != len(r.Report.Points) {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
}
