package bench

import (
	"runtime"
	"testing"
	"time"
)

// The fast path must serve essentially every read of a preloaded, mostly
// quiescent keyspace: this is the hit-rate half of the acceptance bar.
func TestLiveReadFastPathHitRate(t *testing.T) {
	r := RunReadPoint(4, 4, 1.0, 30*time.Millisecond, false)
	if r.Reads == 0 {
		t.Fatal("no reads completed")
	}
	if hr := r.HitRate(); hr < 0.9 {
		t.Fatalf("fast-path hit rate %.3f < 0.9 (hits=%d misses=%d reads=%d)",
			hr, r.FastHits, r.FastMisses, r.Reads)
	}
}

// In NoLSC mode every read must take the §8 speculative Submit path: the
// fast path is provably disabled (hit rate exactly 0).
func TestLiveReadFastPathDisabledUnderNoLSC(t *testing.T) {
	r := RunReadPoint(1, 2, 1.0, 20*time.Millisecond, true)
	if r.Reads == 0 {
		t.Fatal("no reads completed")
	}
	if r.FastHits != 0 {
		t.Fatalf("NoLSC: %d fast-path hits, want 0", r.FastHits)
	}
}

// Read throughput must scale with client goroutines well beyond what one
// event loop could serialize — the point of serving Valid reads on the
// caller's goroutine. The threshold is deliberately below the measured
// speedup (typically >3x on 8 clients) to stay robust on loaded CI hosts.
func TestLiveReadScalingBeyondEventLoop(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput-scaling thresholds are meaningless under the race detector's slowdown")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs to observe parallel read scaling, have %d", runtime.NumCPU())
	}
	r1 := RunReadPoint(4, 1, 0.95, 40*time.Millisecond, false)
	r8 := RunReadPoint(4, 8, 0.95, 40*time.Millisecond, false)
	if r1.Reads == 0 || r8.Reads == 0 {
		t.Fatalf("no reads completed: %d / %d", r1.Reads, r8.Reads)
	}
	if s := r8.ReadTput() / r1.ReadTput(); s < 1.5 {
		t.Fatalf("8 clients only %.2fx the read throughput of 1 (want >=1.5x): %.0f vs %.0f reads/s",
			s, r8.ReadTput(), r1.ReadTput())
	}
}
