//go:build unix

package bench

import "syscall"

// raiseFDLimit lifts RLIMIT_NOFILE to its hard maximum: the clients
// experiment opens thousands of TCP sessions (each one fd on the client
// side and one on the server side, in-process), which overruns the common
// 1024 soft default long before the workload is interesting.
func raiseFDLimit() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}
