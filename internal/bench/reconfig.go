package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/stats"
)

// This file measures the LIVE payoff of per-shard membership epochs: when
// one shard rides out an install/replay storm — back-to-back m-updates with
// writes in flight, every install shutting the read gate and epoch-filtering
// the in-flight traffic of the shards it touches — how much throughput do the
// *untouched* shards keep? With shard-targeted installs (InstallShardView)
// the storm never touches shards j≠hot, so their readers stay on the
// lock-free fast path at full speed; with the node-wide installs this
// experiment uses as its control, every install shuts every shard's gate and
// retags every shard's traffic, and the collateral damage shows up as lost
// reads, lost fast-path hits and stalled writes on shards that had nothing
// to reconfigure.

// reconfigKeys is the preloaded keyspace; keys spread over all shards.
const reconfigKeys = 256

// reconfigInstallEvery paces the storm: one install per this interval on
// every node, sustained through the storm window — a reconfiguration rate
// far beyond any real membership churn, which is the point of a storm.
const reconfigInstallEvery = 200 * time.Microsecond

// ReconfigPointResult is one measured storm run: per-shard read/write
// counts for equal-length baseline and storm windows, plus fast-path
// hit/miss deltas for the storm window.
type ReconfigPointResult struct {
	Shards, Hot int
	Installs    uint64

	BaseReads, StormReads   []uint64
	BaseWrites, StormWrites []uint64
	StormHits, StormMisses  []uint64

	// EpochsAfter is node 0's per-shard epochs when the storm ends —
	// evidence of which shards the storm actually touched.
	EpochsAfter []uint32
}

// ReadRetention returns shard s's storm-window read throughput as a
// fraction of its baseline.
func (r ReconfigPointResult) ReadRetention(s int) float64 {
	if r.BaseReads[s] == 0 {
		return 0
	}
	return float64(r.StormReads[s]) / float64(r.BaseReads[s])
}

// WriteRetention is the write-side analogue of ReadRetention.
func (r ReconfigPointResult) WriteRetention(s int) float64 {
	if r.BaseWrites[s] == 0 {
		return 0
	}
	return float64(r.StormWrites[s]) / float64(r.BaseWrites[s])
}

// StormHitRate returns shard s's fast-path hit rate during the storm.
func (r ReconfigPointResult) StormHitRate(s int) float64 {
	total := r.StormHits[s] + r.StormMisses[s]
	if total == 0 {
		return 0
	}
	return float64(r.StormHits[s]) / float64(total)
}

// untouchedMin folds fn over the shards the storm did not target and
// returns the minimum — the worst collateral damage.
func (r ReconfigPointResult) untouchedMin(fn func(int) float64) float64 {
	min := -1.0
	for s := 0; s < r.Shards; s++ {
		if s == r.Hot {
			continue
		}
		if v := fn(s); min < 0 || v < min {
			min = v
		}
	}
	return min
}

// UntouchedMinReadRetention is the acceptance number: the worst untouched
// shard's storm-window read throughput relative to baseline.
func (r ReconfigPointResult) UntouchedMinReadRetention() float64 {
	return r.untouchedMin(r.ReadRetention)
}

// UntouchedMinWriteRetention is the write-side analogue.
func (r ReconfigPointResult) UntouchedMinWriteRetention() float64 {
	return r.untouchedMin(r.WriteRetention)
}

// UntouchedMinStormHitRate is the worst untouched shard's fast-path hit
// rate during the storm.
func (r ReconfigPointResult) UntouchedMinStormHitRate() float64 {
	return r.untouchedMin(r.StormHitRate)
}

// RunReconfigPoint stands up a live 3-replica, `shards`-shard group, drives
// one reader and one writer goroutine per shard against node 0, measures a
// baseline window of dur, then sustains an install storm — per-shard
// installs targeting only shard `hot` when global is false, node-wide
// installs (the pre-localization behaviour) when global is true — for a
// second window of dur and reports both.
func RunReconfigPoint(shards int, global bool, dur time.Duration) ReconfigPointResult {
	grp := cluster.NewShardedLocal(cluster.LocalConfig{N: 3, MLT: 2 * time.Millisecond}, shards)
	defer grp.Close()
	ctx := context.Background()
	node := grp.Nodes[0]
	const hot = 0

	// Preload and bucket the keyspace by owning shard.
	shardKeys := make([][]proto.Key, shards)
	for k := proto.Key(0); k < reconfigKeys; k++ {
		s := proto.ShardOf(k, shards)
		shardKeys[s] = append(shardKeys[s], k)
		if err := node.Write(ctx, k, proto.Value("reconfig-seed")); err != nil {
			panic(fmt.Sprintf("bench: preload: %v", err))
		}
	}

	reads := make([]atomic.Uint64, shards)
	writes := make([]atomic.Uint64, shards)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) { // reader: loop over this shard's keys
			defer wg.Done()
			keys := shardKeys[s]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := node.Read(ctx, keys[i%len(keys)]); err == nil {
					reads[s].Add(1)
				}
				// Yield between reads: a 40ns fast-path loop per shard would
				// otherwise monopolize small hosts and starve the event
				// loops, turning the measurement into scheduler noise. The
				// retention *ratios* are what this experiment reports, and
				// they survive the yield on any core count.
				runtime.Gosched()
			}
		}(s)
		wg.Add(1)
		go func(s int) { // writer: keeps update traffic in flight on the shard
			defer wg.Done()
			keys := shardKeys[s]
			val := proto.Value("reconfig-write-32-byte-payload!!")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				wctx, cancel := context.WithTimeout(ctx, time.Second)
				err := node.Write(wctx, keys[i%len(keys)], val)
				cancel()
				if err == nil {
					writes[s].Add(1)
				}
			}
		}(s)
	}

	snap := func() (rd, wr, hit, miss []uint64) {
		rd = make([]uint64, shards)
		wr = make([]uint64, shards)
		hit = make([]uint64, shards)
		miss = make([]uint64, shards)
		for s := 0; s < shards; s++ {
			rd[s] = reads[s].Load()
			wr[s] = writes[s].Load()
			_, h, m := node.Shard(s).ReadStats()
			hit[s], miss[s] = h, m
		}
		return
	}
	delta := func(a, b []uint64) []uint64 {
		out := make([]uint64, len(a))
		for i := range a {
			out[i] = b[i] - a[i]
		}
		return out
	}

	time.Sleep(dur / 4) // warm-up
	r0, w0, _, _ := snap()
	time.Sleep(dur)
	r1, w1, h1, m1 := snap()

	// Storm: sustained installs until the window closes. Every node gets
	// each install, as a membership service's commit fan-out would do.
	res := ReconfigPointResult{Shards: shards, Hot: hot}
	epoch := uint32(1)
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		epoch++
		v := proto.View{Epoch: epoch, Members: []proto.NodeID{0, 1, 2}}
		for _, n := range grp.Nodes {
			if global {
				n.InstallView(v)
			} else {
				n.InstallShardView(hot, v)
			}
		}
		res.Installs++
		time.Sleep(reconfigInstallEvery)
	}
	r2, w2, h2, m2 := snap()
	close(stop)
	wg.Wait()

	res.BaseReads, res.BaseWrites = delta(r0, r1), delta(w0, w1)
	res.StormReads, res.StormWrites = delta(r1, r2), delta(w1, w2)
	res.StormHits, res.StormMisses = delta(h1, h2), delta(m1, m2)
	res.EpochsAfter = node.ShardEpochs()
	return res
}

// RolloutPointResult is one measured full-view rollout storm: every issued
// view reconfigures ALL shards (the membership agent's node-wide decision),
// either staggered one gate at a time through cluster.RolloutController or
// installed on every shard simultaneously (the pre-controller behaviour).
// Reads/writes are aggregated across all shards — with full-view rollouts
// there is no untouched shard, so the aggregate is the availability number.
type RolloutPointResult struct {
	Shards    int
	Issued    uint64 // views fed to the nodes
	Installed uint64 // per-shard installs actually performed (node 0)
	Skipped   uint64 // installs skipped by supersede fast-forward (node 0)

	BaseReads, StormReads   uint64
	BaseWrites, StormWrites uint64
	StormHits, StormMisses  uint64

	EpochsAfter []uint32
}

// AggReadRetention is the acceptance number: storm-window aggregate read
// throughput as a fraction of baseline.
func (r RolloutPointResult) AggReadRetention() float64 {
	if r.BaseReads == 0 {
		return 0
	}
	return float64(r.StormReads) / float64(r.BaseReads)
}

// AggWriteRetention is the write-side analogue.
func (r RolloutPointResult) AggWriteRetention() float64 {
	if r.BaseWrites == 0 {
		return 0
	}
	return float64(r.StormWrites) / float64(r.BaseWrites)
}

// StormHitRate is the aggregate fast-path hit rate during the storm.
func (r RolloutPointResult) StormHitRate() float64 {
	total := r.StormHits + r.StormMisses
	if total == 0 {
		return 0
	}
	return float64(r.StormHits) / float64(total)
}

// RunRolloutPoint stands up a live 3-replica, `shards`-shard group under
// per-shard readers and writers on node 0, measures a baseline window, then
// sustains a full-view install storm — every view addressed to every shard —
// for a second window. With staggered=true each node runs a
// RolloutController (at most one gate shut at any moment, coolest shard
// first, newest view wins mid-roll); with staggered=false every view shuts
// all W gates at once on every node.
func RunRolloutPoint(shards int, staggered bool, dur time.Duration) RolloutPointResult {
	grp := cluster.NewShardedLocal(cluster.LocalConfig{N: 3, MLT: 2 * time.Millisecond}, shards)
	defer grp.Close()
	ctx := context.Background()
	node := grp.Nodes[0]

	var rcs []*cluster.RolloutController
	if staggered {
		for _, n := range grp.Nodes {
			rc := cluster.NewRolloutController(n, cluster.RolloutConfig{})
			defer rc.Close()
			rcs = append(rcs, rc)
		}
	}

	shardKeys := make([][]proto.Key, shards)
	for k := proto.Key(0); k < reconfigKeys; k++ {
		s := proto.ShardOf(k, shards)
		shardKeys[s] = append(shardKeys[s], k)
		if err := node.Write(ctx, k, proto.Value("rollout-seed")); err != nil {
			panic(fmt.Sprintf("bench: preload: %v", err))
		}
	}

	reads := make([]atomic.Uint64, shards)
	writes := make([]atomic.Uint64, shards)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			keys := shardKeys[s]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := node.Read(ctx, keys[i%len(keys)]); err == nil {
					reads[s].Add(1)
				}
				runtime.Gosched() // see RunReconfigPoint
			}
		}(s)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			keys := shardKeys[s]
			val := proto.Value("rollout-write-32-byte-payload!!!")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				wctx, cancel := context.WithTimeout(ctx, time.Second)
				err := node.Write(wctx, keys[i%len(keys)], val)
				cancel()
				if err == nil {
					writes[s].Add(1)
				}
			}
		}(s)
	}

	snap := func() (rd, wr, hit, miss uint64) {
		for s := 0; s < shards; s++ {
			rd += reads[s].Load()
			wr += writes[s].Load()
			_, h, m := node.Shard(s).ReadStats()
			hit += h
			miss += m
		}
		return
	}

	time.Sleep(dur / 4) // warm-up
	r0, w0, _, _ := snap()
	time.Sleep(dur)
	r1, w1, h1, m1 := snap()

	res := RolloutPointResult{Shards: shards}
	epoch := uint32(1)
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		epoch++
		v := proto.View{Epoch: epoch, Members: []proto.NodeID{0, 1, 2}}
		if staggered {
			for _, rc := range rcs {
				rc.OnView(v)
			}
		} else {
			for _, n := range grp.Nodes {
				n.InstallView(v)
			}
		}
		res.Issued++
		time.Sleep(reconfigInstallEvery)
	}
	r2, w2, h2, m2 := snap()
	if staggered {
		st := rcs[0].Stats()
		res.Installed, res.Skipped = st.ShardInstalls, st.SkippedInstalls
	} else {
		res.Installed = res.Issued * uint64(shards)
	}
	close(stop)
	wg.Wait()

	res.BaseReads, res.BaseWrites = r1-r0, w1-w0
	res.StormReads, res.StormWrites = r2-r1, w2-w1
	res.StormHits, res.StormMisses = h2-h1, m2-m1
	res.EpochsAfter = node.ShardEpochs()
	return res
}

// ReconfigAvailability is `hermes-bench -exp reconfig`: one row per install
// mode. The per-shard/global pair reproduces the PR 4 experiment (a storm
// on ONE shard; the headline is what the untouched shards keep); the
// rollout pair storms FULL views through every shard and compares the
// staggered controller against simultaneous all-gates installs — there the
// aggregate read retention is the headline, and hot/untouched columns do
// not apply.
func ReconfigAvailability(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{
		"mode", "rollout", "installs", "agg-rd-ret%", "agg-wr-ret%", "agg-hit%",
		"hot-rd-ret%", "untouched-rd-ret%", "untouched-hit%", "untouched-wr-ret%",
	}}
	dur := readBenchDur(sc)
	pct := func(v float64) string { return fmt.Sprintf("%.1f", 100*v) }
	for _, global := range []bool{false, true} {
		mode := "per-shard"
		if global {
			mode = "global"
		}
		r := RunReconfigPoint(4, global, dur)
		aggBase, aggStorm := uint64(0), uint64(0)
		aggWrBase, aggWrStorm := uint64(0), uint64(0)
		hits, misses := uint64(0), uint64(0)
		for s := 0; s < r.Shards; s++ {
			aggBase += r.BaseReads[s]
			aggStorm += r.StormReads[s]
			aggWrBase += r.BaseWrites[s]
			aggWrStorm += r.StormWrites[s]
			hits += r.StormHits[s]
			misses += r.StormMisses[s]
		}
		aggRet, aggWrRet, aggHit := 0.0, 0.0, 0.0
		if aggBase > 0 {
			aggRet = float64(aggStorm) / float64(aggBase)
		}
		if aggWrBase > 0 {
			aggWrRet = float64(aggWrStorm) / float64(aggWrBase)
		}
		if hits+misses > 0 {
			aggHit = float64(hits) / float64(hits+misses)
		}
		t.AddRow(mode, "-", r.Installs,
			pct(aggRet), pct(aggWrRet), pct(aggHit),
			pct(r.ReadRetention(r.Hot)),
			pct(r.UntouchedMinReadRetention()),
			pct(r.UntouchedMinStormHitRate()),
			pct(r.UntouchedMinWriteRetention()))
	}
	for _, staggered := range []bool{true, false} {
		rollout := "staggered"
		if !staggered {
			rollout = "simultaneous"
		}
		r := RunRolloutPoint(4, staggered, dur)
		t.AddRow("full-view", rollout, r.Issued,
			pct(r.AggReadRetention()), pct(r.AggWriteRetention()), pct(r.StormHitRate()),
			"-", "-", "-", "-")
	}
	return t
}
