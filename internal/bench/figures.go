package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// writeRatios is the x-axis of Figs. 5 and 6b/6c.
var writeRatios = []float64{0.01, 0.05, 0.20, 0.50, 0.75, 1.00}

// throughputSystems are the three systems of Figs. 5-7.
var throughputSystems = []System{Hermes, CRAQ, ZAB}

// Fig5a: throughput (Mreq/s) vs write ratio, uniform access, 5 nodes.
func Fig5a(sc Scale) *stats.Table {
	return fig5(sc, false)
}

// Fig5b: throughput vs write ratio under Zipfian(0.99) skew, 5 nodes.
func Fig5b(sc Scale) *stats.Table {
	return fig5(sc, true)
}

func fig5(sc Scale, zipf bool) *stats.Table {
	t := &stats.Table{Header: []string{"write%", "HermesKV(M/s)", "rCRAQ(M/s)", "rZAB(M/s)"}}
	for _, wr := range writeRatios {
		row := []any{fmt.Sprintf("%.0f", wr*100)}
		for _, sys := range throughputSystems {
			res := Run(Point{System: sys, Nodes: 5, WriteRatio: wr, Zipf: zipf}, sc)
			row = append(row, Mops(res.Throughput))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig6a: median and 99th-percentile latency vs throughput at 5% writes,
// uniform traffic, 5 nodes; load swept by session count.
func Fig6a(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"system", "sessions", "tput(M/s)", "p50(us)", "p99(us)"}}
	for _, sys := range throughputSystems {
		for _, sess := range []int{1, 2, 4, 8, 16, 32} {
			res := Run(Point{System: sys, Nodes: 5, WriteRatio: 0.05, Sessions: sess}, sc)
			t.AddRow(sys.String(), sess, Mops(res.Throughput),
				Micros(res.All.Median()), Micros(res.All.P99()))
		}
	}
	return t
}

// Fig6b: read and write median/99th latency vs write ratio, uniform.
func Fig6b(sc Scale) *stats.Table { return fig6latency(sc, false) }

// Fig6c: same under Zipfian(0.99) skew.
func Fig6c(sc Scale) *stats.Table { return fig6latency(sc, true) }

func fig6latency(sc Scale, zipf bool) *stats.Table {
	t := &stats.Table{Header: []string{
		"system", "write%", "rd-p50(us)", "rd-p99(us)", "wr-p50(us)", "wr-p99(us)"}}
	for _, sys := range []System{Hermes, CRAQ} {
		for _, wr := range writeRatios {
			res := Run(Point{System: sys, Nodes: 5, WriteRatio: wr, Zipf: zipf}, sc)
			t.AddRow(sys.String(), fmt.Sprintf("%.0f", wr*100),
				Micros(res.Read.Median()), Micros(res.Read.P99()),
				Micros(res.Write.Median()), Micros(res.Write.P99()))
		}
	}
	return t
}

// Fig7: throughput scalability across 3/5/7 replicas at 1% and 20% writes.
func Fig7(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"write%", "system", "3 nodes(M/s)", "5 nodes(M/s)", "7 nodes(M/s)"}}
	for _, wr := range []float64{0.01, 0.20} {
		for _, sys := range throughputSystems {
			row := []any{fmt.Sprintf("%.0f", wr*100), sys.String()}
			for _, n := range []int{3, 5, 7} {
				res := Run(Point{System: sys, Nodes: n, WriteRatio: wr}, sc)
				row = append(row, Mops(res.Throughput))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig8: write-only throughput vs object size, Hermes vs the Derecho-like
// lock-step total order. One pipelining worker per node on each side (the
// paper limits HermesKV to a single thread; a thread still serves many
// concurrent client requests). Per-byte costs enabled.
func Fig8(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"size(B)", "HermesKV(M/s)", "Derecho-like(M/s)", "ratio"}}
	for _, size := range []int{32, 256, 1024} {
		h := Run(Point{System: Hermes, Nodes: 5, WriteRatio: 1, ValueSize: size, PerByte: true}, sc)
		d := Run(Point{System: Lockstep, Nodes: 5, WriteRatio: 1, ValueSize: size, PerByte: true}, sc)
		ratio := 0.0
		if d.Throughput > 0 {
			ratio = h.Throughput / d.Throughput
		}
		t.AddRow(size, Mops(h.Throughput), Mops(d.Throughput), ratio)
	}
	return t
}

// Fig9Result carries the failure experiment's series.
type Fig9Result struct {
	Table  *stats.Table
	Series map[string][]float64 // per write-ratio rate curves
}

// Fig9: HermesKV throughput over time with a node failure at 1/3 of the
// run and RM-driven recovery (suspicion + lease expiry ≈ the paper's 150ms
// timeout, scaled to simulator time).
func Fig9(sc Scale) Fig9Result {
	const (
		runFor     = 30 * time.Millisecond
		crashAt    = 10 * time.Millisecond
		bucket     = time.Millisecond
		suspect    = time.Millisecond
		lease      = 2 * time.Millisecond
		heartbeats = 200 * time.Microsecond
	)
	out := Fig9Result{
		Table:  &stats.Table{Header: []string{"write%", "pre-crash(M/s)", "dip(M/s)", "recovered(M/s)", "recovery(ms)"}},
		Series: map[string][]float64{},
	}
	for _, wr := range []float64{0.01, 0.05, 0.20} {
		c := sim.New(sim.Config{
			Nodes:   5,
			Factory: HermesFactory(func(cc *core.Config) { cc.MLT = 2 * time.Millisecond }),
			Net:     sim.DefaultNet(),
			Seed:    9,
			SizeOf:  SizeOf,
			RM: &sim.RMParams{
				HeartbeatEvery: heartbeats,
				SuspectAfter:   suspect,
				LeaseDur:       lease,
			},
		})
		c.CrashAt(4, crashAt)
		res := c.RunWorkload(sim.WorkloadParams{
			Workload:        workload.Config{Keys: sc.Keys, WriteRatio: wr, ValueSize: 32},
			SessionsPerNode: sessionsOr(sc, 4),
			Duration:        runFor,
			SeriesBucket:    bucket,
			Seed:            3,
		})
		rates := res.Series.Rates()
		label := fmt.Sprintf("%.0f%%", wr*100)
		out.Series[label] = rates
		pre := avg(rates[3:9])
		crashBkt := int(crashAt / bucket)
		dip := minOf(rates[crashBkt+1 : crashBkt+3])
		rec := avg(rates[len(rates)-4:])
		recMs := -1.0
		for i := crashBkt; i < len(rates); i++ {
			if rates[i] > pre/2 {
				recMs = float64(i)*bucket.Seconds()*1e3 - crashAt.Seconds()*1e3
				break
			}
		}
		out.Table.AddRow(label, Mops(pre), Mops(dip), Mops(rec), recMs)
	}
	return out
}

func sessionsOr(sc Scale, def int) int {
	if sc.Sessions > 0 {
		return sc.Sessions
	}
	return def
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Table2 renders the systems' qualitative feature comparison (paper
// Table 2); values are properties of the implementations in this repo.
func Table2() *stats.Table {
	t := &stats.Table{Header: []string{
		"system", "local-reads", "leases", "consistency", "write-concurrency", "write-RTT", "decentralized"}}
	t.AddRow("HermesKV", "yes", "one per RM", "Lin", "inter-key", "1", "yes")
	t.AddRow("rCRAQ", "yes", "one per RM", "Lin", "inter-key", "O(n)", "no")
	t.AddRow("rZAB", "yes (SC)", "none", "SC", "serializes all", "2", "no")
	t.AddRow("Derecho-like", "yes (SC)", "none", "SC", "serializes all", "1 (lock-step)", "yes")
	return t
}

// --- Ablations beyond the paper's figures (design-choice benches) ---

// AblationO1 measures VAL traffic saved by eliding unnecessary validations
// under heavy same-key contention.
func AblationO1(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"elideVAL", "tput(M/s)", "VALs", "elided"}}
	for _, elide := range []bool{false, true} {
		elide := elide
		c := sim.New(sim.Config{
			Nodes:   5,
			Factory: HermesFactory(func(cc *core.Config) { cc.ElideVAL = elide }),
			Net:     sim.DefaultNet(),
			Seed:    4,
			SizeOf:  SizeOf,
		})
		res := c.RunWorkload(sim.WorkloadParams{
			Workload:        workload.Config{Keys: 8, WriteRatio: 1, ValueSize: 32}, // hot keys: constant conflicts
			SessionsPerNode: sessionsOr(sc, 4),
			Warmup:          sc.Warmup,
			Duration:        sc.Duration,
			Seed:            2,
		})
		var vals, elided uint64
		for id := proto.NodeID(0); id < 5; id++ {
			m := c.Replica(id).(*core.Hermes).Metrics()
			vals += m.VALsSent
			elided += m.VALsElided
		}
		t.AddRow(elide, Mops(res.Throughput), vals, elided)
	}
	return t
}

// AblationO2 measures conflict-win fairness with and without virtual node
// IDs: the share of same-version conflicts won by the lowest-ID node.
func AblationO2(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"virtualIDs", "node0-wins%", "node4-wins%", "stdev%"}}
	for _, k := range []int{1, 8} {
		k := k
		c := sim.New(sim.Config{
			Nodes: 5,
			Factory: HermesFactory(func(cc *core.Config) {
				if k > 1 {
					cc.VirtualIDs = core.VirtualIDs(cc.ID, 5, k)
					cc.CIDOwner = core.StrideOwner(5)
				}
			}),
			Net:    sim.DefaultNet(),
			Seed:   5,
			SizeOf: SizeOf,
		})
		c.RunWorkload(sim.WorkloadParams{
			Workload:        workload.Config{Keys: 4, WriteRatio: 1, ValueSize: 8},
			SessionsPerNode: sessionsOr(sc, 4),
			Warmup:          sc.Warmup,
			Duration:        sc.Duration,
			Seed:            6,
		})
		// Wins: whose cid owns the final committed timestamps? Sample the
		// stores: count keys whose winning cid maps to each node.
		wins := make([]float64, 5)
		total := 0.0
		owner := core.StrideOwner(5)
		for k2 := proto.Key(0); k2 < 4; k2++ {
			h := c.Replica(0).(*core.Hermes)
			if e, ok := h.Store().Get(k2); ok {
				wins[owner(e.TS.CID)]++
				total++
			}
		}
		// Final snapshot is a small sample; complement with metrics on
		// aborts/trans? Report share of node 0 and node 4 wins.
		p0, p4 := 0.0, 0.0
		if total > 0 {
			p0, p4 = wins[0]/total*100, wins[4]/total*100
		}
		sm := stats.Summarize(wins)
		t.AddRow(k > 1, p0, p4, sm.Stdev/total*100)
	}
	return t
}

// AblationO3 measures the read-blocking latency reduction of broadcast
// ACKs under contention.
func AblationO3(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"earlyACKs", "rd-p99(us)", "wr-p50(us)", "VALs", "ACKs"}}
	for _, early := range []bool{false, true} {
		early := early
		c := sim.New(sim.Config{
			Nodes:   5,
			Factory: HermesFactory(func(cc *core.Config) { cc.EarlyACKs = early; cc.ElideVAL = false }),
			Net:     sim.DefaultNet(),
			Seed:    7,
			SizeOf:  SizeOf,
		})
		res := c.RunWorkload(sim.WorkloadParams{
			Workload:        workload.Config{Keys: 64, WriteRatio: 0.5, ValueSize: 32, Zipf: true, ZipfTheta: 0.99},
			SessionsPerNode: sessionsOr(sc, 4),
			Warmup:          sc.Warmup,
			Duration:        sc.Duration,
			Seed:            8,
		})
		var vals, acks uint64
		for id := proto.NodeID(0); id < 5; id++ {
			m := c.Replica(id).(*core.Hermes).Metrics()
			vals += m.VALsSent
			acks += m.ACKsSent
		}
		t.AddRow(early, Micros(res.Read.P99()), Micros(res.Write.Median()), vals, acks)
	}
	return t
}

// AblationNoLSC measures the §8 clock-free read validation cost: read
// latency with and without loosely synchronized clocks.
func AblationNoLSC(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{"mode", "rd-p50(us)", "rd-p99(us)", "tput(M/s)", "mchecks"}}
	for _, nolsc := range []bool{false, true} {
		nolsc := nolsc
		c := sim.New(sim.Config{
			Nodes:     5,
			Factory:   HermesFactory(func(cc *core.Config) { cc.NoLSC = nolsc }),
			Net:       sim.DefaultNet(),
			Seed:      11,
			SizeOf:    SizeOf,
			TickEvery: 20 * time.Microsecond, // mchecks piggyback on ticks
		})
		res := c.RunWorkload(sim.WorkloadParams{
			Workload:        workload.Config{Keys: sc.Keys, WriteRatio: 0.05, ValueSize: 32},
			SessionsPerNode: sessionsOr(sc, 4),
			Warmup:          sc.Warmup,
			Duration:        sc.Duration,
			Seed:            12,
		})
		var checks uint64
		for id := proto.NodeID(0); id < 5; id++ {
			checks += c.Replica(id).(*core.Hermes).Metrics().MChecks
		}
		mode := "LSC leases"
		if nolsc {
			mode = "no-LSC (§8)"
		}
		t.AddRow(mode, Micros(res.Read.Median()), Micros(res.Read.P99()), Mops(res.Throughput), checks)
	}
	return t
}
