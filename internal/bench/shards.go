package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ShardWorkerOf routes simulated work to the host worker owning its key —
// the cost-model counterpart of the live ShardedNode's dispatch: client ops
// and key-carrying protocol messages go to ShardOf(key); instance-scoped
// traffic (membership checks, chunk transfer) to worker 0.
func ShardWorkerOf(w int) func(msg any) int {
	return func(msg any) int {
		switch m := msg.(type) {
		case proto.ClientOp:
			return int(proto.ShardOf(m.Key, w))
		case core.INV:
			return int(proto.ShardOf(m.Key, w))
		case core.ACK:
			return int(proto.ShardOf(m.Key, w))
		case core.VAL:
			return int(proto.ShardOf(m.Key, w))
		}
		return 0
	}
}

// coalesceWindow approximates how long the live per-peer flusher gathers
// messages while its previous wire write is in flight — on the order of the
// fabric's base latency.
const coalesceWindow = time.Microsecond

// shardCounts are the x-axis of the scaling run: 1 worker up to the paper's
// multi-worker regime.
var shardCounts = []int{1, 2, 4, 8}

// ShardScaling measures aggregate committed-write throughput of a 3-node
// Hermes group as the per-node engine is sharded across 1→W workers, on a
// uniform-random-key, write-only workload. With every key's full update
// pipeline — submit, INV handling at followers, ACK handling at the
// coordinator — pinned to the key's shard worker, writes to different
// shards commit fully in parallel and throughput scales with W until the
// offered load (closed-loop sessions) runs out. Per-shard columns report
// the min/max committed-writes/s across shards (uniform keys keep them
// close) and the worker utilization spread.
//
// At W>1 cross-shard egress coalescing is on, as in the live ShardedNode:
// frames/wr counts wire frames per committed write (what the coalescer
// cuts), msgs/wr counts protocol messages per committed write (invariant
// under coalescing — the protocol still exchanges the same INVs and ACKs).
func ShardScaling(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{
		"shards", "writes/s(M)", "speedup", "p50(us)", "p99(us)",
		"frames/wr", "msgs/wr", "shard-min(M/s)", "shard-max(M/s)", "util%",
	}}
	var base float64
	for _, w := range shardCounts {
		perShard := make([]uint64, w)
		res, c := runShardPoint(sc, w, w > 1, func(comp proto.Completion) {
			perShard[proto.ShardOf(comp.Key, w)]++
		})
		if w == shardCounts[0] {
			base = res.Throughput
		}
		minC, maxC := perShard[0], perShard[0]
		for _, n := range perShard[1:] {
			if n < minC {
				minC = n
			}
			if n > maxC {
				maxC = n
			}
		}
		secs := sc.Duration.Seconds()
		util := 0.0
		for _, u := range c.Utilization() {
			util += u
		}
		util /= 3
		t.AddRow(w, Mops(res.Throughput),
			fmt.Sprintf("%.2fx", res.Throughput/base),
			Micros(res.All.Median()), Micros(res.All.P99()),
			fmt.Sprintf("%.2f", float64(res.FramesSent)/float64(res.Ops)),
			fmt.Sprintf("%.2f", float64(res.MsgsSent)/float64(res.Ops)),
			Mops(float64(minC)/secs), Mops(float64(maxC)/secs),
			fmt.Sprintf("%.0f", util*100))
	}
	return t
}

// runShardPoint measures one shard count of the scaling experiment: a
// 3-node Hermes group, write-only uniform workload, with enough closed-loop
// concurrency (32× the scale's sessions) to saturate the widest engine —
// closed-loop sessions must cover capacity × latency.
func runShardPoint(sc Scale, w int, coalesce bool, observer func(proto.Completion)) (sim.Result, *sim.Cluster) {
	cfg := sim.Config{
		Nodes:    3,
		Factory:  Factory(Hermes),
		Net:      sim.DefaultNet(),
		Costs:    sim.DefaultCosts(),
		Seed:     11,
		SizeOf:   SizeOf,
		Workers:  w,
		WorkerOf: ShardWorkerOf(w),
	}
	if coalesce {
		// core.Coalescable is the live coalescer's own target predicate, so
		// the simulated wire models exactly what ShardedNode batches.
		cfg.CoalesceWindow = coalesceWindow
		cfg.Coalescable = core.Coalescable
	}
	c := sim.New(cfg)
	res := c.RunWorkload(sim.WorkloadParams{
		Workload: workload.Config{
			Keys:       sc.Keys,
			WriteRatio: 1.0,
			ValueSize:  32,
		},
		SessionsPerNode: 32 * sc.Sessions,
		Warmup:          sc.Warmup,
		Duration:        sc.Duration,
		Observer:        observer,
		Seed:            17,
	})
	return res, c
}

// ShardScalingSpeedup runs the scaling measurement at two shard counts and
// returns their aggregate committed-write throughputs (the acceptance
// check W=4 ≥ 2×W=1 uses it; keeps the table rendering out of tests).
func ShardScalingSpeedup(sc Scale, w1, w2 int) (float64, float64) {
	r1, _ := runShardPoint(sc, w1, w1 > 1, nil)
	r2, _ := runShardPoint(sc, w2, w2 > 1, nil)
	return r1.Throughput, r2.Throughput
}

// ShardCoalescingSavings measures frames per committed write at shard count
// w with coalescing off (the pre-coalescing wire: every ACK/VAL its own
// frame) and on. The coalesced figure must come out measurably lower — that
// is the point of the ShardBatch envelope.
func ShardCoalescingSavings(sc Scale, w int) (framesPerWriteOff, framesPerWriteOn float64) {
	off, _ := runShardPoint(sc, w, false, nil)
	on, _ := runShardPoint(sc, w, true, nil)
	return float64(off.FramesSent) / float64(off.Ops), float64(on.FramesSent) / float64(on.Ops)
}
