package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/stats"
)

// This file measures the LIVE runtime's read path, not the simulator: the
// point of the lock-free local-read fast path (paper §4.1) is that reads of
// Valid keys are served on the caller's goroutine without entering the
// per-shard event loop, so read throughput should scale with client
// goroutines far beyond the single-event-loop ceiling. The experiment
// drives one node of a 3-replica in-process group with C closed-loop client
// goroutines at a 95% read ratio and reports throughput plus the fast-path
// hit rate taken from the engine's atomic read counters.

// readBenchKeys is the keyspace of the live read benchmark; every key is
// preloaded so reads hit Valid records rather than the implicit nil state.
const readBenchKeys = 1024

// readShardCounts and readClientCounts are the two axes of ReadScaling.
var (
	readShardCounts  = []int{1, 4, 8}
	readClientCounts = []int{1, 2, 4, 8, 16}
)

// ReadPointResult is one measured configuration of the live read workload.
type ReadPointResult struct {
	Reads, Writes        uint64
	Elapsed              time.Duration
	FastHits, FastMisses uint64
}

// ReadTput returns read completions per second of wall-clock time.
func (r ReadPointResult) ReadTput() float64 {
	return float64(r.Reads) / r.Elapsed.Seconds()
}

// HitRate returns the fraction of reads served by the lock-free fast path.
func (r ReadPointResult) HitRate() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.FastHits) / float64(r.Reads)
}

// RunReadPoint stands up a live 3-replica, W-shard in-process group and
// drives node 0 with `clients` closed-loop goroutines for roughly dur,
// mixing reads and writes at readRatio over a preloaded keyspace.
func RunReadPoint(shards, clients int, readRatio float64, dur time.Duration, noLSC bool) ReadPointResult {
	grp := cluster.NewShardedLocal(cluster.LocalConfig{N: 3, NoLSC: noLSC}, shards)
	defer grp.Close()
	ctx := context.Background()
	node := grp.Nodes[0]

	// Preload every key (in parallel: writes commit in ~one in-process
	// round trip each) so timed reads land on Valid records.
	var pre sync.WaitGroup
	const loaders = 8
	for i := 0; i < loaders; i++ {
		pre.Add(1)
		go func(i int) {
			defer pre.Done()
			for k := i; k < readBenchKeys; k += loaders {
				if err := node.Write(ctx, proto.Key(k), proto.Value("seed-value")); err != nil {
					panic(fmt.Sprintf("bench: preload write: %v", err))
				}
			}
		}(i)
	}
	pre.Wait()

	_, hits0, misses0 := node.ReadStats()
	var reads, writes atomic.Uint64
	var wg sync.WaitGroup
	val := proto.Value("live-read-bench-32-byte-payload!")
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				// Check the clock every few ops, not every op: the
				// deadline probe must stay negligible next to a ~100ns
				// fast-path read.
				if i&63 == 0 && !time.Now().Before(deadline) {
					return
				}
				k := proto.Key(rng.Uint64() % readBenchKeys)
				if rng.Float64() < readRatio {
					if _, err := node.Read(ctx, k); err != nil {
						panic(fmt.Sprintf("bench: read: %v", err))
					}
					reads.Add(1)
				} else {
					if err := node.Write(ctx, k, val); err != nil {
						panic(fmt.Sprintf("bench: write: %v", err))
					}
					writes.Add(1)
				}
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	_, hits1, misses1 := node.ReadStats()
	return ReadPointResult{
		Reads:      reads.Load(),
		Writes:     writes.Load(),
		Elapsed:    elapsed,
		FastHits:   hits1 - hits0,
		FastMisses: misses1 - misses0,
	}
}

// readBenchDur maps the bench scale to a wall-clock measurement window per
// point (this is a live benchmark; the sim scales don't apply directly).
func readBenchDur(sc Scale) time.Duration {
	return 10 * sc.Duration // Quick: 40ms/point, Full: 200ms/point
}

// ReadScaling measures live read throughput of one node of a 3-replica
// group as client goroutines grow, at 1/4/8 engine shards, read ratio 0.95.
// With the lock-free fast path, read throughput scales with the client
// count (until the host runs out of cores) because Valid reads never enter
// a shard event loop; hit% reports the fraction of reads the fast path
// served. The speedup column is within one shard count, relative to one
// client.
func ReadScaling(sc Scale) *stats.Table {
	t := &stats.Table{Header: []string{
		"shards", "clients", "reads/s(M)", "speedup", "hit%", "writes/s(K)",
	}}
	dur := readBenchDur(sc)
	for _, w := range readShardCounts {
		var base float64
		for _, c := range readClientCounts {
			r := RunReadPoint(w, c, 0.95, dur, false)
			tput := r.ReadTput()
			if c == readClientCounts[0] {
				base = tput
			}
			t.AddRow(w, c, Mops(tput),
				fmt.Sprintf("%.2fx", tput/base),
				fmt.Sprintf("%.1f", 100*r.HitRate()),
				fmt.Sprintf("%.0f", float64(r.Writes)/r.Elapsed.Seconds()/1e3))
		}
	}
	return t
}
