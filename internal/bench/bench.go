// Package bench regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster. Each figure has one entry point
// returning a stats.Table whose rows mirror the paper's series; the
// cmd/hermes-bench binary prints them, and the repository-root bench_test.go
// wraps them in testing.B benchmarks at reduced scale.
//
// Absolute numbers are simulator-scale (see DESIGN.md §2); what must match
// the paper is the *shape*: orderings, ratios and crossovers.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/craq"
	"repro/internal/lockstep"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/zab"
)

// System selects a protocol under test.
type System uint8

const (
	// Hermes is HermesKV: local reads, decentralized inter-key-concurrent
	// invalidating writes (O1 on, O3 off, as in the paper's §5.1).
	Hermes System = iota
	// CRAQ is rCRAQ: chain replication with apportioned queries.
	CRAQ
	// ZAB is rZAB: leader-serialized atomic broadcast, SC local reads.
	ZAB
	// Lockstep is the Derecho-like round-based total order (§6.5).
	Lockstep
)

func (s System) String() string {
	switch s {
	case Hermes:
		return "HermesKV"
	case CRAQ:
		return "rCRAQ"
	case ZAB:
		return "rZAB"
	case Lockstep:
		return "Derecho-like"
	default:
		return "system(?)"
	}
}

// protocolMLT is generous: the benchmark network is lossless, so timeouts
// exist only as a safety net and must not fire under queuing delay.
const protocolMLT = 10 * time.Millisecond

// Factory returns the sim factory for a system.
func Factory(s System) sim.Factory {
	switch s {
	case Hermes:
		return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return core.New(core.Config{ID: id, View: view, Env: env, MLT: protocolMLT, ElideVAL: true})
		}
	case CRAQ:
		return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return craq.New(craq.Config{ID: id, View: view, Env: env, MLT: protocolMLT})
		}
	case ZAB:
		return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return zab.New(zab.Config{ID: id, View: view, Env: env, MLT: protocolMLT})
		}
	case Lockstep:
		return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			// MaxBatch 1 models Derecho's per-message lock-step commit.
			return lockstep.New(lockstep.Config{ID: id, View: view, Env: env, MLT: protocolMLT, MaxBatch: 1})
		}
	default:
		panic("bench: unknown system")
	}
}

// HermesFactory builds Hermes with explicit toggles (ablations).
func HermesFactory(mut func(*core.Config)) sim.Factory {
	return func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
		cfg := core.Config{ID: id, View: view, Env: env, MLT: protocolMLT, ElideVAL: true}
		if mut != nil {
			mut(&cfg)
		}
		return core.New(cfg)
	}
}

// SizeOf estimates a protocol message's wire payload, used for Fig. 8's
// object-size sensitivity and bandwidth accounting.
func SizeOf(msg any) int {
	const hdr = 16 // epoch + key + ts + framing
	switch m := msg.(type) {
	case core.INV:
		return hdr + len(m.Value)
	case core.ACK, core.VAL, core.MCheck, core.MCheckAck:
		return hdr
	case craq.WriteReq:
		return hdr + len(m.Op.Value)
	case craq.WriteDown:
		return hdr + len(m.Value)
	case craq.AckUp, craq.VersionQuery:
		return hdr
	case craq.VersionReply:
		return hdr + len(m.Value)
	case zab.Forward:
		return hdr + len(m.Op.Value)
	case zab.Propose:
		return hdr + len(m.Entry.Value)
	case zab.AckProp, zab.Commit:
		return hdr
	case lockstep.Batch:
		n := hdr
		for _, u := range m.Ops {
			n += 16 + len(u.Value)
		}
		return n
	default:
		return hdr
	}
}

// Scale sets measurement effort. Quick keeps `go test -bench` snappy; Full
// is what cmd/hermes-bench and EXPERIMENTS.md use.
type Scale struct {
	Sessions int // closed-loop sessions per node
	Warmup   time.Duration
	Duration time.Duration
	Keys     uint64
}

// QuickScale is for unit benches and CI.
func QuickScale() Scale {
	return Scale{Sessions: 4, Warmup: 500 * time.Microsecond, Duration: 4 * time.Millisecond, Keys: 1 << 14}
}

// FullScale mirrors the paper's methodology shape (1M keys). Sessions are
// calibrated so that request latency — not raw message-processing capacity —
// is the operative constraint, matching the testbed's operating point: at
// deep CPU saturation a chain's slightly lower per-write message count
// (8.8 vs 12 receive events for n=5) outweighs its longer latency, a regime
// the paper's latency-sensitive evaluation deliberately avoids (§6.3 runs
// at rCRAQ's peak, 50-85% of Hermes'). EXPERIMENTS.md discusses this
// calibration and the one residual divergence it leaves.
func FullScale() Scale {
	return Scale{Sessions: 4, Warmup: 2 * time.Millisecond, Duration: 20 * time.Millisecond, Keys: 1 << 20}
}

// Point is one measured configuration.
type Point struct {
	System     System
	Nodes      int
	WriteRatio float64
	Zipf       bool
	ValueSize  int
	Sessions   int // overrides Scale.Sessions when non-zero
	PerByte    bool
	RMWRatio   float64
	Seed       int64
}

// Run measures one point.
func Run(p Point, sc Scale) sim.Result {
	sessions := sc.Sessions
	if p.Sessions > 0 {
		sessions = p.Sessions
	}
	valSize := p.ValueSize
	if valSize == 0 {
		valSize = 32
	}
	net := sim.DefaultNet()
	costs := sim.DefaultCosts()
	if p.PerByte {
		net.PerByte = 2 * time.Nanosecond // ~serialization of a 56Gb-class link, scaled
		costs.PerByte = time.Nanosecond   // per-byte CPU handling cost
	}
	c := sim.New(sim.Config{
		Nodes:   p.Nodes,
		Factory: Factory(p.System),
		Net:     net,
		Costs:   costs,
		Seed:    p.Seed + 1,
		SizeOf:  SizeOf,
	})
	return c.RunWorkload(sim.WorkloadParams{
		Workload: workload.Config{
			Keys:       sc.Keys,
			WriteRatio: p.WriteRatio,
			RMWRatio:   p.RMWRatio,
			ValueSize:  valSize,
			Zipf:       p.Zipf,
			ZipfTheta:  0.99,
		},
		SessionsPerNode: sessions,
		Warmup:          sc.Warmup,
		Duration:        sc.Duration,
		Seed:            p.Seed,
	})
}

// Mops formats ops/s as millions of requests per second.
func Mops(tput float64) string { return fmt.Sprintf("%.3f", tput/1e6) }

// Micros formats a duration in microseconds, one decimal.
func Micros(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/1e3) }
