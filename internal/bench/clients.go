package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file measures the WIRE-SERVED client path (internal/server +
// internal/client): thousands of concurrent pipelined TCP sessions against
// one node of a 3-replica in-process group, the deployment shape the paper's
// §6 client machines present. The replica mesh stays in-process (identical
// to -exp reads) so the delta against the in-process baseline isolates
// exactly what the serving layer adds: framing, session scheduling, and the
// per-session response coalescer. Reads must still ride the lock-free fast
// path — served on the server's session goroutines via ReadLocal — so wire
// read throughput should hold a large fraction of the in-process number
// while p50/p99/p999 stay flat as sessions grow.

// clientsShards pins the engine shard count of the experiment (the
// acceptance point: W=4, the in-process -exp reads comparison row).
const clientsShards = 4

// clientsMaxDepth bounds each session's in-flight requests. Well under the
// server's granted window so the benchmark exercises pipelining without
// measuring its own queueing: with thousands of sessions the aggregate
// outstanding load (sessions × depth) is what saturates the node.
const clientsMaxDepth = 16

// clientsDepth picks each session's pipeline depth so the AGGREGATE
// outstanding load scales with the host's parallelism rather than the
// session count. Uncapped depth at thousands of sessions floods the shard
// engines far past their service rate; once queueing delay crosses the MLT,
// retransmissions amplify the overload into congestion collapse — the
// benchmark would measure its own storm, not the serving layer.
func clientsDepth(sessions int) int {
	target := 256 * runtime.GOMAXPROCS(0)
	d := target / sessions
	if d < 1 {
		d = 1
	}
	if d > clientsMaxDepth {
		d = clientsMaxDepth
	}
	return d
}

// clientsSessionCounts picks the session axis by scale: CI smoke stays
// small, the full run demonstrates ≥1000 concurrent pipelined sessions.
func clientsSessionCounts(sc Scale) []int {
	if sc.Sessions <= QuickScale().Sessions && sc.Duration <= QuickScale().Duration {
		return []int{8, 64}
	}
	return []int{64, 256, 1024}
}

// ClientsPointResult is one measured wire-serving configuration.
type ClientsPointResult struct {
	Sessions             int
	Ops                  uint64
	Elapsed              time.Duration
	Reads                uint64
	FastHits, FastMisses uint64
	// Lat holds one histogram per op class, keyed "read"/"write"/"rmw".
	Lat map[string]*stats.Histogram
}

// Tput returns completed ops per second of wall clock.
func (r ClientsPointResult) Tput() float64 {
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// ReadTput returns completed reads per second of wall clock.
func (r ClientsPointResult) ReadTput() float64 {
	return float64(r.Reads) / r.Elapsed.Seconds()
}

// HitRate returns the fraction of wire reads served by the lock-free fast
// path (on the server's session goroutines, never entering an event loop).
func (r ClientsPointResult) HitRate() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.FastHits) / float64(r.Reads)
}

// latClass maps an op kind to its histogram key.
func latClass(k proto.OpKind) string {
	switch k {
	case proto.OpRead:
		return "read"
	case proto.OpWrite:
		return "write"
	default:
		return "rmw"
	}
}

// RunClientsPoint stands up a 3-replica W-shard group, fronts node 0 with
// the wire server on a loopback TCP listener, and drives it with `sessions`
// pipelined client sessions for roughly dur. The workload is the paper's
// shape: zipfian(0.99) keys over a preloaded keyspace, 95% reads, RMWs
// (FAA and CAS) inside the write mix.
func RunClientsPoint(sessions int, dur time.Duration, keys uint64) ClientsPointResult {
	raiseFDLimit()
	grp := cluster.NewShardedLocal(cluster.LocalConfig{N: 3}, clientsShards)
	defer grp.Close()
	node := grp.Nodes[0]

	// Preload in-process (not over the wire): reads must land on Valid keys,
	// and the preload is setup, not measurement.
	ctx := context.Background()
	var pre sync.WaitGroup
	const loaders = 8
	for i := 0; i < loaders; i++ {
		pre.Add(1)
		go func(i int) {
			defer pre.Done()
			for k := uint64(i); k < keys; k += loaders {
				if err := node.Write(ctx, proto.Key(k), proto.EncodeInt64(1)); err != nil {
					panic(fmt.Sprintf("bench: preload: %v", err))
				}
			}
		}(i)
	}
	pre.Wait()

	srv := server.New(server.Config{Backend: node})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: listen: %v", err))
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// Dial all sessions before the clock starts (connection setup is not
	// the measurement), in parallel — thousands of serial dials would
	// dominate the run.
	clients := make([]*client.Client, sessions)
	var dial sync.WaitGroup
	const dialers = 32
	for d := 0; d < dialers; d++ {
		dial.Add(1)
		go func(d int) {
			defer dial.Done()
			for i := d; i < sessions; i += dialers {
				c, err := client.Dial(addr, client.Config{})
				if err != nil {
					panic(fmt.Sprintf("bench: dial session %d: %v", i, err))
				}
				clients[i] = c
			}
		}(d)
	}
	dial.Wait()
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	lat := map[string]*stats.Histogram{
		"read": stats.NewHistogram(), "write": stats.NewHistogram(), "rmw": stats.NewHistogram(),
	}
	var ops, reads atomic.Uint64
	_, hits0, misses0 := node.ReadStats()

	// Build the workload generators BEFORE the clock starts. Zipfian
	// construction is O(keys) of math.Pow — per-session inside the timed
	// window it dominates a short run outright — and the harmonic table
	// depends only on (keys, theta), so one shared chooser serves every
	// session (it is immutable; per-draw state lives in each session's rng).
	wlCfg := workload.Config{
		Keys: keys, WriteRatio: 0.05, RMWRatio: 0.2, CASRatio: 0.5,
		ValueSize: 32, Zipf: true,
	}
	chooser := workload.NewZipfian(keys, 0.99, true)
	gens := make([]*workload.Generator, sessions)
	for s := range gens {
		gens[s] = workload.NewGeneratorWith(wlCfg, chooser, int64(s)+1)
	}

	depth := clientsDepth(sessions)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := clients[s]
			gen := gens[s]
			// tokens caps this session's in-flight requests at depth;
			// completions return tokens from the pump goroutine.
			tokens := make(chan struct{}, depth)
			for i := 0; ; i++ {
				if i&15 == 0 && !time.Now().Before(deadline) {
					break
				}
				op := gen.Next()
				cls := latClass(op.Kind)
				issued := time.Now()
				tokens <- struct{}{}
				err := c.Do(op.Kind, op.Key, op.Value, op.Expected, func(r proto.ClientResp, err error) {
					if err == nil {
						lat[cls].Record(time.Since(issued))
						ops.Add(1)
						if cls == "read" {
							reads.Add(1)
						}
					}
					<-tokens
				})
				if err != nil {
					panic(fmt.Sprintf("bench: session %d: %v", s, err))
				}
			}
			// Drain: every token back means every completion has fired.
			for i := 0; i < depth; i++ {
				tokens <- struct{}{}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	_, hits1, misses1 := node.ReadStats()
	return ClientsPointResult{
		Sessions:   sessions,
		Ops:        ops.Load(),
		Elapsed:    elapsed,
		Reads:      reads.Load(),
		FastHits:   hits1 - hits0,
		FastMisses: misses1 - misses0,
		Lat:        lat,
	}
}

// Clients measures the wire serving layer as concurrent pipelined sessions
// grow, reporting throughput, the lock-free fast-path hit rate, tail latency
// (p50/p99/p999) per op class, and wire read throughput as a percentage of
// the in-process -exp reads baseline at the same shard count — the number
// that says what a socket costs against the paper's in-process fast path.
func Clients(sc Scale) *stats.Table {
	dur := readBenchDur(sc)
	keys := sc.Keys
	if keys > 1<<16 {
		keys = 1 << 16 // preload bound; zipf keeps traffic hot regardless
	}
	// In-process baseline: same 3-replica topology, same shard count, same
	// read mix, no wire. Its read throughput is the comparison denominator.
	base := RunReadPoint(clientsShards, 8, 0.95, dur, false)

	t := &stats.Table{Header: []string{
		"sessions", "ops/s(M)", "reads/s(M)", "hit%", "inproc%",
		"rd p50", "rd p99", "rd p999", "wr p99", "rmw p99",
	}}
	for _, n := range clientsSessionCounts(sc) {
		r := RunClientsPoint(n, dur, keys)
		rd := r.Lat["read"].Snapshot()
		t.AddRow(n, Mops(r.Tput()), Mops(r.ReadTput()),
			fmt.Sprintf("%.1f", 100*r.HitRate()),
			fmt.Sprintf("%.0f", 100*r.ReadTput()/base.ReadTput()),
			Micros(rd.Median()), Micros(rd.P99()), Micros(rd.P999()),
			Micros(r.Lat["write"].P99()), Micros(r.Lat["rmw"].P99()))
	}
	return t
}
