package bench

import (
	"testing"
	"time"
)

// The acceptance bar for per-shard membership epochs: while one shard rides
// an install storm, the untouched shards keep their read throughput and
// their lock-free fast path. Thresholds sit below the typically measured
// values (~95-100% retention, ~97% hit rate) to stay robust on loaded CI
// hosts; `hermes-bench -exp reconfig` reports the real numbers.
func TestReconfigUntouchedShardsRetainService(t *testing.T) {
	r := RunReconfigPoint(4, false, 60*time.Millisecond)
	if r.Installs < 20 {
		t.Fatalf("storm issued only %d installs — no storm, no measurement", r.Installs)
	}
	// The storm must have advanced ONLY the hot shard's epoch.
	for s, e := range r.EpochsAfter {
		if s == r.Hot && e < 2 {
			t.Fatalf("hot shard epoch %d after %d installs", e, r.Installs)
		}
		if s != r.Hot && e != 1 {
			t.Fatalf("untouched shard %d epoch moved to %d during a per-shard storm", s, e)
		}
	}
	for s := 0; s < r.Shards; s++ {
		if s != r.Hot && r.BaseReads[s] == 0 {
			t.Fatalf("shard %d: no baseline reads — measurement starved", s)
		}
	}
	if ret := r.UntouchedMinReadRetention(); ret < 0.8 {
		t.Fatalf("untouched shards kept only %.1f%% of baseline read throughput (want >=80%%; bench target 90%%)\nbase=%v storm=%v",
			100*ret, r.BaseReads, r.StormReads)
	}
	if hr := r.UntouchedMinStormHitRate(); hr < 0.9 {
		t.Fatalf("untouched shards' fast-path hit rate %.1f%% during the storm (want >=90%%)", 100*hr)
	}
	if ret := r.UntouchedMinWriteRetention(); ret < 0.6 {
		t.Fatalf("untouched shards kept only %.1f%% of baseline write throughput", 100*ret)
	}
}
