package bench

import (
	"testing"
	"time"
)

// The acceptance bar for per-shard membership epochs: while one shard rides
// an install storm, the untouched shards keep their read throughput and
// their lock-free fast path. Thresholds sit below the typically measured
// values (~95-100% retention, ~97% hit rate) to stay robust on loaded CI
// hosts; `hermes-bench -exp reconfig` reports the real numbers.
func TestReconfigUntouchedShardsRetainService(t *testing.T) {
	if raceEnabled {
		t.Skip("perf thresholds are meaningless under the race detector's slowdown")
	}
	r := RunReconfigPoint(4, false, 60*time.Millisecond)
	if r.Installs < 20 {
		t.Fatalf("storm issued only %d installs — no storm, no measurement", r.Installs)
	}
	// The storm must have advanced ONLY the hot shard's epoch.
	for s, e := range r.EpochsAfter {
		if s == r.Hot && e < 2 {
			t.Fatalf("hot shard epoch %d after %d installs", e, r.Installs)
		}
		if s != r.Hot && e != 1 {
			t.Fatalf("untouched shard %d epoch moved to %d during a per-shard storm", s, e)
		}
	}
	for s := 0; s < r.Shards; s++ {
		if s != r.Hot && r.BaseReads[s] == 0 {
			t.Fatalf("shard %d: no baseline reads — measurement starved", s)
		}
	}
	if ret := r.UntouchedMinReadRetention(); ret < 0.8 {
		t.Fatalf("untouched shards kept only %.1f%% of baseline read throughput (want >=80%%; bench target 90%%)\nbase=%v storm=%v",
			100*ret, r.BaseReads, r.StormReads)
	}
	if hr := r.UntouchedMinStormHitRate(); hr < 0.9 {
		t.Fatalf("untouched shards' fast-path hit rate %.1f%% during the storm (want >=90%%)", 100*hr)
	}
	if ret := r.UntouchedMinWriteRetention(); ret < 0.6 {
		t.Fatalf("untouched shards kept only %.1f%% of baseline write throughput", 100*ret)
	}
}

// The acceptance bar for the staggered full-view rollout: while every
// issued view reconfigures ALL shards, the controller keeps aggregate read
// throughput and the lock-free fast path alive by shutting at most one gate
// at a time. The threshold sits below the typically measured values (≥100%
// read retention, ~98% hit rate on the bench host) for CI robustness;
// `hermes-bench -exp reconfig` reports the real numbers. Acceptance target:
// ≥90% aggregate read retention.
func TestRolloutStaggeredKeepsAggregateReads(t *testing.T) {
	if raceEnabled {
		t.Skip("perf thresholds are meaningless under the race detector's slowdown")
	}
	r := RunRolloutPoint(4, true, 60*time.Millisecond)
	if r.Issued < 20 {
		t.Fatalf("storm issued only %d views — no storm, no measurement", r.Issued)
	}
	// A full-view rollout advances EVERY shard (contrast with the per-shard
	// storm above, which must advance only the hot one).
	for s, e := range r.EpochsAfter {
		if e < 2 {
			t.Fatalf("shard %d epoch %d after %d full-view rollouts", s, e, r.Issued)
		}
	}
	if r.BaseReads == 0 {
		t.Fatal("no baseline reads — measurement starved")
	}
	if ret := r.AggReadRetention(); ret < 0.8 {
		t.Fatalf("staggered rollout kept only %.1f%% of aggregate read throughput (want >=80%%; bench target 90%%)\nbase=%d storm=%d",
			100*ret, r.BaseReads, r.StormReads)
	}
	if hr := r.StormHitRate(); hr < 0.9 {
		t.Fatalf("aggregate fast-path hit rate %.1f%% during the staggered rollout storm (want >=90%%)", 100*hr)
	}
	if r.Installed == 0 {
		t.Fatalf("controller performed no installs for %d issued views", r.Issued)
	}
	// Whether the controller kept up or superseded depends on host speed;
	// the mid-roll supersede behaviour itself is pinned deterministically in
	// cluster.TestRolloutSupersededMidRoll.
	t.Logf("issued=%d installed=%d skipped=%d agg-rd-ret=%.1f%% hit=%.1f%%",
		r.Issued, r.Installed, r.Skipped, 100*r.AggReadRetention(), 100*r.StormHitRate())
}
