package bench

import "testing"

// The headline claim of the sharded engine: write throughput scales with
// worker count. At quick scale, W=4 must commit at least 2× the writes of
// W=1 on uniform random keys (the acceptance bar; full scale does better).
func TestShardScalingAtLeast2xAt4Shards(t *testing.T) {
	w1, w4 := ShardScalingSpeedup(QuickScale(), 1, 4)
	if w1 <= 0 {
		t.Fatal("W=1 committed no writes")
	}
	if w4 < 2*w1 {
		t.Fatalf("W=4 throughput %.0f < 2x W=1 throughput %.0f (%.2fx)",
			w4, w1, w4/w1)
	}
	t.Logf("W=1: %.0f writes/s, W=4: %.0f writes/s (%.2fx)", w1, w4, w4/w1)
}

// Shard routing must keep per-shard load balanced on uniform keys, and the
// table must render all rows.
func TestShardScalingTableRenders(t *testing.T) {
	tbl := ShardScaling(QuickScale())
	if got := len(tbl.String()); got == 0 {
		t.Fatal("empty table")
	}
}
