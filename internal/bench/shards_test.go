package bench

import "testing"

// The headline claim of the sharded engine: write throughput scales with
// worker count. At quick scale, W=4 must commit at least 2× the writes of
// W=1 on uniform random keys (the acceptance bar; full scale does better).
func TestShardScalingAtLeast2xAt4Shards(t *testing.T) {
	w1, w4 := ShardScalingSpeedup(QuickScale(), 1, 4)
	if w1 <= 0 {
		t.Fatal("W=1 committed no writes")
	}
	if w4 < 2*w1 {
		t.Fatalf("W=4 throughput %.0f < 2x W=1 throughput %.0f (%.2fx)",
			w4, w1, w4/w1)
	}
	t.Logf("W=1: %.0f writes/s, W=4: %.0f writes/s (%.2fx)", w1, w4, w4/w1)
}

// Shard routing must keep per-shard load balanced on uniform keys, and the
// table must render all rows.
func TestShardScalingTableRenders(t *testing.T) {
	tbl := ShardScaling(QuickScale())
	if got := len(tbl.String()); got == 0 {
		t.Fatal("empty table")
	}
}

// The tentpole claim of cross-shard ACK coalescing: at W=4 the coalesced
// path ships measurably fewer wire frames per committed write than the
// uncoalesced baseline (which is byte-identical to the pre-coalescing
// protocol) — at least 10% fewer, at quick scale.
func TestShardCoalescingCutsFramesPerWrite(t *testing.T) {
	off, on := ShardCoalescingSavings(QuickScale(), 4)
	if off <= 0 || on <= 0 {
		t.Fatalf("degenerate measurements: off=%.2f on=%.2f", off, on)
	}
	if on >= off*0.9 {
		t.Fatalf("coalescing saved too little at W=4: %.2f frames/write vs %.2f baseline", on, off)
	}
	t.Logf("W=4 frames/write: %.2f uncoalesced -> %.2f coalesced (%.0f%% fewer)",
		off, on, (1-on/off)*100)
}
