package bench

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Gray is `hermes-bench -exp gray`: the gray-failure vocabulary measured on
// the deterministic chaos harness. One row per fault class — a clean
// baseline, each gray fault alone, and everything at once with epoch gossip
// carrying the healing — so a protocol change that quietly regresses
// behavior under slow-but-alive nodes or one-way cuts shows up as a
// throughput or abandonment delta in CI history, not just a pass/fail bit.
// Every run's history still goes through the linearizability checker inside
// RunChaos; a violation fails the experiment outright.
func Gray(sc Scale) *stats.Table {
	seeds := []int64{11, 12, 13, 14, 15, 16, 17, 18}
	ops := 120
	if sc.Duration <= QuickScale().Duration {
		seeds = seeds[:2]
		ops = 50
	}
	rows := []struct {
		name string
		cfg  sim.ChaosConfig
	}{
		{"baseline", sim.ChaosConfig{}},
		{"asym-partition", sim.ChaosConfig{AsymPartitions: true}},
		{"slow-alive", sim.ChaosConfig{SlowNodes: true}},
		{"clock-skew", sim.ChaosConfig{ClockSkew: true}},
		{"burst-reorder", sim.ChaosConfig{Reorder: true}},
		{"all+gossip", sim.ChaosConfig{
			AsymPartitions: true, SlowNodes: true, ClockSkew: true, Reorder: true,
			CrashRejoin: true, RejoinBehind: 2, Gossip: true, NoInstallBackstop: true,
		}},
	}
	t := &stats.Table{Header: []string{
		"fault", "ops", "kops/vsec", "abandoned", "replays", "retransmits",
		"reordered", "teach-acks", "gossip-ff",
	}}
	for _, r := range rows {
		var ops64, abandoned, replays, retrans, reordered, teach, gff uint64
		var vsec float64
		for _, seed := range seeds {
			cfg := r.cfg
			cfg.Seed = seed
			cfg.OpsPerSession = ops
			res, err := sim.RunChaos(cfg)
			if err != nil {
				panic(fmt.Sprintf("gray bench %s seed %d: %v", r.name, seed, err))
			}
			ops64 += res.Ops
			abandoned += res.Abandoned
			replays += res.Replays
			retrans += res.Retransmits
			reordered += res.Reordered
			teach += res.TeachACKs
			gff += res.GossipFF
			vsec += res.Elapsed.Seconds()
		}
		t.AddRow(r.name, ops64, fmt.Sprintf("%.1f", float64(ops64)/vsec/1e3),
			abandoned, replays, retrans, reordered, teach, gff)
	}
	return t
}
