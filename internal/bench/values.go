package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvs"
	"repro/internal/proto"
	"repro/internal/refbuf"
	"repro/internal/stats"
	"repro/internal/wings"
)

// ValuesJSON is the file Values writes next to the working directory; the CI
// bench-smoke step uploads it so the value-path perf trajectory (allocs/op,
// ops/s) is recorded per commit instead of scrolling away in build logs.
const ValuesJSON = "BENCH_values.json"

// ValuesResult carries the printed table plus the machine-readable report.
type ValuesResult struct {
	Table  *stats.Table
	Report ValuesReport
	// JSONErr is non-nil when writing ValuesJSON failed (the measurement
	// itself still stands; String mentions the failure instead of the path).
	JSONErr error
}

// ValuesReport is the schema of BENCH_values.json.
type ValuesReport struct {
	Experiment string        `json:"experiment"`
	Points     []ValuesPoint `json:"points"`
}

// ValuesPoint is one measured stage of the zero-copy value path.
type ValuesPoint struct {
	Name        string  `json:"name"`
	ValueBytes  int     `json:"value_bytes"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

func (r *ValuesResult) String() string {
	s := r.Table.String()
	if r.JSONErr != nil {
		return s + fmt.Sprintf("\n(failed to write %s: %v)", ValuesJSON, r.JSONErr)
	}
	return s + fmt.Sprintf("\n(wrote %s)", ValuesJSON)
}

// Values measures the zero-copy wire-to-store value path stage by stage:
// owner-backed INV adoption (decode→applyINV→RCU store swap), the retained
// read pin/release protocol, and the client-response frame encoder. The
// numbers to watch are allocs/op — adoption and encode must be constant
// across a 128× value-size spread (a copy anywhere in the path shows up as
// size-dependent allocations) and the retained read must be allocation-free.
func Values(sc Scale) *ValuesResult {
	// Scale controls only the size sweep: the quick smoke keeps the two
	// sizes the acceptance criterion compares; the full run adds the
	// in-between and a jumbo point for the trajectory record.
	sizes := []int{32, 4096}
	if sc.Duration > QuickScale().Duration {
		sizes = []int{32, 512, 4096, 65536}
	}

	rep := ValuesReport{Experiment: "values"}
	for _, size := range sizes {
		rep.Points = append(rep.Points, point(fmt.Sprintf("inv-adopt/%s", sizeLabel(size)), size, benchAdopt(size)))
	}
	rep.Points = append(rep.Points,
		point("read-retained/4KiB", 4096, benchRetainedRead(4096)),
		point("resp-encode/16x64B", 64, benchRespEncode(16, 64)),
	)

	tb := &stats.Table{Header: []string{"stage", "value B", "allocs/op", "B/op", "ns/op", "Mops/s"}}
	for _, p := range rep.Points {
		tb.AddRow(p.Name, p.ValueBytes, p.AllocsPerOp, p.BytesPerOp, fmt.Sprintf("%.0f", p.NsPerOp), Mops(p.OpsPerSec))
	}

	out := &ValuesResult{Table: tb, Report: rep}
	if data, err := json.MarshalIndent(rep, "", "  "); err != nil {
		out.JSONErr = err
	} else {
		out.JSONErr = os.WriteFile(ValuesJSON, append(data, '\n'), 0o644)
	}
	return out
}

func sizeLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKiB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

func point(name string, size int, r testing.BenchmarkResult) ValuesPoint {
	ns := float64(r.T) / float64(r.N)
	ops := 0.0
	if ns > 0 {
		ops = float64(time.Second) / ns
	}
	return ValuesPoint{
		Name:        name,
		ValueBytes:  size,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		NsPerOp:     ns,
		OpsPerSec:   ops,
	}
}

// dropEnv is the no-op harness for a bench replica: ACKs and completions are
// measured elsewhere; here only the receive path is under the timer.
type dropEnv struct{}

func (dropEnv) Now() time.Duration        { return 0 }
func (dropEnv) Send(proto.NodeID, any)    {}
func (dropEnv) Complete(proto.Completion) {}

func benchFollower(st *kvs.Store) *core.Hermes {
	return core.New(core.Config{
		ID: 1, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1, 2}},
		Env: dropEnv{}, Store: st,
	})
}

// benchAdopt times the follower's owner-backed INV receive end to end: frame
// sub-slice in, RCU entry swap, predecessor frame released to the pool.
func benchAdopt(size int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		st := kvs.New(16)
		h := benchFollower(st)
		pool := refbuf.NewPool()
		val := bytes.Repeat([]byte{0xAB}, size)
		version := uint32(0)
		deliver := func() {
			version += 2
			fb := pool.Get(size)
			bb := fb.Bytes()
			copy(bb, val)
			h.Deliver(0, core.INV{
				Epoch: 1, Key: 13, TS: proto.TS{Version: version},
				Value: proto.Value(bb[0:size:size]), Owner: fb,
			})
		}
		for i := 0; i < 16; i++ {
			deliver()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			deliver()
		}
	})
}

// benchRetainedRead times the GetRetained pin protocol against an
// owner-backed entry: TryRetain, pointer recheck, release. Zero allocs.
func benchRetainedRead(size int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		st := kvs.New(16)
		pool := refbuf.NewPool()
		fb := pool.Get(size)
		st.Update(5, kvs.Entry{
			Value: proto.Value(fb.Bytes()[0:size:size]),
			TS:    proto.TS{Version: 2}, State: kvs.Valid, Owner: fb,
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, ok := st.GetRetained(5)
			if !ok {
				b.Fatal("lost the entry")
			}
			e.Owner.Release()
		}
	})
}

// benchRespEncode times the monomorphic client-response frame encoder over a
// warm buffer: the server flush loop's steady state. Zero allocs.
func benchRespEncode(n, size int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		val := bytes.Repeat([]byte{0xCD}, size)
		resps := make([]proto.ClientResp, n)
		for i := range resps {
			resps[i] = proto.ClientResp{Seq: uint64(i), Status: proto.OK, Value: val}
		}
		buf := make([]byte, 0, 1<<16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = wings.AppendClientResps(buf[:0], resps)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
