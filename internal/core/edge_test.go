package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

// A VAL that arrives while the key already carries a newer timestamp must
// be ignored (FVAL's exact-match rule).
func TestStaleVALIgnored(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "new") // ts (2,0)
	h.run()
	h.nodes[1].Deliver(0, VAL{Epoch: 1, Key: 1, TS: proto.TS{Version: 1, CID: 0}})
	if e := h.entry(1, 1); e.State != kvs.Valid || e.TS.Version != 2 {
		t.Fatalf("stale VAL disturbed state: %+v", e)
	}
}

// An ACK for a timestamp other than the pending one must not count toward
// commitment.
func TestMismatchedACKIgnored(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.write(0, 1, "v") // pending ts (2,0)
	h.nodes[0].Deliver(1, ACK{Epoch: 1, Key: 1, TS: proto.TS{Version: 9, CID: 1}})
	h.nodes[0].Deliver(2, ACK{Epoch: 1, Key: 1, TS: proto.TS{Version: 9, CID: 1}})
	if h.hasCompletion(0, op) {
		t.Fatal("write committed on mismatched ACKs")
	}
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("real ACKs did not commit: %+v", c)
	}
}

// Duplicated ACKs from one follower must not substitute for the other's.
func TestDuplicateACKFromOneNodeInsufficient(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.write(0, 1, "v")
	h.step() // INV -> node 1
	// Node 1's ACK, delivered twice.
	var ack envelope
	h.dropWhere(func(e envelope) bool {
		if _, is := e.msg.(ACK); is {
			ack = e
			return true
		}
		return false
	})
	h.nodes[0].Deliver(ack.from, ack.msg)
	h.nodes[0].Deliver(ack.from, ack.msg)
	if h.hasCompletion(0, op) {
		t.Fatal("write committed with ACKs from only one follower")
	}
}

// CAS against a missing key: nil expectation succeeds; non-nil fails with
// the observed (empty) value.
func TestCASOnMissingKey(t *testing.T) {
	h := newHarness(t, 3, nil)
	ok := h.cas(0, 9, "", "first")
	h.run()
	if c := h.completion(0, ok); c.Status != proto.OK {
		t.Fatalf("CAS(nil->v) on missing key: %+v", c)
	}
	fail := h.cas(1, 10, "nonempty", "x")
	if c := h.completion(1, fail); c.Status != proto.CASFailed || len(c.Value) != 0 {
		t.Fatalf("CAS(non-nil) on missing key: %+v", c)
	}
}

// Two nodes replay the same stuck write concurrently: both use the original
// timestamp, so the replays are idempotent and converge.
func TestDuelingReplaysConverge(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "v")
	// Lose every VAL: nodes 1 and 2 both stick Invalid.
	for {
		if h.dropWhere(func(e envelope) bool { _, is := e.msg.(VAL); return is }) > 0 {
			continue
		}
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	// Reads at both stuck followers arm both replay timers.
	r1 := h.read(1, 1)
	r2 := h.read(2, 1)
	h.advance(15 * time.Millisecond) // both replay simultaneously
	if h.nodes[1].Metrics().Replays != 1 || h.nodes[2].Metrics().Replays != 1 {
		t.Fatal("expected replays at both followers")
	}
	h.run()
	for i := 0; i < 5; i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if c := h.completion(1, r1); string(c.Value) != "v" {
		t.Fatalf("r1: %+v", c)
	}
	if c := h.completion(2, r2); string(c.Value) != "v" {
		t.Fatalf("r2: %+v", c)
	}
	e := h.requireConverged(1)
	if e.TS != (proto.TS{Version: 2, CID: 0}) {
		t.Fatalf("replays changed the timestamp: %v", e.TS)
	}
}

// O1+O3 combined still converge under contention.
func TestO1PlusO3Converge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	h := newHarness(t, 5, func(c *Config) { c.ElideVAL = true; c.EarlyACKs = true })
	for i := 0; i < 10; i++ {
		h.write(proto.NodeID(rng.Intn(5)), 1, string(rune('a'+i)))
		if rng.Intn(2) == 0 {
			h.runShuffled(rng)
		}
	}
	for round := 0; round < 30; round++ {
		h.runShuffled(rng)
		h.advance(11 * time.Millisecond)
	}
	h.forceConverge(1)
	h.requireConverged(1)
}

// During the m-update transient, a node that was removed must not serve,
// and one that remains must.
func TestPartialMUpdateServingRules(t *testing.T) {
	h := newHarness(t, 3, nil)
	nv := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1}}
	h.nodes[2].OnViewChange(nv) // node 2 learns it is out
	op := h.read(2, 1)
	if c := h.completion(2, op); c.Status != proto.NotOperational {
		t.Fatalf("removed node served: %+v", c)
	}
	h.nodes[0].OnViewChange(nv)
	op = h.read(0, 1)
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("remaining node refused: %+v", c)
	}
}

// A learner never serves client requests even if asked directly.
func TestLearnerRejectsClients(t *testing.T) {
	h := newHarness(t, 3, nil)
	l := h.addLearner(3)
	op := h.submit(3, proto.ClientOp{Kind: proto.OpRead, Key: 1})
	if c := h.completion(3, op); c.Status != proto.NotOperational {
		t.Fatalf("learner served: %+v", c)
	}
	_ = l
}

// Write to a key while a replay of it is in flight: the write stalls until
// the replay validates, then applies on top.
func TestWriteQueuedBehindReplay(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "orig")
	for {
		if h.dropWhere(func(e envelope) bool { _, is := e.msg.(VAL); return is }) > 0 {
			continue
		}
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	w := h.write(1, 1, "after") // stalls: key Invalid at node 1
	h.advance(15 * time.Millisecond)
	h.run()
	for i := 0; i < 5; i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if c := h.completion(1, w); c.Status != proto.OK {
		t.Fatalf("queued write: %+v", c)
	}
	e := h.requireConverged(1)
	if string(e.Value) != "after" {
		t.Fatalf("final=%q", e.Value)
	}
	// The replay kept (2,0); the write went on top with version 4.
	if e.TS.Version != 4 {
		t.Fatalf("ts=%v", e.TS)
	}
}

// Property: for any interleaving of writes from random nodes with random
// partial delivery, after quiescence every replica holds the same highest
// timestamp, and that timestamp belongs to one of the issued writes.
func TestQuickConvergenceProperty(t *testing.T) {
	f := func(seed int64, nWrites uint8) bool {
		n := int(nWrites%12) + 1
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 3, nil)
		for i := 0; i < n; i++ {
			h.write(proto.NodeID(rng.Intn(3)), 1, string(rune('A'+i)))
			if rng.Intn(3) == 0 {
				h.runShuffled(rng)
			}
		}
		for round := 0; round < 30; round++ {
			h.runShuffled(rng)
			h.advance(11 * time.Millisecond)
		}
		h.forceConverge(1)
		ref := h.entry(0, 1)
		for id := proto.NodeID(1); id < 3; id++ {
			e := h.entry(id, 1)
			if e.TS != ref.TS || string(e.Value) != string(ref.Value) {
				return false
			}
		}
		// The winner is one of the issued values.
		if len(ref.Value) != 1 || ref.Value[0] < 'A' || ref.Value[0] >= 'A'+byte(n) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Epoch tagging: a coordinator that moved to epoch 3 ignores ACKs tagged
// epoch 2 even if they match its pending timestamp.
func TestOldEpochACKDropped(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.write(0, 1, "v")
	// ACKs generated in epoch 1.
	h.step()
	h.step()
	// Coordinator advances to epoch 2 before receiving them.
	nv := h.view.Clone()
	nv.Epoch = 2
	h.nodes[0].OnViewChange(nv)
	h.run() // old-epoch ACKs arrive and must be dropped
	if h.hasCompletion(0, op) {
		t.Fatal("committed with stale-epoch ACKs")
	}
	if h.nodes[0].Metrics().StaleEpochDrops == 0 {
		t.Fatal("drops not counted")
	}
	// Epoch convergence + retransmission completes it.
	h.nodes[1].OnViewChange(nv)
	h.nodes[2].OnViewChange(nv)
	h.view = nv
	h.advance(15 * time.Millisecond)
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion after epochs converge: %+v", c)
	}
}

// Reads arriving while the key is in Write state at the coordinator stall
// and complete with the new value once the write commits.
func TestReadAtCoordinatorDuringWrite(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "v")
	op := h.read(0, 1) // key is in Write state at node 0
	if h.hasCompletion(0, op) {
		t.Fatal("read served from Write state")
	}
	h.run()
	if c := h.completion(0, op); string(c.Value) != "v" {
		t.Fatalf("read: %+v", c)
	}
}

func TestNewPanicsWithoutEnv(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(Config{ID: 0})
}

func TestUnknownMessagePanics(t *testing.T) {
	h := newHarness(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on foreign message type")
		}
	}()
	h.nodes[0].Deliver(0, struct{ X int }{1})
}
