package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

// harness wires a group of Hermes replicas to an in-memory message pool with
// full test control over delivery order, loss and duplication, plus a
// manually advanced clock. It is the protocol-level equivalent of the TLA+
// model's nondeterministic scheduler.
type harness struct {
	t     *testing.T
	now   time.Duration
	nodes map[proto.NodeID]*Hermes
	view  proto.View
	// msgs is the in-flight message pool in send order.
	msgs []envelope
	done map[proto.NodeID][]proto.Completion
	// crashed nodes drop all deliveries.
	crashed map[proto.NodeID]bool
	nextOp  uint64
}

type envelope struct {
	from, to proto.NodeID
	msg      any
}

type testEnv struct {
	h  *harness
	id proto.NodeID
}

func (e *testEnv) Now() time.Duration { return e.h.now }
func (e *testEnv) Send(to proto.NodeID, m any) {
	e.h.msgs = append(e.h.msgs, envelope{from: e.id, to: to, msg: m})
}
func (e *testEnv) Complete(c proto.Completion) {
	e.h.done[e.id] = append(e.h.done[e.id], c)
}

// newHarness builds n replicas with IDs 0..n-1 in a single view. mutate, if
// non-nil, adjusts each replica's Config before construction.
func newHarness(t *testing.T, n int, mutate func(*Config)) *harness {
	t.Helper()
	members := make([]proto.NodeID, n)
	for i := range members {
		members[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: members}
	h := &harness{
		t:       t,
		nodes:   make(map[proto.NodeID]*Hermes),
		view:    view,
		done:    make(map[proto.NodeID][]proto.Completion),
		crashed: make(map[proto.NodeID]bool),
	}
	for _, id := range members {
		cfg := Config{
			ID:   id,
			View: view,
			Env:  &testEnv{h: h, id: id},
			MLT:  10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		h.nodes[id] = New(cfg)
	}
	return h
}

// addLearner constructs an extra replica as a shadow (learner) and installs
// a new view listing it at every live node.
func (h *harness) addLearner(id proto.NodeID) *Hermes {
	h.t.Helper()
	nv := h.view.Clone()
	nv.Epoch++
	nv.Learners = append(nv.Learners, id)
	cfg := Config{ID: id, View: nv, Env: &testEnv{h: h, id: id}, MLT: 10 * time.Millisecond, Learner: true}
	l := New(cfg)
	h.nodes[id] = l
	h.installView(nv)
	return l
}

// installView delivers an m-update to every live node.
func (h *harness) installView(v proto.View) {
	h.view = v
	for id, n := range h.nodes {
		if !h.crashed[id] {
			n.OnViewChange(v)
		}
	}
}

// crash stops a node: all its in-flight and future messages are dropped.
func (h *harness) crash(id proto.NodeID) {
	h.crashed[id] = true
	h.dropWhere(func(e envelope) bool { return e.to == id || e.from == id })
}

// removeFromView installs a view without the given node (the m-update after
// lease expiry, §3.4).
func (h *harness) removeFromView(id proto.NodeID) {
	nv := proto.View{Epoch: h.view.Epoch + 1}
	for _, m := range h.view.Members {
		if m != id {
			nv.Members = append(nv.Members, m)
		}
	}
	for _, l := range h.view.Learners {
		if l != id {
			nv.Learners = append(nv.Learners, l)
		}
	}
	h.installView(nv)
}

// step delivers the oldest in-flight message. Returns false if none remain.
func (h *harness) step() bool {
	for len(h.msgs) > 0 {
		e := h.msgs[0]
		h.msgs = h.msgs[1:]
		if h.crashed[e.to] || h.crashed[e.from] {
			continue
		}
		if n, ok := h.nodes[e.to]; ok {
			n.Deliver(e.from, e.msg)
			return true
		}
	}
	return false
}

// run delivers messages FIFO until the network is quiet.
func (h *harness) run() {
	for i := 0; ; i++ {
		if !h.step() {
			return
		}
		if i > 1_000_000 {
			h.t.Fatal("harness: message storm (protocol not quiescing)")
		}
	}
}

// runShuffled delivers all messages in a random order drawn from rng,
// including messages generated along the way.
func (h *harness) runShuffled(rng *rand.Rand) {
	for i := 0; len(h.msgs) > 0; i++ {
		j := rng.Intn(len(h.msgs))
		h.msgs[0], h.msgs[j] = h.msgs[j], h.msgs[0]
		if !h.step() {
			return
		}
		if i > 1_000_000 {
			h.t.Fatal("harness: message storm")
		}
	}
}

// dropWhere removes in-flight messages matching the predicate and returns
// how many were dropped.
func (h *harness) dropWhere(match func(envelope) bool) int {
	kept := h.msgs[:0]
	dropped := 0
	for _, e := range h.msgs {
		if match(e) {
			dropped++
		} else {
			kept = append(kept, e)
		}
	}
	h.msgs = kept
	return dropped
}

// duplicateAll duplicates every in-flight message.
func (h *harness) duplicateAll() {
	h.msgs = append(h.msgs, h.msgs...)
}

// advance moves the clock and ticks every live node.
func (h *harness) advance(d time.Duration) {
	h.now += d
	for id, n := range h.nodes {
		if !h.crashed[id] {
			n.Tick()
		}
	}
}

func (h *harness) submit(id proto.NodeID, op proto.ClientOp) uint64 {
	h.nextOp++
	op.ID = h.nextOp
	h.nodes[id].Submit(op)
	return h.nextOp
}

func (h *harness) write(id proto.NodeID, key proto.Key, val string) uint64 {
	return h.submit(id, proto.ClientOp{Kind: proto.OpWrite, Key: key, Value: proto.Value(val)})
}

func (h *harness) read(id proto.NodeID, key proto.Key) uint64 {
	return h.submit(id, proto.ClientOp{Kind: proto.OpRead, Key: key})
}

func (h *harness) faa(id proto.NodeID, key proto.Key, delta int64) uint64 {
	return h.submit(id, proto.ClientOp{Kind: proto.OpFAA, Key: key, Value: proto.EncodeInt64(delta)})
}

func (h *harness) cas(id proto.NodeID, key proto.Key, expect, val string) uint64 {
	return h.submit(id, proto.ClientOp{Kind: proto.OpCAS, Key: key, Expected: proto.Value(expect), Value: proto.Value(val)})
}

// completion returns the completion for opID at node id, or fails the test.
func (h *harness) completion(id proto.NodeID, opID uint64) proto.Completion {
	h.t.Helper()
	for _, c := range h.done[id] {
		if c.OpID == opID {
			return c
		}
	}
	h.t.Fatalf("node %d: no completion for op %d (have %v)", id, opID, h.done[id])
	return proto.Completion{}
}

// hasCompletion reports whether opID completed at node id.
func (h *harness) hasCompletion(id proto.NodeID, opID uint64) bool {
	for _, c := range h.done[id] {
		if c.OpID == opID {
			return true
		}
	}
	return false
}

// entry reads a key's record directly from a node's store.
func (h *harness) entry(id proto.NodeID, key proto.Key) kvs.Entry {
	e, _ := h.nodes[id].Store().Get(key)
	return e
}

// requireConverged asserts every live serving node holds the same Valid
// (value, ts) for the key and returns that entry.
func (h *harness) requireConverged(key proto.Key) kvs.Entry {
	h.t.Helper()
	var ref kvs.Entry
	first := true
	for _, id := range h.view.Members {
		if h.crashed[id] {
			continue
		}
		e := h.entry(id, key)
		if e.State != kvs.Valid {
			h.t.Fatalf("node %d: key %d not Valid (state=%v ts=%v)", id, key, e.State, e.TS)
		}
		if first {
			ref = e
			first = false
			continue
		}
		if e.TS != ref.TS || string(e.Value) != string(ref.Value) {
			h.t.Fatalf("divergence on key %d: node %d has (%q,%v) vs (%q,%v)",
				key, id, e.Value, e.TS, ref.Value, ref.TS)
		}
	}
	return ref
}

// forceConverge drives request-triggered recovery: replay timers in Hermes
// arm when a request touches an Invalid key (§3.4), so after message loss a
// quiet key can legitimately sit Invalid until someone asks for it. This
// issues reads at every non-Valid replica and ticks until all are Valid.
func (h *harness) forceConverge(key proto.Key) {
	h.t.Helper()
	for i := 0; i < 100; i++ {
		allValid := true
		for _, id := range h.view.Members {
			if h.crashed[id] {
				continue
			}
			if e := h.entry(id, key); e.State != kvs.Valid {
				allValid = false
				h.read(id, key)
			}
		}
		if allValid {
			return
		}
		h.advance(15 * time.Millisecond)
		h.run()
	}
	h.t.Fatalf("key %d never converged", key)
}

// requireNoInflight asserts the network is quiet.
func (h *harness) requireNoInflight() {
	h.t.Helper()
	if len(h.msgs) != 0 {
		h.t.Fatalf("%d messages still in flight: %v", len(h.msgs), describe(h.msgs))
	}
}

func describe(msgs []envelope) string {
	s := ""
	for i, e := range msgs {
		if i > 5 {
			return s + "..."
		}
		s += fmt.Sprintf("[%d->%d %T]", e.from, e.to, e.msg)
	}
	return s
}
