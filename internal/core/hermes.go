// Package core implements the Hermes replication protocol — the paper's
// primary contribution (§3): a membership-based, broadcast, invalidation
// protocol with per-key logical timestamps that provides
//
//   - linearizable local reads at every replica,
//   - decentralized, inter-key-concurrent, non-conflicting writes that
//     commit after one round-trip of INV/ACK (plus an off-critical-path VAL),
//   - conflicting single-key RMWs (§3.6),
//   - fault tolerance through safely replayable writes (§3.1, §3.4).
//
// A Hermes replica is a deterministic single-threaded state machine
// implementing proto.Replica; the same code runs under the discrete-event
// simulator (internal/sim) and the live goroutine runtime
// (internal/cluster). Optimizations O1 (VAL elision), O2 (virtual node IDs)
// and O3 (broadcast ACKs) from §3.3, and the clock-free read validation of
// §8, are all implemented and individually switchable for ablation.
package core

import (
	"bytes"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

// Config parameterizes a Hermes replica.
type Config struct {
	// ID is this replica's node ID.
	ID proto.NodeID
	// View is the initial reliable-membership view.
	View proto.View
	// Env connects the replica to its harness.
	Env proto.Env
	// Store holds the replicated records; if nil a private store is created.
	// In the live runtime the store is shared with the lock-free read path.
	Store *kvs.Store
	// MLT is the message-loss timeout (§3.4): how long a request may sit on
	// an Invalid key, or an INV broadcast may go unacknowledged, before the
	// replica suspects loss and retransmits or replays.
	MLT time.Duration
	// ElideVAL enables optimization O1: a coordinator whose write was
	// superseded by a higher-timestamp concurrent write (Trans state) skips
	// the VAL broadcast for it.
	ElideVAL bool
	// VirtualIDs enables optimization O2: the set of coordinator IDs this
	// node may stamp writes with, improving conflict-resolution fairness.
	// Empty means {uint16(ID)}. All nodes' sets must be disjoint and
	// CIDOwner must invert the assignment.
	VirtualIDs []uint16
	// CIDOwner maps a timestamp's cid back to the physical node that owns
	// it; nil means the identity mapping cid -> NodeID(cid).
	CIDOwner func(cid uint16) proto.NodeID
	// EarlyACKs enables optimization O3: followers broadcast ACKs to all
	// replicas and validate once all ACKs are seen, halving read-blocking
	// latency; VALs are not sent (their role is subsumed).
	EarlyACKs bool
	// NoLSC disables reliance on loosely synchronized clocks for reads
	// (§8): reads execute speculatively and are released when a subsequent
	// local update commit — or an explicit membership check acknowledged by
	// a majority — proves this replica is still in the latest membership.
	NoLSC bool
	// Learner starts the replica as a shadow replica (§3.4 Recovery): it
	// follows writes but serves no client requests until promoted.
	Learner bool
	// Rand seeds virtual-ID selection; nil uses a fixed per-node seed.
	Rand *rand.Rand
}

// Metrics counts protocol events; the ablation benches read them. The
// read-side fields (Reads, StalledReads, FastPathReads, FastPathMisses) are
// backed by atomics so both the event loop and fast-path caller goroutines
// can bump them; everything else is event-loop-private, so Metrics must be
// read at quiescence for those fields to be exact.
type Metrics struct {
	Reads, Writes, RMWs     uint64 // client ops submitted
	INVsSent, ACKsSent      uint64
	VALsSent                uint64
	VALsElided              uint64 // O1 savings
	Replays                 uint64 // write replays started
	Retransmits             uint64 // INV rebroadcasts after mlt
	RMWAborts               uint64
	RMWRecovered            uint64 // RMWs completed OK after a replay committed them (§3.6 verdict)
	StaleEpochDrops         uint64
	StalledReads            uint64 // reads that found the key not Valid
	FastPathReads           uint64 // reads served lock-free by ReadLocal
	FastPathMisses          uint64 // ReadLocal fallbacks to the Submit path
	EarlyValidations        uint64 // O3: validated from ACKs before any VAL
	MChecks                 uint64 // §8 membership checks issued
	SpecReadsFlushedByWrite uint64 // §8 reads released by a local commit
	TeachACKs               uint64 // ACK-without-apply carrying the rival entry
	TaughtApplied           uint64 // rival entries installed from teaching ACKs
}

// Hermes is one replica's protocol state machine.
type Hermes struct {
	cfg     Config
	id      proto.NodeID
	env     proto.Env
	store   *kvs.Store
	view    proto.View
	meta    map[proto.Key]*keyMeta
	rng     *rand.Rand
	oper    bool // has a valid RM lease; serves client requests
	metrics Metrics

	// gate is the atomically-published condition for the lock-free read
	// fast path; the read-side counters beneath it are the Metrics fields
	// two goroutine classes bump (see ReadLocal). reads counts only
	// Submit-path reads; the total is reads+fastReads. The fast-path pair is
	// striped (readCounter) because every reader goroutine bumps it.
	gate                  ReadGate
	reads                 atomic.Uint64
	fastReads, fastMisses readCounter
	stalledReads          atomic.Uint64

	cidOwner   func(uint16) proto.NodeID
	virtualIDs []uint16

	// wset caches h.view.WriteSet(h.id), recomputed on every view install:
	// the write hot path consults it once per INV/ACK/VAL broadcast and per
	// received ACK, and WriteSet allocates on each call.
	wset []proto.NodeID

	// §8 clock-free read validation state.
	specReads []specRead
	checkSeq  uint64
	checkAcks int
	checkUpTo int // specReads prefix covered by the outstanding check
	checkOpen bool

	// Learner (shadow replica) catch-up state.
	learner      bool
	fetchCursor  uint64
	fetchBusy    bool
	fetchRetryAt time.Duration
	fetchDone    bool
	onCaughtUp   func() // invoked once the datastore has been reconstructed
}

type specRead struct {
	op  proto.ClientOp
	val proto.Value
}

// keyMeta holds the transient coordination state of one key. A meta exists
// only while the key has an in-flight update, stalled requests, an armed
// replay timer or buffered early ACKs; quiescent keys carry no overhead.
type keyMeta struct {
	pend     *pending
	waiters  []proto.ClientOp
	replayAt time.Duration // when non-zero: replay if still Invalid then
	// O3 early-validation bookkeeping for the follower side.
	ackTS  proto.TS
	ackers map[proto.NodeID]bool
}

// nodeSet is an allocation-free set of node IDs (the ID space is 8-bit).
// pending embeds one per update instead of a map: the write hot path resets
// and repopulates it once per INV round, and a map there costs an allocation
// per write.
type nodeSet [4]uint64

func (s *nodeSet) add(n proto.NodeID)      { s[n>>6] |= 1 << (n & 63) }
func (s *nodeSet) has(n proto.NodeID) bool { return s[n>>6]&(1<<(n&63)) != 0 }
func (s *nodeSet) clear()                  { *s = nodeSet{} }

// pending tracks an update this node coordinates (original write, RMW, or a
// replay of a write it learned about through an INV).
type pending struct {
	ts       proto.TS
	val      proto.Value
	rmw      bool
	replay   bool
	hasOp    bool
	op       proto.ClientOp
	oldVal   proto.Value // FAA result
	acked    nodeSet
	resendAt time.Duration
	// slipped records that a view excluding this replica was installed while
	// the pend was open: updates may then have committed without our ACK,
	// which voids the §3.6 version-jump verdict (see applyINV).
	slipped bool
}

// New builds a Hermes replica from cfg. The replica is operational
// immediately unless cfg.Learner is set.
func New(cfg Config) *Hermes {
	if cfg.Env == nil {
		panic("core: Config.Env is required")
	}
	if cfg.MLT <= 0 {
		cfg.MLT = 10 * time.Millisecond
	}
	st := cfg.Store
	if st == nil {
		st = kvs.New(16)
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(cfg.ID) + 1))
	}
	h := &Hermes{
		cfg:        cfg,
		id:         cfg.ID,
		env:        cfg.Env,
		store:      st,
		view:       cfg.View.Clone(),
		meta:       make(map[proto.Key]*keyMeta),
		rng:        rng,
		oper:       !cfg.Learner,
		learner:    cfg.Learner,
		virtualIDs: cfg.VirtualIDs,
		cidOwner:   cfg.CIDOwner,
	}
	if len(h.virtualIDs) == 0 {
		h.virtualIDs = []uint16{uint16(cfg.ID)}
	}
	if h.cidOwner == nil {
		h.cidOwner = func(cid uint16) proto.NodeID { return proto.NodeID(cid) }
	}
	h.wset = h.view.WriteSet(h.id)
	h.publishGate()
	return h
}

// VirtualIDs returns the disjoint virtual-ID set {id, id+n, id+2n, ...} of
// size k for a node in a cluster of n nodes — the assignment scheme of the
// paper's O2 example (§3.3). Pair with StrideOwner(n).
func VirtualIDs(id proto.NodeID, n, k int) []uint16 {
	out := make([]uint16, k)
	for i := 0; i < k; i++ {
		out[i] = uint16(int(id) + i*n)
	}
	return out
}

// StrideOwner returns the CIDOwner inverse of VirtualIDs for an n-node
// cluster.
func StrideOwner(n int) func(uint16) proto.NodeID {
	return func(cid uint16) proto.NodeID { return proto.NodeID(int(cid) % n) }
}

// ID implements proto.Replica.
func (h *Hermes) ID() proto.NodeID { return h.id }

// View returns the replica's current membership view.
func (h *Hermes) View() proto.View { return h.view }

// Metrics returns a snapshot of the replica's protocol counters.
func (h *Hermes) Metrics() Metrics {
	m := h.metrics
	m.FastPathReads = h.fastReads.Load()
	m.FastPathMisses = h.fastMisses.Load()
	m.Reads = h.reads.Load() + m.FastPathReads
	m.StalledReads = h.stalledReads.Load()
	return m
}

// Store exposes the underlying record store (the live runtime's lock-free
// read path and tests read it).
func (h *Hermes) Store() *kvs.Store { return h.store }

// SetOperational marks the replica as holding (or not holding) a valid RM
// lease. Non-operational replicas reject client requests (§2.4: nodes on a
// minority partition stop serving before the membership is updated).
func (h *Hermes) SetOperational(ok bool) {
	h.oper = ok
	h.publishGate()
}

// Operational reports whether the replica currently serves client requests.
func (h *Hermes) Operational() bool { return h.oper && !h.learner }

// SetNoLSC flips §8 clock-free read mode at runtime — an operator restoring
// trust in loosely synchronized clocks (or withdrawing it when skew is
// detected) without a restart. Must be called from the event loop's
// goroutine, like any state mutation. Enabling closes the read-gate fast
// path immediately; disabling reopens it, and reads already queued
// speculatively still drain through their majority proof (Tick and commit
// flushes are gated on pending reads, not on the mode).
func (h *Hermes) SetNoLSC(on bool) {
	if h.cfg.NoLSC == on {
		return
	}
	h.cfg.NoLSC = on
	h.publishGate()
}

// SetOnCaughtUp registers a callback fired when a learner finishes state
// transfer and is ready to be promoted to a serving member.
func (h *Hermes) SetOnCaughtUp(fn func()) { h.onCaughtUp = fn }

// entry fetches the key's record; missing keys read as Valid with a zero
// timestamp and nil value (the store's implicit initial state).
func (h *Hermes) entry(k proto.Key) kvs.Entry {
	e, ok := h.store.Get(k)
	if !ok {
		return kvs.Entry{State: kvs.Valid}
	}
	return e
}

// safeVal returns an entry's value in a form that may outlive the current
// event-loop turn: owner-backed values (zero-copy adopted from a pooled wire
// frame) are cloned, because the pool reclaims the frame once a newer entry
// replaces this one; owner-less values are immutable private heap slices and
// alias freely. Every value that escapes the turn — completions, messages
// encoded asynchronously by the transport, spec-read and pending buffers —
// must pass through here.
func safeVal(e kvs.Entry) proto.Value {
	if e.Owner != nil {
		return e.Value.Clone()
	}
	return e.Value
}

func (h *Hermes) metaOf(k proto.Key) *keyMeta {
	m := h.meta[k]
	if m == nil {
		m = &keyMeta{}
		h.meta[k] = m
	}
	return m
}

// sortedMetaKeys snapshots the keys with live coordination state in key
// order. Tick and OnViewChange iterate this instead of the meta map so the
// order of retransmissions and rebroadcasts — and therefore every downstream
// network event — is deterministic, which is what makes chaos-harness runs
// exactly replayable from a seed.
func (h *Hermes) sortedMetaKeys() []proto.Key {
	if len(h.meta) == 0 {
		return nil
	}
	keys := make([]proto.Key, 0, len(h.meta))
	for k := range h.meta {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// gc drops the key's meta if it holds no state.
func (h *Hermes) gc(k proto.Key, m *keyMeta) {
	if m.pend == nil && len(m.waiters) == 0 && m.replayAt == 0 && m.ackers == nil {
		delete(h.meta, k)
	}
}

// Submit implements proto.Replica.
func (h *Hermes) Submit(op proto.ClientOp) {
	if !h.Operational() {
		h.env.Complete(proto.Completion{OpID: op.ID, Kind: op.Kind, Key: op.Key, Status: proto.NotOperational})
		return
	}
	switch op.Kind {
	case proto.OpRead:
		h.reads.Add(1)
	case proto.OpWrite:
		h.metrics.Writes++
	default:
		h.metrics.RMWs++
	}
	e := h.entry(op.Key)
	if e.State != kvs.Valid || h.pendingOn(op.Key) {
		if op.Kind == proto.OpRead && e.State == kvs.Valid {
			// Valid but this node coordinates an in-flight update whose
			// local apply is imminent; still safe to read the Valid value.
			h.completeRead(op, safeVal(e))
			return
		}
		if op.Kind == proto.OpRead {
			h.stalledReads.Add(1)
		}
		h.stall(op, e)
		return
	}
	if op.Kind == proto.OpRead {
		h.completeRead(op, safeVal(e))
		return
	}
	h.startUpdate(op, e)
}

func (h *Hermes) pendingOn(k proto.Key) bool {
	m := h.meta[k]
	return m != nil && m.pend != nil
}

// stall queues op on its key and arms the replay timer: if the key is still
// Invalid after the message-loss timeout, the missing VAL is presumed lost
// and the write is replayed (§3.4 Imperfect Links).
func (h *Hermes) stall(op proto.ClientOp, e kvs.Entry) {
	m := h.metaOf(op.Key)
	m.waiters = append(m.waiters, op)
	if e.State == kvs.Invalid && m.pend == nil && m.replayAt == 0 {
		m.replayAt = h.env.Now() + h.cfg.MLT
	}
}

func (h *Hermes) completeRead(op proto.ClientOp, val proto.Value) {
	if h.cfg.NoLSC {
		// §8: execute speculatively; release on the next commit proof.
		h.specReads = append(h.specReads, specRead{op: op, val: val})
		return
	}
	h.env.Complete(proto.Completion{OpID: op.ID, Kind: proto.OpRead, Key: op.Key, Status: proto.OK, Value: val})
}

// startUpdate begins coordinating a write or RMW for a key currently in
// Valid state with no local pending update (§3.2 coordinator steps CTS,
// CINV).
func (h *Hermes) startUpdate(op proto.ClientOp, e kvs.Entry) {
	var newVal, oldVal proto.Value
	rmw := op.Kind.IsRMW()
	switch op.Kind {
	case proto.OpWrite:
		newVal = op.Value
	case proto.OpCAS:
		if !bytes.Equal(e.Value, op.Expected) {
			// Failed CAS is a linearizable read of the current value; no
			// protocol action needed since the key is Valid.
			h.env.Complete(proto.Completion{OpID: op.ID, Kind: op.Kind, Key: op.Key, Status: proto.CASFailed, Value: safeVal(e)})
			return
		}
		newVal = op.Value
	case proto.OpFAA:
		oldVal = safeVal(e)
		newVal = proto.EncodeInt64(proto.DecodeInt64(e.Value) + proto.DecodeInt64(op.Value))
	default:
		// Reads are served from the local Valid copy and never coordinate.
		panic("core: non-update op kind reached startUpdate")
	}

	// CTS: writes advance the version by 2, RMWs by 1, so a write racing an
	// RMW from the same base version always outranks it and the RMW safely
	// aborts (§3.6).
	ts := proto.TS{Version: e.TS.Version + 2, CID: h.pickCID()}
	if rmw {
		ts.Version = e.TS.Version + 1
	}

	m := h.metaOf(op.Key)
	m.pend = &pending{
		ts: ts, val: newVal.Clone(), rmw: rmw,
		hasOp: true, op: op, oldVal: oldVal,
		resendAt: h.env.Now() + h.cfg.MLT,
	}
	// CINV: apply locally and broadcast the invalidation with the value.
	h.store.Update(op.Key, kvs.Entry{Value: m.pend.val, TS: ts, State: kvs.Write, RMW: rmw})
	h.broadcastINV(op.Key, m.pend)
	h.checkCommit(op.Key, m)
}

func (h *Hermes) pickCID() uint16 {
	if len(h.virtualIDs) == 1 {
		return h.virtualIDs[0]
	}
	return h.virtualIDs[h.rng.Intn(len(h.virtualIDs))]
}

func (h *Hermes) broadcastINV(k proto.Key, p *pending) {
	msg := INV{Epoch: h.view.Epoch, Key: k, TS: p.ts, Value: p.val, RMW: p.rmw}
	for _, n := range h.wset {
		if !p.acked.has(n) {
			h.env.Send(n, msg)
			h.metrics.INVsSent++
		}
	}
}

// startReplay takes on the coordinator role for the key's last-seen write,
// re-broadcasting INVs with the *original* timestamp and value so the write
// is linearized exactly where the failed coordinator would have put it
// (§3.2 Write Replays). Early value propagation in INVs is what makes this
// possible: every invalidated node already holds the value.
func (h *Hermes) startReplay(k proto.Key, m *keyMeta, e kvs.Entry) {
	h.metrics.Replays++
	m.replayAt = 0
	m.pend = &pending{
		// The replay value escapes the turn: it is rebroadcast from timers
		// and encoded asynchronously, so an owner-backed store value must be
		// cloned out of its pooled frame first.
		ts: e.TS, val: safeVal(e), rmw: e.RMW, replay: true,
		resendAt: h.env.Now() + h.cfg.MLT,
	}
	h.store.SetState(k, kvs.Replay)
	h.broadcastINV(k, m.pend)
	h.checkCommit(k, m)
}

// Deliver implements proto.Replica.
func (h *Hermes) Deliver(from proto.NodeID, msg any) {
	switch t := msg.(type) {
	case INV:
		h.onINV(from, t)
	case ACK:
		h.onACK(from, t)
	case VAL:
		h.onVAL(from, t)
	case MCheck:
		h.onMCheck(from, t)
	case MCheckAck:
		h.onMCheckAck(from, t)
	case ChunkReq:
		h.onChunkReq(from, t)
	case ChunkResp:
		h.onChunkResp(from, t)
	default:
		panic("core: unknown message type delivered to Hermes replica")
	}
}

func (h *Hermes) staleEpoch(e uint32) bool {
	if e != h.view.Epoch {
		h.metrics.StaleEpochDrops++
		return true
	}
	return false
}

// onINV implements FINV/FACK and the RMW variant FRMW-ACK. An INV decoded
// from the wire may carry one reference on the frame buffer backing its
// value (inv.Owner); exactly one of the paths below consumes it — applyINV
// adopts it into the store, every non-apply path releases it.
func (h *Hermes) onINV(from proto.NodeID, inv INV) {
	if h.staleEpoch(inv.Epoch) {
		inv.ReleaseOwner()
		return
	}
	e := h.entry(inv.Key)
	cmp := inv.TS.Compare(e.TS)

	if inv.RMW && cmp < 0 {
		// FRMW-ACK: an RMW that has already lost. Respond with the local
		// state as an INV (the same message a write replay uses) so the RMW
		// coordinator observes the higher timestamp and aborts.
		inv.ReleaseOwner()
		h.env.Send(from, INV{Epoch: h.view.Epoch, Key: inv.Key, TS: e.TS, Value: safeVal(e), RMW: e.RMW})
		h.metrics.INVsSent++
		return
	}

	if cmp > 0 {
		h.applyINV(inv)
	} else {
		inv.ReleaseOwner()
	}
	h.sendACK(from, inv, cmp)
}

// applyINV installs a higher-timestamped update: FINV's state transition
// plus CRMW-abort when this node coordinates a pending RMW.
func (h *Hermes) applyINV(inv INV) {
	m := h.meta[inv.Key]
	st := kvs.Invalid
	if m != nil && m.pend != nil {
		p := m.pend
		switch {
		case p.rmw:
			// The arriving update's base: every update starts from a Valid —
			// committed — version at its coordinator, one below an RMW's
			// timestamp and two below a write's (§3.1, §3.6).
			base := inv.TS.Version - 2
			if inv.RMW {
				base = inv.TS.Version - 1
			}
			if p.hasOp && !p.replay && base >= p.ts.Version && !p.slipped {
				// §3.6 verdict, version-jump case: the arriving chain's base
				// was a COMMITTED version at or above ours. Every commit
				// gathers ACKs from the full write set — including us — and
				// this pend being open proves we never acknowledged a rival
				// from our base (doing so closes the pend right here). So the
				// committed version the chain built on can only be our own
				// RMW, committed on our behalf by a §3.4 write replay whose
				// VAL we missed, then overwritten — by a write two versions
				// up, or by a rival RMW exactly one version up (the case the
				// original `> p.ts.Version+1` check missed: an aborted FAA
				// whose +1 persisted, caught by the chaos harness under
				// fetch-delayed installs). Reporting Aborted would tell the
				// client an applied update had no effect — a linearizability
				// violation. Report success instead. (A same-version rival —
				// base below ours — still aborts below; and after a view
				// that excluded us the no-ACK-without-us premise is void, so
				// `slipped` falls back to the abort verdict.)
				h.metrics.RMWRecovered++
				c := proto.Completion{OpID: p.op.ID, Kind: p.op.Kind, Key: inv.Key, Status: proto.OK}
				if p.op.Kind == proto.OpFAA {
					c.Value = p.oldVal
				}
				h.env.Complete(c)
				m.pend = nil
				break
			}
			// CRMW-abort: our in-flight RMW lost to a higher-timestamped
			// update. Replayed RMWs abort silently; originals notify the
			// client.
			h.metrics.RMWAborts++
			if p.hasOp {
				h.env.Complete(proto.Completion{OpID: p.op.ID, Kind: p.op.Kind, Key: inv.Key, Status: proto.Aborted})
			}
			m.pend = nil
		case p.replay:
			// Our replay was superseded; the newer write subsumes it.
			m.pend = nil
		default:
			// A plain write keeps collecting ACKs: it still commits (writes
			// never abort) but the key stays invalid for the newer write.
			st = kvs.Trans
		}
	}
	// Zero-copy adoption: the entry takes over the INV's frame-buffer
	// reference (nil for sim/heap-decoded INVs, where Value is already a
	// private immutable slice). The store releases it when a newer entry
	// replaces this one.
	h.store.Update(inv.Key, kvs.Entry{Value: inv.Value, TS: inv.TS, State: st, RMW: inv.RMW, Owner: inv.Owner})
	if m != nil {
		// Stalled requests now wait for the newer write; re-arm its timer.
		if len(m.waiters) > 0 && st == kvs.Invalid && m.pend == nil {
			m.replayAt = h.env.Now() + h.cfg.MLT
		}
		// O3: ACKs gathered for a different timestamp are obsolete.
		if m.ackers != nil && m.ackTS != inv.TS {
			m.ackers = nil
		}
		h.gc(inv.Key, m)
	}
}

// sendACK acknowledges an INV: to the coordinator only, or — under O3 — to
// every replica so followers can validate without the VAL round. cmp is the
// INV's timestamp compared against the local entry; when the local entry
// outranked the INV (cmp < 0, ACK-without-apply) the ACK teaches the sender
// the rival entry so the losing write's coordinator never validates its copy
// blind to the in-flight chain above it.
func (h *Hermes) sendACK(from proto.NodeID, inv INV, cmp int) {
	ack := ACK{Epoch: h.view.Epoch, Key: inv.Key, TS: inv.TS}
	if cmp < 0 {
		e := h.entry(inv.Key)
		ack.Higher = true
		ack.HTS = e.TS
		ack.HVal = safeVal(e)
		ack.HRMW = e.RMW
		h.metrics.TeachACKs++
	}
	if !h.cfg.EarlyACKs {
		h.env.Send(from, ack)
		h.metrics.ACKsSent++
		return
	}
	for _, n := range h.wset {
		h.env.Send(n, ack)
		h.metrics.ACKsSent++
	}
	// Count our own ACK toward early validation.
	h.recordEarlyACK(h.id, inv.Key, inv.TS)
}

// onACK implements CACK on the coordinator and O3 early validation on
// followers.
func (h *Hermes) onACK(from proto.NodeID, ack ACK) {
	if h.staleEpoch(ack.Epoch) {
		return
	}
	if ack.Higher {
		h.learnHigher(ack)
	}
	if m := h.meta[ack.Key]; m != nil && m.pend != nil && m.pend.ts == ack.TS {
		m.pend.acked.add(from)
		h.checkCommit(ack.Key, m)
		return
	}
	if h.cfg.EarlyACKs {
		h.recordEarlyACK(from, ack.Key, ack.TS)
	}
}

// learnHigher installs a teaching ACK's rival entry exactly as if the
// rival's own INV had arrived. The installed entry is Invalid — the teacher
// holds it uncommitted, so the rival's VAL or the §3.4 replay machinery
// (not this node) must validate it.
//
// This closes the stale-RMW-read hole: without the payload, a write that
// gathered an ACK-without-apply validates its own copy at commit time blind
// to the in-flight rival above it, and an RMW minted from that Valid copy
// reads a chain the rival later splices into below the RMW's timestamp.
// Taught, the coordinator's entry advances past its pending write instead
// (the write still commits — a plain write serializes before the rival and
// never aborts), the key stays Invalid, and the RMW waits with the other
// stalled requests until the rival's chain resolves. A pending RMW or
// replay outranked by the taught entry is handled by applyINV itself
// (CRMW-abort / subsumption). Crucially the pending's own timestamp is
// never reissued: its INV is already out, so a replay may have committed —
// and readers observed — it without this coordinator's knowledge.
func (h *Hermes) learnHigher(ack ACK) {
	e := h.entry(ack.Key)
	if !e.TS.Before(ack.HTS) {
		return
	}
	h.metrics.TaughtApplied++
	h.applyINV(INV{Epoch: ack.Epoch, Key: ack.Key, TS: ack.HTS, Value: ack.HVal, RMW: ack.HRMW})
}

// recordEarlyACK tracks which replicas have acknowledged (key, ts). ACKs may
// race ahead of their INV, so acknowledgments for a timestamp newer than the
// local one are buffered. Once every non-coordinator replica has ACKed the
// local timestamp, the write is globally visible and this follower may
// validate without waiting for a VAL (O3, §3.3).
func (h *Hermes) recordEarlyACK(from proto.NodeID, k proto.Key, ts proto.TS) {
	e := h.entry(k)
	if ts.Before(e.TS) {
		return // stale: a newer update superseded this write locally
	}
	m := h.metaOf(k)
	if m.ackers == nil || m.ackTS != ts {
		if m.ackers != nil && m.ackTS.After(ts) {
			h.gc(k, m)
			return // buffer already tracks a newer write
		}
		m.ackTS = ts
		m.ackers = make(map[proto.NodeID]bool)
	}
	m.ackers[from] = true
	h.tryEarlyValidate(k, m)
	h.gc(k, m)
}

// tryEarlyValidate validates the key if it is Invalid at the buffered ACK
// timestamp and every required replica has acknowledged.
func (h *Hermes) tryEarlyValidate(k proto.Key, m *keyMeta) {
	if m.ackers == nil {
		return
	}
	e := h.entry(k)
	if m.ackTS != e.TS || e.State != kvs.Invalid {
		return
	}
	coord := h.cidOwner(e.TS.CID)
	for _, n := range h.view.WriteSet(coord) {
		if !m.ackers[n] {
			return
		}
	}
	h.metrics.EarlyValidations++
	m.ackers = nil
	h.validate(k, m)
}

// onVAL implements FVAL: validate iff the timestamps match exactly.
func (h *Hermes) onVAL(from proto.NodeID, val VAL) {
	if h.staleEpoch(val.Epoch) {
		return
	}
	e := h.entry(val.Key)
	if e.TS != val.TS || e.State == kvs.Valid {
		return
	}
	m := h.metaOf(val.Key)
	if m.pend != nil && m.pend.ts == val.TS {
		// Another node replayed our write to completion before our own ACKs
		// arrived; the write is committed.
		h.finishPending(val.Key, m)
		return
	}
	h.validate(val.Key, m)
}

// checkCommit fires CACK once every node in the current view's write set has
// acknowledged the pending update.
func (h *Hermes) checkCommit(k proto.Key, m *keyMeta) {
	p := m.pend
	if p == nil {
		return
	}
	for _, n := range h.wset {
		if !p.acked.has(n) {
			return
		}
	}
	h.finishPending(k, m)
}

// finishPending completes a gathered update: answer the client, then
// validate — or fall back to Invalid if a concurrent higher-timestamped
// write superseded ours while we gathered ACKs (Trans), in which case O1
// elides the now-unnecessary VAL broadcast.
func (h *Hermes) finishPending(k proto.Key, m *keyMeta) {
	p := m.pend
	m.pend = nil
	if p.hasOp {
		c := proto.Completion{OpID: p.op.ID, Kind: p.op.Kind, Key: k, Status: proto.OK}
		if p.op.Kind == proto.OpFAA {
			c.Value = p.oldVal
		}
		h.env.Complete(c)
	}
	// The commit is also a proof of current membership for §8 reads.
	h.flushSpecReadsOnCommit()

	e := h.entry(k)
	switch {
	case e.TS == p.ts:
		if !h.cfg.EarlyACKs {
			h.broadcastVAL(k, p.ts)
		}
		h.validate(k, m)
	case e.State == kvs.Valid:
		// The superseding write already validated the key (its VAL or early
		// ACKs arrived before our last ACK). Our write committed; nothing to
		// validate, and O1 applies to our own VAL.
		h.elideOrBroadcastVAL(k, p.ts)
		h.drainWaiters(k, m)
		h.gc(k, m)
	default:
		// Trans: key stays Invalid until the newer write validates it. In
		// place of a VAL for our outranked timestamp we relay the newer
		// entry's INV: a naked VAL would let a follower still holding our
		// copy validate it while the rival is in flight, and an RMW minted
		// from that Valid copy reads a chain the rival splices into below
		// the RMW's timestamp — the same hole teaching ACKs close at the
		// coordinator. §3.4 lets any invalidated node re-broadcast a write
		// it knows; the rival's own VAL or a replay validates it.
		h.store.SetState(k, kvs.Invalid)
		if len(m.waiters) > 0 && m.replayAt == 0 {
			m.replayAt = h.env.Now() + h.cfg.MLT
		}
		if h.cfg.ElideVAL || h.cfg.EarlyACKs {
			// O1/O3 already sent nothing here; followers stuck on our
			// timestamp cure via broadcast ACKs or replay + teaching.
			h.metrics.VALsElided++
		} else {
			h.relayHigherINV(k)
		}
		h.tryEarlyValidate(k, m)
		h.gc(k, m)
	}
}

// relayHigherINV re-broadcasts the entry that superseded a just-committed
// local write. Receivers still holding the outranked copy advance onto the
// rival's chain instead of waiting to validate a timestamp that never will;
// receivers already past it ACK harmlessly.
func (h *Hermes) relayHigherINV(k proto.Key) {
	e := h.entry(k)
	msg := INV{Epoch: h.view.Epoch, Key: k, TS: e.TS, Value: safeVal(e), RMW: e.RMW}
	for _, n := range h.wset {
		h.env.Send(n, msg)
		h.metrics.INVsSent++
	}
}

func (h *Hermes) elideOrBroadcastVAL(k proto.Key, ts proto.TS) {
	if h.cfg.ElideVAL || h.cfg.EarlyACKs {
		h.metrics.VALsElided++
		return
	}
	h.broadcastVAL(k, ts)
}

func (h *Hermes) broadcastVAL(k proto.Key, ts proto.TS) {
	msg := VAL{Epoch: h.view.Epoch, Key: k, TS: ts}
	for _, n := range h.wset {
		h.env.Send(n, msg)
		h.metrics.VALsSent++
	}
}

// validate transitions the key to Valid and serves its stalled requests.
func (h *Hermes) validate(k proto.Key, m *keyMeta) {
	h.store.SetState(k, kvs.Valid)
	m.replayAt = 0
	m.ackers = nil
	if m.pend == nil {
		h.drainWaiters(k, m)
	}
	h.gc(k, m)
}

// drainWaiters serves stalled requests in arrival order: reads complete
// against the Valid value; the first queued update becomes a new write,
// after which the key is no longer Valid and the rest keep waiting.
func (h *Hermes) drainWaiters(k proto.Key, m *keyMeta) {
	for len(m.waiters) > 0 {
		e := h.entry(k)
		if e.State != kvs.Valid || m.pend != nil {
			return
		}
		op := m.waiters[0]
		m.waiters = m.waiters[1:]
		if op.Kind == proto.OpRead {
			h.completeRead(op, safeVal(e))
			continue
		}
		h.startUpdate(op, e)
	}
}

// Tick implements proto.Replica: retransmission of unacknowledged INVs,
// write replays for keys stuck Invalid, learner chunk fetching and §8
// membership checks.
func (h *Hermes) Tick() {
	now := h.env.Now()
	for _, k := range h.sortedMetaKeys() {
		m := h.meta[k]
		if m == nil {
			continue // gc'd while handling an earlier key this tick
		}
		if p := m.pend; p != nil {
			if now >= p.resendAt {
				h.metrics.Retransmits++
				p.resendAt = now + h.cfg.MLT
				h.broadcastINV(k, p)
			}
			continue
		}
		if m.replayAt != 0 && now >= m.replayAt {
			if e := h.entry(k); e.State == kvs.Invalid {
				h.startReplay(k, m, e)
			} else {
				m.replayAt = 0
				h.gc(k, m)
			}
		}
	}
	// Not gated on cfg.NoLSC: reads queued while NoLSC was on still need
	// their majority proof after SetNoLSC(false) — the mode flip must drain
	// the residue, not strand it.
	if len(h.specReads) > 0 && !h.checkOpen {
		h.issueMCheck()
	}
	if h.learner && !h.fetchDone && (!h.fetchBusy || now >= h.fetchRetryAt) {
		h.fetchNextChunk()
	}
}

// OnViewChange implements proto.Replica: install the m-update (§3.4).
// Every pending update resets its gathered ACKs and rebroadcasts its INVs
// under the new epoch, so commitment is re-established against the new
// membership from scratch. An ACK gathered under an older epoch proves
// nothing about the node that sent it: it may since have crashed, lost its
// store, and rejoined as a learner whose chunk transfer delivered a snapshot
// that predates this very write — counting its dead incarnation's ACK would
// commit the write without ever invalidating the new incarnation, leaving
// that node Valid at a stale version. A coordinator minting a timestamp from
// that stale version then loses to the already-committed write and its
// update silently vanishes (found by the gray-failure chaos sweep; pinned by
// TestChaosStaleAckIncarnation).
func (h *Hermes) OnViewChange(v proto.View) {
	if v.Epoch <= h.view.Epoch {
		// Duplicate or stale m-update: a lossy wire may deliver the same
		// MUpdate twice, and the live runtime shuts the read gate before
		// *every* install — republish it here or a no-op install would leave
		// the fast path shut forever.
		h.publishGate()
		return
	}
	h.view = v.Clone()
	h.learner = v.IsLearner(h.id)
	excluded := !v.Contains(h.id) && !h.learner
	if v.Contains(h.id) {
		// Full member (covers a learner's promotion to serving member).
		h.oper = true
	} else if !h.learner {
		// Removed from the membership (e.g. we were on the losing side of a
		// partition): stop serving until re-added.
		h.oper = false
	}
	// An open membership check is against a dead epoch.
	h.checkOpen = false
	h.checkAcks = 0
	// Reopen (or keep shut) the lock-free read gate under the new epoch;
	// the live runtime shut it before this m-update entered the event loop.
	h.wset = h.view.WriteSet(h.id)
	h.publishGate()
	for _, k := range h.sortedMetaKeys() {
		m := h.meta[k]
		if m == nil {
			continue
		}
		p := m.pend
		if p == nil {
			continue
		}
		if excluded {
			// Commits in this view no longer need our ACK: the version-jump
			// verdict (applyINV) must not claim them as ours.
			p.slipped = true
		}
		p.acked.clear()
		p.resendAt = h.env.Now() + h.cfg.MLT
		h.broadcastINV(k, p)
		h.checkCommit(k, m)
	}
}

// --- §8: linearizable reads without loosely synchronized clocks ---

func (h *Hermes) issueMCheck() {
	h.checkSeq++
	h.checkOpen = true
	h.checkAcks = 0
	h.checkUpTo = len(h.specReads)
	h.metrics.MChecks++
	for _, n := range h.view.Others(h.id) {
		h.env.Send(n, MCheck{Epoch: h.view.Epoch, Seq: h.checkSeq})
	}
	// Degenerate single-node view: we are the majority.
	h.maybeReleaseSpecReads()
}

func (h *Hermes) onMCheck(from proto.NodeID, mc MCheck) {
	if h.staleEpoch(mc.Epoch) {
		return
	}
	h.env.Send(from, MCheckAck{Epoch: mc.Epoch, Seq: mc.Seq})
}

func (h *Hermes) onMCheckAck(from proto.NodeID, mc MCheckAck) {
	if h.staleEpoch(mc.Epoch) || !h.checkOpen || mc.Seq != h.checkSeq {
		return
	}
	h.checkAcks++
	h.maybeReleaseSpecReads()
}

func (h *Hermes) maybeReleaseSpecReads() {
	// Self counts toward the majority (the membership itself is maintained
	// by a majority-based protocol, §8).
	if h.checkAcks+1 < h.view.Quorum() {
		return
	}
	h.checkOpen = false
	n := h.checkUpTo
	if n > len(h.specReads) {
		n = len(h.specReads)
	}
	h.releaseSpecReads(n)
}

// flushSpecReadsOnCommit releases all speculative reads: a commit's ACK
// gathering strictly follows every queued read, and acknowledgments from all
// live replicas subsume the majority proof §8 requires.
func (h *Hermes) flushSpecReadsOnCommit() {
	// Gated on pending reads, not cfg.NoLSC: a commit proof is equally valid
	// for reads queued before a SetNoLSC(false) flip.
	if len(h.specReads) == 0 {
		return
	}
	h.metrics.SpecReadsFlushedByWrite += uint64(len(h.specReads))
	h.releaseSpecReads(len(h.specReads))
}

func (h *Hermes) releaseSpecReads(n int) {
	for i := 0; i < n; i++ {
		sr := h.specReads[i]
		h.env.Complete(proto.Completion{OpID: sr.op.ID, Kind: proto.OpRead, Key: sr.op.Key, Status: proto.OK, Value: sr.val})
	}
	h.specReads = h.specReads[n:]
	if len(h.specReads) == 0 {
		h.specReads = nil
		h.checkOpen = false
	} else if h.checkUpTo > n {
		h.checkUpTo -= n
	} else {
		h.checkUpTo = 0
	}
}

// --- §3.4 Recovery: shadow replica state transfer ---

// fetchChunkKeys is the state-transfer chunk size: both the member-rotation
// arithmetic and the per-request MaxKeys derive from it so the two cannot
// drift apart.
const fetchChunkKeys = 512

func (h *Hermes) fetchNextChunk() {
	members := h.view.Others(h.id)
	if len(members) == 0 {
		return
	}
	// Spread chunk reads across members, as the paper's recovery does.
	from := members[int(h.fetchCursor/fetchChunkKeys)%len(members)]
	h.fetchBusy = true
	h.fetchRetryAt = h.env.Now() + h.cfg.MLT
	h.env.Send(from, ChunkReq{Epoch: h.view.Epoch, Cursor: h.fetchCursor, MaxKeys: fetchChunkKeys})
}

func (h *Hermes) onChunkReq(from proto.NodeID, req ChunkReq) {
	if h.staleEpoch(req.Epoch) {
		return
	}
	resp := ChunkResp{Epoch: h.view.Epoch}
	// Cursor is the count of keys already transferred, interpreted against
	// this store's iteration order. Keys added concurrently are also pushed
	// to the learner via INVs, so skew between members' iteration orders
	// only risks re-sending records, which the timestamp check absorbs.
	skip := req.Cursor
	h.store.Range(func(k proto.Key, e kvs.Entry) bool {
		if skip > 0 {
			skip--
			return true
		}
		// safeVal, not e.Value: the response is encoded asynchronously by the
		// transport, and an owner-backed value's pooled frame may be recycled
		// the moment a newer update replaces this entry — shipping the live
		// slice would serialize whatever the pool's next frame holds into the
		// learner's store (the chunk-transfer aliasing bug).
		resp.Keys = append(resp.Keys, k)
		resp.Recs = append(resp.Recs, ChunkRec{TS: e.TS, Value: safeVal(e), RMW: e.RMW, Invalid: e.State != kvs.Valid})
		return len(resp.Keys) < req.MaxKeys
	})
	resp.Done = len(resp.Keys) < req.MaxKeys
	resp.Cursor = req.Cursor + uint64(len(resp.Keys))
	h.env.Send(from, resp)
}

func (h *Hermes) onChunkResp(from proto.NodeID, resp ChunkResp) {
	if h.staleEpoch(resp.Epoch) || !h.learner || h.fetchDone {
		return
	}
	if start := resp.Cursor - uint64(len(resp.Keys)); start != h.fetchCursor {
		return // response to a superseded (retried) request
	}
	h.fetchBusy = false
	for i, k := range resp.Keys {
		rec := resp.Recs[i]
		if e, ok := h.store.Get(k); ok && !rec.TS.After(e.TS) {
			continue // local copy is as new or newer (heard via INV)
		}
		st := kvs.Valid
		if rec.Invalid {
			st = kvs.Invalid
		}
		// rec.Value is private: wire-decoded ChunkRec values are heap copies,
		// and an in-process sender built them with safeVal — adopt directly.
		h.store.Update(k, kvs.Entry{Value: rec.Value, TS: rec.TS, State: st, RMW: rec.RMW})
	}
	h.fetchCursor = resp.Cursor
	if resp.Done {
		h.fetchDone = true
		// Republish the read gate at the catch-up transition: still shut
		// (the learner serves no reads until the promoting m-update), but
		// the transition is the documented republication point.
		h.publishGate()
		if h.onCaughtUp != nil {
			h.onCaughtUp()
		}
	}
}

// CaughtUp reports whether a learner has finished state transfer.
func (h *Hermes) CaughtUp() bool { return h.fetchDone }
