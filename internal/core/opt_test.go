package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

// O1: a coordinator that finished in Trans state (its write superseded)
// skips the outgoing broadcast, saving bandwidth (§3.3). Without O1 the
// Trans commit relays the superseding write's INV — not a VAL for its own
// outranked timestamp, which would let a follower validate a copy the rival
// is about to splice past (see finishPending).
func TestO1ElidesUnnecessaryVALs(t *testing.T) {
	run := func(elide bool) (sent, elided uint64) {
		h := newHarness(t, 3, func(c *Config) { c.ElideVAL = elide })
		h.write(0, 1, "low")  // (2,0) — will be superseded
		h.write(2, 1, "high") // (2,2)
		// Deliver INVs first so node 0 lands in Trans, then everything.
		for {
			h.dropWhere(func(e envelope) bool { _, is := e.msg.(ACK); return is })
			if len(h.msgs) == 0 {
				break
			}
			h.step()
		}
		// Now re-run the writes' ACK phases via retransmission.
		h.advance(15 * time.Millisecond)
		h.run()
		h.advance(15 * time.Millisecond)
		h.run()
		m := h.nodes[0].Metrics()
		return m.VALsSent + m.INVsSent, m.VALsElided
	}
	sentOff, elidedOff := run(false)
	sentOn, elidedOn := run(true)
	if elidedOff != 0 {
		t.Fatalf("baseline elided %d broadcasts", elidedOff)
	}
	if elidedOn == 0 {
		t.Fatal("O1 never elided a broadcast in a Trans commit")
	}
	if sentOn >= sentOff {
		t.Fatalf("O1 did not reduce outgoing broadcasts: %d vs %d", sentOn, sentOff)
	}
}

func TestO1StillConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := newHarness(t, 5, func(c *Config) { c.ElideVAL = true })
	for i := 0; i < 10; i++ {
		h.write(proto.NodeID(rng.Intn(5)), 1, string(rune('a'+i)))
	}
	for round := 0; round < 30; round++ {
		h.runShuffled(rng)
		h.advance(11 * time.Millisecond)
	}
	h.run()
	h.requireConverged(1)
}

// O2: virtual node IDs spread conflict-resolution wins across physical
// nodes. With k virtual IDs per node, a node's win rate on same-version
// conflicts depends on the drawn virtual ID, not its fixed physical rank.
func TestO2VirtualIDMappingRoundTrips(t *testing.T) {
	const n = 3
	owner := StrideOwner(n)
	seen := map[uint16]bool{}
	for id := proto.NodeID(0); id < n; id++ {
		for _, v := range VirtualIDs(id, n, 4) {
			if seen[v] {
				t.Fatalf("virtual id %d assigned twice", v)
			}
			seen[v] = true
			if owner(v) != id {
				t.Fatalf("owner(%d)=%d want %d", v, owner(v), id)
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("%d ids, want 12 disjoint", len(seen))
	}
}

func TestO2ImprovesFairness(t *testing.T) {
	// Count which node wins same-version conflicts over many trials, with
	// and without virtual IDs. Node 0 can never win without them (lowest
	// cid always loses the tiebreak); with them it must win sometimes.
	winsFor := func(k int) [2]int {
		var wins [2]int
		for trial := 0; trial < 200; trial++ {
			h := newHarness(t, 2, func(c *Config) {
				if k > 1 {
					c.VirtualIDs = VirtualIDs(c.ID, 2, k)
					c.CIDOwner = StrideOwner(2)
					c.Rand = rand.New(rand.NewSource(int64(trial*10) + int64(c.ID)))
				}
			})
			h.write(0, 1, "n0")
			h.write(1, 1, "n1")
			h.run()
			h.advance(15 * time.Millisecond)
			h.run()
			e := h.requireConverged(1)
			if string(e.Value) == "n0" {
				wins[0]++
			} else {
				wins[1]++
			}
		}
		return wins
	}
	base := winsFor(1)
	if base[0] != 0 {
		t.Fatalf("without O2 node 0 won %d tiebreaks; cid order should be deterministic", base[0])
	}
	virt := winsFor(8)
	if virt[0] < 40 || virt[1] < 40 {
		t.Fatalf("with O2 wins should spread, got %v", virt)
	}
}

// O3: followers broadcast ACKs and validate as soon as all ACKs are seen —
// no VAL needed, and a stalled read completes a half round-trip earlier.
func TestO3EarlyACKsValidateWithoutVAL(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.EarlyACKs = true })
	op := h.write(0, 1, "v")
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion: %+v", c)
	}
	e := h.requireConverged(1)
	if string(e.Value) != "v" {
		t.Fatalf("value=%q", e.Value)
	}
	var vals, early uint64
	for _, n := range h.nodes {
		m := n.Metrics()
		vals += m.VALsSent
		early += m.EarlyValidations
	}
	if vals != 0 {
		t.Fatalf("O3 sent %d VALs, want 0", vals)
	}
	if early == 0 {
		t.Fatal("no early validations recorded")
	}
}

func TestO3StalledReadCompletesOnACKs(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.EarlyACKs = true })
	h.write(0, 1, "v")
	// Deliver INVs only.
	h.step()
	h.step()
	op := h.read(1, 1)
	if h.hasCompletion(1, op) {
		t.Fatal("read served while Invalid")
	}
	// Deliver the broadcast ACKs; node 1 should validate from them alone,
	// never seeing a VAL.
	h.run()
	c := h.completion(1, op)
	if c.Status != proto.OK || string(c.Value) != "v" {
		t.Fatalf("read after early ACKs: %+v", c)
	}
}

func TestO3ACKBeforeINVIsBuffered(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.EarlyACKs = true })
	h.write(0, 1, "v")
	// Reorder: deliver node 2's INV, then its broadcast ACK to node 1,
	// and only then node 1's own INV.
	var inv1 envelope
	found := false
	h.dropWhere(func(e envelope) bool {
		if _, is := e.msg.(INV); is && e.to == 1 {
			inv1, found = e, true
			return true
		}
		return false
	})
	if !found {
		t.Fatal("INV to node 1 not found")
	}
	h.run() // node 2 ACKs to all; node 1 buffers the early ACK
	if e := h.entry(1, 1); e.State == kvs.Invalid {
		t.Fatal("node 1 should not be invalidated yet")
	}
	// Now the delayed INV arrives; with the buffered ACK plus its own, node
	// 1 validates immediately.
	h.nodes[1].Deliver(inv1.from, inv1.msg)
	h.run()
	e := h.entry(1, 1)
	if e.State != kvs.Valid || string(e.Value) != "v" {
		t.Fatalf("after reordered ACK/INV: %+v", e)
	}
	if h.nodes[1].Metrics().EarlyValidations != 1 {
		t.Fatal("validation should have come from buffered ACKs")
	}
}

func TestO3ConvergesUnderStress(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 5, func(c *Config) { c.EarlyACKs = true })
		for i := 0; i < 8; i++ {
			h.write(proto.NodeID(rng.Intn(5)), 1, string(rune('a'+i)))
			if rng.Intn(2) == 0 {
				h.runShuffled(rng)
			}
		}
		for round := 0; round < 40; round++ {
			h.dropWhere(func(envelope) bool { return rng.Float64() < 0.1 })
			h.runShuffled(rng)
			h.advance(11 * time.Millisecond)
		}
		h.run()
		h.forceConverge(1)
		h.requireConverged(1)
	}
}

// §8: with NoLSC, a read is not released until a local commit or a majority
// membership check proves current membership.
func TestNoLSCReadReleasedByWriteCommit(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.NoLSC = true })
	h.write(0, 1, "v")
	h.run()
	op := h.read(0, 1)
	if h.hasCompletion(0, op) {
		t.Fatal("NoLSC read returned without a membership proof")
	}
	// A subsequent write commit releases it.
	h.write(0, 2, "other")
	h.run()
	c := h.completion(0, op)
	if c.Status != proto.OK || string(c.Value) != "v" {
		t.Fatalf("released read: %+v", c)
	}
	if h.nodes[0].Metrics().SpecReadsFlushedByWrite == 0 {
		t.Fatal("flush-by-write not counted")
	}
}

func TestNoLSCReadReleasedByMembershipCheck(t *testing.T) {
	h := newHarness(t, 5, func(c *Config) { c.NoLSC = true })
	h.write(0, 1, "v")
	h.run()
	op := h.read(1, 1)
	if h.hasCompletion(1, op) {
		t.Fatal("read released with no proof")
	}
	// No write traffic: the tick issues an MCheck; a majority of acks
	// releases the read.
	h.advance(1 * time.Millisecond)
	if h.nodes[1].Metrics().MChecks != 1 {
		t.Fatal("MCheck not issued")
	}
	h.run()
	c := h.completion(1, op)
	if c.Status != proto.OK || string(c.Value) != "v" {
		t.Fatalf("read after mcheck: %+v", c)
	}
}

func TestNoLSCMCheckMajorityRequired(t *testing.T) {
	h := newHarness(t, 5, func(c *Config) { c.NoLSC = true })
	op := h.read(1, 9)
	h.advance(1 * time.Millisecond)
	// Quorum of 5 is 3: self plus 2 acks. Deliver the MChecks, then only
	// one ack: not enough.
	h.dropWhere(func(e envelope) bool {
		mc, is := e.msg.(MCheck)
		return is && mc.Seq == 1 && e.to != 2 && e.to != 3
	})
	h.run() // two MChecks delivered -> two acks -> wait, that's quorum
	_ = op
	// With two acks plus self the quorum of 3 is met and the read releases.
	if !h.hasCompletion(1, op) {
		t.Fatal("read not released at exactly quorum acks")
	}
}

func TestNoLSCStaleEpochAcksIgnored(t *testing.T) {
	h := newHarness(t, 3, func(c *Config) { c.NoLSC = true })
	h.read(1, 9)
	h.advance(1 * time.Millisecond)
	// Acks from a dead epoch must not release the read.
	h.nodes[1].Deliver(0, MCheckAck{Epoch: 42, Seq: 1})
	if len(h.done[1]) != 0 {
		t.Fatal("stale-epoch mcheck ack released a read")
	}
}
