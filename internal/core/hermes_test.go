package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

func TestLocalReadOfMissingKey(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.read(1, 7)
	c := h.completion(1, op)
	if c.Status != proto.OK || c.Value != nil {
		t.Fatalf("read of missing key: %+v", c)
	}
	h.requireNoInflight() // local reads generate zero messages
}

func TestWriteCommitsInOneRoundTrip(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.write(0, 1, "v1")

	// CINV: the coordinator applied locally and broadcast 2 INVs.
	if got := h.entry(0, 1); got.State != kvs.Write || string(got.Value) != "v1" {
		t.Fatalf("coordinator state after CINV: %+v", got)
	}
	if len(h.msgs) != 2 {
		t.Fatalf("INV broadcast: %d msgs in flight", len(h.msgs))
	}
	if h.hasCompletion(0, op) {
		t.Fatal("write completed before ACKs")
	}

	// Deliver both INVs: followers invalidate and ACK.
	h.step()
	h.step()
	for _, id := range []proto.NodeID{1, 2} {
		if got := h.entry(id, 1); got.State != kvs.Invalid || string(got.Value) != "v1" {
			t.Fatalf("follower %d after INV: %+v", id, got)
		}
	}

	// Deliver ACKs: coordinator commits (client answered) and VALs go out —
	// the VAL broadcast is off the critical path (Fig. 2).
	h.step()
	h.step()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("write completion: %+v", c)
	}
	if got := h.entry(0, 1); got.State != kvs.Valid {
		t.Fatalf("coordinator after CACK: %+v", got)
	}

	h.run()
	e := h.requireConverged(1)
	if string(e.Value) != "v1" || e.TS.Version != 2 || e.TS.CID != 0 {
		t.Fatalf("converged entry: %+v", e)
	}
	m := h.nodes[0].Metrics()
	if m.INVsSent != 2 || m.VALsSent != 2 {
		t.Fatalf("message counts: %+v", m)
	}
}

func TestWriteTimestampIncrementsByTwo(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "a")
	h.run()
	h.write(1, 1, "b")
	h.run()
	e := h.requireConverged(1)
	if e.TS.Version != 4 || e.TS.CID != 1 {
		t.Fatalf("after two writes: ts=%v", e.TS)
	}
}

func TestReadsServedLocallyAtEveryReplica(t *testing.T) {
	h := newHarness(t, 5, nil)
	h.write(2, 9, "x")
	h.run()
	inflight := len(h.msgs)
	for id := proto.NodeID(0); id < 5; id++ {
		op := h.read(id, 9)
		c := h.completion(id, op)
		if c.Status != proto.OK || string(c.Value) != "x" {
			t.Fatalf("node %d read: %+v", id, c)
		}
	}
	if len(h.msgs) != inflight {
		t.Fatal("reads generated network traffic")
	}
}

func TestReadStallsOnInvalidUntilVAL(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "new")
	// Deliver only the INVs, not the ACK/VAL wave.
	h.step()
	h.step()
	op := h.read(1, 1)
	if h.hasCompletion(1, op) {
		t.Fatal("read served from Invalid state")
	}
	if h.nodes[1].Metrics().StalledReads != 1 {
		t.Fatal("stalled read not counted")
	}
	h.run() // ACKs reach coordinator; VALs validate followers
	c := h.completion(1, op)
	if c.Status != proto.OK || string(c.Value) != "new" {
		t.Fatalf("stalled read completion: %+v", c)
	}
}

func TestWriteStallsWhileKeyInvalid(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "a")
	h.step() // INV reaches node 1 only
	op := h.write(1, 1, "b")
	if h.hasCompletion(1, op) {
		t.Fatal("write started on Invalid key")
	}
	h.run()
	if c := h.completion(1, op); c.Status != proto.OK {
		t.Fatalf("queued write completion: %+v", c)
	}
	e := h.requireConverged(1)
	if string(e.Value) != "b" {
		t.Fatalf("final value %q, want queued write to apply last", e.Value)
	}
	// b started from a's committed version 2, so version is 4.
	if e.TS.Version != 4 || e.TS.CID != 1 {
		t.Fatalf("final ts: %v", e.TS)
	}
}

// The paper's §3.5 operational example (Figure 4), first half: two
// concurrent writes to A from nodes 1 and 3 (IDs 0 and 2 here). Both commit;
// the higher-cid write wins; the lower one passes through Trans.
func TestConcurrentWritesConvergeOnHigherCID(t *testing.T) {
	h := newHarness(t, 3, nil)
	opLow := h.write(0, 1, "w0")  // ts (2,0)
	opHigh := h.write(2, 1, "w2") // ts (2,2)

	// Exchange INVs first: node 0 sees (2,2) > (2,0): applies, goes Trans.
	// Node 2 sees (2,0) < (2,2): ACKs without applying.
	h.run()

	if !h.hasCompletion(0, opLow) || !h.hasCompletion(2, opHigh) {
		t.Fatal("both concurrent writes must commit (writes never abort)")
	}
	e := h.requireConverged(1)
	if string(e.Value) != "w2" || e.TS != (proto.TS{Version: 2, CID: 2}) {
		t.Fatalf("converged on %q ts=%v, want w2 (2,2)", e.Value, e.TS)
	}
}

func TestTransStateTracksSupersededWrite(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "low")  // ts (2,0)
	h.write(2, 1, "high") // ts (2,2)

	// Deliver the INVs while suppressing every ACK, so node 0 is
	// invalidated by node 2's higher-timestamp write before its own write
	// can gather acknowledgments.
	for {
		h.dropWhere(func(e envelope) bool { _, isACK := e.msg.(ACK); return isACK })
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	if got := h.entry(0, 1); got.State != kvs.Trans {
		t.Fatalf("node 0 should be Trans after being invalidated mid-write, got %v", got.State)
	}
	if string(h.entry(0, 1).Value) != "high" {
		t.Fatal("Trans node must hold the newer value (early value propagation)")
	}
}

func TestStaleEpochMessagesDropped(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.nodes[1].Deliver(0, INV{Epoch: 99, Key: 1, TS: proto.TS{Version: 2}, Value: proto.Value("x")})
	if e := h.entry(1, 1); e.State == kvs.Invalid {
		t.Fatal("stale-epoch INV applied")
	}
	if h.nodes[1].Metrics().StaleEpochDrops != 1 {
		t.Fatal("drop not counted")
	}
	h.requireNoInflight()
}

func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.write(0, 1, "v")
	h.duplicateAll() // duplicate the INVs
	h.run()
	h.duplicateAll() // nothing in flight; harmless
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion: %+v", c)
	}
	e := h.requireConverged(1)
	if string(e.Value) != "v" || e.TS.Version != 2 {
		t.Fatalf("converged: %+v", e)
	}
}

// Any delivery order of the protocol's messages must converge all replicas
// to the same highest-timestamp value — the linearizable convergence
// property that per-key Lamport timestamps give Hermes.
func TestShuffledDeliveryConverges(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 5, nil)
		ops := make([]uint64, 0, 8)
		for i := 0; i < 8; i++ {
			id := proto.NodeID(rng.Intn(5))
			ops = append(ops, h.write(id, 1, string(rune('a'+i))))
			if rng.Intn(2) == 0 {
				h.runShuffled(rng)
			}
		}
		h.runShuffled(rng)
		// Drain any stalled queued writes via ticks + replays.
		for i := 0; i < 10; i++ {
			h.advance(20 * time.Millisecond)
			h.runShuffled(rng)
		}
		h.requireConverged(1)
		for i, op := range ops {
			found := false
			for id := range h.nodes {
				if h.hasCompletion(id, op) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d: write %d never completed", seed, i)
			}
		}
	}
}

func TestInterKeyConcurrency(t *testing.T) {
	// Writes to different keys never interact: all five commit against
	// their own key with version 2.
	h := newHarness(t, 5, nil)
	ops := make(map[proto.Key]uint64)
	for k := proto.Key(0); k < 5; k++ {
		ops[k] = h.write(proto.NodeID(k), k, "v")
	}
	h.run()
	for k := proto.Key(0); k < 5; k++ {
		if c := h.completion(proto.NodeID(k), ops[k]); c.Status != proto.OK {
			t.Fatalf("key %d: %+v", k, c)
		}
		e := h.requireConverged(k)
		if e.TS.Version != 2 {
			t.Fatalf("key %d version %d: cross-key interference", k, e.TS.Version)
		}
	}
}

func TestNonOperationalReplicaRejects(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.nodes[1].SetOperational(false)
	op := h.read(1, 1)
	if c := h.completion(1, op); c.Status != proto.NotOperational {
		t.Fatalf("expected NotOperational, got %+v", c)
	}
	op = h.write(1, 1, "x")
	if c := h.completion(1, op); c.Status != proto.NotOperational {
		t.Fatalf("expected NotOperational for write, got %+v", c)
	}
	h.nodes[1].SetOperational(true)
	op = h.read(1, 1)
	if c := h.completion(1, op); c.Status != proto.OK {
		t.Fatalf("after lease renewal: %+v", c)
	}
}

func TestSingleNodeViewCommitsInstantly(t *testing.T) {
	h := newHarness(t, 1, nil)
	op := h.write(0, 1, "solo")
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("single-replica write: %+v", c)
	}
	h.requireNoInflight()
	if e := h.entry(0, 1); e.State != kvs.Valid {
		t.Fatalf("entry: %+v", e)
	}
}

func TestQueuedReadsDrainInOrderAroundWrite(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "a")
	h.step() // node1 invalid
	r1 := h.read(1, 1)
	w := h.write(1, 1, "b")
	r2 := h.read(1, 1)
	h.run()
	// r1 sees "a" (queued before the write), r2 sees "b".
	if c := h.completion(1, r1); string(c.Value) != "a" {
		t.Fatalf("r1=%+v", c)
	}
	if c := h.completion(1, r2); string(c.Value) != "b" {
		t.Fatalf("r2=%+v", c)
	}
	if c := h.completion(1, w); c.Status != proto.OK {
		t.Fatalf("w=%+v", c)
	}
	if e := h.requireConverged(1); string(e.Value) != "b" {
		t.Fatalf("final=%q", e.Value)
	}
}

func TestMetaMapGarbageCollected(t *testing.T) {
	h := newHarness(t, 3, nil)
	for k := proto.Key(0); k < 50; k++ {
		h.write(0, k, "v")
	}
	h.run()
	for _, n := range h.nodes {
		if len(n.meta) != 0 {
			t.Fatalf("node %d retains %d key metas after quiescence", n.id, len(n.meta))
		}
	}
}

func TestViewChangeIgnoresStaleEpoch(t *testing.T) {
	h := newHarness(t, 3, nil)
	old := h.view.Clone() // epoch 1
	nv := h.view.Clone()
	nv.Epoch = 5
	h.nodes[0].OnViewChange(nv)
	h.nodes[0].OnViewChange(old) // stale: must not regress
	if got := h.nodes[0].View().Epoch; got != 5 {
		t.Fatalf("epoch regressed to %d", got)
	}
}
