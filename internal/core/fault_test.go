package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

func TestLostVALTriggersReplay(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "v")
	// Let INVs and ACKs flow, but drop every VAL.
	for {
		if h.dropWhere(func(e envelope) bool { _, is := e.msg.(VAL); return is }) > 0 {
			continue
		}
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	if e := h.entry(1, 1); e.State != kvs.Invalid {
		t.Fatalf("follower should be stuck Invalid, got %v", e.State)
	}

	// A read arrives on the stuck key; it stalls and arms the mlt timer.
	op := h.read(1, 1)
	if h.hasCompletion(1, op) {
		t.Fatal("read served from Invalid key")
	}

	// Before mlt expires nothing happens.
	h.advance(5 * time.Millisecond)
	if h.nodes[1].Metrics().Replays != 0 {
		t.Fatal("replay fired before mlt")
	}
	// After mlt, node 1 replays the write with the original timestamp.
	h.advance(10 * time.Millisecond)
	if h.nodes[1].Metrics().Replays != 1 {
		t.Fatal("replay did not fire after mlt")
	}
	h.run()
	c := h.completion(1, op)
	if c.Status != proto.OK || string(c.Value) != "v" {
		t.Fatalf("read after replay: %+v", c)
	}
	e := h.requireConverged(1)
	// Replay preserves the original timestamp: version 2, cid 0.
	if e.TS != (proto.TS{Version: 2, CID: 0}) {
		t.Fatalf("replayed ts=%v, want original (2,0)", e.TS)
	}
}

func TestLostINVRetransmittedByCoordinator(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.write(0, 1, "v")
	// Drop the INV to node 2; deliver the rest.
	h.dropWhere(func(e envelope) bool { _, is := e.msg.(INV); return is && e.to == 2 })
	h.run()
	if h.hasCompletion(0, op) {
		t.Fatal("write committed without node 2's ACK")
	}
	// mlt expiry retransmits only to the unacknowledged follower.
	h.advance(15 * time.Millisecond)
	if h.nodes[0].Metrics().Retransmits != 1 {
		t.Fatalf("retransmits=%d", h.nodes[0].Metrics().Retransmits)
	}
	invs := 0
	for _, e := range h.msgs {
		if _, is := e.msg.(INV); is {
			invs++
			if e.to != 2 {
				t.Fatalf("retransmitted INV to %d (already ACKed)", e.to)
			}
		}
	}
	if invs != 1 {
		t.Fatalf("%d INVs retransmitted, want 1", invs)
	}
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion after retransmit: %+v", c)
	}
	h.requireConverged(1)
}

// The full §3.5 / Figure 4 scenario: concurrent writes by nodes 0 and 2,
// node 2's VAL to node 0 is lost and node 2 crashes; after the m-update,
// a read at node 0 replays node 2's write (original timestamp) and the
// surviving nodes converge on it.
func TestFigure4NodeFailureAndWriteReplay(t *testing.T) {
	h := newHarness(t, 3, nil)
	opA1 := h.write(0, 1, "1") // A=1 at node 0: ts (2,0)
	opA3 := h.write(2, 1, "3") // A=3 at node 2: ts (2,2)

	// Run the two writes, but drop node 2's VAL to node 0.
	for {
		if h.dropWhere(func(e envelope) bool {
			_, is := e.msg.(VAL)
			return is && e.from == 2 && e.to == 0
		}) > 0 {
			continue
		}
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	if !h.hasCompletion(0, opA1) || !h.hasCompletion(2, opA3) {
		t.Fatal("both writes should have committed")
	}
	// Node 0 was in Trans (its write superseded) and, having completed,
	// fell back to Invalid awaiting node 2's VAL — which was dropped.
	if e := h.entry(0, 1); e.State != kvs.Invalid || string(e.Value) != "3" {
		t.Fatalf("node 0: %+v", e)
	}

	// Node 2 crashes; leases expire and the membership is updated.
	h.crash(2)
	h.removeFromView(2)

	// A read at node 0 finds A Invalid(ated) by a failed node and, after
	// mlt, replays node 2's write using the stored timestamp and value.
	op := h.read(0, 1)
	h.advance(15 * time.Millisecond)
	h.run()
	c := h.completion(0, op)
	if c.Status != proto.OK || string(c.Value) != "3" {
		t.Fatalf("read after replay: %+v", c)
	}
	if h.nodes[0].Metrics().Replays != 1 {
		t.Fatal("no replay recorded")
	}
	e := h.requireConverged(1)
	// The replay preserved node 2's timestamp: linearized exactly where the
	// failed coordinator's write was.
	if e.TS != (proto.TS{Version: 2, CID: 2}) {
		t.Fatalf("ts=%v, want (2,2)", e.TS)
	}
}

func TestPendingWriteCompletesAfterFollowerCrash(t *testing.T) {
	h := newHarness(t, 5, nil)
	op := h.write(0, 1, "v")
	// Node 4 crashes before ACKing.
	h.dropWhere(func(e envelope) bool { return e.to == 4 })
	h.crash(4)
	h.run()
	if h.hasCompletion(0, op) {
		t.Fatal("write committed while waiting on a dead node (membership not yet updated)")
	}
	// The m-update removes node 4; the coordinator no longer owes it an ACK.
	h.removeFromView(4)
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion after m-update: %+v", c)
	}
	h.requireConverged(1)
}

func TestViewChangeRetransmitsWithNewEpoch(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "v")
	// Drop everything: followers never heard the INV.
	h.dropWhere(func(envelope) bool { return true })
	// Membership reconfigures (e.g. another shard's fault); epoch bumps.
	nv := h.view.Clone()
	nv.Epoch++
	h.installView(nv)
	// The view change rebroadcast the INV tagged with the new epoch.
	found := false
	for _, e := range h.msgs {
		if inv, is := e.msg.(INV); is {
			found = true
			if inv.Epoch != nv.Epoch {
				t.Fatalf("rebroadcast INV epoch=%d want %d", inv.Epoch, nv.Epoch)
			}
		}
	}
	if !found {
		t.Fatal("no INV rebroadcast on view change")
	}
	h.run()
	h.requireConverged(1)
}

// During the transient period of an m-update, followers that have not yet
// received the new view drop the coordinator's higher-epoch INVs; the write
// blocks until everyone is current, then commits (§3.4 Membership
// reconfiguration).
func TestWriteBlocksUntilAllFollowersReachNewEpoch(t *testing.T) {
	h := newHarness(t, 3, nil)
	nv := h.view.Clone()
	nv.Epoch++
	// Only node 0 has the m-update so far.
	h.nodes[0].OnViewChange(nv)
	op := h.write(0, 1, "v")
	h.run()
	if h.hasCompletion(0, op) {
		t.Fatal("write committed while followers were in the old epoch")
	}
	if h.nodes[1].Metrics().StaleEpochDrops == 0 {
		t.Fatal("followers should have dropped the new-epoch INVs")
	}
	// The followers receive the m-update; the coordinator's mlt
	// retransmission then reaches them.
	h.nodes[1].OnViewChange(nv)
	h.nodes[2].OnViewChange(nv)
	h.view = nv
	h.advance(15 * time.Millisecond)
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("completion after epoch sync: %+v", c)
	}
	h.requireConverged(1)
}

func TestMessageLossEverywhereEventuallyConverges(t *testing.T) {
	// Randomly drop 30% of messages; ticks must recover everything.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 3, nil)
		var ops []uint64
		for i := 0; i < 5; i++ {
			ops = append(ops, h.write(proto.NodeID(rng.Intn(3)), 1, string(rune('a'+i))))
		}
		for round := 0; round < 60; round++ {
			h.dropWhere(func(envelope) bool { return rng.Float64() < 0.3 })
			h.runShuffled(rng)
			h.advance(11 * time.Millisecond)
		}
		h.run()
		h.forceConverge(1)
		h.requireConverged(1)
		for i, op := range ops {
			done := false
			for id := range h.nodes {
				if h.hasCompletion(id, op) {
					done = true
				}
			}
			if !done {
				t.Fatalf("seed %d: write %d lost forever", seed, i)
			}
		}
	}
}

func TestReplaySupersededByNewerWrite(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "old")
	// Drop VALs so node 1 sticks Invalid, then let it start a replay.
	for {
		if h.dropWhere(func(e envelope) bool { _, is := e.msg.(VAL); return is }) > 0 {
			continue
		}
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	h.read(1, 1)
	h.advance(15 * time.Millisecond) // replay begins at node 1
	if h.nodes[1].Metrics().Replays != 1 {
		t.Fatal("expected replay")
	}
	// Before the replay's INVs land, node 2 writes a newer value, which
	// reaches node 1 and supersedes the replay.
	h.write(2, 1, "newer")
	h.runShuffled(rand.New(rand.NewSource(4)))
	for i := 0; i < 5; i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	e := h.requireConverged(1)
	if string(e.Value) != "newer" {
		t.Fatalf("converged on %q", e.Value)
	}
}

func TestRemovedNodeStopsServing(t *testing.T) {
	h := newHarness(t, 3, nil)
	// Node 2 is removed (e.g. suspected dead while actually partitioned).
	nv := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1}}
	h.nodes[2].OnViewChange(nv)
	op := h.read(2, 1)
	if c := h.completion(2, op); c.Status != proto.NotOperational {
		t.Fatalf("removed node served a request: %+v", c)
	}
}

func TestLearnerCatchUpAndPromotion(t *testing.T) {
	h := newHarness(t, 3, nil)
	// Seed the store with data.
	for k := proto.Key(0); k < 100; k++ {
		h.write(proto.NodeID(k%3), k, "seed")
	}
	h.run()

	l := h.addLearner(3)
	if l.Operational() {
		t.Fatal("learner must not serve requests")
	}
	// A write during catch-up must include the learner.
	op := h.write(0, 7, "during")
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("write during catch-up: %+v", c)
	}
	if e := h.entry(3, 7); string(e.Value) != "during" {
		t.Fatalf("learner missed a live write: %+v", e)
	}

	// Drive chunk transfer to completion.
	for i := 0; i < 20 && !l.CaughtUp(); i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if !l.CaughtUp() {
		t.Fatal("learner never caught up")
	}
	for k := proto.Key(0); k < 100; k++ {
		want := "seed"
		if k == 7 {
			want = "during"
		}
		if e := h.entry(3, k); string(e.Value) != want {
			t.Fatalf("learner key %d: %q want %q", k, e.Value, want)
		}
	}

	// Promote: new view with node 3 as a full member.
	nv := proto.View{Epoch: h.view.Epoch + 1, Members: []proto.NodeID{0, 1, 2, 3}}
	h.installView(nv)
	if !l.Operational() {
		t.Fatal("promoted replica should serve requests")
	}
	rop := h.read(3, 42)
	if c := h.completion(3, rop); c.Status != proto.OK || string(c.Value) != "seed" {
		t.Fatalf("read at promoted node: %+v", c)
	}
}

func TestLearnerChunkRetryAfterLoss(t *testing.T) {
	h := newHarness(t, 3, nil)
	for k := proto.Key(0); k < 10; k++ {
		h.write(0, k, "v")
	}
	h.run()
	l := h.addLearner(3)
	h.advance(1 * time.Millisecond) // triggers first ChunkReq
	// Lose every chunk response as it is produced.
	for {
		if h.dropWhere(func(e envelope) bool { _, is := e.msg.(ChunkResp); return is }) > 0 {
			continue
		}
		if len(h.msgs) == 0 {
			break
		}
		h.step()
	}
	if l.CaughtUp() {
		t.Fatal("caught up without data?")
	}
	// Retry fires after mlt.
	for i := 0; i < 10 && !l.CaughtUp(); i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if !l.CaughtUp() {
		t.Fatal("chunk retry never recovered")
	}
}

func TestChunkTransferDoesNotRegressNewerLocalData(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 5, "old")
	h.run()
	l := h.addLearner(3)
	// The learner hears a fresh write first (via INV).
	h.write(1, 5, "fresh")
	h.run()
	// Then chunk transfer delivers the stale snapshot record; it must not
	// overwrite the fresher copy.
	for i := 0; i < 10 && !l.CaughtUp(); i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if e := h.entry(3, 5); string(e.Value) != "fresh" {
		t.Fatalf("chunk transfer regressed key: %+v", e)
	}
}
